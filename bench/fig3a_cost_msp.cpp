// Regenerates Fig. 3(a): the utility and price strategy of the MSP versus the
// unit transmission cost C ∈ {5..9}, comparing the proposed DRL scheme with
// the analytic Stackelberg equilibrium and the random / greedy baselines.
// Setting: two VMUs, D = (200, 100) MB, α = (5, 5)·100.
//
// Expected shape (paper): price rises with C (≈25 at C=5 to ≈34 at C=9, in
// our calibration 25.3 → 34.0); utilities fall with C; DRL ≈ SE > greedy >
// random.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/equilibrium.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  vtm::bench::print_header(
      "Fig. 3(a)", "MSP utility and price strategy vs transmission cost");

  std::vector<double> costs, se_utility, drl_utility, greedy_utility,
      random_utility, se_price, drl_price;

  vtm::util::ascii_table table(
      {"C", "SE price", "DRL price", "SE U_s", "DRL U_s", "greedy U_s",
       "random U_s", "DRL/SE"});

  for (double cost = 5.0; cost <= 9.0; cost += 1.0) {
    const auto params = vtm::bench::two_vmu_market(cost);
    const auto mech = vtm::core::run_learning_mechanism(
        params, vtm::bench::sweep_mechanism_config(
                    42 + static_cast<std::uint64_t>(cost)));
    const auto baselines =
        vtm::core::run_paper_baselines(params, 20, 100, 7);

    costs.push_back(cost);
    se_price.push_back(mech.oracle.price);
    drl_price.push_back(mech.learned_price);
    se_utility.push_back(vtm::bench::display_units(mech.oracle.leader_utility));
    drl_utility.push_back(vtm::bench::display_units(mech.learned_utility));
    random_utility.push_back(
        vtm::bench::display_units(baselines[0].mean_utility));
    greedy_utility.push_back(
        vtm::bench::display_units(baselines[1].mean_utility));

    table.add_row(std::vector<double>{
        cost, mech.oracle.price, mech.learned_price,
        se_utility.back(), drl_utility.back(), greedy_utility.back(),
        random_utility.back(), mech.optimality()});
  }

  std::printf("\n--- CSV (fig3a.csv) ---\n");
  vtm::util::csv_writer csv(
      std::cout, {"cost", "se_price", "drl_price", "se_utility",
                  "drl_utility", "greedy_utility", "random_utility"});
  for (std::size_t i = 0; i < costs.size(); ++i)
    csv.row({costs[i], se_price[i], drl_price[i], se_utility[i],
             drl_utility[i], greedy_utility[i], random_utility[i]});

  std::printf("\n%s", table.render().c_str());

  vtm::util::ascii_chart chart(64, 12);
  chart.set_title(
      "Fig. 3(a): MSP utility vs cost (display units = utility/100)");
  chart.set_x(costs);
  chart.add_series({"SE", se_utility, 'S'});
  chart.add_series({"DRL", drl_utility, '*'});
  chart.add_series({"greedy", greedy_utility, 'g'});
  chart.add_series({"random", random_utility, 'r'});
  std::printf("\n%s", chart.render().c_str());

  vtm::util::ascii_chart price_chart(64, 10);
  price_chart.set_title("Fig. 3(a) inset: price strategy vs cost");
  price_chart.set_x(costs);
  price_chart.add_series({"SE price", se_price, 'S'});
  price_chart.add_series({"DRL price", drl_price, '*'});
  std::printf("\n%s", price_chart.render().c_str());

  std::printf("\nShape check: price increasing in C; all utilities "
              "decreasing in C; DRL tracks SE from above the baselines.\n");
  return 0;
}
