// Ablation A4: learning-algorithm comparison on the pricing POMDP.
//
// The paper picks PPO; this bench runs four learners with matched budgets on
// the Fig. 2 market and reports how close each gets to the Stackelberg
// equilibrium:
//   * PPO (the paper's choice)       — clipped surrogate, sample reuse;
//   * REINFORCE                      — episodic policy gradient, no reuse;
//   * tabular Q-grid                 — ε-greedy over 48 discretized prices;
//   * greedy / random                — the paper's non-learning baselines.
#include <cstdio>

#include "bench_common.hpp"
#include "core/env.hpp"
#include "core/equilibrium.hpp"
#include "rl/qlearning.hpp"
#include "rl/reinforce.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t episodes = 300;
constexpr std::size_t rounds = 100;

double run_reinforce(const vtm::core::market_params& params, double& price) {
  vtm::core::pricing_env_config env_config;
  env_config.mode = vtm::core::reward_mode::shaped;
  env_config.rounds_per_episode = rounds;
  vtm::core::pricing_env env(vtm::core::migration_market(params), env_config);

  vtm::util::rng gen(21);
  vtm::rl::actor_critic_config net;
  net.obs_dim = env.observation_dim();
  net.hidden = {64, 64};
  vtm::rl::actor_critic policy(net, gen);
  vtm::rl::reinforce_config config;
  config.learning_rate = 3e-4;
  vtm::util::rng gen2(22);
  vtm::rl::reinforce learner(policy, config, gen2);

  for (std::size_t e = 0; e < episodes; ++e)
    (void)learner.train_episode(env, rounds);

  // Deterministic evaluation.
  vtm::nn::tensor obs = env.reset();
  double total = 0.0;
  double mean_action = 0.0;
  for (std::size_t k = 0; k < rounds; ++k) {
    const auto sample = policy.act_deterministic(obs);
    const auto result = env.step(sample.action);
    total += result.info.at("leader_utility");
    mean_action += sample.action.item();
    obs = result.observation;
    if (result.done) break;
  }
  price = env.price_from_action(mean_action / static_cast<double>(rounds));
  return total / static_cast<double>(rounds);
}

double run_q_grid(const vtm::core::market_params& params, double& price) {
  const vtm::core::migration_market market(params);
  vtm::rl::q_pricing_config config;
  config.bins = 48;
  config.epsilon_decay = 0.9995;
  vtm::rl::q_pricing_scheme agent(config);
  vtm::util::rng gen(23);
  // Same interaction budget as the DRL runs: episodes x rounds feedbacks.
  for (std::size_t i = 0; i < episodes * rounds; ++i) {
    const double p = agent.select_action(params.unit_cost, params.price_cap,
                                         gen);
    agent.feedback(p, market.leader_utility(p));
  }
  price = params.unit_cost +
          (static_cast<double>(agent.greedy_bin()) + 0.5) *
              (params.price_cap - params.unit_cost) / 48.0;
  return market.leader_utility(price);
}

}  // namespace

int main() {
  vtm::bench::print_header("Ablation A4",
                           "Learning algorithms on the pricing POMDP");

  const auto params = vtm::bench::two_vmu_market(5.0);
  const auto oracle = vtm::core::solve_equilibrium(
      vtm::core::migration_market(params));

  // PPO via the mechanism facade, collected through the batched rollout
  // engine (B = 4 vector_env replicas; same E x K interaction budget).
  auto ppo_config = vtm::bench::sweep_mechanism_config(77);
  ppo_config.trainer.episodes = episodes;
  const auto ppo = vtm::core::run_learning_mechanism(params, ppo_config);

  double reinforce_price = 0.0;
  const double reinforce_utility = run_reinforce(params, reinforce_price);
  double q_price = 0.0;
  const double q_utility = run_q_grid(params, q_price);
  const auto baselines = vtm::core::run_paper_baselines(params, 20, rounds, 7);

  std::printf("\n--- CSV (ablation_algorithms.csv) ---\n");
  vtm::util::csv_writer csv(std::cout,
                            {"algorithm", "utility", "optimality", "price"});
  vtm::util::ascii_table table(
      {"algorithm", "U_s", "vs oracle", "price", "SE price"});
  const auto row = [&](const std::string& name, double utility, double price) {
    const double ratio = utility / oracle.leader_utility;
    csv.row({name, vtm::util::format_number(utility),
             vtm::util::format_number(ratio),
             vtm::util::format_number(price)});
    table.add_row({name, vtm::util::format_number(utility),
                   vtm::util::format_number(ratio),
                   vtm::util::format_number(price),
                   vtm::util::format_number(oracle.price)});
  };
  row("oracle (SE)", oracle.leader_utility, oracle.price);
  row("PPO (paper, B=4)", ppo.learned_utility, ppo.learned_price);
  row("REINFORCE", reinforce_utility, reinforce_price);
  row("q-grid", q_utility, q_price);
  row("greedy", baselines[1].mean_utility, baselines[1].mean_price);
  row("random", baselines[0].mean_utility, baselines[0].mean_price);
  std::printf("\n%s", table.render().c_str());

  std::printf(
      "\nReading: PPO and the tabular q-grid both land on the equilibrium "
      "(the stationary pricing problem is within a bandit's reach — the "
      "POMDP machinery only pays off under non-stationary followers). "
      "Unclipped REINFORCE is the cautionary tale: with the same network "
      "and budget its mean drifts past the optimum toward the price cap — "
      "the instability PPO's clipped surrogate exists to prevent, and an "
      "empirical justification for the paper's algorithm choice.\n");
  return 0;
}
