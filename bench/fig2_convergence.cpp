// Regenerates Fig. 2: convergence of the DRL-based incentive mechanism.
//   (a) return of each episode -> converges to the max round K = 100;
//   (b) utility of the MSP     -> converges to the Stackelberg equilibrium.
// Setting (§V-A): two VMUs, α1 = α2 = 5 (×100 calibration), D1 = 200 MB,
// D2 = 100 MB, C = 5; E = 500, K = 100, L = 4, |I| = 20, M = 10, 2x64 tanh.
//
// Trained three ways: with the library default learning rate (3e-4), with
// the paper's 1e-5 — both reach the equilibrium price; the small rate keeps
// the sampling entropy high for longer, so its episode *return* converges
// more slowly while its deterministic policy is already optimal — and once
// more through the batched rollout engine (B = 8 vector_env replicas,
// fast-math sampling) to show the vectorized path reproduces the same
// convergence with a fraction of the wall clock.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct curve {
  std::vector<double> episode_return;
  std::vector<double> final_utility;
  vtm::core::mechanism_result result;
};

curve train(double learning_rate, std::size_t episodes,
            std::size_t num_envs = 1) {
  vtm::core::mechanism_config config = vtm::core::mechanism_config::paper();
  config.trainer.episodes = episodes;
  config.ppo.learning_rate = learning_rate;
  config.seed = 42;
  config.rollout.num_envs = num_envs;
  config.rollout.fast_rollout = num_envs > 1;
  curve out;
  out.result = vtm::core::run_learning_mechanism(
      vtm::bench::two_vmu_market(5.0), config,
      [&](const vtm::rl::episode_stats& stats) {
        out.episode_return.push_back(stats.episode_return);
        out.final_utility.push_back(stats.final_utility);
      });
  return out;
}

}  // namespace

int main() {
  vtm::bench::print_header(
      "Fig. 2", "Convergence of the DRL-based incentive mechanism (N=2)");

  constexpr std::size_t episodes = 500;
  const curve fast = train(3e-4, episodes);
  const curve paper_lr = train(1e-5, episodes);
  const curve batched = train(3e-4, episodes, /*num_envs=*/8);
  const double oracle = fast.result.oracle.leader_utility;

  std::printf("\nStackelberg equilibrium (analytic oracle): price %.3f, "
              "U_s %.2f (%.3f display units)\n",
              fast.result.oracle.price, oracle,
              vtm::bench::display_units(oracle));

  // CSV: one row per episode.
  std::printf("\n--- CSV (fig2.csv) ---\n");
  vtm::util::csv_writer csv(
      std::cout,
      {"episode", "return_lr3e4", "return_lr1e5", "return_lr3e4_b8",
       "msp_utility_lr3e4", "msp_utility_lr1e5", "msp_utility_lr3e4_b8",
       "se_utility"});
  for (std::size_t e = 0; e < episodes; e += 5) {
    csv.row({static_cast<double>(e), fast.episode_return[e],
             paper_lr.episode_return[e], batched.episode_return[e],
             fast.final_utility[e], paper_lr.final_utility[e],
             batched.final_utility[e], oracle});
  }

  // Fig. 2(a): episode return.
  const auto smooth_fast = vtm::util::moving_average(fast.episode_return, 20);
  const auto smooth_paper =
      vtm::util::moving_average(paper_lr.episode_return, 20);
  const auto smooth_batched =
      vtm::util::moving_average(batched.episode_return, 20);
  vtm::util::ascii_chart chart_a(72, 14);
  chart_a.set_title("Fig. 2(a): return per episode (20-episode moving avg; "
                    "K = 100 is the max)");
  chart_a.add_series({"lr=3e-4", smooth_fast, '*'});
  chart_a.add_series({"lr=1e-5 (paper)", smooth_paper, 'o'});
  chart_a.add_series({"lr=3e-4 B=8 (batched)", smooth_batched, '+'});
  std::printf("\n%s", chart_a.render().c_str());

  // Fig. 2(b): MSP utility per episode vs the SE level.
  const auto util_fast = vtm::util::moving_average(fast.final_utility, 20);
  const auto util_paper =
      vtm::util::moving_average(paper_lr.final_utility, 20);
  const auto util_batched =
      vtm::util::moving_average(batched.final_utility, 20);
  vtm::util::ascii_chart chart_b(72, 14);
  chart_b.set_title("Fig. 2(b): MSP utility per episode vs Stackelberg "
                    "equilibrium");
  chart_b.add_series({"lr=3e-4", util_fast, '*'});
  chart_b.add_series({"lr=1e-5 (paper)", util_paper, 'o'});
  chart_b.add_series({"lr=3e-4 B=8 (batched)", util_batched, '+'});
  chart_b.add_series(
      {"SE (oracle)", std::vector<double>(episodes, oracle), '-'});
  std::printf("\n%s", chart_b.render().c_str());

  // Summary table.
  vtm::util::ascii_table summary(
      {"learning rate", "final return", "final eval U_s", "optimality",
       "learned price", "SE price"});
  const auto row = [&](const char* name, const curve& c) {
    summary.add_row(
        {name, vtm::util::format_number(c.episode_return.back()),
         vtm::util::format_number(c.result.learned_utility),
         vtm::util::format_number(c.result.optimality()),
         vtm::util::format_number(c.result.learned_price),
         vtm::util::format_number(c.result.oracle.price)});
  };
  row("3e-4", fast);
  row("1e-5 (paper)", paper_lr);
  row("3e-4 B=8 (batched)", batched);
  std::printf("\n%s", summary.render().c_str());

  std::printf("\nShape check: return(3e-4) rises to ~K=100; all policies' "
              "deterministic evaluation reaches >= 99%% of the SE utility — "
              "including the batched-engine run, whose 500 episodes are "
              "collected 8 at a time through rl::vector_env.\n");
  return 0;
}
