// Microbenchmarks (google-benchmark) of the hot operations behind the
// figures: equilibrium solves, market evaluation, environment steps, policy
// inference, PPO updates, pre-copy migration, and the event queue.
#include <benchmark/benchmark.h>

#include "core/env.hpp"
#include "core/equilibrium.hpp"
#include "core/mechanism.hpp"
#include "core/multi_msp.hpp"
#include "rl/buffer.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "sim/event_queue.hpp"
#include "sim/precopy.hpp"
#include "util/rng.hpp"

namespace {

vtm::core::market_params market_of(std::size_t n_vmus) {
  vtm::core::market_params params;
  params.vmus.assign(n_vmus, vtm::core::vmu_profile{500.0, 100.0});
  return params;
}

void bm_equilibrium_closed_form(benchmark::State& state) {
  const vtm::core::migration_market market(
      market_of(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state)
    benchmark::DoNotOptimize(vtm::core::solve_equilibrium(market));
}
BENCHMARK(bm_equilibrium_closed_form)->Arg(2)->Arg(6)->Arg(32)->Arg(256);

void bm_equilibrium_numeric(benchmark::State& state) {
  const vtm::core::migration_market market(
      market_of(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state)
    benchmark::DoNotOptimize(vtm::core::solve_equilibrium_numeric(market));
}
BENCHMARK(bm_equilibrium_numeric)->Arg(2)->Arg(6)->Arg(32);

void bm_market_demands(benchmark::State& state) {
  const vtm::core::migration_market market(
      market_of(static_cast<std::size_t>(state.range(0))));
  double price = 20.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(market.demands(price));
    price = price < 45.0 ? price + 0.01 : 20.0;
  }
}
BENCHMARK(bm_market_demands)->Arg(2)->Arg(32)->Arg(256);

vtm::core::multi_msp_params oligopoly_of(std::size_t n_msps,
                                         std::size_t n_vmus) {
  vtm::core::multi_msp_params params;
  params.share_sharpness = 0.25;
  for (std::size_t m = 0; m < n_msps; ++m)
    params.msps.push_back({5.0 + 0.5 * static_cast<double>(m), 50.0, 50.0});
  vtm::util::rng gen(11);
  for (std::size_t n = 0; n < n_vmus; ++n)
    params.vmus.push_back(
        {300.0 + 400.0 * gen.uniform(), 60.0 + 80.0 * gen.uniform()});
  return params;
}

void bm_solve_price_competition(benchmark::State& state) {
  const vtm::core::multi_msp_market market(
      oligopoly_of(static_cast<std::size_t>(state.range(0)),
                   static_cast<std::size_t>(state.range(1))));
  for (auto _ : state)
    benchmark::DoNotOptimize(vtm::core::solve_price_competition(market));
}
BENCHMARK(bm_solve_price_competition)
    ->Args({2, 64})
    ->Args({2, 1024})
    ->Args({4, 64})
    ->Args({4, 1024})
    ->Args({8, 64})
    ->Args({8, 1024})
    ->Unit(benchmark::kMicrosecond);

void bm_env_step(benchmark::State& state) {
  vtm::core::pricing_env env(
      vtm::core::migration_market(market_of(2)), {});
  (void)env.reset();
  const vtm::nn::tensor action({1, 1}, {0.1});
  std::size_t round = 0;
  for (auto _ : state) {
    if (round++ % 100 == 0) (void)env.reset();
    benchmark::DoNotOptimize(env.step(action));
  }
}
BENCHMARK(bm_env_step);

void bm_policy_act(benchmark::State& state) {
  vtm::util::rng gen(1);
  vtm::rl::actor_critic_config config;
  config.obs_dim = 12;
  config.hidden = {64, 64};
  const vtm::rl::actor_critic policy(config, gen);
  const vtm::nn::tensor obs({1, 12}, 0.3);
  vtm::util::rng act_gen(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(policy.act(obs, act_gen));
}
BENCHMARK(bm_policy_act);

void bm_ppo_update(benchmark::State& state) {
  vtm::util::rng gen(3);
  vtm::rl::actor_critic_config net_config;
  net_config.obs_dim = 12;
  net_config.hidden = {64, 64};
  vtm::rl::actor_critic policy(net_config, gen);
  vtm::rl::ppo_config ppo_config;
  ppo_config.epochs = 10;
  ppo_config.minibatch_size = 20;
  vtm::util::rng ppo_gen(4);
  vtm::rl::ppo learner(policy, ppo_config, ppo_gen);

  vtm::rl::rollout_buffer buffer(20, 12, 1);
  vtm::util::rng fill(5);
  const vtm::nn::tensor obs({1, 12}, 0.3);
  for (int i = 0; i < 20; ++i) {
    vtm::nn::tensor action({1, 1}, {fill.normal()});
    buffer.add(obs, action, fill.uniform(), 0.0, -1.0, false);
  }
  buffer.compute_advantages(0.95, 0.95, 0.0);
  for (auto _ : state) benchmark::DoNotOptimize(learner.update(buffer));
}
BENCHMARK(bm_ppo_update);

void bm_precopy_migration(benchmark::State& state) {
  const auto twin = vtm::sim::vehicular_twin::with_total_mb(1, 200.0);
  vtm::sim::precopy_params params;
  params.dirty_rate_mb_s = vtm::util::mb_per_s{static_cast<double>(state.range(0))};
  for (auto _ : state)
    benchmark::DoNotOptimize(vtm::sim::run_precopy(twin, 500.0, params));
}
BENCHMARK(bm_precopy_migration)->Arg(0)->Arg(100)->Arg(400);

void bm_event_queue_throughput(benchmark::State& state) {
  for (auto _ : state) {
    vtm::sim::event_queue queue;
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      queue.schedule(static_cast<double>(i % 97), [&counter] { ++counter; });
    queue.run_all();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(bm_event_queue_throughput)->Unit(benchmark::kMicrosecond);

void bm_rng_normal(benchmark::State& state) {
  vtm::util::rng gen(7);
  for (auto _ : state) benchmark::DoNotOptimize(gen.normal());
}
BENCHMARK(bm_rng_normal);

}  // namespace

BENCHMARK_MAIN();
