// Extension E+ (paper §VI future work): multi-MSP price competition.
//
// Sweeps the number of competing MSPs and the share-rule sharpness λ, showing
// how competition erodes the monopoly position of Fig. 3: prices fall from
// the Stackelberg monopoly level toward cost, MSP profits shrink, and VMU
// surplus grows.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/equilibrium.hpp"
#include "core/multi_msp.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

vtm::core::multi_msp_params competition(std::size_t n_msps, double lambda) {
  vtm::core::multi_msp_params params;
  params.msps.assign(n_msps, {5.0, 50.0, 50.0});
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  params.share_sharpness = lambda;
  return params;
}

}  // namespace

int main() {
  vtm::bench::print_header(
      "Extension: multi-MSP competition",
      "Price competition vs the paper's monopoly Stackelberg game");

  const auto monopoly = vtm::core::solve_equilibrium(
      vtm::core::migration_market(vtm::bench::two_vmu_market(5.0)));
  std::printf("\nMonopoly reference (paper): p* = %.3f, U_s = %.2f, "
              "ΣU_n = %.2f\n",
              monopoly.price, monopoly.leader_utility,
              monopoly.total_vmu_utility);

  std::printf("\n--- CSV (extension_competition.csv) ---\n");
  vtm::util::csv_writer csv(
      std::cout, {"n_msps", "lambda", "effective_price", "per_msp_profit",
                  "total_vmu_utility", "iterations"});

  vtm::util::ascii_table table({"M", "λ", "p_eff", "profit/MSP", "ΣU_n",
                                "vs monopoly p*"});
  for (std::size_t m : {1u, 2u, 3u, 4u}) {
    for (double lambda : {0.1, 0.5, 2.0}) {
      const auto eq = vtm::core::solve_price_competition(
          vtm::core::multi_msp_market(competition(m, lambda)));
      const double per_msp =
          eq.utilities.empty() ? 0.0 : eq.utilities[0];
      csv.row({static_cast<double>(m), lambda, eq.effective_price, per_msp,
               eq.total_vmu_utility, static_cast<double>(eq.iterations)});
      table.add_row(
          {vtm::util::format_number(static_cast<double>(m)),
           vtm::util::format_number(lambda),
           vtm::util::format_number(eq.effective_price),
           vtm::util::format_number(per_msp),
           vtm::util::format_number(eq.total_vmu_utility),
           vtm::util::format_number(eq.effective_price - monopoly.price)});
    }
  }
  std::printf("\n%s", table.render().c_str());

  std::printf(
      "\nReading: M = 1 reproduces the paper's monopoly price for any λ; "
      "adding sellers or sharpening price sensitivity pushes the effective "
      "price toward the unit cost (Bertrand limit) and transfers surplus "
      "from the MSPs to the VMUs.\n");
  return 0;
}
