// Shared configuration and reporting helpers for the figure benches.
//
// Every bench prints (a) a provenance header, (b) machine-readable CSV rows,
// and (c) an ASCII table/chart of the series so the figure's *shape* is
// visible in a terminal. Paper-vs-measured numbers land in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/market.hpp"
#include "core/mechanism.hpp"

namespace vtm::bench {

/// The Fig. 2 / Fig. 3(a,b) market: two VMUs, α = (5, 5)·100 (unit
/// calibration, DESIGN.md §3), D = (200, 100) MB, C as given.
inline core::market_params two_vmu_market(double unit_cost = 5.0) {
  core::market_params params;
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  params.unit_cost = unit_cost;
  return params;
}

/// The Fig. 3(c,d) market: N identical VMUs with α = 5·100, D = 100 MB.
inline core::market_params n_vmu_market(std::size_t n_vmus) {
  core::market_params params;
  params.vmus.assign(n_vmus, core::vmu_profile{500.0, 100.0});
  return params;
}

/// Mechanism configuration used by the sweep benches. The paper's Algorithm-1
/// budget is E=500, K=100, |I|=20, M=10 with lr=1e-5; we keep the structure
/// and raise the learning rate to 3e-4 (documented substitution: our
/// from-scratch Adam + normalized observations converge in a fraction of the
/// episode budget, and the learned policy lands on the same equilibrium, see
/// bench/fig2_convergence for both rates). Sweeps collect rollouts through
/// the batched engine (B = 4 vector_env replicas, fast-math sampling,
/// DESIGN.md §7) — same E·K interaction budget, ~4x the wall-clock
/// throughput, and the learned price still lands on the equilibrium.
inline core::mechanism_config sweep_mechanism_config(std::uint64_t seed,
                                                     std::size_t num_envs = 4) {
  core::mechanism_config config;
  config.trainer.episodes = 300;
  config.ppo.learning_rate = 3e-4;
  config.seed = seed;
  config.rollout.num_envs = num_envs;
  config.rollout.fast_rollout = num_envs > 1;
  return config;
}

/// Paper's display convention: utilities are plotted in units of 100.
inline double display_units(double utility) { return utility / 100.0; }

/// Bench banner with the paper artifact being regenerated.
inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("Paper: Learning-based Incentive Mechanism for Task "
              "Freshness-aware Vehicular Twin Migration (ICDCS 2023)\n");
  std::printf("=============================================================\n");
}

}  // namespace vtm::bench
