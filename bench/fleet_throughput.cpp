// Fleet-scale throughput of the joint spot-market engine.
//
// Runs the fleet scenario at growing vehicle counts over an 8-RSU chain with
// per-RSU OFDMA pools and reports simulation throughput (handovers/sec and
// migrations/sec of wall clock), market pressure (deferrals, cohort sizes),
// and the demand-weighted clearing price. A second section times a seed
// sweep serially versus through util::thread_pool.
//
//   $ ./fleet_throughput [--smoke]
//
// --smoke trims the counts and horizon for CI; the full run covers vehicle
// counts {10, 100, 1000, 5000}.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_scenario.hpp"
#include "util/table.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

vtm::core::fleet_config base_config(double duration_s) {
  vtm::core::fleet_config config;
  config.rsu_count = 8;
  config.duration_s = duration_s;
  config.record_migrations = false;  // aggregates only: pure engine cost
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double duration_s = smoke ? 30.0 : 120.0;
  const std::vector<std::size_t> counts =
      smoke ? std::vector<std::size_t>{10, 100}
            : std::vector<std::size_t>{10, 100, 1000, 5000};

  std::printf("fleet_throughput: 8 RSUs, per-RSU 50 MHz pools, joint "
              "clearing (epoch 0.5 s), %.0f s horizon%s\n\n",
              duration_s, smoke ? " [smoke]" : "");

  vtm::util::ascii_table table({"vehicles", "wall (s)", "handovers",
                                "migrations", "handovers/s", "migrations/s",
                                "deferred", "max cohort", "mean price"});
  for (const std::size_t vehicles : counts) {
    auto config = base_config(duration_s);
    config.vehicle_count = vehicles;
    const auto start = clock_type::now();
    const auto result = vtm::core::run_fleet_scenario(config);
    const double wall = seconds_since(start);
    const double safe_wall = wall > 1e-9 ? wall : 1e-9;
    table.add_row(std::vector<double>{
        static_cast<double>(vehicles), wall,
        static_cast<double>(result.handovers),
        static_cast<double>(result.completed),
        static_cast<double>(result.handovers) / safe_wall,
        static_cast<double>(result.completed) / safe_wall,
        static_cast<double>(result.deferred),
        static_cast<double>(result.max_cohort), result.mean_price});
  }
  std::printf("%s\n", table.render().c_str());

  // Seed-sweep scaling: independent seeds sharded across the thread pool.
  const std::size_t sweep_vehicles = smoke ? 100 : 1000;
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44};
  auto sweep_config = base_config(duration_s);
  sweep_config.vehicle_count = sweep_vehicles;

  const auto serial_start = clock_type::now();
  const auto serial = vtm::core::run_fleet_sweep(sweep_config, seeds, 0);
  const double serial_wall = seconds_since(serial_start);

  const std::size_t threads =
      std::max(1u, std::thread::hardware_concurrency());
  const auto parallel_start = clock_type::now();
  const auto parallel = vtm::core::run_fleet_sweep(sweep_config, seeds, threads);
  const double parallel_wall = seconds_since(parallel_start);

  // Gate: the threaded sweep must reproduce every per-seed result, not just
  // a lucky aggregate.
  bool reproduced = serial.size() == parallel.size();
  std::size_t serial_migrations = 0;
  for (std::size_t i = 0; i < serial.size() && reproduced; ++i) {
    serial_migrations += serial[i].completed;
    reproduced = serial[i].completed == parallel[i].completed &&
                 serial[i].handovers == parallel[i].handovers &&
                 serial[i].msp_total_utility == parallel[i].msp_total_utility &&
                 serial[i].vmu_total_utility == parallel[i].vmu_total_utility &&
                 serial[i].mean_price == parallel[i].mean_price;
  }

  std::printf("seed sweep (%zu seeds x %zu vehicles): serial %.2f s, "
              "%zu threads %.2f s (%.2fx), %zu migrations, per-seed "
              "reproduction %s\n",
              seeds.size(), sweep_vehicles, serial_wall, threads,
              parallel_wall,
              parallel_wall > 1e-9 ? serial_wall / parallel_wall : 0.0,
              serial_migrations, reproduced ? "OK" : "FAILED");
  return reproduced ? 0 : 1;
}
