// Fleet-scale throughput of the joint spot-market engine.
//
// Runs the fleet scenario at growing vehicle counts over an 8-RSU chain with
// per-RSU OFDMA pools and reports simulation throughput (handovers/sec and
// migrations/sec of wall clock), market pressure (deferrals, cohort sizes),
// and the demand-weighted clearing price. A second section times a seed
// sweep serially versus through util::thread_pool.
//
//   $ ./fleet_throughput [--smoke] [--compare] [--shards N] [--msps M]
//                        [--stream] [--graph NAME] [--json PATH]
//                        [--trace PATH] [--metrics PATH] [--log-level LEVEL]
//
// --smoke trims the counts and horizon for CI; the full run covers vehicle
// counts {10, 100, 1000, 5000}. --compare additionally trains the
// partial-information fleet pricer (core::train_fleet_pricer) and re-runs
// every regime with the learned backend, reporting learned/oracle MSP
// utility ratios. --shards N re-runs the largest regime with the sharded
// engine at shard counts {1, 2, 4, ..., N} (default 8, smoke 4) and reports
// the single-run speedup over the serial engine plus the boundary-traffic
// counters; the conservation invariants gate the exit code, the speedup is
// reported only (shared/single-core runners make a wall-clock ratio an
// unreliable hard check). --msps M re-runs the largest regime under
// market_mode::oligopoly with 1..M symmetric competing MSPs and reports
// vehicles/sec, the demand-weighted clearing price, the per-MSP utility
// split, and the clearing-cost breakdown (solver sweeps, objective evals,
// warm-start hit rate, wall-clock over the M = 1 row); conservation
// (exactly-once resolution, per-seller profit decomposition) plus a clean
// certificate sweep (unconverged_clearings == 0 at every M) gate the exit
// code, and the M = 1 row must reproduce the monopoly joint run bitwise.
// --stream adds the sustained-load open-system regime (DESIGN.md §14):
// Poisson arrivals over a long horizon through run_streaming_fleet, sharded
// at the sweep's max shard count, with exactly-once flush accounting and the
// bounded slot arena gating the exit code (the full run admits >= 100k
// arrivals and must keep the arena under half of them). --graph NAME picks
// the streaming topology — "chain" (default, the 8-RSU highway) or "grid4"
// (the 4x4 Manhattan road network) — and implies --stream. Every run writes a machine-readable
// BENCH_fleet.json (vehicles/sec, per-regime MSP utility, the shard and
// MSP sweeps, and the comparison when enabled) so the perf trajectory is
// trackable across PRs; --json overrides the path.
//
// Telemetry (DESIGN.md §16): --trace PATH attaches a util::trace_session to
// every sequential run and writes the collected spans as Chrome trace_event
// JSON (open in Perfetto / chrome://tracing; summarize with
// tools/trace_summary.py). --metrics PATH attaches a deterministic
// util::metrics_registry and writes its merged totals as JSON. --log-level
// LEVEL (debug|info|warn|error|off; the VTM_LOG_LEVEL env var is the
// fallback) routes the engine's util::logger to stderr. Independently of the
// flags, each section re-runs its most demanding row with throwaway sinks
// attached (min-of-3 vs a sink-free min-of-3) and reports the wall-clock
// delta as telemetry_overhead_pct — judged against the <= 5% budget of
// DESIGN.md §16 on the 5000-vehicle regime, informational elsewhere.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_scenario.hpp"
#include "core/mechanism.hpp"
#include "sim/road_graph.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

// Telemetry sinks shared by the sequential runs when --trace / --metrics is
// on (never by run_fleet_sweep: concurrent coordinators may not share lane
// buffers), plus the engine logger built from --log-level / VTM_LOG_LEVEL.
vtm::util::trace_session* g_trace = nullptr;
vtm::util::metrics_registry* g_metrics = nullptr;
vtm::util::logger g_log;

vtm::core::fleet_config base_config(double duration_s) {
  vtm::core::fleet_config config;
  config.rsu_count = 8;
  config.duration_s = vtm::util::seconds{duration_s};
  config.record_migrations = false;  // aggregates only: pure engine cost
  config.log = g_log;
  return config;
}

void attach_telemetry(vtm::core::fleet_config& config) {
  config.telemetry.metrics = g_metrics;
  config.telemetry.trace = g_trace;
}

// How many times each overhead measurement repeats the sink-free and
// sinks-attached runs; min-of-K cancels scheduler/cache jitter that single
// deltas against the table walls could not (those routinely swung +-20% on
// sub-100ms rows). CI smoke values remain informational either way — the
// committed full run is the number the <= 5% budget is judged on.
constexpr int kOverheadReps = 3;

/// Run `config` `kOverheadReps` times bare and `kOverheadReps` times with
/// throwaway sinks attached; report the min-wall delta as a percentage.
double fleet_overhead_pct(const vtm::core::fleet_config& config) {
  auto bare = config;
  bare.telemetry = {};
  double base = 0.0;
  double wall = 0.0;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    auto start = clock_type::now();
    (void)vtm::core::run_fleet_scenario(bare);
    const double bare_s = seconds_since(start);
    base = rep == 0 ? bare_s : std::min(base, bare_s);

    vtm::util::metrics_registry metrics;
    vtm::util::trace_session session;
    auto instrumented = config;
    instrumented.telemetry.metrics = &metrics;
    instrumented.telemetry.trace = &session;
    start = clock_type::now();
    (void)vtm::core::run_fleet_scenario(instrumented);
    const double sinks_s = seconds_since(start);
    wall = rep == 0 ? sinks_s : std::min(wall, sinks_s);
  }
  return 100.0 * (wall - base) / std::max(base, 1e-9);
}

/// Streaming sibling of `fleet_overhead_pct`.
double stream_overhead_pct(const vtm::core::streaming_config& config) {
  auto bare = config;
  bare.base.telemetry = {};
  double base = 0.0;
  double wall = 0.0;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    auto start = clock_type::now();
    (void)vtm::core::run_streaming_fleet(bare);
    const double bare_s = seconds_since(start);
    base = rep == 0 ? bare_s : std::min(base, bare_s);

    vtm::util::metrics_registry metrics;
    vtm::util::trace_session session;
    auto instrumented = config;
    instrumented.base.telemetry.metrics = &metrics;
    instrumented.base.telemetry.trace = &session;
    start = clock_type::now();
    (void)vtm::core::run_streaming_fleet(instrumented);
    const double sinks_s = seconds_since(start);
    wall = rep == 0 ? sinks_s : std::min(wall, sinks_s);
  }
  return 100.0 * (wall - base) / std::max(base, 1e-9);
}

/// One vehicle-count regime's measurements (oracle backend, plus the learned
/// backend when --compare is on).
struct regime_report {
  std::size_t vehicles = 0;
  double wall_s = 0.0;
  vtm::core::fleet_result oracle;
  bool compared = false;
  vtm::core::fleet_result learned;
  double learned_wall_s = 0.0;
  bool overhead_measured = false;  ///< Set on the section's largest row.
  double telemetry_overhead_pct = 0.0;
};

/// One shard-count measurement of the largest regime.
struct shard_report {
  std::size_t shards = 1;
  double wall_s = 0.0;
  vtm::core::fleet_result result;
  bool conserved = false;
  bool overhead_measured = false;
  double telemetry_overhead_pct = 0.0;
};

/// One MSP-count measurement of the largest regime (oligopoly clearing).
struct msp_report {
  std::size_t msps = 1;
  double wall_s = 0.0;
  vtm::core::fleet_result result;
  bool conserved = false;
  bool overhead_measured = false;
  double telemetry_overhead_pct = 0.0;
};

/// The sustained-load streaming regime (--stream).
struct stream_report {
  bool ran = false;
  std::string topology = "chain";
  std::size_t shards = 1;
  double arrival_rate_per_s = 0.0;
  double horizon_s = 0.0;
  double flush_period_s = 0.0;
  double wall_s = 0.0;
  vtm::core::streaming_result result;
  bool conserved = false;
  bool overhead_measured = false;
  double telemetry_overhead_pct = 0.0;
};

/// Exactly-once flush accounting for a streaming run: the totals are the sum
/// of the per-window deltas, the handover ledger balances, and every arrival
/// retires into exactly one flush.
bool stream_conserved(const vtm::core::streaming_result& r) {
  std::size_t flush_handovers = 0;
  std::size_t flush_completed = 0;
  std::size_t flush_vehicles = 0;
  for (const auto& flush : r.flushes) {
    flush_handovers += flush.handovers;
    flush_completed += flush.completed;
    flush_vehicles += flush.vehicles.size();
  }
  return r.totals.handovers ==
             r.totals.completed + r.totals.priced_out + r.totals.abandoned &&
         flush_handovers == r.totals.handovers &&
         flush_completed == r.totals.completed &&
         r.retired == r.arrivals && flush_vehicles == r.arrivals &&
         r.totals.vehicles.size() == r.arrivals &&
         r.slot_high_water <= r.peak_live + 1;
}

/// Exactly-once resolution + per-seller profit decomposition for one
/// oligopoly run. Every clearing must also carry a convergence certificate
/// (unconverged_clearings == 0) — the dampened solver is expected to close
/// every cohort within its sweep budget, so a single unconverged clearing
/// fails the sweep's exit code.
bool oligopoly_conserved(const vtm::core::fleet_config& config,
                         const vtm::core::fleet_result& r,
                         std::size_t msps) {
  std::size_t twin_migrations = 0;
  for (const auto& v : r.vehicles) twin_migrations += v.migrations;
  double split = 0.0;
  for (const double u : r.msp_utilities) split += u;
  const double tolerance =
      1e-9 * (std::abs(r.msp_total_utility) > 1.0
                  ? std::abs(r.msp_total_utility)
                  : 1.0);
  return r.handovers == r.completed + r.priced_out + r.abandoned &&
         r.vehicles.size() == config.vehicle_count &&
         twin_migrations == r.completed &&
         r.msp_utilities.size() == msps &&
         std::abs(split - r.msp_total_utility) <= tolerance &&
         r.unconverged_clearings == 0;
}

/// Warm-start hit rate of one oligopoly run: the fraction of clearings that
/// initialized the price solver from the book's previous equilibrium.
double warm_hit_rate(const vtm::core::fleet_result& r) {
  return r.clearings > 0 ? static_cast<double>(r.warm_started_clearings) /
                               static_cast<double>(r.clearings)
                         : 0.0;
}

// BENCH_fleet.json schema version. Bump when a field is renamed, removed,
// or changes meaning (adding a field is backward compatible and does not
// bump). Consumers (the CI artifact diff, notebooks) key on this before
// comparing runs. v2: added git_sha + schema_version provenance fields.
// v3: each section's most demanding row carries telemetry_overhead_pct (the
// sinks-attached re-run's wall delta; DESIGN.md §16 idle budget <= 5%).
constexpr int kBenchSchemaVersion = 3;

#ifndef VTM_GIT_SHA
#define VTM_GIT_SHA "unknown"  // built outside CMake (or a tarball)
#endif

void write_json(const std::string& path, bool smoke, double duration_s,
                const std::vector<regime_report>& regimes,
                const std::vector<shard_report>& shard_sweep,
                const std::vector<msp_report>& msp_sweep,
                const stream_report& stream, double train_wall_s,
                std::size_t train_cohorts, double eval_mean_ratio,
                double sweep_serial_s, double sweep_parallel_s,
                std::size_t sweep_threads) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "fleet_throughput: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"fleet_throughput\",\n");
  std::fprintf(out, "  \"schema_version\": %d,\n", kBenchSchemaVersion);
  std::fprintf(out, "  \"git_sha\": \"%s\",\n", VTM_GIT_SHA);
  std::fprintf(out, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(out, "  \"horizon_s\": %g,\n", duration_s);
  std::fprintf(out, "  \"regimes\": [\n");
  for (std::size_t i = 0; i < regimes.size(); ++i) {
    const auto& regime = regimes[i];
    const double wall = regime.wall_s > 1e-9 ? regime.wall_s : 1e-9;
    std::fprintf(out, "    {\n");
    std::fprintf(out, "      \"vehicles\": %zu,\n", regime.vehicles);
    std::fprintf(out, "      \"wall_s\": %.6f,\n", regime.wall_s);
    std::fprintf(out, "      \"vehicles_per_sec\": %.1f,\n",
                 static_cast<double>(regime.vehicles) / wall);
    std::fprintf(out, "      \"handovers_per_sec\": %.1f,\n",
                 static_cast<double>(regime.oracle.handovers) / wall);
    std::fprintf(out, "      \"migrations_per_sec\": %.1f,\n",
                 static_cast<double>(regime.oracle.completed) / wall);
    std::fprintf(out, "      \"handovers\": %zu,\n", regime.oracle.handovers);
    std::fprintf(out, "      \"completed\": %zu,\n", regime.oracle.completed);
    std::fprintf(out, "      \"deferred\": %zu,\n", regime.oracle.deferred);
    std::fprintf(out, "      \"max_cohort\": %zu,\n",
                 regime.oracle.max_cohort);
    std::fprintf(out, "      \"mean_price\": %.6f,\n",
                 regime.oracle.mean_price);
    if (regime.overhead_measured)
      std::fprintf(out, "      \"telemetry_overhead_pct\": %.2f,\n",
                   regime.telemetry_overhead_pct);
    std::fprintf(out, "      \"msp_utility_oracle\": %.6f",
                 regime.oracle.msp_total_utility);
    if (regime.compared) {
      std::fprintf(out, ",\n      \"msp_utility_learned\": %.6f,\n",
                   regime.learned.msp_total_utility);
      std::fprintf(out, "      \"learned_wall_s\": %.6f,\n",
                   regime.learned_wall_s);
      // Degenerate-oracle fallback mirrors the threshold gate below: no
      // oracle utility to beat means parity, not collapse.
      std::fprintf(out, "      \"learned_over_oracle\": %.6f\n",
                   regime.oracle.msp_total_utility > 0.0
                       ? regime.learned.msp_total_utility /
                             regime.oracle.msp_total_utility
                       : 1.0);
    } else {
      std::fprintf(out, "\n");
    }
    std::fprintf(out, "    }%s\n", i + 1 < regimes.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  if (!shard_sweep.empty()) {
    const double serial_wall =
        shard_sweep.front().wall_s > 1e-9 ? shard_sweep.front().wall_s : 1e-9;
    std::fprintf(out, "  \"shard_sweep\": [\n");
    for (std::size_t i = 0; i < shard_sweep.size(); ++i) {
      const auto& report = shard_sweep[i];
      const double wall = report.wall_s > 1e-9 ? report.wall_s : 1e-9;
      std::fprintf(out, "    {\n");
      std::fprintf(out, "      \"shards\": %zu,\n", report.shards);
      std::fprintf(out, "      \"wall_s\": %.6f,\n", report.wall_s);
      std::fprintf(out, "      \"speedup\": %.3f,\n", serial_wall / wall);
      std::fprintf(out, "      \"handovers\": %zu,\n",
                   report.result.handovers);
      std::fprintf(out, "      \"completed\": %zu,\n",
                   report.result.completed);
      std::fprintf(out, "      \"cross_shard_transfers\": %zu,\n",
                   report.result.cross_shard_transfers);
      std::fprintf(out, "      \"cross_shard_retargets\": %zu,\n",
                   report.result.cross_shard_retargets);
      std::fprintf(out, "      \"late_handoffs\": %zu,\n",
                   report.result.late_handoffs);
      std::fprintf(out, "      \"msp_utility\": %.6f,\n",
                   report.result.msp_total_utility);
      if (report.overhead_measured)
        std::fprintf(out, "      \"telemetry_overhead_pct\": %.2f,\n",
                     report.telemetry_overhead_pct);
      std::fprintf(out, "      \"invariants\": \"%s\"\n",
                   report.conserved ? "ok" : "FAILED");
      std::fprintf(out, "    }%s\n", i + 1 < shard_sweep.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
  }
  if (!msp_sweep.empty()) {
    std::fprintf(out, "  \"msp_sweep\": [\n");
    for (std::size_t i = 0; i < msp_sweep.size(); ++i) {
      const auto& report = msp_sweep[i];
      const double wall = report.wall_s > 1e-9 ? report.wall_s : 1e-9;
      std::fprintf(out, "    {\n");
      std::fprintf(out, "      \"msps\": %zu,\n", report.msps);
      std::fprintf(out, "      \"wall_s\": %.6f,\n", report.wall_s);
      std::fprintf(out, "      \"vehicles_per_sec\": %.1f,\n",
                   static_cast<double>(report.result.vehicles.size()) / wall);
      std::fprintf(out, "      \"handovers\": %zu,\n",
                   report.result.handovers);
      std::fprintf(out, "      \"completed\": %zu,\n",
                   report.result.completed);
      std::fprintf(out, "      \"mean_price\": %.6f,\n",
                   report.result.mean_price);
      std::fprintf(out, "      \"unconverged_clearings\": %zu,\n",
                   report.result.unconverged_clearings);
      std::fprintf(out, "      \"solver_sweeps\": %zu,\n",
                   report.result.solver_sweeps);
      std::fprintf(out, "      \"objective_evals\": %zu,\n",
                   report.result.objective_evals);
      std::fprintf(out, "      \"warm_started_clearings\": %zu,\n",
                   report.result.warm_started_clearings);
      std::fprintf(out, "      \"warm_hit_rate\": %.4f,\n",
                   warm_hit_rate(report.result));
      // Clearing-cost ratio against the M = 1 (monopoly-delegating) row.
      const double mono_wall =
          msp_sweep.front().wall_s > 1e-9 ? msp_sweep.front().wall_s : 1e-9;
      std::fprintf(out, "      \"wall_over_m1\": %.3f,\n", wall / mono_wall);
      std::fprintf(out, "      \"msp_utilities\": [");
      for (std::size_t m = 0; m < report.result.msp_utilities.size(); ++m)
        std::fprintf(out, "%s%.6f",
                     m > 0 ? ", " : "", report.result.msp_utilities[m]);
      std::fprintf(out, "],\n");
      std::fprintf(out, "      \"msp_sold_mhz\": [");
      for (std::size_t m = 0; m < report.result.msp_sold_mhz.size(); ++m)
        std::fprintf(out, "%s%.3f",
                     m > 0 ? ", " : "", report.result.msp_sold_mhz[m]);
      std::fprintf(out, "],\n");
      if (report.overhead_measured)
        std::fprintf(out, "      \"telemetry_overhead_pct\": %.2f,\n",
                     report.telemetry_overhead_pct);
      std::fprintf(out, "      \"invariants\": \"%s\"\n",
                   report.conserved ? "ok" : "FAILED");
      std::fprintf(out, "    }%s\n", i + 1 < msp_sweep.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
  }
  if (stream.ran) {
    const auto& r = stream.result;
    const double wall = stream.wall_s > 1e-9 ? stream.wall_s : 1e-9;
    std::fprintf(out, "  \"stream\": {\n");
    std::fprintf(out, "    \"topology\": \"%s\",\n", stream.topology.c_str());
    std::fprintf(out, "    \"arrival_rate_per_s\": %g,\n",
                 stream.arrival_rate_per_s);
    std::fprintf(out, "    \"horizon_s\": %g,\n", stream.horizon_s);
    std::fprintf(out, "    \"flush_period_s\": %g,\n", stream.flush_period_s);
    std::fprintf(out, "    \"shards\": %zu,\n", stream.shards);
    std::fprintf(out, "    \"wall_s\": %.6f,\n", stream.wall_s);
    std::fprintf(out, "    \"arrivals\": %zu,\n", r.arrivals);
    std::fprintf(out, "    \"arrivals_per_sec\": %.1f,\n",
                 static_cast<double>(r.arrivals) / wall);
    std::fprintf(out, "    \"handovers\": %zu,\n", r.totals.handovers);
    std::fprintf(out, "    \"completed\": %zu,\n", r.totals.completed);
    std::fprintf(out, "    \"retired\": %zu,\n", r.retired);
    std::fprintf(out, "    \"peak_live\": %zu,\n", r.peak_live);
    std::fprintf(out, "    \"slot_high_water\": %zu,\n", r.slot_high_water);
    std::fprintf(out, "    \"flushes\": %zu,\n", r.flushes.size());
    std::fprintf(out, "    \"cross_shard_transfers\": %zu,\n",
                 r.totals.cross_shard_transfers);
    std::fprintf(out, "    \"late_handoffs\": %zu,\n",
                 r.totals.late_handoffs);
    std::fprintf(out, "    \"mean_price\": %.6f,\n", r.totals.mean_price);
    std::fprintf(out, "    \"msp_utility\": %.6f,\n",
                 r.totals.msp_total_utility);
    if (stream.overhead_measured)
      std::fprintf(out, "    \"telemetry_overhead_pct\": %.2f,\n",
                   stream.telemetry_overhead_pct);
    std::fprintf(out, "    \"invariants\": \"%s\"\n",
                 stream.conserved ? "ok" : "FAILED");
    std::fprintf(out, "  },\n");
  }
  if (train_cohorts > 0) {
    std::fprintf(out, "  \"pricer_training\": {\n");
    std::fprintf(out, "    \"wall_s\": %.6f,\n", train_wall_s);
    std::fprintf(out, "    \"cohorts\": %zu,\n", train_cohorts);
    std::fprintf(out, "    \"eval_mean_ratio\": %.6f\n", eval_mean_ratio);
    std::fprintf(out, "  },\n");
  }
  std::fprintf(out, "  \"seed_sweep\": {\n");
  std::fprintf(out, "    \"serial_s\": %.6f,\n", sweep_serial_s);
  std::fprintf(out, "    \"parallel_s\": %.6f,\n", sweep_parallel_s);
  std::fprintf(out, "    \"threads\": %zu\n", sweep_threads);
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool compare = false;
  bool stream = false;
  std::size_t max_shards = 0;  // 0: default per mode (8 full, 4 smoke)
  std::size_t max_msps = 0;    // 0: skip the oligopoly sweep
  std::string graph_name = "chain";
  std::string json_path = "BENCH_fleet.json";
  std::string trace_path;
  std::string metrics_path;
  std::string log_level_name;
  if (const char* env = std::getenv("VTM_LOG_LEVEL"); env != nullptr)
    log_level_name = env;  // the flag below overrides the env fallback
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--compare") == 0) compare = true;
    else if (std::strcmp(argv[i], "--stream") == 0) stream = true;
    else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      const long parsed = std::atol(argv[++i]);
      max_shards = parsed > 0 ? static_cast<std::size_t>(parsed) : 1;
    }
    else if (std::strcmp(argv[i], "--msps") == 0 && i + 1 < argc) {
      const long parsed = std::atol(argv[++i]);
      max_msps = parsed > 0 ? static_cast<std::size_t>(parsed) : 0;
    }
    else if (std::strcmp(argv[i], "--graph") == 0 && i + 1 < argc) {
      graph_name = argv[++i];
      stream = true;  // the streaming regime is the topology's consumer
    }
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc)
      metrics_path = argv[++i];
    else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc)
      log_level_name = argv[++i];
  }
  if (!log_level_name.empty()) {
    vtm::util::log_level level = vtm::util::log_level::info;
    if (!vtm::util::parse_log_level(log_level_name, level)) {
      std::fprintf(stderr,
                   "fleet_throughput: unknown log level \"%s\" "
                   "(debug, info, warn, error, off)\n",
                   log_level_name.c_str());
      return 1;
    }
    g_log = vtm::util::logger::to_stream(std::cerr, "fleet", level);
  }
  vtm::util::trace_session trace_session;
  vtm::util::metrics_registry metrics_registry;
  if (!trace_path.empty()) g_trace = &trace_session;
  if (!metrics_path.empty()) g_metrics = &metrics_registry;
  if (graph_name != "chain" && graph_name != "grid4") {
    std::fprintf(stderr,
                 "fleet_throughput: unknown --graph \"%s\" (chain, grid4)\n",
                 graph_name.c_str());
    return 1;
  }
  if (max_shards == 0) max_shards = smoke ? 4 : 8;
  // The engine requires shard_count <= RSU count; the bench chain is fixed
  // at 8 RSUs, so clamp rather than abort mid-sweep on a contract error.
  if (max_shards > 8) {
    std::printf("--shards clamped to 8 (the bench chain has 8 RSUs)\n");
    max_shards = 8;
  }
  const double duration_s = smoke ? 30.0 : 120.0;
  const std::vector<std::size_t> counts =
      smoke ? std::vector<std::size_t>{10, 100}
            : std::vector<std::size_t>{10, 100, 1000, 5000};

  std::printf("fleet_throughput: 8 RSUs, per-RSU 50 MHz pools, joint "
              "clearing (epoch 0.5 s), %.0f s horizon%s%s\n\n",
              duration_s, smoke ? " [smoke]" : "",
              compare ? " [oracle-vs-learned]" : "");

  // Optional learned backend: one pricer trained on cohorts harvested from
  // the smallest and largest regimes covers the whole sweep.
  std::shared_ptr<const vtm::core::learned_pricer> pricer;
  double train_wall_s = 0.0;
  std::size_t train_cohorts = 0;
  double eval_mean_ratio = 0.0;
  if (compare) {
    vtm::core::fleet_pricer_config train;
    auto harvest_small = base_config(duration_s);
    harvest_small.vehicle_count = counts.front() * 10;
    auto harvest_large = base_config(duration_s);
    harvest_large.vehicle_count = counts.back();
    train.harvest = {harvest_small, harvest_large};
    const auto start = clock_type::now();
    const auto trained = vtm::core::train_fleet_pricer(train);
    train_wall_s = seconds_since(start);
    pricer = trained.pricer;
    train_cohorts = trained.cohorts;
    eval_mean_ratio = trained.eval_mean_ratio;
    std::printf("pricer: trained on %zu cohorts in %.1f s, deterministic "
                "eval %.1f%% of oracle per cohort\n\n",
                trained.cohorts, train_wall_s,
                100.0 * trained.eval_mean_ratio);
  }

  std::vector<regime_report> regimes;
  vtm::util::ascii_table table({"vehicles", "wall (s)", "handovers",
                                "migrations", "handovers/s", "migrations/s",
                                "deferred", "max cohort", "mean price"});
  for (const std::size_t vehicles : counts) {
    auto config = base_config(duration_s);
    config.vehicle_count = vehicles;
    attach_telemetry(config);
    regime_report regime;
    regime.vehicles = vehicles;
    const auto start = clock_type::now();
    regime.oracle = vtm::core::run_fleet_scenario(config);
    regime.wall_s = seconds_since(start);
    const double safe_wall = regime.wall_s > 1e-9 ? regime.wall_s : 1e-9;
    table.add_row(std::vector<double>{
        static_cast<double>(vehicles), regime.wall_s,
        static_cast<double>(regime.oracle.handovers),
        static_cast<double>(regime.oracle.completed),
        static_cast<double>(regime.oracle.handovers) / safe_wall,
        static_cast<double>(regime.oracle.completed) / safe_wall,
        static_cast<double>(regime.oracle.deferred),
        static_cast<double>(regime.oracle.max_cohort),
        regime.oracle.mean_price});
    if (compare) {
      auto learned_config = config;
      learned_config.pricing = vtm::core::pricing_backend::learned;
      learned_config.pricer = pricer;
      const auto learned_start = clock_type::now();
      regime.learned = vtm::core::run_fleet_scenario(learned_config);
      regime.learned_wall_s = seconds_since(learned_start);
      regime.compared = true;
    }
    regimes.push_back(std::move(regime));
  }
  std::printf("%s\n", table.render().c_str());

  // Idle-budget check (DESIGN.md §16): re-run the largest regime with sinks
  // attached and report the wall delta. The helper swaps in its own
  // throwaway sinks, so the config's own telemetry pointers don't matter.
  {
    auto config = base_config(duration_s);
    config.vehicle_count = counts.back();
    regimes.back().telemetry_overhead_pct =
        fleet_overhead_pct(config);
    regimes.back().overhead_measured = true;
    std::printf("telemetry overhead (sinks attached, %zu vehicles): "
                "%+.2f%% wall\n\n",
                counts.back(), regimes.back().telemetry_overhead_pct);
  }

  bool thresholds_ok = true;
  if (compare) {
    std::printf("pricing backends: %s (full profiles) vs %s "
                "(partial-information observation)\n",
                vtm::core::to_string(vtm::core::pricing_backend::oracle),
                vtm::core::to_string(vtm::core::pricing_backend::learned));
    vtm::util::ascii_table compare_table(
        {"vehicles", "oracle U_s", "learned U_s", "learned/oracle",
         "oracle price", "learned price"});
    for (const auto& regime : regimes) {
      const double ratio =
          regime.oracle.msp_total_utility > 0.0
              ? regime.learned.msp_total_utility /
                    regime.oracle.msp_total_utility
              : 1.0;
      compare_table.add_row(std::vector<double>{
          static_cast<double>(regime.vehicles),
          regime.oracle.msp_total_utility,
          regime.learned.msp_total_utility, ratio,
          regime.oracle.mean_price, regime.learned.mean_price});
      // Acceptance floors: 90% uncongested, 95% in the congested regimes
      // (cohorts > 60, price cap saturated) where partial information is
      // cheapest.
      const double floor = regime.vehicles >= 1000 ? 0.95 : 0.90;
      if (ratio < floor) thresholds_ok = false;
    }
    std::printf("%s\n", compare_table.render().c_str());
  }

  // Sharded single-run scaling on the largest regime: the same fleet, the
  // RSU chain partitioned into per-shard event queues. Conservation must
  // hold at every shard count; the wall-clock ratio is reported (it only
  // materializes with real cores — on a 1-CPU runner expect ~1.0x plus
  // barrier noise).
  std::vector<shard_report> shard_sweep;
  bool shards_conserved = true;
  if (max_shards > 1) {
    auto shard_config = base_config(duration_s);
    shard_config.vehicle_count = counts.back();
    attach_telemetry(shard_config);
    std::printf("shard sweep (%zu vehicles, %zu RSUs):\n",
                shard_config.vehicle_count, shard_config.rsu_count);
    vtm::util::ascii_table shard_table(
        {"shards", "wall (s)", "speedup", "handovers", "migrations",
         "transfers", "retargets", "late"});
    for (std::size_t shards = 1; shards <= max_shards; shards *= 2) {
      shard_config.shard_count = shards;
      shard_report report;
      report.shards = shards;
      const auto start = clock_type::now();
      report.result = vtm::core::run_fleet_scenario(shard_config);
      report.wall_s = seconds_since(start);
      const auto& r = report.result;
      std::size_t twin_migrations = 0;
      for (const auto& v : r.vehicles) twin_migrations += v.migrations;
      report.conserved =
          r.handovers == r.completed + r.priced_out + r.abandoned &&
          r.vehicles.size() == shard_config.vehicle_count &&
          twin_migrations == r.completed;
      shards_conserved = shards_conserved && report.conserved;
      const double wall = report.wall_s > 1e-9 ? report.wall_s : 1e-9;
      const double serial_wall =
          shard_sweep.empty() ? report.wall_s : shard_sweep.front().wall_s;
      shard_table.add_row(std::vector<double>{
          static_cast<double>(shards), report.wall_s,
          (serial_wall > 1e-9 ? serial_wall : 1e-9) / wall,
          static_cast<double>(r.handovers),
          static_cast<double>(r.completed),
          static_cast<double>(r.cross_shard_transfers),
          static_cast<double>(r.cross_shard_retargets),
          static_cast<double>(r.late_handoffs)});
      shard_sweep.push_back(std::move(report));
    }
    std::printf("%s", shard_table.render().c_str());
    // shard_config still holds the sweep's last (largest) shard count.
    shard_sweep.back().telemetry_overhead_pct =
        fleet_overhead_pct(shard_config);
    shard_sweep.back().overhead_measured = true;
    std::printf("telemetry overhead (%zu shards): %+.2f%% wall\n",
                shard_sweep.back().shards,
                shard_sweep.back().telemetry_overhead_pct);
    std::printf("shard invariants (conservation at every shard count): %s\n\n",
                shards_conserved ? "OK" : "FAILED");
  }

  // Oligopoly sweep on the largest regime: the same fleet re-cleared under
  // market_mode::oligopoly with 1..M symmetric competing MSPs (each the
  // monopoly economics). M = 1 must reproduce the monopoly joint run
  // bitwise (the delegation contract); M >= 2 shows the competition: more
  // capacity, lower clearing prices, and a per-MSP utility split whose sum
  // decomposes the total.
  std::vector<msp_report> msp_sweep;
  bool msps_conserved = true;
  if (max_msps > 0) {
    auto msp_config = base_config(duration_s);
    msp_config.vehicle_count = counts.back();
    std::printf("MSP sweep (%zu vehicles, %zu RSUs, oligopoly clearing):\n",
                msp_config.vehicle_count, msp_config.rsu_count);
    vtm::util::ascii_table msp_table(
        {"msps", "wall (s)", "x mono", "handovers", "migrations",
         "mean price", "U_s total", "U_s split min/max", "sweeps", "evals",
         "warm %", "unconverged"});
    vtm::core::fleet_config last_msp_config;
    for (std::size_t msps = 1; msps <= max_msps; ++msps) {
      auto config = msp_config;
      config.mode = vtm::core::market_mode::oligopoly;
      for (std::size_t m = 0; m < msps; ++m)
        config.msps.push_back({vtm::util::meters{0.0}, config.unit_cost,
                               config.price_cap,
                               config.bandwidth_per_pool_mhz});
      attach_telemetry(config);
      if (msps == max_msps) last_msp_config = config;
      msp_report report;
      report.msps = msps;
      const auto start = clock_type::now();
      report.result = vtm::core::run_fleet_scenario(config);
      report.wall_s = seconds_since(start);
      report.conserved = oligopoly_conserved(config, report.result, msps);
      if (msps == 1 && !regimes.empty()) {
        // Delegation contract: the M = 1 oligopoly is the monopoly engine.
        const auto& mono = regimes.back().oracle;
        report.conserved =
            report.conserved &&
            report.result.msp_total_utility == mono.msp_total_utility &&
            report.result.mean_price == mono.mean_price &&
            report.result.completed == mono.completed;
      }
      msps_conserved = msps_conserved && report.conserved;
      const auto& r = report.result;
      double split_min = 0.0;
      double split_max = 0.0;
      if (!r.msp_utilities.empty()) {
        split_min = r.msp_utilities.front();
        split_max = r.msp_utilities.front();
        for (const double u : r.msp_utilities) {
          split_min = std::min(split_min, u);
          split_max = std::max(split_max, u);
        }
      }
      const double mono_wall =
          msp_sweep.empty() ? report.wall_s : msp_sweep.front().wall_s;
      msp_table.add_row(std::vector<double>{
          static_cast<double>(msps), report.wall_s,
          report.wall_s / (mono_wall > 1e-9 ? mono_wall : 1e-9),
          static_cast<double>(r.handovers),
          static_cast<double>(r.completed), r.mean_price,
          r.msp_total_utility, split_max > 0.0 ? split_min / split_max : 1.0,
          static_cast<double>(r.solver_sweeps),
          static_cast<double>(r.objective_evals),
          100.0 * warm_hit_rate(r),
          static_cast<double>(r.unconverged_clearings)});
      msp_sweep.push_back(std::move(report));
    }
    std::printf("%s", msp_table.render().c_str());
    msp_sweep.back().telemetry_overhead_pct =
        fleet_overhead_pct(last_msp_config);
    msp_sweep.back().overhead_measured = true;
    std::printf("telemetry overhead (%zu MSPs): %+.2f%% wall\n",
                msp_sweep.back().msps,
                msp_sweep.back().telemetry_overhead_pct);
    std::printf("oligopoly invariants (conservation + M=1 delegation + "
                "certified clearings): %s\n\n",
                msps_conserved ? "OK" : "FAILED");
  }

  // Sustained-load streaming regime: Poisson arrivals over a horizon far
  // longer than a vehicle's residence time, flushed in periodic windows.
  // Memory is gated by the slot arena (bounded by the live population), and
  // the flush deltas must reassemble the run's totals exactly once.
  stream_report stream_run;
  bool stream_ok = true;
  if (stream) {
    vtm::core::streaming_config stream_config;
    stream_config.base = base_config(duration_s);
    if (graph_name == "grid4")
      stream_config.base.graph =
          std::make_shared<const vtm::sim::road_graph>(
              vtm::sim::road_graph::grid(4, 4, 1000.0, 600.0));
    const std::size_t sites =
        stream_config.base.graph ? stream_config.base.graph->rsu_count()
                                 : stream_config.base.rsu_count;
    stream_config.base.shard_count = std::min(max_shards, sites);
    // Smoke keeps the TSan CI lap short (overloaded on purpose: maximal
    // concurrent market pressure in a 40 s horizon). The full regime runs a
    // *sustainable* load — λ = 6/s holds the 8-RSU market just below
    // saturation, so the live population plateaus near λ x residence while
    // λ x horizon = 120k expected arrivals flow through (gated at 100k).
    stream_config.arrival_rate_per_s = vtm::util::per_second{smoke ? 40.0 : 6.0};
    stream_config.horizon_s = vtm::util::seconds{smoke ? 40.0 : 20000.0};
    stream_config.flush_period_s = vtm::util::seconds{smoke ? 5.0 : 50.0};
    attach_telemetry(stream_config.base);

    stream_run.ran = true;
    stream_run.topology = graph_name;
    stream_run.shards = stream_config.base.shard_count;
    stream_run.arrival_rate_per_s = stream_config.arrival_rate_per_s.value();
    stream_run.horizon_s = stream_config.horizon_s.value();
    stream_run.flush_period_s = stream_config.flush_period_s.value();
    const auto start = clock_type::now();
    stream_run.result = vtm::core::run_streaming_fleet(stream_config);
    stream_run.wall_s = seconds_since(start);
    const auto& r = stream_run.result;
    stream_run.conserved = stream_conserved(r);
    stream_ok = stream_run.conserved;
    if (!smoke)
      stream_ok = stream_ok && r.arrivals >= 100000 &&
                  r.slot_high_water < r.arrivals / 2;
    const double wall = stream_run.wall_s > 1e-9 ? stream_run.wall_s : 1e-9;
    std::printf(
        "streaming regime (%s topology, lambda %.0f/s over %.0f s, flush "
        "%.0f s, %zu shards):\n"
        "  %zu arrivals in %.2f s wall (%.0f arrivals/s), %zu handovers, "
        "%zu migrations, %zu flushes\n"
        "  peak live %zu, slot high-water %zu, retired %zu, transfers %zu, "
        "late %zu\n"
        "stream invariants (exactly-once flush accounting + bounded "
        "arena%s): %s\n\n",
        graph_name.c_str(), stream_config.arrival_rate_per_s.value(),
        stream_config.horizon_s.value(), stream_config.flush_period_s.value(),
        stream_run.shards, r.arrivals, stream_run.wall_s,
        static_cast<double>(r.arrivals) / wall, r.totals.handovers,
        r.totals.completed, r.flushes.size(), r.peak_live, r.slot_high_water,
        r.retired, r.totals.cross_shard_transfers, r.totals.late_handoffs,
        smoke ? "" : " + >= 100k arrivals", stream_ok ? "OK" : "FAILED");
    stream_run.telemetry_overhead_pct =
        stream_overhead_pct(stream_config);
    stream_run.overhead_measured = true;
    std::printf("telemetry overhead (stream): %+.2f%% wall\n\n",
                stream_run.telemetry_overhead_pct);
  }

  // Seed-sweep scaling: independent seeds sharded across the thread pool.
  const std::size_t sweep_vehicles = smoke ? 100 : 1000;
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44};
  auto sweep_config = base_config(duration_s);
  sweep_config.vehicle_count = sweep_vehicles;

  const auto serial_start = clock_type::now();
  const auto serial = vtm::core::run_fleet_sweep(sweep_config, seeds, 0);
  const double serial_wall = seconds_since(serial_start);

  const std::size_t threads =
      std::max(1u, std::thread::hardware_concurrency());
  const auto parallel_start = clock_type::now();
  const auto parallel = vtm::core::run_fleet_sweep(sweep_config, seeds, threads);
  const double parallel_wall = seconds_since(parallel_start);

  // Gate: the threaded sweep must reproduce every per-seed result, not just
  // a lucky aggregate.
  bool reproduced = serial.size() == parallel.size();
  std::size_t serial_migrations = 0;
  for (std::size_t i = 0; i < serial.size() && reproduced; ++i) {
    serial_migrations += serial[i].completed;
    reproduced = serial[i].completed == parallel[i].completed &&
                 serial[i].handovers == parallel[i].handovers &&
                 serial[i].msp_total_utility == parallel[i].msp_total_utility &&
                 serial[i].vmu_total_utility == parallel[i].vmu_total_utility &&
                 serial[i].mean_price == parallel[i].mean_price;
  }

  std::printf("seed sweep (%zu seeds x %zu vehicles): serial %.2f s, "
              "%zu threads %.2f s (%.2fx), %zu migrations, per-seed "
              "reproduction %s\n",
              seeds.size(), sweep_vehicles, serial_wall, threads,
              parallel_wall,
              parallel_wall > 1e-9 ? serial_wall / parallel_wall : 0.0,
              serial_migrations, reproduced ? "OK" : "FAILED");
  if (compare)
    std::printf("oracle-vs-learned thresholds (>=0.90 uncongested, >=0.95 "
                "congested): %s\n",
                thresholds_ok ? "OK" : "FAILED");

  if (max_msps > 0)
    std::printf("oligopoly sweep invariants: %s\n",
                msps_conserved ? "OK" : "FAILED");
  if (stream)
    std::printf("stream invariants: %s\n", stream_ok ? "OK" : "FAILED");

  write_json(json_path, smoke, duration_s, regimes, shard_sweep, msp_sweep,
             stream_run, train_wall_s, train_cohorts, eval_mean_ratio,
             serial_wall, parallel_wall, threads);
  if (g_trace != nullptr) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "fleet_throughput: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    trace_session.write_chrome_json(out);
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                trace_session.event_count());
  }
  if (g_metrics != nullptr) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "fleet_throughput: cannot write %s\n",
                   metrics_path.c_str());
      return 1;
    }
    metrics_registry.write_json(out);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return reproduced && thresholds_ok && shards_conserved && msps_conserved &&
                 stream_ok
             ? 0
             : 1;
}
