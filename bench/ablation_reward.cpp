// Ablation A1 (DESIGN.md): reward-function variants for eq. (12).
//
// The paper's binary reward compares the per-round utility against the best
// utility "obtained until round k". With a continuous stochastic policy,
// exact equality almost never recurs, so the library adds a relative
// tolerance η; this bench quantifies that choice and compares three modes:
//   * paper-binary  — U_best reset each episode, tolerance η sweep;
//   * persistent    — U_best carried across episodes;
//   * shaped        — dense reward U_s / U_oracle.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

struct outcome {
  double optimality = 0.0;
  double final_return = 0.0;
  double price_error = 0.0;
};

outcome run(vtm::core::reward_mode mode, double tolerance,
            std::uint64_t seed) {
  auto config = vtm::bench::sweep_mechanism_config(seed);
  config.env.mode = mode;
  config.env.reward_tolerance = tolerance;
  const auto result = vtm::core::run_learning_mechanism(
      vtm::bench::two_vmu_market(5.0), config);
  outcome out;
  out.optimality = result.optimality();
  out.final_return = result.history.back().episode_return;
  out.price_error = result.learned_price - result.oracle.price;
  return out;
}

}  // namespace

int main() {
  vtm::bench::print_header("Ablation A1",
                           "Reward-function variants for eq. (12)");
  std::printf("Rollout engine: rl::vector_env B=4, fast-math sampling "
              "(bench_common::sweep_mechanism_config); U_best is per-replica "
              "state, so every reward mode keeps its single-env semantics\n");

  vtm::util::ascii_table table({"mode", "η", "optimality", "final return",
                                "price error"});
  std::printf("\n--- CSV (ablation_reward.csv) ---\n");
  vtm::util::csv_writer csv(std::cout, {"mode", "tolerance", "optimality",
                                        "final_return", "price_error"});

  const auto record = [&](const char* name, vtm::core::reward_mode mode,
                          double tolerance, std::uint64_t seed) {
    const auto result = run(mode, tolerance, seed);
    table.add_row({name, vtm::util::format_number(tolerance),
                   vtm::util::format_number(result.optimality),
                   vtm::util::format_number(result.final_return),
                   vtm::util::format_number(result.price_error)});
    csv.row({std::string(name), vtm::util::format_number(tolerance),
             vtm::util::format_number(result.optimality),
             vtm::util::format_number(result.final_return),
             vtm::util::format_number(result.price_error)});
  };

  record("paper-binary", vtm::core::reward_mode::paper_binary, 0.0, 11);
  record("paper-binary", vtm::core::reward_mode::paper_binary, 0.01, 12);
  record("paper-binary", vtm::core::reward_mode::paper_binary, 0.05, 13);
  record("persistent", vtm::core::reward_mode::persistent_binary, 0.01, 14);
  record("shaped", vtm::core::reward_mode::shaped, 0.01, 15);

  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nReading: all modes find the equilibrium; the tolerance mainly "
      "affects how fast the episode *return* saturates (Fig. 2a), not the "
      "learned price. The shaped reward is the most sample-efficient; the "
      "paper's binary reward works because the advantage normalization "
      "recovers a signal from sparse 0/1 outcomes.\n");
  return 0;
}
