// Regenerates Fig. 3(d): the average utility and bandwidth strategy of the
// VMUs versus the number of VMUs N ∈ {1..6}. Setting: D = 100 MB, α = 5·100.
//
// Expected shape (paper): average purchased bandwidth unchanged at first and
// decreasing once B_max binds; average VMU utility declining as competition
// grows (the paper reports a 12.8% drop from N=2 to N=6 for its DRL run; the
// analytic equilibrium's drop is steeper — see EXPERIMENTS.md).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/equilibrium.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  vtm::bench::print_header(
      "Fig. 3(d)", "Average VMU utility and bandwidth vs number of VMUs");

  std::vector<double> n_axis, se_avg_bandwidth, drl_avg_bandwidth,
      se_avg_utility, drl_avg_utility;

  vtm::util::ascii_table table({"N", "SE b̄ (MHz)", "DRL b̄ (MHz)",
                                "SE Ū_n", "DRL Ū_n"});

  for (std::size_t n = 1; n <= 6; ++n) {
    const auto params = vtm::bench::n_vmu_market(n);
    const auto mech = vtm::core::run_learning_mechanism(
        params, vtm::bench::sweep_mechanism_config(3042 + n));
    const auto count = static_cast<double>(n);

    n_axis.push_back(count);
    se_avg_bandwidth.push_back(mech.oracle.total_demand / count);
    drl_avg_bandwidth.push_back(mech.learned_total_demand / count);
    se_avg_utility.push_back(
        vtm::bench::display_units(mech.oracle.total_vmu_utility / count));
    drl_avg_utility.push_back(
        vtm::bench::display_units(mech.learned_vmu_utility / count));

    table.add_row(std::vector<double>{
        count, se_avg_bandwidth.back(), drl_avg_bandwidth.back(),
        se_avg_utility.back(), drl_avg_utility.back()});
  }

  std::printf("\n--- CSV (fig3d.csv) ---\n");
  vtm::util::csv_writer csv(
      std::cout, {"n_vmus", "se_avg_bandwidth", "drl_avg_bandwidth",
                  "se_avg_vmu_utility", "drl_avg_vmu_utility"});
  for (std::size_t i = 0; i < n_axis.size(); ++i)
    csv.row({n_axis[i], se_avg_bandwidth[i], drl_avg_bandwidth[i],
             se_avg_utility[i], drl_avg_utility[i]});

  std::printf("\n%s", table.render().c_str());

  vtm::util::ascii_chart chart(64, 12);
  chart.set_title("Fig. 3(d): average VMU bandwidth vs N (MHz)");
  chart.set_x(n_axis);
  chart.add_series({"SE", se_avg_bandwidth, 'S'});
  chart.add_series({"DRL", drl_avg_bandwidth, '*'});
  std::printf("\n%s", chart.render().c_str());

  vtm::util::ascii_chart utility_chart(64, 12);
  utility_chart.set_title(
      "Fig. 3(d) inset: average VMU utility vs N (display units)");
  utility_chart.set_x(n_axis);
  utility_chart.add_series({"SE", se_avg_utility, 'S'});
  utility_chart.add_series({"DRL", drl_avg_utility, '*'});
  std::printf("\n%s", utility_chart.render().c_str());

  // The paper's quoted statistic: decline of average VMU utility, N=2 -> 6.
  const double decline =
      100.0 * (se_avg_utility[1] - se_avg_utility[5]) / se_avg_utility[1];
  std::printf("\nAverage VMU utility declines %.1f%% from N=2 to N=6 at the "
              "SE (paper's DRL run reports 12.8%%; same sign and shape — "
              "flat then falling).\n", decline);
  return 0;
}
