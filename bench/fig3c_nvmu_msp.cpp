// Regenerates Fig. 3(c): the utility and price strategy of the MSP versus
// the number of VMUs N ∈ {1..6}. Setting: D = 100 MB, α = 5·100, B_max = 50.
//
// Expected shape (paper): MSP utility increasing in N (7.03 at N=2 to 20.35
// at N=6 in display units — ours: 7.04 and 20.38); price flat while
// bandwidth is slack, rising once B_max binds (N >= 4).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/equilibrium.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  vtm::bench::print_header(
      "Fig. 3(c)", "MSP utility and price strategy vs number of VMUs");

  std::vector<double> n_axis, se_utility, drl_utility, greedy_utility,
      random_utility, se_price, drl_price;

  vtm::util::ascii_table table(
      {"N", "regime", "SE price", "DRL price", "SE U_s", "DRL U_s",
       "greedy U_s", "random U_s"});

  for (std::size_t n = 1; n <= 6; ++n) {
    const auto params = vtm::bench::n_vmu_market(n);
    const auto mech = vtm::core::run_learning_mechanism(
        params, vtm::bench::sweep_mechanism_config(2042 + n));
    const auto baselines =
        vtm::core::run_paper_baselines(params, 20, 100, 13);

    n_axis.push_back(static_cast<double>(n));
    se_price.push_back(mech.oracle.price);
    drl_price.push_back(mech.learned_price);
    se_utility.push_back(
        vtm::bench::display_units(mech.oracle.leader_utility));
    drl_utility.push_back(vtm::bench::display_units(mech.learned_utility));
    random_utility.push_back(
        vtm::bench::display_units(baselines[0].mean_utility));
    greedy_utility.push_back(
        vtm::bench::display_units(baselines[1].mean_utility));

    table.add_row({vtm::util::format_number(static_cast<double>(n)),
                   vtm::core::to_string(mech.oracle.regime),
                   vtm::util::format_number(mech.oracle.price),
                   vtm::util::format_number(mech.learned_price),
                   vtm::util::format_number(se_utility.back()),
                   vtm::util::format_number(drl_utility.back()),
                   vtm::util::format_number(greedy_utility.back()),
                   vtm::util::format_number(random_utility.back())});
  }

  std::printf("\n--- CSV (fig3c.csv) ---\n");
  vtm::util::csv_writer csv(
      std::cout, {"n_vmus", "se_price", "drl_price", "se_utility",
                  "drl_utility", "greedy_utility", "random_utility"});
  for (std::size_t i = 0; i < n_axis.size(); ++i)
    csv.row({n_axis[i], se_price[i], drl_price[i], se_utility[i],
             drl_utility[i], greedy_utility[i], random_utility[i]});

  std::printf("\n%s", table.render().c_str());

  vtm::util::ascii_chart chart(64, 12);
  chart.set_title("Fig. 3(c): MSP utility vs N (display units)");
  chart.set_x(n_axis);
  chart.add_series({"SE", se_utility, 'S'});
  chart.add_series({"DRL", drl_utility, '*'});
  chart.add_series({"greedy", greedy_utility, 'g'});
  chart.add_series({"random", random_utility, 'r'});
  std::printf("\n%s", chart.render().c_str());

  vtm::util::ascii_chart price_chart(64, 10);
  price_chart.set_title(
      "Fig. 3(c) inset: price flat while B_max slack, rising once it binds");
  price_chart.set_x(n_axis);
  price_chart.add_series({"SE price", se_price, 'S'});
  price_chart.add_series({"DRL price", drl_price, '*'});
  std::printf("\n%s", price_chart.render().c_str());

  std::printf("\nShape check: U_s increasing in N; price unchanged for "
              "N<=3 then rising (capacity binds at N=4).\n");
  return 0;
}
