// Regenerates Fig. 3(b): the total utility and total bandwidth strategy of
// the VMUs versus the unit transmission cost C ∈ {5..9}.
// Setting: two VMUs, D = (200, 100) MB, α = (5, 5)·100.
//
// Expected shape (paper): total purchased bandwidth falls with C (27.9 at
// C=6 to 23.4 at C=8 — ours: 28.2 and 23.4); total VMU utility falls with C;
// the DRL scheme tracks the SE.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/equilibrium.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  vtm::bench::print_header(
      "Fig. 3(b)", "Total VMU utility and bandwidth strategy vs cost");

  std::vector<double> costs, se_bandwidth, drl_bandwidth, se_vmu_utility,
      drl_vmu_utility, random_vmu, greedy_vmu;

  vtm::util::ascii_table table(
      {"C", "SE Σb (MHz)", "DRL Σb (MHz)", "SE ΣU_n", "DRL ΣU_n",
       "greedy ΣU_n", "random ΣU_n"});

  for (double cost = 5.0; cost <= 9.0; cost += 1.0) {
    const auto params = vtm::bench::two_vmu_market(cost);
    const auto mech = vtm::core::run_learning_mechanism(
        params, vtm::bench::sweep_mechanism_config(
                    1042 + static_cast<std::uint64_t>(cost)));
    const auto baselines =
        vtm::core::run_paper_baselines(params, 20, 100, 11);

    costs.push_back(cost);
    se_bandwidth.push_back(mech.oracle.total_demand);
    drl_bandwidth.push_back(mech.learned_total_demand);
    se_vmu_utility.push_back(
        vtm::bench::display_units(mech.oracle.total_vmu_utility));
    drl_vmu_utility.push_back(
        vtm::bench::display_units(mech.learned_vmu_utility));
    random_vmu.push_back(
        vtm::bench::display_units(baselines[0].mean_vmu_utility));
    greedy_vmu.push_back(
        vtm::bench::display_units(baselines[1].mean_vmu_utility));

    table.add_row(std::vector<double>{
        cost, se_bandwidth.back(), drl_bandwidth.back(),
        se_vmu_utility.back(), drl_vmu_utility.back(), greedy_vmu.back(),
        random_vmu.back()});
  }

  std::printf("\n--- CSV (fig3b.csv) ---\n");
  vtm::util::csv_writer csv(
      std::cout,
      {"cost", "se_total_bandwidth", "drl_total_bandwidth",
       "se_total_vmu_utility", "drl_total_vmu_utility",
       "greedy_total_vmu_utility", "random_total_vmu_utility"});
  for (std::size_t i = 0; i < costs.size(); ++i)
    csv.row({costs[i], se_bandwidth[i], drl_bandwidth[i], se_vmu_utility[i],
             drl_vmu_utility[i], greedy_vmu[i], random_vmu[i]});

  std::printf("\n%s", table.render().c_str());

  vtm::util::ascii_chart chart(64, 12);
  chart.set_title("Fig. 3(b): total VMU bandwidth vs cost (MHz)");
  chart.set_x(costs);
  chart.add_series({"SE", se_bandwidth, 'S'});
  chart.add_series({"DRL", drl_bandwidth, '*'});
  std::printf("\n%s", chart.render().c_str());

  vtm::util::ascii_chart utility_chart(64, 12);
  utility_chart.set_title(
      "Fig. 3(b) inset: total VMU utility vs cost (display units)");
  utility_chart.set_x(costs);
  utility_chart.add_series({"SE", se_vmu_utility, 'S'});
  utility_chart.add_series({"DRL", drl_vmu_utility, '*'});
  utility_chart.add_series({"greedy", greedy_vmu, 'g'});
  utility_chart.add_series({"random", random_vmu, 'r'});
  std::printf("\n%s", utility_chart.render().c_str());

  std::printf("\nShape check: bandwidth and VMU utility decreasing in C "
              "(paper anchors: Σb ≈ 27.9 at C=6, 23.4 at C=8).\n");
  return 0;
}
