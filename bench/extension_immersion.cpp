// Extension E+ (paper §VI future work): alternative immersion metrics.
//
// Re-solves the Fig. 3(a) cost sweep under three immersion models — the
// paper's logarithmic metric, a power-law metric, and a saturating metric —
// using the generalized (closed-form-free) market. Shows which qualitative
// conclusions survive a metric change and which are artifacts of the log
// form.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/equilibrium.hpp"
#include "core/immersion_models.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  vtm::bench::print_header(
      "Extension: immersion metrics",
      "Equilibrium under log / power / saturating immersion models");

  const vtm::core::log_immersion log_model;
  const vtm::core::power_immersion power_model(0.5);
  const vtm::core::saturating_immersion saturating_model(2.0);
  const std::vector<const vtm::core::immersion_model*> models{
      &log_model, &power_model, &saturating_model};

  std::printf("\n--- CSV (extension_immersion.csv) ---\n");
  vtm::util::csv_writer csv(std::cout, {"model", "cost", "price",
                                        "total_bandwidth", "msp_utility",
                                        "total_vmu_utility"});

  vtm::util::ascii_table table(
      {"model", "C", "p*", "Σb (MHz)", "U_s", "ΣU_n"});
  for (const auto* model : models) {
    for (double cost = 5.0; cost <= 9.0; cost += 2.0) {
      auto params = vtm::bench::two_vmu_market(cost);
      const vtm::core::generalized_market market(params, *model);
      const auto solution = market.solve();
      csv.row({std::string(model->name()), vtm::util::format_number(cost),
               vtm::util::format_number(solution.price),
               vtm::util::format_number(solution.total_demand),
               vtm::util::format_number(solution.leader_utility),
               vtm::util::format_number(solution.total_vmu_utility)});
      table.add_row({model->name(), vtm::util::format_number(cost),
                     vtm::util::format_number(solution.price),
                     vtm::util::format_number(solution.total_demand),
                     vtm::util::format_number(solution.leader_utility),
                     vtm::util::format_number(solution.total_vmu_utility)});
    }
  }
  std::printf("\n%s", table.render().c_str());

  // Validation row: the log model must match the paper's closed form.
  const auto closed = vtm::core::solve_equilibrium(
      vtm::core::migration_market(vtm::bench::two_vmu_market(5.0)));
  const vtm::core::generalized_market check(
      vtm::bench::two_vmu_market(5.0), log_model);
  const auto numeric = check.solve();
  std::printf("\nValidation: log model numeric p* = %.4f vs closed form "
              "%.4f (Δ = %.2g)\n",
              numeric.price, closed.price,
              std::abs(numeric.price - closed.price));

  std::printf(
      "\nReading: the paper's price-increasing-in-cost shape is a property "
      "of the *interior* regime its log metric induces. The power metric's "
      "flatter marginal-immersion curve makes demand so strong that B_max "
      "binds — price sits at the capacity-clearing level, insensitive to C "
      "(profit still falls with C). The saturating metric concentrates "
      "willingness-to-pay at tiny bandwidths, so the MSP rides the price "
      "cap and sells little. Conclusion-robustness depends on the metric: "
      "a reason the paper's future work calls for better immersion "
      "models.\n");
  return 0;
}
