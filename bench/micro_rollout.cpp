// Micro-bench: rollout collection throughput of the batched engine.
//
// Measures env-steps/sec of pure rollout collection (policy sampling +
// environment stepping + buffer writes, no PPO updates) on the Fig. 2
// pricing POMDP:
//   * sequential    — the seed's per-step scalar hot path: one 1-row
//     autograd forward (graph construction included) and one env.step per
//     transition, exactly what rl::trainer did before the batched engine;
//   * batched exact — vector_env + act_batch with the graph-free inference
//     forward, bitwise-identical outputs to the sequential path;
//   * batched fast  — same engine with nn::math_mode::fast activations
//     (trainer_config::fast_rollout), serial env stepping;
//   * batched +T    — fast mode with a thread pool sharding env steps.
// The acceptance bar for the engine is >= 3x sequential throughput at B=16.
// Results land in CSV so future PRs can diff the perf baseline.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/env.hpp"
#include "nn/gaussian.hpp"
#include "rl/buffer.hpp"
#include "rl/policy.hpp"
#include "rl/vector_env.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

namespace core = vtm::core;
namespace rl = vtm::rl;
namespace nn = vtm::nn;

core::pricing_env_config env_config() {
  core::pricing_env_config config;
  config.rounds_per_episode = 100;
  config.seed = 17;
  return config;
}

rl::actor_critic make_policy(std::size_t obs_dim, vtm::util::rng& gen) {
  rl::actor_critic_config config;
  config.obs_dim = obs_dim;
  config.act_dim = 1;
  config.hidden = {64, 64};
  return rl::actor_critic(config, gen);
}

/// The seed's per-step scalar path: autograd forward per row (graph nodes
/// and all), replicated here as the frozen pre-refactor baseline.
rl::actor_critic::action_sample legacy_act(const rl::actor_critic& policy,
                                           const nn::tensor& observation,
                                           vtm::util::rng& gen) {
  const auto out = policy.forward(nn::variable::constant(observation));
  rl::actor_critic::action_sample sample;
  sample.action =
      nn::gaussian_sample(out.mean.value(), policy.log_std().value(), gen);
  sample.log_prob = nn::gaussian_log_prob_value(out.mean.value(),
                                                policy.log_std().value(),
                                                sample.action)
                        .item();
  sample.value = out.value.value().item();
  return sample;
}

double sequential_steps_per_sec(std::size_t batch, std::size_t steps_per_env) {
  const auto factory =
      core::make_pricing_env_factory(vtm::bench::two_vmu_market(5.0),
                                     env_config());
  std::vector<std::unique_ptr<rl::environment>> envs;
  std::vector<nn::tensor> observations;
  for (std::size_t i = 0; i < batch; ++i) {
    envs.push_back(factory(i));
    observations.push_back(envs.back()->reset());
  }
  vtm::util::rng net_gen(1);
  const rl::actor_critic policy = make_policy(envs[0]->observation_dim(),
                                              net_gen);
  vtm::util::rng act_gen(2);
  rl::rollout_buffer buffer(steps_per_env, envs[0]->observation_dim(), 1);

  const auto start = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    buffer.clear();
    for (std::size_t k = 0; k < steps_per_env; ++k) {
      const auto sample = legacy_act(policy, observations[i], act_gen);
      auto result = envs[i]->step(sample.action);
      buffer.add(observations[i], sample.action, result.reward, sample.value,
                 sample.log_prob, result.done);
      sink += result.reward;
      observations[i] =
          result.done ? envs[i]->reset() : std::move(result.observation);
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::printf("  [sink %.0f]", sink);
  return static_cast<double>(batch * steps_per_env) / elapsed.count();
}

/// Batched path: one B-row inference forward + vector_env step per round.
double batched_steps_per_sec(std::size_t batch, std::size_t steps_per_env,
                             nn::math_mode mode, std::size_t threads) {
  rl::vector_env envs(
      core::make_pricing_env_factory(vtm::bench::two_vmu_market(5.0),
                                     env_config()),
      batch, threads);
  vtm::util::rng net_gen(1);
  const rl::actor_critic policy = make_policy(envs.observation_dim(), net_gen);
  vtm::util::rng act_gen(2);
  rl::rollout_buffer buffer(steps_per_env, envs.observation_dim(), 1, batch);

  nn::tensor observations = envs.reset();
  const auto start = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (std::size_t k = 0; k < steps_per_env; ++k) {
    const auto sample = policy.act_batch(observations, act_gen, mode);
    const auto result = envs.step(sample.actions);
    buffer.add_batch(observations, sample.actions, result.rewards,
                     sample.values, sample.log_probs, result.dones);
    for (double r : result.rewards) sink += r;
    observations = result.observations;
    if (buffer.full()) buffer.clear();
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::printf("  [sink %.0f]", sink);
  return static_cast<double>(batch * steps_per_env) / elapsed.count();
}

}  // namespace

int main() {
  vtm::bench::print_header(
      "Micro: rollout", "Batched rollout throughput (env-steps/sec)");

  constexpr std::size_t steps_per_env = 2000;
  constexpr std::size_t pool_threads = 3;
  const std::vector<std::size_t> batches{1, 4, 16};

  std::printf("\nwarm-up + measurement, %zu steps/env:\n", steps_per_env);

  struct row {
    std::size_t batch;
    double sequential = 0.0;
    double exact = 0.0;
    double fast = 0.0;
    double fast_threads = 0.0;
  };
  std::vector<row> rows;
  for (const std::size_t batch : batches) rows.push_back(row{batch});

  // Interleave repetitions (best of `reps`) so background-load drift on
  // shared CI hardware cannot bias one configuration against another.
  constexpr int reps = 3;
  const auto keep_best = [](double& slot, double measured) {
    if (measured > slot) slot = measured;
  };
  for (int rep = 0; rep < reps; ++rep) {
    std::printf("rep %d/%d:\n", rep + 1, reps);
    for (auto& r : rows) {
      std::printf("B=%-3zu sequential   ...", r.batch);
      keep_best(r.sequential, sequential_steps_per_sec(r.batch,
                                                       steps_per_env));
      std::printf("\n      batched exact...");
      keep_best(r.exact,
                batched_steps_per_sec(r.batch, steps_per_env,
                                      vtm::nn::math_mode::exact, 0));
      std::printf("\n      batched fast ...");
      keep_best(r.fast,
                batched_steps_per_sec(r.batch, steps_per_env,
                                      vtm::nn::math_mode::fast, 0));
      std::printf("\n      fast +%zuT    ...", pool_threads);
      keep_best(r.fast_threads,
                batched_steps_per_sec(r.batch, steps_per_env,
                                      vtm::nn::math_mode::fast,
                                      pool_threads));
      std::printf("\n");
    }
  }

  std::printf("\n--- CSV (micro_rollout.csv) ---\n");
  vtm::util::csv_writer csv(std::cout,
                            {"batch", "sequential_sps", "batched_exact_sps",
                             "batched_fast_sps", "batched_fast_threads_sps",
                             "speedup_fast_vs_sequential"});
  vtm::util::ascii_table table({"B", "sequential", "batched exact",
                                "batched fast", "fast +pool", "speedup"});
  for (const auto& r : rows) {
    const double speedup = r.fast / r.sequential;
    csv.row({static_cast<double>(r.batch), r.sequential, r.exact, r.fast,
             r.fast_threads, speedup});
    table.add_row({vtm::util::format_number(static_cast<double>(r.batch)),
                   vtm::util::format_number(r.sequential),
                   vtm::util::format_number(r.exact),
                   vtm::util::format_number(r.fast),
                   vtm::util::format_number(r.fast_threads),
                   vtm::util::format_number(speedup)});
  }
  std::printf("\n%s", table.render().c_str());

  const double bar = rows.back().fast / rows.back().sequential;
  std::printf("\nAcceptance: batched-fast B=16 vs the B=16 sequential "
              "baseline -> %.2fx (target >= 3x)\n",
              bar);
  return bar >= 3.0 ? 0 : 1;
}
