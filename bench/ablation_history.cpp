// Ablation A2 (DESIGN.md): observation-history length L of eq. (11).
//
// The POMDP observation is the last L rounds of (price, demands). The paper
// fixes L = 4 and motivates history with non-stationarity; this bench sweeps
// L to show how much the mechanism actually relies on it in the stationary
// two-VMU market (answer: little — the best response is memoryless — which
// is itself a finding about the formulation).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  vtm::bench::print_header("Ablation A2",
                           "Observation history length L (eq. 11)");
  std::printf("Rollout engine: rl::vector_env B=4, fast-math sampling "
              "(bench_common::sweep_mechanism_config)\n");

  vtm::util::ascii_table table(
      {"L", "obs dim", "optimality", "final return", "learned price"});
  std::printf("\n--- CSV (ablation_history.csv) ---\n");
  vtm::util::csv_writer csv(
      std::cout, {"history_length", "obs_dim", "optimality", "final_return",
                  "learned_price"});

  for (std::size_t history : {1u, 2u, 4u, 8u}) {
    auto config = vtm::bench::sweep_mechanism_config(100 + history);
    config.env.history_length = history;
    const auto result = vtm::core::run_learning_mechanism(
        vtm::bench::two_vmu_market(5.0), config);
    const double obs_dim = static_cast<double>(history * 3);
    table.add_row(std::vector<double>{
        static_cast<double>(history), obs_dim, result.optimality(),
        result.history.back().episode_return, result.learned_price});
    csv.row({static_cast<double>(history), obs_dim, result.optimality(),
             result.history.back().episode_return, result.learned_price});
  }

  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nReading: the stationary market is solvable with L = 1; longer "
      "histories cost parameters without hurting the outcome. L > 1 pays off "
      "only when follower behaviour is non-stationary across rounds.\n");
  return 0;
}
