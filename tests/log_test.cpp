// util::logger: threshold gating, the discarding default, level-name
// round-trips, the stream sink's line format, and whole-line integrity when
// shard lanes log concurrently through one shared sink under
// thread_pool::run_phased.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace util = vtm::util;

namespace {

TEST(LogLevel, ToStringParseRoundTrip) {
  for (const util::log_level level :
       {util::log_level::debug, util::log_level::info, util::log_level::warn,
        util::log_level::error, util::log_level::off}) {
    util::log_level parsed = util::log_level::debug;
    ASSERT_TRUE(util::parse_log_level(util::to_string(level), parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(LogLevel, ParseRejectsUnknownNamesAndLeavesOutputUntouched) {
  util::log_level parsed = util::log_level::warn;
  EXPECT_FALSE(util::parse_log_level("verbose", parsed));
  EXPECT_FALSE(util::parse_log_level("INFO", parsed));  // exact match only
  EXPECT_FALSE(util::parse_log_level("", parsed));
  EXPECT_EQ(parsed, util::log_level::warn);
}

TEST(Logger, DefaultConstructedDiscardsEverything) {
  const util::logger log;
  for (const util::log_level level :
       {util::log_level::debug, util::log_level::info, util::log_level::warn,
        util::log_level::error}) {
    EXPECT_FALSE(log.enabled(level));
  }
  log.error("dropped on the floor");  // must not crash without a sink
}

TEST(Logger, ThresholdGatesLowerLevels) {
  std::vector<std::pair<util::log_level, std::string>> captured;
  const util::logger log(util::log_level::warn,
                         [&](util::log_level level, const std::string& m) {
                           captured.emplace_back(level, m);
                         });
  EXPECT_FALSE(log.enabled(util::log_level::debug));
  EXPECT_FALSE(log.enabled(util::log_level::info));
  EXPECT_TRUE(log.enabled(util::log_level::warn));
  EXPECT_TRUE(log.enabled(util::log_level::error));

  log.debug("no");
  log.info("no");
  log.warn("first");
  log.error("second");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, util::log_level::warn);
  EXPECT_EQ(captured[0].second, "first");
  EXPECT_EQ(captured[1].first, util::log_level::error);
  EXPECT_EQ(captured[1].second, "second");
}

TEST(Logger, StreamSinkFormatsLevelComponentMessage) {
  std::ostringstream out;
  const util::logger log =
      util::logger::to_stream(out, "core", util::log_level::info);
  log.debug("below threshold");
  log.info("window advanced");
  log.warn("pool saturated");
  EXPECT_EQ(out.str(),
            "info [core] window advanced\n"
            "warn [core] pool saturated\n");
}

TEST(Logger, ConcurrentLanesEmitWholeLinesThroughOneSink) {
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kPhases = 4;
  constexpr std::size_t kPerPhase = 25;

  std::ostringstream out;
  const util::logger log =
      util::logger::to_stream(out, "fleet", util::log_level::info);

  util::thread_pool pool(kLanes);
  pool.run_phased(
      kLanes,
      [&](std::size_t lane, std::size_t phase) {
        for (std::size_t i = 0; i < kPerPhase; ++i)
          log.info("lane " + std::to_string(lane) + " phase " +
                   std::to_string(phase) + " line " + std::to_string(i));
      },
      [&](std::size_t phase) { return phase + 1 < kPhases; });

  // Every emitted line must be intact: correct prefix, correct shape, no
  // interleaving. The sink's mutex is what this proves.
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_EQ(line.rfind("info [fleet] lane ", 0), 0u) << line;
    ASSERT_NE(line.find(" phase "), std::string::npos) << line;
    ASSERT_NE(line.find(" line "), std::string::npos) << line;
  }
  EXPECT_EQ(count, kLanes * kPhases * kPerPhase);
}

}  // namespace
