// Telemetry layer (DESIGN.md §16): metrics-registry unit behaviour, the
// bitwise on-vs-off contract (attaching sinks must not perturb a single bit
// of the fleet results, sharded / oligopoly / streaming alike), metric-merge
// determinism across repeated multi-lane runs, the metrics-vs-result
// cross-check, and the Chrome trace export.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "core/fleet_scenario.hpp"
#include "util/metrics.hpp"
#include "util/sync.hpp"
#include "util/trace.hpp"

namespace core = vtm::core;
namespace util = vtm::util;

namespace {

core::fleet_config sharded_config() {
  core::fleet_config config;
  config.rsu_count = 8;
  config.vehicle_count = 80;
  config.duration_s = util::seconds{90.0};
  config.shard_count = 4;
  config.seed = 99;
  return config;
}

core::fleet_config oligopoly_config() {
  core::fleet_config config = sharded_config();
  config.mode = core::market_mode::oligopoly;
  for (std::size_t m = 0; m < 2; ++m)
    config.msps.push_back({util::meters{0.0}, config.unit_cost,
                           config.price_cap, config.bandwidth_per_pool_mhz});
  return config;
}

core::streaming_config stream_config() {
  core::streaming_config config;
  config.base = sharded_config();
  config.arrival_rate_per_s = util::per_second{30.0};
  config.horizon_s = util::seconds{60.0};
  config.flush_period_s = util::seconds{10.0};
  return config;
}

void expect_identical(const core::fleet_result& a,
                      const core::fleet_result& b) {
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.deferred, b.deferred);
  EXPECT_EQ(a.priced_out, b.priced_out);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.clearings, b.clearings);
  EXPECT_EQ(a.max_cohort, b.max_cohort);
  EXPECT_EQ(a.vehicles.size(), b.vehicles.size());
  EXPECT_EQ(a.migrations.size(), b.migrations.size());
  EXPECT_EQ(a.cross_shard_transfers, b.cross_shard_transfers);
  EXPECT_EQ(a.cross_shard_retargets, b.cross_shard_retargets);
  EXPECT_EQ(a.late_handoffs, b.late_handoffs);
  EXPECT_EQ(a.msp_total_utility, b.msp_total_utility);
  EXPECT_EQ(a.vmu_total_utility, b.vmu_total_utility);
  EXPECT_EQ(a.mean_aotm, b.mean_aotm);
  EXPECT_EQ(a.mean_amplification, b.mean_amplification);
  EXPECT_EQ(a.mean_price, b.mean_price);
  EXPECT_EQ(a.msp_utilities, b.msp_utilities);
  EXPECT_EQ(a.msp_sold_mhz, b.msp_sold_mhz);
  EXPECT_EQ(a.unconverged_clearings, b.unconverged_clearings);
  EXPECT_EQ(a.solver_sweeps, b.solver_sweeps);
  EXPECT_EQ(a.objective_evals, b.objective_evals);
  EXPECT_EQ(a.warm_started_clearings, b.warm_started_clearings);
}

std::string metrics_json(const util::metrics_registry& registry) {
  std::ostringstream out;
  registry.write_json(out);
  return out.str();
}

// --- registry unit behaviour -------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  util::metrics_registry registry;
  const auto a = registry.counter("fleet.handovers");
  const auto b = registry.counter("fleet.handovers");
  EXPECT_EQ(a, b);
  const auto g1 = registry.gauge("stream.live");
  const auto g2 = registry.gauge("stream.live");
  EXPECT_EQ(g1, g2);
  const auto h1 = registry.histogram("market.cohort", {1.0, 4.0, 16.0});
  const auto h2 = registry.histogram("market.cohort", {1.0, 4.0, 16.0});
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistry, MergeFoldsLaneDeltasInLaneOrder) {
  util::metrics_registry registry;
  const auto hits = registry.counter("hits");
  const auto depth = registry.gauge("depth");
  const auto sizes = registry.histogram("sizes", {1.0, 2.0, 4.0});
  registry.bind_lanes(3);

  registry.lane(0).add(hits, 2);
  registry.lane(1).add(hits);
  registry.lane(2).add(hits, 7);
  // Gauge rule: the highest-indexed lane that wrote during the phase wins.
  registry.lane(0).set(depth, 5.0);
  registry.lane(1).set(depth, 3.0);
  registry.lane(0).observe(sizes, 1.0);   // bucket [<=1]
  registry.lane(1).observe(sizes, 3.0);   // bucket (2, 4]
  registry.lane(2).observe(sizes, 99.0);  // overflow

  util::barrier_phase barrier;
  {
    util::barrier_scope scope(barrier);
    registry.merge(barrier);
  }

  EXPECT_EQ(registry.counter_value(hits), 10u);
  EXPECT_EQ(registry.gauge_value(depth), 3.0);
  const auto snap = registry.histogram_value(sizes);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 103.0);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 99.0);
  ASSERT_EQ(snap.buckets.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 0u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);

  // Merge consumed the deltas: folding again must not double-count, and a
  // non-writing phase must leave the gauge at its last merged value.
  {
    util::barrier_scope scope(barrier);
    registry.merge(barrier);
  }
  EXPECT_EQ(registry.counter_value(hits), 10u);
  EXPECT_EQ(registry.gauge_value(depth), 3.0);
}

TEST(MetricsRegistry, JsonSerializationIsByteStable) {
  const auto fill = [](util::metrics_registry& registry) {
    const auto c = registry.counter("events");
    const auto g = registry.gauge("utilization");
    const auto h = registry.histogram("grant", {1.0, 5.0});
    registry.bind_lanes(2);
    registry.lane(0).add(c, 3);
    registry.lane(1).set(g, 0.375);
    registry.lane(1).observe(h, 2.5);
    util::barrier_phase barrier;
    util::barrier_scope scope(barrier);
    registry.merge(barrier);
  };
  util::metrics_registry a;
  util::metrics_registry b;
  fill(a);
  fill(b);
  EXPECT_EQ(metrics_json(a), metrics_json(b));
  EXPECT_NE(metrics_json(a).find("\"events\": 3"), std::string::npos);
}

// --- bitwise on-vs-off -------------------------------------------------------

TEST(TelemetryBitwise, ShardedRunIsIdenticalWithAndWithoutSinks) {
  const auto config = sharded_config();
  const auto bare = core::run_fleet_scenario(config);

  util::metrics_registry registry;
  util::trace_session session;
  auto instrumented = config;
  instrumented.telemetry.metrics = &registry;
  instrumented.telemetry.trace = &session;
  const auto traced = core::run_fleet_scenario(instrumented);

  expect_identical(bare, traced);
  if (util::telemetry_compiled()) EXPECT_GT(session.event_count(), 0u);
}

TEST(TelemetryBitwise, OligopolyRunIsIdenticalWithAndWithoutSinks) {
  const auto config = oligopoly_config();
  const auto bare = core::run_fleet_scenario(config);

  util::metrics_registry registry;
  util::trace_session session;
  auto instrumented = config;
  instrumented.telemetry.metrics = &registry;
  instrumented.telemetry.trace = &session;
  const auto traced = core::run_fleet_scenario(instrumented);

  expect_identical(bare, traced);
}

TEST(TelemetryBitwise, StreamingRunIsIdenticalWithAndWithoutSinks) {
  const auto config = stream_config();
  const auto bare = core::run_streaming_fleet(config);

  util::metrics_registry registry;
  util::trace_session session;
  auto instrumented = config;
  instrumented.base.telemetry.metrics = &registry;
  instrumented.base.telemetry.trace = &session;
  const auto traced = core::run_streaming_fleet(instrumented);

  EXPECT_EQ(bare.arrivals, traced.arrivals);
  EXPECT_EQ(bare.retired, traced.retired);
  EXPECT_EQ(bare.peak_live, traced.peak_live);
  EXPECT_EQ(bare.slot_high_water, traced.slot_high_water);
  EXPECT_EQ(bare.flushes.size(), traced.flushes.size());
  expect_identical(bare.totals, traced.totals);
}

// --- metric determinism and the result cross-check ---------------------------

TEST(TelemetryDeterminism, MergedMetricsAreByteIdenticalAcrossRuns) {
  if (!util::telemetry_compiled())
    GTEST_SKIP() << "built with -DVTM_TELEMETRY=OFF";
  const auto run_once = [](util::metrics_registry& registry) {
    util::trace_session session;
    auto config = sharded_config();
    config.telemetry.metrics = &registry;
    config.telemetry.trace = &session;
    return core::run_fleet_scenario(config);
  };
  util::metrics_registry first;
  util::metrics_registry second;
  (void)run_once(first);
  (void)run_once(second);
  // The OS may interleave the four shard lanes differently on each run;
  // the lane-order fold at the barriers must erase that.
  EXPECT_EQ(metrics_json(first), metrics_json(second));
}

TEST(TelemetryDeterminism, CountersCrossCheckAgainstTheResult) {
  if (!util::telemetry_compiled())
    GTEST_SKIP() << "built with -DVTM_TELEMETRY=OFF";
  util::metrics_registry registry;
  auto config = sharded_config();
  config.telemetry.metrics = &registry;
  const auto result = core::run_fleet_scenario(config);

  EXPECT_EQ(registry.counter_value(registry.counter("fleet.handovers")),
            result.handovers);
  EXPECT_EQ(registry.counter_value(registry.counter("fleet.clearings")),
            result.clearings);
  EXPECT_EQ(registry.counter_value(registry.counter("mailbox.late")),
            result.late_handoffs);
  EXPECT_GT(result.handovers, 0u);
}

TEST(TelemetryDeterminism, StreamCountersCrossCheckAgainstTheResult) {
  if (!util::telemetry_compiled())
    GTEST_SKIP() << "built with -DVTM_TELEMETRY=OFF";
  util::metrics_registry registry;
  auto config = stream_config();
  config.base.telemetry.metrics = &registry;
  const auto result = core::run_streaming_fleet(config);

  EXPECT_EQ(registry.counter_value(registry.counter("stream.arrivals")),
            result.arrivals);
  EXPECT_EQ(registry.counter_value(registry.counter("stream.retired")),
            result.retired);
  EXPECT_EQ(registry.gauge_value(registry.gauge("stream.slot_high_water")),
            static_cast<double>(result.slot_high_water));
  EXPECT_GT(result.arrivals, 0u);
}

// --- trace export ------------------------------------------------------------

TEST(TraceSession, ExportsChromeTraceEvents) {
  if (!util::telemetry_compiled())
    GTEST_SKIP() << "built with -DVTM_TELEMETRY=OFF";
  util::trace_session session;
  auto config = sharded_config();
  config.telemetry.trace = &session;
  (void)core::run_fleet_scenario(config);

  ASSERT_GT(session.event_count(), 0u);
  EXPECT_EQ(session.lane_count(), config.shard_count + 1);
  std::ostringstream out;
  session.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(json.find("\"fleet.run\""), std::string::npos);
  EXPECT_NE(json.find("\"shard.window\""), std::string::npos);
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos);
}

TEST(TraceSpan, NullLaneIsANoOp) {
  util::trace_span span(nullptr, "nothing");
  span.arg("k", 1.0);
  span.finish();  // and the destructor runs after — both must be no-ops
  SUCCEED();
}

}  // namespace
