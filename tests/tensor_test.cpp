// Unit tests for vtm::nn::tensor.
#include <gtest/gtest.h>

#include "nn/tensor.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace nn = vtm::nn;

TEST(tensor, default_is_empty) {
  nn::tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(tensor, shape_constructor_zero_fills) {
  nn::tensor t({2, 3});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  for (double x : t.flat()) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(tensor, fill_constructor) {
  nn::tensor t({2, 2}, 7.5);
  for (double x : t.flat()) EXPECT_DOUBLE_EQ(x, 7.5);
}

TEST(tensor, data_constructor_rejects_size_mismatch) {
  EXPECT_THROW((void)nn::tensor({2, 2}, std::vector<double>{1.0, 2.0}),
               vtm::util::contract_error);
}

TEST(tensor, row_column_scalar_factories) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const auto r = nn::tensor::row(v);
  EXPECT_EQ(r.dims(), (nn::shape{1, 3}));
  const auto c = nn::tensor::column(v);
  EXPECT_EQ(c.dims(), (nn::shape{3, 1}));
  const auto s = nn::tensor::scalar(5.0);
  EXPECT_DOUBLE_EQ(s.item(), 5.0);
}

TEST(tensor, item_requires_scalar) {
  nn::tensor t({2, 1});
  EXPECT_THROW((void)t.item(), vtm::util::contract_error);
}

TEST(tensor, at_bounds_checked) {
  nn::tensor t({2, 2});
  EXPECT_NO_THROW((void)t.at(1, 1));
  EXPECT_THROW((void)t.at(2, 0), vtm::util::contract_error);
  EXPECT_THROW((void)t.at(0, 2), vtm::util::contract_error);
}

TEST(tensor, row_major_layout) {
  nn::tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(t(1, 2), 6.0);
}

TEST(tensor, matmul_known_product) {
  nn::tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  nn::tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const auto c = a.matmul(b);
  ASSERT_EQ(c.dims(), (nn::shape{2, 2}));
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(tensor, matmul_rejects_mismatched_inner_dim) {
  nn::tensor a({2, 3});
  nn::tensor b({2, 3});
  EXPECT_THROW((void)a.matmul(b), vtm::util::contract_error);
}

TEST(tensor, matmul_identity) {
  vtm::util::rng gen(3);
  nn::tensor a({4, 4});
  for (auto& x : a.flat()) x = gen.normal();
  nn::tensor eye({4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye(i, i) = 1.0;
  EXPECT_TRUE(a.matmul(eye).allclose(a));
  EXPECT_TRUE(eye.matmul(a).allclose(a));
}

TEST(tensor, matmul_associative) {
  vtm::util::rng gen(5);
  nn::tensor a({3, 4}), b({4, 5}), c({5, 2});
  for (auto* t : {&a, &b, &c})
    for (auto& x : t->flat()) x = gen.normal();
  const auto left = a.matmul(b).matmul(c);
  const auto right = a.matmul(b.matmul(c));
  EXPECT_TRUE(left.allclose(right, 1e-9));
}

TEST(tensor, transpose_involution) {
  vtm::util::rng gen(7);
  nn::tensor a({3, 5});
  for (auto& x : a.flat()) x = gen.normal();
  EXPECT_TRUE(a.transposed().transposed().allclose(a));
  EXPECT_EQ(a.transposed().dims(), (nn::shape{5, 3}));
}

TEST(tensor, transpose_of_product) {
  vtm::util::rng gen(9);
  nn::tensor a({3, 4}), b({4, 2});
  for (auto* t : {&a, &b})
    for (auto& x : t->flat()) x = gen.normal();
  // (AB)ᵀ == Bᵀ Aᵀ
  const auto lhs = a.matmul(b).transposed();
  const auto rhs = b.transposed().matmul(a.transposed());
  EXPECT_TRUE(lhs.allclose(rhs, 1e-9));
}

TEST(tensor, elementwise_arithmetic) {
  nn::tensor a({1, 3}, {1, 2, 3});
  nn::tensor b({1, 3}, {10, 20, 30});
  EXPECT_TRUE((a + b).allclose(nn::tensor({1, 3}, {11, 22, 33})));
  EXPECT_TRUE((b - a).allclose(nn::tensor({1, 3}, {9, 18, 27})));
  EXPECT_TRUE(a.hadamard(b).allclose(nn::tensor({1, 3}, {10, 40, 90})));
  EXPECT_TRUE((a * 2.0).allclose(nn::tensor({1, 3}, {2, 4, 6})));
  EXPECT_TRUE((a + 1.0).allclose(nn::tensor({1, 3}, {2, 3, 4})));
}

TEST(tensor, elementwise_shape_mismatch_rejected) {
  nn::tensor a({1, 3});
  nn::tensor b({3, 1});
  EXPECT_THROW((void)(a + b), vtm::util::contract_error);
  EXPECT_THROW((void)(a - b), vtm::util::contract_error);
  EXPECT_THROW((void)a.hadamard(b), vtm::util::contract_error);
}

TEST(tensor, accumulate_and_reductions) {
  nn::tensor a({2, 2}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(a.sum(), -2.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  nn::tensor b({2, 2}, 1.0);
  b += a;
  EXPECT_TRUE(b.allclose(nn::tensor({2, 2}, {2, -1, 4, -3})));
}

TEST(tensor, row_at_extracts_row) {
  nn::tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(a.row_at(1).allclose(nn::tensor({1, 3}, {4, 5, 6})));
  EXPECT_THROW((void)a.row_at(2), vtm::util::contract_error);
}

TEST(tensor, apply_elementwise) {
  nn::tensor a({1, 3}, {1, 4, 9});
  a.apply([](double x) { return x * 10.0; });
  EXPECT_TRUE(a.allclose(nn::tensor({1, 3}, {10, 40, 90})));
}

TEST(tensor, allclose_tolerance) {
  nn::tensor a({1, 2}, {1.0, 2.0});
  nn::tensor b({1, 2}, {1.0 + 1e-10, 2.0});
  EXPECT_TRUE(a.allclose(b, 1e-9));
  EXPECT_FALSE(a.allclose(b, 1e-11));
  nn::tensor c({2, 1}, {1.0, 2.0});
  EXPECT_FALSE(a.allclose(c));  // shape mismatch
}

TEST(tensor, to_string_shape) {
  EXPECT_EQ(nn::to_string(nn::shape{3, 7}), "3x7");
}
