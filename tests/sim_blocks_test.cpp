// Tests for block-level VT transfer: the event-driven counterpart of the
// paper's block-based AoTM definition (§III-A).
#include <gtest/gtest.h>

#include <cmath>

#include "core/aotm.hpp"
#include "sim/block_transfer.hpp"
#include "util/contracts.hpp"
#include "wireless/link.hpp"

namespace s = vtm::sim;

TEST(blocks, twin_decomposition_covers_footprint) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 200.0);
  const auto blocks = s::twin_block_sizes(twin);
  double total = 0.0;
  for (double b : blocks) total += b;
  EXPECT_NEAR(total, twin.total_mb(), 1e-9);
  // config + pages + state
  EXPECT_EQ(blocks.size(), 2u + twin.config().memory_pages);
}

TEST(blocks, timeline_aotm_equals_total_over_rate) {
  const std::vector<double> blocks{2.0, 5.0, 3.0};
  const auto timeline = s::run_block_transfer(blocks, 4.0);
  EXPECT_NEAR(timeline.aotm(), 10.0 / 4.0, 1e-12);
  EXPECT_NEAR(timeline.total_mb(), 10.0, 1e-12);
  ASSERT_EQ(timeline.blocks.size(), 3u);
}

TEST(blocks, completion_times_are_cumulative) {
  const std::vector<double> blocks{4.0, 2.0, 6.0};
  const auto timeline = s::run_block_transfer(blocks, 2.0);
  EXPECT_DOUBLE_EQ(timeline.blocks[0].completed_at, 2.0);
  EXPECT_DOUBLE_EQ(timeline.blocks[1].completed_at, 3.0);
  EXPECT_DOUBLE_EQ(timeline.blocks[2].completed_at, 6.0);
  // Back-to-back streaming: each block starts when the previous ends.
  EXPECT_DOUBLE_EQ(timeline.blocks[1].started_at, 2.0);
  EXPECT_DOUBLE_EQ(timeline.blocks[2].started_at, 3.0);
}

TEST(blocks, blocks_complete_in_sequence_order) {
  const std::vector<double> blocks{1.0, 1.0, 1.0, 1.0};
  const auto timeline = s::run_block_transfer(blocks, 10.0);
  for (std::size_t i = 0; i < timeline.blocks.size(); ++i)
    EXPECT_EQ(timeline.blocks[i].index, i);
}

TEST(blocks, block_aotm_matches_closed_form_for_cold_twin) {
  // Paper-normalized: rate = b·R "MB/s"; a cold block-by-block transfer of
  // the whole twin reproduces eq. (1) exactly.
  const auto twin = s::vehicular_twin::with_total_mb(1, 150.0);
  const vtm::wireless::link_budget link(vtm::wireless::link_params{});
  const double bandwidth_mhz = 12.5;
  const double rate = bandwidth_mhz * link.spectral_efficiency();
  const auto timeline = s::run_block_transfer(s::twin_block_sizes(twin), rate);
  EXPECT_NEAR(timeline.aotm(),
              vtm::core::aotm_closed_form(twin.total_mb(), bandwidth_mhz,
                                          link),
              1e-9);
}

TEST(blocks, block_path_matches_fluid_precopy_at_zero_dirty_rate) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 100.0);
  const double rate = 300.0;
  const auto fluid = s::run_precopy(twin, rate);
  const auto block = s::run_block_transfer(s::twin_block_sizes(twin), rate);
  EXPECT_NEAR(block.aotm(), fluid.total_time_s, 1e-9);
  EXPECT_NEAR(block.total_mb(), fluid.total_sent_mb, 1e-9);
}

TEST(blocks, scheduled_transfer_integrates_with_event_queue) {
  s::event_queue queue;
  queue.schedule(3.0, [] {});  // unrelated event first
  queue.step();                // now = 3.0

  bool completed = false;
  double completion = 0.0;
  const std::vector<double> blocks{5.0, 5.0};
  const double predicted = s::schedule_block_transfer(
      queue, blocks, 2.0, [&](const s::transfer_timeline& timeline) {
        completed = true;
        completion = timeline.completed_at;
        EXPECT_DOUBLE_EQ(timeline.generated_at, 3.0);
      });
  EXPECT_DOUBLE_EQ(predicted, 8.0);  // 3.0 + 10/2
  queue.run_all();
  EXPECT_TRUE(completed);
  EXPECT_DOUBLE_EQ(completion, 8.0);
}

TEST(blocks, interleaved_transfers_keep_independent_timelines) {
  s::event_queue queue;
  double first_aotm = 0.0, second_aotm = 0.0;
  const std::vector<double> a{4.0};
  const std::vector<double> b{2.0, 2.0};
  (void)s::schedule_block_transfer(
      queue, a, 1.0,
      [&](const s::transfer_timeline& t) { first_aotm = t.aotm(); });
  (void)s::schedule_block_transfer(
      queue, b, 2.0,
      [&](const s::transfer_timeline& t) { second_aotm = t.aotm(); });
  queue.run_all();
  EXPECT_DOUBLE_EQ(first_aotm, 4.0);
  EXPECT_DOUBLE_EQ(second_aotm, 2.0);
}

TEST(blocks, rejects_invalid_input) {
  EXPECT_THROW((void)s::run_block_transfer(std::vector<double>{}, 1.0),
               vtm::util::contract_error);
  EXPECT_THROW((void)s::run_block_transfer(std::vector<double>{1.0}, 0.0),
               vtm::util::contract_error);
  EXPECT_THROW((void)s::run_block_transfer(std::vector<double>{1.0, -1.0}, 1.0),
               vtm::util::contract_error);
}
