// Seed-determinism regression: the batched rollout engine at B = 1 must be
// bitwise-identical to the legacy single-env trainer — same seeds, same
// episode_stats sequence, field for field. This pins the refactor contract:
// batching may not change the equilibrium/market math or the RNG consumption
// order of Algorithm 1.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/env.hpp"
#include "core/market.hpp"
#include "core/mechanism.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "rl/trainer.hpp"
#include "rl/vector_env.hpp"
#include "util/rng.hpp"

namespace rl = vtm::rl;
namespace core = vtm::core;

namespace {

core::market_params two_vmu_market() {
  core::market_params params;
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  return params;
}

struct budget {
  std::size_t episodes;
  std::size_t env_rounds;      ///< Environment horizon K.
  std::size_t trainer_rounds;  ///< Trainer per-episode budget.
  std::size_t update_interval;
};

/// One complete training stack (env, policy, learner) built from a seed.
struct stack {
  core::pricing_env_config env_config;
  vtm::util::rng net_gen;
  rl::actor_critic policy;
  vtm::util::rng ppo_gen;
  rl::ppo learner;
  rl::trainer_config trainer_config;

  stack(std::uint64_t seed, const budget& b)
      : env_config([&] {
          core::pricing_env_config config;
          config.rounds_per_episode = b.env_rounds;
          config.seed = seed ^ 0x5555aaaa1234ULL;
          return config;
        }()),
        net_gen(seed),
        policy(
            [&] {
              rl::actor_critic_config config;
              core::pricing_env probe(core::migration_market(two_vmu_market()),
                                      env_config);
              config.obs_dim = probe.observation_dim();
              config.act_dim = probe.action_dim();
              config.hidden = {16, 16};
              return config;
            }(),
            net_gen),
        ppo_gen(seed + 1),
        learner(policy, rl::ppo_config{}, ppo_gen) {
    trainer_config.episodes = b.episodes;
    trainer_config.rounds_per_episode = b.trainer_rounds;
    trainer_config.update_interval = b.update_interval;
    trainer_config.seed = seed + 2;
  }
};

std::vector<rl::episode_stats> run_legacy(std::uint64_t seed, const budget& b,
                                          bool fast_rollout = false) {
  stack s(seed, b);
  s.trainer_config.fast_rollout = fast_rollout;
  core::pricing_env env(core::migration_market(two_vmu_market()),
                        s.env_config);
  rl::trainer driver(env, s.policy, s.learner, s.trainer_config);
  return driver.train();
}

std::vector<rl::episode_stats> run_vectorized(std::uint64_t seed,
                                              const budget& b,
                                              std::size_t threads = 0,
                                              bool fast_rollout = false) {
  stack s(seed, b);
  s.trainer_config.fast_rollout = fast_rollout;
  rl::vector_env envs(core::make_pricing_env_factory(two_vmu_market(),
                                                     s.env_config),
                      /*count=*/1, threads);
  rl::vector_trainer driver(envs, s.policy, s.learner, s.trainer_config);
  return driver.train();
}

void expect_identical(const std::vector<rl::episode_stats>& a,
                      const std::vector<rl::episode_stats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].episode, b[i].episode);
    EXPECT_DOUBLE_EQ(a[i].episode_return, b[i].episode_return);
    EXPECT_DOUBLE_EQ(a[i].mean_utility, b[i].mean_utility);
    EXPECT_DOUBLE_EQ(a[i].best_utility, b[i].best_utility);
    EXPECT_DOUBLE_EQ(a[i].final_utility, b[i].final_utility);
    EXPECT_DOUBLE_EQ(a[i].mean_action, b[i].mean_action);
    EXPECT_DOUBLE_EQ(a[i].final_action, b[i].final_action);
    EXPECT_DOUBLE_EQ(a[i].policy_entropy, b[i].policy_entropy);
    EXPECT_DOUBLE_EQ(a[i].value_loss, b[i].value_loss);
  }
}

}  // namespace

TEST(seed_determinism, legacy_trainer_reproduces_itself) {
  const budget b{4, 20, 20, 5};
  expect_identical(run_legacy(11, b), run_legacy(11, b));
}

TEST(seed_determinism, b1_vector_trainer_matches_legacy_trainer) {
  // Environment horizon == trainer budget, K a multiple of |I| — the paper's
  // Algorithm 1 shape.
  const budget b{5, 20, 20, 5};
  expect_identical(run_legacy(42, b), run_vectorized(42, b));
}

TEST(seed_determinism, b1_match_holds_with_partial_final_buffer) {
  // K not a multiple of |I|: the episode boundary flushes a partial segment.
  const budget b{4, 18, 18, 5};
  expect_identical(run_legacy(7, b), run_vectorized(7, b));
}

TEST(seed_determinism, b1_match_holds_under_trainer_truncation) {
  // The trainer cuts episodes before the environment signals done; the
  // vectorized path truncates + manually resets that row.
  const budget b{4, 50, 12, 5};
  expect_identical(run_legacy(99, b), run_vectorized(99, b));
}

TEST(seed_determinism, b1_match_is_thread_count_invariant) {
  const budget b{3, 20, 20, 5};
  expect_identical(run_legacy(5, b), run_vectorized(5, b, /*threads=*/2));
}

TEST(seed_determinism, b1_match_holds_in_fast_rollout_mode) {
  // Both trainers honour fast_rollout through the same act/value paths, so
  // the bitwise contract survives the fast-math sampling mode too.
  const budget b{4, 20, 20, 5};
  expect_identical(run_legacy(21, b, /*fast_rollout=*/true),
                   run_vectorized(21, b, 0, /*fast_rollout=*/true));
  // Fast mode samples a (slightly) different trajectory than exact mode.
  const auto exact = run_legacy(21, b);
  const auto fast = run_legacy(21, b, /*fast_rollout=*/true);
  EXPECT_NE(exact.front().mean_action, fast.front().mean_action);
}

TEST(seed_determinism, different_seeds_diverge) {
  const budget b{3, 20, 20, 5};
  const auto a = run_vectorized(1, b);
  const auto c = run_vectorized(2, b);
  ASSERT_EQ(a.size(), c.size());
  EXPECT_NE(a.front().mean_action, c.front().mean_action);
}

TEST(seed_determinism, batched_mechanism_is_reproducible) {
  // End-to-end: the vectorized mechanism path (B = 4) is deterministic run
  // to run, and its training history has exactly E completion-ordered rows.
  core::mechanism_config config;
  config.trainer.episodes = 8;
  config.env.rounds_per_episode = 20;
  config.trainer.rounds_per_episode = 20;
  config.trainer.update_interval = 5;
  config.rollout.num_envs = 4;
  config.seed = 13;

  const auto a = core::run_learning_mechanism(two_vmu_market(), config);
  const auto c = core::run_learning_mechanism(two_vmu_market(), config);
  ASSERT_EQ(a.history.size(), 8u);
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].episode, i);
    EXPECT_DOUBLE_EQ(a.history[i].episode_return,
                     c.history[i].episode_return);
    EXPECT_DOUBLE_EQ(a.history[i].mean_action, c.history[i].mean_action);
  }
  EXPECT_DOUBLE_EQ(a.learned_price, c.learned_price);
}
