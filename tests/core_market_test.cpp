// Tests for the AoTM metric and the migration market (utilities, best
// responses, rationing) — eqs. (1), (2), (4), (8) of the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aotm.hpp"
#include "core/market.hpp"
#include "game/maximize.hpp"
#include "util/contracts.hpp"

namespace core = vtm::core;

namespace {

core::market_params two_vmu_params() {
  core::market_params p;
  p.vmus = {{500.0, 200.0}, {500.0, 100.0}};  // Fig. 2/3(a,b) setting
  return p;
}

}  // namespace

// ---- AoTM ---------------------------------------------------------------------

TEST(aotm, closed_form_definition) {
  // A = D / (b · R): 100 MB at 10 MHz with R = 38.54 -> ~0.2595.
  const double a = core::aotm_closed_form(100.0, 10.0, 38.541);
  EXPECT_NEAR(a, 100.0 / 385.41, 1e-9);
}

TEST(aotm, halves_when_bandwidth_doubles) {
  const double a1 = core::aotm_closed_form(100.0, 10.0, 38.541);
  const double a2 = core::aotm_closed_form(100.0, 20.0, 38.541);
  EXPECT_NEAR(a1, 2.0 * a2, 1e-12);
}

TEST(aotm, rejects_degenerate_inputs) {
  EXPECT_THROW((void)core::aotm_closed_form(100.0, 0.0, 38.0),
               vtm::util::contract_error);
  EXPECT_THROW((void)core::aotm_closed_form(-1.0, 10.0, 38.0),
               vtm::util::contract_error);
}

TEST(aotm, link_budget_overload_matches) {
  const vtm::wireless::link_budget link(vtm::wireless::link_params{});
  EXPECT_NEAR(core::aotm_closed_form(100.0, 10.0, link),
              core::aotm_closed_form(100.0, 10.0, link.spectral_efficiency()),
              1e-15);
}

TEST(aotm, matches_simulated_cold_migration) {
  // Paper-normalized rate: b·R "MB/s"; with zero dirty rate the pre-copy
  // timeline reproduces the closed form exactly.
  const auto twin = vtm::sim::vehicular_twin::with_total_mb(1, 200.0);
  const vtm::wireless::link_budget link(vtm::wireless::link_params{});
  const double bandwidth = 12.0;
  const double rate = bandwidth * link.spectral_efficiency();
  const auto report = vtm::sim::run_precopy(twin, rate);
  EXPECT_NEAR(core::aotm_from_migration(report),
              core::aotm_closed_form(twin.total_mb(), bandwidth, link), 1e-9);
}

TEST(aotm, immersion_increases_with_freshness) {
  // Smaller AoTM (fresher twin) -> more immersion.
  EXPECT_GT(core::immersion(500.0, 0.1), core::immersion(500.0, 1.0));
  EXPECT_GT(core::immersion(1000.0, 0.5), core::immersion(500.0, 0.5));
  EXPECT_THROW((void)core::immersion(0.0, 1.0), vtm::util::contract_error);
  EXPECT_THROW((void)core::immersion(1.0, 0.0), vtm::util::contract_error);
}

// ---- market construction ----------------------------------------------------------

TEST(market, validates_parameters) {
  core::market_params empty;
  empty.vmus.clear();
  EXPECT_THROW((void)core::migration_market{empty}, vtm::util::contract_error);

  auto bad_alpha = two_vmu_params();
  bad_alpha.vmus[0].alpha = 0.0;
  EXPECT_THROW((void)core::migration_market{bad_alpha}, vtm::util::contract_error);

  auto bad_cost = two_vmu_params();
  bad_cost.unit_cost = 60.0;  // above price cap
  EXPECT_THROW((void)core::migration_market{bad_cost}, vtm::util::contract_error);
}

TEST(market, spectral_efficiency_from_paper_channel) {
  const core::migration_market market(two_vmu_params());
  EXPECT_NEAR(market.spectral_efficiency(), 38.541, 1e-3);
}

TEST(market, kappa_is_data_over_efficiency) {
  const core::migration_market market(two_vmu_params());
  EXPECT_NEAR(market.kappa(0), 200.0 / market.spectral_efficiency(), 1e-12);
  EXPECT_NEAR(market.kappa(1), 100.0 / market.spectral_efficiency(), 1e-12);
  EXPECT_THROW((void)market.kappa(2), vtm::util::contract_error);
}

// ---- best response (eq. 8) ----------------------------------------------------------

TEST(best_response, closed_form_alpha_over_p_minus_kappa) {
  const core::migration_market market(two_vmu_params());
  const double p = 25.0;
  EXPECT_NEAR(market.best_response(0, p), 500.0 / p - market.kappa(0), 1e-12);
  EXPECT_NEAR(market.best_response(1, p), 500.0 / p - market.kappa(1), 1e-12);
}

TEST(best_response, clamps_to_zero_at_high_price) {
  auto params = two_vmu_params();
  params.vmus[0].alpha = 50.0;  // tiny α: interior optimum negative
  const core::migration_market market(params);
  EXPECT_DOUBLE_EQ(market.best_response(0, 49.0), 0.0);
}

class best_response_optimality : public ::testing::TestWithParam<double> {};

TEST_P(best_response_optimality, maximizes_vmu_utility) {
  // The closed form must agree with a brute-force numeric argmax of U_n.
  const core::migration_market market(two_vmu_params());
  const double price = GetParam();
  for (std::size_t n = 0; n < market.vmu_count(); ++n) {
    const auto numeric = vtm::game::golden_section_maximize(
        [&](double b) {
          return b > 0.0 ? market.vmu_utility(n, b, price) : 0.0;
        },
        0.0, 100.0, 1e-10);
    EXPECT_NEAR(market.best_response(n, price), numeric.arg, 1e-5)
        << "price " << price << " vmu " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(prices, best_response_optimality,
                         ::testing::Values(10.0, 20.0, 25.0, 30.0, 40.0,
                                           49.0));

TEST(best_response, utility_is_concave_in_bandwidth) {
  // Second difference of U_n(b) is negative across the domain (Theorem 1).
  const core::migration_market market(two_vmu_params());
  const double price = 25.0, h = 0.01;
  for (double b = 0.5; b < 40.0; b += 0.5) {
    const double second_diff = market.vmu_utility(0, b + h, price) -
                               2.0 * market.vmu_utility(0, b, price) +
                               market.vmu_utility(0, b - h, price);
    EXPECT_LT(second_diff, 0.0) << "b = " << b;
  }
}

TEST(best_response, demand_decreases_with_price) {
  const core::migration_market market(two_vmu_params());
  double previous = 1e18;
  for (double p = 10.0; p <= 50.0; p += 5.0) {
    const double b = market.best_response(0, p);
    EXPECT_LE(b, previous);
    previous = b;
  }
}

// ---- rationing / aggregates -----------------------------------------------------------

TEST(demands, rationing_caps_at_bmax) {
  auto params = two_vmu_params();
  params.bandwidth_cap_mhz = vtm::util::megahertz{10.0};  // force the cap to bind at p = 20
  const core::migration_market market(params);
  const auto rationed = market.demands(20.0);
  double total = 0.0;
  for (double b : rationed) total += b;
  EXPECT_NEAR(total, 10.0, 1e-9);
  // Proportional: both scaled by the same factor.
  const auto raw = market.unconstrained_demands(20.0);
  EXPECT_NEAR(rationed[0] / raw[0], rationed[1] / raw[1], 1e-12);
}

TEST(demands, no_rationing_below_capacity) {
  const core::migration_market market(two_vmu_params());
  const auto demands = market.demands(30.0);
  const auto raw = market.unconstrained_demands(30.0);
  EXPECT_EQ(demands, raw);
}

TEST(leader_utility, margin_times_volume) {
  const core::migration_market market(two_vmu_params());
  const double p = 25.0;
  const auto demands = market.demands(p);
  const double expected = (p - 5.0) * (demands[0] + demands[1]);
  EXPECT_NEAR(market.leader_utility(p, demands), expected, 1e-12);
  EXPECT_NEAR(market.leader_utility(p), expected, 1e-12);
}

TEST(leader_utility, zero_at_cost_price) {
  const core::migration_market market(two_vmu_params());
  EXPECT_NEAR(market.leader_utility(5.0), 0.0, 1e-9);
}

TEST(leader_utility, rejects_negative_allocations) {
  const core::migration_market market(two_vmu_params());
  const std::vector<double> bad{-1.0, 2.0};
  EXPECT_THROW((void)market.leader_utility(25.0, bad), vtm::util::contract_error);
}

TEST(vmu_utility, zero_bandwidth_is_zero_utility) {
  const core::migration_market market(two_vmu_params());
  EXPECT_DOUBLE_EQ(market.vmu_utility(0, 0.0, 25.0), 0.0);
}

TEST(vmu_utility, equals_immersion_minus_payment) {
  const core::migration_market market(two_vmu_params());
  const double b = 12.0, p = 25.0;
  const double expected =
      core::immersion(500.0, market.aotm(0, b)) - p * b;
  EXPECT_NEAR(market.vmu_utility(0, b, p), expected, 1e-12);
}

TEST(totals, aggregate_helpers_consistent) {
  const core::migration_market market(two_vmu_params());
  const double p = 25.0;
  const auto demands = market.demands(p);
  EXPECT_NEAR(market.total_demand(p), demands[0] + demands[1], 1e-12);
  EXPECT_NEAR(market.total_vmu_utility(p),
              market.vmu_utility(0, demands[0], p) +
                  market.vmu_utility(1, demands[1], p),
              1e-12);
}
