// Contention stress for util::thread_pool's barrier protocol (DESIGN.md
// §13). These tests deliberately share NON-atomic state across the phase
// boundary: lanes read values rival lanes wrote in the previous phase, and
// the main thread's barrier callback mutates state every lane reads next
// phase. That is only defined behaviour if run_phased establishes a
// happens-before edge lane-write → barrier → lane-read — exactly the
// contract the shard coordinator's mailbox exchange leans on — so under
// TSan (VTM_SANITIZE=thread) these tests verify the synchronization itself,
// not merely the observable ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace {

/// Data-dependent spin so lanes finish phases in scrambled order; returns
/// the hash so the work cannot be optimized away.
std::uint64_t churn(std::uint64_t seed, std::uint64_t rounds) {
  std::uint64_t h = seed | 1;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
  }
  return h;
}

}  // namespace

// More lanes than workers, uneven per-lane work, and cross-lane reads of
// plain (non-atomic) values published in the previous phase. Any lane that
// outruns the barrier — or a barrier that runs before every lane drains —
// shows up both as a value mismatch and as a TSan race.
TEST(concurrency_stress, run_phased_orders_nonatomic_cross_lane_state) {
  constexpr std::size_t phases = 40;
  std::uint64_t sink = 0;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    vtm::util::thread_pool pool(threads);
    const std::size_t lanes = 2 * threads + 3;  // always oversubscribed

    // All plain values: the pool's barrier is the only synchronization.
    // Publications are double-buffered by phase parity so a lane's read of
    // its rival's *previous-phase* value never overlaps the rival's
    // same-phase write — the cross-phase edge is the one under test.
    std::vector<std::vector<std::size_t>> published(
        2, std::vector<std::size_t>(lanes, 0));
    std::size_t epoch = 0;  // written by the barrier, read by every lane
    std::atomic<int> violations{0};

    pool.run_phased(
        lanes,
        [&](std::size_t lane, std::size_t phase) {
          // The barrier's write to `epoch` must be visible here.
          if (epoch != phase) ++violations;
          // The *rival* lane's previous-phase publication must be visible:
          // this read is cross-thread and non-atomic on purpose.
          const std::size_t rival = (lane + 1) % lanes;
          if (phase > 0 &&
              published[(phase - 1) % 2][rival] != (phase - 1) * lanes + rival)
            ++violations;
          sink += churn(lane * 977 + phase, (lane * 31 + phase * 7) % 997);
          published[phase % 2][lane] = phase * lanes + lane;
        },
        [&](std::size_t phase) {
          // Serial section: every lane's write of this phase is visible.
          for (std::size_t lane = 0; lane < lanes; ++lane)
            if (published[phase % 2][lane] != phase * lanes + lane)
              ++violations;
          ++epoch;
          return phase + 1 < phases;
        });

    EXPECT_EQ(violations.load(), 0) << "threads=" << threads;
    EXPECT_EQ(epoch, phases);
  }
  // Keep the spin loops alive past the optimizer.
  EXPECT_NE(sink, 0u);
}

// Generation churn: back-to-back parallel_for jobs reusing the same pool,
// each writing plain per-index slots the main thread reads immediately
// after the call returns. Verifies the per-job join edge (worker write →
// parallel_for return) across many generations, including empty jobs.
TEST(concurrency_stress, parallel_for_generations_publish_results) {
  vtm::util::thread_pool pool(3);
  constexpr std::size_t rounds = 200;
  constexpr std::size_t n = 17;  // odd, > workers, exercises work stealing
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round % 16 == 15) {
      pool.parallel_for(0, [&](std::size_t) { FAIL() << "empty job ran"; });
      continue;
    }
    pool.parallel_for(n, [&](std::size_t i) {
      out[i] = churn(round * n + i, 1 + (i * 13 + round) % 61);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out[i], churn(round * n + i, 1 + (i * 13 + round) % 61))
          << "round " << round << " index " << i;
  }
}

// A lane exception mid-run must drain cleanly (no worker left touching
// shared state after run_phased returns) and leave the pool reusable.
TEST(concurrency_stress, run_phased_survives_lane_exception_under_load) {
  vtm::util::thread_pool pool(4);
  constexpr std::size_t lanes = 11;
  std::vector<std::size_t> scratch(lanes, 0);
  EXPECT_THROW(pool.run_phased(
                   lanes,
                   [&](std::size_t lane, std::size_t phase) {
                     scratch[lane] = churn(lane, 50 + lane) % 1000;
                     if (phase == 2 && lane == 7) throw std::runtime_error("x");
                   },
                   [](std::size_t) { return true; }),
               std::runtime_error);
  // The pool survives and the barrier protocol still orders a fresh run.
  std::size_t epoch = 0;
  std::atomic<int> violations{0};
  pool.run_phased(
      lanes,
      [&](std::size_t, std::size_t phase) {
        if (epoch != phase) ++violations;
      },
      [&](std::size_t phase) {
        ++epoch;
        return phase + 1 < 3;
      });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(epoch, 3u);
}
