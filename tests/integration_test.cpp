// Integration tests across subsystems: the full learning mechanism against
// the analytic oracle and the baselines, the trainer loop, and the
// end-to-end highway scenario (market + mobility + pre-copy migration).
#include <gtest/gtest.h>

#include <cmath>

#include "core/mechanism.hpp"
#include "core/scenario.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace core = vtm::core;

namespace {

core::market_params fig2_params() {
  core::market_params p;
  p.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  return p;
}

/// Training budget small enough for CI but large enough to converge
/// (the full paper budget is exercised by bench/fig2_convergence).
core::mechanism_config quick_config() {
  core::mechanism_config config;
  config.trainer.episodes = 80;
  config.ppo.learning_rate = 3e-4;
  config.seed = 42;
  return config;
}

}  // namespace

TEST(mechanism, learns_near_oracle_utility) {
  const auto result = core::run_learning_mechanism(fig2_params(),
                                                   quick_config());
  ASSERT_EQ(result.history.size(), 80u);
  EXPECT_GT(result.optimality(), 0.95)
      << "learned " << result.learned_utility << " vs oracle "
      << result.oracle.leader_utility;
  EXPECT_NEAR(result.learned_price, result.oracle.price, 4.0);
}

TEST(mechanism, training_improves_over_time) {
  const auto result = core::run_learning_mechanism(fig2_params(),
                                                   quick_config());
  // Mean utility over the last 10 episodes beats the first 10 episodes.
  vtm::util::running_stats early, late;
  for (std::size_t i = 0; i < 10; ++i)
    early.push(result.history[i].mean_utility);
  for (std::size_t i = result.history.size() - 10; i < result.history.size();
       ++i)
    late.push(result.history[i].mean_utility);
  EXPECT_GT(late.mean(), early.mean());
  // Episode return trends upward (Fig. 2a behaviour).
  std::vector<double> x, returns;
  for (const auto& e : result.history) {
    x.push_back(static_cast<double>(e.episode));
    returns.push_back(e.episode_return);
  }
  EXPECT_GT(vtm::util::ols_slope(x, returns), 0.0);
}

TEST(mechanism, beats_baselines) {
  const auto learned = core::run_learning_mechanism(fig2_params(),
                                                    quick_config());
  const auto baselines =
      core::run_paper_baselines(fig2_params(), /*episodes=*/5,
                                /*rounds=*/100, /*seed=*/7);
  ASSERT_EQ(baselines.size(), 2u);
  for (const auto& baseline : baselines) {
    EXPECT_GT(learned.learned_utility, baseline.mean_utility)
        << "baseline " << baseline.name;
  }
  // Greedy dominates random on mean utility (both below the oracle).
  EXPECT_GT(baselines[1].mean_utility, baselines[0].mean_utility);
  EXPECT_LE(baselines[0].mean_utility, learned.oracle.leader_utility);
  EXPECT_LE(baselines[1].mean_utility,
            learned.oracle.leader_utility * (1.0 + 1e-9));
}

TEST(mechanism, paper_config_factory_matches_section_v) {
  const auto config = core::mechanism_config::paper();
  EXPECT_EQ(config.env.history_length, 4u);        // L
  EXPECT_EQ(config.env.rounds_per_episode, 100u);  // K
  EXPECT_EQ(config.trainer.episodes, 500u);        // E
  EXPECT_EQ(config.trainer.update_interval, 20u);  // |I|
  EXPECT_EQ(config.ppo.epochs, 10u);               // M
  EXPECT_DOUBLE_EQ(config.ppo.learning_rate, 1e-5);
  EXPECT_EQ(config.hidden, (std::vector<std::size_t>{64, 64}));
}

TEST(mechanism, shaped_reward_also_converges) {
  auto config = quick_config();
  config.env.mode = core::reward_mode::shaped;
  config.trainer.episodes = 60;
  const auto result = core::run_learning_mechanism(fig2_params(), config);
  EXPECT_GT(result.optimality(), 0.9);
}

TEST(mechanism, seeds_change_trajectories_not_outcome) {
  auto config = quick_config();
  config.trainer.episodes = 60;
  const auto a = core::run_learning_mechanism(fig2_params(), config);
  config.seed = 1234;
  const auto b = core::run_learning_mechanism(fig2_params(), config);
  EXPECT_NE(a.history.front().episode_return,
            b.history.front().episode_return);
  EXPECT_GT(a.optimality(), 0.9);
  EXPECT_GT(b.optimality(), 0.9);
}

TEST(mechanism, callback_sees_every_episode) {
  auto config = quick_config();
  config.trainer.episodes = 10;
  std::size_t calls = 0;
  (void)core::run_learning_mechanism(
      fig2_params(), config,
      [&](const vtm::rl::episode_stats& stats) {
        EXPECT_EQ(stats.episode, calls);
        ++calls;
      });
  EXPECT_EQ(calls, 10u);
}

// ---- highway scenario -------------------------------------------------------------

TEST(scenario, runs_and_records_migrations) {
  core::scenario_config config;
  const auto result = core::run_highway_scenario(config);
  EXPECT_GT(result.handovers, 0u);
  ASSERT_FALSE(result.migrations.empty());
  EXPECT_GT(result.msp_total_utility, 0.0);
  for (const auto& record : result.migrations) {
    EXPECT_GE(record.price, config.unit_cost);
    EXPECT_LE(record.price, config.price_cap);
    EXPECT_GT(record.bandwidth_mhz, 0.0);
    EXPECT_LE(record.bandwidth_mhz, config.bandwidth_cap_mhz.value() + 1e-9);
    EXPECT_GT(record.aotm_closed_form, 0.0);
    // Pre-copy with dirtying can only be slower than the cold copy.
    EXPECT_GE(record.aotm_simulated, record.aotm_closed_form - 1e-9);
    EXPECT_GE(record.downtime_s, 0.0);
    EXPECT_LE(record.downtime_s, record.aotm_simulated + 1e-9);
    EXPECT_NE(record.from_rsu, record.to_rsu);
  }
  EXPECT_GE(result.mean_amplification, 1.0);
}

TEST(scenario, zero_dirty_rate_matches_closed_form_exactly) {
  core::scenario_config config;
  config.dirty_rate_mb_s = vtm::util::mb_per_s{0.0};
  const auto result = core::run_highway_scenario(config);
  ASSERT_FALSE(result.migrations.empty());
  for (const auto& record : result.migrations) {
    EXPECT_NEAR(record.aotm_simulated, record.aotm_closed_form, 1e-9);
  }
  EXPECT_NEAR(result.mean_amplification, 1.0, 1e-9);
}

TEST(scenario, dirty_pages_amplify_traffic) {
  core::scenario_config clean;
  clean.dirty_rate_mb_s = vtm::util::mb_per_s{0.0};
  core::scenario_config dirty;
  dirty.dirty_rate_mb_s = vtm::util::mb_per_s{100.0};
  const auto clean_result = core::run_highway_scenario(clean);
  const auto dirty_result = core::run_highway_scenario(dirty);
  ASSERT_FALSE(clean_result.migrations.empty());
  ASSERT_FALSE(dirty_result.migrations.empty());
  EXPECT_GT(dirty_result.mean_amplification,
            clean_result.mean_amplification);
}

TEST(scenario, deterministic_given_seed) {
  core::scenario_config config;
  const auto a = core::run_highway_scenario(config);
  const auto b = core::run_highway_scenario(config);
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.migrations[i].price, b.migrations[i].price);
    EXPECT_DOUBLE_EQ(a.migrations[i].aotm_simulated,
                     b.migrations[i].aotm_simulated);
  }
}

TEST(scenario, more_vehicles_more_migrations) {
  core::scenario_config few;
  few.vehicle_count = 2;
  core::scenario_config many;
  many.vehicle_count = 8;
  const auto few_result = core::run_highway_scenario(few);
  const auto many_result = core::run_highway_scenario(many);
  EXPECT_GT(many_result.handovers, few_result.handovers);
  EXPECT_GT(many_result.msp_total_utility, few_result.msp_total_utility);
}

TEST(scenario, faster_vehicles_cross_more_boundaries) {
  core::scenario_config slow;
  slow.min_speed_mps = vtm::util::mps{10.0};
  slow.max_speed_mps = vtm::util::mps{12.0};
  core::scenario_config fast;
  fast.min_speed_mps = vtm::util::mps{30.0};
  fast.max_speed_mps = vtm::util::mps{34.0};
  const auto slow_result = core::run_highway_scenario(slow);
  const auto fast_result = core::run_highway_scenario(fast);
  EXPECT_GE(fast_result.handovers, slow_result.handovers);
}

TEST(scenario, rejects_invalid_config) {
  core::scenario_config bad;
  bad.vehicle_count = 0;
  EXPECT_THROW((void)core::run_highway_scenario(bad), vtm::util::contract_error);
}
