// Tests for the pricing POMDP: observation protocol (eq. 11), action
// mapping, reward function (eq. 12) in all modes, episode mechanics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/env.hpp"
#include "core/equilibrium.hpp"
#include "util/contracts.hpp"

namespace core = vtm::core;

namespace {

core::market_params base_params() {
  core::market_params p;
  p.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  return p;
}

core::pricing_env make_env(core::pricing_env_config config = {}) {
  return core::pricing_env(core::migration_market(base_params()), config);
}

vtm::nn::tensor action_of(double raw) {
  return vtm::nn::tensor({1, 1}, {raw});
}

}  // namespace

TEST(env, observation_dim_is_history_times_price_plus_demands) {
  core::pricing_env_config config;
  config.history_length = 4;
  auto env = make_env(config);
  EXPECT_EQ(env.observation_dim(), 4u * (1 + 2));
  EXPECT_EQ(env.action_dim(), 1u);
}

TEST(env, reset_returns_normalized_observation) {
  auto env = make_env();
  const auto obs = env.reset();
  ASSERT_EQ(obs.dims(), (vtm::nn::shape{1, env.observation_dim()}));
  for (double x : obs.flat()) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);  // prices /p_max, demands /B_max
  }
}

TEST(env, action_price_mapping_is_affine_and_clamped) {
  auto env = make_env();
  EXPECT_DOUBLE_EQ(env.price_from_action(-1.0), 5.0);    // C
  EXPECT_DOUBLE_EQ(env.price_from_action(1.0), 50.0);    // p_max
  EXPECT_DOUBLE_EQ(env.price_from_action(0.0), 27.5);    // midpoint
  EXPECT_DOUBLE_EQ(env.price_from_action(-5.0), 5.0);    // clamped
  EXPECT_DOUBLE_EQ(env.price_from_action(5.0), 50.0);
}

TEST(env, action_price_roundtrip) {
  auto env = make_env();
  for (double price : {5.0, 12.5, 27.5, 42.0, 50.0}) {
    EXPECT_NEAR(env.price_from_action(env.action_from_price(price)), price,
                1e-12);
  }
  EXPECT_THROW((void)env.action_from_price(4.0), vtm::util::contract_error);
}

TEST(env, step_reports_market_outcome_in_info) {
  auto env = make_env();
  (void)env.reset();
  const auto result = env.step(action_of(0.0));  // price 27.5
  const core::migration_market& market = env.market();
  EXPECT_NEAR(result.info.at("price"), 27.5, 1e-12);
  EXPECT_NEAR(result.info.at("leader_utility"),
              market.leader_utility(27.5), 1e-9);
  EXPECT_NEAR(result.info.at("total_demand"), market.total_demand(27.5),
              1e-9);
  EXPECT_GT(result.info.at("mean_aotm"), 0.0);
  EXPECT_DOUBLE_EQ(result.info.at("active_vmus"), 2.0);
}

TEST(env, history_contains_last_action) {
  core::pricing_env_config config;
  config.history_length = 2;
  auto env = make_env(config);
  (void)env.reset();
  const auto result = env.step(action_of(1.0));  // price 50 -> normalized 1.0
  // Newest round occupies the trailing (1 + N) slots.
  const auto& obs = result.observation;
  const std::size_t stride = 3;
  const std::size_t base = env.observation_dim() - stride;
  EXPECT_DOUBLE_EQ(obs(0, base), 1.0);  // 50 / p_max
}

TEST(env, done_exactly_after_k_rounds) {
  core::pricing_env_config config;
  config.rounds_per_episode = 5;
  auto env = make_env(config);
  (void)env.reset();
  for (int k = 0; k < 4; ++k) {
    EXPECT_FALSE(env.step(action_of(0.0)).done);
  }
  EXPECT_TRUE(env.step(action_of(0.0)).done);
  EXPECT_THROW((void)env.step(action_of(0.0)), vtm::util::contract_error);
  (void)env.reset();
  EXPECT_FALSE(env.step(action_of(0.0)).done);
}

TEST(env, rejects_malformed_action) {
  auto env = make_env();
  (void)env.reset();
  EXPECT_THROW((void)env.step(vtm::nn::tensor({1, 2})), vtm::util::contract_error);
}

// ---- reward modes ------------------------------------------------------------------

TEST(reward, first_round_always_scores) {
  auto env = make_env();
  (void)env.reset();
  EXPECT_DOUBLE_EQ(env.step(action_of(-0.9)).reward, 1.0);
}

TEST(reward, improvement_scores_regression_does_not) {
  core::pricing_env_config config;
  config.reward_tolerance = 0.0;  // strict eq. 12
  auto env = make_env(config);
  (void)env.reset();
  // Near-optimal first (high utility), then far-off (low utility).
  const double good = env.action_from_price(25.0);
  const double bad = env.action_from_price(48.0);
  EXPECT_DOUBLE_EQ(env.step(action_of(good)).reward, 1.0);
  EXPECT_DOUBLE_EQ(env.step(action_of(bad)).reward, 0.0);
  // Matching the best again scores under strict equality.
  EXPECT_DOUBLE_EQ(env.step(action_of(good)).reward, 1.0);
}

TEST(reward, tolerance_band_accepts_near_best) {
  core::pricing_env_config config;
  config.reward_tolerance = 0.05;
  auto env = make_env(config);
  (void)env.reset();
  const double best = env.action_from_price(25.3);   // ~optimal
  const double close = env.action_from_price(23.0);  // within 5% utility
  EXPECT_DOUBLE_EQ(env.step(action_of(best)).reward, 1.0);
  EXPECT_DOUBLE_EQ(env.step(action_of(close)).reward, 1.0);
}

TEST(reward, best_utility_tracks_maximum) {
  auto env = make_env();
  (void)env.reset();
  (void)env.step(action_of(env.action_from_price(40.0)));
  const double after_first = env.best_utility();
  (void)env.step(action_of(env.action_from_price(25.3)));
  EXPECT_GT(env.best_utility(), after_first);
  (void)env.step(action_of(env.action_from_price(49.0)));
  EXPECT_GT(env.best_utility(), after_first);  // max is sticky
}

TEST(reward, paper_mode_resets_best_on_new_episode) {
  core::pricing_env_config config;
  config.rounds_per_episode = 1;
  config.mode = core::reward_mode::paper_binary;
  auto env = make_env(config);
  (void)env.reset();
  (void)env.step(action_of(env.action_from_price(25.3)));
  const double best = env.best_utility();
  (void)env.reset();
  EXPECT_TRUE(std::isinf(env.best_utility()));
  (void)env.step(action_of(env.action_from_price(49.0)));
  EXPECT_LT(env.best_utility(), best);
}

TEST(reward, persistent_mode_keeps_best_across_episodes) {
  core::pricing_env_config config;
  config.rounds_per_episode = 1;
  config.mode = core::reward_mode::persistent_binary;
  config.reward_tolerance = 0.0;
  auto env = make_env(config);
  (void)env.reset();
  (void)env.step(action_of(env.action_from_price(25.3)));
  const double best = env.best_utility();
  (void)env.reset();
  EXPECT_DOUBLE_EQ(env.best_utility(), best);
  // A poor price after reset cannot match the inherited best.
  EXPECT_DOUBLE_EQ(env.step(action_of(env.action_from_price(49.0))).reward,
                   0.0);
}

TEST(reward, shaped_mode_is_dense_and_normalized) {
  core::pricing_env_config config;
  config.mode = core::reward_mode::shaped;
  auto env = make_env(config);
  const auto oracle = core::solve_equilibrium(env.market());
  (void)env.reset();
  const auto at_optimum =
      env.step(action_of(env.action_from_price(oracle.price)));
  EXPECT_NEAR(at_optimum.reward, 1.0, 1e-6);
  const auto off_optimum =
      env.step(action_of(env.action_from_price(49.0)));
  EXPECT_LT(off_optimum.reward, at_optimum.reward);
  EXPECT_GT(off_optimum.reward, 0.0);
}

TEST(reward, mode_names) {
  EXPECT_STREQ(core::to_string(core::reward_mode::paper_binary),
               "paper-binary");
  EXPECT_STREQ(core::to_string(core::reward_mode::shaped), "shaped");
}

// ---- determinism ---------------------------------------------------------------------

TEST(env, deterministic_given_seed) {
  core::pricing_env_config config;
  config.seed = 99;
  auto env1 = make_env(config);
  auto env2 = make_env(config);
  const auto o1 = env1.reset();
  const auto o2 = env2.reset();
  EXPECT_TRUE(o1.allclose(o2, 0.0));
  const auto r1 = env1.step(action_of(0.3));
  const auto r2 = env2.step(action_of(0.3));
  EXPECT_TRUE(r1.observation.allclose(r2.observation, 0.0));
  EXPECT_DOUBLE_EQ(r1.reward, r2.reward);
}

TEST(env, different_seeds_randomize_warmup_history) {
  core::pricing_env_config config;
  config.seed = 1;
  auto env1 = make_env(config);
  config.seed = 2;
  auto env2 = make_env(config);
  EXPECT_FALSE(env1.reset().allclose(env2.reset(), 1e-12));
}

TEST(env, config_validation) {
  core::pricing_env_config bad;
  bad.history_length = 0;
  EXPECT_THROW((void)make_env(bad), vtm::util::contract_error);
  bad = {};
  bad.reward_tolerance = 1.0;
  EXPECT_THROW((void)make_env(bad), vtm::util::contract_error);
}
