// Tests for the generic game-theory substrate: 1-D maximizers, subgame
// best-response iteration, Stackelberg solver, deviation certificates.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "game/maximize.hpp"
#include "game/stackelberg.hpp"
#include "util/contracts.hpp"

namespace g = vtm::game;

// ---- golden section ------------------------------------------------------------

struct concave_case {
  const char* name;
  std::function<double(double)> f;
  double lo, hi, argmax;
};

class golden_section : public ::testing::TestWithParam<concave_case> {};

TEST_P(golden_section, finds_argmax) {
  const auto& c = GetParam();
  const auto result = g::golden_section_maximize(c.f, c.lo, c.hi, 1e-10);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.arg, c.argmax, 1e-7) << c.name;
  EXPECT_NEAR(result.value, c.f(c.argmax), 1e-10) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    functions, golden_section,
    ::testing::Values(
        concave_case{"parabola",
                     [](double x) { return -(x - 3.0) * (x - 3.0); }, 0.0,
                     10.0, 3.0},
        concave_case{"neg_quartic",
                     [](double x) { return -std::pow(x - 1.5, 4); }, -5.0, 5.0,
                     1.5},
        concave_case{"log_minus_linear",
                     [](double x) { return std::log(x) - 0.5 * x; }, 0.1, 10.0,
                     2.0},
        concave_case{"cosine_lobe", [](double x) { return std::cos(x); },
                     -1.5, 1.5, 0.0},
        concave_case{"boundary_max", [](double x) { return -x; }, 2.0, 5.0,
                     2.0}),
    [](const auto& info) { return info.param.name; });

TEST(golden_section_edge, degenerate_interval) {
  const auto result = g::golden_section_maximize(
      [](double x) { return -x * x; }, 2.0, 2.0, 1e-10);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.arg, 2.0);
}

TEST(golden_section_edge, rejects_bad_arguments) {
  EXPECT_THROW(
      (void)g::golden_section_maximize([](double) { return 0.0; }, 1.0, 0.0),
      vtm::util::contract_error);
  EXPECT_THROW((void)g::golden_section_maximize([](double) { return 0.0; }, 0.0,
                                          1.0, 0.0),
               vtm::util::contract_error);
}

// ---- bisection -----------------------------------------------------------------

TEST(bisect, finds_root_of_decreasing_function) {
  const auto result = g::bisect_decreasing_root(
      [](double x) { return 5.0 - x; }, 0.0, 10.0);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.bracketed);
  EXPECT_NEAR(result.root, 5.0, 1e-9);
}

TEST(bisect, clamps_when_root_below_interval) {
  const auto result = g::bisect_decreasing_root(
      [](double x) { return -1.0 - x; }, 0.0, 10.0);
  EXPECT_FALSE(result.bracketed);
  EXPECT_DOUBLE_EQ(result.root, 0.0);
}

TEST(bisect, clamps_when_root_above_interval) {
  const auto result = g::bisect_decreasing_root(
      [](double x) { return 100.0 - x; }, 0.0, 10.0);
  EXPECT_FALSE(result.bracketed);
  EXPECT_DOUBLE_EQ(result.root, 10.0);
}

TEST(bisect, matches_foc_of_concave_utility) {
  // U(b) = 10·ln(1+b) − 2b  =>  U'(b) = 10/(1+b) − 2, root at b = 4.
  const auto result = g::bisect_decreasing_root(
      [](double b) { return 10.0 / (1.0 + b) - 2.0; }, 0.0, 100.0);
  EXPECT_NEAR(result.root, 4.0, 1e-8);
}

// ---- subgame / Stackelberg --------------------------------------------------------

namespace {

/// Quadratic Cournot-style follower: utility −(own − t·leader + s·Σothers)².
/// Best response own = t·leader − s·Σothers, coupling followers via s.
class quadratic_follower final : public g::follower {
 public:
  quadratic_follower(double t, double s) : t_(t), s_(s) {}

  double utility(double own, double leader,
                 std::span<const double> others) const override {
    const double target = t_ * leader - s_ * sum_others(own, others);
    return -(own - target) * (own - target);
  }

  double best_response(double leader,
                       std::span<const double> others) const override {
    return t_ * leader - s_ * sum_others(0.0, others);
  }

 private:
  // Sum over the *other* followers. We cannot identify "self" by value, so
  // followers in these tests use distinct t_ to keep the fixture honest;
  // the subgame solver passes the full action vector, and each follower
  // ignores its own slot by construction of the test expectations below.
  static double sum_others(double /*own*/, std::span<const double> others) {
    double total = 0.0;
    for (double b : others) total += b;
    return total;
  }

  double t_;
  double s_;
};

}  // namespace

TEST(subgame, decoupled_followers_converge_in_one_sweep) {
  std::vector<std::unique_ptr<g::follower>> followers;
  followers.push_back(std::make_unique<quadratic_follower>(2.0, 0.0));
  followers.push_back(std::make_unique<quadratic_follower>(3.0, 0.0));
  const auto result = g::solve_subgame(followers, 1.5);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.sweeps, 2u);
  EXPECT_NEAR(result.actions[0], 3.0, 1e-12);
  EXPECT_NEAR(result.actions[1], 4.5, 1e-12);
}

TEST(subgame, coupled_followers_reach_fixed_point) {
  // own_i = t·p − s·(Σ_j a_j): with the full vector passed, the fixed point
  // satisfies a_i = t·p − s·Σ_j a_j. For 2 symmetric followers:
  // a = t·p − s·2a  =>  a = t·p / (1 + 2s).
  const double t = 1.0, s = 0.2, p = 10.0;
  std::vector<std::unique_ptr<g::follower>> followers;
  followers.push_back(std::make_unique<quadratic_follower>(t, s));
  followers.push_back(std::make_unique<quadratic_follower>(t, s));
  const auto result = g::solve_subgame(followers, p, 1e-12, 500);
  EXPECT_TRUE(result.converged);
  const double expected = t * p / (1.0 + 2.0 * s);
  EXPECT_NEAR(result.actions[0], expected, 1e-8);
  EXPECT_NEAR(result.actions[1], expected, 1e-8);
}

TEST(stackelberg, monopoly_with_linear_demand_has_known_optimum) {
  // Leader sets price p in [0, 10]; single follower demands q = a − b·p (as
  // its "best response"); leader utility (p − c)·q. Textbook optimum:
  // p* = (a + b·c) / (2b). With a=10, b=1, c=2: p* = 6, q* = 4, U* = 16.
  class linear_demand final : public g::follower {
   public:
    double utility(double own, double leader,
                   std::span<const double>) const override {
      // Follower "utility" peaks exactly at the demand curve.
      const double target = 10.0 - leader;
      return -(own - target) * (own - target);
    }
    double best_response(double leader,
                         std::span<const double>) const override {
      return std::max(0.0, 10.0 - leader);
    }
  };
  std::vector<std::unique_ptr<g::follower>> followers;
  followers.push_back(std::make_unique<linear_demand>());

  g::leader_problem problem;
  problem.action_lo = 0.0;
  problem.action_hi = 10.0;
  problem.utility = [](double p, std::span<const double> actions) {
    return (p - 2.0) * actions[0];
  };
  const auto solution = g::solve_stackelberg(problem, followers);
  EXPECT_NEAR(solution.leader_action, 6.0, 1e-6);
  EXPECT_NEAR(solution.leader_utility, 16.0, 1e-8);
  EXPECT_NEAR(solution.follower_actions[0], 4.0, 1e-6);
  EXPECT_TRUE(solution.subgame_converged);
}

TEST(stackelberg, certificate_holds_at_optimum_and_fails_off_optimum) {
  class linear_demand final : public g::follower {
   public:
    double utility(double own, double leader,
                   std::span<const double>) const override {
      const double target = std::max(0.0, 10.0 - leader);
      return -(own - target) * (own - target);
    }
    double best_response(double leader,
                         std::span<const double>) const override {
      return std::max(0.0, 10.0 - leader);
    }
  };
  std::vector<std::unique_ptr<g::follower>> followers;
  followers.push_back(std::make_unique<linear_demand>());
  g::leader_problem problem;
  problem.action_lo = 0.0;
  problem.action_hi = 10.0;
  problem.utility = [](double p, std::span<const double> actions) {
    return (p - 2.0) * actions[0];
  };
  const auto optimal = g::solve_stackelberg(problem, followers);
  const auto good = g::check_no_deviation(problem, followers, optimal, 128, 20.0);
  EXPECT_TRUE(good.holds(1e-4));

  g::stackelberg_solution bad = optimal;
  bad.leader_action = 3.0;  // suboptimal price
  bad.leader_utility = problem.utility(3.0, {std::vector<double>{7.0}});
  const auto report = g::check_no_deviation(problem, followers, bad, 128, 20.0);
  EXPECT_GT(report.leader_gain, 1.0);
}

TEST(stackelberg, grid_restart_survives_constraint_kinks) {
  // Piecewise leader objective with a kink (capacity-style): the grid scan
  // must not get stuck on the wrong side.
  std::vector<std::unique_ptr<g::follower>> followers;
  followers.push_back(std::make_unique<quadratic_follower>(1.0, 0.0));
  g::leader_problem problem;
  problem.action_lo = 0.0;
  problem.action_hi = 10.0;
  problem.utility = [](double p, std::span<const double> actions) {
    const double demand = std::min(actions[0], 4.0);  // hard cap at 4
    return (p - 1.0) * demand;
  };
  // actions[0] = p (t=1); utility = (p−1)·min(p,4), maximized at p = 10
  // (rising in p on the capped branch).
  const auto solution = g::solve_stackelberg(problem, followers);
  EXPECT_NEAR(solution.leader_action, 10.0, 1e-6);
}
