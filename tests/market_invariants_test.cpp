// Property suite for the spot-market clearing engine, run against *both*
// pricing backends (analytic oracle and a learned policy network): whatever
// posts the price, the market's physical and accounting invariants must
// hold. These are the guarantees that make swapping pricing backends safe
// (DESIGN.md §9):
//   1. Σ granted bandwidth <= the pool remainder offered to the clearing;
//   2. every cleared price lies in [unit_cost, price_cap];
//   3. every submitted request resolves exactly once — granted, priced out,
//      or deferred (and a deferred request stays in the book);
//   4. under the oracle backend, a joint clearing is priced exactly like the
//      combined-set equilibrium (bitwise — same solver, same inputs).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/fleet_scenario.hpp"
#include "core/pricing_policy.hpp"
#include "core/spot_market.hpp"
#include "rl/policy.hpp"
#include "util/rng.hpp"

namespace core = vtm::core;
namespace rl = vtm::rl;

namespace {

/// An *untrained* pricing network (random weights): the invariants may not
/// depend on the policy being any good, only on the clearing mechanism.
std::shared_ptr<const core::learned_pricer> random_pricer(
    std::uint64_t seed, double unit_cost, double price_cap) {
  rl::actor_critic_config net;
  net.obs_dim = core::cohort_feature_dim;
  net.act_dim = 1;
  net.hidden = {16, 16};
  vtm::util::rng gen(seed);
  core::learned_pricer_config config;
  config.hidden = net.hidden;
  config.unit_cost = unit_cost;
  config.price_cap = price_cap;
  return std::make_shared<const core::learned_pricer>(
      config, rl::actor_critic(net, gen));
}

struct drawn_book {
  std::vector<core::clearing_request> requests;
  double available_mhz = 0.0;
};

drawn_book draw_book(vtm::util::rng& gen) {
  drawn_book book;
  const auto cohort = static_cast<std::size_t>(gen.uniform_int(1, 12));
  book.requests.reserve(cohort);
  for (std::size_t v = 0; v < cohort; ++v) {
    core::clearing_request request;
    request.vehicle = v;
    // Spans priced-out (tiny alpha), interior, and rationed regimes.
    request.profile.alpha = gen.uniform(1.0, 3000.0);
    request.profile.data_mb = gen.uniform(50.0, 400.0);
    request.to_rsu = 1;
    book.requests.push_back(request);
  }
  book.available_mhz = gen.uniform(0.05, 80.0);
  return book;
}

void check_clearing_invariants(const core::spot_market_config& config,
                               const drawn_book& book,
                               const core::clearing_outcome& outcome,
                               std::size_t pending_after) {
  // (3) exactly-once resolution.
  EXPECT_EQ(outcome.grants.size() + outcome.priced_out.size() +
                outcome.deferred,
            book.requests.size());
  EXPECT_EQ(pending_after, outcome.deferred);

  // (1) no oversubscription; (2) price box; per-grant accounting.
  double total = 0.0;
  for (const auto& grant : outcome.grants) {
    EXPECT_GT(grant.bandwidth_mhz, 0.0);
    EXPECT_GE(grant.price, config.unit_cost);
    EXPECT_LE(grant.price, config.price_cap * (1.0 + 1e-12));
    EXPECT_EQ(grant.msp_utility,
              (grant.price - config.unit_cost) * grant.bandwidth_mhz);
    total += grant.bandwidth_mhz;
  }
  EXPECT_LE(total, book.available_mhz * (1.0 + 1e-12) + 1e-12);
}

}  // namespace

class market_invariants
    : public ::testing::TestWithParam<core::clearing_discipline> {};

// Randomized cohorts x pool states, oracle backend.
TEST_P(market_invariants, oracle_backend_randomized) {
  vtm::util::rng gen(20260729);
  for (int trial = 0; trial < 200; ++trial) {
    core::spot_market_config config;
    config.discipline = GetParam();
    core::spot_market market(config);
    const auto book = draw_book(gen);
    for (const auto& request : book.requests) market.submit(request);
    const auto outcome = market.clear(book.available_mhz);
    check_clearing_invariants(config, book, outcome, market.pending());
  }
}

// Same properties with an untrained learned policy posting the prices: the
// clearing mechanism, not the policy, enforces them.
TEST_P(market_invariants, learned_backend_randomized) {
  vtm::util::rng gen(887);
  for (int trial = 0; trial < 200; ++trial) {
    core::spot_market_config config;
    config.discipline = GetParam();
    config.policy = std::make_shared<core::learned_policy>(
        random_pricer(1000 + static_cast<std::uint64_t>(trial),
                      config.unit_cost, config.price_cap));
    config.pool_capacity_mhz = vtm::util::megahertz{50.0};
    core::spot_market market(config);
    const auto book = draw_book(gen);
    for (const auto& request : book.requests) market.submit(request);
    const auto outcome = market.clear(book.available_mhz);
    check_clearing_invariants(config, book, outcome, market.pending());
  }
}

INSTANTIATE_TEST_SUITE_P(disciplines, market_invariants,
                         ::testing::Values(core::clearing_discipline::joint,
                                           core::clearing_discipline::sequential),
                         [](const auto& info) {
                           return std::string(core::to_string(info.param));
                         });

// (4) Under the oracle backend, joint clearings match the combined-set
// equilibrium bitwise, across randomized cohorts (not just one example).
TEST(market_invariants, joint_oracle_matches_combined_equilibrium) {
  vtm::util::rng gen(4242);
  for (int trial = 0; trial < 100; ++trial) {
    core::spot_market_config config;
    core::spot_market market(config);
    const auto book = draw_book(gen);
    core::market_params combined;
    for (const auto& request : book.requests) {
      market.submit(request);
      combined.vmus.push_back(request.profile);
    }
    combined.link = config.link;
    combined.bandwidth_cap_mhz = vtm::util::megahertz{book.available_mhz};
    combined.unit_cost = config.unit_cost;
    combined.price_cap = config.price_cap;
    const auto eq =
        core::solve_equilibrium(core::migration_market(combined));

    const auto outcome = market.clear(book.available_mhz);
    if (outcome.markets_cleared == 0) continue;  // below min_clearable
    EXPECT_EQ(outcome.price, eq.price);
    // Walk the cohort in submission order mirroring the clearing's clamp of
    // the running remainder: each grant's bandwidth equals the equilibrium
    // demand up to that clamp.
    double remaining = book.available_mhz;
    std::size_t grant_index = 0;
    for (std::size_t n = 0; n < book.requests.size(); ++n) {
      if (eq.demands[n] <= 0.0) continue;  // priced out
      const double clamped = std::min(eq.demands[n], remaining);
      if (clamped <= 1e-9) continue;  // rounding ate its share: deferred
      ASSERT_LT(grant_index, outcome.grants.size());
      EXPECT_EQ(outcome.grants[grant_index].bandwidth_mhz, clamped);
      EXPECT_EQ(outcome.grants[grant_index].vmu_utility,
                eq.vmu_utilities[n]);
      remaining -= clamped;
      ++grant_index;
    }
    EXPECT_EQ(grant_index, outcome.grants.size());
  }
}

// Multi-clearing lifecycle: across repeated clears with shrinking capacity
// and fresh submissions in between, every request resolves exactly once
// (grant / priced-out / abandon), never twice, never zero times.
TEST(market_invariants, every_request_resolves_exactly_once_across_clearings) {
  vtm::util::rng gen(9090);
  for (int trial = 0; trial < 50; ++trial) {
    core::spot_market_config config;
    config.discipline = trial % 2 == 0 ? core::clearing_discipline::joint
                                       : core::clearing_discipline::sequential;
    core::spot_market market(config);
    std::size_t submitted = 0;
    std::size_t resolved = 0;
    for (int round = 0; round < 4; ++round) {
      const auto book = draw_book(gen);
      for (const auto& request : book.requests) market.submit(request);
      submitted += book.requests.size();
      const auto outcome = market.clear(book.available_mhz);
      resolved += outcome.grants.size() + outcome.priced_out.size();
      EXPECT_EQ(market.pending(), outcome.deferred);
    }
    resolved += market.abandon_pending().size();
    EXPECT_EQ(resolved, submitted);
    EXPECT_EQ(market.pending(), 0u);
  }
}

// Checkpoint round-trip: a pricer serialized and reloaded produces bitwise
// identical prices on random observations (the nn::serialize text format
// loses no precision).
TEST(market_invariants, learned_pricer_checkpoint_roundtrip_is_bitwise) {
  const auto pricer = random_pricer(7, 5.0, 50.0);
  core::learned_pricer_config config = pricer->config();
  const core::learned_pricer reloaded(config, pricer->checkpoint());
  vtm::util::rng gen(13);
  for (int trial = 0; trial < 50; ++trial) {
    core::cohort_observation obs;
    obs.cohort = static_cast<std::size_t>(gen.uniform_int(1, 80));
    obs.capacity_mhz = 50.0;
    obs.available_mhz = gen.uniform(0.5, 50.0);
    obs.mean_alpha = gen.uniform(100.0, 2500.0);
    obs.max_alpha = obs.mean_alpha * 1.5;
    obs.sum_alpha = obs.mean_alpha * static_cast<double>(obs.cohort);
    obs.mean_kappa = gen.uniform(1.0, 12.0);
    obs.max_kappa = obs.mean_kappa * 1.5;
    obs.sum_kappa = obs.mean_kappa * static_cast<double>(obs.cohort);
    obs.spectral_efficiency = 30.0;
    obs.unit_cost = 5.0;
    obs.price_cap = 50.0;
    EXPECT_EQ(pricer->price(obs), reloaded.price(obs));
  }
}

// Learned prices always land inside the price box, whatever the network
// outputs (squashed_price clamps after the tanh headroom).
TEST(market_invariants, squashed_price_stays_in_box) {
  for (double raw : {-1e9, -3.0, -1.0, -0.2, 0.0, 0.4, 1.0, 2.5, 1e9}) {
    const double price = core::squashed_price(raw, 5.0, 50.0);
    EXPECT_GE(price, 5.0);
    EXPECT_LE(price, 50.0);
  }
  // Monotone in the raw action until the cap clamps.
  EXPECT_LT(core::squashed_price(-0.5, 5.0, 50.0),
            core::squashed_price(0.0, 5.0, 50.0));
  EXPECT_LT(core::squashed_price(0.0, 5.0, 50.0),
            core::squashed_price(0.5, 5.0, 50.0));
  // The headroom makes the cap reachable at a finite action.
  EXPECT_EQ(core::squashed_price(3.0, 5.0, 50.0), 50.0);
}

// Per-RSU channel heterogeneity: on a non-uniform chain every pool prices
// over its own RSU-pair distance, so identical cohorts clear at different
// prices along the chain (the ROADMAP bugfix this PR closes). The pools at
// the long gaps see a weaker link (lower R, higher κ) and a different
// equilibrium price than the pools at the short gaps.
TEST(market_invariants, prices_vary_along_a_non_uniform_chain) {
  core::fleet_config config;
  config.rsu_positions_m = {vtm::util::meters{1000.0}, vtm::util::meters{1600.0}, vtm::util::meters{3200.0}, vtm::util::meters{3800.0}, vtm::util::meters{5400.0}};
  config.coverage_radius_m = vtm::util::meters{900.0};  // covers the widest (1600 m) gap
  config.vehicle_count = 60;
  config.duration_s = vtm::util::seconds{80.0};
  config.clearing_epoch_s = vtm::util::seconds{0.5};
  config.seed = 11;

  const auto result = core::run_fleet_scenario(config);
  ASSERT_GT(result.completed, 0u);

  // Group completed migrations by destination RSU and compare mean prices
  // between a short-gap destination (600 m) and a long-gap one (1600 m).
  std::vector<double> price_sum(config.rsu_positions_m.size(), 0.0);
  std::vector<std::size_t> price_count(config.rsu_positions_m.size(), 0);
  for (const auto& record : result.migrations) {
    price_sum[record.to_rsu] += record.price;
    ++price_count[record.to_rsu];
  }
  // RSU 1 sits 600 m from RSU 0; RSU 2 sits 1600 m from RSU 1.
  ASSERT_GT(price_count[1], 0u);
  ASSERT_GT(price_count[2], 0u);
  const double short_gap_price =
      price_sum[1] / static_cast<double>(price_count[1]);
  const double long_gap_price =
      price_sum[2] / static_cast<double>(price_count[2]);
  // A longer hop lowers spectral efficiency, raising κ = D/R: transfers take
  // longer per MHz, demand curves shift, and the cleared price moves. The
  // two must be distinctly different — under the old global-constant link
  // they were drawn from identical markets.
  EXPECT_GT(std::abs(long_gap_price - short_gap_price), 0.5);
}
