// Autograd correctness: every op's gradient is validated against central
// finite differences via nn::check_gradients, plus structural tests of the
// tape (diamond graphs, leaf accumulation, stop_gradient).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.hpp"
#include "nn/gaussian.hpp"
#include "nn/gradcheck.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace nn = vtm::nn;

namespace {

nn::tensor random_tensor(nn::shape s, vtm::util::rng& gen, double lo = -1.0,
                         double hi = 1.0) {
  nn::tensor t(s);
  for (auto& x : t.flat()) x = gen.uniform(lo, hi);
  return t;
}

}  // namespace

TEST(variable, constant_vs_parameter_grad_flags) {
  const auto c = nn::variable::constant(nn::tensor::scalar(1.0));
  const auto p = nn::variable::parameter(nn::tensor::scalar(1.0));
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(p.requires_grad());
}

TEST(variable, invalid_handle_rejected) {
  nn::variable v;
  EXPECT_FALSE(v.valid());
  EXPECT_THROW((void)v.value(), vtm::util::contract_error);
}

TEST(variable, set_value_requires_same_shape_leaf) {
  auto p = nn::variable::parameter(nn::tensor({1, 2}));
  EXPECT_NO_THROW(p.set_value(nn::tensor({1, 2}, 3.0)));
  EXPECT_THROW((void)p.set_value(nn::tensor({2, 1})), vtm::util::contract_error);
  auto interior = p * 2.0;
  EXPECT_THROW((void)interior.set_value(nn::tensor({1, 2})),
               vtm::util::contract_error);
}

TEST(backward, requires_scalar_root) {
  auto p = nn::variable::parameter(nn::tensor({1, 2}, 1.0));
  EXPECT_THROW((void)nn::backward(p), vtm::util::contract_error);
  EXPECT_NO_THROW(nn::backward(nn::sum(p)));
}

TEST(backward, linear_chain_gradient) {
  auto x = nn::variable::parameter(nn::tensor::scalar(3.0));
  auto y = nn::sum(x * 2.0 + 5.0);
  nn::backward(y);
  EXPECT_DOUBLE_EQ(x.grad().item(), 2.0);
}

TEST(backward, diamond_graph_accumulates_both_paths) {
  // y = x*x + x  =>  dy/dx = 2x + 1 at x=4 -> 9
  auto x = nn::variable::parameter(nn::tensor::scalar(4.0));
  auto y = nn::sum(x * x + x);
  nn::backward(y);
  EXPECT_DOUBLE_EQ(x.grad().item(), 9.0);
}

TEST(backward, leaf_grads_accumulate_across_calls) {
  auto x = nn::variable::parameter(nn::tensor::scalar(1.0));
  auto y1 = nn::sum(x * 3.0);
  nn::backward(y1);
  auto y2 = nn::sum(x * 4.0);
  nn::backward(y2);
  EXPECT_DOUBLE_EQ(x.grad().item(), 7.0);  // 3 + 4
  x.zero_grad();
  EXPECT_DOUBLE_EQ(x.grad().item(), 0.0);
}

TEST(backward, interior_grads_reset_between_passes) {
  auto x = nn::variable::parameter(nn::tensor::scalar(2.0));
  auto mid = x * x;
  auto y = nn::sum(mid);
  nn::backward(y);
  nn::backward(y);
  // Leaf accumulated twice (4+4); interior grad must not compound the flow.
  EXPECT_DOUBLE_EQ(x.grad().item(), 8.0);
}

TEST(backward, constants_receive_no_gradient_flow) {
  auto x = nn::variable::parameter(nn::tensor::scalar(2.0));
  auto c = nn::variable::constant(nn::tensor::scalar(10.0));
  auto y = nn::sum(x * c);
  nn::backward(y);
  EXPECT_DOUBLE_EQ(x.grad().item(), 10.0);
  EXPECT_DOUBLE_EQ(c.grad().item(), 0.0);
}

TEST(backward, stop_gradient_blocks_flow) {
  auto x = nn::variable::parameter(nn::tensor::scalar(3.0));
  auto y = nn::sum(nn::stop_gradient(x * x) * x);  // treat x² as constant 9
  nn::backward(y);
  EXPECT_DOUBLE_EQ(x.grad().item(), 9.0);
}

TEST(backward, accumulate_grad_manual) {
  auto x = nn::variable::parameter(nn::tensor::scalar(0.0));
  x.accumulate_grad(nn::tensor::scalar(2.5));
  EXPECT_DOUBLE_EQ(x.grad().item(), 2.5);
  EXPECT_THROW((void)x.accumulate_grad(nn::tensor({1, 2})),
               vtm::util::contract_error);
}

// ---- per-op gradchecks (parameterized) ---------------------------------------

struct op_case {
  const char* name;
  // Builds a scalar from one 2x3 parameter.
  std::function<nn::variable(const nn::variable&)> build;
  double lo = -1.0;  ///< Parameter value range (positive for log).
  double hi = 1.0;
};

class op_gradcheck : public ::testing::TestWithParam<op_case> {};

TEST_P(op_gradcheck, matches_finite_differences) {
  const auto& param = GetParam();
  vtm::util::rng gen(1234);
  auto x = nn::variable::parameter(
      random_tensor({2, 3}, gen, param.lo, param.hi));
  const auto result = nn::check_gradients(
      [&] { return param.build(x); }, {x}, 1e-6, 1e-5);
  EXPECT_TRUE(result.passed) << param.name << ": " << result.detail
                             << " (rel err " << result.max_rel_err << ")";
}

INSTANTIATE_TEST_SUITE_P(
    ops, op_gradcheck,
    ::testing::Values(
        op_case{"sum", [](const nn::variable& x) { return nn::sum(x); }},
        op_case{"mean", [](const nn::variable& x) { return nn::mean(x); }},
        op_case{"tanh",
                [](const nn::variable& x) { return nn::sum(nn::tanh(x)); }},
        op_case{"sigmoid",
                [](const nn::variable& x) { return nn::sum(nn::sigmoid(x)); }},
        op_case{"exp",
                [](const nn::variable& x) { return nn::sum(nn::exp(x)); }},
        op_case{"log",
                [](const nn::variable& x) { return nn::sum(nn::log(x)); }, 0.2,
                2.0},
        op_case{"square",
                [](const nn::variable& x) { return nn::sum(nn::square(x)); }},
        op_case{"relu_off_kink",
                [](const nn::variable& x) {
                  return nn::sum(nn::relu(x + 3.0) + nn::relu(x - 3.0));
                }},
        op_case{"scale_shift",
                [](const nn::variable& x) {
                  return nn::sum(2.5 * x - 1.0 + x * -0.5);
                }},
        op_case{"negate",
                [](const nn::variable& x) { return nn::sum(-x); }},
        op_case{"add_sub_mul",
                [](const nn::variable& x) {
                  return nn::sum(x * x + x - x * 0.3);
                }},
        op_case{"clamp_interior",
                [](const nn::variable& x) {
                  return nn::sum(nn::clamp(x, -10.0, 10.0));
                }},
        op_case{"sum_cols",
                [](const nn::variable& x) {
                  return nn::sum(nn::square(nn::sum_cols(x)));
                }}),
    [](const auto& info) { return info.param.name; });

TEST(op_gradcheck_binary, division) {
  vtm::util::rng gen(5);
  auto a = nn::variable::parameter(random_tensor({2, 3}, gen, 0.5, 2.0));
  auto b = nn::variable::parameter(random_tensor({2, 3}, gen, 0.5, 2.0));
  const auto result = nn::check_gradients(
      [&] { return nn::sum(a / b); }, {a, b}, 1e-6, 1e-5);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(op_gradcheck_binary, minimum_away_from_ties) {
  vtm::util::rng gen(6);
  auto a = nn::variable::parameter(random_tensor({2, 3}, gen, 0.0, 1.0));
  auto b = nn::variable::parameter(random_tensor({2, 3}, gen, 2.0, 3.0));
  const auto result = nn::check_gradients(
      [&] { return nn::sum(nn::minimum(a, b) + nn::minimum(b, a)); }, {a, b},
      1e-6, 1e-5);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(op_gradcheck_binary, matmul_both_sides) {
  vtm::util::rng gen(7);
  auto a = nn::variable::parameter(random_tensor({2, 3}, gen));
  auto b = nn::variable::parameter(random_tensor({3, 4}, gen));
  const auto result = nn::check_gradients(
      [&] { return nn::sum(nn::square(nn::matmul(a, b))); }, {a, b}, 1e-6,
      1e-5);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(op_gradcheck_binary, add_rowvec_broadcast) {
  vtm::util::rng gen(8);
  auto m = nn::variable::parameter(random_tensor({4, 3}, gen));
  auto row = nn::variable::parameter(random_tensor({1, 3}, gen));
  const auto result = nn::check_gradients(
      [&] { return nn::sum(nn::square(nn::add_rowvec(m, row))); }, {m, row},
      1e-6, 1e-5);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(op_gradcheck_binary, tile_rows_broadcast) {
  vtm::util::rng gen(9);
  auto row = nn::variable::parameter(random_tensor({1, 3}, gen));
  const auto result = nn::check_gradients(
      [&] { return nn::sum(nn::square(nn::tile_rows(row, 5))); }, {row}, 1e-6,
      1e-5);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(op_gradcheck_composite, deep_expression) {
  vtm::util::rng gen(10);
  auto w = nn::variable::parameter(random_tensor({3, 3}, gen, -0.5, 0.5));
  auto x = nn::variable::constant(random_tensor({2, 3}, gen));
  const auto result = nn::check_gradients(
      [&] {
        auto h = nn::tanh(nn::matmul(x, w));
        auto g = nn::sigmoid(nn::matmul(h, w));
        return nn::mean(nn::square(g - 0.3));
      },
      {w}, 1e-6, 1e-4);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(op_gradcheck_composite, gaussian_log_prob) {
  vtm::util::rng gen(11);
  auto mean = nn::variable::parameter(random_tensor({4, 2}, gen));
  auto log_std = nn::variable::parameter(random_tensor({1, 2}, gen, -1.0, 0.0));
  auto actions = nn::variable::constant(random_tensor({4, 2}, gen));
  const auto result = nn::check_gradients(
      [&] {
        return nn::mean(nn::gaussian_log_prob(mean, log_std, actions));
      },
      {mean, log_std}, 1e-6, 1e-4);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(op_gradcheck_composite, gaussian_entropy) {
  vtm::util::rng gen(12);
  auto log_std = nn::variable::parameter(random_tensor({1, 3}, gen));
  const auto result = nn::check_gradients(
      [&] { return nn::gaussian_entropy(log_std); }, {log_std}, 1e-6, 1e-5);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(op_gradcheck_composite, ppo_style_clipped_surrogate) {
  vtm::util::rng gen(13);
  auto mean = nn::variable::parameter(random_tensor({6, 1}, gen));
  auto log_std = nn::variable::parameter(random_tensor({1, 1}, gen, -1.0, 0.0));
  auto actions = nn::variable::constant(random_tensor({6, 1}, gen));
  auto old_logp = nn::variable::constant(random_tensor({6, 1}, gen, -2.0, 0.0));
  auto adv = nn::variable::constant(random_tensor({6, 1}, gen));
  const auto result = nn::check_gradients(
      [&] {
        auto logp = nn::gaussian_log_prob(mean, log_std, actions);
        auto ratio = nn::exp(logp - old_logp);
        auto clipped = nn::clamp(ratio, 0.8, 1.2);
        return -nn::mean(nn::minimum(ratio * adv, clipped * adv));
      },
      {mean, log_std}, 1e-7, 2e-4);
  EXPECT_TRUE(result.passed) << result.detail;
}

// ---- forward-value checks ------------------------------------------------------

TEST(forward, op_values_match_std_functions) {
  auto x = nn::variable::constant(nn::tensor({1, 3}, {-1.0, 0.0, 2.0}));
  EXPECT_TRUE(nn::tanh(x).value().allclose(
      nn::tensor({1, 3}, {std::tanh(-1.0), 0.0, std::tanh(2.0)})));
  EXPECT_TRUE(nn::relu(x).value().allclose(nn::tensor({1, 3}, {0, 0, 2})));
  EXPECT_TRUE(nn::exp(x).value().allclose(
      nn::tensor({1, 3}, {std::exp(-1.0), 1.0, std::exp(2.0)})));
  EXPECT_TRUE(
      nn::clamp(x, -0.5, 1.0).value().allclose(nn::tensor({1, 3}, {-0.5, 0, 1})));
}

TEST(forward, log_rejects_non_positive) {
  auto x = nn::variable::constant(nn::tensor({1, 2}, {1.0, 0.0}));
  EXPECT_THROW((void)nn::log(x), vtm::util::contract_error);
}

TEST(forward, division_by_zero_rejected) {
  auto a = nn::variable::constant(nn::tensor::scalar(1.0));
  auto b = nn::variable::constant(nn::tensor::scalar(0.0));
  EXPECT_THROW((void)(a / b), vtm::util::contract_error);
}

TEST(forward, reductions) {
  auto x = nn::variable::constant(nn::tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(nn::sum(x).value().item(), 10.0);
  EXPECT_DOUBLE_EQ(nn::mean(x).value().item(), 2.5);
  EXPECT_TRUE(
      nn::sum_cols(x).value().allclose(nn::tensor({2, 1}, {3.0, 7.0})));
}
