// Property suite for `core::multi_msp_market` under capacity rationing —
// the static oligopoly the fleet's competitive clearing engine drives
// (DESIGN.md §11). Randomized across rosters, price vectors, and cohort
// draws:
//   1. softmin shares always sum to 1 and are strictly positive;
//   2. rationed sales never exceed any MSP's bandwidth_cap_mhz;
//   3. per-MSP utilities are exactly (p_m − C_m)·sales_m;
//   4. with M = 1, shares/effective price/demands are *bitwise* the monopoly
//      `core::market` path (same formulas, same arithmetic), so plugging
//      the oligopoly evaluator into a single-seller market changes nothing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/market.hpp"
#include "core/multi_msp.hpp"
#include "util/rng.hpp"

namespace core = vtm::core;

namespace {

core::multi_msp_params draw_params(vtm::util::rng& gen, std::size_t msps) {
  core::multi_msp_params params;
  for (std::size_t m = 0; m < msps; ++m) {
    core::msp_profile msp;
    msp.unit_cost = gen.uniform(1.0, 10.0);
    msp.price_cap = msp.unit_cost + gen.uniform(5.0, 60.0);
    msp.bandwidth_cap_mhz = gen.uniform(0.5, 60.0);
    params.msps.push_back(msp);
  }
  const auto vmus = static_cast<std::size_t>(gen.uniform_int(1, 10));
  for (std::size_t n = 0; n < vmus; ++n)
    params.vmus.push_back({gen.uniform(50.0, 3000.0),
                           gen.uniform(50.0, 400.0)});
  params.share_sharpness = gen.uniform(0.05, 4.0);
  return params;
}

std::vector<double> draw_prices(vtm::util::rng& gen,
                                const core::multi_msp_params& params) {
  std::vector<double> prices;
  for (const auto& msp : params.msps)
    prices.push_back(gen.uniform(msp.unit_cost, msp.price_cap));
  return prices;
}

}  // namespace

TEST(multi_msp_property, shares_sum_to_one_and_stay_positive) {
  vtm::util::rng gen(20260729);
  for (int trial = 0; trial < 200; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(1, 6));
    auto params = draw_params(gen, msps);
    const core::multi_msp_market market(params);
    const auto prices = draw_prices(gen, params);
    const auto shares = market.shares(prices);
    ASSERT_EQ(shares.size(), msps);
    double total = 0.0;
    for (const double w : shares) {
      EXPECT_GT(w, 0.0);  // softmin never fully starves a seller
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(multi_msp_property, rationed_sales_never_exceed_any_cap) {
  vtm::util::rng gen(41);
  for (int trial = 0; trial < 200; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(1, 6));
    auto params = draw_params(gen, msps);
    const core::multi_msp_market market(params);
    const auto prices = draw_prices(gen, params);
    const auto sales = market.msp_sales(prices);
    ASSERT_EQ(sales.size(), msps);
    for (std::size_t m = 0; m < msps; ++m) {
      EXPECT_GE(sales[m], 0.0);
      EXPECT_LE(sales[m], params.msps[m].bandwidth_cap_mhz);
    }
    // Equilibrium prices keep the invariant too (they are just another
    // price vector as far as rationing is concerned).
    const auto eq = core::solve_price_competition(market);
    for (std::size_t m = 0; m < msps; ++m)
      EXPECT_LE(eq.sales[m], params.msps[m].bandwidth_cap_mhz);
  }
}

TEST(multi_msp_property, utilities_are_margin_times_sales) {
  vtm::util::rng gen(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(2, 5));
    auto params = draw_params(gen, msps);
    const core::multi_msp_market market(params);
    const auto prices = draw_prices(gen, params);
    const auto sales = market.msp_sales(prices);
    const auto utilities = market.msp_utilities(prices);
    for (std::size_t m = 0; m < msps; ++m)
      EXPECT_EQ(utilities[m],
                (prices[m] - params.msps[m].unit_cost) * sales[m]);
  }
}

// A tiny cap must bind exactly: the rationed seller sells its whole pool.
TEST(multi_msp_property, binding_cap_sells_exactly_the_pool) {
  core::multi_msp_params params;
  params.msps = {{5.0, 0.25, 50.0}, {5.0, 50.0, 50.0}};
  params.vmus = {{2000.0, 100.0}, {2000.0, 150.0}, {1500.0, 120.0}};
  const core::multi_msp_market market(params);
  const std::vector<double> prices{6.0, 6.0};
  const auto sales = market.msp_sales(prices);
  EXPECT_EQ(sales[0], 0.25);  // cap binds bit-exactly (min against the cap)
  EXPECT_LE(sales[1], 50.0);
}

// ---- M = 1 is bitwise the monopoly market ----------------------------------

TEST(multi_msp_property, single_msp_is_bitwise_the_monopoly_path) {
  vtm::util::rng gen(1234);
  for (int trial = 0; trial < 100; ++trial) {
    auto params = draw_params(gen, 1);
    const core::multi_msp_market oligo(params);

    core::market_params mono;
    mono.vmus = params.vmus;
    mono.link = params.link;
    mono.bandwidth_cap_mhz = params.msps[0].bandwidth_cap_mhz;
    mono.unit_cost = params.msps[0].unit_cost;
    mono.price_cap = params.msps[0].price_cap;
    const core::migration_market market(mono);

    const double price =
        gen.uniform(params.msps[0].unit_cost, params.msps[0].price_cap);
    const std::vector<double> prices{price};

    // Degenerate softmin: exp(0)/exp(0) — exactly one, no rounding.
    const auto shares = oligo.shares(prices);
    EXPECT_EQ(shares, std::vector<double>{1.0});
    EXPECT_EQ(oligo.effective_price(prices), price);

    // Per-VMU demand is the identical expression (α/p − κ clamped at 0), so
    // the doubles match bit for bit.
    for (std::size_t n = 0; n < params.vmus.size(); ++n)
      EXPECT_EQ(oligo.vmu_demand(n, prices), market.best_response(n, price));
  }
}
