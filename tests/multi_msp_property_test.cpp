// Property suite for `core::multi_msp_market` under capacity rationing —
// the static oligopoly the fleet's competitive clearing engine drives
// (DESIGN.md §11). Randomized across rosters, price vectors, and cohort
// draws:
//   1. softmin shares always sum to 1 and are strictly positive;
//   2. rationed sales never exceed any MSP's bandwidth_cap_mhz;
//   3. per-MSP utilities are exactly (p_m − C_m)·sales_m;
//   4. with M = 1, shares/effective price/demands are *bitwise* the monopoly
//      `core::market` path (same formulas, same arithmetic), so plugging
//      the oligopoly evaluator into a single-seller market changes nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/market.hpp"
#include "core/multi_msp.hpp"
#include "util/rng.hpp"

namespace core = vtm::core;

namespace {

core::multi_msp_params draw_params(vtm::util::rng& gen, std::size_t msps) {
  core::multi_msp_params params;
  for (std::size_t m = 0; m < msps; ++m) {
    core::msp_profile msp;
    msp.unit_cost = gen.uniform(1.0, 10.0);
    msp.price_cap = msp.unit_cost + gen.uniform(5.0, 60.0);
    msp.bandwidth_cap_mhz = gen.uniform(0.5, 60.0);
    params.msps.push_back(msp);
  }
  const auto vmus = static_cast<std::size_t>(gen.uniform_int(1, 10));
  for (std::size_t n = 0; n < vmus; ++n)
    params.vmus.push_back({gen.uniform(50.0, 3000.0),
                           gen.uniform(50.0, 400.0)});
  params.share_sharpness = gen.uniform(0.05, 4.0);
  return params;
}

std::vector<double> draw_prices(vtm::util::rng& gen,
                                const core::multi_msp_params& params) {
  std::vector<double> prices;
  for (const auto& msp : params.msps)
    prices.push_back(gen.uniform(msp.unit_cost, msp.price_cap));
  return prices;
}

}  // namespace

TEST(multi_msp_property, shares_sum_to_one_and_stay_positive) {
  vtm::util::rng gen(20260729);
  for (int trial = 0; trial < 200; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(1, 6));
    auto params = draw_params(gen, msps);
    const core::multi_msp_market market(params);
    const auto prices = draw_prices(gen, params);
    const auto shares = market.shares(prices);
    ASSERT_EQ(shares.size(), msps);
    double total = 0.0;
    for (const double w : shares) {
      EXPECT_GT(w, 0.0);  // softmin never fully starves a seller
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(multi_msp_property, rationed_sales_never_exceed_any_cap) {
  vtm::util::rng gen(41);
  for (int trial = 0; trial < 200; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(1, 6));
    auto params = draw_params(gen, msps);
    const core::multi_msp_market market(params);
    const auto prices = draw_prices(gen, params);
    const auto sales = market.msp_sales(prices);
    ASSERT_EQ(sales.size(), msps);
    for (std::size_t m = 0; m < msps; ++m) {
      EXPECT_GE(sales[m], 0.0);
      EXPECT_LE(sales[m], params.msps[m].bandwidth_cap_mhz);
    }
    // Equilibrium prices keep the invariant too (they are just another
    // price vector as far as rationing is concerned).
    const auto eq = core::solve_price_competition(market);
    for (std::size_t m = 0; m < msps; ++m)
      EXPECT_LE(eq.sales[m], params.msps[m].bandwidth_cap_mhz);
  }
}

TEST(multi_msp_property, utilities_are_margin_times_sales) {
  vtm::util::rng gen(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(2, 5));
    auto params = draw_params(gen, msps);
    const core::multi_msp_market market(params);
    const auto prices = draw_prices(gen, params);
    const auto sales = market.msp_sales(prices);
    const auto utilities = market.msp_utilities(prices);
    for (std::size_t m = 0; m < msps; ++m)
      EXPECT_EQ(utilities[m],
                (prices[m] - params.msps[m].unit_cost) * sales[m]);
  }
}

// A tiny cap must bind exactly: the rationed seller sells its whole pool.
TEST(multi_msp_property, binding_cap_sells_exactly_the_pool) {
  core::multi_msp_params params;
  params.msps = {{5.0, 0.25, 50.0}, {5.0, 50.0, 50.0}};
  params.vmus = {{2000.0, 100.0}, {2000.0, 150.0}, {1500.0, 120.0}};
  const core::multi_msp_market market(params);
  const std::vector<double> prices{6.0, 6.0};
  const auto sales = market.msp_sales(prices);
  EXPECT_EQ(sales[0], 0.25);  // cap binds bit-exactly (min against the cap)
  EXPECT_LE(sales[1], 50.0);
}

// ---- M = 1 is bitwise the monopoly market ----------------------------------

TEST(multi_msp_property, single_msp_is_bitwise_the_monopoly_path) {
  vtm::util::rng gen(1234);
  for (int trial = 0; trial < 100; ++trial) {
    auto params = draw_params(gen, 1);
    const core::multi_msp_market oligo(params);

    core::market_params mono;
    mono.vmus = params.vmus;
    mono.link = params.link;
    mono.bandwidth_cap_mhz = vtm::util::megahertz{params.msps[0].bandwidth_cap_mhz};
    mono.unit_cost = params.msps[0].unit_cost;
    mono.price_cap = params.msps[0].price_cap;
    const core::migration_market market(mono);

    const double price =
        gen.uniform(params.msps[0].unit_cost, params.msps[0].price_cap);
    const std::vector<double> prices{price};

    // Degenerate softmin: exp(0)/exp(0) — exactly one, no rounding.
    const auto shares = oligo.shares(prices);
    EXPECT_EQ(shares, std::vector<double>{1.0});
    EXPECT_EQ(oligo.effective_price(prices), price);

    // Per-VMU demand is the identical expression (α/p − κ clamped at 0), so
    // the doubles match bit for bit.
    for (std::size_t n = 0; n < params.vmus.size(); ++n)
      EXPECT_EQ(oligo.vmu_demand(n, prices), market.best_response(n, price));
  }
}

// ---- Fast path vs reference oracle (DESIGN.md §12) -------------------------

// The O(log N) suffix-sum demand curve must be *bitwise* the O(N) descending
// reference walk — including exactly at activation thresholds, where the
// active set changes.
TEST(multi_msp_property, fast_demand_curve_is_bitwise_the_reference) {
  vtm::util::rng gen(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    auto params = draw_params(gen, 2);
    const core::multi_msp_market market(params);
    const double r = market.spectral_efficiency();
    double t_min = std::numeric_limits<double>::infinity();
    double t_max = 0.0;
    for (const auto& vmu : params.vmus) {
      const double threshold = vmu.alpha / (vmu.data_mb / r);
      t_min = std::min(t_min, threshold);
      t_max = std::max(t_max, threshold);
      // Exactly at a threshold the VMU is inactive (strict >): both paths
      // must agree on the boundary semantics too.
      EXPECT_EQ(market.total_demand(threshold),
                market.total_demand_reference(threshold));
    }
    for (int probe = 0; probe < 32; ++probe) {
      const double p_eff = gen.uniform(0.5 * t_min, 1.5 * t_max);
      EXPECT_EQ(market.total_demand(p_eff),
                market.total_demand_reference(p_eff));
    }
  }
}

// The cached-rivals best response must find a price whose profit matches the
// original full-renormalization grid + golden-section search.
TEST(multi_msp_property, fast_best_response_matches_the_reference_oracle) {
  vtm::util::rng gen(20260807);
  for (int trial = 0; trial < 60; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(2, 5));
    auto params = draw_params(gen, msps);
    const core::multi_msp_market market(params);
    const auto prices = draw_prices(gen, params);
    for (std::size_t m = 0; m < msps; ++m) {
      const auto fast = market.best_response_to(m, prices, 1e-9);
      const double slow = market.best_response_price_reference(m, prices);
      auto at_fast = std::vector<double>(prices);
      at_fast[m] = fast.price;
      auto at_slow = std::vector<double>(prices);
      at_slow[m] = slow;
      const double u_fast = market.msp_utilities(at_fast)[m];
      const double u_slow = market.msp_utilities(at_slow)[m];
      EXPECT_NEAR(u_fast, u_slow,
                  1e-6 * std::max(1.0, std::abs(u_slow)))
          << "m=" << m << " fast=" << fast.price << " slow=" << slow;
    }
  }
}

// A warm-started solve must land on the cold equilibrium (within tolerance),
// and the cold path itself must be deterministic bit for bit.
TEST(multi_msp_property, warm_start_reaches_the_cold_equilibrium) {
  vtm::util::rng gen(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(2, 4));
    auto params = draw_params(gen, msps);
    params.share_sharpness = gen.uniform(0.05, 1.0);
    const core::multi_msp_market market(params);

    const auto cold = core::solve_price_competition(market, 1e-7, 200);
    if (!cold.converged) continue;
    EXPECT_FALSE(cold.warm_started);
    const auto again = core::solve_price_competition(market, 1e-7, 200);
    EXPECT_EQ(cold.prices, again.prices);  // no hidden state, bitwise rerun

    std::vector<double> warm(cold.prices);
    for (double& p : warm) p *= gen.uniform(0.95, 1.05);
    core::price_competition_options options;
    options.tol = 1e-7;
    options.warm_start = warm;
    const auto warmed = core::solve_price_competition(market, options);
    EXPECT_TRUE(warmed.warm_started);
    ASSERT_TRUE(warmed.converged);
    for (std::size_t m = 0; m < msps; ++m)
      EXPECT_NEAR(warmed.prices[m], cold.prices[m], 1e-5);
  }
}

// Certificate soundness: converged means the measured defect is within tol,
// certified means the contraction ratio is < 1 with a finite error bound —
// and the claimed fixed point must sit on the *reference* best responses.
TEST(multi_msp_property, convergence_certificate_is_sound) {
  vtm::util::rng gen(20260809);
  int certified_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto msps = static_cast<std::size_t>(gen.uniform_int(2, 4));
    auto params = draw_params(gen, msps);
    params.share_sharpness = gen.uniform(0.05, 1.0);
    const core::multi_msp_market market(params);
    const auto eq = core::solve_price_competition(market, 1e-7, 200);
    if (!eq.converged) continue;
    EXPECT_LE(eq.residual, 1e-7);
    if (eq.certified) {
      ++certified_seen;
      EXPECT_LT(eq.contraction_ratio, 1.0);
      EXPECT_TRUE(std::isfinite(eq.error_bound));
      EXPECT_GE(eq.error_bound, 0.0);
    }
    for (std::size_t m = 0; m < msps; ++m) {
      const double br = market.best_response_price_reference(m, eq.prices);
      EXPECT_NEAR(br, eq.prices[m], 5e-6);
    }
  }
  EXPECT_GT(certified_seen, 10);  // the certificate actually fires
}

// ---- Edgeworth-cycle regression (DESIGN.md §12) ----------------------------

// Pinned sharp-λ + binding-cap duopoly where the pre-dampening pure
// Gauss–Seidel iteration (replicated here through the reference oracle)
// cycles forever. The dampened simultaneous solver must converge *and*
// certify the fixed point — and it must have engaged the θ-bisection to do
// so.
TEST(multi_msp_property, edgeworth_cycle_converges_certified_under_dampening) {
  core::multi_msp_params params;
  params.msps = {{11.491534, 2.545243, 61.491534},
                 {3.166662, 18.729938, 53.166662}};
  params.vmus = {{2454.443776, 340.280578},
                 {2502.560645, 305.724865},
                 {2804.299698, 173.238309},
                 {956.430486, 196.808302},
                 {951.991555, 383.538504}};
  params.share_sharpness = 41.3848;
  const core::multi_msp_market market(params);

  // Pre-PR solver: sequential undercutting with full steps. It chases the
  // Edgeworth cycle and never settles.
  std::vector<double> p;
  for (const auto& msp : params.msps)
    p.push_back(0.5 * (msp.unit_cost + msp.price_cap));
  bool gauss_seidel_converged = false;
  for (std::size_t sweep = 0; sweep < 150 && !gauss_seidel_converged;
       ++sweep) {
    double move = 0.0;
    for (std::size_t m = 0; m < p.size(); ++m) {
      const double br = market.best_response_price_reference(m, p);
      move = std::max(move, std::abs(br - p[m]));
      p[m] = br;
    }
    gauss_seidel_converged = move <= 1e-7;
  }
  EXPECT_FALSE(gauss_seidel_converged);

  const auto eq = core::solve_price_competition(market, 1e-7, 200);
  ASSERT_TRUE(eq.converged);
  EXPECT_TRUE(eq.certified);
  EXPECT_LT(eq.damping, 1.0);  // the θ-bisection engaged
  EXPECT_LE(eq.residual, 1e-7);
  for (std::size_t m = 0; m < eq.prices.size(); ++m)
    EXPECT_NEAR(market.best_response_price_reference(m, eq.prices),
                eq.prices[m], 5e-5);
}
