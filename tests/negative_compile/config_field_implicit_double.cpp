// Negative-compile proof: typed config fields reject raw doubles — the
// quantity constructor is explicit, so the writer must say what unit the
// number is in (util::meters{1000.0}). Must NOT compile.
#include "core/fleet_scenario.hpp"

int main() {
  vtm::core::fleet_config config;
  config.rsu_spacing_m = 1000.0;  // which unit? say util::meters{1000.0}
  return static_cast<int>(config.rsu_count);
}
