// Negative-compile proof: the operator tables are curated, not a general
// algebra — a speed times a bandwidth has no meaning in this codebase, so
// there is no product_result<mps_tag, megahertz_tag>. Must NOT compile.
#include "util/quantity.hpp"

int main() {
  const auto nonsense = vtm::util::mps{30.0} * vtm::util::megahertz{50.0};
  return nonsense > 0.0;
}
