// Negative-compile proof: ordering is defined per unit only (defaulted
// operator<=> on the same quantity type); comparing a distance against a
// duration is a category error. Must NOT compile.
#include "util/quantity.hpp"

int main() {
  return vtm::util::meters{500.0} < vtm::util::seconds{500.0};
}
