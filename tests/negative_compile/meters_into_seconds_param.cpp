// Negative-compile proof: a distance cannot be passed where a duration is
// expected. `sim::advance` takes util::seconds (or a raw double on the
// legacy overload); util::meters matches neither. Must NOT compile.
#include "sim/mobility.hpp"

int main() {
  vtm::sim::vehicle_state v{0.0, 30.0};
  vtm::sim::advance(v, vtm::util::meters{1.0});  // meters is not a duration
  return 0;
}
