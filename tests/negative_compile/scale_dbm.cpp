// Negative-compile proof: scalar scaling is a linear-unit operation;
// doubling a dBm level is not doubling a power (that is +3 dB). Log units
// only compose through the dbm/db table. Must NOT compile.
#include "util/quantity.hpp"

int main() {
  const auto twice = 2.0 * vtm::util::dbm{40.0};
  return twice.value() > 0.0;
}
