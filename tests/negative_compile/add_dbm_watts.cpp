// Negative-compile proof: a log-scale power (dBm) cannot be added to a
// linear power (watts) — the sum is dimensionally meaningless. Convert with
// util::to_watts / util::to_dbm first. Must NOT compile.
#include "util/units.hpp"

int main() {
  const vtm::util::dbm tx{40.0};
  const vtm::util::watts noise{1.0e-12};
  return (tx + noise).value() > 0.0;  // no operator+(dbm, watts)
}
