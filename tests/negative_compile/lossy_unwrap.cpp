// Negative-compile proof: a quantity does not decay back to double — the
// boundary to raw-double code (records, tensors) must be an explicit
// .value() unwrap. Must NOT compile.
#include "core/scenario.hpp"

int main() {
  const vtm::core::scenario_config config;
  const double radius = config.coverage_radius_m;  // needs .value()
  return radius > 0.0;
}
