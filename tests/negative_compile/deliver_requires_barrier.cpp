// vtm-negative-compile: requires(thread-safety)
//
// Negative-compile check for the barrier capability (DESIGN.md §13).
//
// `shard_mailbox::deliver`/`pending` may only run at a window barrier; both
// require a `util::barrier_phase` capability that the caller must hold.
// This file calls them *without* acquiring the capability — exactly what a
// mid-phase delivery inside a shard lane would look like — and therefore
// MUST FAIL to compile under Clang with `-Wthread-safety
// -Werror=thread-safety`. CMake registers it as a ctest entry with
// WILL_FAIL when the thread-safety gate is on (see VTM_THREAD_SAFETY); the
// clang CI job runs it on every push. If this file ever compiles under the
// gate, the barrier protocol has lost its compile-time enforcement.
#include <cstddef>

#include "sim/mailbox.hpp"
#include "util/sync.hpp"

int main() {
  vtm::sim::shard_mailbox<int> mailbox(2);
  vtm::util::barrier_phase barrier;
  mailbox.post(0, 1, 42);

  // error: calling 'pending' requires holding 'barrier'
  std::size_t n = mailbox.pending(1, barrier);
  // error: calling 'deliver' requires holding 'barrier'
  n += mailbox.deliver(1, [](int) {}, barrier);
  return static_cast<int>(n);
}
