// vtm-negative-compile: requires(thread-safety)
//
// Negative-compile check for the metrics barrier protocol (DESIGN.md §16).
//
// `metrics_registry::merge` folds the per-lane delta buffers into the global
// totals and may therefore only run at a window barrier, while every lane is
// parked — it requires the `util::barrier_phase` capability. This file calls
// it *without* acquiring the capability — what a mid-phase merge racing the
// lane writers would look like — and MUST FAIL to compile under Clang with
// `-Wthread-safety -Werror=thread-safety` (see deliver_requires_barrier.cpp
// for the harness contract).
#include "util/metrics.hpp"
#include "util/sync.hpp"

int main() {
  vtm::util::metrics_registry registry;
  const auto hits = registry.counter("hits");
  registry.bind_lanes(2);
  registry.lane(0).add(hits);
  vtm::util::barrier_phase barrier;

  // error: calling 'merge' requires holding 'barrier'
  registry.merge(barrier);
  return static_cast<int>(registry.counter_value(hits));
}
