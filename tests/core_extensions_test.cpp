// Tests for the future-work extensions: multi-MSP price competition,
// pluggable immersion metrics, and the robustness/checkpoint evaluation
// harness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluation.hpp"
#include "core/immersion_models.hpp"
#include "core/multi_msp.hpp"
#include "util/contracts.hpp"

namespace core = vtm::core;

namespace {

core::multi_msp_params duopoly(double sharpness = 0.25) {
  core::multi_msp_params params;
  params.msps = {{5.0, 50.0, 50.0}, {5.0, 50.0, 50.0}};
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  params.share_sharpness = sharpness;
  return params;
}

core::market_params monopoly_params() {
  core::market_params params;
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  return params;
}

}  // namespace

// ---- multi-MSP market mechanics -----------------------------------------------------

TEST(multi_msp, validates_parameters) {
  auto no_msps = duopoly();
  no_msps.msps.clear();
  EXPECT_THROW((void)core::multi_msp_market{no_msps}, vtm::util::contract_error);
  auto bad_lambda = duopoly();
  bad_lambda.share_sharpness = 0.0;
  EXPECT_THROW((void)core::multi_msp_market{bad_lambda},
               vtm::util::contract_error);
}

TEST(multi_msp, shares_sum_to_one_and_favor_cheaper) {
  const core::multi_msp_market market(duopoly());
  const std::vector<double> prices{20.0, 30.0};
  const auto shares = market.shares(prices);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_NEAR(shares[0] + shares[1], 1.0, 1e-12);
  EXPECT_GT(shares[0], shares[1]);  // cheaper MSP gets more
}

TEST(multi_msp, equal_prices_split_evenly) {
  const core::multi_msp_market market(duopoly());
  const std::vector<double> prices{25.0, 25.0};
  const auto shares = market.shares(prices);
  EXPECT_NEAR(shares[0], 0.5, 1e-12);
  EXPECT_NEAR(shares[1], 0.5, 1e-12);
}

TEST(multi_msp, sharper_lambda_concentrates_demand) {
  const core::multi_msp_market soft(duopoly(0.1));
  const core::multi_msp_market sharp(duopoly(2.0));
  const std::vector<double> prices{20.0, 30.0};
  EXPECT_GT(sharp.shares(prices)[0], soft.shares(prices)[0]);
}

TEST(multi_msp, effective_price_between_min_and_max) {
  const core::multi_msp_market market(duopoly());
  const std::vector<double> prices{20.0, 30.0};
  const double p_eff = market.effective_price(prices);
  EXPECT_GT(p_eff, 20.0);
  EXPECT_LT(p_eff, 30.0);
}

TEST(multi_msp, vmu_demand_matches_eq8_at_effective_price) {
  const core::multi_msp_market market(duopoly());
  const std::vector<double> prices{24.0, 26.0};
  const double p_eff = market.effective_price(prices);
  const double kappa = 200.0 / market.spectral_efficiency();
  EXPECT_NEAR(market.vmu_demand(0, prices),
              std::max(0.0, 500.0 / p_eff - kappa), 1e-9);
}

TEST(multi_msp, sales_respect_per_msp_capacity) {
  auto params = duopoly();
  params.msps[0].bandwidth_cap_mhz = 3.0;  // tiny seller
  const core::multi_msp_market market(params);
  const std::vector<double> prices{10.0, 10.0};
  const auto sales = market.msp_sales(prices);
  EXPECT_LE(sales[0], 3.0 + 1e-12);
}

// ---- price competition equilibrium ---------------------------------------------------

TEST(multi_msp, single_msp_recovers_monopoly_price) {
  core::multi_msp_params params;
  params.msps = {{5.0, 50.0, 50.0}};
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  const auto competitive = core::solve_price_competition(
      core::multi_msp_market(params));
  const auto monopoly =
      core::solve_equilibrium(core::migration_market(monopoly_params()));
  ASSERT_TRUE(competitive.converged);
  EXPECT_NEAR(competitive.prices[0], monopoly.price, 0.05);
  EXPECT_NEAR(competitive.utilities[0], monopoly.leader_utility, 1.0);
}

TEST(multi_msp, competition_lowers_prices_below_monopoly) {
  const auto duo = core::solve_price_competition(
      core::multi_msp_market(duopoly(0.25)));
  const auto monopoly =
      core::solve_equilibrium(core::migration_market(monopoly_params()));
  ASSERT_TRUE(duo.converged);
  EXPECT_LT(duo.effective_price, monopoly.price);
  // Each duopolist earns less than the monopolist.
  EXPECT_LT(duo.utilities[0], monopoly.leader_utility);
  EXPECT_LT(duo.utilities[1], monopoly.leader_utility);
}

TEST(multi_msp, symmetric_duopoly_symmetric_equilibrium) {
  const auto eq = core::solve_price_competition(
      core::multi_msp_market(duopoly()));
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(eq.prices[0], eq.prices[1], 1e-4);
  EXPECT_NEAR(eq.utilities[0], eq.utilities[1], 1e-2);
}

TEST(multi_msp, sharper_competition_approaches_cost) {
  // As λ grows the softmin approaches winner-take-all Bertrand competition,
  // driving the equilibrium price toward cost. Capacities are raised so the
  // capacity-clearing floor (see the next test) never masks the effect.
  double previous_price = 1e18;
  for (double lambda : {0.1, 0.5, 2.0}) {
    auto params = duopoly(lambda);
    for (auto& msp : params.msps) msp.bandwidth_cap_mhz = 500.0;
    const auto eq =
        core::solve_price_competition(core::multi_msp_market(params));
    ASSERT_TRUE(eq.converged) << "lambda " << lambda;
    EXPECT_LT(eq.effective_price, previous_price) << "lambda " << lambda;
    previous_price = eq.effective_price;
  }
  EXPECT_LT(previous_price, 12.0);  // far below the 25.3 monopoly price
}

TEST(multi_msp, capacity_floor_caps_price_competition) {
  // With per-MSP caps of 50 MHz, fierce competition cannot push the price
  // below the capacity-clearing level where each seller's grant is full:
  // 0.5·(Σα/p − Σκ) = 50. Sharpening λ past that point changes nothing.
  const auto mild = core::solve_price_competition(
      core::multi_msp_market(duopoly(0.5)));
  const auto fierce = core::solve_price_competition(
      core::multi_msp_market(duopoly(2.0)));
  ASSERT_TRUE(mild.converged && fierce.converged);
  EXPECT_NEAR(mild.effective_price, fierce.effective_price, 1e-3);
  // Both MSPs sell their full capacity at that price.
  EXPECT_NEAR(mild.sales[0], 50.0, 0.1);
  EXPECT_NEAR(mild.sales[1], 50.0, 0.1);
}

TEST(multi_msp, more_sellers_lower_prices) {
  auto two = duopoly(0.5);
  auto four = duopoly(0.5);
  four.msps.assign(4, {5.0, 50.0, 50.0});
  const auto eq2 =
      core::solve_price_competition(core::multi_msp_market(two));
  const auto eq4 =
      core::solve_price_competition(core::multi_msp_market(four));
  ASSERT_TRUE(eq2.converged && eq4.converged);
  EXPECT_LT(eq4.effective_price, eq2.effective_price);
}

TEST(multi_msp, vmus_gain_from_competition) {
  const auto duo = core::solve_price_competition(
      core::multi_msp_market(duopoly(0.5)));
  const auto monopoly =
      core::solve_equilibrium(core::migration_market(monopoly_params()));
  EXPECT_GT(duo.total_vmu_utility, monopoly.total_vmu_utility);
}

TEST(multi_msp, asymmetric_costs_cheaper_seller_wins_share) {
  auto params = duopoly(0.5);
  params.msps[0].unit_cost = 4.0;
  params.msps[1].unit_cost = 8.0;
  const core::multi_msp_market market(params);
  const auto eq = core::solve_price_competition(market);
  ASSERT_TRUE(eq.converged);
  EXPECT_LT(eq.prices[0], eq.prices[1]);  // low-cost seller undercuts
  EXPECT_GT(eq.sales[0], eq.sales[1]);
}

// ---- immersion models -----------------------------------------------------------------

TEST(immersion_models, log_model_matches_paper_formula) {
  const core::log_immersion model;
  EXPECT_NEAR(model.gain(500.0, 0.5), 500.0 * std::log(3.0), 1e-9);
  EXPECT_STREQ(model.name(), "log");
}

TEST(immersion_models, all_models_reward_freshness) {
  const core::log_immersion log_model;
  const core::power_immersion power_model(0.5);
  const core::saturating_immersion saturating_model(0.5);
  for (const core::immersion_model* model :
       {static_cast<const core::immersion_model*>(&log_model),
        static_cast<const core::immersion_model*>(&power_model),
        static_cast<const core::immersion_model*>(&saturating_model)}) {
    EXPECT_GT(model->gain(500.0, 0.1), model->gain(500.0, 1.0))
        << model->name();
    EXPECT_GT(model->gain(1000.0, 0.5), model->gain(500.0, 0.5))
        << model->name();
  }
}

TEST(immersion_models, saturating_model_bounded_by_alpha) {
  const core::saturating_immersion model(0.5);
  EXPECT_LT(model.gain(500.0, 1e-6), 500.0 + 1e-9);
}

TEST(immersion_models, parameter_validation) {
  EXPECT_THROW((void)core::power_immersion(1.5), vtm::util::contract_error);
  EXPECT_THROW((void)core::saturating_immersion(0.0), vtm::util::contract_error);
  const core::log_immersion model;
  EXPECT_THROW((void)model.gain(0.0, 1.0), vtm::util::contract_error);
  EXPECT_THROW((void)model.gain(1.0, 0.0), vtm::util::contract_error);
}

TEST(generalized_market, log_model_reproduces_closed_form_equilibrium) {
  const core::log_immersion model;
  const core::generalized_market generalized(monopoly_params(), model);
  const auto numeric = generalized.solve();
  const auto closed =
      core::solve_equilibrium(core::migration_market(monopoly_params()));
  EXPECT_NEAR(numeric.price, closed.price, 0.01);
  EXPECT_NEAR(numeric.leader_utility, closed.leader_utility, 0.5);
  EXPECT_NEAR(numeric.total_demand, closed.total_demand, 0.05);
}

TEST(generalized_market, best_response_is_utility_maximizing) {
  const core::power_immersion model(0.5);
  const core::generalized_market market(monopoly_params(), model);
  const double price = 25.0;
  for (std::size_t n = 0; n < market.vmu_count(); ++n) {
    const double best = market.best_response(n, price);
    const double at_best = market.vmu_utility(n, best, price);
    for (double b : {best * 0.5, best * 0.9, best * 1.1, best * 1.5}) {
      if (b <= 0.0 || b > market.params().bandwidth_cap_mhz.value()) continue;
      EXPECT_GE(at_best + 1e-6, market.vmu_utility(n, b, price));
    }
  }
}

TEST(generalized_market, models_rank_demand_consistently) {
  // At the same price, a heavier-tailed immersion metric buys more
  // bandwidth. Verify each model produces positive, capacity-respecting
  // demand and the leader solve stays within the box.
  const core::log_immersion log_model;
  const core::power_immersion power_model(0.5);
  const core::saturating_immersion saturating_model(2.0);
  for (const core::immersion_model* model :
       {static_cast<const core::immersion_model*>(&log_model),
        static_cast<const core::immersion_model*>(&power_model),
        static_cast<const core::immersion_model*>(&saturating_model)}) {
    const core::generalized_market market(monopoly_params(), *model);
    const auto solution = market.solve(128);
    EXPECT_GE(solution.price, 5.0) << model->name();
    EXPECT_LE(solution.price, 50.0) << model->name();
    EXPECT_GT(solution.total_demand, 0.0) << model->name();
    EXPECT_LE(solution.total_demand, 50.0 + 1e-9) << model->name();
    EXPECT_GT(solution.leader_utility, 0.0) << model->name();
  }
}

TEST(generalized_market, rationing_applies) {
  const core::log_immersion model;
  auto params = monopoly_params();
  params.bandwidth_cap_mhz = vtm::util::megahertz{5.0};
  const core::generalized_market market(params, model);
  const auto demands = market.demands(10.0);
  double total = 0.0;
  for (double b : demands) total += b;
  EXPECT_LE(total, 5.0 + 1e-9);
}

// ---- robustness / checkpoint harness ----------------------------------------------------

namespace {

core::mechanism_config tiny_config() {
  core::mechanism_config config;
  config.trainer.episodes = 40;
  config.ppo.learning_rate = 3e-4;
  return config;
}

}  // namespace

TEST(evaluation, robustness_across_seeds) {
  const auto report =
      core::evaluate_robustness(monopoly_params(), tiny_config(), 3);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_GT(report.mean_optimality, 0.9);
  EXPECT_GT(report.min_optimality, 0.8);
  EXPECT_GE(report.std_optimality, 0.0);
  for (const auto& outcome : report.outcomes) {
    EXPECT_LE(outcome.convergence_episode, 40u);
    EXPECT_NE(outcome.seed, 0u);
  }
  // Distinct seeds must actually differ.
  EXPECT_NE(report.outcomes[0].seed, report.outcomes[1].seed);
}

TEST(evaluation, checkpoint_roundtrip_preserves_policy) {
  const auto trained =
      core::train_with_checkpoint(monopoly_params(), tiny_config());
  EXPECT_FALSE(trained.checkpoint.empty());
  EXPECT_GT(trained.result.optimality(), 0.9);

  const double replayed = core::evaluate_checkpoint(
      monopoly_params(), tiny_config(), trained.checkpoint);
  // Deterministic evaluation of the loaded policy reproduces the trained
  // policy's utility up to the random warm-up history of the first L rounds
  // (the fresh environment's RNG is at a different point than the trained
  // one's after E episodes).
  EXPECT_NEAR(replayed, trained.result.learned_utility,
              1e-3 * std::abs(trained.result.learned_utility));
}

TEST(evaluation, checkpoint_transfers_to_similar_market) {
  // A policy trained at C=5 still prices sensibly at C=6 (zero-shot).
  const auto trained =
      core::train_with_checkpoint(monopoly_params(), tiny_config());
  auto shifted = monopoly_params();
  shifted.unit_cost = 6.0;
  const double transferred =
      core::evaluate_checkpoint(shifted, tiny_config(), trained.checkpoint);
  const auto oracle =
      core::solve_equilibrium(core::migration_market(shifted));
  EXPECT_GT(transferred, 0.8 * oracle.leader_utility);
}

TEST(evaluation, checkpoint_rejects_architecture_mismatch) {
  const auto trained =
      core::train_with_checkpoint(monopoly_params(), tiny_config());
  auto bigger = tiny_config();
  bigger.hidden = {128, 128};
  EXPECT_THROW((void)core::evaluate_checkpoint(monopoly_params(), bigger,
                                         trained.checkpoint),
               std::runtime_error);
}
