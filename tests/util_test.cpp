// Unit tests for vtm::util — contracts, units, RNG, statistics, CSV, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace vu = vtm::util;

// ---- contracts -------------------------------------------------------------

TEST(contracts, expects_throws_on_violation) {
  EXPECT_THROW(VTM_EXPECTS(1 == 2), vu::contract_error);
}

TEST(contracts, expects_passes_on_true) { EXPECT_NO_THROW(VTM_EXPECTS(1 == 1)); }

TEST(contracts, message_contains_expression_and_location) {
  try {
    VTM_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const vu::contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(contracts, ensures_and_assert_throw) {
  EXPECT_THROW(VTM_ENSURES(false), vu::contract_error);
  EXPECT_THROW(VTM_ASSERT(false), vu::contract_error);
}

// ---- units ----------------------------------------------------------------

TEST(units, db_to_linear_known_values) {
  EXPECT_DOUBLE_EQ(vu::db_to_linear(0.0), 1.0);
  EXPECT_DOUBLE_EQ(vu::db_to_linear(10.0), 10.0);
  EXPECT_DOUBLE_EQ(vu::db_to_linear(20.0), 100.0);
  EXPECT_NEAR(vu::db_to_linear(-20.0), 0.01, 1e-15);
}

TEST(units, dbm_to_watt_known_values) {
  EXPECT_NEAR(vu::dbm_to_watt(0.0), 1e-3, 1e-18);
  EXPECT_NEAR(vu::dbm_to_watt(30.0), 1.0, 1e-12);
  EXPECT_NEAR(vu::dbm_to_watt(40.0), 10.0, 1e-12);    // paper's ρ
  EXPECT_NEAR(vu::dbm_to_watt(-150.0), 1e-18, 1e-30); // paper's N0
}

TEST(units, linear_to_db_requires_positive) {
  EXPECT_THROW((void)vu::linear_to_db(0.0), vu::contract_error);
  EXPECT_THROW((void)vu::linear_to_db(-1.0), vu::contract_error);
}

TEST(units, watt_to_dbm_requires_positive) {
  EXPECT_THROW((void)vu::watt_to_dbm(0.0), vu::contract_error);
}

class units_roundtrip : public ::testing::TestWithParam<double> {};

TEST_P(units_roundtrip, db_roundtrip) {
  const double db = GetParam();
  EXPECT_NEAR(vu::linear_to_db(vu::db_to_linear(db)), db, 1e-9);
}

TEST_P(units_roundtrip, dbm_roundtrip) {
  const double dbm = GetParam();
  EXPECT_NEAR(vu::watt_to_dbm(vu::dbm_to_watt(dbm)), dbm, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(sweep, units_roundtrip,
                         ::testing::Values(-150.0, -60.0, -20.0, -3.0, 0.0,
                                           3.0, 10.0, 40.0, 90.0));

TEST(units, data_and_bandwidth_conversions) {
  EXPECT_DOUBLE_EQ(vu::megabytes_to_bits(1.0), 8.0e6);
  EXPECT_DOUBLE_EQ(vu::megabytes_to_bits(100.0), 8.0e8);
  EXPECT_DOUBLE_EQ(vu::mhz_to_hz(50.0), 5.0e7);
}

// ---- rng --------------------------------------------------------------------

TEST(rng, deterministic_given_seed) {
  vu::rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(rng, different_seeds_differ) {
  vu::rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 2);
}

TEST(rng, uniform_in_unit_interval) {
  vu::rng gen(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(rng, uniform_range_respected) {
  vu::rng gen(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = gen.uniform(5.0, 50.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 50.0);
  }
}

TEST(rng, uniform_rejects_inverted_range) {
  vu::rng gen(7);
  EXPECT_THROW((void)gen.uniform(2.0, 1.0), vu::contract_error);
}

TEST(rng, uniform_mean_near_center) {
  vu::rng gen(11);
  vu::running_stats acc;
  for (int i = 0; i < 100000; ++i) acc.push(gen.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.01);
}

TEST(rng, uniform_int_inclusive_bounds) {
  vu::rng gen(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = gen.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(rng, normal_moments) {
  vu::rng gen(13);
  vu::running_stats acc;
  for (int i = 0; i < 200000; ++i) acc.push(gen.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(rng, normal_scaled) {
  vu::rng gen(17);
  vu::running_stats acc;
  for (int i = 0; i < 100000; ++i) acc.push(gen.normal(3.0, 2.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(rng, normal_rejects_negative_stddev) {
  vu::rng gen(1);
  EXPECT_THROW((void)gen.normal(0.0, -1.0), vu::contract_error);
}

TEST(rng, bernoulli_frequency) {
  vu::rng gen(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += gen.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(rng, bernoulli_bounds) {
  vu::rng gen(1);
  EXPECT_THROW((void)gen.bernoulli(-0.1), vu::contract_error);
  EXPECT_THROW((void)gen.bernoulli(1.1), vu::contract_error);
}

TEST(rng, exponential_mean) {
  vu::rng gen(23);
  vu::running_stats acc;
  for (int i = 0; i < 100000; ++i) acc.push(gen.exponential(2.0));
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(rng, permutation_is_valid) {
  vu::rng gen(29);
  const auto perm = gen.permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<bool> seen(100, false);
  for (auto i : perm) {
    ASSERT_LT(i, 100u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(rng, split_streams_are_independent) {
  vu::rng parent(31);
  vu::rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent.next() == child.next());
  EXPECT_LT(equal, 2);
}

TEST(rng, splitmix64_changes_state) {
  std::uint64_t s = 0;
  const auto a = vu::splitmix64(s);
  const auto b = vu::splitmix64(s);
  EXPECT_NE(a, b);
}

// ---- stats ------------------------------------------------------------------

TEST(stats, welford_matches_direct_computation) {
  vu::running_stats acc;
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) acc.push(x);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_DOUBLE_EQ(acc.sum(), 31.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 6.2);
  // Unbiased variance computed by hand: Σ(x−m)² / 4
  double var = 0.0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  var /= 4.0;
  EXPECT_NEAR(acc.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 16.0);
}

TEST(stats, variance_zero_for_single_observation) {
  vu::running_stats acc;
  acc.push(42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(stats, merge_equals_sequential) {
  vu::rng gen(3);
  vu::running_stats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = gen.normal();
    whole.push(x);
    (i < 400 ? left : right).push(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(stats, merge_with_empty_is_identity) {
  vu::running_stats a, b;
  a.push(1.0);
  a.push(3.0);
  const double mean_before = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(stats, mean_and_stddev_free_functions) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(vu::mean(xs), 4.0);
  EXPECT_NEAR(vu::stddev(xs), 2.0, 1e-12);
  EXPECT_THROW((void)vu::mean(std::span<const double>{}), vu::contract_error);
}

TEST(stats, percentile_interpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(vu::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(vu::percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(vu::percentile(xs, 50.0), 25.0);
}

TEST(stats, ols_slope_recovers_line) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  EXPECT_NEAR(vu::ols_slope(x, y), 3.0, 1e-12);
}

TEST(stats, ols_slope_rejects_constant_x) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW((void)vu::ols_slope(x, y), vu::contract_error);
}

TEST(stats, moving_average_window) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ma = vu::moving_average(xs, 2);
  ASSERT_EQ(ma.size(), xs.size());
  EXPECT_DOUBLE_EQ(ma[0], 1.0);
  EXPECT_DOUBLE_EQ(ma[1], 1.5);
  EXPECT_DOUBLE_EQ(ma[4], 4.5);
}

TEST(stats, moving_average_window_one_is_identity) {
  const std::vector<double> xs{3.0, 1.0, 4.0};
  EXPECT_EQ(vu::moving_average(xs, 1), xs);
}

// ---- csv --------------------------------------------------------------------

TEST(csv, header_and_rows) {
  std::ostringstream out;
  vu::csv_writer csv(out, {"a", "b"});
  csv.row({1.0, 2.5});
  csv.row({3.0, 4.0});
  EXPECT_EQ(out.str(), "a,b\n1,2.5\n3,4\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(csv, arity_enforced) {
  std::ostringstream out;
  vu::csv_writer csv(out, {"a", "b"});
  EXPECT_THROW((void)csv.row({1.0}), vu::contract_error);
}

TEST(csv, escaping_rfc4180) {
  EXPECT_EQ(vu::csv_writer::escape("plain"), "plain");
  EXPECT_EQ(vu::csv_writer::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(vu::csv_writer::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(csv, format_number_compact) {
  EXPECT_EQ(vu::format_number(1.0), "1");
  EXPECT_EQ(vu::format_number(0.5), "0.5");
  EXPECT_EQ(vu::format_number(1e100), "1e+100");
  EXPECT_EQ(vu::format_number(std::nan("")), "nan");
}

// ---- table / chart -----------------------------------------------------------

TEST(table, renders_aligned_grid) {
  vu::ascii_table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"long-name", "2"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("| name"), std::string::npos);
  EXPECT_NE(rendered.find("| long-name"), std::string::npos);
  EXPECT_NE(rendered.find("+--"), std::string::npos);
}

TEST(table, arity_enforced) {
  vu::ascii_table table({"a"});
  EXPECT_THROW((void)table.add_row({"1", "2"}), vu::contract_error);
}

TEST(chart, renders_series_and_legend) {
  vu::ascii_chart chart(40, 8);
  chart.set_title("demo");
  chart.add_series({"up", {1, 2, 3, 4, 5}, '*'});
  chart.add_series({"down", {5, 4, 3, 2, 1}, 'o'});
  const std::string rendered = chart.render();
  EXPECT_NE(rendered.find("demo"), std::string::npos);
  EXPECT_NE(rendered.find("* = up"), std::string::npos);
  EXPECT_NE(rendered.find("o = down"), std::string::npos);
}

TEST(chart, handles_empty_and_constant) {
  vu::ascii_chart empty(20, 4);
  EXPECT_NE(empty.render().find("(no data)"), std::string::npos);
  vu::ascii_chart flat(20, 4);
  flat.add_series({"c", {2.0, 2.0, 2.0}, '*'});
  EXPECT_FALSE(flat.render().empty());
}

// ---- log ---------------------------------------------------------------------

TEST(log, default_logger_discards) {
  const vu::logger quiet;
  EXPECT_FALSE(quiet.enabled(vu::log_level::error));
  EXPECT_NO_THROW(quiet.error("nobody hears this"));
}

TEST(log, stream_logger_formats_and_filters) {
  std::ostringstream out;
  const auto log =
      vu::logger::to_stream(out, "market", vu::log_level::info);
  log.debug("hidden");
  log.info("visible");
  EXPECT_EQ(out.str(), "info [market] visible\n");
}

TEST(log, level_names) {
  EXPECT_STREQ(vu::to_string(vu::log_level::debug), "debug");
  EXPECT_STREQ(vu::to_string(vu::log_level::off), "off");
}
