// Property-based tests: randomized sweeps that pin cross-cutting invariants
// which the unit suites only exercise pointwise.
//
//  * random markets: closed-form oracle == numeric solve, certificate holds,
//    comparative statics keep their signs;
//  * random autograd graphs: analytic gradients == finite differences;
//  * RNG statistics: chi-square uniformity, lag-1 autocorrelation;
//  * OFDMA pool fuzz: orthogonality invariant under arbitrary churn;
//  * quantity conversions: log/linear round-trips to 1 ulp, monotonicity,
//    and typed overloads bitwise-equal to the raw-double helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/equilibrium.hpp"
#include "nn/autograd.hpp"
#include "nn/gradcheck.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"
#include "wireless/link.hpp"
#include "wireless/ofdma.hpp"

namespace core = vtm::core;
namespace nn = vtm::nn;

// ---- randomized market sweep -------------------------------------------------------

namespace {

core::market_params random_market(vtm::util::rng& gen) {
  core::market_params params;
  const auto n_vmus = static_cast<std::size_t>(gen.uniform_int(1, 6));
  for (std::size_t n = 0; n < n_vmus; ++n) {
    params.vmus.push_back({gen.uniform(500.0, 2000.0),     // α ∈ [5,20]·100
                           gen.uniform(100.0, 300.0)});    // D ∈ [100,300] MB
  }
  params.bandwidth_cap_mhz = vtm::util::megahertz{gen.uniform(20.0, 80.0)};
  params.unit_cost = gen.uniform(3.0, 10.0);
  params.price_cap = gen.uniform(40.0, 80.0);
  return params;
}

}  // namespace

class random_market_sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(random_market_sweep, closed_form_matches_numeric) {
  vtm::util::rng gen(GetParam());
  const core::migration_market market(random_market(gen));
  const auto closed = core::solve_equilibrium(market);
  const auto numeric = core::solve_equilibrium_numeric(market);
  EXPECT_NEAR(closed.leader_utility, numeric.leader_utility,
              1e-4 * std::max(1.0, std::abs(numeric.leader_utility)))
      << "price closed " << closed.price << " numeric " << numeric.price;
}

TEST_P(random_market_sweep, equilibrium_certificate_holds) {
  vtm::util::rng gen(GetParam());
  const core::migration_market market(random_market(gen));
  const auto eq = core::solve_equilibrium(market);
  const auto check = core::verify_equilibrium(market, eq, 256);
  EXPECT_TRUE(check.holds(1e-3 * std::max(1.0, eq.leader_utility)))
      << "leader gain " << check.max_leader_gain << ", follower gain "
      << check.max_follower_gain << ", regime " << to_string(eq.regime);
}

TEST_P(random_market_sweep, capacity_and_box_respected) {
  vtm::util::rng gen(GetParam());
  const auto params = random_market(gen);
  const core::migration_market market(params);
  const auto eq = core::solve_equilibrium(market);
  EXPECT_GE(eq.price, params.unit_cost - 1e-9);
  EXPECT_LE(eq.price, params.price_cap + 1e-9);
  EXPECT_LE(eq.total_demand, params.bandwidth_cap_mhz.value() + 1e-6);
  EXPECT_GE(eq.leader_utility, -1e-9);  // selling at/above cost
  for (double b : eq.demands) EXPECT_GE(b, 0.0);
}

TEST_P(random_market_sweep, raising_cost_never_lowers_price) {
  vtm::util::rng gen(GetParam());
  auto params = random_market(gen);
  const auto base =
      core::solve_equilibrium(core::migration_market(params));
  auto costlier = params;
  costlier.unit_cost = std::min(params.unit_cost * 1.5, params.price_cap);
  const auto shifted =
      core::solve_equilibrium(core::migration_market(costlier));
  EXPECT_GE(shifted.price, base.price - 1e-6);
  EXPECT_LE(shifted.leader_utility, base.leader_utility + 1e-6);
}

TEST_P(random_market_sweep, adding_a_vmu_never_hurts_the_msp) {
  vtm::util::rng gen(GetParam());
  auto params = random_market(gen);
  const auto base =
      core::solve_equilibrium(core::migration_market(params));
  auto larger = params;
  larger.vmus.push_back({gen.uniform(500.0, 2000.0),
                         gen.uniform(100.0, 300.0)});
  const auto grown =
      core::solve_equilibrium(core::migration_market(larger));
  // The MSP can always ignore the newcomer's demand, so its utility is
  // weakly monotone in the population.
  EXPECT_GE(grown.leader_utility, base.leader_utility - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(seeds, random_market_sweep,
                         ::testing::Range<std::uint64_t>(1, 25));

// ---- autograd stress: random DAGs ---------------------------------------------------

namespace {

/// Build a random scalar expression over two parameter matrices using a
/// pool of smooth ops (kinked ops excluded: finite differences straddle
/// their non-differentiable points).
nn::variable random_graph(const nn::variable& a, const nn::variable& b,
                          std::uint64_t seed) {
  vtm::util::rng gen(seed);
  std::vector<nn::variable> pool{a, b, a + b, a * b};
  for (int step = 0; step < 6; ++step) {
    const auto pick = [&]() -> const nn::variable& {
      return pool[static_cast<std::size_t>(gen.uniform_int(
          0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    const auto op = gen.uniform_int(0, 5);
    switch (op) {
      case 0:
        pool.push_back(nn::tanh(pick()));
        break;
      case 1:
        pool.push_back(nn::sigmoid(pick()));
        break;
      case 2:
        pool.push_back(pick() * gen.uniform(-2.0, 2.0));
        break;
      case 3:
        pool.push_back(pick() + pick());
        break;
      case 4:
        pool.push_back(pick() * pick());
        break;
      default:
        pool.push_back(nn::square(pick()));
        break;
    }
  }
  return nn::mean(pool.back() + pool[pool.size() / 2]);
}

}  // namespace

class autograd_stress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(autograd_stress, random_graph_matches_finite_differences) {
  vtm::util::rng gen(GetParam() * 7919);
  nn::tensor ta({2, 3});
  nn::tensor tb({2, 3});
  for (auto& x : ta.flat()) x = gen.uniform(-0.8, 0.8);
  for (auto& x : tb.flat()) x = gen.uniform(-0.8, 0.8);
  auto a = nn::variable::parameter(ta);
  auto b = nn::variable::parameter(tb);
  const auto result = nn::check_gradients(
      [&] { return random_graph(a, b, GetParam()); }, {a, b}, 1e-6, 5e-4);
  EXPECT_TRUE(result.passed) << result.detail << " (rel "
                             << result.max_rel_err << ")";
}

INSTANTIATE_TEST_SUITE_P(seeds, autograd_stress,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- RNG statistics -------------------------------------------------------------------

TEST(rng_statistics, chi_square_uniformity) {
  vtm::util::rng gen(20230910);
  constexpr int bins = 64;
  constexpr int draws = 64 * 2000;
  std::vector<int> counts(bins, 0);
  for (int i = 0; i < draws; ++i) {
    const auto bin = static_cast<int>(gen.uniform() * bins);
    ++counts[std::min(bin, bins - 1)];
  }
  const double expected = static_cast<double>(draws) / bins;
  double chi_square = 0.0;
  for (int c : counts)
    chi_square += (c - expected) * (c - expected) / expected;
  // 63 degrees of freedom: mean 63, stddev ~11.2. Accept within ±5σ.
  EXPECT_GT(chi_square, 63.0 - 5.0 * 11.2);
  EXPECT_LT(chi_square, 63.0 + 5.0 * 11.2);
}

TEST(rng_statistics, lag_one_autocorrelation_negligible) {
  vtm::util::rng gen(424242);
  constexpr int n = 100000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = gen.uniform();
  double num = 0.0, den = 0.0;
  const double mu = vtm::util::mean(xs);
  for (int i = 0; i + 1 < n; ++i) {
    num += (xs[i] - mu) * (xs[i + 1] - mu);
  }
  for (double x : xs) den += (x - mu) * (x - mu);
  const double rho = num / den;
  EXPECT_LT(std::abs(rho), 0.01);  // ~3σ for n = 1e5 is 0.0095
}

TEST(rng_statistics, normal_tail_mass) {
  vtm::util::rng gen(7777);
  constexpr int n = 200000;
  int beyond_two_sigma = 0;
  for (int i = 0; i < n; ++i)
    if (std::abs(gen.normal()) > 2.0) ++beyond_two_sigma;
  const double fraction = static_cast<double>(beyond_two_sigma) / n;
  EXPECT_NEAR(fraction, 0.0455, 0.004);  // P(|Z| > 2) = 4.55%
}

// ---- OFDMA fuzz --------------------------------------------------------------------------

class ofdma_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ofdma_fuzz, orthogonality_invariant_under_random_churn) {
  vtm::util::rng gen(GetParam());
  const double capacity = gen.uniform(10.0, 100.0);
  vtm::wireless::ofdma_pool pool(capacity);
  std::vector<vtm::wireless::grant_id> live;
  double booked = 0.0;
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || gen.bernoulli(0.6)) {
      const double request = gen.uniform(0.5, capacity / 3.0);
      const auto grant = pool.allocate(request);
      if (grant) {
        live.push_back(*grant);
        booked += request;
      } else {
        // Rejection is only allowed when the request truly does not fit.
        EXPECT_GT(request, pool.available_mhz() + 1e-12);
      }
    } else {
      const auto idx = static_cast<std::size_t>(gen.uniform_int(
          0, static_cast<std::int64_t>(live.size()) - 1));
      const double size = pool.grant_mhz(live[idx]).value();
      EXPECT_TRUE(pool.release(live[idx]));
      booked -= size;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    EXPECT_NEAR(pool.allocated_mhz(), booked, 1e-6);
    EXPECT_LE(pool.allocated_mhz(), capacity + 1e-9);
    EXPECT_EQ(pool.active_grants(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(seeds, ofdma_fuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- quantity conversion properties -----------------------------------------

// Random sweep: dBm -> watts -> dBm and dB -> linear -> dB round-trip to
// within a few ulps of the log-domain magnitude, and both maps are strictly
// monotone (more dB is always more power). The pow/log10 composition cannot
// be exactly 1 ulp: representing the scaled exponent (x - 30)/10 already
// costs eps·|x - 30|/10 of absolute error before pow runs, so the tight
// bound is relative to the shifted magnitude, not to the input's own ulp
// (measured worst case over 2M draws: 2.9e-14 at the -160 dBm edge, against
// a 4·eps·(|x| + 31) budget of 1.7e-13 there).
TEST(quantity_properties, dbm_watt_round_trip_within_ulp_budget) {
  constexpr double eps = std::numeric_limits<double>::epsilon();
  vtm::util::rng gen(20230807);
  for (int i = 0; i < 2000; ++i) {
    const double level = gen.uniform(-160.0, 60.0);  // noise floor..60 dBm
    const vtm::util::dbm typed{level};
    const double back =
        vtm::util::to_dbm(vtm::util::to_watts(typed)).value();
    EXPECT_NEAR(back, level, 4.0 * eps * (std::abs(level) + 31.0))
        << "dBm->W->dBm drifted at " << level;
  }
}

TEST(quantity_properties, db_linear_round_trip_within_ulp_budget) {
  constexpr double eps = std::numeric_limits<double>::epsilon();
  vtm::util::rng gen(20230808);
  for (int i = 0; i < 2000; ++i) {
    const double gain = gen.uniform(-120.0, 120.0);
    const double back =
        vtm::util::to_db(vtm::util::to_linear(vtm::util::db{gain})).value();
    EXPECT_NEAR(back, gain, 4.0 * eps * (std::abs(gain) + 1.0))
        << "dB->linear->dB drifted at " << gain;
  }
}

TEST(quantity_properties, log_maps_are_strictly_monotone) {
  vtm::util::rng gen(20230809);
  for (int i = 0; i < 500; ++i) {
    const double lo = gen.uniform(-160.0, 59.0);
    const double hi = lo + gen.uniform(1e-9, 10.0);
    EXPECT_LT(vtm::util::to_watts(vtm::util::dbm{lo}).value(),
              vtm::util::to_watts(vtm::util::dbm{hi}).value());
    EXPECT_LT(vtm::util::to_linear(vtm::util::db{lo}),
              vtm::util::to_linear(vtm::util::db{hi}));
  }
}

TEST(quantity_properties, typed_overloads_are_bitwise_the_raw_helpers) {
  vtm::util::rng gen(20230810);
  for (int i = 0; i < 500; ++i) {
    const double level = gen.uniform(-160.0, 60.0);
    EXPECT_EQ(vtm::util::to_watts(vtm::util::dbm{level}).value(),
              vtm::util::dbm_to_watt(level));
    EXPECT_EQ(vtm::util::to_linear(vtm::util::db{level}),
              vtm::util::db_to_linear(level));
    const double watt = vtm::util::dbm_to_watt(level);
    EXPECT_EQ(vtm::util::to_dbm(vtm::util::watts{watt}).value(),
              vtm::util::watt_to_dbm(watt));
    const double mb = gen.uniform(1.0, 1000.0);
    EXPECT_EQ(vtm::util::to_bits(vtm::util::megabytes{mb}),
              vtm::util::megabytes_to_bits(mb));
    const double mhz = gen.uniform(0.1, 100.0);
    EXPECT_EQ(vtm::util::to_hz(vtm::util::megahertz{mhz}),
              vtm::util::mhz_to_hz(mhz));
  }
}

// The typed wireless entry points (link rate, OFDMA allocation) must also be
// bitwise the raw-double paths: one link, both call styles, identical bits.
TEST(quantity_properties, typed_wireless_paths_match_raw_bitwise) {
  vtm::util::rng gen(20230811);
  for (int i = 0; i < 200; ++i) {
    vtm::wireless::link_params params;
    params.distance_m = vtm::util::meters{gen.uniform(100.0, 2000.0)};
    params.tx_power_dbm = vtm::util::dbm{gen.uniform(20.0, 50.0)};
    const vtm::wireless::link_budget link(params);
    const double mhz = gen.uniform(0.5, 80.0);
    EXPECT_EQ(link.rate_mbps(vtm::util::megahertz{mhz}),
              link.rate_mbps(mhz));
  }
}
