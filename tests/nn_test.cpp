// Tests for layers, initializers, optimizers, Gaussian head, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

#include "nn/fastmath.hpp"
#include "nn/gaussian.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nn = vtm::nn;

// ---- init --------------------------------------------------------------------

TEST(init, xavier_uniform_within_bound) {
  vtm::util::rng gen(1);
  const auto w = nn::xavier_uniform({64, 32}, gen);
  const double bound = std::sqrt(6.0 / (64.0 + 32.0));
  for (double x : w.flat()) {
    EXPECT_GE(x, -bound);
    EXPECT_LE(x, bound);
  }
}

TEST(init, xavier_not_degenerate) {
  vtm::util::rng gen(2);
  const auto w = nn::xavier_uniform({16, 16}, gen);
  vtm::util::running_stats acc;
  for (double x : w.flat()) acc.push(x);
  EXPECT_GT(acc.stddev(), 0.01);
}

TEST(init, orthogonal_columns_orthonormal) {
  vtm::util::rng gen(3);
  const auto w = nn::orthogonal({8, 4}, gen);  // tall: 8 rows of 4-vectors?
  // For rows >= cols the *columns* span orthonormal directions after the
  // Gram–Schmidt on row vectors; verify WᵀW ≈ I on the smaller dimension.
  const auto gram = w.transposed().matmul(w);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-9)
          << "gram(" << i << "," << j << ")";
}

TEST(init, orthogonal_gain_scales_norm) {
  vtm::util::rng gen(4);
  const double gain = 0.01;
  const auto w = nn::orthogonal({6, 6}, gen, gain);
  const auto gram = w.transposed().matmul(w);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(gram(i, i), gain * gain, 1e-12);
}

TEST(init, zeros_is_zero) {
  const auto z = nn::zeros({3, 3});
  for (double x : z.flat()) EXPECT_DOUBLE_EQ(x, 0.0);
}

// ---- layers --------------------------------------------------------------------

TEST(linear, forward_matches_manual_affine) {
  vtm::util::rng gen(5);
  nn::linear layer(3, 2, gen);
  nn::tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  const auto y = layer.forward(nn::variable::constant(x)).value();
  const auto& w = layer.weight().value();
  const auto& b = layer.bias().value();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) {
      double manual = b(0, c);
      for (std::size_t k = 0; k < 3; ++k) manual += x(r, k) * w(k, c);
      EXPECT_NEAR(y(r, c), manual, 1e-12);
    }
}

TEST(linear, rejects_wrong_input_width) {
  vtm::util::rng gen(6);
  nn::linear layer(3, 2, gen);
  EXPECT_THROW((void)layer.forward(nn::variable::constant(nn::tensor({1, 4}))),
               vtm::util::contract_error);
}

TEST(linear, parameters_are_weight_and_bias) {
  vtm::util::rng gen(7);
  nn::linear layer(5, 4, gen);
  const auto params = layer.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].dims(), (nn::shape{5, 4}));
  EXPECT_EQ(params[1].dims(), (nn::shape{1, 4}));
  EXPECT_EQ(nn::parameter_count(params), 5u * 4u + 4u);
}

TEST(mlp, shapes_and_depth) {
  vtm::util::rng gen(8);
  nn::mlp net({12, 64, 64, 1}, nn::activation::tanh, gen);
  EXPECT_EQ(net.depth(), 3u);
  const auto y =
      net.forward(nn::variable::constant(nn::tensor({5, 12}, 0.1)));
  EXPECT_EQ(y.dims(), (nn::shape{5, 1}));
}

TEST(mlp, requires_at_least_two_sizes) {
  vtm::util::rng gen(9);
  EXPECT_THROW((void)nn::mlp({4}, nn::activation::tanh, gen),
               vtm::util::contract_error);
}

TEST(mlp, output_layer_has_no_activation) {
  vtm::util::rng gen(10);
  // With identity hidden activation the whole net is affine: the output can
  // exceed tanh's range.
  nn::mlp net({1, 4, 1}, nn::activation::identity, gen, 10.0);
  const auto y = net.forward(
      nn::variable::constant(nn::tensor::scalar(100.0)));
  EXPECT_GT(std::abs(y.value().item()), 1.0);
}

TEST(mlp, distinct_outputs_for_distinct_inputs) {
  vtm::util::rng gen(11);
  nn::mlp net({2, 16, 1}, nn::activation::tanh, gen);
  const auto y1 =
      net.forward(nn::variable::constant(nn::tensor({1, 2}, {0.0, 0.0})));
  const auto y2 =
      net.forward(nn::variable::constant(nn::tensor({1, 2}, {1.0, -1.0})));
  EXPECT_NE(y1.value().item(), y2.value().item());
}

TEST(activation, all_variants_apply) {
  const auto x = nn::variable::constant(nn::tensor({1, 2}, {-2.0, 2.0}));
  EXPECT_DOUBLE_EQ(
      nn::apply_activation(x, nn::activation::identity).value()(0, 0), -2.0);
  EXPECT_NEAR(nn::apply_activation(x, nn::activation::tanh).value()(0, 1),
              std::tanh(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(
      nn::apply_activation(x, nn::activation::relu).value()(0, 0), 0.0);
  EXPECT_NEAR(nn::apply_activation(x, nn::activation::sigmoid).value()(0, 1),
              1.0 / (1.0 + std::exp(-2.0)), 1e-12);
}

// ---- optimizers ------------------------------------------------------------------

namespace {

// Convex quadratic: f(θ) = Σ (θ_i − target_i)².
nn::variable quadratic_loss(const nn::variable& theta,
                            const nn::tensor& target) {
  return nn::sum(nn::square(theta - nn::variable::constant(target)));
}

}  // namespace

TEST(sgd, converges_on_quadratic) {
  auto theta = nn::variable::parameter(nn::tensor({1, 3}, 0.0));
  const nn::tensor target({1, 3}, {1.0, -2.0, 3.0});
  nn::sgd opt({theta}, 0.1);
  for (int i = 0; i < 200; ++i) {
    auto loss = quadratic_loss(theta, target);
    nn::backward(loss);
    opt.step();
  }
  EXPECT_TRUE(theta.value().allclose(target, 1e-6));
}

TEST(sgd, momentum_accelerates) {
  auto plain = nn::variable::parameter(nn::tensor({1, 1}, 0.0));
  auto fast = nn::variable::parameter(nn::tensor({1, 1}, 0.0));
  const nn::tensor target({1, 1}, {10.0});
  nn::sgd opt_plain({plain}, 0.01);
  nn::sgd opt_fast({fast}, 0.01, 0.9);
  for (int i = 0; i < 30; ++i) {
    auto l1 = quadratic_loss(plain, target);
    nn::backward(l1);
    opt_plain.step();
    auto l2 = quadratic_loss(fast, target);
    nn::backward(l2);
    opt_fast.step();
  }
  EXPECT_LT(std::abs(fast.value().item() - 10.0),
            std::abs(plain.value().item() - 10.0));
}

TEST(sgd, rejects_bad_hyperparameters) {
  auto theta = nn::variable::parameter(nn::tensor({1, 1}));
  EXPECT_THROW((void)nn::sgd({theta}, 0.0), vtm::util::contract_error);
  EXPECT_THROW((void)nn::sgd({theta}, 0.1, 1.0), vtm::util::contract_error);
}

TEST(adam, converges_on_quadratic) {
  auto theta = nn::variable::parameter(nn::tensor({1, 4}, 5.0));
  const nn::tensor target({1, 4}, {1.0, 2.0, -1.0, 0.0});
  nn::adam opt({theta}, 0.05);
  for (int i = 0; i < 500; ++i) {
    auto loss = quadratic_loss(theta, target);
    nn::backward(loss);
    opt.step();
  }
  EXPECT_TRUE(theta.value().allclose(target, 1e-3));
  EXPECT_EQ(opt.steps(), 500u);
}

TEST(adam, handles_scale_differences) {
  // One coordinate's gradient is 1000x the other's; Adam should still move
  // both at comparable speed.
  auto theta = nn::variable::parameter(nn::tensor({1, 2}, 0.0));
  nn::adam opt({theta}, 0.01);
  for (int i = 0; i < 300; ++i) {
    auto scaled = theta * nn::variable::constant(
                              nn::tensor({1, 2}, {1000.0, 1.0}));
    auto target = nn::variable::constant(nn::tensor({1, 2}, {1000.0, 1.0}));
    auto loss = nn::sum(nn::square(scaled - target));
    nn::backward(loss);
    opt.step();
  }
  EXPECT_NEAR(theta.value()(0, 0), 1.0, 0.05);
  EXPECT_NEAR(theta.value()(0, 1), 1.0, 0.05);
}

TEST(adam, step_zeroes_gradients) {
  auto theta = nn::variable::parameter(nn::tensor({1, 1}, 1.0));
  nn::adam opt({theta}, 0.01);
  auto loss = nn::sum(nn::square(theta));
  nn::backward(loss);
  EXPECT_NE(theta.grad().item(), 0.0);
  opt.step();
  EXPECT_DOUBLE_EQ(theta.grad().item(), 0.0);
}

TEST(optimizer, rejects_non_trainable_parameters) {
  auto c = nn::variable::constant(nn::tensor({1, 1}));
  EXPECT_THROW((void)nn::adam({c}, 0.01), vtm::util::contract_error);
}

TEST(clip_grad_norm, scales_down_large_gradients) {
  auto theta = nn::variable::parameter(nn::tensor({1, 2}, 0.0));
  theta.accumulate_grad(nn::tensor({1, 2}, {3.0, 4.0}));  // norm 5
  const double before = nn::clip_grad_norm({theta}, 1.0);
  EXPECT_DOUBLE_EQ(before, 5.0);
  EXPECT_NEAR(theta.grad()(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(theta.grad()(0, 1), 0.8, 1e-12);
}

TEST(clip_grad_norm, leaves_small_gradients_alone) {
  auto theta = nn::variable::parameter(nn::tensor({1, 2}, 0.0));
  theta.accumulate_grad(nn::tensor({1, 2}, {0.3, 0.4}));
  nn::clip_grad_norm({theta}, 1.0);
  EXPECT_NEAR(theta.grad()(0, 0), 0.3, 1e-12);
}

// ---- gaussian head -----------------------------------------------------------------

TEST(gaussian, log_prob_matches_closed_form) {
  const nn::tensor mean({1, 1}, {2.0});
  const nn::tensor log_std({1, 1}, {std::log(0.5)});
  const nn::tensor action({1, 1}, {2.5});
  const double lp =
      nn::gaussian_log_prob_value(mean, log_std, action).item();
  const double sigma = 0.5;
  const double expected = -0.5 * std::pow((2.5 - 2.0) / sigma, 2) -
                          std::log(sigma) -
                          0.5 * std::log(2.0 * std::numbers::pi);
  EXPECT_NEAR(lp, expected, 1e-12);
}

TEST(gaussian, graph_log_prob_matches_value_path) {
  vtm::util::rng gen(13);
  nn::tensor mean({3, 2});
  nn::tensor actions({3, 2});
  for (auto& x : mean.flat()) x = gen.normal();
  for (auto& x : actions.flat()) x = gen.normal();
  const nn::tensor log_std({1, 2}, {-0.3, 0.2});
  const auto graph = nn::gaussian_log_prob(
      nn::variable::constant(mean), nn::variable::constant(log_std),
      nn::variable::constant(actions));
  const auto value = nn::gaussian_log_prob_value(mean, log_std, actions);
  EXPECT_TRUE(graph.value().allclose(value, 1e-12));
}

TEST(gaussian, sample_moments) {
  vtm::util::rng gen(17);
  const nn::tensor mean({1, 1}, {3.0});
  const nn::tensor log_std({1, 1}, {std::log(2.0)});
  vtm::util::running_stats acc;
  for (int i = 0; i < 50000; ++i)
    acc.push(nn::gaussian_sample(mean, log_std, gen).item());
  EXPECT_NEAR(acc.mean(), 3.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(gaussian, entropy_closed_form) {
  const auto log_std =
      nn::variable::parameter(nn::tensor({1, 2}, {0.0, std::log(2.0)}));
  const double h = nn::gaussian_entropy(log_std).value().item();
  const double expected = 2.0 * 0.5 * (1.0 + std::log(2.0 * std::numbers::pi)) +
                          0.0 + std::log(2.0);
  EXPECT_NEAR(h, expected, 1e-12);
}

TEST(gaussian, higher_sigma_higher_entropy) {
  const auto narrow = nn::variable::constant(nn::tensor({1, 1}, {-1.0}));
  const auto wide = nn::variable::constant(nn::tensor({1, 1}, {1.0}));
  EXPECT_LT(nn::gaussian_entropy(narrow).value().item(),
            nn::gaussian_entropy(wide).value().item());
}

// ---- serialization --------------------------------------------------------------

TEST(serialize, roundtrip_preserves_values) {
  vtm::util::rng gen(19);
  nn::mlp net({4, 8, 2}, nn::activation::tanh, gen);
  auto params = net.parameters();
  std::stringstream stream;
  nn::save_parameters(stream, params);

  // Perturb, then load back.
  for (auto& p : params) {
    nn::tensor t = p.value();
    for (auto& x : t.flat()) x += 1.0;
    p.set_value(std::move(t));
  }
  nn::load_parameters(stream, params);

  vtm::util::rng gen2(19);
  nn::mlp reference({4, 8, 2}, nn::activation::tanh, gen2);
  const auto expected = reference.parameters();
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_TRUE(params[i].value().allclose(expected[i].value(), 1e-15));
}

TEST(serialize, rejects_bad_header) {
  auto p = nn::variable::parameter(nn::tensor({1, 1}));
  std::vector<nn::variable> params{p};
  std::stringstream stream("garbage v9\n1\n1 1 0\n");
  EXPECT_THROW((void)nn::load_parameters(stream, params), std::runtime_error);
}

TEST(serialize, rejects_shape_mismatch) {
  auto a = nn::variable::parameter(nn::tensor({1, 2}));
  std::vector<nn::variable> out{a};
  std::stringstream stream;
  auto b = nn::variable::parameter(nn::tensor({2, 2}));
  std::vector<nn::variable> in{b};
  nn::save_parameters(stream, in);
  EXPECT_THROW((void)nn::load_parameters(stream, out), std::runtime_error);
}

TEST(serialize, full_precision_roundtrip) {
  auto p = nn::variable::parameter(
      nn::tensor({1, 2}, {std::numbers::pi, 1.0 / 3.0}));
  std::vector<nn::variable> params{p};
  std::stringstream stream;
  nn::save_parameters(stream, params);
  p.set_value(nn::tensor({1, 2}));
  nn::load_parameters(stream, params);
  EXPECT_DOUBLE_EQ(p.value()(0, 0), std::numbers::pi);
  EXPECT_DOUBLE_EQ(p.value()(0, 1), 1.0 / 3.0);
}

// ---- inference forward / fastmath -------------------------------------------

TEST(fastmath, fast_tanh_accuracy_and_saturation) {
  double max_err = 0.0;
  double max_err_core = 0.0;
  for (double x = -10.0; x <= 10.0; x += 1e-3) {
    const double err = std::abs(nn::fast_tanh(x) - std::tanh(x));
    max_err = std::max(max_err, err);
    if (std::abs(x) <= 3.0) max_err_core = std::max(max_err_core, err);
  }
  EXPECT_LT(max_err, 1e-4);       // worst case at the saturation clamp
  EXPECT_LT(max_err_core, 1e-6);  // the range activations actually live in
  EXPECT_NEAR(nn::fast_tanh(100.0), 1.0, 1e-4);
  EXPECT_NEAR(nn::fast_tanh(-100.0), -1.0, 1e-4);
  EXPECT_DOUBLE_EQ(nn::fast_tanh(0.0), 0.0);
}

TEST(layers, forward_values_exact_is_bitwise_identical_to_graph) {
  vtm::util::rng gen(11);
  const nn::mlp net({5, 16, 16, 3}, nn::activation::tanh, gen);
  nn::tensor x({4, 5});
  vtm::util::rng data_gen(12);
  for (double& v : x.flat()) v = data_gen.normal();

  const nn::tensor graph = net.forward(nn::variable::constant(x)).value();
  const nn::tensor values = net.forward_values(x, nn::math_mode::exact);
  ASSERT_EQ(values.dims(), graph.dims());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(values.flat()[i], graph.flat()[i]);  // bitwise, not approx
}

TEST(layers, forward_values_fast_tracks_exact_closely) {
  vtm::util::rng gen(13);
  const nn::mlp net({5, 32, 32, 2}, nn::activation::tanh, gen);
  nn::tensor x({8, 5});
  vtm::util::rng data_gen(14);
  for (double& v : x.flat()) v = data_gen.normal();

  const nn::tensor exact = net.forward_values(x, nn::math_mode::exact);
  const nn::tensor fast = net.forward_values(x, nn::math_mode::fast);
  EXPECT_TRUE(fast.allclose(exact, 1e-4));
}

TEST(layers, apply_activation_values_matches_graph_ops) {
  for (const auto act : {nn::activation::identity, nn::activation::tanh,
                         nn::activation::relu, nn::activation::sigmoid}) {
    nn::tensor x({2, 3}, {-1.5, -0.2, 0.0, 0.4, 1.1, 3.0});
    const nn::tensor graph =
        nn::apply_activation(nn::variable::constant(x), act).value();
    nn::apply_activation_values(x, act, nn::math_mode::exact);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(x.flat()[i], graph.flat()[i]);
  }
}
