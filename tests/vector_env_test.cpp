// Tests for the vectorized environment: B x dim shape contracts, auto-reset
// semantics, equivalence with B independent single environments, and
// thread-pool determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/env.hpp"
#include "core/market.hpp"
#include "rl/vector_env.hpp"
#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace rl = vtm::rl;
namespace nn = vtm::nn;
namespace core = vtm::core;

namespace {

/// Deterministic scripted environment: observation counts its own steps,
/// reward is index*100 + step, episode ends after `horizon` steps.
class scripted_env final : public rl::environment {
 public:
  scripted_env(std::size_t index, std::size_t horizon)
      : index_(index), horizon_(horizon) {}

  std::size_t observation_dim() const override { return 3; }
  std::size_t action_dim() const override { return 2; }
  double action_low() const override { return -1.0; }
  double action_high() const override { return 1.0; }

  nn::tensor reset() override {
    ++resets;
    step_count_ = 0;
    return observation();
  }

  rl::step_result step(const nn::tensor& action) override {
    ++step_count_;
    rl::step_result result;
    result.reward = static_cast<double>(index_) * 100.0 +
                    static_cast<double>(step_count_);
    result.done = step_count_ >= horizon_;
    result.observation = observation();
    result.info["index"] = static_cast<double>(index_);
    result.info["first_action"] = action(0, 0);
    return result;
  }

  std::size_t resets = 0;

 private:
  nn::tensor observation() const {
    nn::tensor obs({1, 3});
    obs(0, 0) = static_cast<double>(index_);
    obs(0, 1) = static_cast<double>(step_count_);
    obs(0, 2) = 1.0;
    return obs;
  }

  std::size_t index_;
  std::size_t horizon_;
  std::size_t step_count_ = 0;
};

rl::env_factory scripted_factory(std::size_t horizon) {
  return [horizon](std::size_t index) {
    return std::make_unique<scripted_env>(index, horizon);
  };
}

nn::tensor constant_actions(std::size_t batch, double value) {
  return nn::tensor({batch, 2}, value);
}

core::market_params two_vmu_market() {
  core::market_params params;
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  return params;
}

}  // namespace

TEST(vector_env, validates_construction) {
  EXPECT_THROW((void)rl::vector_env(scripted_factory(5), 0),
               vtm::util::contract_error);
  EXPECT_THROW((void)rl::vector_env(rl::env_factory{}, 2),
               vtm::util::contract_error);
  // Mismatched replica shapes are rejected.
  const rl::env_factory mixed = [](std::size_t index) {
    return std::make_unique<scripted_env>(index,
                                          /*horizon=*/index == 0 ? 5 : 7);
  };
  EXPECT_NO_THROW((void)rl::vector_env(mixed, 2));  // same dims, ok
}

TEST(vector_env, shape_contracts) {
  rl::vector_env envs(scripted_factory(10), 4);
  EXPECT_EQ(envs.size(), 4u);
  EXPECT_EQ(envs.observation_dim(), 3u);
  EXPECT_EQ(envs.action_dim(), 2u);

  const nn::tensor obs = envs.reset();
  EXPECT_EQ(obs.dims(), (nn::shape{4, 3}));

  const auto result = envs.step(constant_actions(4, 0.5));
  EXPECT_EQ(result.observations.dims(), (nn::shape{4, 3}));
  EXPECT_EQ(result.rewards.size(), 4u);
  EXPECT_EQ(result.dones.size(), 4u);
  EXPECT_EQ(result.infos.size(), 4u);

  // Wrong action batch shape is a contract violation.
  EXPECT_THROW((void)envs.step(constant_actions(3, 0.5)),
               vtm::util::contract_error);
  EXPECT_THROW((void)envs.step(nn::tensor({4, 1}, 0.0)),
               vtm::util::contract_error);
}

TEST(vector_env, rows_carry_per_env_results) {
  rl::vector_env envs(scripted_factory(10), 3);
  (void)envs.reset();
  const auto result = envs.step(constant_actions(3, 0.25));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(result.rewards[i], static_cast<double>(i) * 100.0 + 1.0);
    EXPECT_DOUBLE_EQ(result.infos[i].at("index"), static_cast<double>(i));
    EXPECT_DOUBLE_EQ(result.infos[i].at("first_action"), 0.25);
    EXPECT_DOUBLE_EQ(result.observations(i, 0), static_cast<double>(i));
  }
}

TEST(vector_env, auto_reset_returns_next_episode_initial_observation) {
  constexpr std::size_t horizon = 3;
  rl::vector_env envs(scripted_factory(horizon), 2);
  (void)envs.reset();

  for (std::size_t k = 1; k < horizon; ++k) {
    const auto result = envs.step(constant_actions(2, 0.0));
    EXPECT_EQ(result.dones[0], 0);
    EXPECT_EQ(result.dones[1], 0);
    // Observation reflects the in-episode step counter.
    EXPECT_DOUBLE_EQ(result.observations(0, 1), static_cast<double>(k));
  }

  const auto boundary = envs.step(constant_actions(2, 0.0));
  EXPECT_EQ(boundary.dones[0], 1);
  EXPECT_EQ(boundary.dones[1], 1);
  // Auto-reset: rows hold the *next* episode's initial observation
  // (step counter back to 0), while rewards/infos describe the final step.
  EXPECT_DOUBLE_EQ(boundary.observations(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(boundary.observations(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(boundary.rewards[0], static_cast<double>(horizon));

  // Each env saw exactly one extra reset (initial + auto).
  EXPECT_EQ(dynamic_cast<scripted_env&>(envs.env(0)).resets, 2u);

  // The next episode proceeds normally.
  const auto next = envs.step(constant_actions(2, 0.0));
  EXPECT_EQ(next.dones[0], 0);
  EXPECT_DOUBLE_EQ(next.rewards[0], 1.0);
}

TEST(vector_env, manual_reset_env_restarts_one_row) {
  rl::vector_env envs(scripted_factory(10), 2);
  (void)envs.reset();
  (void)envs.step(constant_actions(2, 0.0));
  const nn::tensor row = envs.reset_env(1);
  EXPECT_EQ(row.dims(), (nn::shape{1, 3}));
  EXPECT_DOUBLE_EQ(row(0, 1), 0.0);  // step counter restarted
  // Env 0 is untouched: its next step continues the episode.
  const auto result = envs.step(constant_actions(2, 0.0));
  EXPECT_DOUBLE_EQ(result.rewards[0], 2.0);
  EXPECT_DOUBLE_EQ(result.rewards[1], 101.0);  // env 1 restarted
}

TEST(vector_env, matches_independent_single_envs_with_same_seeds) {
  // The batched pricing environments must traverse exactly the trajectories
  // of B independently-constructed single envs sharing the per-replica seeds.
  constexpr std::size_t batch = 3;
  core::pricing_env_config config;
  config.rounds_per_episode = 5;
  config.seed = 123;

  const auto factory = core::make_pricing_env_factory(two_vmu_market(), config);
  rl::vector_env envs(factory, batch);

  std::vector<std::unique_ptr<rl::environment>> singles;
  for (std::size_t i = 0; i < batch; ++i) singles.push_back(factory(i));

  nn::tensor batched_obs = envs.reset();
  std::vector<nn::tensor> single_obs;
  for (auto& env : singles) single_obs.push_back(env->reset());
  for (std::size_t i = 0; i < batch; ++i)
    EXPECT_TRUE(batched_obs.row_at(i).allclose(single_obs[i], 0.0));

  // Distinct replicas received distinct warm-up seeds.
  EXPECT_FALSE(batched_obs.row_at(0).allclose(batched_obs.row_at(1), 1e-12));

  for (std::size_t k = 0; k < 12; ++k) {  // crosses the auto-reset boundary
    nn::tensor actions({batch, 1});
    for (std::size_t i = 0; i < batch; ++i)
      actions(i, 0) = -0.9 + 0.3 * static_cast<double>(i) +
                      0.1 * static_cast<double>(k % 3);
    const auto result = envs.step(actions);
    for (std::size_t i = 0; i < batch; ++i) {
      auto one = singles[i]->step(actions.row_at(i));
      EXPECT_DOUBLE_EQ(result.rewards[i], one.reward);
      EXPECT_EQ(result.dones[i] != 0, one.done);
      EXPECT_DOUBLE_EQ(result.infos[i].at("leader_utility"),
                       one.info.at("leader_utility"));
      if (one.done) one.observation = singles[i]->reset();  // mirror auto-reset
      EXPECT_TRUE(result.observations.row_at(i).allclose(one.observation, 0.0))
          << "env " << i << " diverged at step " << k;
    }
  }
}

TEST(vector_env, threaded_step_is_bitwise_identical_to_serial) {
  core::pricing_env_config config;
  config.rounds_per_episode = 4;
  config.seed = 7;
  const auto factory = core::make_pricing_env_factory(two_vmu_market(), config);

  rl::vector_env serial(factory, 8, /*threads=*/0);
  rl::vector_env threaded(factory, 8, /*threads=*/3);
  EXPECT_EQ(serial.threads(), 0u);
  EXPECT_EQ(threaded.threads(), 3u);

  nn::tensor obs_a = serial.reset();
  nn::tensor obs_b = threaded.reset();
  EXPECT_TRUE(obs_a.allclose(obs_b, 0.0));

  for (std::size_t k = 0; k < 10; ++k) {
    nn::tensor actions({8, 1});
    for (std::size_t i = 0; i < 8; ++i)
      actions(i, 0) = -1.0 + 0.25 * static_cast<double>(i);
    const auto a = serial.step(actions);
    const auto b = threaded.step(actions);
    EXPECT_TRUE(a.observations.allclose(b.observations, 0.0));
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(a.rewards[i], b.rewards[i]);
      EXPECT_EQ(a.dones[i], b.dones[i]);
    }
  }
}

TEST(thread_pool, covers_every_index_exactly_once) {
  vtm::util::thread_pool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Serial pool degenerates to a plain loop.
  vtm::util::thread_pool serial(0);
  int count = 0;
  serial.parallel_for(5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(thread_pool, propagates_exceptions) {
  vtm::util::thread_pool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

TEST(thread_pool, run_phased_barriers_between_phases) {
  vtm::util::thread_pool pool(3);
  constexpr std::size_t lanes = 4;
  constexpr std::size_t phases = 5;
  std::vector<std::atomic<int>> lane_phase(lanes);
  std::atomic<int> out_of_phase{0};
  std::size_t barriers = 0;
  pool.run_phased(
      lanes,
      [&](std::size_t lane, std::size_t phase) {
        // Every lane must observe the same phase index: a lane racing ahead
        // of the barrier would see a stale counter here.
        if (lane_phase[lane].load() != static_cast<int>(phase))
          ++out_of_phase;
        ++lane_phase[lane];
      },
      [&](std::size_t phase) {
        // The barrier runs serially with all lanes done with `phase`.
        for (const auto& p : lane_phase)
          if (p.load() != static_cast<int>(phase) + 1) ++out_of_phase;
        ++barriers;
        return phase + 1 < phases;
      });
  EXPECT_EQ(out_of_phase.load(), 0);
  EXPECT_EQ(barriers, phases);
  for (const auto& p : lane_phase) EXPECT_EQ(p.load(), phases);

  // Serial pool: same protocol, plain loops.
  vtm::util::thread_pool serial(0);
  int ticks = 0;
  serial.run_phased(
      2, [&](std::size_t, std::size_t) { ++ticks; },
      [&](std::size_t phase) { return phase == 0; });
  EXPECT_EQ(ticks, 4);
}

TEST(thread_pool, run_phased_propagates_lane_exceptions) {
  vtm::util::thread_pool pool(2);
  EXPECT_THROW(pool.run_phased(
                   3,
                   [](std::size_t lane, std::size_t) {
                     if (lane == 2) throw std::runtime_error("lane");
                   },
                   [](std::size_t) { return true; }),
               std::runtime_error);
}
