// Sharded fleet engine: shard_count = 1 bitwise-golden against the pre-shard
// serial engine, shard-vs-serial bitwise equivalence with real boundary
// traffic, cross-shard handoff conservation, multi-shard determinism, and
// the clearing-grid / drain-phase / spawn-window / link-gap regression
// sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "core/aotm.hpp"
#include "core/fleet_scenario.hpp"
#include "core/fleet_shard.hpp"
#include "sim/mobility.hpp"
#include "sim/road_graph.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "wireless/link.hpp"

namespace core = vtm::core;
namespace sim = vtm::sim;

namespace {

core::fleet_config nonuniform_config() {
  core::fleet_config config;
  config.rsu_positions_m = {vtm::util::meters{800.0}, vtm::util::meters{2000.0}, vtm::util::meters{2900.0}, vtm::util::meters{4400.0}, vtm::util::meters{5200.0}, vtm::util::meters{6800.0}};
  config.coverage_radius_m = vtm::util::meters{900.0};
  config.vehicle_count = 80;
  config.duration_s = vtm::util::seconds{90.0};
  config.seed = 99;
  return config;
}

core::fleet_config congested_config() {
  core::fleet_config config;
  config.vehicle_count = 60;
  config.bandwidth_per_pool_mhz = vtm::util::megahertz{6.0};
  config.min_alpha = 4000.0;
  config.max_alpha = 5000.0;
  config.min_data_mb = vtm::util::megabytes{250.0};
  config.duration_s = vtm::util::seconds{90.0};
  config.seed = 7;
  return config;
}

void expect_identical(const core::fleet_result& a,
                      const core::fleet_result& b) {
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.deferred, b.deferred);
  EXPECT_EQ(a.priced_out, b.priced_out);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.clearings, b.clearings);
  EXPECT_EQ(a.max_cohort, b.max_cohort);
  EXPECT_EQ(a.msp_total_utility, b.msp_total_utility);
  EXPECT_EQ(a.vmu_total_utility, b.vmu_total_utility);
  EXPECT_EQ(a.mean_aotm, b.mean_aotm);
  EXPECT_EQ(a.mean_amplification, b.mean_amplification);
  EXPECT_EQ(a.mean_price, b.mean_price);
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    const auto& x = a.migrations[i];
    const auto& y = b.migrations[i];
    EXPECT_EQ(x.start_s, y.start_s);
    EXPECT_EQ(x.requested_s, y.requested_s);
    EXPECT_EQ(x.finish_s, y.finish_s);
    EXPECT_EQ(x.vehicle, y.vehicle);
    EXPECT_EQ(x.from_rsu, y.from_rsu);
    EXPECT_EQ(x.to_rsu, y.to_rsu);
    EXPECT_EQ(x.price, y.price);
    EXPECT_EQ(x.bandwidth_mhz, y.bandwidth_mhz);
    EXPECT_EQ(x.cohort, y.cohort);
    EXPECT_EQ(x.aotm_closed_form, y.aotm_closed_form);
    EXPECT_EQ(x.aotm_simulated, y.aotm_simulated);
    EXPECT_EQ(x.data_sent_mb, y.data_sent_mb);
    EXPECT_EQ(x.vmu_utility, y.vmu_utility);
    EXPECT_EQ(x.msp_utility, y.msp_utility);
  }
  ASSERT_EQ(a.vehicles.size(), b.vehicles.size());
  for (std::size_t v = 0; v < a.vehicles.size(); ++v) {
    EXPECT_EQ(a.vehicles[v].host_rsu, b.vehicles[v].host_rsu);
    EXPECT_EQ(a.vehicles[v].migrations, b.vehicles[v].migrations);
  }
}

void expect_conserved(const core::fleet_config& config,
                      const core::fleet_result& r) {
  EXPECT_EQ(r.handovers, r.completed + r.priced_out + r.abandoned);
  ASSERT_EQ(r.vehicles.size(), config.vehicle_count);
  std::size_t twin_migrations = 0;
  for (const auto& v : r.vehicles) {
    EXPECT_LT(v.shard, config.shard_count);
    twin_migrations += v.migrations;
  }
  // No vehicle lost or duplicated: every completion is on exactly one twin.
  EXPECT_EQ(twin_migrations, r.completed);
  if (config.record_migrations) {
    EXPECT_EQ(r.completed, r.migrations.size());
    double msp = 0.0;
    double vmu = 0.0;
    for (const auto& m : r.migrations) {
      msp += m.msp_utility;
      vmu += m.vmu_utility;
    }
    EXPECT_DOUBLE_EQ(r.msp_total_utility, msp);
    EXPECT_DOUBLE_EQ(r.vmu_total_utility, vmu);
  }
}

}  // namespace

// ---- shard_count = 1 is the pre-shard serial engine ------------------------

// Structural goldens of three regimes captured from the pre-shard engine at
// the commit that introduced the coordinator (counters are FP-flag-robust;
// the exact pinned *doubles* live in fig_golden_test, which CI runs in the
// NATIVE_ARCH=OFF tier2 job per the repo's golden policy).
TEST(fleet_shard, shard1_matches_pre_shard_engine_structure) {
  {
    core::fleet_config config;  // defaults: 8 RSUs, 100 vehicles, 120 s
    const auto r = core::run_fleet_scenario(config);
    EXPECT_EQ(r.handovers, 276u);
    EXPECT_EQ(r.completed, 276u);
    EXPECT_EQ(r.deferred, 0u);
    EXPECT_EQ(r.clearings, 250u);
    EXPECT_EQ(r.max_cohort, 3u);
    EXPECT_EQ(r.cross_shard_transfers, 0u);
    EXPECT_EQ(r.late_handoffs, 0u);
  }
  {
    const auto r = core::run_fleet_scenario(nonuniform_config());
    EXPECT_EQ(r.handovers, 146u);
    EXPECT_EQ(r.completed, 146u);
    EXPECT_EQ(r.clearings, 129u);
  }
  {
    const auto r = core::run_fleet_scenario(congested_config());
    EXPECT_EQ(r.handovers, 134u);
    EXPECT_EQ(r.deferred, 50u);
    EXPECT_EQ(r.completed, 134u);
  }
}

// ---- shard-vs-serial bitwise equivalence ----------------------------------

// With timely boundary handoffs (late_handoffs == 0, no cross-shard
// retargets) a sharded run reproduces the serial engine bitwise: per-pool
// books see the exact serial submission order and the merge reduces
// completions in global finish-time order.
TEST(fleet_shard, shard_counts_are_bitwise_equivalent_on_uniform_chain) {
  core::fleet_config config;  // 8 RSUs, 100 vehicles, 120 s
  const auto serial = core::run_fleet_scenario(config);
  for (const std::size_t shards : {2u, 4u}) {
    auto sharded_config = config;
    sharded_config.shard_count = shards;
    const auto sharded = core::run_fleet_scenario(sharded_config);
    // Preconditions of exact equivalence — and proof of real boundary
    // traffic (the equivalence is not vacuous).
    EXPECT_GT(sharded.cross_shard_transfers, 0u) << shards;
    EXPECT_EQ(sharded.late_handoffs, 0u) << shards;
    EXPECT_EQ(sharded.cross_shard_retargets, 0u) << shards;
    expect_identical(serial, sharded);
  }
}

TEST(fleet_shard, shard_counts_are_bitwise_equivalent_on_nonuniform_chain) {
  const auto config = nonuniform_config();
  const auto serial = core::run_fleet_scenario(config);
  for (const std::size_t shards : {2u, 3u, 6u}) {
    auto sharded_config = config;
    sharded_config.shard_count = shards;
    const auto sharded = core::run_fleet_scenario(sharded_config);
    EXPECT_GT(sharded.cross_shard_transfers, 0u) << shards;
    EXPECT_EQ(sharded.late_handoffs, 0u) << shards;
    expect_identical(serial, sharded);
  }
}

// ---- cross-shard handoff conservation and determinism ---------------------

TEST(fleet_shard, handoffs_conserve_vehicles_under_congestion) {
  for (const std::size_t shards : {2u, 4u}) {
    auto config = congested_config();
    config.shard_count = shards;
    const auto r = core::run_fleet_scenario(config);
    EXPECT_GT(r.cross_shard_transfers, 0u);
    expect_conserved(config, r);
  }
}

TEST(fleet_shard, multi_shard_runs_are_deterministic) {
  auto config = congested_config();
  config.shard_count = 4;
  const auto a = core::run_fleet_scenario(config);
  const auto b = core::run_fleet_scenario(config);
  EXPECT_EQ(a.cross_shard_transfers, b.cross_shard_transfers);
  EXPECT_EQ(a.cross_shard_retargets, b.cross_shard_retargets);
  EXPECT_EQ(a.late_handoffs, b.late_handoffs);
  expect_identical(a, b);

  auto other = config;
  other.seed = config.seed + 1;
  const auto c = core::run_fleet_scenario(other);
  EXPECT_NE(a.msp_total_utility, c.msp_total_utility);
}

TEST(fleet_shard, rejects_invalid_shard_configs) {
  core::fleet_config too_many;
  too_many.rsu_count = 4;
  too_many.shard_count = 5;
  EXPECT_THROW((void)core::run_fleet_scenario(too_many),
               vtm::util::contract_error);
  core::fleet_config shared;
  shared.shared_pool = true;
  shared.shard_count = 2;
  EXPECT_THROW((void)core::run_fleet_scenario(shared),
               vtm::util::contract_error);
}

// ---- satellite: epoch-grid snap uses a relative tolerance -----------------

// The pre-fix snap subtracted an absolute 1e-9 before ceil(); once
// now/epoch exceeds ~2^20 that is below one ulp of the grid coordinate, so
// a clearing landing one ulp past a boundary deferred a full epoch. The
// relative tolerance must keep ulp-noise on the boundary at any magnitude.
TEST(fleet_shard, epoch_grid_snap_uses_relative_tolerance) {
  const double epoch = 0.5;
  EXPECT_EQ(core::epoch_grid_snap(0.0, epoch), 0.0);
  EXPECT_EQ(core::epoch_grid_snap(0.2, epoch), 0.5);
  EXPECT_EQ(core::epoch_grid_snap(12.25, epoch), 12.5);
  EXPECT_EQ(core::epoch_grid_snap(12.5, epoch), 12.5);
  EXPECT_EQ(core::epoch_grid_snap(7.0, 0.0), 7.0);  // epoch 0: clear now

  // Long-horizon regression: walk boundary times across magnitudes (the
  // pre-fix formula defers at k >= ~2^25, i.e. duration_s beyond ~1.6e7 s
  // on the default 0.5 s epoch). One ulp past the boundary must snap back
  // onto it — i.e. clear immediately — not defer to the next epoch.
  for (const double k : {1.0, 1024.0, 1048576.0, 8388608.0, 33554432.0,
                         1073741824.0}) {
    const double boundary = k * epoch;
    const double just_past =
        std::nextafter(boundary, std::numeric_limits<double>::infinity());
    const double snapped = core::epoch_grid_snap(just_past, epoch);
    // max(now, grid) semantics: "clear at once", never a full epoch later.
    EXPECT_EQ(snapped, just_past) << "k=" << k;
    // Well inside the epoch the next boundary still wins.
    EXPECT_EQ(core::epoch_grid_snap(boundary + 0.25 * epoch, epoch),
              boundary + epoch)
        << "k=" << k;
  }
}

// ---- satellite: drain-phase abandons re-home twins ------------------------

// The pre-fix run() counted `abandon_pending()` without the `set_host_rsu`
// bookkeeping that the in-run abandon path performs, leaving abandoned twins
// hosted on a stale RSU in post-run inspection. Both paths now go through
// `resolve_abandoned`; this drives the final sweep directly on a shard
// engine whose book still holds a request when the horizon is cut.
TEST(fleet_shard, drain_sweep_rehomes_abandoned_twins) {
  core::fleet_config config;
  config.rsu_count = 4;
  config.vehicle_count = 1;
  const sim::rsu_chain chain(4, 1000.0, 600.0);
  const std::vector<std::uint32_t> rsu_shard(4, 0);
  std::vector<core::vehicle_slot> vehicles(1);
  vehicles[0].kinematics = {2600.0, 25.0};
  vehicles[0].profile = {1000.0, 200.0};
  vehicles[0].twin = std::make_unique<sim::vehicular_twin>(
      sim::vehicular_twin::with_total_mb(0, 200.0, config.page_mb.value()));
  vehicles[0].twin->set_host_rsu(1);

  sim::shard_mailbox<core::shard_message> mailbox(1);
  core::shard_engine engine(config, chain, {}, 0, 0, 4, rsu_shard, vehicles,
                            mailbox, nullptr);

  core::clearing_request request;
  request.vehicle = 0;
  request.profile = vehicles[0].profile;
  request.from_rsu = 1;
  request.to_rsu = 2;
  request.submitted_s = 0.0;
  engine.market_at(2).submit(request);

  engine.abandon_remaining();
  EXPECT_EQ(engine.stats().abandoned, 1u);
  // The twin followed its request's destination, exactly like the in-run
  // abandon path — not left hosted on the stale RSU 1.
  EXPECT_EQ(vehicles[0].twin->host_rsu(), 2u);
  EXPECT_EQ(engine.market_at(2).pending(), 0u);
}

// ---- satellite: explicit spawn window starting at zero --------------------

TEST(fleet_shard, explicit_zero_spawn_window_is_not_auto) {
  core::fleet_config config;
  config.vehicle_count = 10;
  config.duration_s = vtm::util::seconds{30.0};
  config.spawn_min_m = vtm::util::meters{0.0};  // pre-fix: conflated with the auto sentinel
  config.spawn_max_m = vtm::util::meters{0.0};
  const auto r = core::run_fleet_scenario(config);
  // Everyone spawns at 0 m: the first boundary (1500 m) is out of reach
  // within 30 s at <= 35 m/s, so an honest [0, 0] window admits no
  // handovers. The pre-fix code silently spread the fleet over the chain.
  EXPECT_EQ(r.handovers, 0u);
  for (const auto& v : r.vehicles) EXPECT_EQ(v.host_rsu, 0u);
}

TEST(fleet_shard, rejects_inverted_explicit_spawn_window) {
  core::fleet_config config;
  config.spawn_min_m = vtm::util::meters{500.0};
  config.spawn_max_m = vtm::util::meters{100.0};
  EXPECT_THROW((void)core::run_fleet_scenario(config),
               vtm::util::contract_error);
}

// ---- satellite: non-adjacent hops price over the actual gap ---------------

// A request deferred long enough for its vehicle to drift multiple cells
// migrates over the true (from, to) distance. Pre-fix, the grant's transfer
// rate and closed-form AoTM were built from the destination pool's upstream
// gap (2000 m here) instead of the actual 3000 m hop.
TEST(fleet_shard, drifted_grants_use_actual_from_to_gap) {
  core::fleet_config config;
  config.rsu_positions_m = {vtm::util::meters{1000.0}, vtm::util::meters{2000.0}, vtm::util::meters{4000.0}};
  config.coverage_radius_m = vtm::util::meters{1100.0};
  config.vehicle_count = 2;
  config.min_speed_mps = vtm::util::mps{30.0};
  config.max_speed_mps = vtm::util::mps{30.0};
  config.min_alpha = 5000.0;
  config.max_alpha = 5000.0;
  config.min_data_mb = vtm::util::megabytes{280.0};  // long transfer: the deferred vehicle drifts
  config.spawn_min_m = vtm::util::meters{1100.0};
  config.spawn_max_m = vtm::util::meters{1400.0};
  config.bandwidth_per_pool_mhz = vtm::util::megahertz{0.1};  // one grant saturates a pool
  config.min_clearable_mhz = vtm::util::megahertz{0.1};
  config.duration_s = vtm::util::seconds{20.0};
  const auto r = core::run_fleet_scenario(config);

  const auto drifted = std::find_if(
      r.migrations.begin(), r.migrations.end(),
      [](const core::migration_record& m) { return m.to_rsu == 2; });
  ASSERT_NE(drifted, r.migrations.end());
  ASSERT_EQ(drifted->from_rsu, 0u);  // drifted two cells while deferred

  // Replay the spawn draws to recover the drifting vehicle's footprint.
  vtm::util::rng gen(config.seed);
  double data_mb[2];
  for (std::size_t v = 0; v < 2; ++v) {
    (void)gen.uniform(config.spawn_min_m.value(), config.spawn_max_m.value());
    (void)gen.uniform(config.min_speed_mps.value(), config.max_speed_mps.value());
    (void)gen.uniform(config.min_alpha, config.max_alpha);
    data_mb[v] = gen.uniform(config.min_data_mb.value(), config.max_data_mb.value());
  }
  const auto twin = sim::vehicular_twin::with_total_mb(
      drifted->vehicle, data_mb[drifted->vehicle], config.page_mb.value());
  vtm::wireless::link_params actual = config.link;
  actual.distance_m = vtm::util::meters{3000.0};  // centre 0 -> centre 2
  const vtm::wireless::link_budget budget(actual);
  EXPECT_DOUBLE_EQ(
      drifted->aotm_closed_form,
      core::aotm_closed_form(twin.total_mb(), drifted->bandwidth_mhz, budget));
}

// Backward traffic stays rejected by design: the geometry supports it, the
// engine's validation (pools price the upstream gap) is the chosen guard.
TEST(fleet_shard, backward_traffic_is_rejected_by_design) {
  const sim::rsu_chain chain(4, 1000.0, 600.0);
  const auto event = chain.next_handover({2600.0, -20.0});
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->from_rsu, 2u);
  EXPECT_EQ(event->to_rsu, 1u);

  core::fleet_config config;
  config.min_speed_mps = vtm::util::mps{-30.0};
  config.max_speed_mps = vtm::util::mps{-10.0};
  EXPECT_THROW((void)core::run_fleet_scenario(config),
               vtm::util::contract_error);
}

// ---- satellite: per-cell noise/power overrides -----------------------------

// Overrides that merely restate the chain-wide channel are bitwise inert:
// the per-cell vectors change *which* numbers each pool link carries, never
// the arithmetic downstream of them.
TEST(fleet_shard, identity_channel_overrides_are_bitwise_inert) {
  core::fleet_config config;
  config.vehicle_count = 60;
  config.duration_s = vtm::util::seconds{60.0};
  const auto baseline = core::run_fleet_scenario(config);

  auto overridden = config;
  overridden.rsu_noise_dbm.assign(config.rsu_count,
                                  config.link.noise_power_dbm);
  overridden.rsu_tx_power_dbm.assign(config.rsu_count,
                                     config.link.tx_power_dbm);
  const auto r = core::run_fleet_scenario(overridden);
  expect_identical(baseline, r);
}

// A noisier destination cell slows its migrations: with one vehicle and one
// boundary, the interior equilibrium's closed-form AoTM D/(b*R) strictly
// grows as the cell's R drops (b* = sqrt(ακ/C) − κ, κ = D/R), and only the
// overridden cell is affected.
TEST(fleet_shard, noisier_cell_slows_its_own_migrations) {
  core::fleet_config config;
  config.rsu_count = 4;
  config.vehicle_count = 1;
  config.spawn_min_m = vtm::util::meters{1200.0};  // one boundary (1500 m) within the horizon
  config.spawn_max_m = vtm::util::meters{1400.0};
  config.duration_s = vtm::util::seconds{30.0};
  const auto baseline = core::run_fleet_scenario(config);
  ASSERT_EQ(baseline.completed, 1u);
  EXPECT_EQ(baseline.migrations[0].to_rsu, 1u);

  auto noisy = config;
  noisy.rsu_noise_dbm.assign(config.rsu_count, config.link.noise_power_dbm);
  noisy.rsu_noise_dbm[1] = vtm::util::dbm{config.link.noise_power_dbm.value() + 12.0};
  const auto r = core::run_fleet_scenario(noisy);
  ASSERT_EQ(r.completed, 1u);
  EXPECT_GT(r.migrations[0].aotm_closed_form,
            baseline.migrations[0].aotm_closed_form);
  EXPECT_GT(r.migrations[0].aotm_simulated,
            baseline.migrations[0].aotm_simulated);

  // A hotter transmitter pushes the other way.
  auto boosted = config;
  boosted.rsu_tx_power_dbm.assign(config.rsu_count, config.link.tx_power_dbm);
  boosted.rsu_tx_power_dbm[1] = vtm::util::dbm{config.link.tx_power_dbm.value() + 6.0};
  const auto b = core::run_fleet_scenario(boosted);
  ASSERT_EQ(b.completed, 1u);
  EXPECT_LT(b.migrations[0].aotm_closed_form,
            baseline.migrations[0].aotm_closed_form);
}

TEST(fleet_shard, rejects_malformed_channel_overrides) {
  core::fleet_config wrong_size;
  wrong_size.rsu_noise_dbm = {vtm::util::dbm{-150.0}, vtm::util::dbm{-150.0}};  // 8-RSU chain
  EXPECT_THROW((void)core::run_fleet_scenario(wrong_size),
               vtm::util::contract_error);

  core::fleet_config not_finite;
  not_finite.rsu_tx_power_dbm.assign(not_finite.rsu_count,
                                     vtm::util::dbm{40.0});
  not_finite.rsu_tx_power_dbm[3] =
      vtm::util::dbm{std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW((void)core::run_fleet_scenario(not_finite),
               vtm::util::contract_error);

  core::fleet_config shared;
  shared.shared_pool = true;
  shared.rsu_noise_dbm.assign(shared.rsu_count, vtm::util::dbm{-150.0});
  EXPECT_THROW((void)core::run_fleet_scenario(shared),
               vtm::util::contract_error);
}

// ---- satellite: same-instant cross-shard retargets serialize --------------

// PR 4's documented open follow-up: retargets landing at the same grid
// instant serialize through the next barrier in (destination, sender, send
// order) mailbox sequence — the senders' book-FIFO order — rather than
// reproducing the serial engine's schedule-order tie-break. Today those two
// orders *coincide* on this scenario (v1 before v2, both retargeting at
// t = 164 s into the same destination pool), and the whole schedule is
// deterministic. This pin makes any future tie-break change deliberate: if
// the mailbox discipline or the book compaction reorders same-instant
// retargets, these exact sequences must be re-derived, not accidentally
// drifted.
TEST(fleet_shard, same_instant_cross_shard_retargets_serialize_in_fifo_order) {
  core::fleet_config config;
  config.rsu_positions_m = {vtm::util::meters{1000.0}, vtm::util::meters{2000.0}, vtm::util::meters{4000.0}};
  config.coverage_radius_m = vtm::util::meters{1100.0};
  config.vehicle_count = 3;
  config.min_speed_mps = vtm::util::mps{30.0};
  config.max_speed_mps = vtm::util::mps{30.0};
  config.min_alpha = 5000.0;
  config.max_alpha = 5000.0;
  config.min_data_mb = vtm::util::megabytes{280.0};
  config.spawn_min_m = vtm::util::meters{1100.0};
  config.spawn_max_m = vtm::util::meters{1400.0};
  config.bandwidth_per_pool_mhz = vtm::util::megahertz{0.1};  // one grant saturates a pool
  config.min_clearable_mhz = vtm::util::megahertz{0.1};
  config.duration_s = vtm::util::seconds{20.0};

  const auto serial = core::run_fleet_scenario(config);

  auto sharded_config = config;
  sharded_config.shard_count = 3;  // one RSU per shard
  const auto sharded = core::run_fleet_scenario(sharded_config);

  // Two deferred requests retarget out of shard 1 at the same clearing
  // instant; both serialize through the next barrier.
  EXPECT_EQ(sharded.cross_shard_retargets, 2u);
  expect_conserved(sharded_config, sharded);

  // The pinned deterministic order: v0's granted migration first, then the
  // same-instant retargets v1, v2 — submitted in book-FIFO order at the
  // sender, delivered in send order at the destination.
  ASSERT_EQ(sharded.migrations.size(), 3u);
  const std::size_t vehicles[] = {0, 1, 2};
  const std::size_t to_rsu[] = {1, 2, 2};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sharded.migrations[i].vehicle, vehicles[i]) << i;
    EXPECT_EQ(sharded.migrations[i].to_rsu, to_rsu[i]) << i;
  }
  EXPECT_EQ(sharded.migrations[1].start_s, sharded.migrations[2].start_s);

  // Today the barrier serialization happens to reproduce the serial
  // engine's schedule-order tie-break on this scenario — pin that too, so a
  // divergence (either engine changing its order) is surfaced.
  ASSERT_EQ(serial.migrations.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(serial.migrations[i].vehicle, sharded.migrations[i].vehicle);
    EXPECT_EQ(serial.migrations[i].start_s, sharded.migrations[i].start_s);
  }

  // And the serialization is stable run to run.
  const auto again = core::run_fleet_scenario(sharded_config);
  expect_identical(sharded, again);
}

// ---- cross-shard retarget path --------------------------------------------

// The drift scenario above, sharded one RSU per shard: the deferred request
// re-homes across two shard boundaries via a retarget handoff, and the
// migration still lands exactly once.
TEST(fleet_shard, cross_shard_retarget_rehomes_deferred_requests) {
  core::fleet_config config;
  config.rsu_positions_m = {vtm::util::meters{1000.0}, vtm::util::meters{2000.0}, vtm::util::meters{4000.0}};
  config.coverage_radius_m = vtm::util::meters{1100.0};
  config.vehicle_count = 2;
  config.min_speed_mps = vtm::util::mps{30.0};
  config.max_speed_mps = vtm::util::mps{30.0};
  config.min_alpha = 5000.0;
  config.max_alpha = 5000.0;
  config.min_data_mb = vtm::util::megabytes{280.0};
  config.spawn_min_m = vtm::util::meters{1100.0};
  config.spawn_max_m = vtm::util::meters{1400.0};
  config.bandwidth_per_pool_mhz = vtm::util::megahertz{0.1};
  config.min_clearable_mhz = vtm::util::megahertz{0.1};
  config.duration_s = vtm::util::seconds{20.0};
  config.shard_count = 3;
  const auto r = core::run_fleet_scenario(config);

  EXPECT_GT(r.cross_shard_retargets, 0u);
  expect_conserved(config, r);
  const bool drifted_granted = std::any_of(
      r.migrations.begin(), r.migrations.end(),
      [](const core::migration_record& m) {
        return m.from_rsu == 0 && m.to_rsu == 2;
      });
  EXPECT_TRUE(drifted_granted);
}

// ---- graph-tile ownership --------------------------------------------------

namespace {

// City grid with enough routes and traffic that every tile boundary sees
// vehicles hopping between shards.
core::fleet_config grid_config() {
  core::fleet_config config;
  config.graph = std::make_shared<const sim::road_graph>(
      sim::road_graph::grid(4, 4, 1000.0, 600.0));
  config.vehicle_count = 300;
  config.duration_s = vtm::util::seconds{120.0};
  config.seed = 61;
  return config;
}

}  // namespace

// Shards over a road graph own contiguous ranges of the (edge, offset)-sorted
// global RSU index — i.e. graph tiles of edges. The same conservative-window
// mailbox contract holds: with no late deliveries and no cross-shard
// retargets, 2- and 4-tile runs are bitwise the serial engine.
TEST(fleet_shard, graph_tiles_match_serial_engine_bitwise) {
  const auto config = grid_config();
  const auto serial = core::run_fleet_scenario(config);
  EXPECT_GT(serial.handovers, 0u);
  expect_conserved(config, serial);

  for (const std::size_t tiles : {std::size_t{2}, std::size_t{4}}) {
    auto tiled_config = config;
    tiled_config.shard_count = tiles;
    const auto tiled = core::run_fleet_scenario(tiled_config);
    expect_conserved(tiled_config, tiled);
    // Grid routes zig-zag through the global site order, so tile borders
    // carry real traffic in both runs.
    EXPECT_GT(tiled.cross_shard_transfers, 0u) << tiles;
    // The auto window is conservative for the graph's narrowest cell at the
    // fastest factor x lane bonus: nothing arrives late, so the barrier
    // schedule reproduces the serial event order exactly.
    EXPECT_EQ(tiled.late_handoffs, 0u) << tiles;
    EXPECT_EQ(tiled.cross_shard_retargets, 0u) << tiles;
    expect_identical(serial, tiled);
  }
}

// Tile runs are deterministic across repeats and across thread scheduling.
TEST(fleet_shard, graph_tiles_are_deterministic) {
  auto config = grid_config();
  config.shard_count = 4;
  const auto a = core::run_fleet_scenario(config);
  const auto b = core::run_fleet_scenario(config);
  expect_identical(a, b);
  EXPECT_EQ(a.cross_shard_transfers, b.cross_shard_transfers);
  EXPECT_EQ(a.late_handoffs, b.late_handoffs);
}
