// Tests for the alternative learning algorithms: REINFORCE and the tabular
// Q-grid pricing scheme, including head-to-head sanity on the pricing POMDP.
#include <gtest/gtest.h>

#include <cmath>

#include "core/env.hpp"
#include "core/equilibrium.hpp"
#include "rl/qlearning.hpp"
#include "rl/reinforce.hpp"
#include "util/contracts.hpp"

namespace rl = vtm::rl;
namespace core = vtm::core;

namespace {

core::market_params two_vmu_params() {
  core::market_params p;
  p.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  return p;
}

core::pricing_env make_env(core::reward_mode mode = core::reward_mode::shaped,
                           std::size_t rounds = 50) {
  core::pricing_env_config config;
  config.mode = mode;
  config.rounds_per_episode = rounds;
  return core::pricing_env(core::migration_market(two_vmu_params()), config);
}

}  // namespace

// ---- REINFORCE -----------------------------------------------------------------

TEST(reinforce, validates_config) {
  vtm::util::rng gen(1);
  rl::actor_critic_config net;
  net.obs_dim = 12;
  net.hidden = {16};
  rl::actor_critic policy(net, gen);
  rl::reinforce_config bad;
  bad.learning_rate = 0.0;
  vtm::util::rng gen2(2);
  EXPECT_THROW((void)rl::reinforce(policy, bad, gen2), vtm::util::contract_error);
}

TEST(reinforce, single_episode_produces_finite_losses) {
  auto env = make_env();
  vtm::util::rng gen(3);
  rl::actor_critic_config net;
  net.obs_dim = env.observation_dim();
  net.hidden = {16};
  rl::actor_critic policy(net, gen);
  vtm::util::rng gen2(4);
  rl::reinforce learner(policy, {}, gen2);
  const auto stats = learner.train_episode(env, 50);
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
  EXPECT_GT(stats.mean_utility, 0.0);
}

TEST(reinforce, learns_pricing_toward_oracle) {
  auto env = make_env(core::reward_mode::shaped, 50);
  const auto oracle = core::solve_equilibrium(env.market());
  vtm::util::rng gen(5);
  rl::actor_critic_config net;
  net.obs_dim = env.observation_dim();
  net.hidden = {32};
  net.initial_log_std = -0.5;
  rl::actor_critic policy(net, gen);
  rl::reinforce_config config;
  config.learning_rate = 3e-3;
  vtm::util::rng gen2(6);
  rl::reinforce learner(policy, config, gen2);

  double early = 0.0, late = 0.0;
  const std::size_t episodes = 120;
  for (std::size_t e = 0; e < episodes; ++e) {
    const auto stats = learner.train_episode(env, 50);
    if (e < 10) early += stats.mean_utility;
    if (e + 10 >= episodes) late += stats.mean_utility;
  }
  early /= 10.0;
  late /= 10.0;
  EXPECT_GT(late, early);                          // it improves...
  EXPECT_GT(late, 0.85 * oracle.leader_utility);   // ...to near-oracle.
}

TEST(reinforce, baseline_can_be_disabled) {
  auto env = make_env();
  vtm::util::rng gen(7);
  rl::actor_critic_config net;
  net.obs_dim = env.observation_dim();
  net.hidden = {8};
  rl::actor_critic policy(net, gen);
  rl::reinforce_config config;
  config.use_baseline = false;
  vtm::util::rng gen2(8);
  rl::reinforce learner(policy, config, gen2);
  EXPECT_NO_THROW((void)learner.train_episode(env, 20));
}

// ---- tabular Q pricing --------------------------------------------------------------

TEST(q_pricing, validates_config) {
  rl::q_pricing_config bad;
  bad.bins = 1;
  EXPECT_THROW((void)rl::q_pricing_scheme{bad}, vtm::util::contract_error);
  bad = {};
  bad.step_size = 0.0;
  EXPECT_THROW((void)rl::q_pricing_scheme{bad}, vtm::util::contract_error);
}

TEST(q_pricing, actions_are_bin_centers_within_range) {
  rl::q_pricing_scheme agent;
  vtm::util::rng gen(9);
  for (int i = 0; i < 200; ++i) {
    const double a = agent.select_action(5.0, 50.0, gen);
    EXPECT_GT(a, 5.0);
    EXPECT_LT(a, 50.0);
  }
}

TEST(q_pricing, first_feedback_replaces_optimistic_prior) {
  rl::q_pricing_config config;
  config.bins = 4;
  rl::q_pricing_scheme agent(config);
  vtm::util::rng gen(10);
  (void)agent.select_action(0.0, 4.0, gen);
  agent.feedback(0.5, 7.0);  // bin 0
  EXPECT_DOUBLE_EQ(agent.q_value(0), 7.0);
  EXPECT_EQ(agent.visits(0), 1u);
}

TEST(q_pricing, q_values_track_running_average) {
  rl::q_pricing_config config;
  config.bins = 2;
  config.step_size = 0.5;
  config.optimistic_init = false;
  rl::q_pricing_scheme agent(config);
  vtm::util::rng gen(11);
  (void)agent.select_action(0.0, 2.0, gen);
  agent.feedback(0.5, 10.0);  // bin 0: q = 5
  agent.feedback(0.5, 10.0);  // q = 7.5
  EXPECT_DOUBLE_EQ(agent.q_value(0), 7.5);
}

TEST(q_pricing, epsilon_decays_to_floor) {
  rl::q_pricing_config config;
  config.epsilon_start = 1.0;
  config.epsilon_end = 0.1;
  config.epsilon_decay = 0.5;
  rl::q_pricing_scheme agent(config);
  for (int i = 0; i < 20; ++i) agent.feedback(1.0, 1.0);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.1);
  agent.reset();
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
}

TEST(q_pricing, converges_to_best_bin_on_stationary_payoff) {
  // Payoff peaks at price 30 on [0, 60]; the greedy bin must cover it.
  rl::q_pricing_config config;
  config.bins = 12;  // bin width 5: the peak lies in bin 6 = [30, 35)
  config.epsilon_decay = 0.99;
  rl::q_pricing_scheme agent(config);
  vtm::util::rng gen(12);
  for (int i = 0; i < 2000; ++i) {
    const double a = agent.select_action(0.0, 60.0, gen);
    agent.feedback(a, 100.0 - (a - 30.0) * (a - 30.0));
  }
  const double greedy_price =
      0.0 + (static_cast<double>(agent.greedy_bin()) + 0.5) * 5.0;
  EXPECT_NEAR(greedy_price, 30.0, 5.0);
}

TEST(q_pricing, learns_market_pricing_near_oracle) {
  auto env = make_env(core::reward_mode::shaped, 100);
  const auto oracle = core::solve_equilibrium(env.market());

  rl::q_pricing_config config;
  config.bins = 48;
  config.epsilon_decay = 0.999;
  rl::q_pricing_scheme agent(config);

  // Drive it through the price box directly via the market (bandit setting).
  vtm::util::rng gen(13);
  double late_utility = 0.0;
  const int rounds = 4000;
  for (int i = 0; i < rounds; ++i) {
    const double price = agent.select_action(5.0, 50.0, gen);
    const double utility = env.market().leader_utility(price);
    agent.feedback(price, utility);
    if (i >= rounds - 500) late_utility += utility;
  }
  late_utility /= 500.0;
  EXPECT_GT(late_utility, 0.9 * oracle.leader_utility);
  // Tabularization bound: one bin of [5,50]/48 ≈ 0.94 price units.
  const double greedy_price =
      5.0 + (static_cast<double>(agent.greedy_bin()) + 0.5) * 45.0 / 48.0;
  EXPECT_NEAR(greedy_price, oracle.price, 1.5);
}
