// Joint spot-market clearing: cohort pricing equals the N-follower
// equilibrium, sequential mode reproduces the legacy single-follower chain,
// deferral/retry around an exhausted pool, and oversubscription safety.
#include <gtest/gtest.h>

#include <cmath>

#include "core/equilibrium.hpp"
#include "core/spot_market.hpp"
#include "util/contracts.hpp"

namespace core = vtm::core;

namespace {

core::spot_market_config joint_config() {
  core::spot_market_config config;
  config.discipline = core::clearing_discipline::joint;
  return config;
}

core::clearing_request request_for(std::size_t vehicle, double alpha,
                                   double data_mb) {
  core::clearing_request request;
  request.vehicle = vehicle;
  request.profile = {alpha, data_mb};
  request.from_rsu = 0;
  request.to_rsu = 1;
  return request;
}

core::market_params combined_params(const core::spot_market_config& config,
                                    std::vector<core::vmu_profile> vmus,
                                    double cap) {
  core::market_params params;
  params.vmus = std::move(vmus);
  params.link = config.link;
  params.bandwidth_cap_mhz = vtm::util::megahertz{cap};
  params.unit_cost = config.unit_cost;
  params.price_cap = config.price_cap;
  return params;
}

}  // namespace

// Acceptance regression: a cohort cleared jointly is priced exactly like the
// combined N-follower market handed to solve_equilibrium.
TEST(spot_market, joint_clearing_matches_combined_equilibrium) {
  const auto config = joint_config();
  core::spot_market market(config);
  market.submit(request_for(0, 500.0, 200.0));
  market.submit(request_for(1, 900.0, 100.0));
  market.submit(request_for(2, 1400.0, 300.0));

  const double available = 80.0;  // interior regime: no rationing clamp
  const auto outcome = market.clear(available);

  const core::migration_market reference(combined_params(
      config, {{500.0, 200.0}, {900.0, 100.0}, {1400.0, 300.0}}, available));
  const auto eq = core::solve_equilibrium(reference);

  ASSERT_EQ(outcome.grants.size(), 3u);
  EXPECT_EQ(outcome.markets_cleared, 1u);
  EXPECT_EQ(outcome.price, eq.price);  // bitwise: same solver, same inputs
  for (std::size_t n = 0; n < outcome.grants.size(); ++n) {
    const auto& grant = outcome.grants[n];
    EXPECT_EQ(grant.price, eq.price);
    EXPECT_EQ(grant.bandwidth_mhz, eq.demands[n]);
    EXPECT_EQ(grant.vmu_utility, eq.vmu_utilities[n]);
    EXPECT_EQ(grant.cohort, 3u);
  }
  // Per-grant MSP shares decompose the leader utility.
  double msp_total = 0.0;
  for (const auto& grant : outcome.grants) msp_total += grant.msp_utility;
  EXPECT_NEAR(msp_total, eq.leader_utility, 1e-9);
  EXPECT_EQ(market.pending(), 0u);
}

// Sequential discipline reproduces the legacy chain: each request gets its
// own single-follower market over the shrinking remainder, FIFO.
TEST(spot_market, sequential_matches_single_follower_chain) {
  auto config = joint_config();
  config.discipline = core::clearing_discipline::sequential;
  core::spot_market market(config);
  market.submit(request_for(0, 800.0, 250.0));
  market.submit(request_for(1, 600.0, 150.0));

  const double available = 45.0;
  const auto outcome = market.clear(available);
  ASSERT_EQ(outcome.grants.size(), 2u);
  EXPECT_EQ(outcome.markets_cleared, 2u);

  const core::migration_market first(
      combined_params(config, {{800.0, 250.0}}, available));
  const auto eq_first = core::solve_equilibrium(first);
  EXPECT_EQ(outcome.grants[0].bandwidth_mhz, eq_first.demands[0]);
  EXPECT_EQ(outcome.grants[0].price, eq_first.price);
  EXPECT_EQ(outcome.grants[0].cohort, 1u);

  const core::migration_market second(combined_params(
      config, {{600.0, 150.0}}, available - eq_first.demands[0]));
  const auto eq_second = core::solve_equilibrium(second);
  EXPECT_EQ(outcome.grants[1].bandwidth_mhz, eq_second.demands[0]);
  EXPECT_EQ(outcome.grants[1].price, eq_second.price);
}

// Joint and sequential clearings price a 2-request book differently: the
// joint price is one market over both followers.
TEST(spot_market, joint_and_sequential_prices_diverge) {
  const auto config = joint_config();
  core::spot_market joint(config);
  auto sequential_config = config;
  sequential_config.discipline = core::clearing_discipline::sequential;
  core::spot_market sequential(sequential_config);
  for (auto* market : {&joint, &sequential}) {
    market->submit(request_for(0, 500.0, 200.0));
    market->submit(request_for(1, 1500.0, 100.0));
  }
  const auto joint_outcome = joint.clear(50.0);
  const auto sequential_outcome = sequential.clear(50.0);
  ASSERT_EQ(joint_outcome.grants.size(), 2u);
  ASSERT_EQ(sequential_outcome.grants.size(), 2u);
  // One shared price jointly; legacy prices each follower's own monopoly.
  EXPECT_EQ(joint_outcome.grants[0].price, joint_outcome.grants[1].price);
  EXPECT_NE(sequential_outcome.grants[0].price,
            sequential_outcome.grants[1].price);
}

// Pool exhaustion -> deferral -> successful retry, at the book level.
TEST(spot_market, defers_below_minimum_and_clears_on_retry) {
  core::spot_market market(joint_config());
  market.submit(request_for(0, 700.0, 200.0));
  market.submit(request_for(1, 900.0, 150.0));

  const auto starved = market.clear(0.25);  // below min_clearable_mhz
  EXPECT_TRUE(starved.grants.empty());
  EXPECT_TRUE(starved.priced_out.empty());
  EXPECT_EQ(starved.deferred, 2u);
  EXPECT_EQ(starved.markets_cleared, 0u);
  EXPECT_EQ(market.pending(), 2u);  // book intact for the retry

  const auto retried = market.clear(50.0);  // capacity released
  EXPECT_EQ(retried.deferred, 0u);
  EXPECT_EQ(retried.grants.size(), 2u);
  EXPECT_EQ(market.pending(), 0u);
}

// A VMU whose willingness to pay cannot cover the equilibrium price is
// priced out (b* = 0): the handover proceeds without a migration.
TEST(spot_market, prices_out_unwilling_vmus) {
  core::spot_market market(joint_config());
  market.submit(request_for(0, 1.0, 300.0));     // alpha/p << D/R at any p >= C
  market.submit(request_for(1, 1200.0, 100.0));  // healthy follower

  const auto outcome = market.clear(50.0);
  ASSERT_EQ(outcome.priced_out.size(), 1u);
  EXPECT_EQ(outcome.priced_out[0].vehicle, 0u);
  ASSERT_EQ(outcome.grants.size(), 1u);
  EXPECT_EQ(outcome.grants[0].request.vehicle, 1u);
  EXPECT_EQ(market.pending(), 0u);
}

// Rationing never oversubscribes the remaining pool, even when the joint
// demand is far above it.
TEST(spot_market, grants_fit_within_available_capacity) {
  core::spot_market market(joint_config());
  for (std::size_t v = 0; v < 6; ++v)
    market.submit(request_for(v, 1900.0, 120.0));

  const double available = 2.0;
  const auto outcome = market.clear(available);
  double total = 0.0;
  for (const auto& grant : outcome.grants) {
    EXPECT_GT(grant.bandwidth_mhz, 0.0);
    EXPECT_NE(grant.regime, core::equilibrium_regime::interior);
    total += grant.bandwidth_mhz;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, available + 1e-12);
}

TEST(spot_market, abandon_returns_and_empties_book) {
  core::spot_market market(joint_config());
  market.submit(request_for(3, 500.0, 200.0));
  market.submit(request_for(7, 600.0, 100.0));
  const auto dropped = market.abandon_pending();
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_EQ(dropped[0].vehicle, 3u);
  EXPECT_EQ(dropped[1].vehicle, 7u);
  EXPECT_EQ(market.pending(), 0u);
}

TEST(spot_market, rejects_invalid_configuration) {
  core::spot_market_config bad;
  bad.unit_cost = 0.0;
  EXPECT_THROW((void)core::spot_market(bad), vtm::util::contract_error);
  core::spot_market_config inverted;
  inverted.price_cap = inverted.unit_cost / 2.0;
  EXPECT_THROW((void)core::spot_market(inverted), vtm::util::contract_error);
}
