// Tests for the vehicular simulator: event queue, VT model, pre-copy
// migration engine, highway mobility.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/mobility.hpp"
#include "sim/precopy.hpp"
#include "sim/vt.hpp"
#include "util/contracts.hpp"

namespace s = vtm::sim;

// ---- event queue ------------------------------------------------------------

TEST(event_queue, executes_in_time_order) {
  s::event_queue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(event_queue, equal_times_run_fifo) {
  s::event_queue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(event_queue, schedule_in_is_relative) {
  s::event_queue q;
  double fired_at = -1.0;
  q.schedule(2.0, [&] {
    q.schedule_in(1.5, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(event_queue, cannot_schedule_in_the_past) {
  s::event_queue q;
  q.schedule(5.0, [] {});
  q.step();
  EXPECT_THROW((void)q.schedule(1.0, [] {}), vtm::util::contract_error);
}

TEST(event_queue, cancel_prevents_execution) {
  s::event_queue q;
  bool ran = false;
  const auto h = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // already cancelled
  q.run_all();
  EXPECT_FALSE(ran);
}

TEST(event_queue, run_until_stops_at_horizon) {
  s::event_queue q;
  int count = 0;
  q.schedule(1.0, [&] { ++count; });
  q.schedule(2.0, [&] { ++count; });
  q.schedule(5.0, [&] { ++count; });
  EXPECT_EQ(q.run_until(3.0), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(event_queue, events_can_schedule_events) {
  s::event_queue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_in(1.0, recurse);
  };
  q.schedule(0.0, recurse);
  q.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(event_queue, run_all_respects_event_budget) {
  s::event_queue q;
  std::function<void()> forever = [&] { q.schedule_in(1.0, forever); };
  q.schedule(0.0, forever);
  EXPECT_EQ(q.run_all(100), 100u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(event_queue, next_event_time_peeks_without_advancing) {
  s::event_queue q;
  EXPECT_FALSE(q.next_event_time().has_value());
  q.schedule(3.0, [] {});
  q.schedule(1.5, [] {});
  ASSERT_TRUE(q.next_event_time().has_value());
  EXPECT_DOUBLE_EQ(*q.next_event_time(), 1.5);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);  // peeking never advances the clock
  q.run_until(2.0);
  ASSERT_TRUE(q.next_event_time().has_value());
  EXPECT_DOUBLE_EQ(*q.next_event_time(), 3.0);
}

// Windowed runs are the sharded engine's primitive: repeated run_until calls
// with increasing horizons execute exactly the events one call would, and
// events landing on a window boundary can still be scheduled at the barrier
// (at == now) and run in the next window at their exact time.
TEST(event_queue, windowed_run_until_matches_single_run) {
  std::vector<std::pair<int, double>> single, windowed;
  const auto drive = [](s::event_queue& q, auto record) {
    for (int i = 0; i < 8; ++i)
      q.schedule(0.7 * i, [record, &q, i] { record(i, q.now()); });
  };
  {
    s::event_queue q;
    drive(q, [&](int i, double t) { single.emplace_back(i, t); });
    q.run_until(10.0);
  }
  {
    s::event_queue q;
    drive(q, [&](int i, double t) { windowed.emplace_back(i, t); });
    for (double t = 2.0; t <= 10.0; t += 2.0) q.run_until(t);
  }
  EXPECT_EQ(single, windowed);

  s::event_queue q;
  int ran_at_boundary = 0;
  q.run_until(5.0);
  q.schedule(5.0, [&] { ++ran_at_boundary; });  // at == now: still legal
  q.run_until(6.0);
  EXPECT_EQ(ran_at_boundary, 1);
}

// ---- vehicular twin ------------------------------------------------------------

TEST(vt, totals_add_up) {
  s::vt_config config;
  config.system_config_mb = vtm::util::megabytes{2.0};
  config.memory_pages = 100;
  config.page_mb = vtm::util::megabytes{0.5};
  config.runtime_state_mb = vtm::util::megabytes{3.0};
  s::vehicular_twin twin(7, config);
  EXPECT_EQ(twin.vmu_id(), 7u);
  EXPECT_DOUBLE_EQ(twin.memory_mb(), 50.0);
  EXPECT_DOUBLE_EQ(twin.total_mb(), 55.0);
}

TEST(vt, with_total_mb_hits_requested_footprint) {
  for (double total : {100.0, 137.5, 200.0, 300.0}) {
    const auto twin = s::vehicular_twin::with_total_mb(1, total);
    EXPECT_NEAR(twin.total_mb(), total, 1e-9) << "total " << total;
    EXPECT_GT(twin.config().memory_pages, 0u);
    EXPECT_GT(twin.config().system_config_mb.value(), 0.0);
  }
}

TEST(vt, migration_bookkeeping) {
  auto twin = s::vehicular_twin::with_total_mb(1, 100.0);
  EXPECT_EQ(twin.migration_count(), 0u);
  twin.set_host_rsu(3);
  twin.record_migration();
  EXPECT_EQ(twin.host_rsu(), 3u);
  EXPECT_EQ(twin.migration_count(), 1u);
}

TEST(vt, rejects_invalid_config) {
  s::vt_config bad;
  bad.system_config_mb = vtm::util::megabytes{-1.0};
  EXPECT_THROW((void)s::vehicular_twin(0, bad), vtm::util::contract_error);
  EXPECT_THROW((void)s::vehicular_twin::with_total_mb(0, 0.0),
               vtm::util::contract_error);
}

// ---- pre-copy migration ------------------------------------------------------------

TEST(precopy, zero_dirty_rate_equals_cold_copy) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 200.0);
  const double rate = 520.0;  // MB/s
  const auto report = s::run_precopy(twin, rate);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(report.total_sent_mb, twin.total_mb(), 1e-9);
  EXPECT_NEAR(report.total_time_s, s::cold_copy_seconds(twin, rate), 1e-9);
  EXPECT_NEAR(report.amplification(twin.total_mb()), 1.0, 1e-9);
}

TEST(precopy, dirty_pages_inflate_transfer) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 200.0);
  s::precopy_params dirty;
  dirty.dirty_rate_mb_s = vtm::util::mb_per_s{100.0};
  const auto clean_report = s::run_precopy(twin, 520.0);
  const auto dirty_report = s::run_precopy(twin, 520.0, dirty);
  EXPECT_GT(dirty_report.total_sent_mb, clean_report.total_sent_mb);
  EXPECT_GT(dirty_report.total_time_s, clean_report.total_time_s);
  EXPECT_GT(dirty_report.amplification(twin.total_mb()), 1.0);
  EXPECT_TRUE(dirty_report.converged);
}

TEST(precopy, transfer_time_matches_geometric_series) {
  // Fluid model with dirty ratio ρ = w/r: memory rounds send
  // M, Mρ, Mρ², ... until the residue hits the stop-copy threshold.
  s::vt_config config;
  config.system_config_mb = vtm::util::megabytes{0.0};
  config.memory_pages = 1000;
  config.page_mb = vtm::util::megabytes{0.1};  // M = 100 MB
  config.runtime_state_mb = vtm::util::megabytes{0.0};
  const s::vehicular_twin twin(1, config);
  const double rate = 50.0, dirty = 10.0;  // ρ = 0.2
  s::precopy_params params;
  params.dirty_rate_mb_s = vtm::util::mb_per_s{dirty};
  params.stop_copy_threshold_mb = vtm::util::megabytes{1.0};
  const auto report = s::run_precopy(twin, rate, params);
  ASSERT_TRUE(report.converged);
  // Residues: 100, 20, 4, 0.8 (<1 stops). Sent: 100+20+4 then 0.8 final.
  EXPECT_NEAR(report.total_sent_mb, 124.8, 1e-9);
  EXPECT_NEAR(report.total_time_s, 124.8 / 50.0, 1e-9);
  EXPECT_NEAR(report.downtime_s, 0.8 / 50.0, 1e-9);
  ASSERT_EQ(report.rounds.size(), 4u);  // 3 iterative + stop-and-copy
  EXPECT_TRUE(report.rounds.back().stop_and_copy);
}

TEST(precopy, downtime_bounded_by_threshold_plus_state) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 300.0);
  s::precopy_params params;
  params.dirty_rate_mb_s = vtm::util::mb_per_s{200.0};
  params.stop_copy_threshold_mb = vtm::util::megabytes{2.0};
  const double rate = 400.0;
  const auto report = s::run_precopy(twin, rate, params);
  ASSERT_TRUE(report.converged);
  const double worst_final_mb =
      params.stop_copy_threshold_mb.value() + twin.config().runtime_state_mb.value();
  EXPECT_LE(report.downtime_s, worst_final_mb / rate + 1e-9);
}

TEST(precopy, non_convergent_when_dirty_exceeds_rate) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 100.0);
  s::precopy_params params;
  params.dirty_rate_mb_s = vtm::util::mb_per_s{100.0};  // dirtying as fast as sending
  const auto report = s::run_precopy(twin, 50.0, params);
  EXPECT_FALSE(report.converged);
  // Still terminates and still moves the twin (forced stop-and-copy).
  EXPECT_GE(report.total_sent_mb, twin.total_mb());
}

TEST(precopy, round_budget_forces_stop) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 100.0);
  s::precopy_params params;
  params.dirty_rate_mb_s = vtm::util::mb_per_s{40.0};
  params.max_rounds = 2;
  params.stop_copy_threshold_mb = vtm::util::megabytes{0.001};
  const auto report = s::run_precopy(twin, 50.0, params);
  EXPECT_FALSE(report.converged);
  EXPECT_GE(report.downtime_s, 0.0);
}

TEST(precopy, monotone_in_dirty_rate) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 150.0);
  double previous_time = 0.0;
  for (double dirty : {0.0, 20.0, 40.0, 60.0, 80.0}) {
    s::precopy_params params;
    params.dirty_rate_mb_s = vtm::util::mb_per_s{dirty};
    const auto report = s::run_precopy(twin, 200.0, params);
    EXPECT_GE(report.total_time_s, previous_time) << "dirty " << dirty;
    previous_time = report.total_time_s;
  }
}

TEST(precopy, rejects_invalid_arguments) {
  const auto twin = s::vehicular_twin::with_total_mb(1, 100.0);
  EXPECT_THROW((void)s::run_precopy(twin, 0.0), vtm::util::contract_error);
  s::precopy_params bad;
  bad.max_rounds = 0;
  EXPECT_THROW((void)s::run_precopy(twin, 10.0, bad), vtm::util::contract_error);
}

// ---- mobility ---------------------------------------------------------------------

TEST(mobility, advance_moves_vehicle) {
  const s::vehicle_state v{100.0, 25.0};
  const auto moved = s::advance(v, 4.0);
  EXPECT_DOUBLE_EQ(moved.position_m, 200.0);
  EXPECT_THROW((void)s::advance(v, -1.0), vtm::util::contract_error);
}

TEST(mobility, chain_geometry) {
  const s::rsu_chain chain(4, 1000.0, 600.0);
  EXPECT_EQ(chain.count(), 4u);
  EXPECT_DOUBLE_EQ(chain.center_m(0), 1000.0);
  EXPECT_DOUBLE_EQ(chain.center_m(3), 4000.0);
  EXPECT_DOUBLE_EQ(chain.handover_position_m(1), 2500.0);
  EXPECT_DOUBLE_EQ(chain.link_distance_m(0, 2), 2000.0);
}

TEST(mobility, rejects_gapped_coverage) {
  EXPECT_THROW((void)s::rsu_chain(3, 1000.0, 400.0), vtm::util::contract_error);
}

TEST(mobility, serving_rsu_is_nearest) {
  const s::rsu_chain chain(3, 1000.0, 600.0);
  EXPECT_EQ(chain.serving_rsu(0.0), 0u);      // before the chain
  EXPECT_EQ(chain.serving_rsu(1200.0), 0u);
  EXPECT_EQ(chain.serving_rsu(1600.0), 1u);
  EXPECT_EQ(chain.serving_rsu(2499.0), 1u);
  EXPECT_EQ(chain.serving_rsu(2600.0), 2u);
  EXPECT_EQ(chain.serving_rsu(9999.0), 2u);   // past the chain
}

TEST(mobility, forward_handover_event) {
  const s::rsu_chain chain(3, 1000.0, 600.0);
  const s::vehicle_state v{1200.0, 30.0};  // serving RSU 0, boundary at 1500
  const auto event = chain.next_handover(v);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->from_rsu, 0u);
  EXPECT_EQ(event->to_rsu, 1u);
  EXPECT_NEAR(event->after_s, 10.0, 1e-9);
}

TEST(mobility, backward_handover_event) {
  const s::rsu_chain chain(3, 1000.0, 600.0);
  const s::vehicle_state v{1800.0, -30.0};  // serving RSU 1, boundary at 1500
  const auto event = chain.next_handover(v);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->from_rsu, 1u);
  EXPECT_EQ(event->to_rsu, 0u);
  EXPECT_NEAR(event->after_s, 10.0, 1e-9);
}

TEST(mobility, no_handover_for_stationary_or_terminal) {
  const s::rsu_chain chain(3, 1000.0, 600.0);
  EXPECT_FALSE(chain.next_handover({1200.0, 0.0}).has_value());
  EXPECT_FALSE(chain.next_handover({2900.0, 30.0}).has_value());  // last RSU
  EXPECT_FALSE(chain.next_handover({500.0, -30.0}).has_value());  // first RSU
}

TEST(mobility, consecutive_handovers_cover_the_chain) {
  const s::rsu_chain chain(5, 800.0, 450.0);
  s::vehicle_state v{400.0, 20.0};
  std::size_t crossings = 0;
  for (;;) {
    const auto event = chain.next_handover(v);
    if (!event) break;
    v = s::advance(v, event->after_s + 1e-9);
    ++crossings;
    ASSERT_LE(crossings, 10u) << "runaway handover loop";
  }
  EXPECT_EQ(crossings, 4u);  // 5 RSUs -> 4 boundaries
}
