// Streaming (open-system) fleet runs: exactly-once twin accounting across
// window flushes, bounded live population and slot arena under growing
// horizons, mid-stream reseed determinism, and the sharded / road-graph
// streaming paths.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "core/fleet_scenario.hpp"
#include "sim/road_graph.hpp"
#include "util/contracts.hpp"

namespace core = vtm::core;
namespace sim = vtm::sim;

namespace {

/// Short dense chain so vehicles traverse (and exit) well inside the
/// horizon, exercising slot recycling.
core::streaming_config stream_config(double horizon_s) {
  core::streaming_config config;
  config.base.rsu_count = 8;
  config.base.rsu_spacing_m = vtm::util::meters{200.0};
  config.base.coverage_radius_m = vtm::util::meters{120.0};
  config.base.seed = 17;
  config.arrival_rate_per_s = vtm::util::per_second{5.0};
  config.horizon_s = vtm::util::seconds{horizon_s};
  config.flush_period_s = vtm::util::seconds{10.0};
  return config;
}

/// Exactly-once accounting: every counter in `totals` is the sum of the
/// per-window flush deltas, the handover ledger balances, and each arrival
/// retires exactly once into exactly one flush.
void expect_stream_conserved(const core::streaming_result& r) {
  core::fleet_result sum;
  std::size_t flushed_migrations = 0;
  std::size_t flushed_vehicles = 0;
  for (const auto& flush : r.flushes) {
    sum.handovers += flush.handovers;
    sum.deferred += flush.deferred;
    sum.priced_out += flush.priced_out;
    sum.abandoned += flush.abandoned;
    sum.completed += flush.completed;
    sum.clearings += flush.clearings;
    flushed_migrations += flush.migrations.size();
    flushed_vehicles += flush.vehicles.size();
  }
  EXPECT_EQ(sum.handovers, r.totals.handovers);
  EXPECT_EQ(sum.deferred, r.totals.deferred);
  EXPECT_EQ(sum.priced_out, r.totals.priced_out);
  EXPECT_EQ(sum.abandoned, r.totals.abandoned);
  EXPECT_EQ(sum.completed, r.totals.completed);
  EXPECT_EQ(sum.clearings, r.totals.clearings);
  // The paper's conservation law, over the whole stream.
  EXPECT_EQ(r.totals.handovers,
            r.totals.completed + r.totals.priced_out + r.totals.abandoned);
  EXPECT_EQ(flushed_migrations, r.totals.migrations.size());
  EXPECT_EQ(r.totals.migrations.size(), r.totals.completed);
  // Every admitted vehicle retires exactly once.
  EXPECT_EQ(r.retired, r.arrivals);
  EXPECT_EQ(flushed_vehicles, r.arrivals);
  ASSERT_EQ(r.totals.vehicles.size(), r.arrivals);
  std::vector<std::size_t> seen(r.arrivals, 0);
  std::size_t twin_migrations = 0;
  for (const auto& flush : r.flushes) {
    for (const auto& v : flush.vehicles) {
      ASSERT_LT(v.id, r.arrivals);
      ++seen[v.id];
      twin_migrations += v.migrations;
    }
  }
  for (std::size_t id = 0; id < r.arrivals; ++id) EXPECT_EQ(seen[id], 1u);
  EXPECT_EQ(twin_migrations, r.totals.completed);
  // Records carry stable vehicle ids, not recycled slot indices.
  for (const auto& record : r.totals.migrations)
    EXPECT_LT(record.vehicle, r.arrivals);
  EXPECT_LE(r.slot_high_water, r.peak_live + 1);
  EXPECT_GE(r.peak_live, 1u);
}

void expect_stream_identical(const core::streaming_result& a,
                             const core::streaming_result& b) {
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.peak_live, b.peak_live);
  EXPECT_EQ(a.slot_high_water, b.slot_high_water);
  ASSERT_EQ(a.flushes.size(), b.flushes.size());
  for (std::size_t k = 0; k < a.flushes.size(); ++k) {
    EXPECT_EQ(a.flushes[k].handovers, b.flushes[k].handovers);
    EXPECT_EQ(a.flushes[k].completed, b.flushes[k].completed);
    EXPECT_EQ(a.flushes[k].priced_out, b.flushes[k].priced_out);
    EXPECT_EQ(a.flushes[k].msp_total_utility, b.flushes[k].msp_total_utility);
    EXPECT_EQ(a.flushes[k].vmu_total_utility, b.flushes[k].vmu_total_utility);
  }
  EXPECT_EQ(a.totals.handovers, b.totals.handovers);
  EXPECT_EQ(a.totals.completed, b.totals.completed);
  EXPECT_EQ(a.totals.msp_total_utility, b.totals.msp_total_utility);
  EXPECT_EQ(a.totals.vmu_total_utility, b.totals.vmu_total_utility);
  ASSERT_EQ(a.totals.migrations.size(), b.totals.migrations.size());
  for (std::size_t i = 0; i < a.totals.migrations.size(); ++i) {
    EXPECT_EQ(a.totals.migrations[i].vehicle, b.totals.migrations[i].vehicle);
    EXPECT_EQ(a.totals.migrations[i].finish_s,
              b.totals.migrations[i].finish_s);
    EXPECT_EQ(a.totals.migrations[i].price, b.totals.migrations[i].price);
  }
}

}  // namespace

TEST(streaming_fleet, flush_accounting_is_exactly_once) {
  const auto r = core::run_streaming_fleet(stream_config(60.0));
  EXPECT_GT(r.arrivals, 100u);  // λ = 5/s over 60 s
  EXPECT_GT(r.totals.handovers, 0u);
  EXPECT_GT(r.totals.completed, 0u);
  EXPECT_GE(r.flushes.size(), 6u);  // one per 10 s window + the final drain
  expect_stream_conserved(r);
}

TEST(streaming_fleet, deterministic_and_seed_sensitive) {
  const auto a = core::run_streaming_fleet(stream_config(40.0));
  const auto b = core::run_streaming_fleet(stream_config(40.0));
  expect_stream_identical(a, b);

  auto other = stream_config(40.0);
  other.base.seed = 18;
  const auto c = core::run_streaming_fleet(other);
  EXPECT_NE(a.totals.msp_total_utility, c.totals.msp_total_utility);
}

// Memory is bounded by the live population, not the arrival count: a 10x
// longer horizon admits ~10x the arrivals but reuses the same slot arena
// once the stream reaches steady state.
TEST(streaming_fleet, live_population_bounded_under_growing_horizon) {
  const auto short_run = core::run_streaming_fleet(stream_config(40.0));
  const auto long_run = core::run_streaming_fleet(stream_config(400.0));
  expect_stream_conserved(long_run);
  EXPECT_GT(long_run.arrivals, 5 * short_run.arrivals);
  // ISSUE bound: 10x the horizon must not grow the live population 10x.
  EXPECT_LT(long_run.peak_live, 4 * short_run.peak_live);
  EXPECT_LT(long_run.slot_high_water, long_run.arrivals / 4);
  // Slots really recycle: more twins retired than slots ever allocated.
  EXPECT_GT(long_run.retired, 2 * long_run.slot_high_water);
}

// Reseeding after flush k replaces the arrival/draw stream: flushes
// 0..k are bitwise-unaffected, later windows diverge, and the reseed
// itself is reproducible.
TEST(streaming_fleet, mid_stream_reseed_is_deterministic_and_prefix_stable) {
  auto reseeded = stream_config(60.0);
  reseeded.reseed_flush = 2;
  reseeded.reseed_seed = 777;
  const auto a = core::run_streaming_fleet(reseeded);
  const auto b = core::run_streaming_fleet(reseeded);
  expect_stream_identical(a, b);
  expect_stream_conserved(a);

  const auto plain = core::run_streaming_fleet(stream_config(60.0));
  ASSERT_GT(a.flushes.size(), 3u);
  ASSERT_GT(plain.flushes.size(), 3u);
  for (std::size_t k = 0; k <= 2; ++k) {
    EXPECT_EQ(a.flushes[k].handovers, plain.flushes[k].handovers);
    EXPECT_EQ(a.flushes[k].completed, plain.flushes[k].completed);
    EXPECT_EQ(a.flushes[k].msp_total_utility,
              plain.flushes[k].msp_total_utility);
  }
  EXPECT_NE(a.totals.msp_total_utility, plain.totals.msp_total_utility);
}

TEST(streaming_fleet, sharded_stream_conserves_and_crosses_shards) {
  auto config = stream_config(60.0);
  config.base.shard_count = 4;
  const auto r = core::run_streaming_fleet(config);
  expect_stream_conserved(r);
  EXPECT_GT(r.totals.cross_shard_transfers, 0u);
}

TEST(streaming_fleet, road_graph_stream_conserves) {
  core::streaming_config config;
  config.base.graph = std::make_shared<const sim::road_graph>(
      sim::road_graph::grid(3, 3, 600.0, 400.0));
  config.base.seed = 23;
  config.arrival_rate_per_s = vtm::util::per_second{4.0};
  config.horizon_s = vtm::util::seconds{90.0};
  config.flush_period_s = vtm::util::seconds{15.0};
  const auto r = core::run_streaming_fleet(config);
  EXPECT_GT(r.arrivals, 100u);
  EXPECT_GT(r.totals.completed, 0u);
  expect_stream_conserved(r);
}

TEST(streaming_fleet, rejects_invalid_streaming_configs) {
  auto bad_rate = stream_config(60.0);
  bad_rate.arrival_rate_per_s = vtm::util::per_second{0.0};
  EXPECT_THROW((void)core::run_streaming_fleet(bad_rate),
               vtm::util::contract_error);

  auto bad_flush = stream_config(60.0);
  bad_flush.flush_period_s = vtm::util::seconds{-1.0};
  EXPECT_THROW((void)core::run_streaming_fleet(bad_flush),
               vtm::util::contract_error);

  auto bad_horizon = stream_config(60.0);
  bad_horizon.horizon_s = vtm::util::seconds{0.0};
  EXPECT_THROW((void)core::run_streaming_fleet(bad_horizon),
               vtm::util::contract_error);

  auto oligopoly = stream_config(60.0);
  oligopoly.base.mode = core::market_mode::oligopoly;
  EXPECT_THROW((void)core::run_streaming_fleet(oligopoly),
               vtm::util::contract_error);
}
