// Golden regression harness for the paper reproduction (DESIGN.md §9).
//
// Pins the fig3a–d closed-form headline numbers, the fig2 RL headline, and
// PR 2's fleet-engine aggregates at fixed seeds, so pricing-backend work (or
// any other refactor) cannot silently shift the paper reproduction:
//   - fig3* and the fleet aggregates are deterministic closed-form/engine
//     outputs and are pinned (effectively) exactly — EXPECT_DOUBLE_EQ is a
//     4-ulp band, so any real drift fails loudly;
//   - the fig2 number is a short RL training run, pinned with a tolerance
//     band (training is deterministic per seed, but the pinned value is a
//     quality gate, not a bit pattern).
//
// Goldens were captured from the PR-2 engine (analytic oracle pricing) and
// re-verified bitwise-identical after the pricing-backend refactor. They are
// build-flag sensitive (-march=native FMA contraction), which is why this
// suite carries the tier2 ctest label and CI's sanitize job (different
// flags) runs tier1 only. If a *deliberate* economics change moves these
// numbers, re-capture them in the same commit and say so in the PR.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/fleet_scenario.hpp"
#include "core/market.hpp"
#include "core/mechanism.hpp"

namespace core = vtm::core;

namespace {

core::market_params two_vmu_market(double unit_cost) {
  core::market_params params;
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  params.unit_cost = unit_cost;
  return params;
}

core::market_params n_vmu_market(std::size_t n) {
  core::market_params params;
  params.vmus.assign(n, core::vmu_profile{500.0, 100.0});
  return params;
}

struct se_golden {
  double price;
  double leader_utility;
  double vmu_utility;
  double total_demand;
};

void expect_equilibrium(const core::market_params& params,
                        const se_golden& golden) {
  const auto eq = core::solve_equilibrium(core::migration_market(params));
  EXPECT_DOUBLE_EQ(eq.price, golden.price);
  EXPECT_DOUBLE_EQ(eq.leader_utility, golden.leader_utility);
  EXPECT_DOUBLE_EQ(eq.total_vmu_utility, golden.vmu_utility);
  EXPECT_DOUBLE_EQ(eq.total_demand, golden.total_demand);
}

}  // namespace

// Fig. 3(a)/(b): SE price and both sides' utilities vs unit cost C = 5..9,
// two VMUs with alpha = (500, 500), D = (200, 100) MB.
TEST(fig_golden, fig3ab_cost_sweep_headline) {
  const std::vector<se_golden> goldens{
      {25.344693410312608, 644.35946909130166, 879.30293655921150,
       31.672114988210122},
      {27.763720587761505, 614.48452912349035, 806.97156624879949,
       28.234351137049440},
      {29.988245658721695, 587.63754979284261, 747.21165410315393,
       25.562522626422957},
      {32.058783110099320, 563.18781159816024, 696.56276499089358,
       23.408823672455281},
      {34.003474400609974, 540.69721527768411, 652.80848342559966,
       21.624883270802297},
  };
  for (std::size_t i = 0; i < goldens.size(); ++i)
    expect_equilibrium(two_vmu_market(5.0 + static_cast<double>(i)),
                       goldens[i]);
}

// Fig. 3(c)/(d): SE headline vs VMU count N = 2..6, identical VMUs with
// alpha = 500, D = 100 MB. N >= 4 saturates the 50 MHz capacity.
TEST(fig_golden, fig3cd_vmu_sweep_headline) {
  const std::vector<se_golden> goldens{
      {31.040783271272570, 703.78943495141812, 986.94242635061096,
       27.026431103085059},
      {31.040783271272570, 1055.6841524271272, 1480.4136395259166,
       40.539646654627589},
      {33.124372860638601, 1406.2186430319300, 1865.5745458698073, 50.0},
      {39.699473708015766, 1734.9736854007883, 1964.5963525711600, 50.0},
      {45.754199125380282, 2037.7099562690134, 2025.9371669251952,
       49.999999999999986},
  };
  for (std::size_t i = 0; i < goldens.size(); ++i)
    expect_equilibrium(n_vmu_market(2 + i), goldens[i]);
}

// Fig. 2 headline: a short PPO run (E=80, lr=3e-4, seed 42) on the fig2
// market converges to the Stackelberg equilibrium. RL gets a tolerance band,
// not a bit pattern: the gate is "still converges this well, this fast".
TEST(fig_golden, fig2_learned_convergence_headline) {
  core::mechanism_config config;
  config.trainer.episodes = 80;
  config.ppo.learning_rate = 3e-4;
  config.seed = 42;
  const auto result = core::run_learning_mechanism(two_vmu_market(5.0), config);
  EXPECT_DOUBLE_EQ(result.oracle.leader_utility, 644.35946909130166);
  // Captured optimality at this seed/budget: 0.99967.
  EXPECT_NEAR(result.optimality(), 0.9997, 0.03);
  EXPECT_NEAR(result.learned_price, 26.18, 3.0);
}

// PR 2's fleet aggregates (joint clearing, per-RSU pools, 8 RSUs, 60 s,
// seed 2023) — pinned exactly. This is the "fig" of the fleet engine: if a
// pricing-backend change moves any of these, it changed oracle fleets.
TEST(fig_golden, fleet_joint_aggregates) {
  core::fleet_config config;
  config.rsu_count = 8;
  config.vehicle_count = 100;
  config.duration_s = vtm::util::seconds{60.0};
  config.record_migrations = false;
  const auto r100 = core::run_fleet_scenario(config);
  EXPECT_EQ(r100.handovers, 156u);
  EXPECT_EQ(r100.completed, 156u);
  EXPECT_EQ(r100.deferred, 0u);
  EXPECT_EQ(r100.priced_out, 0u);
  EXPECT_EQ(r100.abandoned, 0u);
  EXPECT_EQ(r100.clearings, 142u);
  EXPECT_EQ(r100.max_cohort, 3u);
  EXPECT_DOUBLE_EQ(r100.msp_total_utility, 132813.78736519371);
  EXPECT_DOUBLE_EQ(r100.vmu_total_utility, 194336.87203640776);
  EXPECT_DOUBLE_EQ(r100.mean_aotm, 0.21641351796966005);
  EXPECT_DOUBLE_EQ(r100.mean_amplification, 1.0530720013953168);
  EXPECT_DOUBLE_EQ(r100.mean_price, 34.602495973050651);

  config.vehicle_count = 1000;
  const auto r1000 = core::run_fleet_scenario(config);
  EXPECT_EQ(r1000.handovers, 1550u);
  EXPECT_EQ(r1000.completed, 1550u);
  EXPECT_EQ(r1000.deferred, 15u);
  EXPECT_EQ(r1000.max_cohort, 8u);
  EXPECT_DOUBLE_EQ(r1000.msp_total_utility, 890911.36889007816);
  EXPECT_DOUBLE_EQ(r1000.vmu_total_utility, 1552240.8084397218);
  EXPECT_DOUBLE_EQ(r1000.mean_price, 44.035863523444235);
}

// market_mode::oligopoly with a single MSP (empty roster) must clear
// through the monopoly path verbatim: the tier2-pinned joint aggregates,
// reproduced bitwise by the competitive engine's M = 1 delegation.
TEST(fig_golden, fleet_oligopoly_m1_matches_joint_pins) {
  core::fleet_config config;
  config.rsu_count = 8;
  config.vehicle_count = 100;
  config.duration_s = vtm::util::seconds{60.0};
  config.record_migrations = false;
  config.mode = core::market_mode::oligopoly;
  const auto r100 = core::run_fleet_scenario(config);
  EXPECT_EQ(r100.handovers, 156u);
  EXPECT_EQ(r100.completed, 156u);
  EXPECT_EQ(r100.clearings, 142u);
  EXPECT_EQ(r100.max_cohort, 3u);
  EXPECT_DOUBLE_EQ(r100.msp_total_utility, 132813.78736519371);
  EXPECT_DOUBLE_EQ(r100.vmu_total_utility, 194336.87203640776);
  EXPECT_DOUBLE_EQ(r100.mean_aotm, 0.21641351796966005);
  EXPECT_DOUBLE_EQ(r100.mean_amplification, 1.0530720013953168);
  EXPECT_DOUBLE_EQ(r100.mean_price, 34.602495973050651);
  ASSERT_EQ(r100.msp_utilities.size(), 1u);
  EXPECT_DOUBLE_EQ(r100.msp_utilities[0], 132813.78736519371);

  config.vehicle_count = 1000;
  const auto r1000 = core::run_fleet_scenario(config);
  EXPECT_EQ(r1000.handovers, 1550u);
  EXPECT_EQ(r1000.completed, 1550u);
  EXPECT_EQ(r1000.deferred, 15u);
  EXPECT_EQ(r1000.max_cohort, 8u);
  EXPECT_DOUBLE_EQ(r1000.msp_total_utility, 890911.36889007816);
  EXPECT_DOUBLE_EQ(r1000.vmu_total_utility, 1552240.8084397218);
  EXPECT_DOUBLE_EQ(r1000.mean_price, 44.035863523444235);
}

// Legacy sequential (market_mode::single) fleet path, also pinned: the
// monopoly curves' engine must survive backend work untouched.
TEST(fig_golden, fleet_sequential_aggregates) {
  core::fleet_config config;
  config.rsu_count = 6;
  config.vehicle_count = 40;
  config.duration_s = vtm::util::seconds{60.0};
  config.mode = core::market_mode::single;
  config.record_migrations = false;
  const auto r = core::run_fleet_scenario(config);
  EXPECT_EQ(r.handovers, 60u);
  EXPECT_EQ(r.completed, 60u);
  EXPECT_EQ(r.deferred, 0u);
  EXPECT_EQ(r.priced_out, 0u);
  EXPECT_EQ(r.abandoned, 0u);
  EXPECT_DOUBLE_EQ(r.msp_total_utility, 53148.904790868066);
  EXPECT_DOUBLE_EQ(r.vmu_total_utility, 78339.051308750684);
  EXPECT_DOUBLE_EQ(r.mean_price, 33.461380743249386);
}

// PR 4's shard refactor must leave the serial engine bitwise untouched:
// three regimes (default, non-uniform chain, congested) captured from the
// pre-shard engine at the commit that introduced the shard_coordinator.
// shard_count = 1 (the default here) routes through the coordinator, so any
// drift means the refactor — not just a backend — changed oracle fleets.
TEST(fig_golden, fleet_shard1_matches_pre_shard_engine) {
  {
    core::fleet_config config;  // defaults: 8 RSUs, 100 vehicles, 120 s
    const auto r = core::run_fleet_scenario(config);
    EXPECT_EQ(r.handovers, 276u);
    EXPECT_EQ(r.completed, 276u);
    EXPECT_DOUBLE_EQ(r.msp_total_utility, 233535.43160029824);
    EXPECT_DOUBLE_EQ(r.vmu_total_utility, 340469.03208935249);
    EXPECT_DOUBLE_EQ(r.mean_aotm, 0.21747167989343172);
    EXPECT_DOUBLE_EQ(r.mean_amplification, 1.0532634933993577);
    EXPECT_DOUBLE_EQ(r.mean_price, 34.533974881762937);
  }
  {
    core::fleet_config config;
    config.rsu_positions_m = {vtm::util::meters{800.0}, vtm::util::meters{2000.0}, vtm::util::meters{2900.0}, vtm::util::meters{4400.0}, vtm::util::meters{5200.0}, vtm::util::meters{6800.0}};
    config.coverage_radius_m = vtm::util::meters{900.0};
    config.vehicle_count = 80;
    config.duration_s = vtm::util::seconds{90.0};
    config.seed = 99;
    const auto r = core::run_fleet_scenario(config);
    EXPECT_EQ(r.handovers, 146u);
    EXPECT_EQ(r.completed, 146u);
    EXPECT_DOUBLE_EQ(r.msp_total_utility, 125013.6466208004);
    EXPECT_DOUBLE_EQ(r.vmu_total_utility, 180827.28091577278);
    EXPECT_DOUBLE_EQ(r.mean_aotm, 0.22553041131717425);
    EXPECT_DOUBLE_EQ(r.mean_price, 34.492381899275408);
  }
  {
    core::fleet_config config;
    config.vehicle_count = 60;
    config.bandwidth_per_pool_mhz = vtm::util::megahertz{6.0};
    config.min_alpha = 4000.0;
    config.max_alpha = 5000.0;
    config.min_data_mb = vtm::util::megabytes{250.0};
    config.duration_s = vtm::util::seconds{90.0};
    config.seed = 7;
    const auto r = core::run_fleet_scenario(config);
    EXPECT_EQ(r.handovers, 134u);
    EXPECT_EQ(r.deferred, 50u);
    EXPECT_EQ(r.completed, 134u);
    EXPECT_DOUBLE_EQ(r.msp_total_utility, 28495.218509347436);
    EXPECT_DOUBLE_EQ(r.vmu_total_utility, 256604.17321267969);
    EXPECT_DOUBLE_EQ(r.mean_aotm, 4.7672394372724414);
    EXPECT_DOUBLE_EQ(r.mean_price, 50.000000000000007);
  }
}
