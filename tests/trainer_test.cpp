// Tests for the Algorithm-1 training driver: update cadence, episode
// accounting, early termination, and evaluation determinism.
#include <gtest/gtest.h>

#include <vector>

#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "rl/trainer.hpp"
#include "util/contracts.hpp"

namespace rl = vtm::rl;
namespace nn = vtm::nn;

namespace {

/// Instrumented environment: counts steps/resets, terminates after a fixed
/// number of rounds, pays a constant utility.
class counting_env final : public rl::environment {
 public:
  explicit counting_env(std::size_t episode_length)
      : episode_length_(episode_length) {}

  std::size_t observation_dim() const override { return 2; }
  std::size_t action_dim() const override { return 1; }
  double action_low() const override { return -1.0; }
  double action_high() const override { return 1.0; }

  nn::tensor reset() override {
    ++resets;
    round_ = 0;
    return nn::tensor({1, 2}, 0.0);
  }

  rl::step_result step(const nn::tensor&) override {
    ++steps;
    ++round_;
    rl::step_result result;
    result.reward = 1.0;
    result.observation = nn::tensor({1, 2}, 0.1);
    result.done = round_ >= episode_length_;
    result.info["leader_utility"] = 5.0;
    return result;
  }

  std::size_t steps = 0;
  std::size_t resets = 0;

 private:
  std::size_t episode_length_;
  std::size_t round_ = 0;
};

struct harness {
  counting_env env;
  vtm::util::rng gen{1};
  rl::actor_critic policy;
  vtm::util::rng ppo_gen{2};
  rl::ppo learner;

  harness(std::size_t episode_length, rl::ppo_config ppo_config = {})
      : env(episode_length),
        policy(
            [] {
              rl::actor_critic_config config;
              config.obs_dim = 2;
              config.hidden = {8};
              return config;
            }(),
            gen),
        learner(policy, ppo_config, ppo_gen) {}
};

}  // namespace

TEST(trainer, validates_configuration) {
  harness h(10);
  rl::trainer_config bad;
  bad.episodes = 0;
  EXPECT_THROW((void)rl::trainer(h.env, h.policy, h.learner, bad),
               vtm::util::contract_error);
}

TEST(trainer, rejects_mismatched_dimensions) {
  harness h(10);
  vtm::util::rng gen(3);
  rl::actor_critic_config wrong;
  wrong.obs_dim = 7;  // env has 2
  wrong.hidden = {8};
  rl::actor_critic mismatched(wrong, gen);
  rl::trainer_config config;
  EXPECT_THROW((void)rl::trainer(h.env, mismatched, h.learner, config),
               vtm::util::contract_error);
}

TEST(trainer, runs_exactly_episodes_times_rounds) {
  harness h(/*episode_length=*/1000);  // env never terminates early
  rl::trainer_config config;
  config.episodes = 3;
  config.rounds_per_episode = 25;
  config.update_interval = 5;
  rl::trainer driver(h.env, h.policy, h.learner, config);
  const auto history = driver.train();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(h.env.steps, 3u * 25u);
  EXPECT_EQ(h.env.resets, 3u);
  for (const auto& episode : history) {
    EXPECT_DOUBLE_EQ(episode.episode_return, 25.0);  // reward 1 per round
    EXPECT_DOUBLE_EQ(episode.mean_utility, 5.0);
  }
}

TEST(trainer, stops_episode_on_done) {
  harness h(/*episode_length=*/7);  // env terminates before the round budget
  rl::trainer_config config;
  config.episodes = 2;
  config.rounds_per_episode = 50;
  config.update_interval = 4;
  rl::trainer driver(h.env, h.policy, h.learner, config);
  const auto history = driver.train();
  EXPECT_EQ(h.env.steps, 2u * 7u);
  EXPECT_DOUBLE_EQ(history[0].episode_return, 7.0);
}

TEST(trainer, ppo_updates_fire_at_the_interval) {
  harness h(1000);
  rl::trainer_config config;
  config.episodes = 1;
  config.rounds_per_episode = 100;
  config.update_interval = 20;
  rl::trainer driver(h.env, h.policy, h.learner, config);
  (void)driver.train();
  // 100 rounds / |I| = 20 -> 5 updates x M epochs each.
  EXPECT_EQ(h.learner.steps(), 5u * h.learner.config().epochs);
}

TEST(trainer, partial_final_buffer_still_updates) {
  harness h(1000);
  rl::trainer_config config;
  config.episodes = 1;
  config.rounds_per_episode = 25;  // 20 + partial 5
  config.update_interval = 20;
  rl::trainer driver(h.env, h.policy, h.learner, config);
  (void)driver.train();
  EXPECT_EQ(h.learner.steps(), 2u * h.learner.config().epochs);
}

TEST(trainer, callback_ordering_and_count) {
  harness h(1000);
  rl::trainer_config config;
  config.episodes = 4;
  config.rounds_per_episode = 10;
  rl::trainer driver(h.env, h.policy, h.learner, config);
  std::vector<std::size_t> seen;
  (void)driver.train(
      [&](const rl::episode_stats& stats) { seen.push_back(stats.episode); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(trainer, evaluate_is_deterministic_and_learning_free) {
  harness h(1000);
  rl::trainer_config config;
  config.episodes = 1;
  config.rounds_per_episode = 10;
  rl::trainer driver(h.env, h.policy, h.learner, config);
  const std::size_t steps_before = h.learner.steps();
  const auto eval1 = driver.evaluate();
  const auto eval2 = driver.evaluate();
  EXPECT_EQ(h.learner.steps(), steps_before);  // no updates during eval
  EXPECT_DOUBLE_EQ(eval1.final_action, eval2.final_action);
  EXPECT_DOUBLE_EQ(eval1.mean_utility, eval2.mean_utility);
}

TEST(trainer, same_seed_reproduces_training_run) {
  auto run = [](std::uint64_t seed) {
    harness h(1000);
    rl::trainer_config config;
    config.episodes = 3;
    config.rounds_per_episode = 10;
    config.seed = seed;
    rl::trainer driver(h.env, h.policy, h.learner, config);
    double sum = 0.0;
    for (const auto& e : driver.train()) sum += e.mean_action;
    return sum;
  };
  EXPECT_DOUBLE_EQ(run(5), run(5));
  // Different action-sampling seeds take different trajectories.
  EXPECT_NE(run(5), run(6));
}
