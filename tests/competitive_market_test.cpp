// Competitive multi-MSP fleet market (market_mode::oligopoly, DESIGN.md
// §11): the static clearing engine's invariants, the M = 1 bitwise
// delegation onto the monopoly path, and the fleet-level economics —
// equilibrium prices below the monopoly price, falling toward cost as the
// share sharpness λ grows, deterministic and conservation-checked at every
// shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "core/competitive_market.hpp"
#include "core/fleet_scenario.hpp"
#include "core/fleet_shard.hpp"
#include "core/spot_market.hpp"
#include "rl/policy.hpp"
#include "sim/mobility.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace core = vtm::core;
namespace rl = vtm::rl;

namespace {

core::clearing_request draw_request(vtm::util::rng& gen, std::size_t vehicle) {
  core::clearing_request request;
  request.vehicle = vehicle;
  request.profile.alpha = gen.uniform(1.0, 3000.0);
  request.profile.data_mb = gen.uniform(50.0, 400.0);
  request.to_rsu = 1;
  return request;
}

/// An *untrained* competitor-aware pricing network: the invariants must not
/// depend on the policy being any good.
std::shared_ptr<const core::learned_pricer> random_competitor_pricer(
    std::uint64_t seed, double unit_cost, double price_cap) {
  rl::actor_critic_config net;
  net.obs_dim = core::competitive_feature_dim;
  net.act_dim = 1;
  net.hidden = {16, 16};
  vtm::util::rng gen(seed);
  core::learned_pricer_config config;
  config.hidden = net.hidden;
  config.unit_cost = unit_cost;
  config.price_cap = price_cap;
  config.competitor_aware = true;
  return std::make_shared<const core::learned_pricer>(
      config, rl::actor_critic(net, gen));
}

void check_outcome_invariants(const core::competitive_market_config& config,
                              std::size_t submitted,
                              std::span<const double> available,
                              const core::competitive_outcome& outcome,
                              std::size_t pending_after) {
  // Exactly-once resolution.
  EXPECT_EQ(outcome.grants.size() + outcome.priced_out.size() +
                outcome.deferred,
            submitted);
  EXPECT_EQ(pending_after, outcome.deferred);

  // Per-seller conservation and price boxes; per-grant accounting.
  std::vector<double> sold(config.msps.size(), 0.0);
  for (const auto& grant : outcome.grants) {
    EXPECT_GT(grant.bandwidth_mhz, 0.0);
    double slice_total = 0.0;
    double payment = 0.0;
    for (const auto& slice : grant.slices) {
      ASSERT_LT(slice.msp, config.msps.size());
      EXPECT_GT(slice.bandwidth_mhz, 0.0);
      EXPECT_GE(slice.price, config.msps[slice.msp].unit_cost);
      EXPECT_LE(slice.price,
                config.msps[slice.msp].price_cap * (1.0 + 1e-12));
      sold[slice.msp] += slice.bandwidth_mhz;
      slice_total += slice.bandwidth_mhz;
      payment += slice.price * slice.bandwidth_mhz;
    }
    EXPECT_DOUBLE_EQ(grant.bandwidth_mhz, slice_total);
    // Effective price is the payment-weighted mean of the posted prices.
    EXPECT_NEAR(grant.price * grant.bandwidth_mhz, payment,
                1e-9 * std::max(1.0, payment));
  }
  for (std::size_t m = 0; m < config.msps.size(); ++m)
    EXPECT_LE(sold[m], available[m] * (1.0 + 1e-12) + 1e-12);
}

core::fleet_config duopoly_fleet(double sharpness = 0.25) {
  core::fleet_config config;  // defaults: 8 RSUs, 100 vehicles, 120 s
  config.mode = core::market_mode::oligopoly;
  config.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}, {vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}};
  config.share_sharpness = sharpness;
  return config;
}

void expect_fleet_identical(const core::fleet_result& a,
                            const core::fleet_result& b) {
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.deferred, b.deferred);
  EXPECT_EQ(a.priced_out, b.priced_out);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.clearings, b.clearings);
  EXPECT_EQ(a.max_cohort, b.max_cohort);
  EXPECT_EQ(a.msp_total_utility, b.msp_total_utility);
  EXPECT_EQ(a.vmu_total_utility, b.vmu_total_utility);
  EXPECT_EQ(a.mean_aotm, b.mean_aotm);
  EXPECT_EQ(a.mean_amplification, b.mean_amplification);
  EXPECT_EQ(a.mean_price, b.mean_price);
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_EQ(a.migrations[i].vehicle, b.migrations[i].vehicle);
    EXPECT_EQ(a.migrations[i].price, b.migrations[i].price);
    EXPECT_EQ(a.migrations[i].bandwidth_mhz, b.migrations[i].bandwidth_mhz);
    EXPECT_EQ(a.migrations[i].finish_s, b.migrations[i].finish_s);
  }
}

void expect_fleet_conserved(const core::fleet_config& config,
                            const core::fleet_result& r) {
  EXPECT_EQ(r.handovers, r.completed + r.priced_out + r.abandoned);
  ASSERT_EQ(r.vehicles.size(), config.vehicle_count);
  std::size_t twin_migrations = 0;
  for (const auto& v : r.vehicles) twin_migrations += v.migrations;
  EXPECT_EQ(twin_migrations, r.completed);
  const auto msps = core::resolved_fleet_msps(config);
  ASSERT_EQ(r.msp_utilities.size(), msps.size());
  ASSERT_EQ(r.msp_sold_mhz.size(), msps.size());
  // Per-seller realized profit decomposes the total (summation order may
  // differ across shards, hence near, not bitwise).
  const double split = std::accumulate(r.msp_utilities.begin(),
                                       r.msp_utilities.end(), 0.0);
  EXPECT_NEAR(split, r.msp_total_utility,
              1e-9 * std::max(1.0, std::abs(r.msp_total_utility)));
}

}  // namespace

// ---- static clearing engine -------------------------------------------------

// A single-MSP oligopoly book clears through the monopoly engine verbatim:
// every grant, price, and utility is bitwise the spot_market joint clearing.
TEST(competitive_market, m1_delegates_bitwise_to_spot_market) {
  vtm::util::rng gen(99);
  for (int trial = 0; trial < 50; ++trial) {
    core::competitive_market_config config;
    config.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}};
    core::competitive_market oligo(config);

    core::spot_market_config mono_config;
    mono_config.discipline = core::clearing_discipline::joint;
    mono_config.link = config.link;
    core::spot_market mono(mono_config);

    const auto cohort = static_cast<std::size_t>(gen.uniform_int(1, 10));
    for (std::size_t v = 0; v < cohort; ++v) {
      const auto request = draw_request(gen, v);
      oligo.submit(request);
      mono.submit(request);
    }
    const double available = gen.uniform(0.05, 80.0);
    const std::vector<double> offers{available};
    const auto competitive = oligo.clear(offers);
    const auto monopoly = mono.clear(available);

    EXPECT_EQ(competitive.deferred, monopoly.deferred);
    EXPECT_EQ(competitive.priced_out.size(), monopoly.priced_out.size());
    ASSERT_EQ(competitive.grants.size(), monopoly.grants.size());
    for (std::size_t g = 0; g < monopoly.grants.size(); ++g) {
      EXPECT_EQ(competitive.grants[g].price, monopoly.grants[g].price);
      EXPECT_EQ(competitive.grants[g].bandwidth_mhz,
                monopoly.grants[g].bandwidth_mhz);
      EXPECT_EQ(competitive.grants[g].vmu_utility,
                monopoly.grants[g].vmu_utility);
      EXPECT_EQ(competitive.grants[g].msp_utility,
                monopoly.grants[g].msp_utility);
      ASSERT_EQ(competitive.grants[g].slices.size(), 1u);
      EXPECT_EQ(competitive.grants[g].slices[0].msp, 0u);
    }
  }
}

// Randomized rosters x cohorts x availabilities: whatever the price vector,
// the clearing preserves exactly-once resolution, per-seller conservation,
// and per-MSP price boxes.
TEST(competitive_market, oligopoly_clearing_invariants_randomized) {
  vtm::util::rng gen(20260730);
  for (int trial = 0; trial < 150; ++trial) {
    core::competitive_market_config config;
    const auto msps = static_cast<std::size_t>(gen.uniform_int(2, 4));
    for (std::size_t m = 0; m < msps; ++m) {
      core::fleet_msp msp;
      msp.unit_cost = gen.uniform(2.0, 8.0);
      msp.price_cap = msp.unit_cost + gen.uniform(10.0, 50.0);
      msp.bandwidth_per_pool_mhz = vtm::util::megahertz{gen.uniform(1.0, 60.0)};
      config.msps.push_back(msp);
    }
    config.share_sharpness = gen.uniform(0.05, 2.0);
    core::competitive_market market(config);

    const auto cohort = static_cast<std::size_t>(gen.uniform_int(1, 12));
    for (std::size_t v = 0; v < cohort; ++v)
      market.submit(draw_request(gen, v));
    std::vector<double> available(msps);
    for (double& mhz : available) mhz = gen.uniform(0.0, 60.0);

    const auto outcome = market.clear(available);
    check_outcome_invariants(config, cohort, available, outcome,
                             market.pending());
  }
}

// Starved sellers sit a clearing out; when every seller is starved the whole
// cohort defers (and stays in the book for the next clearing).
TEST(competitive_market, starved_sellers_defer_the_cohort) {
  core::competitive_market_config config;
  config.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}, {vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}};
  core::competitive_market market(config);
  vtm::util::rng gen(3);
  for (std::size_t v = 0; v < 4; ++v) market.submit(draw_request(gen, v));

  const std::vector<double> starved{0.1, 0.2};  // both below min_clearable
  const auto outcome = market.clear(starved);
  EXPECT_TRUE(outcome.grants.empty());
  EXPECT_TRUE(outcome.priced_out.empty());
  EXPECT_EQ(outcome.deferred, 4u);
  EXPECT_EQ(outcome.markets_cleared, 0u);
  EXPECT_EQ(market.pending(), 4u);

  // One seller recovers: the cohort clears through it alone, and the
  // starved seller posts no price (sat out).
  const std::vector<double> partial{0.1, 50.0};
  const auto cleared = market.clear(partial);
  EXPECT_EQ(cleared.markets_cleared, 1u);
  EXPECT_EQ(cleared.prices[0], 0.0);
  EXPECT_GT(cleared.prices[1], 0.0);
  for (const auto& grant : cleared.grants)
    for (const auto& slice : grant.slices) EXPECT_EQ(slice.msp, 1u);
}

// Symmetric duopoly on one cohort, ample capacity: competition prices
// strictly below the monopoly equilibrium, and sharper λ pushes prices
// toward cost. Capacity must not bind here — undercutting only pays while
// a seller can actually serve the share it wins (see the scarce-capacity
// companion test below for the rationing regime).
TEST(competitive_market, duopoly_undercuts_monopoly_on_one_cohort) {
  vtm::util::rng gen(11);
  std::vector<core::clearing_request> cohort;
  for (std::size_t v = 0; v < 6; ++v) cohort.push_back(draw_request(gen, v));

  core::spot_market_config mono_config;
  core::spot_market mono(mono_config);
  for (const auto& request : cohort) mono.submit(request);
  const auto monopoly = mono.clear(50.0);
  ASSERT_FALSE(monopoly.grants.empty());

  double soft_price = 0.0;
  double sharp_price = 0.0;
  for (const double lambda : {0.25, 4.0}) {
    core::competitive_market_config config;
    config.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{1000.0}}, {vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{1000.0}}};
    config.share_sharpness = lambda;
    core::competitive_market market(config);
    for (const auto& request : cohort) market.submit(request);
    const std::vector<double> offers{1000.0, 1000.0};
    const auto outcome = market.clear(offers);
    ASSERT_FALSE(outcome.grants.empty());
    (lambda < 1.0 ? soft_price : sharp_price) = outcome.grants[0].price;
  }
  EXPECT_LT(soft_price, monopoly.price);
  EXPECT_LT(sharp_price, soft_price);
  EXPECT_GT(sharp_price, 5.0);  // never below cost
}

// Scarce capacity flips the duopoly into the Bertrand–Edgeworth rationing
// regime: with both sellers capacity-bound, undercutting wins share that
// cannot be served and raising price sheds share that was pure profit, so
// the equilibrium pins to the market-clearing price where cohort demand
// equals total capacity — *independent of λ* up to solver tolerance. (A
// strict λ-ordering assertion here would compare pure fixed-point noise;
// it flipped sign with -ffp-contract and hid this regime for a while.)
TEST(competitive_market, scarce_duopoly_clears_at_rationing_price) {
  vtm::util::rng gen(11);
  std::vector<core::clearing_request> cohort;
  for (std::size_t v = 0; v < 6; ++v) cohort.push_back(draw_request(gen, v));

  double soft_price = 0.0;
  double sharp_price = 0.0;
  for (const double lambda : {0.25, 4.0}) {
    core::competitive_market_config config;
    config.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}, {vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}};
    config.share_sharpness = lambda;
    core::competitive_market market(config);
    for (const auto& request : cohort) market.submit(request);
    const std::vector<double> offers{50.0, 50.0};
    const auto outcome = market.clear(offers);
    ASSERT_FALSE(outcome.grants.empty());
    (lambda < 1.0 ? soft_price : sharp_price) = outcome.grants[0].price;

    // Every seller sells its full capacity: the cap binds for both.
    std::vector<double> sold(config.msps.size(), 0.0);
    for (const auto& grant : outcome.grants)
      for (const auto& slice : grant.slices)
        sold[slice.msp] += slice.bandwidth_mhz;
    for (std::size_t m = 0; m < sold.size(); ++m)
      EXPECT_NEAR(sold[m], 50.0, 1e-6) << "seller " << m;
  }
  // The rationing price does not move with λ (fixed_point_tol = 1e-7; the
  // two solves land within a few ULP-scale multiples of it).
  EXPECT_NEAR(sharp_price, soft_price, 1e-3);
  EXPECT_GT(soft_price, 5.0);
}

// The learned seller seat: an untrained competitor-aware pricer posts a
// price inside its own box, rivals best-respond, and every clearing
// invariant still holds (the mechanism enforces them, not the policy).
TEST(competitive_market, learned_seat_respects_invariants) {
  vtm::util::rng gen(55);
  for (int trial = 0; trial < 40; ++trial) {
    core::competitive_market_config config;
    config.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}, {vtm::util::meters{0.0}, 4.0, 40.0, vtm::util::megahertz{30.0}}, {vtm::util::meters{0.0}, 6.0, 60.0, vtm::util::megahertz{40.0}}};
    config.learned_msp = 1;
    config.pricer = random_competitor_pricer(
        700 + static_cast<std::uint64_t>(trial), config.msps[1].unit_cost,
        config.msps[1].price_cap);
    core::competitive_market market(config);

    const auto cohort = static_cast<std::size_t>(gen.uniform_int(1, 8));
    for (std::size_t v = 0; v < cohort; ++v)
      market.submit(draw_request(gen, v));
    std::vector<double> available{gen.uniform(1.0, 50.0),
                                  gen.uniform(1.0, 30.0),
                                  gen.uniform(1.0, 40.0)};
    const auto outcome = market.clear(available);
    check_outcome_invariants(config, cohort, available, outcome,
                             market.pending());
    if (outcome.markets_cleared > 0) {
      EXPECT_GE(outcome.prices[1], config.msps[1].unit_cost);
      EXPECT_LE(outcome.prices[1], config.msps[1].price_cap);
    }
  }
}

TEST(competitive_market, validates_config) {
  core::competitive_market_config no_msps;
  no_msps.msps.clear();
  EXPECT_THROW((void)core::competitive_market{no_msps},
               vtm::util::contract_error);

  core::competitive_market_config bad_cost;
  bad_cost.msps = {{vtm::util::meters{0.0}, -1.0, 50.0, vtm::util::megahertz{50.0}}};
  EXPECT_THROW((void)core::competitive_market{bad_cost},
               vtm::util::contract_error);

  core::competitive_market_config seat_without_pricer;
  seat_without_pricer.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}, {vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}};
  seat_without_pricer.learned_msp = 0;
  EXPECT_THROW((void)core::competitive_market{seat_without_pricer},
               vtm::util::contract_error);

  // A monopoly-dim pricer cannot fill a competitor-aware seat.
  core::competitive_market_config wrong_dim = seat_without_pricer;
  rl::actor_critic_config net;
  net.obs_dim = core::cohort_feature_dim;
  net.act_dim = 1;
  net.hidden = {8};
  vtm::util::rng gen(1);
  core::learned_pricer_config pricer_config;
  pricer_config.hidden = net.hidden;
  wrong_dim.pricer = std::make_shared<const core::learned_pricer>(
      pricer_config, rl::actor_critic(net, gen));
  EXPECT_THROW((void)core::competitive_market{wrong_dim},
               vtm::util::contract_error);
}

// ---- per-MSP candidate sets -------------------------------------------------

// Overlapping deployments: each operator's chain resolves its own serving
// RSU per position; a downstream offset flips the candidate around the
// shifted cell midpoints.
TEST(competitive_market, chain_set_resolves_per_operator_candidates) {
  const vtm::sim::rsu_chain primary(4, 1000.0, 600.0);  // centres 1000..4000
  const std::vector<vtm::sim::rsu_chain> chains{primary.shifted(0.0),
                                                primary.shifted(300.0)};
  const vtm::sim::chain_set set(chains);
  ASSERT_EQ(set.size(), 2u);
  // 1600 m sits past the primary 0 -> 1 midpoint (1500) but short of the
  // shifted chain's (centres 1300, 2300 — midpoint 1800): the operators
  // serve the same position from different RSUs.
  EXPECT_EQ(set.candidate(0, 1600.0), 1u);
  EXPECT_EQ(set.candidate(1, 1600.0), 0u);
  const auto both = set.candidates(2700.0);
  EXPECT_EQ(both[0], 2u);  // primary: past 2500
  EXPECT_EQ(both[1], 1u);  // shifted: 2800 not yet crossed
}

// ---- fleet engine integration ----------------------------------------------

// market_mode::oligopoly with one MSP (empty roster) is bitwise
// market_mode::joint: same clearings, same prices, same aggregates.
TEST(competitive_market, fleet_m1_is_bitwise_joint) {
  {
    core::fleet_config joint;  // defaults
    const auto a = core::run_fleet_scenario(joint);
    auto oligo = joint;
    oligo.mode = core::market_mode::oligopoly;
    const auto b = core::run_fleet_scenario(oligo);
    expect_fleet_identical(a, b);
    ASSERT_EQ(b.msp_utilities.size(), 1u);
    // One shard accrues per-MSP utility in completion order — the same
    // order the merge reduces the scalar total in, so even the sum is
    // bitwise.
    EXPECT_EQ(b.msp_utilities[0], b.msp_total_utility);
  }
  {
    core::fleet_config joint;
    joint.rsu_positions_m = {vtm::util::meters{800.0}, vtm::util::meters{2000.0}, vtm::util::meters{2900.0}, vtm::util::meters{4400.0}, vtm::util::meters{5200.0}, vtm::util::meters{6800.0}};
    joint.coverage_radius_m = vtm::util::meters{900.0};
    joint.vehicle_count = 80;
    joint.duration_s = vtm::util::seconds{90.0};
    joint.seed = 99;
    const auto a = core::run_fleet_scenario(joint);
    auto oligo = joint;
    oligo.mode = core::market_mode::oligopoly;
    const auto b = core::run_fleet_scenario(oligo);
    expect_fleet_identical(a, b);
  }
}

// End-to-end economics: duopoly clearing prices sit below the monopoly
// price, fall as λ grows, and stay above cost.
TEST(competitive_market, fleet_duopoly_prices_below_monopoly) {
  core::fleet_config mono;  // defaults (joint monopoly)
  const auto monopoly = core::run_fleet_scenario(mono);

  const auto soft = core::run_fleet_scenario(duopoly_fleet(0.25));
  const auto sharp = core::run_fleet_scenario(duopoly_fleet(4.0));

  EXPECT_EQ(soft.handovers, monopoly.handovers);
  EXPECT_LT(soft.mean_price, monopoly.mean_price);
  EXPECT_LT(sharp.mean_price, soft.mean_price);
  EXPECT_GT(sharp.mean_price, mono.unit_cost);
  // Lower prices leave the buyers better off in aggregate.
  EXPECT_GT(soft.vmu_total_utility, monopoly.vmu_total_utility);
}

TEST(competitive_market, fleet_duopoly_deterministic_and_conserved) {
  const auto config = duopoly_fleet();
  const auto a = core::run_fleet_scenario(config);
  const auto b = core::run_fleet_scenario(config);
  expect_fleet_identical(a, b);
  ASSERT_EQ(a.msp_utilities.size(), 2u);
  EXPECT_EQ(a.msp_utilities[0], b.msp_utilities[0]);
  EXPECT_EQ(a.msp_utilities[1], b.msp_utilities[1]);
  expect_fleet_conserved(config, a);

  auto other = config;
  other.seed = config.seed + 1;
  const auto c = core::run_fleet_scenario(other);
  EXPECT_NE(a.msp_total_utility, c.msp_total_utility);
}

// An asymmetric duopoly: the cheaper seller wins share and profit.
TEST(competitive_market, fleet_cheaper_msp_wins_share) {
  auto config = duopoly_fleet(1.0);
  config.msps[1].unit_cost = 3.5;  // undercuts MSP 0's cost of 5
  const auto r = core::run_fleet_scenario(config);
  expect_fleet_conserved(config, r);
  EXPECT_GT(r.msp_sold_mhz[1], r.msp_sold_mhz[0]);
  EXPECT_GT(r.msp_utilities[1], r.msp_utilities[0]);
}

// Offset chains: MSP 1's RSUs sit 120 m downstream of the primary chain.
// Candidate resolution stays shard-local, per-shard oligopoly books survive
// cross-shard handoff, and a multi-shard run with timely deliveries
// reproduces the serial oligopoly run bitwise.
TEST(competitive_market, fleet_offset_duopoly_shards_match_serial) {
  auto config = duopoly_fleet();
  config.msps[1].chain_offset_m = vtm::util::meters{120.0};
  config.msps[1].unit_cost = 4.0;
  const auto serial = core::run_fleet_scenario(config);
  expect_fleet_conserved(config, serial);

  for (const std::size_t shards : {2u, 4u}) {
    auto sharded_config = config;
    sharded_config.shard_count = shards;
    const auto sharded = core::run_fleet_scenario(sharded_config);
    EXPECT_GT(sharded.cross_shard_transfers, 0u) << shards;
    EXPECT_EQ(sharded.late_handoffs, 0u) << shards;
    EXPECT_EQ(sharded.cross_shard_retargets, 0u) << shards;
    expect_fleet_identical(serial, sharded);
    expect_fleet_conserved(sharded_config, sharded);
    // Per-MSP splits agree with the serial run up to summation order.
    for (std::size_t m = 0; m < 2; ++m)
      EXPECT_NEAR(sharded.msp_utilities[m], serial.msp_utilities[m],
                  1e-9 * std::max(1.0, serial.msp_utilities[m]));
  }
}

// A deferred request whose vehicle drifts across shard boundaries re-homes
// through retarget handoffs into the destination shard's *oligopoly* book
// (the delivery path must route into comarkets, not the empty monopoly
// books), and the migration still lands exactly once.
TEST(competitive_market, fleet_cross_shard_retargets_reach_oligopoly_books) {
  core::fleet_config config;
  config.rsu_positions_m = {vtm::util::meters{1000.0}, vtm::util::meters{2000.0}, vtm::util::meters{4000.0}};
  config.coverage_radius_m = vtm::util::meters{1100.0};
  config.vehicle_count = 2;
  config.min_speed_mps = vtm::util::mps{30.0};
  config.max_speed_mps = vtm::util::mps{30.0};
  config.min_alpha = 5000.0;
  config.max_alpha = 5000.0;
  config.min_data_mb = vtm::util::megabytes{280.0};
  config.spawn_min_m = vtm::util::meters{1100.0};
  config.spawn_max_m = vtm::util::meters{1400.0};
  config.bandwidth_per_pool_mhz = vtm::util::megahertz{0.1};  // one grant saturates a pool
  config.min_clearable_mhz = vtm::util::megahertz{0.1};
  config.duration_s = vtm::util::seconds{20.0};
  config.shard_count = 3;
  config.mode = core::market_mode::oligopoly;
  config.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{0.1}}, {vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{0.1}}};
  const auto r = core::run_fleet_scenario(config);

  EXPECT_GT(r.cross_shard_retargets, 0u);
  expect_fleet_conserved(config, r);
  const bool drifted_granted = std::any_of(
      r.migrations.begin(), r.migrations.end(),
      [](const core::migration_record& m) {
        return m.from_rsu == 0 && m.to_rsu == 2;
      });
  EXPECT_TRUE(drifted_granted);
}

// The learned seller seat inside a fleet run: deterministic, conserved, and
// the seat's clearing prices stay inside its box.
TEST(competitive_market, fleet_learned_seat_runs_conserved) {
  auto config = duopoly_fleet(1.0);
  config.learned_msp = 0;
  config.pricer = random_competitor_pricer(9, config.msps[0].unit_cost,
                                           config.msps[0].price_cap);
  const auto a = core::run_fleet_scenario(config);
  const auto b = core::run_fleet_scenario(config);
  expect_fleet_identical(a, b);
  expect_fleet_conserved(config, a);
  EXPECT_GT(a.completed, 0u);
  for (const auto& record : a.migrations) {
    EXPECT_GE(record.price, 4.0 - 1e-12);  // min over both sellers' costs
    EXPECT_LE(record.price, 50.0 + 1e-12);
  }
}

TEST(competitive_market, fleet_rejects_invalid_oligopoly_configs) {
  // A roster outside oligopoly mode is a misconfiguration, not ignorable.
  core::fleet_config roster_in_joint;
  roster_in_joint.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}};
  EXPECT_THROW((void)core::run_fleet_scenario(roster_in_joint),
               vtm::util::contract_error);

  core::fleet_config shared;
  shared.mode = core::market_mode::oligopoly;
  shared.shared_pool = true;
  EXPECT_THROW((void)core::run_fleet_scenario(shared),
               vtm::util::contract_error);

  core::fleet_config seat_without_pricer = duopoly_fleet();
  seat_without_pricer.learned_msp = 0;
  EXPECT_THROW((void)core::run_fleet_scenario(seat_without_pricer),
               vtm::util::contract_error);

  // A learned monopoly *backend* is dead config under real competition.
  core::fleet_config learned_backend = duopoly_fleet();
  learned_backend.pricing = core::pricing_backend::learned;
  learned_backend.pricer = random_competitor_pricer(1, 5.0, 50.0);
  EXPECT_THROW((void)core::run_fleet_scenario(learned_backend),
               vtm::util::contract_error);

  // An offset pushing a candidate pool across a shard boundary would let
  // two shards race on it: rejected up front.
  auto offset_too_far = duopoly_fleet();
  offset_too_far.msps[1].chain_offset_m = vtm::util::meters{-600.0};  // past the cell midpoint
  offset_too_far.shard_count = 8;                  // one RSU per shard
  EXPECT_THROW((void)core::run_fleet_scenario(offset_too_far),
               vtm::util::contract_error);
}

// Consecutive clearings of one book warm-start the solver from the book's
// previous posted prices (per-MSP memory); the first clearing is cold. A
// fresh book clearing the same second cohort cold must land on the same
// equilibrium within the fixed-point tolerance — warm starts change the
// cost, not the answer.
TEST(competitive_market, second_clearing_warm_starts_to_the_cold_answer) {
  core::competitive_market_config config;
  config.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{40.0}}, {vtm::util::meters{0.0}, 6.0, 50.0, vtm::util::megahertz{40.0}}};
  config.share_sharpness = 0.5;
  const std::vector<double> available{40.0, 40.0};

  core::competitive_market market(config);
  vtm::util::rng first_cohort(20260810);
  for (std::size_t v = 0; v < 6; ++v)
    market.submit(draw_request(first_cohort, v));
  const auto first = market.clear(available);
  EXPECT_FALSE(first.warm_started);
  EXPECT_TRUE(first.converged);
  EXPECT_TRUE(first.certified);
  EXPECT_GT(first.solver_sweeps, 0u);
  EXPECT_GT(first.objective_evals, 0u);

  vtm::util::rng second_cohort(20260811);
  for (std::size_t v = 6; v < 12; ++v)
    market.submit(draw_request(second_cohort, v));
  const auto warm = market.clear(available);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_TRUE(warm.converged);
  EXPECT_TRUE(warm.certified);

  // Same second cohort through a fresh (cold) book.
  core::competitive_market fresh(config);
  vtm::util::rng second_again(20260811);
  for (std::size_t v = 6; v < 12; ++v)
    fresh.submit(draw_request(second_again, v));
  const auto cold = fresh.clear(available);
  EXPECT_FALSE(cold.warm_started);
  ASSERT_EQ(cold.prices.size(), warm.prices.size());
  for (std::size_t m = 0; m < warm.prices.size(); ++m)
    EXPECT_NEAR(warm.prices[m], cold.prices[m], 1e-5);
}
