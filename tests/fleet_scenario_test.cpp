// Fleet engine and highway-scenario edge cases: pool exhaustion -> deferral
// -> successful retry, drain completeness (totals == sum over records, every
// handover accounted for), bitwise seed determinism, joint-epoch cohort
// pricing, and thread-parallel seed sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>

#include "core/fleet_scenario.hpp"
#include "core/scenario.hpp"
#include "util/contracts.hpp"

namespace core = vtm::core;

namespace {

/// Every handover eventually resolves exactly one way.
void expect_conservation(std::size_t handovers, std::size_t completed,
                         std::size_t priced_out, std::size_t abandoned) {
  EXPECT_EQ(handovers, completed + priced_out + abandoned);
}

core::scenario_config starved_config() {
  // Capacity-hungry fleet on a tight shared pool: the first cohort drains the
  // pool, later handovers must defer until a completion releases capacity.
  core::scenario_config config;
  config.vehicle_count = 6;
  config.min_alpha = 5000.0;
  config.max_alpha = 5000.0;
  config.min_data_mb = vtm::util::megabytes{280.0};
  config.max_data_mb = vtm::util::megabytes{300.0};
  config.bandwidth_cap_mhz = vtm::util::megahertz{8.0};
  config.duration_s = vtm::util::seconds{90.0};
  return config;
}

}  // namespace

// ---- pool exhaustion -> deferral -> successful retry ------------------------

TEST(fleet_scenario, exhausted_pool_defers_then_retries_successfully) {
  for (const auto mode : {core::market_mode::joint, core::market_mode::single}) {
    auto config = starved_config();
    config.mode = mode;
    const auto result = core::run_highway_scenario(config);
    EXPECT_GT(result.deferred, 0u)
        << (mode == core::market_mode::joint ? "joint" : "single");
    EXPECT_GT(result.completed, 0u);
    EXPECT_EQ(result.abandoned, 0u);
    expect_conservation(result.handovers, result.completed, result.priced_out,
                        result.abandoned);
    // At least one deferred request later migrated: its clearing happened
    // strictly after its handover.
    const bool retried_late = std::any_of(
        result.migrations.begin(), result.migrations.end(),
        [](const core::migration_record& m) {
          return m.start_s > m.requested_s + 1e-9;
        });
    EXPECT_TRUE(retried_late);
  }
}

// A handover is never double-counted across deferral retries: handovers on a
// starved pool still equal the number of terminal outcomes.
TEST(fleet_scenario, deferral_retries_do_not_inflate_handovers) {
  const auto result = core::run_highway_scenario(starved_config());
  ASSERT_GT(result.deferred, 0u);
  expect_conservation(result.handovers, result.completed, result.priced_out,
                      result.abandoned);
}

// ---- drain completeness -----------------------------------------------------

TEST(fleet_scenario, drains_until_empty_and_totals_match_records) {
  core::scenario_config config;
  config.vehicle_count = 5;
  config.duration_s = vtm::util::seconds{150.0};
  const auto result = core::run_highway_scenario(config);

  ASSERT_FALSE(result.migrations.empty());
  EXPECT_EQ(result.completed, result.migrations.size());
  expect_conservation(result.handovers, result.completed, result.priced_out,
                      result.abandoned);
  double msp = 0.0;
  double vmu = 0.0;
  for (const auto& record : result.migrations) {
    msp += record.msp_utility;
    vmu += record.vmu_utility;
  }
  EXPECT_DOUBLE_EQ(result.msp_total_utility, msp);
  EXPECT_DOUBLE_EQ(result.vmu_total_utility, vmu);
}

// Migrations in flight at the horizon still land in both totals and records:
// a long-running config must keep totals == sum over records.
TEST(fleet_scenario, in_flight_migrations_at_horizon_are_not_lost) {
  core::scenario_config config;
  config.vehicle_count = 8;
  config.duration_s = vtm::util::seconds{20.0};        // short horizon, migrations overhang it
  config.bandwidth_cap_mhz = vtm::util::megahertz{2.0};  // tight pool: slow transfers...
  config.dirty_rate_mb_s = vtm::util::mb_per_s{70.0};   // ...dirtied near line rate: long pre-copy
  const auto result = core::run_highway_scenario(config);
  EXPECT_EQ(result.completed, result.migrations.size());
  double msp = 0.0;
  for (const auto& record : result.migrations) msp += record.msp_utility;
  EXPECT_DOUBLE_EQ(result.msp_total_utility, msp);
  // Some migration finished after the horizon (the drain did real work).
  const bool overhang = std::any_of(
      result.migrations.begin(), result.migrations.end(),
      [&](const core::migration_record& m) {
        return m.start_s + m.aotm_simulated > config.duration_s.value();
      });
  EXPECT_TRUE(overhang);
}

// ---- bitwise seed determinism ----------------------------------------------

TEST(fleet_scenario, highway_scenario_is_bitwise_deterministic) {
  core::scenario_config config;
  config.vehicle_count = 4;
  const auto a = core::run_highway_scenario(config);
  const auto b = core::run_highway_scenario(config);

  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.deferred, b.deferred);
  EXPECT_EQ(a.priced_out, b.priced_out);
  EXPECT_EQ(a.msp_total_utility, b.msp_total_utility);
  EXPECT_EQ(a.vmu_total_utility, b.vmu_total_utility);
  EXPECT_EQ(a.mean_aotm, b.mean_aotm);
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    const auto& x = a.migrations[i];
    const auto& y = b.migrations[i];
    EXPECT_EQ(x.start_s, y.start_s);
    EXPECT_EQ(x.requested_s, y.requested_s);
    EXPECT_EQ(x.vehicle, y.vehicle);
    EXPECT_EQ(x.from_rsu, y.from_rsu);
    EXPECT_EQ(x.to_rsu, y.to_rsu);
    EXPECT_EQ(x.price, y.price);
    EXPECT_EQ(x.bandwidth_mhz, y.bandwidth_mhz);
    EXPECT_EQ(x.cohort, y.cohort);
    EXPECT_EQ(x.aotm_simulated, y.aotm_simulated);
    EXPECT_EQ(x.data_sent_mb, y.data_sent_mb);
    EXPECT_EQ(x.vmu_utility, y.vmu_utility);
    EXPECT_EQ(x.msp_utility, y.msp_utility);
  }

  auto other = config;
  other.seed = config.seed + 1;
  const auto c = core::run_highway_scenario(other);
  EXPECT_NE(a.msp_total_utility, c.msp_total_utility);
}

// ---- joint-epoch cohort pricing --------------------------------------------

TEST(fleet_scenario, same_epoch_handovers_clear_as_one_market) {
  core::scenario_config config;
  config.vehicle_count = 8;
  config.min_speed_mps = vtm::util::mps{30.0};
  config.max_speed_mps = vtm::util::mps{30.0};  // same speed: crossings cluster by position
  config.clearing_epoch_s = vtm::util::seconds{10.0};
  config.duration_s = vtm::util::seconds{60.0};
  const auto result = core::run_highway_scenario(config);

  ASSERT_FALSE(result.migrations.empty());
  std::size_t max_cohort = 0;
  for (const auto& record : result.migrations)
    max_cohort = std::max(max_cohort, record.cohort);
  EXPECT_GE(max_cohort, 2u);

  // Records cleared together (same market time) share the one cohort price.
  for (const auto& a : result.migrations) {
    for (const auto& b : result.migrations) {
      if (a.start_s == b.start_s && a.cohort >= 2) {
        EXPECT_EQ(a.price, b.price);
      }
    }
  }
}

TEST(fleet_scenario, single_mode_always_prices_solo_markets) {
  core::scenario_config config;
  config.mode = core::market_mode::single;
  config.vehicle_count = 8;
  config.min_speed_mps = vtm::util::mps{30.0};
  config.max_speed_mps = vtm::util::mps{30.0};
  config.duration_s = vtm::util::seconds{60.0};
  const auto result = core::run_highway_scenario(config);
  ASSERT_FALSE(result.migrations.empty());
  for (const auto& record : result.migrations) EXPECT_EQ(record.cohort, 1u);
}

// ---- fleet engine: per-RSU pools, scale, sweeps -----------------------------

TEST(fleet_scenario, fleet_run_spreads_load_over_rsu_pools) {
  core::fleet_config config;
  config.rsu_count = 8;
  config.vehicle_count = 60;
  config.duration_s = vtm::util::seconds{60.0};
  const auto result = core::run_fleet_scenario(config);

  EXPECT_GT(result.handovers, 0u);
  EXPECT_GT(result.completed, 0u);
  expect_conservation(result.handovers, result.completed, result.priced_out,
                      result.abandoned);
  EXPECT_EQ(result.completed, result.migrations.size());
  EXPECT_GE(result.max_cohort, 1u);
  EXPECT_GT(result.mean_price, 0.0);
  // The auto spawn span loads more than one destination RSU.
  std::size_t distinct = 0;
  std::array<bool, 8> seen{};
  for (const auto& record : result.migrations) {
    ASSERT_LT(record.to_rsu, seen.size());
    if (!seen[record.to_rsu]) {
      seen[record.to_rsu] = true;
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 2u);
}

TEST(fleet_scenario, record_toggle_preserves_aggregates) {
  core::fleet_config config;
  config.vehicle_count = 30;
  config.duration_s = vtm::util::seconds{45.0};
  auto bare = config;
  bare.record_migrations = false;
  const auto with_records = core::run_fleet_scenario(config);
  const auto without = core::run_fleet_scenario(bare);
  EXPECT_TRUE(without.migrations.empty());
  EXPECT_EQ(with_records.completed, without.completed);
  EXPECT_EQ(with_records.handovers, without.handovers);
  EXPECT_EQ(with_records.msp_total_utility, without.msp_total_utility);
  EXPECT_EQ(with_records.mean_aotm, without.mean_aotm);
}

TEST(fleet_scenario, parallel_sweep_is_bitwise_equal_to_serial) {
  core::fleet_config base;
  base.vehicle_count = 20;
  base.duration_s = vtm::util::seconds{40.0};
  const std::array<std::uint64_t, 4> seeds{1, 2, 3, 4};
  const auto serial = core::run_fleet_sweep(base, seeds, 0);
  const auto threaded = core::run_fleet_sweep(base, seeds, 2);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].handovers, threaded[i].handovers);
    EXPECT_EQ(serial[i].completed, threaded[i].completed);
    EXPECT_EQ(serial[i].msp_total_utility, threaded[i].msp_total_utility);
    EXPECT_EQ(serial[i].vmu_total_utility, threaded[i].vmu_total_utility);
    EXPECT_EQ(serial[i].mean_aotm, threaded[i].mean_aotm);
    EXPECT_EQ(serial[i].mean_price, threaded[i].mean_price);
  }
  // Different seeds genuinely vary.
  EXPECT_NE(serial[0].msp_total_utility, serial[1].msp_total_utility);
}

TEST(fleet_scenario, rejects_invalid_configs) {
  core::fleet_config bad;
  bad.vehicle_count = 0;
  EXPECT_THROW((void)core::run_fleet_scenario(bad),
               vtm::util::contract_error);
  core::fleet_config negative_epoch;
  negative_epoch.clearing_epoch_s = vtm::util::seconds{-1.0};
  EXPECT_THROW((void)core::run_fleet_scenario(negative_epoch),
               vtm::util::contract_error);
}
