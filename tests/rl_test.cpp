// Tests for the RL substrate: rollout buffer + GAE, actor-critic policy,
// PPO updates, baseline agents.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/gaussian.hpp"
#include "rl/agents.hpp"
#include "rl/buffer.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "rl/trainer.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace rl = vtm::rl;
namespace nn = vtm::nn;

namespace {

nn::tensor obs1(double x) { return nn::tensor({1, 1}, {x}); }

void add_step(rl::rollout_buffer& buffer, double reward, double value,
              bool done = false) {
  buffer.add(obs1(0.0), obs1(0.0), reward, value, -1.0, done);
}

}  // namespace

// ---- rollout buffer / GAE ------------------------------------------------------

TEST(buffer, add_and_capacity) {
  rl::rollout_buffer buffer(2, 1, 1);
  EXPECT_EQ(buffer.size(), 0u);
  add_step(buffer, 1.0, 0.0);
  add_step(buffer, 1.0, 0.0);
  EXPECT_TRUE(buffer.full());
  EXPECT_THROW((void)add_step(buffer, 1.0, 0.0), vtm::util::contract_error);
  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(buffer, rejects_wrong_shapes) {
  rl::rollout_buffer buffer(4, 3, 1);
  EXPECT_THROW((void)buffer.add(obs1(0.0), obs1(0.0), 0.0, 0.0, 0.0, false),
               vtm::util::contract_error);
}

TEST(buffer, gae_hand_computed_example) {
  // γ = 0.5, λ = 0.5; steps: (r=1,V=0), (r=1,V=1), (r=1,V=2,done)
  // δ2 = 1 + 0 − 2 = −1               A2 = −1
  // δ1 = 1 + 0.5·2 − 1 = 1            A1 = 1 + 0.25·(−1) = 0.75
  // δ0 = 1 + 0.5·1 − 0 = 1.5          A0 = 1.5 + 0.25·0.75 = 1.6875
  rl::rollout_buffer buffer(3, 1, 1);
  add_step(buffer, 1.0, 0.0);
  add_step(buffer, 1.0, 1.0);
  add_step(buffer, 1.0, 2.0, /*done=*/true);
  buffer.compute_advantages(0.5, 0.5, /*last_value=*/99.0);  // ignored: done
  EXPECT_NEAR(buffer.advantage_at(2), -1.0, 1e-12);
  EXPECT_NEAR(buffer.advantage_at(1), 0.75, 1e-12);
  EXPECT_NEAR(buffer.advantage_at(0), 1.6875, 1e-12);
  // Returns are advantage + value.
  EXPECT_NEAR(buffer.return_at(2), 1.0, 1e-12);
  EXPECT_NEAR(buffer.return_at(0), 1.6875, 1e-12);
}

TEST(buffer, gae_uses_bootstrap_when_not_done) {
  rl::rollout_buffer buffer(1, 1, 1);
  add_step(buffer, 1.0, 0.5);
  buffer.compute_advantages(0.9, 1.0, /*last_value=*/2.0);
  // δ = 1 + 0.9·2 − 0.5 = 2.3
  EXPECT_NEAR(buffer.advantage_at(0), 2.3, 1e-12);
}

TEST(buffer, gae_gamma_lambda_one_equals_mc_minus_value) {
  // With γ = λ = 1 and a terminal step, advantage = Σ future rewards − V.
  rl::rollout_buffer buffer(4, 1, 1);
  const double rewards[] = {1.0, 2.0, 3.0, 4.0};
  const double values[] = {0.5, 0.25, 0.125, 0.0625};
  for (int i = 0; i < 4; ++i)
    add_step(buffer, rewards[i], values[i], i == 3);
  buffer.compute_advantages(1.0, 1.0, 0.0);
  for (int i = 0; i < 4; ++i) {
    double mc = 0.0;
    for (int j = i; j < 4; ++j) mc += rewards[j];
    EXPECT_NEAR(buffer.advantage_at(i), mc - values[i], 1e-12) << i;
  }
}

TEST(buffer, done_resets_gae_accumulation) {
  // Episode boundary between steps 0 and 1: advantage at 0 must not see
  // step 1's rewards.
  rl::rollout_buffer buffer(2, 1, 1);
  add_step(buffer, 1.0, 0.0, /*done=*/true);
  add_step(buffer, 100.0, 0.0, /*done=*/true);
  buffer.compute_advantages(1.0, 1.0, 0.0);
  EXPECT_NEAR(buffer.advantage_at(0), 1.0, 1e-12);
  EXPECT_NEAR(buffer.advantage_at(1), 100.0, 1e-12);
}

TEST(buffer, minibatch_normalization_uses_buffer_stats) {
  rl::rollout_buffer buffer(4, 1, 1);
  for (int i = 0; i < 4; ++i) add_step(buffer, static_cast<double>(i), 0.0);
  buffer.compute_advantages(0.0, 0.0, 0.0);  // advantages = rewards
  const auto batch = buffer.all(/*normalize=*/true);
  vtm::util::running_stats acc;
  for (std::size_t i = 0; i < 4; ++i) acc.push(batch.advantages(i, 0));
  EXPECT_NEAR(acc.mean(), 0.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), 1.0, 1e-12);
  const auto raw = buffer.all(/*normalize=*/false);
  EXPECT_NEAR(raw.advantages(3, 0), 3.0, 1e-12);
}

TEST(buffer, sample_returns_distinct_indices) {
  rl::rollout_buffer buffer(8, 1, 1);
  for (int i = 0; i < 8; ++i) add_step(buffer, i, 0.0);
  buffer.compute_advantages(0.0, 0.0, 0.0);
  vtm::util::rng gen(3);
  const auto batch = buffer.sample(8, gen, false);
  std::vector<double> seen;
  for (std::size_t i = 0; i < 8; ++i) seen.push_back(batch.advantages(i, 0));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(seen[i], i);
}

TEST(buffer, gather_requires_computed_advantages) {
  rl::rollout_buffer buffer(2, 1, 1);
  add_step(buffer, 1.0, 0.0);
  const std::size_t idx[] = {0};
  EXPECT_THROW((void)buffer.gather(idx), vtm::util::contract_error);
  EXPECT_FALSE(buffer.advantages_ready());
}

// ---- actor-critic policy ---------------------------------------------------------

TEST(policy, shapes_and_parameter_count) {
  vtm::util::rng gen(1);
  rl::actor_critic_config config;
  config.obs_dim = 12;
  config.act_dim = 1;
  config.hidden = {64, 64};
  rl::actor_critic policy(config, gen);
  // trunk: 12·64+64 + 64·64+64; heads: 64·1+1 each; log_std: 1.
  const auto params = policy.parameters();
  EXPECT_EQ(nn::parameter_count(params),
            (12u * 64 + 64) + (64 * 64 + 64) + 2 * (64 + 1) + 1);
  const auto out = policy.forward(
      nn::variable::constant(nn::tensor({5, 12}, 0.1)));
  EXPECT_EQ(out.mean.dims(), (nn::shape{5, 1}));
  EXPECT_EQ(out.value.dims(), (nn::shape{5, 1}));
}

TEST(policy, act_log_prob_consistent_with_gaussian) {
  vtm::util::rng gen(2);
  rl::actor_critic_config config;
  config.obs_dim = 3;
  config.hidden = {8};
  rl::actor_critic policy(config, gen);
  const auto obs = nn::tensor({1, 3}, {0.1, -0.2, 0.3});
  vtm::util::rng act_gen(7);
  const auto sample = policy.act(obs, act_gen);
  const auto out = policy.forward(nn::variable::constant(obs));
  const double expected =
      nn::gaussian_log_prob_value(out.mean.value(), policy.log_std().value(),
                                  sample.action)
          .item();
  EXPECT_NEAR(sample.log_prob, expected, 1e-12);
  EXPECT_NEAR(sample.value, out.value.value().item(), 1e-12);
}

TEST(policy, deterministic_act_returns_mean) {
  vtm::util::rng gen(3);
  rl::actor_critic_config config;
  config.obs_dim = 2;
  config.hidden = {8};
  rl::actor_critic policy(config, gen);
  const auto obs = nn::tensor({1, 2}, {0.5, 0.5});
  const auto sample = policy.act_deterministic(obs);
  const auto out = policy.forward(nn::variable::constant(obs));
  EXPECT_TRUE(sample.action.allclose(out.mean.value(), 1e-15));
}

TEST(policy, stochastic_actions_vary) {
  vtm::util::rng gen(4);
  rl::actor_critic_config config;
  config.obs_dim = 1;
  config.hidden = {4};
  rl::actor_critic policy(config, gen);
  vtm::util::rng act_gen(11);
  const auto a1 = policy.act(obs1(0.0), act_gen);
  const auto a2 = policy.act(obs1(0.0), act_gen);
  EXPECT_NE(a1.action.item(), a2.action.item());
}

// ---- PPO ---------------------------------------------------------------------------

namespace {

/// One-step continuous bandit: reward = −(a − target)². The optimal policy
/// mean is `target`; a learner that improves must move its mean toward it.
class bandit_env final : public rl::environment {
 public:
  explicit bandit_env(double target) : target_(target) {}
  std::size_t observation_dim() const override { return 1; }
  std::size_t action_dim() const override { return 1; }
  double action_low() const override { return -2.0; }
  double action_high() const override { return 2.0; }
  nn::tensor reset() override { return obs1(1.0); }
  rl::step_result step(const nn::tensor& action) override {
    rl::step_result result;
    const double a = action.item();
    result.reward = -(a - target_) * (a - target_);
    result.observation = obs1(1.0);
    result.done = true;
    return result;
  }

 private:
  double target_;
};

}  // namespace

TEST(ppo, learns_bandit_target) {
  bandit_env env(0.7);
  vtm::util::rng gen(5);
  rl::actor_critic_config net_config;
  net_config.obs_dim = 1;
  net_config.hidden = {16};
  net_config.initial_log_std = -0.3;
  rl::actor_critic policy(net_config, gen);

  rl::ppo_config ppo_config;
  ppo_config.learning_rate = 3e-3;
  ppo_config.minibatch_size = 16;
  ppo_config.epochs = 4;
  vtm::util::rng ppo_gen(6);
  rl::ppo learner(policy, ppo_config, ppo_gen);

  vtm::util::rng act_gen(7);
  for (int iteration = 0; iteration < 150; ++iteration) {
    rl::rollout_buffer buffer(16, 1, 1);
    nn::tensor obs = env.reset();
    while (!buffer.full()) {
      const auto sample = policy.act(obs, act_gen);
      const auto result = env.step(sample.action);
      buffer.add(obs, sample.action, result.reward, sample.value,
                 sample.log_prob, result.done);
      obs = env.reset();
    }
    buffer.compute_advantages(ppo_config.gamma, ppo_config.gae_lambda, 0.0);
    (void)learner.update(buffer);
  }
  const auto final_action = policy.act_deterministic(obs1(1.0));
  EXPECT_NEAR(final_action.action.item(), 0.7, 0.15);
}

TEST(ppo, update_statistics_are_sane) {
  bandit_env env(0.0);
  vtm::util::rng gen(8);
  rl::actor_critic_config net_config;
  net_config.obs_dim = 1;
  net_config.hidden = {8};
  rl::actor_critic policy(net_config, gen);
  rl::ppo_config config;
  config.epochs = 3;
  config.minibatch_size = 8;
  vtm::util::rng ppo_gen(9);
  rl::ppo learner(policy, config, ppo_gen);

  rl::rollout_buffer buffer(8, 1, 1);
  vtm::util::rng act_gen(10);
  nn::tensor obs = env.reset();
  while (!buffer.full()) {
    const auto sample = policy.act(obs, act_gen);
    const auto result = env.step(sample.action);
    buffer.add(obs, sample.action, result.reward, sample.value,
               sample.log_prob, result.done);
  }
  buffer.compute_advantages(config.gamma, config.gae_lambda, 0.0);
  const auto stats = learner.update(buffer);
  EXPECT_EQ(stats.minibatches, 3u);
  EXPECT_GE(stats.value_loss, 0.0);
  EXPECT_GE(stats.clip_fraction, 0.0);
  EXPECT_LE(stats.clip_fraction, 1.0);
  EXPECT_TRUE(std::isfinite(stats.approx_kl));
  EXPECT_TRUE(std::isfinite(stats.entropy));
}

TEST(ppo, first_update_has_unit_ratio) {
  // Immediately after collection the new policy equals the behaviour policy,
  // so the first mini-batch's ratios are 1 and nothing clips.
  bandit_env env(0.0);
  vtm::util::rng gen(11);
  rl::actor_critic_config net_config;
  net_config.obs_dim = 1;
  net_config.hidden = {8};
  rl::actor_critic policy(net_config, gen);
  rl::ppo_config config;
  config.epochs = 1;  // single mini-batch: ratios must all equal 1
  config.minibatch_size = 8;
  vtm::util::rng ppo_gen(12);
  rl::ppo learner(policy, config, ppo_gen);

  rl::rollout_buffer buffer(8, 1, 1);
  vtm::util::rng act_gen(13);
  nn::tensor obs = env.reset();
  while (!buffer.full()) {
    const auto sample = policy.act(obs, act_gen);
    const auto result = env.step(sample.action);
    buffer.add(obs, sample.action, result.reward, sample.value,
               sample.log_prob, result.done);
  }
  buffer.compute_advantages(config.gamma, config.gae_lambda, 0.0);
  const auto stats = learner.update(buffer);
  EXPECT_NEAR(stats.approx_kl, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.clip_fraction, 0.0);
}

TEST(ppo, log_std_stays_in_configured_band) {
  bandit_env env(0.0);
  vtm::util::rng gen(14);
  rl::actor_critic_config net_config;
  net_config.obs_dim = 1;
  net_config.hidden = {8};
  net_config.initial_log_std = 0.9;
  rl::actor_critic policy(net_config, gen);
  rl::ppo_config config;
  config.learning_rate = 0.5;  // huge steps to slam the bounds
  config.log_std_min = -1.0;
  config.log_std_max = 1.0;
  vtm::util::rng ppo_gen(15);
  rl::ppo learner(policy, config, ppo_gen);
  vtm::util::rng act_gen(16);
  for (int i = 0; i < 10; ++i) {
    rl::rollout_buffer buffer(8, 1, 1);
    nn::tensor obs = env.reset();
    while (!buffer.full()) {
      const auto sample = policy.act(obs, act_gen);
      const auto result = env.step(sample.action);
      buffer.add(obs, sample.action, result.reward, sample.value,
                 sample.log_prob, result.done);
    }
    buffer.compute_advantages(config.gamma, config.gae_lambda, 0.0);
    (void)learner.update(buffer);
    const double ls = policy.log_std().value().item();
    EXPECT_GE(ls, -1.0);
    EXPECT_LE(ls, 1.0);
  }
}

TEST(ppo, rejects_invalid_config) {
  vtm::util::rng gen(17);
  rl::actor_critic_config net_config;
  net_config.obs_dim = 1;
  net_config.hidden = {4};
  rl::actor_critic policy(net_config, gen);
  rl::ppo_config bad;
  bad.clip_epsilon = 0.0;
  vtm::util::rng ppo_gen(18);
  EXPECT_THROW((void)rl::ppo(policy, bad, ppo_gen), vtm::util::contract_error);
}

// ---- baseline agents -----------------------------------------------------------------

TEST(agents, random_scheme_within_bounds) {
  rl::random_scheme agent;
  vtm::util::rng gen(19);
  for (int i = 0; i < 1000; ++i) {
    const double a = agent.select_action(5.0, 50.0, gen);
    EXPECT_GE(a, 5.0);
    EXPECT_LT(a, 50.0);
  }
}

TEST(agents, greedy_replays_best_action) {
  rl::greedy_scheme agent(/*epsilon=*/0.0);
  vtm::util::rng gen(20);
  agent.feedback(10.0, 1.0);
  agent.feedback(20.0, 5.0);
  agent.feedback(30.0, 3.0);
  EXPECT_DOUBLE_EQ(agent.select_action(0.0, 100.0, gen), 20.0);
  ASSERT_TRUE(agent.best_action().has_value());
  EXPECT_DOUBLE_EQ(*agent.best_action(), 20.0);
}

TEST(agents, greedy_explores_before_feedback) {
  rl::greedy_scheme agent(0.0);
  vtm::util::rng gen(21);
  const double a = agent.select_action(1.0, 2.0, gen);
  EXPECT_GE(a, 1.0);
  EXPECT_LE(a, 2.0);
}

TEST(agents, greedy_reset_forgets) {
  rl::greedy_scheme agent(0.0);
  agent.feedback(20.0, 5.0);
  agent.reset();
  EXPECT_FALSE(agent.best_action().has_value());
}

TEST(agents, greedy_clamps_remembered_action_to_bounds) {
  rl::greedy_scheme agent(0.0);
  vtm::util::rng gen(22);
  agent.feedback(100.0, 9.0);
  EXPECT_DOUBLE_EQ(agent.select_action(0.0, 50.0, gen), 50.0);
}

TEST(agents, greedy_rejects_bad_epsilon) {
  EXPECT_THROW((void)rl::greedy_scheme(1.5), vtm::util::contract_error);
}

namespace {

/// Stationary pricing toy: utility peaks at action = 30 on [0, 60].
class peak_env final : public rl::environment {
 public:
  std::size_t observation_dim() const override { return 1; }
  std::size_t action_dim() const override { return 1; }
  double action_low() const override { return 0.0; }
  double action_high() const override { return 60.0; }
  nn::tensor reset() override { return obs1(0.0); }
  rl::step_result step(const nn::tensor& action) override {
    rl::step_result result;
    const double a = action.item();
    result.info["leader_utility"] = 100.0 - (a - 30.0) * (a - 30.0);
    result.reward = result.info["leader_utility"];
    result.observation = obs1(0.0);
    return result;
  }
};

}  // namespace

TEST(agents, greedy_beats_random_on_stationary_peak) {
  peak_env env;
  rl::random_scheme random_agent;
  rl::greedy_scheme greedy_agent(0.1);
  vtm::util::rng gen(23);
  const auto random_stats = rl::run_agent_episode(env, random_agent, 300, gen);
  const auto greedy_stats = rl::run_agent_episode(env, greedy_agent, 300, gen);
  EXPECT_GT(greedy_stats.mean_utility, random_stats.mean_utility);
  // Greedy converges near the peak.
  EXPECT_GT(greedy_stats.final_utility, 80.0);
}

TEST(agents, episode_stats_accounting) {
  peak_env env;
  rl::greedy_scheme agent(0.0);
  vtm::util::rng gen(24);
  const auto stats = rl::run_agent_episode(env, agent, 50, gen);
  EXPECT_EQ(stats.rounds, 50u);
  EXPECT_LE(stats.best_utility, 100.0);
  // ε=0 greedy repeats one action, so best == mean up to summation rounding.
  EXPECT_GE(stats.best_utility, stats.mean_utility - 1e-9);
}
