// Road-network topology: path-graph degeneracy bitwise against the 1-D
// chain (serving cells, handover boundaries, RSU gaps, and the full fleet
// engine), routing validity over the grid network, piecewise speed-profile
// arithmetic, platoon-correlated spawn cohorts, and graph-config validation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/fleet_scenario.hpp"
#include "sim/mobility.hpp"
#include "sim/road_graph.hpp"
#include "util/contracts.hpp"

namespace core = vtm::core;
namespace sim = vtm::sim;

namespace {

void expect_identical(const core::fleet_result& a,
                      const core::fleet_result& b) {
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.deferred, b.deferred);
  EXPECT_EQ(a.priced_out, b.priced_out);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.clearings, b.clearings);
  EXPECT_EQ(a.max_cohort, b.max_cohort);
  EXPECT_EQ(a.msp_total_utility, b.msp_total_utility);
  EXPECT_EQ(a.vmu_total_utility, b.vmu_total_utility);
  EXPECT_EQ(a.mean_aotm, b.mean_aotm);
  EXPECT_EQ(a.mean_amplification, b.mean_amplification);
  EXPECT_EQ(a.mean_price, b.mean_price);
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_EQ(a.migrations[i].start_s, b.migrations[i].start_s);
    EXPECT_EQ(a.migrations[i].finish_s, b.migrations[i].finish_s);
    EXPECT_EQ(a.migrations[i].vehicle, b.migrations[i].vehicle);
    EXPECT_EQ(a.migrations[i].from_rsu, b.migrations[i].from_rsu);
    EXPECT_EQ(a.migrations[i].to_rsu, b.migrations[i].to_rsu);
    EXPECT_EQ(a.migrations[i].price, b.migrations[i].price);
    EXPECT_EQ(a.migrations[i].bandwidth_mhz, b.migrations[i].bandwidth_mhz);
    EXPECT_EQ(a.migrations[i].aotm_closed_form,
              b.migrations[i].aotm_closed_form);
    EXPECT_EQ(a.migrations[i].aotm_simulated, b.migrations[i].aotm_simulated);
  }
  ASSERT_EQ(a.vehicles.size(), b.vehicles.size());
  for (std::size_t v = 0; v < a.vehicles.size(); ++v) {
    EXPECT_EQ(a.vehicles[v].host_rsu, b.vehicles[v].host_rsu);
    EXPECT_EQ(a.vehicles[v].migrations, b.vehicles[v].migrations);
    EXPECT_EQ(a.vehicles[v].position_m, b.vehicles[v].position_m);
  }
}

/// Lag-1 Pearson correlation of a series.
double lag1_correlation(const std::vector<double>& x) {
  const std::size_t n = x.size() - 1;
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += x[i];
    mean_b += x[i + 1];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (x[i] - mean_a) * (x[i + 1] - mean_b);
    var_a += (x[i] - mean_a) * (x[i] - mean_a);
    var_b += (x[i + 1] - mean_b) * (x[i + 1] - mean_b);
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace

// ---- path-graph degeneracy: bitwise the 1-D chain --------------------------

TEST(road_graph, path_collapses_to_the_uniform_chain) {
  const auto graph = sim::road_graph::path(8, 1000.0, 600.0);
  EXPECT_EQ(graph.rsu_count(), 8u);
  EXPECT_EQ(graph.route_count(), 1u);
  const auto view = graph.as_chain();
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->uniform);
  EXPECT_EQ(view->count, 8u);
  EXPECT_EQ(view->spacing_m.value(), 1000.0);
  EXPECT_EQ(view->coverage_radius_m.value(), 600.0);
}

// Serving cells, handover boundaries, and beacon (next-handover) timings of
// the degenerate path's route profile are bitwise the raw chain's.
TEST(road_graph, path_route_profile_is_bitwise_the_chain) {
  const auto graph = sim::road_graph::path(8, 1000.0, 600.0);
  const sim::rsu_chain chain(8, 1000.0, 600.0);
  const auto profile = graph.make_route_profile(0);
  ASSERT_EQ(profile.count(), chain.count());
  for (std::size_t i = 0; i < chain.count(); ++i)
    EXPECT_EQ(profile.global_rsu(i), i);

  for (double pos = 0.0; pos <= 9000.0; pos += 13.7) {
    EXPECT_EQ(profile.serving_rsu(pos), chain.serving_rsu(pos)) << pos;
    for (const double speed : {20.0, 27.3, 35.0}) {
      const sim::vehicle_state v{pos, speed};
      const auto a = profile.next_handover(v);
      const auto b = chain.next_handover(v);
      ASSERT_EQ(a.has_value(), b.has_value()) << pos;
      if (!a) continue;
      EXPECT_EQ(a->after_s, b->after_s) << pos;  // bitwise, not approx
      EXPECT_EQ(a->from_rsu, b->from_rsu) << pos;
      EXPECT_EQ(a->to_rsu, b->to_rsu) << pos;
    }
    // Unit factors delegate to the exact sim::advance arithmetic.
    const sim::vehicle_state moved = profile.advance({pos, 31.0}, 2.5);
    EXPECT_EQ(moved.position_m, sim::advance({pos, 31.0}, 2.5).position_m);
  }

  // The RSU gaps the pools price: every path site's upstream gap is the
  // chain spacing (site 0 mirrors the chain's RSU-0 downstream convention).
  for (std::size_t s = 0; s < graph.rsu_count(); ++s)
    EXPECT_EQ(graph.upstream_gap_m(s), 1000.0) << s;
  EXPECT_EQ(graph.site_distance_m(2, 5), 3000.0);
  EXPECT_EQ(graph.site_distance_m(3, 4), 1000.0);
}

// The full engine on the degenerate path graph reproduces today's default
// chain run bitwise — spawn draws, market outcomes, records, and final
// vehicle positions (the tier2 figure goldens run this exact config).
TEST(road_graph, degenerate_path_graph_reproduces_chain_fleet_bitwise) {
  core::fleet_config chain_config;  // defaults: 8 RSUs x 1000 m, radius 600
  const auto baseline = core::run_fleet_scenario(chain_config);

  core::fleet_config graph_config;
  graph_config.graph = std::make_shared<const sim::road_graph>(
      sim::road_graph::path(8, 1000.0, 600.0));
  const auto r = core::run_fleet_scenario(graph_config);
  EXPECT_EQ(r.handovers, 276u);  // the pinned structural golden
  expect_identical(baseline, r);

  // Sharded degenerate graphs keep the chain's shard equivalence.
  auto sharded_config = graph_config;
  sharded_config.shard_count = 4;
  const auto sharded = core::run_fleet_scenario(sharded_config);
  EXPECT_GT(sharded.cross_shard_transfers, 0u);
  EXPECT_EQ(sharded.late_handoffs, 0u);
  expect_identical(baseline, sharded);
}

// ---- grid network: routing validity ----------------------------------------

TEST(road_graph, grid_routes_traverse_only_real_connected_edges) {
  const auto graph = sim::road_graph::grid(4, 4, 1000.0, 600.0);
  EXPECT_EQ(graph.node_count(), 16u);
  EXPECT_EQ(graph.edge_count(), 24u);  // 12 right + 12 down
  EXPECT_EQ(graph.rsu_count(), 24u);   // one mid-edge site per edge
  EXPECT_FALSE(graph.as_chain().has_value());  // a real network
  ASSERT_GT(graph.route_count(), 0u);

  for (std::size_t r = 0; r < graph.route_count(); ++r) {
    const auto& route = graph.route(r);
    ASSERT_FALSE(route.edges.empty()) << r;
    // Every emitted edge exists and the sequence is a connected walk from
    // the route's entry to its exit.
    for (const std::size_t e : route.edges) ASSERT_LT(e, graph.edge_count());
    EXPECT_EQ(graph.edge(route.edges.front()).from, route.entry);
    EXPECT_EQ(graph.edge(route.edges.back()).to, route.exit);
    double length = 0.0;
    for (std::size_t k = 0; k < route.edges.size(); ++k) {
      if (k > 0)
        EXPECT_EQ(graph.edge(route.edges[k]).from,
                  graph.edge(route.edges[k - 1]).to)
            << r;
      length += graph.edge(route.edges[k]).length_m;
      EXPECT_EQ(route.seg_end_m[k], length);
      EXPECT_EQ(route.seg_factor[k], graph.edge(route.edges[k]).speed_factor);
    }
    EXPECT_EQ(route.length_m, length);
    // Every site the route serves sits on one of the route's own edges, at
    // an arc position inside the route.
    ASSERT_EQ(route.sites.size(), route.site_pos_m.size());
    for (std::size_t k = 0; k < route.sites.size(); ++k) {
      ASSERT_LT(route.sites[k], graph.rsu_count());
      const auto& site = graph.site(route.sites[k]);
      bool on_route = false;
      for (const std::size_t e : route.edges) on_route |= (e == site.edge);
      EXPECT_TRUE(on_route) << r;
      EXPECT_GT(route.site_pos_m[k], 0.0);
      EXPECT_LE(route.site_pos_m[k], route.length_m);
      if (k > 0) EXPECT_GT(route.site_pos_m[k], route.site_pos_m[k - 1]);
    }
  }
  EXPECT_GT(graph.max_lanes(), 1u);         // 2-lane arterials
  EXPECT_LT(graph.min_route_length_m(), graph.max_route_length_m());
}

TEST(road_graph, grid_fleet_conserves_twins_over_routes) {
  core::fleet_config config;
  config.graph = std::make_shared<const sim::road_graph>(
      sim::road_graph::grid(3, 3, 1000.0, 600.0));
  config.vehicle_count = 120;
  config.duration_s = vtm::util::seconds{120.0};
  config.seed = 41;
  const auto r = core::run_fleet_scenario(config);
  EXPECT_GT(r.handovers, 0u);
  EXPECT_EQ(r.handovers, r.completed + r.priced_out + r.abandoned);
  ASSERT_EQ(r.vehicles.size(), config.vehicle_count);
  std::size_t twin_migrations = 0;
  for (const auto& v : r.vehicles) twin_migrations += v.migrations;
  EXPECT_EQ(twin_migrations, r.completed);
  // Every migration priced a real site pair.
  for (const auto& m : r.migrations) {
    EXPECT_LT(m.from_rsu, config.graph->rsu_count());
    EXPECT_LT(m.to_rsu, config.graph->rsu_count());
  }
}

// ---- piecewise speed profiles ----------------------------------------------

// Hand-built two-segment profile: [0, 1000) at factor 1, [1000, 2000) at
// factor 0.5. Advance and handover timing must integrate the factors
// exactly (closed-form expectations).
TEST(road_graph, heterogeneous_factors_integrate_piecewise) {
  sim::route_profile profile(sim::rsu_chain(2, 800.0, 450.0), {0, 1},
                             {1000.0, 2000.0}, {1.0, 0.5});
  // 20 m/s base: 10 s to the segment break (200 m), then 10 m/s effective.
  const auto v = profile.advance({800.0, 20.0}, 15.0);
  EXPECT_DOUBLE_EQ(v.position_m, 1050.0);
  // Cruising past the last segment keeps the last factor.
  EXPECT_DOUBLE_EQ(profile.advance({1900.0, 20.0}, 20.0).position_m, 2100.0);
  EXPECT_EQ(profile.factor_at(500.0), 1.0);
  EXPECT_EQ(profile.factor_at(1500.0), 0.5);

  // Boundary between the chain's cells sits at 1200 m (centres 800, 1600):
  // from 800 m that is 200 m at 20 m/s + 200 m at 10 m/s.
  const auto event = profile.next_handover({800.0, 20.0});
  ASSERT_TRUE(event.has_value());
  EXPECT_DOUBLE_EQ(event->after_s, 30.0);
  EXPECT_EQ(event->from_rsu, 0u);
  EXPECT_EQ(event->to_rsu, 1u);
}

// ---- platoon-correlated spawn cohorts --------------------------------------

TEST(road_graph, platoon_spawns_carry_configured_cohort_autocorrelation) {
  core::fleet_config config;
  config.vehicle_count = 400;
  config.duration_s = vtm::util::seconds{0.001};  // freeze the fleet at its spawn positions
  config.seed = 33;

  auto platooned = config;
  platooned.platoon_size = 4;
  platooned.platoon_spread_m = vtm::util::meters{40.0};
  const auto cohort = core::run_fleet_scenario(platooned);
  const auto independent = core::run_fleet_scenario(config);

  std::vector<double> cohort_pos, indep_pos;
  for (const auto& v : cohort.vehicles) cohort_pos.push_back(v.position_m);
  for (const auto& v : independent.vehicles)
    indep_pos.push_back(v.position_m);
  // Consecutive spawns share a platoon 3 times out of 4 and sit within
  // ±40 m of a leader drawn over a ~7000 m window: strong lag-1
  // correlation. Independent draws: none.
  EXPECT_GT(lag1_correlation(cohort_pos), 0.5);
  EXPECT_LT(std::abs(lag1_correlation(indep_pos)), 0.2);

  // platoon_size = 1 (the default) is bitwise the legacy draw sequence —
  // guarded stronger by the tier2 goldens; pinned here for locality.
  auto explicit_one = config;
  explicit_one.platoon_size = 1;
  expect_identical(independent, core::run_fleet_scenario(explicit_one));
}

// The lane-change hook on multi-lane grid arterials adds per-lane speed
// bonuses: with a large delta, some vehicles must outrun the base band.
TEST(road_graph, lane_change_hook_draws_multi_lane_speed_bonus) {
  core::fleet_config config;
  config.graph = std::make_shared<const sim::road_graph>(
      sim::road_graph::grid(3, 3, 1000.0, 600.0));
  config.vehicle_count = 150;
  config.duration_s = vtm::util::seconds{60.0};
  config.lane_speed_delta_mps = vtm::util::mps{10.0};
  config.seed = 5;
  const auto r = core::run_fleet_scenario(config);
  EXPECT_EQ(r.handovers, r.completed + r.priced_out + r.abandoned);

  auto flat = config;
  flat.lane_speed_delta_mps = vtm::util::mps{0.0};
  const auto base = core::run_fleet_scenario(flat);
  // The bonus changes the draw stream and the kinematics: outcomes differ.
  EXPECT_NE(r.msp_total_utility, base.msp_total_utility);
}

// ---- graph-config validation -----------------------------------------------

TEST(road_graph, rejects_invalid_graph_configs) {
  const auto grid = std::make_shared<const sim::road_graph>(
      sim::road_graph::grid(3, 3, 1000.0, 600.0));

  // Spawn window past the shortest route: spans zero graph edges there.
  core::fleet_config zero_span;
  zero_span.graph = grid;
  zero_span.spawn_min_m = vtm::util::meters{grid->min_route_length_m()};
  EXPECT_THROW((void)core::run_fleet_scenario(zero_span),
               vtm::util::contract_error);

  core::fleet_config shared;
  shared.graph = grid;
  shared.shared_pool = true;
  EXPECT_THROW((void)core::run_fleet_scenario(shared),
               vtm::util::contract_error);

  core::fleet_config oligopoly;
  oligopoly.graph = grid;
  oligopoly.mode = core::market_mode::oligopoly;
  EXPECT_THROW((void)core::run_fleet_scenario(oligopoly),
               vtm::util::contract_error);

  core::fleet_config dead_centres;
  dead_centres.graph = grid;
  dead_centres.rsu_positions_m = {vtm::util::meters{500.0}, vtm::util::meters{1500.0}};
  EXPECT_THROW((void)core::run_fleet_scenario(dead_centres),
               vtm::util::contract_error);

  core::fleet_config no_platoon;
  no_platoon.platoon_size = 0;
  EXPECT_THROW((void)core::run_fleet_scenario(no_platoon),
               vtm::util::contract_error);

  // Graph shards must not exceed the graph's site count.
  core::fleet_config too_many;
  too_many.graph = grid;
  too_many.shard_count = grid->rsu_count() + 1;
  EXPECT_THROW((void)core::run_fleet_scenario(too_many),
               vtm::util::contract_error);
}

// Malformed topologies are rejected at graph construction.
TEST(road_graph, rejects_malformed_topologies) {
  using sim::road_edge;
  using sim::road_node;
  using sim::rsu_site;
  const std::vector<road_node> nodes(3);
  // Self-loop edge.
  EXPECT_THROW(sim::road_graph(nodes, {road_edge{1, 1, 100.0, 1.0, 1}},
                               {rsu_site{0, 50.0}}, {1}, {1}, 100.0),
               vtm::util::contract_error);
  // Site offset beyond its edge.
  EXPECT_THROW(sim::road_graph(nodes, {road_edge{0, 1, 100.0, 1.0, 1}},
                               {rsu_site{0, 150.0}}, {0}, {1}, 100.0),
               vtm::util::contract_error);
  // Sites not strictly (edge, offset)-sorted.
  EXPECT_THROW(
      sim::road_graph(nodes, {road_edge{0, 1, 100.0, 1.0, 1}},
                      {rsu_site{0, 80.0}, rsu_site{0, 40.0}}, {0}, {1}, 100.0),
      vtm::util::contract_error);
  // No surviving route (exit unreachable from entry).
  EXPECT_THROW(sim::road_graph(nodes, {road_edge{0, 1, 100.0, 1.0, 1}},
                               {rsu_site{0, 50.0}}, {1}, {0}, 100.0),
               vtm::util::contract_error);
}
