// Tests for the Stackelberg-equilibrium oracle: closed form vs numeric vs the
// generic game solver, the paper's anchor numbers, regimes, certificates, and
// comparative-statics properties of §V.
#include <gtest/gtest.h>

#include <cmath>

#include "core/equilibrium.hpp"
#include "core/game_adapter.hpp"
#include "game/stackelberg.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace core = vtm::core;

namespace {

core::market_params fig3ab_params(double cost) {
  core::market_params p;
  p.vmus = {{500.0, 200.0}, {500.0, 100.0}};
  p.unit_cost = cost;
  return p;
}

core::market_params fig3cd_params(std::size_t n_vmus) {
  core::market_params p;
  p.vmus.assign(n_vmus, {500.0, 100.0});
  return p;
}

}  // namespace

// ---- paper anchor numbers (unit calibration, DESIGN.md §3) -------------------------

TEST(oracle, paper_price_at_cost_5_is_25) {
  const auto eq =
      core::solve_equilibrium(core::migration_market(fig3ab_params(5.0)));
  EXPECT_NEAR(eq.price, 25.35, 0.05);  // paper Fig. 3(a): 25
  EXPECT_EQ(eq.regime, core::equilibrium_regime::interior);
}

TEST(oracle, paper_price_at_cost_9_is_34) {
  const auto eq =
      core::solve_equilibrium(core::migration_market(fig3ab_params(9.0)));
  EXPECT_NEAR(eq.price, 34.0, 0.05);  // paper Fig. 3(a): 34
}

TEST(oracle, paper_bandwidth_at_cost_8_is_23_4) {
  const auto eq =
      core::solve_equilibrium(core::migration_market(fig3ab_params(8.0)));
  EXPECT_NEAR(eq.total_demand, 23.4, 0.05);  // paper Fig. 3(b): 23.4
}

TEST(oracle, paper_bandwidth_at_cost_6_is_about_28) {
  const auto eq =
      core::solve_equilibrium(core::migration_market(fig3ab_params(6.0)));
  EXPECT_NEAR(eq.total_demand, 28.2, 0.4);  // paper Fig. 3(b): 27.9
}

TEST(oracle, paper_msp_utility_two_vmus_is_7_display_units) {
  const auto eq =
      core::solve_equilibrium(core::migration_market(fig3cd_params(2)));
  EXPECT_NEAR(eq.leader_utility / 100.0, 7.03, 0.05);  // paper Fig. 3(c)
}

TEST(oracle, paper_msp_utility_six_vmus_is_20_display_units) {
  const auto eq =
      core::solve_equilibrium(core::migration_market(fig3cd_params(6)));
  EXPECT_NEAR(eq.leader_utility / 100.0, 20.35, 0.1);  // paper Fig. 3(c)
  EXPECT_EQ(eq.regime, core::equilibrium_regime::capacity_bound);
}

TEST(oracle, theorem2_interior_closed_form) {
  // p* = sqrt(C·R·Σα/ΣD) in the paper's notation = sqrt(C·Σα/Σκ).
  const core::migration_market market(fig3ab_params(5.0));
  const double sum_alpha = 1000.0;
  const double sum_kappa = market.kappa(0) + market.kappa(1);
  const auto eq = core::solve_equilibrium(market);
  EXPECT_NEAR(eq.price, std::sqrt(5.0 * sum_alpha / sum_kappa), 1e-9);
  // And b*_n = α_n/p* − κ_n (eq. 8).
  EXPECT_NEAR(eq.demands[0], 500.0 / eq.price - market.kappa(0), 1e-9);
  EXPECT_NEAR(eq.demands[1], 500.0 / eq.price - market.kappa(1), 1e-9);
}

// ---- closed form vs numeric vs generic game solver ---------------------------------

struct market_case {
  const char* name;
  core::market_params params;
};

class oracle_cross_validation : public ::testing::TestWithParam<market_case> {
};

TEST_P(oracle_cross_validation, closed_form_matches_numeric) {
  const core::migration_market market(GetParam().params);
  const auto closed = core::solve_equilibrium(market);
  const auto numeric = core::solve_equilibrium_numeric(market);
  EXPECT_NEAR(closed.price, numeric.price, 1e-3) << GetParam().name;
  EXPECT_NEAR(closed.leader_utility, numeric.leader_utility,
              1e-6 * std::max(1.0, std::abs(closed.leader_utility)) + 1e-6)
      << GetParam().name;
}

TEST_P(oracle_cross_validation, closed_form_matches_generic_game_solver) {
  const core::migration_market market(GetParam().params);
  const auto closed = core::solve_equilibrium(market);
  const auto followers = core::make_followers(market);
  const auto problem = core::make_leader_problem(market);
  const auto generic = vtm::game::solve_stackelberg(problem, followers, 128);
  EXPECT_NEAR(generic.leader_utility, closed.leader_utility,
              1e-3 * std::max(1.0, std::abs(closed.leader_utility)))
      << GetParam().name;
  EXPECT_NEAR(generic.leader_action, closed.price, 0.05) << GetParam().name;
}

TEST_P(oracle_cross_validation, no_profitable_deviation) {
  const core::migration_market market(GetParam().params);
  const auto eq = core::solve_equilibrium(market);
  const auto check = core::verify_equilibrium(market, eq);
  EXPECT_TRUE(check.holds(1e-3 * std::max(1.0, eq.leader_utility)))
      << GetParam().name << ": leader gain " << check.max_leader_gain
      << ", follower gain " << check.max_follower_gain;
}

INSTANTIATE_TEST_SUITE_P(
    markets, oracle_cross_validation,
    ::testing::Values(
        market_case{"fig2_base", fig3ab_params(5.0)},
        market_case{"high_cost", fig3ab_params(9.0)},
        market_case{"single_vmu", fig3cd_params(1)},
        market_case{"capacity_bound_n6", fig3cd_params(6)},
        market_case{"heterogeneous",
                    [] {
                      core::market_params p;
                      p.vmus = {{600.0, 120.0}, {1500.0, 280.0},
                                {900.0, 210.0}};
                      return p;
                    }()},
        market_case{"tight_capacity",
                    [] {
                      core::market_params p;
                      p.vmus = {{800.0, 150.0}, {800.0, 150.0}};
                      p.bandwidth_cap_mhz = vtm::util::megahertz{12.0};
                      return p;
                    }()},
        market_case{"price_cap_binds",
                    [] {
                      core::market_params p;
                      p.vmus.assign(8, core::vmu_profile{2000.0, 100.0});
                      p.bandwidth_cap_mhz = vtm::util::megahertz{20.0};
                      p.price_cap = 40.0;
                      return p;
                    }()},
        market_case{"mixed_participation",
                    [] {
                      // Second VMU's α is so small it exits at the optimum.
                      core::market_params p;
                      p.vmus = {{1200.0, 200.0}, {90.0, 250.0}};
                      return p;
                    }()}),
    [](const auto& info) { return info.param.name; });

// ---- regimes --------------------------------------------------------------------------

TEST(regimes, price_cap_binds_when_demand_is_huge) {
  core::market_params p;
  p.vmus.assign(8, core::vmu_profile{2000.0, 100.0});
  p.bandwidth_cap_mhz = vtm::util::megahertz{20.0};
  p.price_cap = 40.0;
  const auto eq = core::solve_equilibrium(core::migration_market(p));
  EXPECT_EQ(eq.regime, core::equilibrium_regime::price_capped);
  EXPECT_DOUBLE_EQ(eq.price, 40.0);
  EXPECT_NEAR(eq.total_demand, 20.0, 1e-6);  // rationed to B_max
}

TEST(regimes, cost_floor_when_demand_is_weak) {
  core::market_params p;
  p.vmus = {{30.0, 250.0}};  // interior p* < C
  p.unit_cost = 8.0;
  const auto eq = core::solve_equilibrium(core::migration_market(p));
  EXPECT_EQ(eq.regime, core::equilibrium_regime::cost_floor);
  EXPECT_DOUBLE_EQ(eq.price, 8.0);
  EXPECT_NEAR(eq.leader_utility, 0.0, 1e-9);
}

TEST(regimes, capacity_boundary_clears_exactly) {
  const auto eq =
      core::solve_equilibrium(core::migration_market(fig3cd_params(5)));
  EXPECT_EQ(eq.regime, core::equilibrium_regime::capacity_bound);
  EXPECT_NEAR(eq.total_demand, 50.0, 1e-6);
}

TEST(regimes, names_are_stable) {
  EXPECT_STREQ(core::to_string(core::equilibrium_regime::interior),
               "interior");
  EXPECT_STREQ(core::to_string(core::equilibrium_regime::capacity_bound),
               "capacity-bound");
}

// ---- comparative statics (the shapes of Fig. 3) ----------------------------------------

TEST(statics, price_increases_with_cost) {
  std::vector<double> costs, prices;
  for (double c = 5.0; c <= 9.0; c += 1.0) {
    const auto eq =
        core::solve_equilibrium(core::migration_market(fig3ab_params(c)));
    costs.push_back(c);
    prices.push_back(eq.price);
  }
  EXPECT_GT(vtm::util::ols_slope(costs, prices), 0.0);
  for (std::size_t i = 1; i < prices.size(); ++i)
    EXPECT_GT(prices[i], prices[i - 1]);
}

TEST(statics, demand_and_utilities_decrease_with_cost) {
  double prev_demand = 1e18, prev_us = 1e18, prev_uv = 1e18;
  for (double c = 5.0; c <= 9.0; c += 1.0) {
    const auto eq =
        core::solve_equilibrium(core::migration_market(fig3ab_params(c)));
    EXPECT_LT(eq.total_demand, prev_demand);
    EXPECT_LT(eq.leader_utility, prev_us);
    EXPECT_LT(eq.total_vmu_utility, prev_uv);
    prev_demand = eq.total_demand;
    prev_us = eq.leader_utility;
    prev_uv = eq.total_vmu_utility;
  }
}

TEST(statics, msp_utility_increases_with_vmus) {
  double previous = 0.0;
  for (std::size_t n = 1; n <= 6; ++n) {
    const auto eq =
        core::solve_equilibrium(core::migration_market(fig3cd_params(n)));
    EXPECT_GT(eq.leader_utility, previous);
    previous = eq.leader_utility;
  }
}

TEST(statics, price_flat_then_rising_with_vmus) {
  // Fig. 3(c): "the price of the MSP remains unchanged initially and
  // increases later" (B_max binds from N = 4).
  const auto p2 =
      core::solve_equilibrium(core::migration_market(fig3cd_params(2))).price;
  const auto p3 =
      core::solve_equilibrium(core::migration_market(fig3cd_params(3))).price;
  const auto p5 =
      core::solve_equilibrium(core::migration_market(fig3cd_params(5))).price;
  const auto p6 =
      core::solve_equilibrium(core::migration_market(fig3cd_params(6))).price;
  EXPECT_NEAR(p2, p3, 1e-9);
  EXPECT_GT(p5, p3);
  EXPECT_GT(p6, p5);
}

TEST(statics, average_vmu_bandwidth_flat_then_falling) {
  // Fig. 3(d): average purchased bandwidth unchanged then decreasing.
  const auto b2 = core::solve_equilibrium(
                      core::migration_market(fig3cd_params(2)))
                      .total_demand /
                  2.0;
  const auto b3 = core::solve_equilibrium(
                      core::migration_market(fig3cd_params(3)))
                      .total_demand /
                  3.0;
  const auto b6 = core::solve_equilibrium(
                      core::migration_market(fig3cd_params(6)))
                      .total_demand /
                  6.0;
  EXPECT_NEAR(b2, b3, 1e-9);
  EXPECT_LT(b6, b3);
}

TEST(statics, average_vmu_utility_declines_with_competition) {
  // Fig. 3(d): average VMU utility decreases as N grows 2 -> 6.
  const auto u2 = core::solve_equilibrium(
                      core::migration_market(fig3cd_params(2)))
                      .total_vmu_utility /
                  2.0;
  const auto u6 = core::solve_equilibrium(
                      core::migration_market(fig3cd_params(6)))
                      .total_vmu_utility /
                  6.0;
  EXPECT_LT(u6, u2);
}

TEST(statics, aotm_reported_per_vmu) {
  const auto eq =
      core::solve_equilibrium(core::migration_market(fig3ab_params(5.0)));
  ASSERT_EQ(eq.aotm.size(), 2u);
  // VMU 0 carries twice the data; its equilibrium AoTM is larger.
  EXPECT_GT(eq.aotm[0], eq.aotm[1]);
  EXPECT_TRUE(std::isfinite(eq.aotm[0]));
}

TEST(statics, dropped_vmu_reports_infinite_aotm) {
  core::market_params p;
  p.vmus = {{1200.0, 200.0}, {90.0, 250.0}};  // second exits at optimum
  const auto eq = core::solve_equilibrium(core::migration_market(p));
  EXPECT_DOUBLE_EQ(eq.demands[1], 0.0);
  EXPECT_TRUE(std::isinf(eq.aotm[1]));
}
