// End-to-end acceptance for the RL-priced fleet market: train the
// partial-information pricer on harvested cohort snapshots, deploy it as the
// fleet engine's pricing backend, and require it to earn >= 90% of the
// oracle's MSP utility on an uncongested 100-vehicle fleet and >= 95% on the
// congested 5000-vehicle regime (cohorts > 60, price cap saturated).
// Deterministic given the seeds; the same ratios land in BENCH_fleet.json
// through bench/fleet_throughput --compare.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/env.hpp"
#include "core/fleet_scenario.hpp"
#include "core/mechanism.hpp"
#include "core/pricing_policy.hpp"

namespace core = vtm::core;

namespace {

core::fleet_config uncongested_fleet() {
  core::fleet_config config;
  config.vehicle_count = 100;
  config.duration_s = vtm::util::seconds{60.0};
  config.record_migrations = false;
  config.seed = 2023;
  return config;
}

core::fleet_config congested_fleet() {
  auto config = uncongested_fleet();
  config.vehicle_count = 5000;
  config.duration_s = vtm::util::seconds{30.0};
  return config;
}

double learned_over_oracle_ratio(
    const core::fleet_config& base,
    const std::shared_ptr<const core::learned_pricer>& pricer) {
  const auto oracle = core::run_fleet_scenario(base);
  auto learned_config = base;
  learned_config.pricing = core::pricing_backend::learned;
  learned_config.pricer = pricer;
  const auto learned = core::run_fleet_scenario(learned_config);
  EXPECT_GT(oracle.msp_total_utility, 0.0);
  return learned.msp_total_utility / oracle.msp_total_utility;
}

}  // namespace

TEST(fleet_pricer, beats_acceptance_thresholds_on_both_regimes) {
  core::fleet_pricer_config config;
  config.harvest = {uncongested_fleet(), congested_fleet()};
  config.seed = 42;
  const auto trained = core::train_fleet_pricer(config);

  ASSERT_NE(trained.pricer, nullptr);
  ASSERT_GT(trained.cohorts, 100u);
  // Per-cohort deterministic sweep: near-oracle on average, no catastrophic
  // single cohort.
  EXPECT_GE(trained.eval_mean_ratio, 0.97);
  EXPECT_GE(trained.eval_min_ratio, 0.85);

  // Full closed-loop fleets: the learned backend changes grants, completion
  // times, and therefore future cohorts — the ratio is end-to-end, not
  // per-clearing.
  const double uncongested =
      learned_over_oracle_ratio(uncongested_fleet(), trained.pricer);
  EXPECT_GE(uncongested, 0.90);

  const double congested =
      learned_over_oracle_ratio(congested_fleet(), trained.pricer);
  EXPECT_GE(congested, 0.95);

  // The checkpoint deploys without retraining: rebuilding the pricer from
  // the serialized blob reproduces the uncongested fleet bit for bit.
  const auto reloaded = std::make_shared<const core::learned_pricer>(
      core::learned_pricer_config{}, trained.checkpoint);
  auto learned_config = uncongested_fleet();
  learned_config.pricing = core::pricing_backend::learned;
  learned_config.pricer = trained.pricer;
  const auto direct = core::run_fleet_scenario(learned_config);
  learned_config.pricer = reloaded;
  const auto from_checkpoint = core::run_fleet_scenario(learned_config);
  EXPECT_EQ(direct.msp_total_utility, from_checkpoint.msp_total_utility);
  EXPECT_EQ(direct.completed, from_checkpoint.completed);
  EXPECT_EQ(direct.mean_price, from_checkpoint.mean_price);
}

TEST(fleet_pricer, training_is_deterministic_per_seed) {
  core::fleet_pricer_config config;
  config.harvest = {uncongested_fleet()};
  config.episodes = 40;  // determinism needs no convergence
  config.seed = 7;
  const auto a = core::train_fleet_pricer(config);
  const auto b = core::train_fleet_pricer(config);
  EXPECT_EQ(a.checkpoint, b.checkpoint);
  EXPECT_EQ(a.eval_mean_ratio, b.eval_mean_ratio);
  EXPECT_EQ(a.cohorts, b.cohorts);
}

TEST(fleet_pricer, harvested_cohorts_cover_the_congested_regime) {
  auto fleet = congested_fleet();
  fleet.record_cohorts = true;
  const auto result = core::run_fleet_scenario(fleet);
  ASSERT_FALSE(result.cohorts.empty());
  std::size_t biggest = 0;
  for (const auto& snapshot : result.cohorts)
    biggest = std::max(biggest, snapshot.profiles.size());
  // The regime the DRL pricer exists for: cohorts far beyond the two-VMU
  // paper market, priced over a shrinking pool remainder.
  EXPECT_GT(biggest, 60u);

  const auto prepared = core::prepare_cohorts(result.cohorts);
  ASSERT_FALSE(prepared.empty());
  for (const auto& cohort : prepared) {
    EXPECT_GT(cohort.oracle_utility, 0.0);
    EXPECT_EQ(cohort.features.size(), core::cohort_feature_dim);
  }
}
