// Tests for the wireless substrate: link budget and OFDMA pool.
#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.hpp"
#include "wireless/link.hpp"
#include "wireless/ofdma.hpp"

namespace w = vtm::wireless;

// ---- link budget -------------------------------------------------------------

TEST(link_budget, paper_parameters_give_expected_snr) {
  const w::link_budget link(w::link_params{});  // defaults = paper values
  // ρ=40dBm=10W, h0=−20dB=0.01, d=500m, ε=2, N0=−150dBm=1e−18W
  EXPECT_NEAR(link.tx_power_watt(), 10.0, 1e-9);
  EXPECT_NEAR(link.channel_gain(), 0.01 / (500.0 * 500.0), 1e-15);
  EXPECT_NEAR(link.noise_power_watt(), 1e-18, 1e-30);
  EXPECT_NEAR(link.snr(), 4.0e11, 1e6);
  EXPECT_NEAR(link.spectral_efficiency(), 38.541, 1e-3);
}

TEST(link_budget, rate_is_linear_in_bandwidth) {
  const w::link_budget link(w::link_params{});
  const double r1 = link.rate_mbps(1.0);
  EXPECT_NEAR(link.rate_mbps(10.0), 10.0 * r1, 1e-9);
  EXPECT_DOUBLE_EQ(link.rate_mbps(0.0), 0.0);
}

TEST(link_budget, rejects_invalid_geometry) {
  w::link_params bad;
  bad.distance_m = vtm::util::meters{0.0};
  EXPECT_THROW((void)w::link_budget{bad}, vtm::util::contract_error);
  bad.distance_m = vtm::util::meters{1.0};
  bad.path_loss_exponent = -1.0;
  EXPECT_THROW((void)w::link_budget{bad}, vtm::util::contract_error);
}

TEST(link_budget, transfer_seconds_inverse_in_bandwidth) {
  const w::link_budget link(w::link_params{});
  const double t1 = link.transfer_seconds(8.0e8, 1.0e6);
  const double t2 = link.transfer_seconds(8.0e8, 2.0e6);
  EXPECT_NEAR(t1, 2.0 * t2, 1e-9);
  EXPECT_THROW((void)link.transfer_seconds(1.0, 0.0), vtm::util::contract_error);
}

class link_distance_sweep : public ::testing::TestWithParam<double> {};

TEST_P(link_distance_sweep, efficiency_decreases_with_distance) {
  w::link_params near = {};
  w::link_params far = {};
  near.distance_m = vtm::util::meters{GetParam()};
  far.distance_m = vtm::util::meters{GetParam() * 2.0};
  EXPECT_GT(w::link_budget(near).spectral_efficiency(),
            w::link_budget(far).spectral_efficiency());
}

TEST_P(link_distance_sweep, efficiency_increases_with_power) {
  w::link_params weak = {};
  w::link_params strong = {};
  weak.distance_m = vtm::util::meters{GetParam()};
  strong.distance_m = vtm::util::meters{GetParam()};
  weak.tx_power_dbm = vtm::util::dbm{30.0};
  strong.tx_power_dbm = vtm::util::dbm{46.0};
  EXPECT_GT(w::link_budget(strong).spectral_efficiency(),
            w::link_budget(weak).spectral_efficiency());
}

INSTANTIATE_TEST_SUITE_P(distances, link_distance_sweep,
                         ::testing::Values(100.0, 250.0, 500.0, 1000.0,
                                           2000.0));

TEST(link_budget, path_loss_exponent_hurts) {
  w::link_params urban = {};
  urban.path_loss_exponent = 3.5;
  EXPECT_LT(w::link_budget(urban).spectral_efficiency(),
            w::link_budget(w::link_params{}).spectral_efficiency());
}

// ---- OFDMA pool -----------------------------------------------------------------

TEST(ofdma, allocates_within_capacity) {
  w::ofdma_pool pool(50.0);
  const auto grant = pool.allocate(20.0);
  ASSERT_TRUE(grant.has_value());
  EXPECT_DOUBLE_EQ(pool.allocated_mhz(), 20.0);
  EXPECT_DOUBLE_EQ(pool.available_mhz(), 30.0);
  EXPECT_EQ(pool.active_grants(), 1u);
}

TEST(ofdma, rejects_over_capacity) {
  w::ofdma_pool pool(50.0);
  ASSERT_TRUE(pool.allocate(40.0).has_value());
  EXPECT_FALSE(pool.allocate(11.0).has_value());
  EXPECT_TRUE(pool.allocate(10.0).has_value());  // exactly fits
  EXPECT_DOUBLE_EQ(pool.available_mhz(), 0.0);
}

TEST(ofdma, release_returns_capacity) {
  w::ofdma_pool pool(50.0);
  const auto a = pool.allocate(30.0);
  const auto b = pool.allocate(20.0);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(pool.release(*a));
  EXPECT_DOUBLE_EQ(pool.available_mhz(), 30.0);
  EXPECT_EQ(pool.active_grants(), 1u);
  EXPECT_TRUE(pool.release(*b));
  EXPECT_DOUBLE_EQ(pool.available_mhz(), 50.0);
}

TEST(ofdma, release_is_idempotent_safe) {
  w::ofdma_pool pool(10.0);
  const auto grant = pool.allocate(5.0);
  ASSERT_TRUE(grant);
  EXPECT_TRUE(pool.release(*grant));
  EXPECT_FALSE(pool.release(*grant));  // second release is a no-op
  EXPECT_FALSE(pool.release(w::grant_id{9999}));
}

TEST(ofdma, grant_lookup) {
  w::ofdma_pool pool(10.0);
  const auto grant = pool.allocate(3.0);
  ASSERT_TRUE(grant);
  EXPECT_DOUBLE_EQ(pool.grant_mhz(*grant).value(), 3.0);
  EXPECT_FALSE(pool.grant_mhz(w::grant_id{1234}).has_value());
}

TEST(ofdma, granularity_rounds_up) {
  w::ofdma_pool pool(10.0, 0.5);
  EXPECT_DOUBLE_EQ(pool.rounded(1.2), 1.5);
  EXPECT_DOUBLE_EQ(pool.rounded(1.5), 1.5);
  const auto grant = pool.allocate(1.2);
  ASSERT_TRUE(grant);
  EXPECT_DOUBLE_EQ(pool.grant_mhz(*grant).value(), 1.5);
}

TEST(ofdma, rejects_invalid_construction_and_requests) {
  EXPECT_THROW((void)w::ofdma_pool(0.0), vtm::util::contract_error);
  w::ofdma_pool pool(10.0);
  EXPECT_THROW((void)pool.allocate(0.0), vtm::util::contract_error);
  EXPECT_THROW((void)pool.allocate(-1.0), vtm::util::contract_error);
}

TEST(ofdma, orthogonality_invariant_under_churn) {
  // Many allocate/release cycles never overshoot capacity.
  w::ofdma_pool pool(50.0);
  std::vector<w::grant_id> grants;
  for (int round = 0; round < 200; ++round) {
    const double request = 1.0 + (round % 7);
    const auto grant = pool.allocate(request);
    if (grant) grants.push_back(*grant);
    EXPECT_LE(pool.allocated_mhz(), 50.0 + 1e-9);
    EXPECT_GE(pool.available_mhz(), -1e-9);
    if (grants.size() > 5) {
      pool.release(grants.front());
      grants.erase(grants.begin());
    }
  }
}
