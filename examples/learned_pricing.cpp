// Learned pricing under incomplete information: train the PPO-based MSP
// agent (Algorithm 1) on the two-VMU market, watch it converge toward the
// Stackelberg equilibrium it was never told about, and compare against the
// random and greedy baseline schemes.
//
//   $ ./learned_pricing [episodes] [learning_rate] [num_envs]
//
// With num_envs > 1 (default 4) training collects rollouts through the
// batched engine: rl::vector_env steps B market replicas in lockstep and
// the policy samples all B actions in one batched forward pass.
#include <cstdio>
#include <cstdlib>

#include "core/evaluation.hpp"
#include "core/fleet_scenario.hpp"
#include "core/mechanism.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  vtm::core::market_params params;
  params.vmus = {{500.0, 200.0}, {500.0, 100.0}};

  vtm::core::mechanism_config config;
  config.trainer.episodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  config.ppo.learning_rate = argc > 2 ? std::strtod(argv[2], nullptr) : 3e-4;
  config.rollout.num_envs =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;
  config.rollout.fast_rollout = config.rollout.num_envs > 1;
  config.seed = 42;

  std::printf("Training the MSP agent: %zu episodes x %zu rounds, "
              "lr = %g, reward = %s (eta = %g), rollout B = %zu (%s)\n\n",
              config.trainer.episodes, config.env.rounds_per_episode,
              config.ppo.learning_rate, vtm::core::to_string(config.env.mode),
              config.env.reward_tolerance, config.rollout.num_envs,
              config.rollout.num_envs > 1 ? "batched vector_env"
                                          : "single env");

  const auto result = vtm::core::run_learning_mechanism(
      params, config, [&](const vtm::rl::episode_stats& stats) {
        if (stats.episode % 20 == 0 ||
            stats.episode + 1 == config.trainer.episodes) {
          std::printf("episode %4zu | return %6.1f | mean U_s %8.2f | "
                      "entropy %6.3f\n",
                      stats.episode, stats.episode_return, stats.mean_utility,
                      stats.policy_entropy);
        }
      });

  std::printf("\nAnalytic Stackelberg equilibrium: price %.3f, U_s %.2f\n",
              result.oracle.price, result.oracle.leader_utility);
  std::printf("Learned policy (deterministic eval): price %.3f, U_s %.2f "
              "-> %.2f%% of the oracle\n",
              result.learned_price, result.learned_utility,
              100.0 * result.optimality());

  const auto baselines = vtm::core::run_paper_baselines(
      params, /*episodes=*/20, /*rounds=*/100, /*seed=*/7);

  vtm::util::ascii_table table(
      {"scheme", "mean U_s", "best U_s", "mean price"});
  table.add_row({"DRL (ours)", vtm::util::format_number(result.learned_utility),
                 vtm::util::format_number(result.oracle.leader_utility),
                 vtm::util::format_number(result.learned_price)});
  for (const auto& baseline : baselines) {
    table.add_row({baseline.name,
                   vtm::util::format_number(baseline.mean_utility),
                   vtm::util::format_number(baseline.best_utility),
                   vtm::util::format_number(baseline.mean_price)});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("\nThe agent never observes (alpha_n, D_n) — only the history of "
              "prices and purchased bandwidths (eq. 11) and the binary "
              "reward (eq. 12) — yet recovers the monopoly price.\n");

  // Checkpoint workflow: train once, serialize the policy, and redeploy it
  // on a shifted market (higher transmission cost) without retraining.
  auto quick = config;
  quick.trainer.episodes = std::min<std::size_t>(config.trainer.episodes, 80);
  const auto trained = vtm::core::train_with_checkpoint(params, quick);
  auto shifted = params;
  shifted.unit_cost = 7.0;
  const double transferred =
      vtm::core::evaluate_checkpoint(shifted, quick, trained.checkpoint);
  const auto shifted_oracle = vtm::core::solve_equilibrium(
      vtm::core::migration_market(shifted));
  std::printf("\nCheckpoint transfer: policy trained at C=5 earns %.1f on a "
              "C=7 market (its oracle: %.1f) zero-shot — %.0f%% without "
              "retraining (%zu-byte checkpoint).\n",
              transferred, shifted_oracle.leader_utility,
              100.0 * transferred / shifted_oracle.leader_utility,
              trained.checkpoint.size());

  // Fleet deployment: train the partial-information pricer on cohorts
  // harvested from the event-driven fleet engine, then let it price an
  // entire fleet run instead of the analytic oracle. The policy sees only
  // cohort summaries (size, pool remainder, alpha/kappa statistics) — never
  // an individual profile — yet tracks the oracle's per-run MSP utility.
  vtm::core::fleet_config fleet;
  fleet.vehicle_count = 100;
  fleet.duration_s = vtm::util::seconds{60.0};
  fleet.record_migrations = false;
  vtm::core::fleet_config congested = fleet;
  congested.vehicle_count = 5000;
  congested.duration_s = vtm::util::seconds{30.0};

  vtm::core::fleet_pricer_config pricer_config;
  pricer_config.harvest = {fleet, congested};
  pricer_config.seed = 42;
  const auto fleet_pricer = vtm::core::train_fleet_pricer(pricer_config);
  std::printf("\nFleet pricer: %zu harvested cohorts, deterministic "
              "per-cohort eval %.1f%% of oracle (min %.1f%%).\n",
              fleet_pricer.cohorts, 100.0 * fleet_pricer.eval_mean_ratio,
              100.0 * fleet_pricer.eval_min_ratio);

  vtm::util::ascii_table fleet_table(
      {"fleet", "oracle U_s", "learned U_s", "learned/oracle"});
  for (const auto& base : {fleet, congested}) {
    const auto oracle_run = vtm::core::run_fleet_scenario(base);
    auto learned_run_config = base;
    learned_run_config.pricing = vtm::core::pricing_backend::learned;
    learned_run_config.pricer = fleet_pricer.pricer;
    const auto learned_run = vtm::core::run_fleet_scenario(learned_run_config);
    fleet_table.add_row(std::vector<double>{
        static_cast<double>(base.vehicle_count),
        oracle_run.msp_total_utility, learned_run.msp_total_utility,
        learned_run.msp_total_utility / oracle_run.msp_total_utility});
  }
  std::printf("\n%s", fleet_table.render().c_str());
  std::printf("\nThe learned backend is the first end-to-end path where the "
              "mechanism, not the closed form, prices the fleet simulation.\n");
  return 0;
}
