// Marketplace comparative statics through the public API: how the
// equilibrium price, bandwidth, and both sides' utilities respond to the
// transmission cost, the population size, and the capacity — the economics
// behind Fig. 3, plus a capacity sweep the paper leaves implicit.
//
//   $ ./marketplace_sweep
#include <cstdio>

#include "core/equilibrium.hpp"
#include "core/game_adapter.hpp"
#include "game/stackelberg.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

vtm::core::market_params base_market(std::size_t n_vmus) {
  vtm::core::market_params params;
  params.vmus.assign(n_vmus, vtm::core::vmu_profile{500.0, 100.0});
  return params;
}

}  // namespace

int main() {
  // Sweep 1: unit transmission cost (Fig. 3a/3b economics).
  std::printf("== Cost sweep (N = 2, D = (200, 100) MB) ==\n");
  vtm::util::ascii_table cost_table(
      {"C", "p*", "sum b*", "U_s", "sum U_n", "regime"});
  for (double cost = 5.0; cost <= 9.0; cost += 1.0) {
    vtm::core::market_params params;
    params.vmus = {{500.0, 200.0}, {500.0, 100.0}};
    params.unit_cost = cost;
    const auto eq =
        vtm::core::solve_equilibrium(vtm::core::migration_market(params));
    cost_table.add_row({vtm::util::format_number(cost),
                        vtm::util::format_number(eq.price),
                        vtm::util::format_number(eq.total_demand),
                        vtm::util::format_number(eq.leader_utility),
                        vtm::util::format_number(eq.total_vmu_utility),
                        vtm::core::to_string(eq.regime)});
  }
  std::printf("%s\n", cost_table.render().c_str());

  // Sweep 2: population size (Fig. 3c/3d economics).
  std::printf("== Population sweep (D = 100 MB, alpha = 500) ==\n");
  vtm::util::ascii_table n_table(
      {"N", "p*", "avg b*", "U_s", "avg U_n", "regime"});
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto eq = vtm::core::solve_equilibrium(
        vtm::core::migration_market(base_market(n)));
    n_table.add_row({vtm::util::format_number(static_cast<double>(n)),
                     vtm::util::format_number(eq.price),
                     vtm::util::format_number(eq.total_demand /
                                              static_cast<double>(n)),
                     vtm::util::format_number(eq.leader_utility),
                     vtm::util::format_number(eq.total_vmu_utility /
                                              static_cast<double>(n)),
                     vtm::core::to_string(eq.regime)});
  }
  std::printf("%s\n", n_table.render().c_str());

  // Sweep 3: bandwidth capacity (what would more spectrum buy the MSP?).
  std::printf("== Capacity sweep (N = 6, D = 100 MB) ==\n");
  vtm::util::ascii_table cap_table({"B_max", "p*", "U_s", "regime"});
  for (double cap : {20.0, 35.0, 50.0, 65.0, 80.0, 95.0}) {
    auto params = base_market(6);
    params.bandwidth_cap_mhz = vtm::util::megahertz{cap};
    const auto eq =
        vtm::core::solve_equilibrium(vtm::core::migration_market(params));
    cap_table.add_row({vtm::util::format_number(cap),
                       vtm::util::format_number(eq.price),
                       vtm::util::format_number(eq.leader_utility),
                       vtm::core::to_string(eq.regime)});
  }
  std::printf("%s\n", cap_table.render().c_str());

  // Cross-validation: the closed-form oracle against the generic solver
  // that only sees black-box utilities.
  const vtm::core::migration_market market(base_market(4));
  const auto closed = vtm::core::solve_equilibrium(market);
  const auto followers = vtm::core::make_followers(market);
  const auto problem = vtm::core::make_leader_problem(market);
  const auto generic = vtm::game::solve_stackelberg(problem, followers);
  std::printf("Cross-check (N = 4): closed-form p* = %.4f vs black-box "
              "solver p* = %.4f (utility %.2f vs %.2f)\n",
              closed.price, generic.leader_action, closed.leader_utility,
              generic.leader_utility);
  return 0;
}
