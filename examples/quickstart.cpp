// Quickstart: the paper's model in ~60 lines of public API.
//
// Builds the two-VMU migration market from §V-A, computes AoTM and immersion
// for a hand-picked bandwidth, then solves the Stackelberg equilibrium and
// certifies it.
//
//   $ ./quickstart
#include <cstdio>

#include "core/aotm.hpp"
#include "core/equilibrium.hpp"
#include "core/market.hpp"

int main() {
  // 1. Market: one MSP, two VMUs. α is in the ×100 unit calibration
  //    (paper's "α = 5" ⇒ 500; see DESIGN.md §3), D in MB.
  vtm::core::market_params params;
  params.vmus = {{/*alpha=*/500.0, /*data_mb=*/200.0},
                 {/*alpha=*/500.0, /*data_mb=*/100.0}};
  params.bandwidth_cap_mhz = vtm::util::megahertz{50.0};  // B_max
  params.unit_cost = 5.0;           // C
  params.price_cap = 50.0;          // p_max
  const vtm::core::migration_market market(params);

  std::printf("Channel: SNR %.3g, spectral efficiency R = %.2f bit/s/Hz\n",
              market.link().snr(), market.spectral_efficiency());

  // 2. Age of Twin Migration (eq. 1) for VMU 0 at 10 MHz.
  const double bandwidth = 10.0;
  const double aotm = market.aotm(0, bandwidth);
  std::printf("VMU 0 at %.0f MHz: AoTM = %.3f, immersion = %.1f, "
              "utility at p=25: %.1f\n",
              bandwidth, aotm, vtm::core::immersion(500.0, aotm),
              market.vmu_utility(0, bandwidth, 25.0));

  // 3. Best responses (eq. 8) at a posted price.
  const double price = 25.0;
  for (std::size_t n = 0; n < market.vmu_count(); ++n)
    std::printf("VMU %zu best response to p=%.0f: %.2f MHz\n", n, price,
                market.best_response(n, price));

  // 4. Stackelberg equilibrium (Theorems 1-2) and its certificate.
  const auto eq = vtm::core::solve_equilibrium(market);
  std::printf("\nStackelberg equilibrium (%s regime):\n",
              vtm::core::to_string(eq.regime));
  std::printf("  price p* = %.3f, total bandwidth %.2f MHz\n", eq.price,
              eq.total_demand);
  std::printf("  MSP utility %.1f, total VMU utility %.1f\n",
              eq.leader_utility, eq.total_vmu_utility);
  for (std::size_t n = 0; n < market.vmu_count(); ++n)
    std::printf("  VMU %zu: b* = %.2f MHz, AoTM %.3f, U_n %.1f\n", n,
                eq.demands[n], eq.aotm[n], eq.vmu_utilities[n]);

  const auto certificate = vtm::core::verify_equilibrium(market, eq);
  std::printf("No-deviation certificate: leader gain %.2g, follower gain "
              "%.2g -> %s\n",
              certificate.max_leader_gain, certificate.max_follower_gain,
              certificate.holds(1e-3) ? "equilibrium verified" : "VIOLATED");
  return 0;
}
