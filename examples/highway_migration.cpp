// Highway scenario: the full pipeline the paper motivates — vehicles moving
// along an RSU chain, coverage handovers triggering VT migrations, joint
// epoch-based spot pricing at the Stackelberg equilibrium, bandwidth grants
// from the OFDMA pool, and pre-copy live migration with dirty-page
// retransmission.
//
// Compares the closed-form AoTM (eq. 1) against the AoTM measured from the
// simulated block timeline for every migration. The cohort column shows how
// many followers were priced together in the migration's market; pass
// "single" to restore the legacy one-VMU-at-a-time spot market.
//
//   $ ./highway_migration [vehicles] [duration_s] [dirty_rate_mb_s] [mode]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/scenario.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  vtm::core::scenario_config config;
  if (argc > 1) config.vehicle_count = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) config.duration_s = vtm::util::seconds{std::strtod(argv[2], nullptr)};
  if (argc > 3) config.dirty_rate_mb_s = vtm::util::mb_per_s{std::strtod(argv[3], nullptr)};
  if (argc > 4 && std::strcmp(argv[4], "single") == 0)
    config.mode = vtm::core::market_mode::single;

  std::printf("Highway: %zu RSUs every %.0f m (coverage %.0f m), %zu "
              "vehicles, %.0f s horizon, dirty rate %.0f MB/s, %s market\n\n",
              config.rsu_count, config.rsu_spacing_m,
              config.coverage_radius_m, config.vehicle_count,
              config.duration_s, config.dirty_rate_mb_s,
              config.mode == vtm::core::market_mode::joint ? "joint"
                                                           : "single");

  const auto result = vtm::core::run_highway_scenario(config);

  vtm::util::ascii_table table({"t (s)", "veh", "RSU", "price", "b (MHz)",
                                "cohort", "AoTM eq.1", "AoTM sim", "downtime",
                                "sent (MB)", "U_vmu", "U_msp"});
  for (const auto& m : result.migrations) {
    table.add_row({vtm::util::format_number(m.start_s),
                   std::to_string(m.vehicle),
                   std::to_string(m.from_rsu) + "->" +
                       std::to_string(m.to_rsu),
                   vtm::util::format_number(m.price),
                   vtm::util::format_number(m.bandwidth_mhz),
                   std::to_string(m.cohort),
                   vtm::util::format_number(m.aotm_closed_form),
                   vtm::util::format_number(m.aotm_simulated),
                   vtm::util::format_number(m.downtime_s),
                   vtm::util::format_number(m.data_sent_mb),
                   vtm::util::format_number(m.vmu_utility),
                   vtm::util::format_number(m.msp_utility)});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nHandovers: %zu (deferred %zu, priced out %zu, abandoned "
              "%zu), migrations completed: %zu\n",
              result.handovers, result.deferred, result.priced_out,
              result.abandoned, result.completed);
  std::printf("MSP total utility: %.1f | VMU total utility: %.1f\n",
              result.msp_total_utility, result.vmu_total_utility);
  std::printf("Mean AoTM: %.3f | pre-copy data amplification: %.3fx\n",
              result.mean_aotm, result.mean_amplification);
  std::printf("\nNote: AoTM(sim) >= AoTM(eq.1) because live pre-copy re-sends"
              " pages dirtied during the transfer; they match exactly when "
              "the dirty rate is 0 (try: %s 3 120 0).\n", argv[0]);
  return 0;
}
