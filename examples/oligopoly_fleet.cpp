// Competitive multi-MSP fleet market (market_mode::oligopoly, DESIGN.md
// §11): the same 8-RSU fleet cleared by one monopolist and then by two
// competing MSPs whose chains overlap. Competition prices every cohort
// through the softmin-Bertrand best-response fixed point, so clearing
// prices drop below the monopoly price and fall further as the share
// sharpness λ grows; an asymmetric (cheaper, offset-chain) entrant wins
// share and profit.
//
//   $ ./oligopoly_fleet [vehicles]
#include <cstdio>
#include <cstdlib>

#include "core/fleet_scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  vtm::core::fleet_config base;  // 8 RSUs, per-RSU 50 MHz pools, 120 s
  base.vehicle_count =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  base.record_migrations = false;

  const auto monopoly = vtm::core::run_fleet_scenario(base);
  std::printf("monopoly (market_mode::joint): %zu migrations, mean price "
              "%.2f, U_s %.0f\n\n",
              monopoly.completed, monopoly.mean_price,
              monopoly.msp_total_utility);

  // Two identical MSPs, increasingly price-sensitive buyers: the posted
  // equilibrium prices undercut the monopoly and approach cost as λ grows.
  vtm::util::ascii_table table({"lambda", "mean price", "U_s total",
                                "U_s MSP0", "U_s MSP1", "VMU utility"});
  for (const double lambda : {0.1, 0.25, 1.0, 4.0}) {
    auto duo = base;
    duo.mode = vtm::core::market_mode::oligopoly;
    duo.msps = {{vtm::util::meters{0.0}, duo.unit_cost, duo.price_cap, vtm::util::megahertz{duo.bandwidth_per_pool_mhz}}, {vtm::util::meters{0.0}, duo.unit_cost, duo.price_cap, vtm::util::megahertz{duo.bandwidth_per_pool_mhz}}};
    duo.share_sharpness = lambda;
    const auto r = vtm::core::run_fleet_scenario(duo);
    table.add_row(std::vector<double>{lambda, r.mean_price,
                                      r.msp_total_utility,
                                      r.msp_utilities[0], r.msp_utilities[1],
                                      r.vmu_total_utility});
  }
  std::printf("symmetric duopoly vs lambda (monopoly price %.2f):\n%s\n",
              monopoly.mean_price, table.render().c_str());

  // An entrant with cheaper transmission and its own RSU deployment 150 m
  // downstream: overlapping coverage means every clearing is contested, and
  // the cost advantage converts into share.
  auto entrant = base;
  entrant.mode = vtm::core::market_mode::oligopoly;
  entrant.msps = {{vtm::util::meters{0.0}, 5.0, 50.0, vtm::util::megahertz{50.0}}, {vtm::util::meters{150.0}, 3.5, 50.0, vtm::util::megahertz{50.0}}};
  entrant.share_sharpness = 1.0;
  const auto r = vtm::core::run_fleet_scenario(entrant);
  std::printf("asymmetric entrant (cost 3.5 vs 5.0, +150 m offset chain):\n"
              "  mean price %.2f | sold MHz %.0f vs %.0f | U_s %.0f vs "
              "%.0f\n",
              r.mean_price, r.msp_sold_mhz[0], r.msp_sold_mhz[1],
              r.msp_utilities[0], r.msp_utilities[1]);
  std::printf("\nEvery cohort still clears exactly once (handovers %zu == "
              "completed %zu + priced_out %zu + abandoned %zu), and each "
              "seller's sales respect its own pool caps.\n",
              r.handovers, r.completed, r.priced_out, r.abandoned);
  return 0;
}
