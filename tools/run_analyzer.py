#!/usr/bin/env python3
"""GCC static-analyzer gate: run -fanalyzer over every first-party TU.

Reads compile_commands.json from a build directory (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON), re-drives each src/ TU through
`g++ -fanalyzer -fsyntax-only` with the TU's own include/define flags, and
fails on any -Wanalyzer-* diagnostic that is not on the curated suppression
list below. Tests/benches/examples are excluded on purpose: the analyzer's
interprocedural exploration of gtest/benchmark macros is all framework code
and drowns first-party signal.

Usage: run_analyzer.py --build-dir build [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import re
import shlex
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

# Curated suppressions. Each entry must carry a rationale; an entry without
# one is a review error. Keep this list short — the tree is analyzer-clean
# today, so anything new the analyzer reports is either a real defect or a
# new checker false positive that earns its own documented entry.
SUPPRESSIONS = (
    # The bail-out diagnostic, not a code defect: it fires when a TU's
    # exploded graph exceeds the analyzer's budget and only says "analysis
    # was incomplete". Gating on it would make graph-size an API contract.
    "-Wno-analyzer-too-complex",
    # GCC's analyzer does not model the libstdc++ operator-new /
    # allocator pairing and reports spurious leaks of container storage
    # (GCC PR analyzer/105957 family: -Wanalyzer-malloc-leak false
    # positives on std::vector growth). Real leaks in this codebase are
    # caught by the dedicated ASan/LSan CI job, which runs the whole test
    # suite under leak detection.
    "-Wno-analyzer-malloc-leak",
)

# Flags from compile_commands.json worth forwarding: includes, defines,
# standard, warnings. Codegen flags (-march, -O) are re-pinned below so the
# analyzer run is identical across hosts.
KEEP_FLAG_RE = re.compile(r"^(-I|-isystem|-D|-U|-std=)")

ANALYZER_FLAGS = ["-O1", "-fanalyzer", "-fsyntax-only"]


def analyzer_command(entry: dict) -> list[str] | None:
    file = entry["file"]
    if "/src/" not in file.replace("\\", "/"):
        return None
    args = (shlex.split(entry["command"]) if "command" in entry
            else list(entry["arguments"]))
    kept: list[str] = []
    i = 1  # skip the compiler itself
    while i < len(args):
        arg = args[i]
        if KEEP_FLAG_RE.match(arg):
            kept.append(arg)
            if arg in ("-I", "-isystem", "-D", "-U") and i + 1 < len(args):
                i += 1
                kept.append(args[i])
        i += 1
    return (["g++"] + kept + ANALYZER_FLAGS + list(SUPPRESSIONS) + [file])


def run_one(cmd: list[str], directory: str) -> tuple[str, str]:
    proc = subprocess.run(cmd, cwd=directory, capture_output=True, text=True)
    findings = "\n".join(
        line for line in proc.stderr.splitlines()
        if "-Wanalyzer" in line or "internal compiler error" in line)
    if proc.returncode != 0 and not findings:
        findings = proc.stderr.strip()  # hard error: surface everything
    return cmd[-1], findings


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    db_path = Path(args.build_dir) / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_analyzer: {db_path} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 2
    entries = json.loads(db_path.read_text())

    work = []
    for entry in entries:
        cmd = analyzer_command(entry)
        if cmd is not None:
            work.append((cmd, entry["directory"]))
    if not work:
        print("run_analyzer: no src/ TUs in the compilation database",
              file=sys.stderr)
        return 2

    failures = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for file, findings in pool.map(lambda w: run_one(*w), work):
            if findings:
                failures += 1
                print(f"== {file}\n{findings}")
    print(f"run_analyzer: {len(work)} TUs analyzed, "
          f"{failures} with findings")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
