#!/usr/bin/env python3
"""trace_summary: summarize / validate a VTM Chrome trace_event JSON file.

The fleet engine (util/trace.hpp, DESIGN.md §16) records RAII spans ("X"
complete events) and instant markers ("i") on one track per lane (tid =
shard index, the last tid is the coordinator). This tool digests the export
without opening Perfetto:

  summary (default)
      Per-span-name aggregate over all lanes: count, total wall time, and
      *self* time (total minus the time covered by nested spans on the same
      lane — the quantity that ranks where the run actually went), plus a
      per-lane utilisation breakdown and the instant-marker counts.

  --validate
      Machine check for CI: the file must be a Chrome trace_event object
      with well-formed events (known phases, named, non-negative durations,
      per-lane spans properly nested), contain at least one span, and keep
      the engine's structural invariants (every "stream.flush" instant sits
      on the coordinator lane; a lane with market.clear spans also ran
      shard windows). Exit 0 when clean, 1 with a reason per violation.

Usage:
  trace_summary.py TRACE.json [--top N] [--validate]
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

KNOWN_PHASES = {"X", "i", "M"}


def load_events(path: Path) -> list[dict]:
    with path.open(encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    return events


def lane_names(events: list[dict]) -> dict[int, str]:
    names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev.get("tid", 0)] = ev.get("args", {}).get("name", "?")
    return names


def spans_by_lane(events: list[dict]) -> dict[int, list[dict]]:
    lanes: dict[int, list[dict]] = defaultdict(list)
    for ev in events:
        if ev.get("ph") == "X":
            lanes[ev.get("tid", 0)].append(ev)
    for lane in lanes.values():
        # Parents first on ties: longer spans open before their children.
        lane.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
    return lanes


def self_times(lane: list[dict]) -> list[tuple[dict, float]]:
    """(event, self_time_us) per span, via a containment stack: a span's
    self time is its duration minus the durations of its direct children."""
    out = []
    stack: list[list] = []  # [end_ts, event, child_total]
    for ev in lane:
        ts, dur = ev["ts"], ev.get("dur", 0)
        while stack and ts >= stack[-1][0] - 1e-9:
            end, done, child = stack.pop()
            out.append((done, done.get("dur", 0) - child))
        if stack:
            stack[-1][2] += dur
        stack.append([ts + dur, ev, 0.0])
    while stack:
        end, done, child = stack.pop()
        out.append((done, done.get("dur", 0) - child))
    return out


def summarize(events: list[dict], top: int) -> None:
    names = lane_names(events)
    lanes = spans_by_lane(events)
    agg: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    lane_busy: dict[int, float] = defaultdict(float)
    for tid, lane in sorted(lanes.items()):
        for ev, self_us in self_times(lane):
            row = agg[ev["name"]]
            row[0] += 1
            row[1] += ev.get("dur", 0)
            row[2] += self_us
            lane_busy[tid] += self_us
    instants: dict[str, int] = defaultdict(int)
    for ev in events:
        if ev.get("ph") == "i":
            instants[ev["name"]] += 1

    total_self = sum(lane_busy.values()) or 1.0
    print(f"{'span':<24} {'count':>8} {'total ms':>10} {'self ms':>10} "
          f"{'self %':>7}")
    ranked = sorted(agg.items(), key=lambda kv: -kv[1][2])
    for name, (count, tot, self_us) in ranked[:top]:
        print(f"{name:<24} {int(count):>8} {tot / 1000.0:>10.3f} "
              f"{self_us / 1000.0:>10.3f} {100.0 * self_us / total_self:>6.1f}%")
    if len(ranked) > top:
        print(f"... {len(ranked) - top} more span name(s)")

    print("\nper-lane self time:")
    for tid in sorted(lanes):
        label = names.get(tid, f"tid {tid}")
        print(f"  {label:<14} {lane_busy[tid] / 1000.0:>10.3f} ms "
              f"({len(lanes[tid])} spans)")
    if instants:
        print("\ninstant markers:")
        for name in sorted(instants):
            print(f"  {name:<24} {instants[name]}")


def validate(events: list[dict]) -> list[str]:
    errors = []
    names = lane_names(events)
    span_count = 0
    for idx, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {idx}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"event {idx}: unknown phase {ph!r}")
            continue
        if not ev.get("name"):
            errors.append(f"event {idx}: missing name")
        if ph == "X":
            span_count += 1
            if "ts" not in ev:
                errors.append(f"event {idx}: span without ts")
            if ev.get("dur", -1) < 0:
                errors.append(f"event {idx}: span {ev.get('name')!r} has "
                              "negative or missing dur")
    if span_count == 0:
        errors.append("no complete ('X') spans — instrumentation recorded "
                      "nothing")
        return errors

    # Per-lane spans must nest: recording is single-threaded per lane and
    # spans are RAII scopes, so overlap without containment is a writer bug.
    for tid, lane in sorted(spans_by_lane(events).items()):
        open_ends: list[float] = []
        for ev in lane:
            ts, end = ev["ts"], ev["ts"] + ev.get("dur", 0)
            while open_ends and ts >= open_ends[-1] - 1e-9:
                open_ends.pop()
            if open_ends and end > open_ends[-1] + 1e-9:
                errors.append(
                    f"lane {tid}: span {ev['name']!r} at ts {ts} crosses its "
                    "enclosing span's end — spans must nest")
                break
            open_ends.append(end)

    # Structural invariants of the fleet engine's instrumentation.
    coord_tids = {tid for tid, n in names.items() if n == "coordinator"}
    for idx, ev in enumerate(events):
        if ev.get("ph") == "i" and ev.get("name") == "stream.flush":
            if coord_tids and ev.get("tid") not in coord_tids:
                errors.append(f"event {idx}: stream.flush instant on lane "
                              f"{ev.get('tid')} — flushes are coordinator-"
                              "only")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", type=Path, help="Chrome trace JSON file")
    parser.add_argument("--top", type=int, default=12,
                        help="span names to list in the summary (default 12)")
    parser.add_argument("--validate", action="store_true",
                        help="CI mode: check well-formedness, exit 1 on any "
                             "violation")
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"trace_summary: {args.trace}: {err}", file=sys.stderr)
        return 1

    if args.validate:
        errors = validate(events)
        for err in errors:
            print(f"trace_summary: INVALID: {err}")
        if errors:
            return 1
        spans = sum(1 for e in events if e.get("ph") == "X")
        instants = sum(1 for e in events if e.get("ph") == "i")
        print(f"trace_summary: OK ({spans} spans, {instants} instants, "
              f"{len(lane_names(events))} lanes)")
        return 0

    summarize(events, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
