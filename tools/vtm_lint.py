#!/usr/bin/env python3
"""vtm_lint: repo-specific determinism & concurrency lint for the VTM tree.

Enforces the project rules that generic tools (clang-tidy, -Wthread-safety,
sanitizers) cannot express:

  unordered-fp-iteration
      No range-for over an unordered container whose body accumulates
      floating-point values (`+=`/`-=`). Hash iteration order is
      implementation- and seed-dependent, so such a sum is nondeterministic
      across platforms — the fleet engine's bitwise-reproducibility
      guarantees (DESIGN.md §10) forbid it. Iterate a sorted/indexed
      container instead, or sort keys first.

  raw-random
      No `rand`/`srand`, `std::random_device`, standard engine types
      (`std::mt19937`, ...), or wall-clock seeding (`std::time`) outside
      `src/util/rng.*`. All randomness flows through `util::rng` so that a
      (seed, config) pair fully determines a run.

  mutex-guarded-by
      Every mutex member (`std::mutex` or `util::mutex`) must have at least
      one `VTM_GUARDED_BY(<name>)` annotation on the data it protects in the
      same file — an unannotated mutex is invisible to Clang's thread-safety
      analysis, which silently un-checks everything it guards.

  config-validate
      Files implementing `vtm::core` / `vtm::sim` that define functions
      taking a `*_config&` must validate: the file has to contain a
      `VTM_EXPECTS(` contract or call/define a `validate*` helper. Public
      entry points must reject bad configs with `util::contract_error`, not
      propagate NaNs into a million-vehicle run. Additionally, every
      `run_*`-named definition taking a `*_config&` (run_fleet_scenario,
      run_streaming_fleet, run_highway_scenario, ...) must validate *inside
      its own body* — a validate call elsewhere in the file does not protect
      an entry point a caller reaches directly.

  raw-io
      No direct console output (`std::cout`/`std::cerr`/`std::clog`, the
      printf family, `puts`/`putchar`) inside `src/` — library code reports
      through `util::logger` (caller-supplied sink) or returned results, so
      embedders and the bench own every byte the process prints. The logger's
      own stream sink (`src/util/log.cpp`) is the one allowed exception;
      `std::snprintf` into a buffer is formatting, not I/O, and is not
      flagged. Benches, examples, tests, and tools keep their stdout.

A finding can be suppressed where it is intentional with a trailing or
preceding-line comment:  // vtm-lint: allow(<rule-id>)

Modes:
  vtm_lint.py --root DIR              scan the tree, exit 1 on findings
  vtm_lint.py --root DIR --self-test  prove each rule fires on its fixture
                                      in tools/lint_fixtures/, then scan the
                                      tree (fixtures excluded); exit 1 on
                                      any self-test failure or tree finding
  vtm_lint.py FILE...                 scan specific files
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = (
    "unordered-fp-iteration",
    "raw-random",
    "mutex-guarded-by",
    "config-validate",
    "unit-suffix",
    "raw-io",
)

SCAN_DIRS = ("src", "bench", "examples", "tests", "tools")
EXTENSIONS = {".hpp", ".cpp", ".h", ".cc"}
# The RNG facade is the one place the standard engines may appear.
RAW_RANDOM_ALLOWED = {"src/util/rng.hpp", "src/util/rng.cpp"}
# The logger's stream sink is the one library file that may write a stream.
RAW_IO_ALLOWED = {"src/util/log.cpp"}

ALLOW_RE = re.compile(r"vtm-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks
    so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (min(j, n - 1) - i - 1) + quote)
            i = min(j, n - 1) + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def suppressed(raw_lines: list[str], line_no: int, rule: str) -> bool:
    """True when line `line_no` (1-based) or the line above carries an
    allow(<rule>) marker."""
    for idx in (line_no - 1, line_no - 2):
        if 0 <= idx < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx])
            if m and m.group(1) == rule:
                return True
    return False


# ---- rule: unordered-fp-iteration -------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*[&*]?\s*(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([^)]+)\)")
FP_ACCUMULATE_RE = re.compile(r"[+\-]=")


def loop_body(lines: list[str], start: int, limit: int = 120) -> str:
    """Heuristic extent of the loop starting at `start` (0-based): up to the
    matching close brace, or the next statement for braceless loops."""
    depth = 0
    seen_brace = False
    body: list[str] = []
    for idx in range(start, min(start + limit, len(lines))):
        line = lines[idx]
        body.append(line)
        depth += line.count("{") - line.count("}")
        if "{" in line:
            seen_brace = True
        if seen_brace and depth <= 0:
            break
        if not seen_brace and line.rstrip().endswith(";"):
            break  # braceless single-statement loop
    return "\n".join(body)


def check_unordered_fp_iteration(path: Path, raw: list[str],
                                 clean: list[str]) -> list[Finding]:
    text = "\n".join(clean)
    unordered_vars = set(UNORDERED_DECL_RE.findall(text))
    findings = []
    for i, line in enumerate(clean):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        target = m.group(1)
        over_unordered = "unordered_" in target or any(
            re.search(rf"\b{re.escape(v)}\b", target) for v in unordered_vars
        )
        if not over_unordered:
            continue
        if FP_ACCUMULATE_RE.search(loop_body(clean, i)):
            if not suppressed(raw, i + 1, "unordered-fp-iteration"):
                findings.append(Finding(
                    path, i + 1, "unordered-fp-iteration",
                    f"range-for over unordered container `{target.strip()}` "
                    "feeds an accumulation; hash order is nondeterministic — "
                    "iterate a sorted/indexed container instead"))
    return findings


# ---- rule: raw-random --------------------------------------------------------

RAW_RANDOM_RE = re.compile(
    r"(std::rand\b|\bsrand\s*\(|\brand\s*\(|std::random_device"
    r"|std::mt19937|std::minstd_rand|std::default_random_engine"
    r"|std::time\s*\(|\btime\s*\(\s*(?:0|NULL|nullptr)\s*\))"
)


def check_raw_random(path: Path, rel: str, raw: list[str],
                     clean: list[str]) -> list[Finding]:
    if rel in RAW_RANDOM_ALLOWED:
        return []
    findings = []
    for i, line in enumerate(clean):
        m = RAW_RANDOM_RE.search(line)
        if m and not suppressed(raw, i + 1, "raw-random"):
            findings.append(Finding(
                path, i + 1, "raw-random",
                f"`{m.group(1).strip()}` outside util::rng — all randomness "
                "must flow through the seeded util::rng facade"))
    return findings


# ---- rule: raw-io ------------------------------------------------------------
#
# `\bprintf` deliberately does not match `snprintf`/`vsnprintf` (no word
# boundary after the `n`): formatting into a caller's buffer is fine, only
# writing to a stream/FILE* from library code is not.

RAW_IO_RE = re.compile(
    r"(std::cout|std::cerr|std::clog"
    r"|\b(?:std::)?(?:printf|fprintf|vprintf|vfprintf|puts|fputs|putchar"
    r"|fputc)\s*\()"
)


def check_raw_io(path: Path, rel: str, raw: list[str],
                 clean: list[str]) -> list[Finding]:
    library = rel.startswith("src/") and rel not in RAW_IO_ALLOWED
    fixture = "lint_fixtures" in rel
    if not (library or fixture):
        return []
    findings = []
    for i, line in enumerate(clean):
        m = RAW_IO_RE.search(line)
        if m and not suppressed(raw, i + 1, "raw-io"):
            findings.append(Finding(
                path, i + 1, "raw-io",
                f"`{m.group(1).strip().rstrip('(').strip()}` in library code "
                "— src/ reports through util::logger (caller-supplied sink) "
                "or returned results, never a raw stream"))
    return findings


# ---- rule: mutex-guarded-by --------------------------------------------------

MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:vtm::util::|util::|std::)?mutex\s+(\w+)\s*;"
)


def check_mutex_guarded_by(path: Path, raw: list[str],
                           clean: list[str]) -> list[Finding]:
    text = "\n".join(clean)
    findings = []
    for i, line in enumerate(clean):
        m = MUTEX_DECL_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        if re.search(rf"GUARDED_BY\(\s*{re.escape(name)}\s*\)", text):
            continue
        if not suppressed(raw, i + 1, "mutex-guarded-by"):
            findings.append(Finding(
                path, i + 1, "mutex-guarded-by",
                f"mutex member `{name}` has no VTM_GUARDED_BY({name}) "
                "annotation on the data it protects — the thread-safety "
                "analysis cannot check an unannotated mutex"))
    return findings


# ---- rule: config-validate ---------------------------------------------------

CORE_SIM_NS_RE = re.compile(r"^namespace vtm::(?:core|sim)\b", re.MULTILINE)
CONFIG_PARAM_FN_RE = re.compile(
    r"\b[\w:~]+\s*\([^()]*\w+_config\s*&[^()]*\)[\s\w]*\{"
)
# A run_*-named definition consuming a *_config& — the repo's convention for
# public scenario entry points (run_fleet_scenario, run_streaming_fleet, ...).
RUN_ENTRY_RE = re.compile(
    r"\b(run_\w+)\s*\([^()]*\w+_config\s*&[^()]*\)\s*(?:const\s*)?\{"
)
VALIDATES_RE = re.compile(r"VTM_EXPECTS\s*\(|validate\w*\s*\(")


def brace_body(text: str, open_idx: int) -> str:
    """Text from the `{` at `open_idx` through its matching close brace
    (comments/strings already blanked, so brace counting is exact)."""
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return text[open_idx:j + 1]
    return text[open_idx:]


# ---- rule: unit-suffix -------------------------------------------------------
#
# A raw `double` (or vector<double>) member whose name carries a unit suffix
# inside a public config/params struct defeats the dimensional type system:
# call sites can assign any number to it without saying what unit it is in.
# New suffixed members must be typed quantities (util/quantity.hpp) — or
# carry an explicit `// vtm-lint: allow(unit-suffix)` when they sit on the
# raw-double side of the boundary on purpose (records, hot engine state).

CONFIG_STRUCT_RE = re.compile(r"\bstruct\s+(\w+_(?:config|params))\b[^;{]*{")
UNIT_SUFFIX_MEMBER_RE = re.compile(
    r"^\s*(?:std::vector\s*<\s*double\s*>|double)\s+"
    r"(\w+_(?:m|s|mps|mhz|dbm|mb|db|mb_s|per_s))\s*[;={]",
)


def check_unit_suffix(path: Path, raw: list[str],
                      clean: list[str]) -> list[Finding]:
    text = "\n".join(clean)
    findings = []
    for m in CONFIG_STRUCT_RE.finditer(text):
        struct_name = m.group(1)
        body = brace_body(text, m.end() - 1)
        body_start_line = text.count("\n", 0, m.end() - 1)
        for offset, line in enumerate(body.splitlines()):
            member = UNIT_SUFFIX_MEMBER_RE.match(line)
            if not member:
                continue
            line_no = body_start_line + offset + 1
            if suppressed(raw, line_no, "unit-suffix"):
                continue
            findings.append(Finding(
                path, line_no, "unit-suffix",
                f"`{struct_name}::{member.group(1)}` is a raw double with a "
                "unit suffix — public config fields must use a typed "
                "quantity (util/quantity.hpp) so call sites cannot assign "
                "a number in the wrong unit"))
    return findings


def check_config_validate(path: Path, raw: list[str],
                          clean: list[str]) -> list[Finding]:
    if path.suffix not in (".cpp", ".cc"):
        return []
    text = "\n".join(clean)
    if not CORE_SIM_NS_RE.search(text):
        return []
    findings = []
    # Per-entry sub-rule: each run_*(*_config&) body must validate itself — a
    # contract elsewhere in the file does not cover a directly-called entry.
    for m in RUN_ENTRY_RE.finditer(text):
        if VALIDATES_RE.search(brace_body(text, m.end() - 1)):
            continue
        line_no = text.count("\n", 0, m.start()) + 1
        if suppressed(raw, line_no, "config-validate"):
            continue
        findings.append(Finding(
            path, line_no, "config-validate",
            f"`{m.group(1)}` takes a *_config& but its body neither checks "
            "VTM_EXPECTS nor calls a validate helper — every run_* entry "
            "point must reject invalid configs itself"))
    # File-level rule: any other *_config& definition obliges the file to
    # validate somewhere.
    m = CONFIG_PARAM_FN_RE.search(text)
    if not m or VALIDATES_RE.search(text):
        return findings
    line_no = text.count("\n", 0, m.start()) + 1
    if suppressed(raw, line_no, "config-validate"):
        return findings
    findings.append(Finding(
        path, line_no, "config-validate",
        "defines a *_config& entry point but neither checks VTM_EXPECTS nor "
        "calls a validate helper — public core/sim entry points must reject "
        "invalid configs with util::contract_error"))
    return findings


# ---- driver ------------------------------------------------------------------

def scan_file(path: Path, root: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"vtm_lint: cannot read {path}: {err}", file=sys.stderr)
        return []
    raw = text.splitlines()
    clean = strip_comments_and_strings(text).splitlines()
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    findings = []
    findings += check_unordered_fp_iteration(path, raw, clean)
    findings += check_raw_random(path, rel, raw, clean)
    findings += check_mutex_guarded_by(path, raw, clean)
    findings += check_config_validate(path, raw, clean)
    findings += check_unit_suffix(path, raw, clean)
    findings += check_raw_io(path, rel, raw, clean)
    return findings


def tree_files(root: Path, include_fixtures: bool = False) -> list[Path]:
    files = []
    for sub in SCAN_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS:
                continue
            if not include_fixtures and "lint_fixtures" in path.parts:
                continue
            files.append(path)
    return files


def run_self_test(root: Path) -> int:
    fixtures = root / "tools" / "lint_fixtures"
    failures = 0
    for rule in RULES:
        fixture = fixtures / f"fail_{rule.replace('-', '_')}.cpp"
        if not fixture.is_file():
            print(f"self-test FAIL: missing fixture {fixture}")
            failures += 1
            continue
        fired = {f.rule for f in scan_file(fixture, root)}
        if fired != {rule}:
            print(f"self-test FAIL: {fixture.name} fired {sorted(fired) or 'nothing'}, "
                  f"expected exactly [{rule}]")
            failures += 1
        else:
            print(f"self-test ok: {rule} fires on {fixture.name}")
    # The suppression mechanism must actually suppress.
    suppress_fixture = fixtures / "pass_suppressed.cpp"
    if suppress_fixture.is_file():
        fired = {f.rule for f in scan_file(suppress_fixture, root)}
        if fired:
            print(f"self-test FAIL: {suppress_fixture.name} fired {sorted(fired)}, "
                  "expected nothing (all findings suppressed)")
            failures += 1
        else:
            print(f"self-test ok: suppressions hold in {suppress_fixture.name}")
    else:
        print(f"self-test FAIL: missing fixture {suppress_fixture}")
        failures += 1
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on its fixture, then scan the tree")
    parser.add_argument("files", nargs="*", type=Path,
                        help="specific files to scan (default: the tree)")
    args = parser.parse_args()

    failures = 0
    if args.self_test:
        failures += run_self_test(args.root)

    targets = args.files if args.files else tree_files(args.root)
    findings: list[Finding] = []
    for path in targets:
        findings += scan_file(path, args.root)
    for finding in findings:
        print(finding)

    if findings:
        print(f"vtm_lint: {len(findings)} finding(s)")
    elif not args.files:
        print(f"vtm_lint: tree clean ({len(targets)} files)")
    return 1 if (findings or failures) else 0


if __name__ == "__main__":
    sys.exit(main())
