// Lint fixture: must produce NO findings — every violation below carries a
// `vtm-lint: allow(<rule>)` marker, proving the suppression mechanism works
// (and keeping it honest: a marker for the wrong rule would not suppress).
#include <random>
#include <string>
#include <unordered_map>

// vtm-lint: allow(raw-random)
std::mt19937 legacy_generator(7);

double diagnostic_only_sum(const std::unordered_map<std::string, double>& m) {
  double sum = 0.0;
  // vtm-lint: allow(unordered-fp-iteration)
  for (const auto& [key, value] : m) {
    sum += value;
  }
  return sum;
}
