// Lint fixture: must produce NO findings — every violation below carries a
// `vtm-lint: allow(<rule>)` marker, proving the suppression mechanism works
// (and keeping it honest: a marker for the wrong rule would not suppress).
#include <iostream>
#include <random>
#include <string>
#include <unordered_map>

// vtm-lint: allow(raw-random)
std::mt19937 legacy_generator(7);

double diagnostic_only_sum(const std::unordered_map<std::string, double>& m) {
  double sum = 0.0;
  // vtm-lint: allow(unordered-fp-iteration)
  for (const auto& [key, value] : m) {
    sum += value;
  }
  return sum;
}

// A deliberately-raw suffixed member on the double side of the quantity
// boundary: the allow marker must silence the unit-suffix rule.
struct boundary_probe_params {
  // vtm-lint: allow(unit-suffix)
  double scratch_window_s = 0.0;
};

// One-off diagnostic a maintainer left in on purpose: the marker must
// silence the raw-io rule.
void debug_dump(double value) {
  std::cerr << "probe: " << value << "\n";  // vtm-lint: allow(raw-io)
}
