// Lint fixture: MUST trip exactly `raw-random`.
//
// Standard engines and wall-clock seeding bypass util::rng, so a
// (seed, config) pair no longer determines the run.
#include <random>

double noisy_price(double base) {
  std::mt19937 gen(std::random_device{}());
  std::uniform_real_distribution<double> jitter(0.0, 1.0);
  return base + jitter(gen);
}
