// Lint fixture: MUST trip exactly `unordered-fp-iteration`.
//
// Summing doubles in hash-iteration order is nondeterministic across
// standard libraries and hash seeds; the fleet engine's bitwise
// reproducibility guarantee forbids it.
#include <string>
#include <unordered_map>

double total_utility(const std::unordered_map<std::string, double>& per_msp) {
  double sum = 0.0;
  for (const auto& [msp, utility] : per_msp) {
    sum += utility;  // accumulation order = hash order: nondeterministic
  }
  return sum;
}
