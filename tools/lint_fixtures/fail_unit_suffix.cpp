// Fixture for the unit-suffix rule: a raw double member with a unit suffix
// in a public config struct must be a typed quantity. The rule must fire on
// both the scalar and the vector member.
#include <vector>

namespace vtm::core {

struct rogue_fleet_config {
  double rsu_spacing_m = 1000.0;        // should be util::meters
  std::vector<double> rsu_noise_dbm;    // should be std::vector<util::dbm>
  double unit_cost = 5.0;               // no suffix: economics stays raw
};

}  // namespace vtm::core
