// Lint fixture: MUST trip exactly `raw-io`.
//
// Library code writing straight to the console bypasses util::logger, so
// embedders cannot silence or redirect it. std::snprintf into a buffer is
// formatting, not I/O, and must NOT be flagged.
#include <cstdio>
#include <iostream>

void report_progress(double fraction) {
  std::cout << "progress: " << fraction << "\n";
  std::fprintf(stderr, "progress: %.2f\n", fraction);
}

int format_progress(char* buffer, unsigned size, double fraction) {
  return std::snprintf(buffer, size, "progress: %.2f", fraction);
}
