// Lint fixture: MUST trip exactly `mutex-guarded-by`.
//
// A mutex member with no VTM_GUARDED_BY annotation on the data it protects
// is invisible to Clang's thread-safety analysis.
#include <cstddef>
#include <mutex>

class unannotated_counter {
 public:
  void bump() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  std::size_t count_ = 0;  // should carry VTM_GUARDED_BY(mu_)
};
