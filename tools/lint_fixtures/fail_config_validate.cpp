// Lint fixture: MUST trip exactly `config-validate`.
//
// The file-level check is satisfied (run_toy_scenario carries a contract),
// but the streaming entry point below consumes its *_config& without any
// VTM_EXPECTS or validate call in its own body — the per-entry run_*
// sub-rule must still flag it: a contract elsewhere in the file does not
// protect an entry point a caller reaches directly.
namespace vtm::core {

struct toy_config {
  // vtm-lint: allow(unit-suffix)  (this fixture targets config-validate)
  double capacity_mhz = 0.0;
  int vehicles = 0;
};

struct toy_stream_config {
  toy_config base;
  // vtm-lint: allow(unit-suffix)  (this fixture targets config-validate)
  double arrival_rate_per_s = 0.0;
};

double run_toy_scenario(const toy_config& config) {
  VTM_EXPECTS(config.capacity_mhz > 0.0);
  return config.capacity_mhz * static_cast<double>(config.vehicles);
}

double run_toy_stream(const toy_stream_config& config) {
  return config.arrival_rate_per_s * run_toy_scenario(config.base);
}

}  // namespace vtm::core
