// Lint fixture: MUST trip exactly `config-validate`.
//
// A vtm::core entry point consuming a *_config without any VTM_EXPECTS
// contract or validate helper lets NaNs and negative capacities flow
// straight into a run.
namespace vtm::core {

struct toy_config {
  double capacity_mhz = 0.0;
  int vehicles = 0;
};

double run_toy_scenario(const toy_config& config) {
  return config.capacity_mhz * static_cast<double>(config.vehicles);
}

}  // namespace vtm::core
