// Pre-copy live migration engine.
//
// Implements the iterative pre-copy strategy the paper cites ([11], live VM
// migration): round 0 pushes the full memory image while the twin keeps
// running; each subsequent round re-sends the pages dirtied during the
// previous round; when the dirty residue is small enough (or the round budget
// is exhausted) the twin is paused and the residue plus the runtime state are
// sent in a final stop-and-copy phase. The system-configuration block is sent
// up front.
//
// The engine produces the full block-transfer timeline, from which the Age of
// Twin Migration is measured (time from first block generation to last block
// reception) — the simulated counterpart of the paper's closed form
// A_n = D_n / γ_n, which it reproduces exactly when the dirty rate is zero.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/vt.hpp"
#include "util/quantity.hpp"

namespace vtm::sim {

/// Tunables of the pre-copy algorithm. The dirty rate and the stop-and-copy
/// threshold are typed (util/quantity.hpp) so a rate cannot be passed where
/// a volume is expected; the report below stays raw double (record output).
struct precopy_params {
  util::mb_per_s dirty_rate_mb_s{0.0};  ///< Memory dirtied while live.
  util::megabytes stop_copy_threshold_mb{1.0};  ///< Residue small enough
                                                ///< to pause.
  std::size_t max_rounds = 30;  ///< Iterative round budget (>= 1).
};

/// One iterative copy round (or the stop-and-copy phase).
struct migration_round {
  std::size_t index = 0;        ///< 0 = full image, 1.. = dirty rounds.
  double sent_mb = 0.0;         ///< Data pushed this round.
  double duration_s = 0.0;      ///< Wall-clock duration of the round.
  double dirtied_mb = 0.0;      ///< New dirt produced while sending.
  bool stop_and_copy = false;   ///< True for the final paused phase.
};

/// Complete migration timeline and its derived metrics.
struct migration_report {
  std::vector<migration_round> rounds;  ///< Config + iterative + final phases.
  double total_sent_mb = 0.0;   ///< All bytes moved (>= twin footprint).
  double total_time_s = 0.0;    ///< First-block-to-last-block — the AoTM.
  double downtime_s = 0.0;      ///< Stop-and-copy pause (service dark time).
  bool converged = true;        ///< False when the round budget forced stop.

  /// Data amplification versus a single cold copy (1.0 when dirty rate = 0).
  [[nodiscard]] double amplification(double cold_mb) const {
    return cold_mb > 0.0 ? total_sent_mb / cold_mb : 1.0;
  }
};

/// Execute pre-copy migration of `twin` over a link with the given rate.
/// Requires rate_mb_s > 0, non-negative dirty rate, threshold > 0,
/// max_rounds >= 1. Deterministic (fluid dirty-page model).
[[nodiscard]] migration_report run_precopy(const vehicular_twin& twin,
                                           double rate_mb_s,
                                           const precopy_params& params = {});

/// Closed-form transfer time of a cold copy (no dirtying): total_mb / rate.
/// The paper's AoTM formula in MB/MHz-normalized units.
[[nodiscard]] double cold_copy_seconds(const vehicular_twin& twin,
                                       double rate_mb_s);

}  // namespace vtm::sim
