#include "sim/vt.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace vtm::sim {

vehicular_twin::vehicular_twin(std::uint64_t vmu_id, const vt_config& config)
    : vmu_id_(vmu_id), config_(config) {
  VTM_EXPECTS(config.system_config_mb >= util::megabytes{0.0});
  VTM_EXPECTS(config.runtime_state_mb >= util::megabytes{0.0});
  VTM_EXPECTS(config.memory_pages == 0 ||
              config.page_mb > util::megabytes{0.0});
}

vehicular_twin vehicular_twin::with_total_mb(std::uint64_t vmu_id,
                                             double total_mb, double page_mb) {
  VTM_EXPECTS(total_mb > 0.0);
  VTM_EXPECTS(page_mb > 0.0);
  vt_config config;
  config.system_config_mb = util::megabytes{0.02 * total_mb};
  config.runtime_state_mb = util::megabytes{0.03 * total_mb};
  const double memory_mb = total_mb - config.system_config_mb.value() -
                           config.runtime_state_mb.value();
  config.page_mb = util::megabytes{page_mb};
  config.memory_pages =
      static_cast<std::size_t>(std::llround(memory_mb / page_mb));
  // Absorb rounding into the state block so total_mb() matches the request.
  const double actual_memory =
      static_cast<double>(config.memory_pages) * page_mb;
  config.runtime_state_mb += util::megabytes{memory_mb - actual_memory};
  if (config.runtime_state_mb < util::megabytes{0.0})
    config.runtime_state_mb = util::megabytes{0.0};
  return vehicular_twin(vmu_id, config);
}

double vehicular_twin::memory_mb() const noexcept {
  return static_cast<double>(config_.memory_pages) * config_.page_mb.value();
}

double vehicular_twin::total_mb() const noexcept {
  return config_.system_config_mb.value() + memory_mb() +
         config_.runtime_state_mb.value();
}

}  // namespace vtm::sim
