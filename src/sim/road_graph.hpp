// Road-network topology: directed edges with per-edge speed profiles, RSU
// sites placed on edges, and entry->exit vehicle routes.
//
// Generalizes the 1-D `rsu_chain` highway to a city-scale graph: nodes are
// intersections and on/off-ramps, edges carry a speed factor (congestion /
// road class) and a lane count (the lane-change spawn hook), and RSUs sit at
// arc offsets along edges. Vehicles travel entry->exit shortest paths; each
// route is a 1-D arc-length coordinate, so the per-route serving/handover
// geometry reuses `rsu_chain` through `route_profile` (sim/mobility.hpp).
//
// Degeneracy contract (DESIGN.md §14): a graph that is a single path whose
// sites cover every edge in order, with unit speed factors and single lanes,
// reports itself via `as_chain()`; the fleet engine then runs the legacy
// chain code path verbatim, so `road_graph::path(n, spacing, radius)` is
// bitwise-golden against `rsu_chain(n, spacing, radius)` configs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/mobility.hpp"

namespace vtm::sim {

/// Intersection / ramp endpoint (coordinates are descriptive only; all
/// distances come from edge lengths).
struct road_node {
  double x_m = 0.0;
  double y_m = 0.0;
};

/// One-way road segment between two nodes.
struct road_edge {
  std::size_t from = 0;
  std::size_t to = 0;
  double length_m = 0.0;
  /// Speed multiplier applied to a vehicle's base speed on this edge
  /// (road class / congestion; 1.0 = free-flow highway).
  double speed_factor = 1.0;
  /// Lane count: spawn cohorts on multi-lane edges may draw a lane-change
  /// speed bonus (`fleet_config::lane_speed_delta_mps`).
  std::size_t lanes = 1;
};

/// RSU placed on an edge at an arc offset from the edge's `from` node.
struct rsu_site {
  std::size_t edge = 0;
  double offset_m = 0.0;  ///< In (0, edge length].
};

/// One entry->exit shortest path, as both an edge sequence and a 1-D
/// arc-length coordinate (the substrate `route_profile` is built over).
struct road_route {
  std::size_t entry = 0;
  std::size_t exit = 0;
  std::vector<std::size_t> edges;   ///< Edge indices in traversal order.
  std::vector<std::size_t> sites;   ///< Global RSU indices passed, in order.
  std::vector<double> site_pos_m;   ///< Arc position of each site's centre.
  std::vector<double> seg_end_m;    ///< Cumulative arc end of each edge.
  std::vector<double> seg_factor;   ///< Speed factor of each edge.
  double length_m = 0.0;
};

/// The chain a degenerate (single-path) graph collapses to. `uniform` keeps
/// the exact count x spacing arithmetic of the legacy uniform chain (bitwise
/// golden reproduction); otherwise `centers_m` holds explicit centres.
/// Geometry is typed (util/quantity.hpp) — the view feeds straight into the
/// typed `fleet_config` geometry fields.
struct chain_view {
  bool uniform = false;
  std::size_t count = 0;
  util::meters spacing_m{0.0};
  std::vector<util::meters> centers_m;
  util::meters coverage_radius_m{0.0};
};

class road_graph {
 public:
  /// Construction timing + size stats, self-measured by the constructor
  /// (telemetry only — wall-clock values never feed simulation state, so the
  /// bitwise-determinism policy is unaffected; DESIGN.md §16). The fleet
  /// coordinator exports these as a "graph.build" trace event.
  struct build_stats {
    std::int64_t floyd_warshall_ns = 0;  ///< All-pairs shortest-path phase.
    std::int64_t routes_ns = 0;          ///< Route enumeration phase.
  };

  /// Validates and freezes the topology, then computes all-pairs shortest
  /// node distances (deterministic Floyd–Warshall: strict improvement,
  /// ordered iteration) and the entry->exit routes. Sites must arrive sorted
  /// strictly by (edge, offset); routes that pass no site are dropped (no
  /// RSU could host a twin there), and at least one route must survive.
  road_graph(std::vector<road_node> nodes, std::vector<road_edge> edges,
             std::vector<rsu_site> sites, std::vector<std::size_t> entries,
             std::vector<std::size_t> exits, double coverage_radius_m);

  /// The 1-D highway as a degenerate graph: `rsu_count` edges of
  /// `spacing_m`, one site at each edge's far end (centres at spacing,
  /// 2·spacing, ... — exactly the uniform `rsu_chain` layout).
  [[nodiscard]] static road_graph path(std::size_t rsu_count,
                                       double spacing_m,
                                       double coverage_radius_m);

  /// rows x cols Manhattan grid DAG (edges point right and down) with one
  /// mid-edge RSU per edge. Horizontal edges are 2-lane free-flow arterials
  /// (factor 1.0); vertical edges are single-lane at factor 0.85, so grid
  /// routes exercise the heterogeneous-speed and lane-change paths. Entries
  /// are the top/left boundary nodes, exits the bottom/right.
  [[nodiscard]] static road_graph grid(std::size_t rows, std::size_t cols,
                                       double edge_length_m,
                                       double coverage_radius_m);

  /// Typed siblings of the two factories.
  [[nodiscard]] static road_graph path(std::size_t rsu_count,
                                       util::meters spacing,
                                       util::meters coverage_radius) {
    return path(rsu_count, spacing.value(), coverage_radius.value());
  }
  [[nodiscard]] static road_graph grid(std::size_t rows, std::size_t cols,
                                       util::meters edge_length,
                                       util::meters coverage_radius) {
    return grid(rows, cols, edge_length.value(), coverage_radius.value());
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] std::size_t rsu_count() const noexcept {
    return sites_.size();
  }
  [[nodiscard]] std::size_t route_count() const noexcept {
    return routes_.size();
  }
  [[nodiscard]] const road_edge& edge(std::size_t e) const;
  [[nodiscard]] const rsu_site& site(std::size_t s) const;
  [[nodiscard]] const road_route& route(std::size_t r) const;
  [[nodiscard]] double coverage_radius_m() const noexcept { return radius_; }
  [[nodiscard]] const std::vector<std::size_t>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const std::vector<std::size_t>& exits() const noexcept {
    return exits_;
  }

  /// Shortest-path distance between two nodes; +infinity when unreachable.
  [[nodiscard]] double node_distance_m(std::size_t a, std::size_t b) const;

  /// Graph distance between two RSU sites along the road network (the link
  /// distance d a migration a -> b transfers over): same-edge forward runs
  /// use the offset difference, everything else routes tail-of-a's-edge ->
  /// shortest node path -> head-of-b's-edge. +infinity when unreachable.
  [[nodiscard]] double site_distance_m(std::size_t a, std::size_t b) const;

  /// The gap a site's pool prices: distance from the previous RSU along the
  /// traffic flow (same edge, else the nearest last-site over incoming
  /// edges). Sites with no upstream RSU (entry edges) fall back to their
  /// downstream gap, then to one coverage diameter — mirroring the chain
  /// engine's RSU-0 downstream-gap convention.
  [[nodiscard]] double upstream_gap_m(std::size_t s) const;

  /// Typed siblings of the distance accessors.
  [[nodiscard]] util::meters coverage_radius() const noexcept {
    return util::meters{radius_};
  }
  [[nodiscard]] util::meters site_distance(std::size_t a,
                                           std::size_t b) const {
    return util::meters{site_distance_m(a, b)};
  }
  [[nodiscard]] util::meters upstream_gap(std::size_t s) const {
    return util::meters{upstream_gap_m(s)};
  }

  [[nodiscard]] double min_route_length_m() const noexcept {
    return min_route_length_;
  }
  [[nodiscard]] double max_route_length_m() const noexcept {
    return max_route_length_;
  }
  /// Narrowest gap between consecutive handover boundaries (cell midpoints)
  /// over all routes; +infinity when no route has an interior cell. Feeds
  /// the conservative shard window.
  [[nodiscard]] double min_boundary_gap_m() const noexcept {
    return min_boundary_gap_;
  }
  [[nodiscard]] double max_speed_factor() const noexcept {
    return max_speed_factor_;
  }
  [[nodiscard]] std::size_t max_lanes() const noexcept { return max_lanes_; }

  /// Constructor timing (see `build_stats`).
  [[nodiscard]] const build_stats& stats() const noexcept { return stats_; }

  /// Lane count of the edge under arc position `pos_m` on route `r`
  /// (positions past the route end report the last edge).
  [[nodiscard]] std::size_t lanes_at(std::size_t r, double pos_m) const;

  /// Degenerate single-path collapse (see the header comment); nullopt when
  /// the graph is a real network (multiple routes, partial site coverage,
  /// non-unit factors, multi-lane edges, or coverage too small for the
  /// site gaps).
  [[nodiscard]] std::optional<chain_view> as_chain() const;

  /// Build route `r`'s mobility profile: a `rsu_chain` over the route's site
  /// arc positions (coverage inflated to keep the chain contiguous) plus the
  /// per-edge speed segments and the local->global RSU index map.
  [[nodiscard]] route_profile make_route_profile(std::size_t r) const;

 private:
  [[nodiscard]] double& dist_at(std::size_t a, std::size_t b) noexcept {
    return dist_[a * nodes_.size() + b];
  }
  [[nodiscard]] double dist_at(std::size_t a, std::size_t b) const noexcept {
    return dist_[a * nodes_.size() + b];
  }
  /// Append the shortest a -> b edge sequence to `out` (a != b, reachable).
  void append_path_edges(std::size_t a, std::size_t b,
                         std::vector<std::size_t>& out) const;
  void build_routes();

  std::vector<road_node> nodes_;
  std::vector<road_edge> edges_;
  std::vector<rsu_site> sites_;
  std::vector<std::size_t> entries_;
  std::vector<std::size_t> exits_;
  double radius_ = 0.0;
  /// Per-edge [first, first + count) range into the (edge, offset)-sorted
  /// `sites_` array.
  std::vector<std::size_t> edge_first_site_;
  std::vector<std::size_t> edge_site_count_;
  std::vector<std::vector<std::size_t>> in_edges_;   ///< Per-node, edge order.
  std::vector<std::vector<std::size_t>> out_edges_;  ///< Per-node, edge order.
  std::vector<double> dist_;          ///< Dense n x n shortest distances.
  std::vector<std::size_t> via_edge_; ///< Best direct edge a -> b (or npos).
  std::vector<std::size_t> mid_node_; ///< FW intermediate node (or npos).
  std::vector<road_route> routes_;
  double min_route_length_ = 0.0;
  double max_route_length_ = 0.0;
  double min_boundary_gap_ = 0.0;
  double max_speed_factor_ = 1.0;
  std::size_t max_lanes_ = 1;
  build_stats stats_;
};

}  // namespace vtm::sim
