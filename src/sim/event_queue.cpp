#include "sim/event_queue.hpp"

#include "util/contracts.hpp"

namespace vtm::sim {

event_queue::handle event_queue::schedule(double at,
                                          std::function<void()> action) {
  VTM_EXPECTS(at >= now_);
  VTM_EXPECTS(static_cast<bool>(action));
  const key k{at, next_seq_++};
  events_.emplace(k, std::move(action));
  index_.emplace(k.seq, k);
  return k.seq;
}

event_queue::handle event_queue::schedule_in(double delay,
                                             std::function<void()> action) {
  VTM_EXPECTS(delay >= 0.0);
  return schedule(now_ + delay, std::move(action));
}

std::optional<double> event_queue::next_event_time() const noexcept {
  if (events_.empty()) return std::nullopt;
  return events_.begin()->first.time;
}

bool event_queue::cancel(handle h) {
  const auto it = index_.find(h);
  if (it == index_.end()) return false;
  events_.erase(it->second);
  index_.erase(it);
  return true;
}

bool event_queue::step() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  now_ = it->first.time;
  auto action = std::move(it->second);
  index_.erase(it->first.seq);
  events_.erase(it);
  action();
  return true;
}

std::size_t event_queue::run_until(double t) {
  VTM_EXPECTS(t >= now_);
  std::size_t executed = 0;
  while (!events_.empty() && events_.begin()->first.time <= t) {
    step();
    ++executed;
  }
  now_ = t;
  return executed;
}

std::size_t event_queue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

}  // namespace vtm::sim
