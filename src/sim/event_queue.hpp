// Discrete-event simulation core.
//
// A time-ordered queue of callbacks with a monotone simulation clock.
// Events scheduled at equal times run in schedule order (stable FIFO via a
// sequence number), which keeps scenarios deterministic.
//
// For sharded simulations each shard owns one queue and advances it in
// conservative time windows: `run_until(t)` is the windowed-run primitive
// (repeated calls with increasing `t` execute exactly the events a single
// call would), and `next_event_time()` lets a coordinator detect quiescence
// and compute safe window bounds across shards.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "util/quantity.hpp"

namespace vtm::sim {

/// Time-ordered event executor with cancellation.
class event_queue {
 public:
  /// Identifier of a scheduled event (valid until it runs or is cancelled).
  using handle = std::uint64_t;

  /// Current simulation time (seconds). Starts at 0.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Typed sibling of `now` (util/quantity.hpp timestamps).
  [[nodiscard]] util::seconds now_time() const noexcept {
    return util::seconds{now_};
  }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }

  /// Timestamp of the earliest pending event; nullopt when the queue is
  /// empty. Never advances the clock.
  [[nodiscard]] std::optional<double> next_event_time() const noexcept;

  /// Typed sibling of `next_event_time`.
  [[nodiscard]] std::optional<util::seconds> next_event_at() const noexcept {
    const auto t = next_event_time();
    if (!t) return std::nullopt;
    return util::seconds{*t};
  }

  /// Schedule `action` at absolute time `at` (>= now()).
  handle schedule(double at, std::function<void()> action);

  /// Schedule `action` `delay` seconds from now (delay >= 0).
  handle schedule_in(double delay, std::function<void()> action);

  /// Typed siblings of the scheduling calls — a distance or a rate can no
  /// longer be scheduled as a timestamp by accident.
  handle schedule(util::seconds at, std::function<void()> action) {
    return schedule(at.value(), std::move(action));
  }
  handle schedule_in(util::seconds delay, std::function<void()> action) {
    return schedule_in(delay.value(), std::move(action));
  }

  /// Cancel a pending event. Returns false if it already ran or is unknown.
  bool cancel(handle h);

  /// Run the earliest event, advancing the clock to its timestamp.
  /// Returns false when the queue is empty.
  bool step();

  /// Run all events with time <= t, then advance the clock to t (if t > now).
  /// Returns the number of events executed.
  std::size_t run_until(double t);

  /// Typed sibling of `run_until`.
  std::size_t run_until(util::seconds t) { return run_until(t.value()); }

  /// Run until the queue drains or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run_all(std::size_t max_events = 1'000'000);

 private:
  struct key {
    double time;
    std::uint64_t seq;
    [[nodiscard]] bool operator<(const key& rhs) const noexcept {
      if (time != rhs.time) return time < rhs.time;
      return seq < rhs.seq;
    }
  };
  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::map<key, std::function<void()>> events_;
  std::map<handle, key> index_;
};

}  // namespace vtm::sim
