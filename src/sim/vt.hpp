// Vehicular Twin (VT) data model.
//
// Per the paper, the migrated VT data D_n consists of system configuration
// (CPU/GPU description), historical memory data, and real-time state, and the
// twin "can be transmitted in the form of blocks". This module models a VT as
// those three components, with memory organised as pages (the unit the
// pre-copy engine re-sends when dirtied).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/quantity.hpp"

namespace vtm::sim {

/// Static description of a VT's migratable footprint. Data volumes are typed
/// megabytes (util/quantity.hpp) so a page size cannot be confused with a
/// rate or a duration at compile time.
struct vt_config {
  util::megabytes system_config_mb{2.0};  ///< CPU/GPU/device description.
  std::size_t memory_pages = 792;         ///< Historical memory page count.
  util::megabytes page_mb{0.25};          ///< Page size in MB.
  util::megabytes runtime_state_mb{0.0};  ///< Real-time stop-and-copy state.
};

/// A vehicular twin instance deployed on an RSU edge server.
class vehicular_twin {
 public:
  /// Identifier plus footprint. Requires positive page size when pages > 0
  /// and non-negative block sizes.
  vehicular_twin(std::uint64_t vmu_id, const vt_config& config);

  /// Convenience: build a twin whose total footprint is `total_mb`, split
  /// into the paper's three components (2% config, 95% memory, 3% state)
  /// with the given page size. Requires total_mb > 0, page_mb > 0.
  [[nodiscard]] static vehicular_twin with_total_mb(std::uint64_t vmu_id,
                                                    double total_mb,
                                                    double page_mb = 0.25);

  /// Typed sibling of `with_total_mb`.
  [[nodiscard]] static vehicular_twin with_total(
      std::uint64_t vmu_id, util::megabytes total,
      util::megabytes page = util::megabytes{0.25}) {
    return with_total_mb(vmu_id, total.value(), page.value());
  }

  /// Owning VMU's identifier.
  [[nodiscard]] std::uint64_t vmu_id() const noexcept { return vmu_id_; }

  /// Footprint description.
  [[nodiscard]] const vt_config& config() const noexcept { return config_; }

  /// Memory footprint in MB (pages x page size).
  [[nodiscard]] double memory_mb() const noexcept;

  /// Total migratable data in MB (config + memory + state) — the paper's D_n.
  [[nodiscard]] double total_mb() const noexcept;

  /// Typed siblings of the footprint accessors.
  [[nodiscard]] util::megabytes memory() const noexcept {
    return util::megabytes{memory_mb()};
  }
  [[nodiscard]] util::megabytes total() const noexcept {
    return util::megabytes{total_mb()};
  }

  /// RSU currently hosting the twin.
  [[nodiscard]] std::size_t host_rsu() const noexcept { return host_rsu_; }

  /// Move the twin to another RSU (called when a migration completes).
  void set_host_rsu(std::size_t rsu) noexcept { host_rsu_ = rsu; }

  /// Number of completed migrations over the twin's lifetime.
  [[nodiscard]] std::size_t migration_count() const noexcept {
    return migrations_;
  }

  /// Record a completed migration.
  void record_migration() noexcept { ++migrations_; }

 private:
  std::uint64_t vmu_id_;
  vt_config config_;
  std::size_t host_rsu_ = 0;
  std::size_t migrations_ = 0;
};

}  // namespace vtm::sim
