#include "sim/precopy.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace vtm::sim {

migration_report run_precopy(const vehicular_twin& twin, double rate_mb_s,
                             const precopy_params& params) {
  VTM_EXPECTS(rate_mb_s > 0.0);
  VTM_EXPECTS(params.dirty_rate_mb_s >= util::mb_per_s{0.0});
  VTM_EXPECTS(params.stop_copy_threshold_mb > util::megabytes{0.0});
  VTM_EXPECTS(params.max_rounds >= 1);

  migration_report report;
  const double memory_mb = twin.memory_mb();

  // Phase 0: system-configuration block, pushed while the twin stays live.
  // Dirtying during this phase counts against the memory image, but the image
  // is already fully pending, so it does not grow beyond memory_mb.
  if (twin.config().system_config_mb > util::megabytes{0.0}) {
    migration_round config_round;
    config_round.index = report.rounds.size();
    config_round.sent_mb = twin.config().system_config_mb.value();
    config_round.duration_s = config_round.sent_mb / rate_mb_s;
    report.rounds.push_back(config_round);
    report.total_sent_mb += config_round.sent_mb;
    report.total_time_s += config_round.duration_s;
  }

  // Iterative pre-copy over the memory image (fluid model).
  double pending_mb = memory_mb;
  for (std::size_t round = 0; round < params.max_rounds; ++round) {
    if (pending_mb <= params.stop_copy_threshold_mb.value()) break;
    if (round + 1 == params.max_rounds) {
      report.converged = false;  // round budget forced the pause
      break;
    }
    migration_round r;
    r.index = report.rounds.size();
    r.sent_mb = pending_mb;
    r.duration_s = pending_mb / rate_mb_s;
    // Dirt produced while this round streams; cannot exceed the image size.
    r.dirtied_mb =
        std::min(memory_mb, params.dirty_rate_mb_s.value() * r.duration_s);
    report.rounds.push_back(r);
    report.total_sent_mb += r.sent_mb;
    report.total_time_s += r.duration_s;
    // Non-convergent link (dirty rate >= link rate): residue not shrinking.
    if (r.dirtied_mb >= r.sent_mb) {
      pending_mb = r.dirtied_mb;
      report.converged = false;
      break;
    }
    pending_mb = r.dirtied_mb;
  }

  // Final stop-and-copy: remaining dirty pages + runtime state, twin paused.
  const double final_mb = pending_mb + twin.config().runtime_state_mb.value();
  if (final_mb > 0.0) {
    migration_round final_round;
    final_round.index = report.rounds.size();
    final_round.sent_mb = final_mb;
    final_round.duration_s = final_mb / rate_mb_s;
    final_round.stop_and_copy = true;
    report.rounds.push_back(final_round);
    report.total_sent_mb += final_mb;
    report.total_time_s += final_round.duration_s;
    report.downtime_s = final_round.duration_s;
  }

  VTM_ENSURES(report.total_sent_mb >= twin.total_mb() - 1e-9);
  return report;
}

double cold_copy_seconds(const vehicular_twin& twin, double rate_mb_s) {
  VTM_EXPECTS(rate_mb_s > 0.0);
  return twin.total_mb() / rate_mb_s;
}

}  // namespace vtm::sim
