// Highway mobility and RSU coverage geometry.
//
// Vehicles travel along a 1-D highway covered by a chain of equally-spaced
// RSUs. A vehicle is served by the nearest RSU; crossing the midpoint between
// two adjacent RSUs is the handover event that triggers a VT migration (the
// paper's motivating dynamic: limited RSU coverage + vehicle mobility).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace vtm::sim {

/// Kinematic state of one vehicle on the highway.
struct vehicle_state {
  double position_m = 0.0;  ///< Longitudinal position along the highway.
  double speed_mps = 0.0;   ///< Signed speed (positive = toward higher RSUs).
};

/// Advance a vehicle by `dt` seconds of constant-speed motion. dt >= 0.
[[nodiscard]] vehicle_state advance(vehicle_state v, double dt);

/// Geometry of an RSU chain along the highway.
class rsu_chain {
 public:
  /// `count` RSUs centred at spacing, 2·spacing, ... with the given coverage
  /// radius. Requires count >= 1, spacing > 0, 0 < radius, and contiguous
  /// coverage (radius >= spacing/2) so every position is served.
  rsu_chain(std::size_t count, double spacing_m, double coverage_radius_m);

  /// Explicitly-placed (possibly non-uniform) RSU centres, strictly
  /// increasing. Requires every adjacent gap > 0 and contiguous coverage
  /// (radius >= max gap / 2). `spacing_m()` then reports the mean gap.
  rsu_chain(std::vector<double> centers_m, double coverage_radius_m);

  [[nodiscard]] std::size_t count() const noexcept { return centers_.size(); }
  [[nodiscard]] double spacing_m() const noexcept { return spacing_; }
  [[nodiscard]] double coverage_radius_m() const noexcept { return radius_; }

  /// Centre position of RSU `i`. Requires i < count().
  [[nodiscard]] double center_m(std::size_t i) const;

  /// Index of the serving (nearest) RSU for a position on the highway.
  /// Positions beyond the chain clamp to the first/last RSU.
  [[nodiscard]] std::size_t serving_rsu(double position_m) const noexcept;

  /// Boundary position where service hands over from RSU i to RSU i+1
  /// (the midpoint). Requires i + 1 < count().
  [[nodiscard]] double handover_position_m(std::size_t i) const;

  /// Time until `vehicle` next crosses a handover boundary, and the target
  /// RSU index; nullopt when the vehicle never leaves its serving cell
  /// (zero speed or moving past the end of the chain).
  struct handover_event {
    double after_s = 0.0;      ///< Seconds from now until the boundary.
    std::size_t from_rsu = 0;  ///< Serving RSU before the crossing.
    std::size_t to_rsu = 0;    ///< Serving RSU after the crossing.
  };
  [[nodiscard]] std::optional<handover_event> next_handover(
      const vehicle_state& vehicle) const;

  /// Distance between the centres of two RSUs (the link distance d used by
  /// the channel model when migrating i -> j). Requires valid indices.
  [[nodiscard]] double link_distance_m(std::size_t i, std::size_t j) const;

  /// A copy of this chain with every centre shifted by `offset_m` (gaps and
  /// coverage contiguity are preserved, so any finite offset is valid).
  /// Models a second operator's RSU deployment along the same highway.
  [[nodiscard]] rsu_chain shifted(double offset_m) const;

 private:
  std::vector<double> centers_;
  double spacing_;
  double radius_;
  bool uniform_;  ///< Uniform ctor: keep the exact arithmetic nearest-centre.
};

/// Several operators' chains over the same highway (overlapping coverage) —
/// a non-owning view (the chains must outlive it). `serving_rsu` generalizes
/// to a per-chain *candidate set*: for one highway position, each operator
/// resolves its own serving RSU, and a buyer at that position can purchase
/// from any of them. An empty set models "no competing operators".
class chain_set {
 public:
  chain_set() = default;
  /// All chains must have the same RSU count so per-operator candidate
  /// indices share one index space.
  explicit chain_set(std::span<const rsu_chain> chains);

  [[nodiscard]] std::size_t size() const noexcept { return chains_.size(); }
  [[nodiscard]] const rsu_chain& chain(std::size_t m) const;

  /// Operator m's serving RSU for a highway position.
  [[nodiscard]] std::size_t candidate(std::size_t m, double position_m) const;

  /// All operators' serving RSUs for one position (index m -> candidate).
  [[nodiscard]] std::vector<std::size_t> candidates(double position_m) const;

 private:
  std::span<const rsu_chain> chains_;
};

}  // namespace vtm::sim
