// Highway mobility and RSU coverage geometry.
//
// Vehicles travel along a 1-D highway covered by a chain of equally-spaced
// RSUs. A vehicle is served by the nearest RSU; crossing the midpoint between
// two adjacent RSUs is the handover event that triggers a VT migration (the
// paper's motivating dynamic: limited RSU coverage + vehicle mobility).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "util/quantity.hpp"

namespace vtm::sim {

/// Kinematic state of one vehicle on the highway. Hot engine state, not a
/// config surface — stays raw double by the boundary policy (DESIGN.md §15).
struct vehicle_state {
  double position_m = 0.0;  ///< Longitudinal position along the highway.
  double speed_mps = 0.0;   ///< Signed speed (positive = toward higher RSUs).
};

/// Advance a vehicle by `dt` seconds of constant-speed motion. dt >= 0.
[[nodiscard]] vehicle_state advance(vehicle_state v, double dt);

/// Typed sibling of `advance` (a meters-for-seconds mixup is a compile
/// error: there is no conversion from any other quantity into `seconds`).
[[nodiscard]] inline vehicle_state advance(vehicle_state v, util::seconds dt) {
  return advance(v, dt.value());
}

/// Geometry of an RSU chain along the highway.
class rsu_chain {
 public:
  /// `count` RSUs centred at spacing, 2·spacing, ... with the given coverage
  /// radius. Requires count >= 1, spacing > 0, 0 < radius, and contiguous
  /// coverage (radius >= spacing/2) so every position is served.
  rsu_chain(std::size_t count, double spacing_m, double coverage_radius_m);

  /// Explicitly-placed (possibly non-uniform) RSU centres, strictly
  /// increasing. Requires every adjacent gap > 0 and contiguous coverage
  /// (radius >= max gap / 2). `spacing_m()` then reports the mean gap.
  rsu_chain(std::vector<double> centers_m, double coverage_radius_m);

  /// Typed siblings of the two constructors.
  rsu_chain(std::size_t count, util::meters spacing,
            util::meters coverage_radius)
      : rsu_chain(count, spacing.value(), coverage_radius.value()) {}
  rsu_chain(const std::vector<util::meters>& centers,
            util::meters coverage_radius);

  [[nodiscard]] std::size_t count() const noexcept { return centers_.size(); }
  [[nodiscard]] double spacing_m() const noexcept { return spacing_; }
  [[nodiscard]] double coverage_radius_m() const noexcept { return radius_; }

  /// Typed siblings of the geometry accessors.
  [[nodiscard]] util::meters spacing() const noexcept {
    return util::meters{spacing_};
  }
  [[nodiscard]] util::meters coverage_radius() const noexcept {
    return util::meters{radius_};
  }
  [[nodiscard]] util::meters center(std::size_t i) const {
    return util::meters{center_m(i)};
  }
  [[nodiscard]] util::meters handover_position(std::size_t i) const {
    return util::meters{handover_position_m(i)};
  }
  [[nodiscard]] util::meters link_distance(std::size_t i,
                                           std::size_t j) const {
    return util::meters{link_distance_m(i, j)};
  }
  [[nodiscard]] std::size_t serving_rsu(util::meters position) const noexcept {
    return serving_rsu(position.value());
  }

  /// Centre position of RSU `i`. Requires i < count().
  [[nodiscard]] double center_m(std::size_t i) const;

  /// Index of the serving (nearest) RSU for a position on the highway.
  /// Positions beyond the chain clamp to the first/last RSU.
  [[nodiscard]] std::size_t serving_rsu(double position_m) const noexcept;

  /// Boundary position where service hands over from RSU i to RSU i+1
  /// (the midpoint). Requires i + 1 < count().
  [[nodiscard]] double handover_position_m(std::size_t i) const;

  /// Time until `vehicle` next crosses a handover boundary, and the target
  /// RSU index; nullopt when the vehicle never leaves its serving cell
  /// (zero speed or moving past the end of the chain).
  struct handover_event {
    double after_s = 0.0;      ///< Seconds from now until the boundary.
    std::size_t from_rsu = 0;  ///< Serving RSU before the crossing.
    std::size_t to_rsu = 0;    ///< Serving RSU after the crossing.
  };
  [[nodiscard]] std::optional<handover_event> next_handover(
      const vehicle_state& vehicle) const;

  /// Distance between the centres of two RSUs (the link distance d used by
  /// the channel model when migrating i -> j). Requires valid indices.
  [[nodiscard]] double link_distance_m(std::size_t i, std::size_t j) const;

  /// A copy of this chain with every centre shifted by `offset_m` (gaps and
  /// coverage contiguity are preserved, so any finite offset is valid).
  /// Models a second operator's RSU deployment along the same highway.
  [[nodiscard]] rsu_chain shifted(double offset_m) const;

  /// Typed sibling of `shifted`.
  [[nodiscard]] rsu_chain shifted(util::meters offset) const {
    return shifted(offset.value());
  }

 private:
  std::vector<double> centers_;
  double spacing_;
  double radius_;
  bool uniform_;  ///< Uniform ctor: keep the exact arithmetic nearest-centre.
};

/// Mobility along one road-network route (sim/road_graph.hpp), expressed in
/// the route's 1-D arc-length coordinate. Wraps an `rsu_chain` over the
/// route's RSU arc positions plus the per-edge speed segments, and maps the
/// chain's local indices back to global RSU (site) indices.
///
/// Degeneracy contract: with unit speed factors everywhere the advance and
/// handover arithmetic delegates to the exact `sim::advance` / `rsu_chain`
/// expressions, so a degenerate path-graph profile is bitwise-identical to
/// the raw chain (tests/road_graph_test.cpp pins this).
class route_profile {
 public:
  /// `global_rsus[i]` is the graph-wide RSU index of the chain's RSU i (one
  /// per chain RSU). `seg_end_m`/`seg_factor` give the per-edge speed
  /// segments in arc coordinates (strictly increasing ends, positive
  /// factors); empty means unit factor everywhere. Positions past the last
  /// segment cruise at the last factor.
  route_profile(rsu_chain chain, std::vector<std::size_t> global_rsus,
                std::vector<double> seg_end_m, std::vector<double> seg_factor);

  [[nodiscard]] const rsu_chain& chain() const noexcept { return chain_; }
  [[nodiscard]] std::size_t count() const noexcept { return chain_.count(); }
  /// Global RSU index of the chain's local RSU `i`.
  [[nodiscard]] std::size_t global_rsu(std::size_t i) const;

  /// Serving RSU for an arc position, as a *global* index.
  [[nodiscard]] std::size_t serving_rsu(double position_m) const noexcept;

  /// Advance `dt` seconds along the route, applying each segment's speed
  /// factor piecewise. Requires dt >= 0; heterogeneous-factor profiles
  /// support forward motion only (speed >= 0).
  [[nodiscard]] vehicle_state advance(vehicle_state v, double dt) const;

  /// Next boundary crossing with *global* RSU indices; `after_s` integrates
  /// the segment factors between the position and the boundary. Nullopt when
  /// cruising past the last cell (heterogeneous-factor profiles: also for
  /// non-forward motion).
  [[nodiscard]] std::optional<rsu_chain::handover_event> next_handover(
      const vehicle_state& vehicle) const;

  /// Speed factor in effect at an arc position.
  [[nodiscard]] double factor_at(double position_m) const noexcept;

 private:
  [[nodiscard]] std::size_t segment_at(double position_m) const noexcept;
  /// Seconds to travel from `from` to `to` (arc, from <= to) at base
  /// `speed` through the segment factors.
  [[nodiscard]] double travel_time_s(double from, double to,
                                     double speed) const;

  rsu_chain chain_;
  std::vector<std::size_t> global_;
  std::vector<double> seg_end_;
  std::vector<double> seg_factor_;
  bool unit_factor_ = true;  ///< All factors 1: keep exact chain arithmetic.
};

/// Several operators' chains over the same highway (overlapping coverage) —
/// a non-owning view (the chains must outlive it). `serving_rsu` generalizes
/// to a per-chain *candidate set*: for one highway position, each operator
/// resolves its own serving RSU, and a buyer at that position can purchase
/// from any of them. An empty set models "no competing operators".
class chain_set {
 public:
  chain_set() = default;
  /// All chains must have the same RSU count so per-operator candidate
  /// indices share one index space.
  explicit chain_set(std::span<const rsu_chain> chains);

  [[nodiscard]] std::size_t size() const noexcept { return chains_.size(); }
  [[nodiscard]] const rsu_chain& chain(std::size_t m) const;

  /// Operator m's serving RSU for a highway position.
  [[nodiscard]] std::size_t candidate(std::size_t m, double position_m) const;

  /// All operators' serving RSUs for one position (index m -> candidate).
  [[nodiscard]] std::vector<std::size_t> candidates(double position_m) const;

 private:
  std::span<const rsu_chain> chains_;
};

}  // namespace vtm::sim
