// Deterministic cross-shard message transport for windowed simulations.
//
// A sharded discrete-event run advances N shard-local `sim::event_queue`s in
// conservative time windows; anything one shard does to another — a vehicle
// crossing a shard boundary, a request retargeted into a remote pool — is
// posted here during the window and applied at the next barrier. Determinism
// comes from the drain order: messages are delivered per destination in
// (sender shard, send order) sequence, which is a pure function of the
// shard-local executions and never of thread scheduling.
//
// Concurrency contract — machine-checked, not a comment: during a window,
// shard `s` may post only with `from == s` (each (from, to) cell is written
// by exactly one shard, so no locking is needed); `deliver`/`pending` may
// only run at a barrier, when no shard is executing. The barrier side is
// enforced by Clang thread-safety analysis: both functions require a
// `util::barrier_phase` capability that only the coordinator's barrier
// callback acquires (via `util::barrier_scope`), so a mid-phase call fails
// to compile under `-Wthread-safety -Werror=thread-safety` (see
// tests/negative_compile/deliver_requires_barrier.cpp).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/contracts.hpp"
#include "util/sync.hpp"

namespace vtm::sim {

/// Barrier-synchronized (from, to)-cell message buffers between `lanes`
/// shards.
template <typename Message>
class shard_mailbox {
 public:
  explicit shard_mailbox(std::size_t lanes) : lanes_(lanes) {
    VTM_EXPECTS(lanes >= 1);
    cells_.resize(lanes * lanes);
  }

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  /// Post a message from shard `from` to shard `to` (delivered at the next
  /// barrier). Only the owning shard may post on its own row.
  void post(std::size_t from, std::size_t to, Message message) {
    VTM_EXPECTS(from < lanes_ && to < lanes_);
    cells_[from * lanes_ + to].push_back(std::move(message));
  }

  /// Messages currently buffered for `to`. Barrier only: the caller must
  /// hold the run's barrier capability (every lane parked).
  [[nodiscard]] std::size_t pending(
      std::size_t to, [[maybe_unused]] const util::barrier_phase& barrier)
      const VTM_REQUIRES(barrier) {
    VTM_EXPECTS(to < lanes_);
    std::size_t n = 0;
    for (std::size_t from = 0; from < lanes_; ++from)
      n += cells_[from * lanes_ + to].size();
    return n;
  }

  /// Deliver every message addressed to `to` in (sender, send order)
  /// sequence, clearing the buffers. Returns the number delivered. Barrier
  /// only: the caller must hold the run's barrier capability.
  template <typename Fn>
  std::size_t deliver(std::size_t to, Fn&& fn,
                      [[maybe_unused]] const util::barrier_phase& barrier)
      VTM_REQUIRES(barrier) {
    VTM_EXPECTS(to < lanes_);
    std::size_t delivered = 0;
    for (std::size_t from = 0; from < lanes_; ++from) {
      auto& cell = cells_[from * lanes_ + to];
      for (auto& message : cell) {
        fn(message);
        ++delivered;
      }
      cell.clear();
    }
    return delivered;
  }

 private:
  std::size_t lanes_;
  std::vector<std::vector<Message>> cells_;  ///< [from * lanes_ + to].
};

}  // namespace vtm::sim
