// Block-level VT transfer on the discrete-event queue.
//
// The paper's AoTM is defined over *blocks*: "the time elapsed between the
// last successfully received VT block and the generation of the first VT
// block". The pre-copy engine (precopy.hpp) uses a fluid approximation; this
// module transmits an explicit block sequence through the event queue — one
// completion event per block — and measures AoTM from the resulting
// timeline. The two agree exactly for the same byte counts (property-tested),
// and the block path additionally yields per-block latencies for
// finer-grained freshness metrics (e.g. per-block staleness).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/vt.hpp"

namespace vtm::sim {

/// One completed block transmission.
struct block_event {
  std::size_t index = 0;      ///< Position in the block sequence.
  double size_mb = 0.0;
  double started_at = 0.0;    ///< Transmission start (simulation time).
  double completed_at = 0.0;  ///< Reception time.
};

/// Completed transfer timeline.
struct transfer_timeline {
  std::vector<block_event> blocks;  ///< In completion order.
  double generated_at = 0.0;  ///< First block's generation time.
  double completed_at = 0.0;  ///< Last block's reception time.

  /// The AoTM measured from the timeline (paper §III-A definition).
  [[nodiscard]] double aotm() const noexcept {
    return completed_at - generated_at;
  }

  /// Total bytes moved.
  [[nodiscard]] double total_mb() const noexcept {
    double total = 0.0;
    for (const auto& b : blocks) total += b.size_mb;
    return total;
  }
};

/// Decompose a twin into its transmission block sequence: the system-config
/// block, one block per memory page, then the runtime-state block.
[[nodiscard]] std::vector<double> twin_block_sizes(const vehicular_twin& twin);

/// Schedule the sequential transmission of `block_sizes_mb` over a link of
/// `rate_mb_s` starting now; `on_complete` fires (with the full timeline)
/// when the last block lands. Returns the predicted completion time.
/// Requires rate > 0 and a non-empty block list with positive sizes.
double schedule_block_transfer(
    event_queue& queue, std::span<const double> block_sizes_mb,
    double rate_mb_s,
    std::function<void(const transfer_timeline&)> on_complete);

/// Synchronous convenience: run a block transfer to completion on a private
/// event queue and return the timeline.
[[nodiscard]] transfer_timeline run_block_transfer(
    std::span<const double> block_sizes_mb, double rate_mb_s);

}  // namespace vtm::sim
