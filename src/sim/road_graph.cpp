#include "sim/road_graph.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "util/contracts.hpp"

namespace vtm::sim {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);
constexpr double inf = std::numeric_limits<double>::infinity();

/// Telemetry-only wall clock (never feeds simulation state).
[[nodiscard]] std::int64_t build_clock_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

road_graph::road_graph(std::vector<road_node> nodes,
                       std::vector<road_edge> edges,
                       std::vector<rsu_site> sites,
                       std::vector<std::size_t> entries,
                       std::vector<std::size_t> exits,
                       double coverage_radius_m)
    : nodes_(std::move(nodes)),
      edges_(std::move(edges)),
      sites_(std::move(sites)),
      entries_(std::move(entries)),
      exits_(std::move(exits)),
      radius_(coverage_radius_m) {
  VTM_EXPECTS(!nodes_.empty());
  VTM_EXPECTS(!edges_.empty());
  VTM_EXPECTS(!sites_.empty());
  VTM_EXPECTS(!entries_.empty());
  VTM_EXPECTS(!exits_.empty());
  VTM_EXPECTS(std::isfinite(radius_) && radius_ > 0.0);

  in_edges_.resize(nodes_.size());
  out_edges_.resize(nodes_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto& edge = edges_[e];
    VTM_EXPECTS(edge.from < nodes_.size());
    VTM_EXPECTS(edge.to < nodes_.size());
    VTM_EXPECTS(edge.from != edge.to);
    VTM_EXPECTS(std::isfinite(edge.length_m) && edge.length_m > 0.0);
    VTM_EXPECTS(std::isfinite(edge.speed_factor) && edge.speed_factor > 0.0);
    VTM_EXPECTS(edge.lanes >= 1);
    in_edges_[edge.to].push_back(e);
    out_edges_[edge.from].push_back(e);
    max_speed_factor_ = std::max(max_speed_factor_, edge.speed_factor);
    max_lanes_ = std::max(max_lanes_, edge.lanes);
  }

  // Sites sorted strictly by (edge, offset): the sorted order *is* the
  // global RSU index space (contiguous site ranges are contiguous edge
  // ranges — the shard tiling relies on this).
  edge_first_site_.assign(edges_.size(), npos);
  edge_site_count_.assign(edges_.size(), 0);
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const auto& site = sites_[s];
    VTM_EXPECTS(site.edge < edges_.size());
    VTM_EXPECTS(site.offset_m > 0.0 &&
                site.offset_m <= edges_[site.edge].length_m);
    if (s > 0) {
      const auto& prev = sites_[s - 1];
      VTM_EXPECTS(prev.edge < site.edge ||
                  (prev.edge == site.edge && prev.offset_m < site.offset_m));
    }
    if (edge_first_site_[site.edge] == npos) edge_first_site_[site.edge] = s;
    ++edge_site_count_[site.edge];
  }
  for (const std::size_t node : entries_) VTM_EXPECTS(node < nodes_.size());
  for (const std::size_t node : exits_) VTM_EXPECTS(node < nodes_.size());

  // Deterministic Floyd–Warshall: strict improvement only and fully ordered
  // iteration, so ties resolve to the lowest (edge, intermediate) indices on
  // every platform.
  const std::size_t n = nodes_.size();
  const std::int64_t fw_start_ns = build_clock_ns();
  dist_.assign(n * n, inf);
  via_edge_.assign(n * n, npos);
  mid_node_.assign(n * n, npos);
  for (std::size_t i = 0; i < n; ++i) dist_at(i, i) = 0.0;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto& edge = edges_[e];
    if (edge.length_m < dist_at(edge.from, edge.to)) {
      dist_at(edge.from, edge.to) = edge.length_m;
      via_edge_[edge.from * n + edge.to] = e;
      mid_node_[edge.from * n + edge.to] = npos;
    }
  }
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      const double ik = dist_at(i, k);
      if (!std::isfinite(ik)) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double through = ik + dist_at(k, j);
        if (through < dist_at(i, j)) {
          dist_at(i, j) = through;
          mid_node_[i * n + j] = k;
        }
      }
    }

  const std::int64_t routes_start_ns = build_clock_ns();
  stats_.floyd_warshall_ns = routes_start_ns - fw_start_ns;

  build_routes();
  stats_.routes_ns = build_clock_ns() - routes_start_ns;
  VTM_EXPECTS(!routes_.empty());
}

void road_graph::append_path_edges(std::size_t a, std::size_t b,
                                   std::vector<std::size_t>& out) const {
  const std::size_t mid = mid_node_[a * nodes_.size() + b];
  if (mid == npos) {
    const std::size_t e = via_edge_[a * nodes_.size() + b];
    VTM_ASSERT(e != npos);
    out.push_back(e);
    return;
  }
  append_path_edges(a, mid, out);
  append_path_edges(mid, b, out);
}

void road_graph::build_routes() {
  min_route_length_ = inf;
  max_route_length_ = 0.0;
  min_boundary_gap_ = inf;
  for (const std::size_t entry : entries_) {
    for (const std::size_t exit : exits_) {
      if (entry == exit || !std::isfinite(dist_at(entry, exit))) continue;
      road_route route;
      route.entry = entry;
      route.exit = exit;
      append_path_edges(entry, exit, route.edges);
      double arc = 0.0;
      for (const std::size_t e : route.edges) {
        for (std::size_t s = edge_first_site_[e];
             s != npos && s < edge_first_site_[e] + edge_site_count_[e]; ++s) {
          route.sites.push_back(s);
          route.site_pos_m.push_back(arc + sites_[s].offset_m);
        }
        arc += edges_[e].length_m;
        route.seg_end_m.push_back(arc);
        route.seg_factor.push_back(edges_[e].speed_factor);
      }
      route.length_m = arc;
      if (route.sites.empty()) continue;  // no RSU could host a twin here
      min_route_length_ = std::min(min_route_length_, route.length_m);
      max_route_length_ = std::max(max_route_length_, route.length_m);
      for (std::size_t i = 0; i + 2 < route.site_pos_m.size(); ++i) {
        const double lo =
            0.5 * (route.site_pos_m[i] + route.site_pos_m[i + 1]);
        const double hi =
            0.5 * (route.site_pos_m[i + 1] + route.site_pos_m[i + 2]);
        min_boundary_gap_ = std::min(min_boundary_gap_, hi - lo);
      }
      routes_.push_back(std::move(route));
    }
  }
}

const road_edge& road_graph::edge(std::size_t e) const {
  VTM_EXPECTS(e < edges_.size());
  return edges_[e];
}

const rsu_site& road_graph::site(std::size_t s) const {
  VTM_EXPECTS(s < sites_.size());
  return sites_[s];
}

const road_route& road_graph::route(std::size_t r) const {
  VTM_EXPECTS(r < routes_.size());
  return routes_[r];
}

double road_graph::node_distance_m(std::size_t a, std::size_t b) const {
  VTM_EXPECTS(a < nodes_.size());
  VTM_EXPECTS(b < nodes_.size());
  return dist_at(a, b);
}

double road_graph::site_distance_m(std::size_t a, std::size_t b) const {
  VTM_EXPECTS(a < sites_.size());
  VTM_EXPECTS(b < sites_.size());
  const auto& sa = sites_[a];
  const auto& sb = sites_[b];
  if (sa.edge == sb.edge && sb.offset_m >= sa.offset_m)
    return sb.offset_m - sa.offset_m;
  const double between = dist_at(edges_[sa.edge].to, edges_[sb.edge].from);
  if (!std::isfinite(between)) return inf;
  return (edges_[sa.edge].length_m - sa.offset_m) + between + sb.offset_m;
}

double road_graph::upstream_gap_m(std::size_t s) const {
  VTM_EXPECTS(s < sites_.size());
  const auto& site = sites_[s];
  // Previous site on the same edge: plain offset gap.
  if (s > 0 && sites_[s - 1].edge == site.edge)
    return site.offset_m - sites_[s - 1].offset_m;
  // Nearest last-site over the incoming edges (edge-index order, strict
  // improvement — deterministic).
  double best = inf;
  for (const std::size_t e : in_edges_[edges_[site.edge].from]) {
    if (edge_site_count_[e] == 0) continue;
    const std::size_t last = edge_first_site_[e] + edge_site_count_[e] - 1;
    const double gap =
        (edges_[e].length_m - sites_[last].offset_m) + site.offset_m;
    if (gap < best) best = gap;
  }
  if (std::isfinite(best)) return best;
  // Entry-edge site with nothing upstream: price the downstream gap, like
  // the chain engine's RSU 0.
  if (s + 1 < sites_.size() && sites_[s + 1].edge == site.edge)
    return sites_[s + 1].offset_m - site.offset_m;
  for (const std::size_t e : out_edges_[edges_[site.edge].to]) {
    if (edge_site_count_[e] == 0) continue;
    const double gap = (edges_[site.edge].length_m - site.offset_m) +
                       sites_[edge_first_site_[e]].offset_m;
    if (gap < best) best = gap;
  }
  return std::isfinite(best) ? best : 2.0 * radius_;
}

std::size_t road_graph::lanes_at(std::size_t r, double pos_m) const {
  VTM_EXPECTS(r < routes_.size());
  const auto& route = routes_[r];
  const auto it = std::upper_bound(route.seg_end_m.begin(),
                                   route.seg_end_m.end(), pos_m);
  const std::size_t k =
      it == route.seg_end_m.end()
          ? route.edges.size() - 1
          : static_cast<std::size_t>(it - route.seg_end_m.begin());
  return edges_[route.edges[k]].lanes;
}

std::optional<chain_view> road_graph::as_chain() const {
  if (routes_.size() != 1) return std::nullopt;
  const auto& route = routes_[0];
  if (route.sites.size() != sites_.size()) return std::nullopt;
  for (const double factor : route.seg_factor)
    if (factor != 1.0) return std::nullopt;
  for (const std::size_t e : route.edges)
    if (edges_[e].lanes != 1) return std::nullopt;
  double max_gap = 0.0;
  for (std::size_t i = 1; i < route.site_pos_m.size(); ++i)
    max_gap = std::max(max_gap,
                       route.site_pos_m[i] - route.site_pos_m[i - 1]);
  // The chain engine requires contiguous coverage; a sparser graph stays in
  // route mode, where the profile inflates the per-route radius instead.
  if (radius_ < max_gap / 2.0) return std::nullopt;

  chain_view view;
  view.coverage_radius_m = util::meters{radius_};
  view.count = route.sites.size();
  const double spacing = route.site_pos_m.front();
  bool uniform = spacing > 0.0 && radius_ >= spacing / 2.0;
  for (std::size_t i = 0; uniform && i < route.site_pos_m.size(); ++i)
    uniform = route.site_pos_m[i] == spacing * static_cast<double>(i + 1);
  if (uniform) {
    view.uniform = true;
    view.spacing_m = util::meters{spacing};
  } else {
    view.centers_m.reserve(route.site_pos_m.size());
    for (const double c : route.site_pos_m)
      view.centers_m.push_back(util::meters{c});
  }
  return view;
}

route_profile road_graph::make_route_profile(std::size_t r) const {
  VTM_EXPECTS(r < routes_.size());
  const auto& route = routes_[r];
  double max_gap = 0.0;
  for (std::size_t i = 1; i < route.site_pos_m.size(); ++i)
    max_gap = std::max(max_gap,
                       route.site_pos_m[i] - route.site_pos_m[i - 1]);
  // Inflate the per-route radius to whatever keeps the chain contiguous:
  // the graph's physical radius governs real coverage, but the route chain
  // only drives serving/handover geometry.
  const double radius = std::max(radius_, 0.5 * max_gap);
  rsu_chain chain(route.site_pos_m, radius);
  return route_profile(std::move(chain), route.sites, route.seg_end_m,
                       route.seg_factor);
}

road_graph road_graph::path(std::size_t rsu_count, double spacing_m,
                            double coverage_radius_m) {
  VTM_EXPECTS(rsu_count >= 1);
  VTM_EXPECTS(std::isfinite(spacing_m) && spacing_m > 0.0);
  std::vector<road_node> nodes(rsu_count + 1);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    nodes[i].x_m = spacing_m * static_cast<double>(i);
  std::vector<road_edge> edges(rsu_count);
  std::vector<rsu_site> sites(rsu_count);
  for (std::size_t i = 0; i < rsu_count; ++i) {
    edges[i] = road_edge{i, i + 1, spacing_m, 1.0, 1};
    sites[i] = rsu_site{i, spacing_m};  // centre at spacing x (i + 1)
  }
  return road_graph(std::move(nodes), std::move(edges), std::move(sites),
                    {0}, {rsu_count}, coverage_radius_m);
}

road_graph road_graph::grid(std::size_t rows, std::size_t cols,
                            double edge_length_m, double coverage_radius_m) {
  VTM_EXPECTS(rows >= 2 && cols >= 2);
  VTM_EXPECTS(std::isfinite(edge_length_m) && edge_length_m > 0.0);
  const auto node = [cols](std::size_t r, std::size_t c) {
    return r * cols + c;
  };
  std::vector<road_node> nodes(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      nodes[node(r, c)] = road_node{edge_length_m * static_cast<double>(c),
                                    edge_length_m * static_cast<double>(r)};
  std::vector<road_edge> edges;
  std::vector<rsu_site> sites;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {  // rightward arterial: 2 lanes, free flow
        sites.push_back(rsu_site{edges.size(), 0.5 * edge_length_m});
        edges.push_back(
            road_edge{node(r, c), node(r, c + 1), edge_length_m, 1.0, 2});
      }
      if (r + 1 < rows) {  // downward street: single lane, slower
        sites.push_back(rsu_site{edges.size(), 0.5 * edge_length_m});
        edges.push_back(
            road_edge{node(r, c), node(r + 1, c), edge_length_m, 0.85, 1});
      }
    }
  // Entries on the top/left boundary, exits on the bottom/right; the shared
  // corners drop out as entry == exit pairs.
  std::vector<std::size_t> entries;
  std::vector<std::size_t> exits;
  for (std::size_t c = 0; c < cols; ++c) entries.push_back(node(0, c));
  for (std::size_t r = 1; r < rows; ++r) entries.push_back(node(r, 0));
  for (std::size_t c = 0; c < cols; ++c) exits.push_back(node(rows - 1, c));
  for (std::size_t r = 0; r + 1 < rows; ++r)
    exits.push_back(node(r, cols - 1));
  return road_graph(std::move(nodes), std::move(edges), std::move(sites),
                    std::move(entries), std::move(exits), coverage_radius_m);
}

}  // namespace vtm::sim
