#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace vtm::sim {

vehicle_state advance(vehicle_state v, double dt) {
  VTM_EXPECTS(dt >= 0.0);
  v.position_m += v.speed_mps * dt;
  return v;
}

rsu_chain::rsu_chain(std::size_t count, double spacing_m,
                     double coverage_radius_m)
    : spacing_(spacing_m), radius_(coverage_radius_m), uniform_(true) {
  VTM_EXPECTS(count >= 1);
  VTM_EXPECTS(spacing_m > 0.0);
  VTM_EXPECTS(coverage_radius_m > 0.0);
  VTM_EXPECTS(coverage_radius_m >= spacing_m / 2.0);
  centers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    centers_.push_back(spacing_m * static_cast<double>(i + 1));
}

rsu_chain::rsu_chain(std::vector<double> centers_m, double coverage_radius_m)
    : centers_(std::move(centers_m)),
      radius_(coverage_radius_m),
      uniform_(false) {
  VTM_EXPECTS(!centers_.empty());
  VTM_EXPECTS(coverage_radius_m > 0.0);
  double max_gap = 0.0;
  for (std::size_t i = 1; i < centers_.size(); ++i) {
    const double gap = centers_[i] - centers_[i - 1];
    VTM_EXPECTS(gap > 0.0);
    max_gap = std::max(max_gap, gap);
  }
  VTM_EXPECTS(coverage_radius_m >= max_gap / 2.0);
  spacing_ = centers_.size() > 1 ? (centers_.back() - centers_.front()) /
                                       static_cast<double>(centers_.size() - 1)
                                 : 2.0 * radius_;
}

namespace {
[[nodiscard]] std::vector<double> unwrap(
    const std::vector<util::meters>& centers) {
  std::vector<double> raw;
  raw.reserve(centers.size());
  for (const util::meters c : centers) raw.push_back(c.value());
  return raw;
}
}  // namespace

rsu_chain::rsu_chain(const std::vector<util::meters>& centers,
                     util::meters coverage_radius)
    : rsu_chain(unwrap(centers), coverage_radius.value()) {}

double rsu_chain::center_m(std::size_t i) const {
  VTM_EXPECTS(i < centers_.size());
  return centers_[i];
}

std::size_t rsu_chain::serving_rsu(double position_m) const noexcept {
  if (position_m <= centers_.front()) return 0;
  if (position_m >= centers_.back()) return centers_.size() - 1;
  if (uniform_) {
    // Equal spacing makes nearest-centre arithmetic; kept verbatim so the
    // uniform chains the fleet engine builds reproduce historic rounding at
    // cell midpoints bit for bit.
    const double offset = (position_m - centers_.front()) / spacing_;
    const auto i = static_cast<std::size_t>(std::lround(offset));
    return std::min(i, centers_.size() - 1);
  }
  // Non-uniform: nearest centre via the first midpoint strictly beyond the
  // position (a position exactly on a midpoint belongs to the next cell,
  // matching lround's round-half-up on the uniform path).
  std::size_t i = 0;
  while (i + 1 < centers_.size() &&
         position_m >= 0.5 * (centers_[i] + centers_[i + 1]))
    ++i;
  return i;
}

double rsu_chain::handover_position_m(std::size_t i) const {
  VTM_EXPECTS(i + 1 < centers_.size());
  return 0.5 * (centers_[i] + centers_[i + 1]);
}

std::optional<rsu_chain::handover_event> rsu_chain::next_handover(
    const vehicle_state& vehicle) const {
  if (vehicle.speed_mps == 0.0) return std::nullopt;
  const std::size_t current = serving_rsu(vehicle.position_m);
  if (vehicle.speed_mps > 0.0) {
    if (current + 1 >= centers_.size()) return std::nullopt;
    const double boundary = handover_position_m(current);
    double distance = boundary - vehicle.position_m;
    if (distance <= 0.0) {
      // Already at/past the midpoint but still nearest to `current` due to
      // rounding; treat as immediate crossing.
      distance = 0.0;
    }
    return handover_event{distance / vehicle.speed_mps, current, current + 1};
  }
  if (current == 0) return std::nullopt;
  const double boundary = handover_position_m(current - 1);
  double distance = vehicle.position_m - boundary;
  if (distance <= 0.0) distance = 0.0;
  return handover_event{distance / -vehicle.speed_mps, current, current - 1};
}

double rsu_chain::link_distance_m(std::size_t i, std::size_t j) const {
  VTM_EXPECTS(i < centers_.size());
  VTM_EXPECTS(j < centers_.size());
  return std::abs(centers_[i] - centers_[j]);
}

rsu_chain rsu_chain::shifted(double offset_m) const {
  VTM_EXPECTS(std::isfinite(offset_m));
  std::vector<double> centers = centers_;
  for (double& c : centers) c += offset_m;
  return rsu_chain(std::move(centers), radius_);
}

route_profile::route_profile(rsu_chain chain,
                             std::vector<std::size_t> global_rsus,
                             std::vector<double> seg_end_m,
                             std::vector<double> seg_factor)
    : chain_(std::move(chain)),
      global_(std::move(global_rsus)),
      seg_end_(std::move(seg_end_m)),
      seg_factor_(std::move(seg_factor)) {
  VTM_EXPECTS(global_.size() == chain_.count());
  VTM_EXPECTS(seg_end_.size() == seg_factor_.size());
  for (std::size_t k = 0; k < seg_end_.size(); ++k) {
    VTM_EXPECTS(std::isfinite(seg_end_[k]));
    VTM_EXPECTS(k == 0 || seg_end_[k] > seg_end_[k - 1]);
    VTM_EXPECTS(std::isfinite(seg_factor_[k]) && seg_factor_[k] > 0.0);
    if (seg_factor_[k] != 1.0) unit_factor_ = false;
  }
}

std::size_t route_profile::global_rsu(std::size_t i) const {
  VTM_EXPECTS(i < global_.size());
  return global_[i];
}

std::size_t route_profile::serving_rsu(double position_m) const noexcept {
  return global_[chain_.serving_rsu(position_m)];
}

std::size_t route_profile::segment_at(double position_m) const noexcept {
  const auto it =
      std::upper_bound(seg_end_.begin(), seg_end_.end(), position_m);
  if (it == seg_end_.end()) return seg_end_.size() - 1;
  return static_cast<std::size_t>(it - seg_end_.begin());
}

double route_profile::factor_at(double position_m) const noexcept {
  if (seg_end_.empty()) return 1.0;
  return seg_factor_[segment_at(position_m)];
}

vehicle_state route_profile::advance(vehicle_state v, double dt) const {
  VTM_EXPECTS(dt >= 0.0);
  if (unit_factor_) {
    // Exact `sim::advance` arithmetic — bitwise on degenerate path graphs.
    v.position_m += v.speed_mps * dt;
    return v;
  }
  VTM_EXPECTS(v.speed_mps >= 0.0);
  if (v.speed_mps == 0.0 || dt == 0.0) return v;
  double remaining = dt;
  while (remaining > 0.0) {
    const std::size_t k = segment_at(v.position_m);
    const double eff = v.speed_mps * seg_factor_[k];
    if (v.position_m >= seg_end_.back()) {
      // Cruising past the route end at the last segment's factor.
      v.position_m += eff * remaining;
      return v;
    }
    const double step_s = (seg_end_[k] - v.position_m) / eff;
    if (step_s >= remaining) {
      v.position_m += eff * remaining;
      return v;
    }
    v.position_m = seg_end_[k];
    remaining -= step_s;
  }
  return v;
}

double route_profile::travel_time_s(double from, double to,
                                    double speed) const {
  double t = 0.0;
  double pos = from;
  while (pos < to) {
    const std::size_t k = segment_at(pos);
    const double eff = speed * seg_factor_[k];
    const double end =
        pos >= seg_end_.back() ? to : std::min(seg_end_[k], to);
    t += (end - pos) / eff;
    pos = end;
  }
  return t;
}

std::optional<rsu_chain::handover_event> route_profile::next_handover(
    const vehicle_state& vehicle) const {
  if (unit_factor_) {
    const auto event = chain_.next_handover(vehicle);
    if (!event) return std::nullopt;
    return rsu_chain::handover_event{event->after_s, global_[event->from_rsu],
                                     global_[event->to_rsu]};
  }
  if (vehicle.speed_mps <= 0.0) return std::nullopt;
  const std::size_t current = chain_.serving_rsu(vehicle.position_m);
  if (current + 1 >= chain_.count()) return std::nullopt;
  const double boundary = chain_.handover_position_m(current);
  const double after_s =
      boundary <= vehicle.position_m
          ? 0.0
          : travel_time_s(vehicle.position_m, boundary, vehicle.speed_mps);
  return rsu_chain::handover_event{after_s, global_[current],
                                   global_[current + 1]};
}

chain_set::chain_set(std::span<const rsu_chain> chains) : chains_(chains) {
  for (const auto& chain : chains_)
    VTM_EXPECTS(chain.count() == chains_.front().count());
}

const rsu_chain& chain_set::chain(std::size_t m) const {
  VTM_EXPECTS(m < chains_.size());
  return chains_[m];
}

std::size_t chain_set::candidate(std::size_t m, double position_m) const {
  VTM_EXPECTS(m < chains_.size());
  return chains_[m].serving_rsu(position_m);
}

std::vector<std::size_t> chain_set::candidates(double position_m) const {
  std::vector<std::size_t> result(chains_.size());
  for (std::size_t m = 0; m < chains_.size(); ++m)
    result[m] = chains_[m].serving_rsu(position_m);
  return result;
}

}  // namespace vtm::sim
