#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace vtm::sim {

vehicle_state advance(vehicle_state v, double dt) {
  VTM_EXPECTS(dt >= 0.0);
  v.position_m += v.speed_mps * dt;
  return v;
}

rsu_chain::rsu_chain(std::size_t count, double spacing_m,
                     double coverage_radius_m)
    : spacing_(spacing_m), radius_(coverage_radius_m), uniform_(true) {
  VTM_EXPECTS(count >= 1);
  VTM_EXPECTS(spacing_m > 0.0);
  VTM_EXPECTS(coverage_radius_m > 0.0);
  VTM_EXPECTS(coverage_radius_m >= spacing_m / 2.0);
  centers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    centers_.push_back(spacing_m * static_cast<double>(i + 1));
}

rsu_chain::rsu_chain(std::vector<double> centers_m, double coverage_radius_m)
    : centers_(std::move(centers_m)),
      radius_(coverage_radius_m),
      uniform_(false) {
  VTM_EXPECTS(!centers_.empty());
  VTM_EXPECTS(coverage_radius_m > 0.0);
  double max_gap = 0.0;
  for (std::size_t i = 1; i < centers_.size(); ++i) {
    const double gap = centers_[i] - centers_[i - 1];
    VTM_EXPECTS(gap > 0.0);
    max_gap = std::max(max_gap, gap);
  }
  VTM_EXPECTS(coverage_radius_m >= max_gap / 2.0);
  spacing_ = centers_.size() > 1 ? (centers_.back() - centers_.front()) /
                                       static_cast<double>(centers_.size() - 1)
                                 : 2.0 * radius_;
}

double rsu_chain::center_m(std::size_t i) const {
  VTM_EXPECTS(i < centers_.size());
  return centers_[i];
}

std::size_t rsu_chain::serving_rsu(double position_m) const noexcept {
  if (position_m <= centers_.front()) return 0;
  if (position_m >= centers_.back()) return centers_.size() - 1;
  if (uniform_) {
    // Equal spacing makes nearest-centre arithmetic; kept verbatim so the
    // uniform chains the fleet engine builds reproduce historic rounding at
    // cell midpoints bit for bit.
    const double offset = (position_m - centers_.front()) / spacing_;
    const auto i = static_cast<std::size_t>(std::lround(offset));
    return std::min(i, centers_.size() - 1);
  }
  // Non-uniform: nearest centre via the first midpoint strictly beyond the
  // position (a position exactly on a midpoint belongs to the next cell,
  // matching lround's round-half-up on the uniform path).
  std::size_t i = 0;
  while (i + 1 < centers_.size() &&
         position_m >= 0.5 * (centers_[i] + centers_[i + 1]))
    ++i;
  return i;
}

double rsu_chain::handover_position_m(std::size_t i) const {
  VTM_EXPECTS(i + 1 < centers_.size());
  return 0.5 * (centers_[i] + centers_[i + 1]);
}

std::optional<rsu_chain::handover_event> rsu_chain::next_handover(
    const vehicle_state& vehicle) const {
  if (vehicle.speed_mps == 0.0) return std::nullopt;
  const std::size_t current = serving_rsu(vehicle.position_m);
  if (vehicle.speed_mps > 0.0) {
    if (current + 1 >= centers_.size()) return std::nullopt;
    const double boundary = handover_position_m(current);
    double distance = boundary - vehicle.position_m;
    if (distance <= 0.0) {
      // Already at/past the midpoint but still nearest to `current` due to
      // rounding; treat as immediate crossing.
      distance = 0.0;
    }
    return handover_event{distance / vehicle.speed_mps, current, current + 1};
  }
  if (current == 0) return std::nullopt;
  const double boundary = handover_position_m(current - 1);
  double distance = vehicle.position_m - boundary;
  if (distance <= 0.0) distance = 0.0;
  return handover_event{distance / -vehicle.speed_mps, current, current - 1};
}

double rsu_chain::link_distance_m(std::size_t i, std::size_t j) const {
  VTM_EXPECTS(i < centers_.size());
  VTM_EXPECTS(j < centers_.size());
  return std::abs(centers_[i] - centers_[j]);
}

rsu_chain rsu_chain::shifted(double offset_m) const {
  VTM_EXPECTS(std::isfinite(offset_m));
  std::vector<double> centers = centers_;
  for (double& c : centers) c += offset_m;
  return rsu_chain(std::move(centers), radius_);
}

chain_set::chain_set(std::span<const rsu_chain> chains) : chains_(chains) {
  for (const auto& chain : chains_)
    VTM_EXPECTS(chain.count() == chains_.front().count());
}

const rsu_chain& chain_set::chain(std::size_t m) const {
  VTM_EXPECTS(m < chains_.size());
  return chains_[m];
}

std::size_t chain_set::candidate(std::size_t m, double position_m) const {
  VTM_EXPECTS(m < chains_.size());
  return chains_[m].serving_rsu(position_m);
}

std::vector<std::size_t> chain_set::candidates(double position_m) const {
  std::vector<std::size_t> result(chains_.size());
  for (std::size_t m = 0; m < chains_.size(); ++m)
    result[m] = chains_[m].serving_rsu(position_m);
  return result;
}

}  // namespace vtm::sim
