#include "sim/block_transfer.hpp"

#include <memory>

#include "util/contracts.hpp"

namespace vtm::sim {

std::vector<double> twin_block_sizes(const vehicular_twin& twin) {
  std::vector<double> blocks;
  blocks.reserve(2 + twin.config().memory_pages);
  if (twin.config().system_config_mb > util::megabytes{0.0})
    blocks.push_back(twin.config().system_config_mb.value());
  for (std::size_t p = 0; p < twin.config().memory_pages; ++p)
    blocks.push_back(twin.config().page_mb.value());
  if (twin.config().runtime_state_mb > util::megabytes{0.0})
    blocks.push_back(twin.config().runtime_state_mb.value());
  return blocks;
}

double schedule_block_transfer(
    event_queue& queue, std::span<const double> block_sizes_mb,
    double rate_mb_s,
    std::function<void(const transfer_timeline&)> on_complete) {
  VTM_EXPECTS(rate_mb_s > 0.0);
  VTM_EXPECTS(!block_sizes_mb.empty());
  for (double size : block_sizes_mb) VTM_EXPECTS(size > 0.0);

  auto timeline = std::make_shared<transfer_timeline>();
  timeline->generated_at = queue.now();
  timeline->blocks.reserve(block_sizes_mb.size());

  // Blocks stream back-to-back on the dedicated subchannel; one completion
  // event each. All completion times are known at schedule time (no
  // contention within a grant), so events carry precomputed timestamps.
  double clock = queue.now();
  const std::size_t count = block_sizes_mb.size();
  for (std::size_t i = 0; i < count; ++i) {
    block_event event;
    event.index = i;
    event.size_mb = block_sizes_mb[i];
    event.started_at = clock;
    clock += block_sizes_mb[i] / rate_mb_s;
    event.completed_at = clock;
    const bool last = (i + 1 == count);
    queue.schedule(event.completed_at,
                   [timeline, event, last,
                    on_complete = last ? on_complete : nullptr] {
                     timeline->blocks.push_back(event);
                     if (last) {
                       timeline->completed_at = event.completed_at;
                       if (on_complete) on_complete(*timeline);
                     }
                   });
  }
  return clock;
}

transfer_timeline run_block_transfer(std::span<const double> block_sizes_mb,
                                     double rate_mb_s) {
  event_queue queue;
  transfer_timeline result;
  schedule_block_transfer(queue, block_sizes_mb, rate_mb_s,
                          [&result](const transfer_timeline& timeline) {
                            result = timeline;
                          });
  queue.run_all();
  return result;
}

}  // namespace vtm::sim
