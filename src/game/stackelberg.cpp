#include "game/stackelberg.hpp"

#include <algorithm>
#include <cmath>

#include "game/maximize.hpp"
#include "util/contracts.hpp"

namespace vtm::game {

subgame_result solve_subgame(
    std::span<const std::unique_ptr<follower>> followers, double leader_action,
    double tol, std::size_t max_sweeps) {
  VTM_EXPECTS(tol > 0.0);
  subgame_result result;
  result.actions.assign(followers.size(), 0.0);
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_change = 0.0;
    for (std::size_t i = 0; i < followers.size(); ++i) {
      const double updated =
          followers[i]->best_response(leader_action, result.actions);
      max_change = std::max(max_change, std::abs(updated - result.actions[i]));
      result.actions[i] = updated;
    }
    ++result.sweeps;
    if (max_change <= tol) {
      result.converged = true;
      break;
    }
  }
  return result;
}

stackelberg_solution solve_stackelberg(
    const leader_problem& problem,
    std::span<const std::unique_ptr<follower>> followers,
    std::size_t grid_points, double tol) {
  VTM_EXPECTS(problem.action_lo <= problem.action_hi);
  VTM_EXPECTS(static_cast<bool>(problem.utility));
  VTM_EXPECTS(grid_points >= 2);

  const auto leader_objective = [&](double action) {
    const auto subgame = solve_subgame(followers, action);
    return problem.utility(action, subgame.actions);
  };

  // Coarse grid scan: find the best cell, then refine inside its neighbours.
  const double span_len = problem.action_hi - problem.action_lo;
  double best_action = problem.action_lo;
  double best_value = leader_objective(best_action);
  for (std::size_t i = 1; i < grid_points; ++i) {
    const double a = problem.action_lo +
                     span_len * static_cast<double>(i) /
                         static_cast<double>(grid_points - 1);
    const double v = leader_objective(a);
    if (v > best_value) {
      best_value = v;
      best_action = a;
    }
  }
  const double cell = span_len / static_cast<double>(grid_points - 1);
  const double lo = std::max(problem.action_lo, best_action - cell);
  const double hi = std::min(problem.action_hi, best_action + cell);
  const auto refined = golden_section_maximize(leader_objective, lo, hi, tol);

  stackelberg_solution solution;
  solution.leader_action =
      refined.value >= best_value ? refined.arg : best_action;
  const auto subgame = solve_subgame(followers, solution.leader_action);
  solution.follower_actions = subgame.actions;
  solution.subgame_converged = subgame.converged;
  solution.leader_utility =
      problem.utility(solution.leader_action, solution.follower_actions);
  solution.follower_utilities.reserve(followers.size());
  for (std::size_t i = 0; i < followers.size(); ++i) {
    solution.follower_utilities.push_back(followers[i]->utility(
        solution.follower_actions[i], solution.leader_action,
        solution.follower_actions));
  }
  return solution;
}

deviation_report check_no_deviation(
    const leader_problem& problem,
    std::span<const std::unique_ptr<follower>> followers,
    const stackelberg_solution& candidate, std::size_t samples,
    double follower_action_hi) {
  VTM_EXPECTS(samples >= 2);
  deviation_report report;

  // Leader deviations: recompute follower equilibrium per deviation (the
  // leader moves first, followers re-respond).
  for (std::size_t i = 0; i < samples; ++i) {
    const double action =
        problem.action_lo + (problem.action_hi - problem.action_lo) *
                                static_cast<double>(i) /
                                static_cast<double>(samples - 1);
    const auto subgame = solve_subgame(followers, action);
    const double utility = problem.utility(action, subgame.actions);
    report.leader_gain =
        std::max(report.leader_gain, utility - candidate.leader_utility);
  }

  // Follower deviations: others held fixed at the candidate equilibrium.
  for (std::size_t n = 0; n < followers.size(); ++n) {
    const double base = candidate.follower_utilities[n];
    for (std::size_t i = 0; i < samples; ++i) {
      const double own = follower_action_hi * static_cast<double>(i) /
                         static_cast<double>(samples - 1);
      const double utility = followers[n]->utility(
          own, candidate.leader_action, candidate.follower_actions);
      report.follower_gain = std::max(report.follower_gain, utility - base);
    }
  }
  return report;
}

}  // namespace vtm::game
