// Generic single-leader / multi-follower Stackelberg machinery.
//
// The leader posts a scalar action (here: a unit price) in a box; each
// follower best-responds, possibly coupled to the other followers' actions;
// the leader maximizes its utility anticipating the follower equilibrium.
// Solving is numeric and assumption-light: iterated best response for the
// follower subgame (exact in one pass when followers are decoupled, as in
// the paper) and golden-section search with a coarse grid restart for the
// leader. Closed forms for the paper's model live in vtm::core and are
// validated against this solver in the tests.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace vtm::game {

/// A follower in the subgame induced by a leader action (I.25 interface).
class follower {
 public:
  virtual ~follower() = default;

  /// Utility of playing `own` when the leader plays `leader_action` and the
  /// other followers play `others` (this follower's slot is ignored).
  [[nodiscard]] virtual double utility(
      double own, double leader_action,
      std::span<const double> others) const = 0;

  /// Best response to the leader action given the others' actions.
  [[nodiscard]] virtual double best_response(
      double leader_action, std::span<const double> others) const = 0;
};

/// Outcome of the follower subgame under a fixed leader action.
struct subgame_result {
  std::vector<double> actions;  ///< One action per follower.
  std::size_t sweeps = 0;       ///< Best-response sweeps performed.
  bool converged = false;       ///< Max action change fell below tolerance.
};

/// Iterated (Gauss–Seidel) best response across followers.
/// Decoupled followers converge in one sweep. Requires tol > 0.
[[nodiscard]] subgame_result solve_subgame(
    std::span<const std::unique_ptr<follower>> followers, double leader_action,
    double tol = 1e-10, std::size_t max_sweeps = 100);

/// Leader-side description of the Stackelberg game.
struct leader_problem {
  double action_lo = 0.0;  ///< Lower bound of the leader action box.
  double action_hi = 1.0;  ///< Upper bound of the leader action box.
  /// Leader utility given its action and the follower equilibrium actions.
  std::function<double(double, std::span<const double>)> utility;
};

/// Full equilibrium of the game.
struct stackelberg_solution {
  double leader_action = 0.0;
  double leader_utility = 0.0;
  std::vector<double> follower_actions;
  std::vector<double> follower_utilities;
  bool subgame_converged = false;
};

/// Solve the game: grid-scan the leader box (guards against non-concave
/// leader objectives induced by constraints), refine with golden-section,
/// then recompute the subgame at the winner.
/// Requires action_lo <= action_hi and a callable utility; grid_points >= 2.
[[nodiscard]] stackelberg_solution solve_stackelberg(
    const leader_problem& problem,
    std::span<const std::unique_ptr<follower>> followers,
    std::size_t grid_points = 64, double tol = 1e-9);

/// Equilibrium certificate: verify no profitable unilateral deviation exists
/// on a sampled grid. Returns the largest observed utility gain from any
/// deviation (<= tolerance means the certificate holds).
struct deviation_report {
  double leader_gain = 0.0;            ///< Max leader improvement found.
  double follower_gain = 0.0;          ///< Max follower improvement found.
  [[nodiscard]] bool holds(double tolerance = 1e-6) const noexcept {
    return leader_gain <= tolerance && follower_gain <= tolerance;
  }
};

/// Probe `samples` deviations per player around a candidate solution.
[[nodiscard]] deviation_report check_no_deviation(
    const leader_problem& problem,
    std::span<const std::unique_ptr<follower>> followers,
    const stackelberg_solution& candidate, std::size_t samples = 256,
    double follower_action_hi = 1e4);

}  // namespace vtm::game
