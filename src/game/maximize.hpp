// One-dimensional maximization utilities for concave objectives.
//
// The Stackelberg analysis needs two primitives: maximizing a strictly
// concave utility over an interval (golden-section search) and locating the
// unique zero of a strictly decreasing first derivative (bisection). Both are
// derivative-free / derivative-only respectively and robust to flat regions
// at the boundary.
//
// The oligopoly best response adds a third shape: a possibly non-concave
// objective (capacity rationing puts kinks in the profit curve) that is
// evaluated millions of times per fleet run. `bracketed_maximize` covers it:
// a grid restart locates the best cell, golden-section refines inside it,
// and the whole search is templated on the callable so a cached, inlined
// objective pays no std::function indirection — the caller gets the exact
// number of objective evaluations spent back.
#pragma once

#include <cstddef>
#include <functional>

namespace vtm::game {

/// Result of a 1-D maximization.
struct maximize_result {
  double arg = 0.0;         ///< Argmax within the search interval.
  double value = 0.0;       ///< Objective at arg.
  std::size_t iterations = 0;
  bool converged = false;   ///< Interval shrank below tolerance.
};

/// Golden-section search for the maximum of a unimodal `f` on [lo, hi].
/// Requires lo <= hi, tol > 0. For strictly concave f the result is within
/// tol of the true argmax.
[[nodiscard]] maximize_result golden_section_maximize(
    const std::function<double(double)>& f, double lo, double hi,
    double tol = 1e-10, std::size_t max_iter = 200);

/// Result of a root bracketing search.
struct root_result {
  double root = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  bool bracketed = true;  ///< False when df has the same sign at both ends.
};

/// Bisection for the zero of a strictly decreasing function `df` on [lo, hi].
/// When df(lo) <= 0 the root is clamped to lo; when df(hi) >= 0, to hi
/// (`bracketed` is false in those cases). Requires lo <= hi, tol > 0.
[[nodiscard]] root_result bisect_decreasing_root(
    const std::function<double(double)>& df, double lo, double hi,
    double tol = 1e-12, std::size_t max_iter = 200);

/// Result of a grid-restart + golden-section refinement.
struct bracketed_result {
  double arg = 0.0;
  double value = 0.0;          ///< Objective at arg.
  std::size_t evaluations = 0; ///< Objective calls spent (grid + refine).
  bool converged = false;      ///< Refinement interval shrank below tol.
};

/// Brent-style maximization of `f` on [a, b]: successive parabolic
/// interpolation with a golden-section safeguard (the classic `localmin`,
/// negated). Superlinear on smooth unimodal objectives — typically 3-4×
/// fewer evaluations than pure golden section at the same tolerance — and
/// never worse than golden section when the parabola misbehaves. `tol` is
/// the absolute argument tolerance. Requires a <= b, tol > 0.
template <typename F>
[[nodiscard]] bracketed_result brent_maximize(F&& f, double a, double b,
                                              double tol = 1e-9,
                                              std::size_t max_iter = 200) {
  bracketed_result result;
  constexpr double cgold = 0.3819660112501051;  // 2 − φ
  // Minimize g = −f with the textbook state (x best, w second, v third).
  double x = a + cgold * (b - a);
  double w = x, v = x;
  double gx = -f(x);
  double gw = gx, gv = gx;
  result.evaluations = 1;
  double d = 0.0, e = 0.0;
  for (std::size_t it = 0; it < max_iter; ++it) {
    const double xm = 0.5 * (a + b);
    const double tol2 = 2.0 * tol;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) {
      result.converged = true;
      break;
    }
    bool golden = true;
    if (std::abs(e) > tol) {
      // Parabola through (v, w, x); accept the step only if it stays inside
      // the bracket and shrinks faster than the step before last.
      double r = (x - w) * (gx - gv);
      double q = (x - v) * (gx - gw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double etemp = e;
      e = d;
      if (!(std::abs(p) >= std::abs(0.5 * q * etemp) || p <= q * (a - x) ||
            p >= q * (b - x))) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = xm >= x ? tol : -tol;
        golden = false;
      }
    }
    if (golden) {
      e = x >= xm ? a - x : b - x;
      d = cgold * e;
    }
    const double u =
        std::abs(d) >= tol ? x + d : x + (d >= 0.0 ? tol : -tol);
    const double gu = -f(u);
    ++result.evaluations;
    if (gu <= gx) {
      if (u >= x)
        a = x;
      else
        b = x;
      v = w;
      gv = gw;
      w = x;
      gw = gx;
      x = u;
      gx = gu;
    } else {
      if (u < x)
        a = u;
      else
        b = u;
      if (gu <= gw || w == x) {
        v = w;
        gv = gw;
        w = u;
        gw = gu;
      } else if (gu <= gv || v == x || v == w) {
        v = u;
        gv = gu;
      }
    }
  }
  result.arg = x;
  result.value = -gx;
  return result;
}

/// Grid-restart + Brent refinement for a possibly non-concave `f` on
/// [lo, hi]: evaluate `grid` equispaced points (endpoints included), then
/// refine the winning cell — one grid step either side of the best point —
/// with `brent_maximize`, keeping whichever of the refined and grid optima
/// is higher. Templated so hot callers (the oligopoly best response) inline
/// the objective. Requires lo <= hi, grid >= 2, tol > 0.
template <typename F>
[[nodiscard]] bracketed_result bracketed_maximize(F&& f, double lo, double hi,
                                                  std::size_t grid = 48,
                                                  double tol = 1e-9,
                                                  std::size_t max_iter = 200) {
  bracketed_result result;
  if (hi - lo < tol) {
    result.arg = 0.5 * (lo + hi);
    result.value = f(result.arg);
    result.evaluations = 1;
    result.converged = true;
    return result;
  }

  double best_arg = lo;
  double best_value = f(lo);
  ++result.evaluations;
  for (std::size_t i = 1; i < grid; ++i) {
    const double p = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(grid - 1);
    const double v = f(p);
    ++result.evaluations;
    if (v > best_value) {
      best_value = v;
      best_arg = p;
    }
  }

  const double cell = (hi - lo) / static_cast<double>(grid - 1);
  const double a = lo > best_arg - cell ? lo : best_arg - cell;
  const double b = hi < best_arg + cell ? hi : best_arg + cell;
  const auto refined = brent_maximize(f, a, b, tol, max_iter);
  result.evaluations += refined.evaluations;
  result.converged = refined.converged;
  if (refined.value >= best_value) {
    result.arg = refined.arg;
    result.value = refined.value;
  } else {
    result.arg = best_arg;
    result.value = best_value;
  }
  return result;
}

}  // namespace vtm::game
