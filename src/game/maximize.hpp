// One-dimensional maximization utilities for concave objectives.
//
// The Stackelberg analysis needs two primitives: maximizing a strictly
// concave utility over an interval (golden-section search) and locating the
// unique zero of a strictly decreasing first derivative (bisection). Both are
// derivative-free / derivative-only respectively and robust to flat regions
// at the boundary.
#pragma once

#include <functional>

namespace vtm::game {

/// Result of a 1-D maximization.
struct maximize_result {
  double arg = 0.0;         ///< Argmax within the search interval.
  double value = 0.0;       ///< Objective at arg.
  std::size_t iterations = 0;
  bool converged = false;   ///< Interval shrank below tolerance.
};

/// Golden-section search for the maximum of a unimodal `f` on [lo, hi].
/// Requires lo <= hi, tol > 0. For strictly concave f the result is within
/// tol of the true argmax.
[[nodiscard]] maximize_result golden_section_maximize(
    const std::function<double(double)>& f, double lo, double hi,
    double tol = 1e-10, std::size_t max_iter = 200);

/// Result of a root bracketing search.
struct root_result {
  double root = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  bool bracketed = true;  ///< False when df has the same sign at both ends.
};

/// Bisection for the zero of a strictly decreasing function `df` on [lo, hi].
/// When df(lo) <= 0 the root is clamped to lo; when df(hi) >= 0, to hi
/// (`bracketed` is false in those cases). Requires lo <= hi, tol > 0.
[[nodiscard]] root_result bisect_decreasing_root(
    const std::function<double(double)>& df, double lo, double hi,
    double tol = 1e-12, std::size_t max_iter = 200);

}  // namespace vtm::game
