#include "game/maximize.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace vtm::game {

maximize_result golden_section_maximize(
    const std::function<double(double)>& f, double lo, double hi, double tol,
    std::size_t max_iter) {
  VTM_EXPECTS(lo <= hi);
  VTM_EXPECTS(tol > 0.0);
  maximize_result result;
  if (hi - lo < tol) {
    result.arg = 0.5 * (lo + hi);
    result.value = f(result.arg);
    result.converged = true;
    return result;
  }
  constexpr double inv_phi = 0.6180339887498949;  // 1/φ
  double a = lo, b = hi;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  std::size_t it = 0;
  while (it < max_iter && (b - a) > tol) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    }
    ++it;
  }
  result.arg = 0.5 * (a + b);
  result.value = f(result.arg);
  result.iterations = it;
  result.converged = (b - a) <= tol;
  return result;
}

root_result bisect_decreasing_root(const std::function<double(double)>& df,
                                   double lo, double hi, double tol,
                                   std::size_t max_iter) {
  VTM_EXPECTS(lo <= hi);
  VTM_EXPECTS(tol > 0.0);
  root_result result;
  double f_lo = df(lo);
  double f_hi = df(hi);
  if (f_lo <= 0.0) {  // decreasing and already non-positive: root at/below lo
    result.root = lo;
    result.converged = true;
    result.bracketed = false;
    return result;
  }
  if (f_hi >= 0.0) {  // still non-negative at hi: root at/above hi
    result.root = hi;
    result.converged = true;
    result.bracketed = false;
    return result;
  }
  double a = lo, b = hi;
  std::size_t it = 0;
  while (it < max_iter && (b - a) > tol) {
    const double mid = 0.5 * (a + b);
    const double f_mid = df(mid);
    if (f_mid > 0.0)
      a = mid;
    else
      b = mid;
    ++it;
  }
  result.root = 0.5 * (a + b);
  result.iterations = it;
  result.converged = (b - a) <= tol;
  return result;
}

}  // namespace vtm::game
