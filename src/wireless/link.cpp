#include "wireless/link.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace vtm::wireless {

link_budget::link_budget(const link_params& params) : params_(params) {
  VTM_EXPECTS(params.distance_m > util::meters{0.0});
  VTM_EXPECTS(params.path_loss_exponent >= 0.0);
  tx_watt_ = util::to_watts(params.tx_power_dbm).value();
  gain_ = util::to_linear(params.unit_gain_db) *
          std::pow(params.distance_m.value(), -params.path_loss_exponent);
  noise_watt_ = util::to_watts(params.noise_power_dbm).value();
  VTM_ENSURES(noise_watt_ > 0.0);
  snr_ = tx_watt_ * gain_ / noise_watt_;
  spectral_efficiency_ = std::log2(1.0 + snr_);
}

double link_budget::rate_mbps(double bandwidth_mhz) const {
  VTM_EXPECTS(bandwidth_mhz >= 0.0);
  return bandwidth_mhz * spectral_efficiency_;
}

double link_budget::transfer_seconds(double data_bits,
                                     double bandwidth_hz) const {
  VTM_EXPECTS(data_bits >= 0.0);
  VTM_EXPECTS(bandwidth_hz > 0.0);
  return data_bits / (bandwidth_hz * spectral_efficiency_);
}

}  // namespace vtm::wireless
