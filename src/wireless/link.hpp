// Link budget between a source RSU and a destination RSU.
//
// Implements the paper's channel model: with transmit power ρ, unit channel
// power gain h0, inter-RSU distance d, path-loss exponent ε, and average noise
// power N0, the SNR is ρ·h0·d^−ε / N0 and a bandwidth b achieves the rate
// γ = b·log2(1 + SNR) (OFDMA subchannels are orthogonal, so rates add).
#pragma once

#include "util/quantity.hpp"

namespace vtm::wireless {

/// Channel parameters in the paper's logarithmic units. Power levels and the
/// link distance are typed quantities (util/quantity.hpp): dBm cannot be
/// mistaken for watts or meters at compile time, and crossing into linear
/// units goes through util/units.hpp explicitly.
struct link_params {
  util::dbm tx_power_dbm{40.0};       ///< ρ — source RSU transmit power.
  util::db unit_gain_db{-20.0};       ///< h0 — unit channel power gain.
  util::meters distance_m{500.0};     ///< d — source↔destination distance.
  double path_loss_exponent = 2.0;    ///< ε — path-loss coefficient (unitless).
  util::dbm noise_power_dbm{-150.0};  ///< N0 — average noise power.
};

/// Derived linear-scale quantities for a point-to-point RSU link.
class link_budget {
 public:
  /// Validate and derive linear quantities. Requires distance > 0, ε >= 0.
  explicit link_budget(const link_params& params);

  /// Input parameters as given.
  [[nodiscard]] const link_params& params() const noexcept { return params_; }

  /// Transmit power in watts.
  [[nodiscard]] double tx_power_watt() const noexcept { return tx_watt_; }

  /// Typed siblings of the linear-power accessors.
  [[nodiscard]] util::watts tx_power() const noexcept {
    return util::watts{tx_watt_};
  }
  [[nodiscard]] util::watts noise_power() const noexcept {
    return util::watts{noise_watt_};
  }

  /// Composite channel gain h0·d^−ε (linear, unitless).
  [[nodiscard]] double channel_gain() const noexcept { return gain_; }

  /// Received signal power in watts.
  [[nodiscard]] double received_power_watt() const noexcept {
    return tx_watt_ * gain_;
  }

  /// Noise power in watts.
  [[nodiscard]] double noise_power_watt() const noexcept { return noise_watt_; }

  /// Linear signal-to-noise ratio.
  [[nodiscard]] double snr() const noexcept { return snr_; }

  /// Shannon spectral efficiency log2(1 + SNR) in bit/s/Hz.
  [[nodiscard]] double spectral_efficiency() const noexcept {
    return spectral_efficiency_;
  }

  /// Achievable rate in Mbit/s for a bandwidth in MHz.
  /// Requires bandwidth >= 0.
  [[nodiscard]] double rate_mbps(double bandwidth_mhz) const;

  /// Typed sibling: rate for a typed bandwidth (Mbit/s stays a raw double —
  /// rates feed straight into record/tensor aggregates).
  [[nodiscard]] double rate_mbps(util::megahertz bandwidth) const {
    return rate_mbps(bandwidth.value());
  }

  /// Seconds to move `data_bits` over `bandwidth_hz`. Requires positive
  /// bandwidth and non-negative data.
  [[nodiscard]] double transfer_seconds(double data_bits,
                                        double bandwidth_hz) const;

 private:
  link_params params_;
  double tx_watt_;
  double gain_;
  double noise_watt_;
  double snr_;
  double spectral_efficiency_;
};

}  // namespace vtm::wireless
