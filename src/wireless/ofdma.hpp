// OFDMA bandwidth pool with orthogonality bookkeeping.
//
// The MSP manages the channels between a source RSU and a destination RSU.
// This pool enforces the physical invariant behind the market's B_max
// constraint: the sum of simultaneously granted bandwidth never exceeds the
// pool capacity, and grants are disjoint (orthogonal subchannels).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "util/quantity.hpp"

namespace vtm::wireless {

/// Identifier of an active bandwidth grant.
struct grant_id {
  std::uint64_t value = 0;
  [[nodiscard]] bool operator==(const grant_id&) const noexcept = default;
};

/// Allocator over a fixed amount of orthogonal bandwidth (MHz).
class ofdma_pool {
 public:
  /// Pool of `capacity_mhz` (> 0) with an optional subchannel granularity:
  /// when granularity > 0, grants are rounded *up* to whole subchannels.
  explicit ofdma_pool(double capacity_mhz, double granularity_mhz = 0.0);

  /// Typed sibling of the raw-double constructor.
  explicit ofdma_pool(util::megahertz capacity,
                      util::megahertz granularity = util::megahertz{0.0})
      : ofdma_pool(capacity.value(), granularity.value()) {}

  /// Total capacity in MHz.
  [[nodiscard]] double capacity_mhz() const noexcept { return capacity_; }

  /// Sum of currently granted bandwidth.
  [[nodiscard]] double allocated_mhz() const noexcept { return allocated_; }

  /// Remaining bandwidth.
  [[nodiscard]] double available_mhz() const noexcept {
    return capacity_ - allocated_;
  }

  /// Typed siblings of the MHz accessors.
  [[nodiscard]] util::megahertz capacity() const noexcept {
    return util::megahertz{capacity_};
  }
  [[nodiscard]] util::megahertz allocated() const noexcept {
    return util::megahertz{allocated_};
  }
  [[nodiscard]] util::megahertz available() const noexcept {
    return util::megahertz{capacity_ - allocated_};
  }

  /// Number of live grants.
  [[nodiscard]] std::size_t active_grants() const noexcept {
    return grants_.size();
  }

  /// Try to grant `mhz` (> 0) of bandwidth; nullopt when it does not fit.
  [[nodiscard]] std::optional<grant_id> allocate(double mhz);

  /// Typed sibling of `allocate`.
  [[nodiscard]] std::optional<grant_id> allocate(util::megahertz bandwidth) {
    return allocate(bandwidth.value());
  }

  /// Bandwidth of a live grant; nullopt for unknown ids.
  [[nodiscard]] std::optional<double> grant_mhz(grant_id id) const;

  /// Release a live grant. Returns false for unknown ids (idempotent-safe).
  bool release(grant_id id);

  /// Effective size of a request after granularity rounding.
  [[nodiscard]] double rounded(double mhz) const;

  /// Typed sibling of `rounded`.
  [[nodiscard]] util::megahertz rounded(util::megahertz request) const {
    return util::megahertz{rounded(request.value())};
  }

 private:
  double capacity_;
  double granularity_;
  double allocated_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, double> grants_;
};

}  // namespace vtm::wireless
