#include "wireless/ofdma.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace vtm::wireless {

ofdma_pool::ofdma_pool(double capacity_mhz, double granularity_mhz)
    : capacity_(capacity_mhz), granularity_(granularity_mhz) {
  VTM_EXPECTS(capacity_mhz > 0.0);
  VTM_EXPECTS(granularity_mhz >= 0.0);
}

double ofdma_pool::rounded(double mhz) const {
  if (granularity_ <= 0.0) return mhz;
  return std::ceil(mhz / granularity_) * granularity_;
}

std::optional<grant_id> ofdma_pool::allocate(double mhz) {
  VTM_EXPECTS(mhz > 0.0);
  const double size = rounded(mhz);
  // Tolerate floating accumulation at the boundary.
  if (size > available_mhz() + 1e-12) return std::nullopt;
  const grant_id id{next_id_++};
  grants_.emplace(id.value, size);
  allocated_ += size;
  VTM_ENSURES(allocated_ <= capacity_ + 1e-9);
  return id;
}

std::optional<double> ofdma_pool::grant_mhz(grant_id id) const {
  const auto it = grants_.find(id.value);
  if (it == grants_.end()) return std::nullopt;
  return it->second;
}

bool ofdma_pool::release(grant_id id) {
  const auto it = grants_.find(id.value);
  if (it == grants_.end()) return false;
  allocated_ -= it->second;
  if (allocated_ < 0.0) allocated_ = 0.0;  // guard accumulated rounding
  grants_.erase(it);
  return true;
}

}  // namespace vtm::wireless
