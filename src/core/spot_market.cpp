#include "core/spot_market.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"
#include "util/trace.hpp"

namespace vtm::core {

const char* to_string(clearing_discipline discipline) noexcept {
  switch (discipline) {
    case clearing_discipline::joint:
      return "joint";
    case clearing_discipline::sequential:
      return "sequential";
  }
  return "?";
}

spot_market::spot_market(spot_market_config config)
    : config_(std::move(config)) {
  VTM_EXPECTS(config_.unit_cost > 0.0);
  VTM_EXPECTS(config_.price_cap >= config_.unit_cost);
  VTM_EXPECTS(config_.min_clearable_mhz > util::megahertz{0.0});
  if (!config_.policy) config_.policy = std::make_shared<oracle_policy>();
}

equilibrium spot_market::price_market(const migration_market& market,
                                      double available_mhz) {
  return config_.policy->price_cohort(
      market, make_cohort_observation(market, available_mhz,
                                      config_.pool_capacity_mhz.value()));
}

void spot_market::submit(clearing_request request) {
  VTM_EXPECTS(request.profile.alpha > 0.0);
  VTM_EXPECTS(request.profile.data_mb > 0.0);
  pending_.push_back(std::move(request));
}

clearing_outcome spot_market::clear(double available_mhz) {
  VTM_EXPECTS(available_mhz >= 0.0);
  if (pending_.empty()) return {};
  util::trace_span span(config_.trace, "market.clear");
  span.arg("cohort", static_cast<double>(pending_.size()));
  span.arg("available_mhz", available_mhz);
  if (available_mhz < config_.min_clearable_mhz.value()) {
    clearing_outcome outcome;
    outcome.deferred = pending_.size();
    span.arg("deferred", static_cast<double>(outcome.deferred));
    return outcome;
  }
  clearing_outcome outcome =
      config_.discipline == clearing_discipline::joint
          ? clear_joint(available_mhz)
          : clear_sequential(available_mhz);
  span.arg("granted", static_cast<double>(outcome.grants.size()));
  span.arg("deferred", static_cast<double>(outcome.deferred));
  span.arg("priced_out", static_cast<double>(outcome.priced_out.size()));
  return outcome;
}

clearing_outcome spot_market::clear_joint(double available_mhz) {
  clearing_outcome outcome;

  market_params params;
  params.vmus.reserve(pending_.size());
  for (const auto& request : pending_) params.vmus.push_back(request.profile);
  params.link = config_.link;
  params.bandwidth_cap_mhz = util::megahertz{available_mhz};
  params.unit_cost = config_.unit_cost;
  params.price_cap = config_.price_cap;

  const migration_market market(std::move(params));
  const equilibrium eq = price_market(market, available_mhz);
  outcome.price = eq.price;
  outcome.markets_cleared = 1;

  // Proportional rationing guarantees Σ b*_n <= cap up to rounding; clamp the
  // running remainder so grants never oversubscribe the pool. A follower with
  // a positive equilibrium demand whose clamp lands at (effectively) zero is
  // NOT priced out — rounding ate its share — so it defers to the next
  // clearing instead of losing its migration.
  double remaining = available_mhz;
  const std::size_t cohort = pending_.size();
  std::vector<clearing_request> still_pending;
  for (std::size_t n = 0; n < cohort; ++n) {
    if (eq.demands[n] <= 0.0) {
      outcome.priced_out.push_back(pending_[n]);
      continue;
    }
    const double bandwidth = std::min(eq.demands[n], remaining);
    if (bandwidth <= 1e-9) {
      still_pending.push_back(pending_[n]);
      ++outcome.deferred;
      continue;
    }
    remaining -= bandwidth;
    clearing_grant grant;
    grant.request = pending_[n];
    grant.price = eq.price;
    grant.bandwidth_mhz = bandwidth;
    grant.vmu_utility = eq.vmu_utilities[n];
    grant.msp_utility = (eq.price - config_.unit_cost) * bandwidth;
    grant.cohort = cohort;
    grant.regime = eq.regime;
    outcome.grants.push_back(std::move(grant));
  }
  pending_ = std::move(still_pending);
  return outcome;
}

clearing_outcome spot_market::clear_sequential(double available_mhz) {
  clearing_outcome outcome;
  double remaining = available_mhz;

  std::vector<clearing_request> still_pending;
  for (auto& request : pending_) {
    if (remaining < config_.min_clearable_mhz.value()) {
      // Pool exhausted mid-book: everything behind the cut waits.
      still_pending.push_back(std::move(request));
      ++outcome.deferred;
      continue;
    }
    market_params params;
    params.vmus = {request.profile};
    params.link = config_.link;
    params.bandwidth_cap_mhz = util::megahertz{remaining};
    params.unit_cost = config_.unit_cost;
    params.price_cap = config_.price_cap;
    const migration_market market(std::move(params));
    const equilibrium eq = price_market(market, remaining);
    outcome.price = eq.price;
    ++outcome.markets_cleared;

    const double bandwidth = std::min(eq.demands[0], remaining);
    if (bandwidth <= 0.0) {
      outcome.priced_out.push_back(std::move(request));
      continue;
    }
    remaining -= bandwidth;
    clearing_grant grant;
    grant.request = std::move(request);
    grant.price = eq.price;
    grant.bandwidth_mhz = bandwidth;
    grant.vmu_utility = eq.vmu_utilities[0];
    grant.msp_utility = (eq.price - config_.unit_cost) * bandwidth;
    grant.cohort = 1;
    grant.regime = eq.regime;
    outcome.grants.push_back(std::move(grant));
  }
  pending_ = std::move(still_pending);
  return outcome;
}

std::vector<clearing_request> spot_market::abandon_pending() {
  std::vector<clearing_request> dropped = std::move(pending_);
  pending_.clear();
  return dropped;
}

}  // namespace vtm::core
