#include "core/fleet_shard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "core/aotm.hpp"
#include "sim/precopy.hpp"
#include "sim/road_graph.hpp"
#include "util/contracts.hpp"

namespace vtm::core {

namespace {

/// Build the RSU chain: explicit (possibly non-uniform) centres when given,
/// the legacy uniform layout otherwise. In route mode the chain only sizes
/// the global RSU index space — per-route geometry lives in the route
/// profiles and pool links come from `upstream_gap_m` — so its centres are
/// never read (spacing 2·radius keeps the ctor's contiguity contract).
sim::rsu_chain make_chain(const fleet_config& config) {
  if (config.graph)
    return sim::rsu_chain(config.graph->rsu_count(),
                          2.0 * config.graph->coverage_radius_m(),
                          config.graph->coverage_radius_m());
  if (!config.rsu_positions_m.empty())
    return sim::rsu_chain(config.rsu_positions_m, config.coverage_radius_m);
  return sim::rsu_chain(config.rsu_count, config.rsu_spacing_m,
                        config.coverage_radius_m);
}

/// Validate, then collapse a degenerate single-path graph back onto the
/// legacy chain fields (`road_graph::as_chain()`): the engine's chain code
/// path — bitwise-golden against the pre-graph engine — runs it verbatim.
/// Real networks keep `graph` set, which selects route mode everywhere
/// downstream (`config.graph != nullptr` is the single mode switch).
fleet_config normalized(fleet_config config) {
  validate_fleet_config(config);
  if (!config.graph) return config;
  if (const auto view = config.graph->as_chain()) {
    if (view->uniform) {
      config.rsu_count = view->count;
      config.rsu_spacing_m = view->spacing_m;
      config.rsu_positions_m.clear();
    } else {
      config.rsu_positions_m = view->centers_m;
    }
    config.coverage_radius_m = view->coverage_radius_m;
    config.graph.reset();
  }
  return config;
}

/// Conservative window for the chain: a vehicle entering a shard's first
/// cell must traverse at least the narrowest inter-boundary cell before it
/// can cross into the next shard, so half that travel time leaves margin for
/// crossings announced late (a migration resolving near the boundary). The
/// window snaps down to a clearing-epoch multiple so epoch-grid clearings —
/// and the requests they re-home across shards — land exactly on barriers.
/// Graph mode bounds the same quantity over every route: the narrowest
/// inter-boundary gap at the worst-case speed (max base speed × max edge
/// factor + the full lane-change bonus).
double auto_window_s(const fleet_config& config, const sim::rsu_chain& chain,
                     double epoch_s) {
  double min_cell_m = std::numeric_limits<double>::infinity();
  double top_speed = config.max_speed_mps.value();
  if (config.graph) {
    min_cell_m = config.graph->min_boundary_gap_m();
    top_speed =
        config.max_speed_mps.value() * config.graph->max_speed_factor() +
        config.lane_speed_delta_mps.value() *
            static_cast<double>(config.graph->max_lanes() - 1);
  } else {
    for (std::size_t i = 0; i + 2 < chain.count(); ++i)
      min_cell_m = std::min(min_cell_m, chain.handover_position_m(i + 1) -
                                            chain.handover_position_m(i));
  }
  if (!std::isfinite(min_cell_m))
    return config.duration_s.value();  // <= 1 boundary
  double window = 0.5 * min_cell_m / top_speed;
  if (epoch_s > 0.0)
    window = epoch_s * std::max(1.0, std::floor(window / epoch_s));
  return std::clamp(window, 1e-3, config.duration_s.value());
}

/// Resolve the streaming run's base config: the horizon is the handover
/// admission deadline, and the closed-population `vehicle_count` is ignored
/// (floored to satisfy the base validation).
fleet_config streaming_base(const streaming_config& config) {
  validate_streaming_config(config);
  fleet_config base = config.base;
  base.duration_s = config.horizon_s;
  if (base.vehicle_count == 0) base.vehicle_count = 1;
  return base;
}

}  // namespace

double epoch_grid_snap(double now_s, double epoch_s) {
  if (epoch_s <= 0.0) return now_s;
  const double r = now_s / epoch_s;
  // Absolute 1e-9 preserves the historic snap for short horizons; the
  // ulp-scaled term takes over once 1e-9 falls below the grid coordinate's
  // own rounding noise (r above ~2^20), where a time landing one ulp past a
  // boundary must still count as *on* it.
  const double tolerance =
      std::max(1e-9, 8.0 * std::numeric_limits<double>::epsilon() * r);
  return std::max(now_s, epoch_s * std::ceil(r - tolerance));
}

std::vector<fleet_msp> resolved_fleet_msps(const fleet_config& config) {
  if (config.mode != market_mode::oligopoly) return {};
  if (!config.msps.empty()) return config.msps;
  fleet_msp monopoly;
  monopoly.chain_offset_m = util::meters{0.0};
  monopoly.unit_cost = config.unit_cost;
  monopoly.price_cap = config.price_cap;
  monopoly.bandwidth_per_pool_mhz = config.bandwidth_per_pool_mhz;
  return {monopoly};
}

void validate_fleet_config(const fleet_config& config) {
  VTM_EXPECTS(config.graph != nullptr || config.rsu_count >= 1 ||
              !config.rsu_positions_m.empty());
  VTM_EXPECTS(config.pricing == pricing_backend::oracle ||
              config.pricer != nullptr);
  VTM_EXPECTS(config.vehicle_count >= 1);
  VTM_EXPECTS(config.duration_s > util::seconds{0.0});
  // Speeds must be strictly positive: each pool prices its *upstream* RSU
  // gap, so backward traffic (which `rsu_chain::next_handover` itself can
  // model) would clear over the wrong link. Rejected by design; see the
  // (from, to)-gap handling in `shard_engine::start_migration` for how
  // non-adjacent forward hops are priced.
  VTM_EXPECTS(config.min_speed_mps > util::mps{0.0});
  VTM_EXPECTS(config.max_speed_mps >= config.min_speed_mps);
  VTM_EXPECTS(config.min_data_mb > util::megabytes{0.0});
  VTM_EXPECTS(config.max_data_mb >= config.min_data_mb);
  VTM_EXPECTS(config.min_alpha > 0.0);
  VTM_EXPECTS(config.max_alpha >= config.min_alpha);
  VTM_EXPECTS(config.bandwidth_per_pool_mhz > util::megahertz{0.0});
  VTM_EXPECTS(config.clearing_epoch_s >= util::seconds{0.0});
  VTM_EXPECTS(config.min_clearable_mhz > util::megahertz{0.0});
  // Both spawn bounds explicit (>= 0, the "< 0 means auto" sentinel) must
  // form a window; mixed explicit/auto is resolved at spawn time.
  if (config.spawn_min_m >= util::meters{0.0} &&
      config.spawn_max_m >= util::meters{0.0})
    VTM_EXPECTS(config.spawn_max_m >= config.spawn_min_m);
  // Platoon-correlated spawning (size 1 = independent draws).
  VTM_EXPECTS(config.platoon_size >= 1);
  VTM_EXPECTS(std::isfinite(config.platoon_spread_m.value()) &&
              config.platoon_spread_m >= util::meters{0.0});
  VTM_EXPECTS(std::isfinite(config.platoon_speed_jitter_mps.value()) &&
              config.platoon_speed_jitter_mps >= util::mps{0.0});
  VTM_EXPECTS(std::isfinite(config.lane_speed_delta_mps.value()) &&
              config.lane_speed_delta_mps >= util::mps{0.0});
  const std::size_t rsu_count =
      config.graph ? config.graph->rsu_count()
                   : (config.rsu_positions_m.empty()
                          ? config.rsu_count
                          : config.rsu_positions_m.size());
  if (config.graph) {
    // Graph topology: the RSUs are the graph's sites, so explicit chain
    // centres would be dead config; pools are per-site by construction and
    // the oligopoly roster's offset chains have no graph analogue yet.
    VTM_EXPECTS(config.rsu_positions_m.empty());
    VTM_EXPECTS(!config.shared_pool);
    VTM_EXPECTS(config.mode != market_mode::oligopoly);
    // An explicit spawn floor at/after the shortest route's end would leave
    // a spawn window spanning zero graph edges on that route — the `< 0`
    // auto sentinel only guards the chain path, so graph configs must be
    // rejected here (tools/vtm_lint.py gates run_* entry points on calling
    // a validate helper for exactly this class of hole).
    if (config.spawn_min_m >= util::meters{0.0})
      VTM_EXPECTS(config.spawn_min_m.value() <
                  config.graph->min_route_length_m());
  }
  VTM_EXPECTS(config.shard_count >= 1);
  VTM_EXPECTS(config.shard_count <= rsu_count);
  // The legacy shared pool is one global book — there is nothing to shard.
  VTM_EXPECTS(!config.shared_pool || config.shard_count == 1);

  // Per-cell channel overrides: one entry per RSU, finite, and per-RSU pools
  // only (the shared pool has no per-cell channel to override).
  for (const auto* overrides : {&config.rsu_noise_dbm,
                                &config.rsu_tx_power_dbm}) {
    if (overrides->empty()) continue;
    VTM_EXPECTS(!config.shared_pool);
    VTM_EXPECTS(overrides->size() == rsu_count);
    for (const util::dbm level : *overrides)
      VTM_EXPECTS(std::isfinite(level.value()));
  }

  // Oligopoly roster (market_mode::oligopoly only; a roster in any other
  // mode is a misconfiguration, not something to silently ignore).
  if (config.mode != market_mode::oligopoly) {
    VTM_EXPECTS(config.msps.empty());
    VTM_EXPECTS(config.learned_msp == no_learned_msp);
    return;
  }
  VTM_EXPECTS(!config.shared_pool);
  VTM_EXPECTS(config.share_sharpness > 0.0);
  const auto msps = resolved_fleet_msps(config);
  for (const auto& msp : msps) {
    VTM_EXPECTS(std::isfinite(msp.chain_offset_m.value()));
    VTM_EXPECTS(msp.unit_cost > 0.0);
    VTM_EXPECTS(msp.price_cap >= msp.unit_cost);
    VTM_EXPECTS(msp.bandwidth_per_pool_mhz > util::megahertz{0.0});
  }
  if (config.learned_msp != no_learned_msp) {
    // The learned seller seat needs rivals to price against and a pricer
    // that reads the competitor-aware observation.
    VTM_EXPECTS(config.learned_msp < msps.size());
    VTM_EXPECTS(msps.size() >= 2);
    VTM_EXPECTS(config.pricer != nullptr);
    VTM_EXPECTS(config.pricer->config().competitor_aware);
  }
  // The monopoly pricing backend drives M = 1 delegation only; with real
  // competition the price vector comes from the best-response solve (plus
  // the learned seat), so a learned monopoly backend would be dead config.
  if (msps.size() >= 2) VTM_EXPECTS(config.pricing == pricing_backend::oracle);
}

void validate_streaming_config(const streaming_config& config) {
  VTM_EXPECTS(std::isfinite(config.arrival_rate_per_s.value()) &&
              config.arrival_rate_per_s > util::per_second{0.0});
  VTM_EXPECTS(std::isfinite(config.horizon_s.value()) &&
              config.horizon_s > util::seconds{0.0});
  VTM_EXPECTS(std::isfinite(config.flush_period_s.value()) &&
              config.flush_period_s > util::seconds{0.0});
  // The competitive roster's warm-started books assume a closed population;
  // streaming stays on the spot-market paths.
  VTM_EXPECTS(config.base.mode != market_mode::oligopoly);
  fleet_config base = config.base;
  base.duration_s = config.horizon_s;
  if (base.vehicle_count == 0) base.vehicle_count = 1;  // field is ignored
  validate_fleet_config(base);
}

// ---- shard_engine -----------------------------------------------------------

shard_engine::shard_engine(const fleet_config& config,
                           const sim::rsu_chain& chain,
                           std::span<const sim::rsu_chain> msp_chains,
                           std::size_t index, std::size_t rsu_lo,
                           std::size_t rsu_count,
                           std::span<const std::uint32_t> rsu_shard,
                           std::vector<vehicle_slot>& vehicles,
                           sim::shard_mailbox<shard_message>& mailbox,
                           std::shared_ptr<pricing_policy> policy,
                           shard_telemetry telemetry)
    : config_(config),
      chain_(chain),
      graph_(config.graph.get()),
      index_(index),
      rsu_lo_(rsu_lo),
      rsu_shard_(rsu_shard),
      vehicles_(vehicles),
      mailbox_(mailbox),
      epoch_s_(config.mode == market_mode::single
                   ? 0.0
                   : config.clearing_epoch_s.value()),
      msps_(resolved_fleet_msps(config)),
      msp_chains_(msp_chains),
      tele_(std::move(telemetry)) {
  VTM_EXPECTS(rsu_count >= 1);
  VTM_EXPECTS(rsu_lo + rsu_count <= chain.count());
  VTM_EXPECTS(msp_chains_.size() == msps_.size());
  const std::size_t pool_count = config.shared_pool ? 1 : rsu_count;

  if (oligopoly()) {
    // One pool per (MSP, local RSU) plus one competitive book per cell; the
    // candidate table maps each cell to the pool slot each MSP serves it
    // from (its own chain's serving RSU — validated by the coordinator to
    // stay inside this shard).
    counters_.msp_utility.assign(msps_.size(), 0.0);
    counters_.msp_sold_mhz.assign(msps_.size(), 0.0);
    msp_pools_.resize(msps_.size());
    for (std::size_t m = 0; m < msps_.size(); ++m) {
      msp_pools_[m].reserve(pool_count);
      for (std::size_t p = 0; p < pool_count; ++p)
        msp_pools_[m].emplace_back(msps_[m].bandwidth_per_pool_mhz);
    }
    competitive_market_config book_config;
    book_config.msps = msps_;
    book_config.share_sharpness = config.share_sharpness;
    book_config.min_clearable_mhz = config.min_clearable_mhz;
    book_config.policy = std::move(policy);
    book_config.pricer = config.pricer;
    book_config.learned_msp = config.learned_msp;
    book_config.trace = tele_.trace;
    comarkets_.reserve(pool_count);
    candidates_.reserve(pool_count);
    pool_links_.reserve(pool_count);
    budgets_.reserve(pool_count);
    for (std::size_t p = 0; p < pool_count; ++p) {
      const std::size_t rsu = rsu_lo + p;
      const wireless::link_params link =
          link_for(rsu, pool_link_distance_m(rsu));
      pool_links_.push_back(link);
      budgets_.emplace_back(link);
      book_config.link = link;
      comarkets_.emplace_back(book_config);
      std::vector<std::size_t> cell_candidates =
          msp_chains_.candidates(chain_.center_m(rsu));
      for (std::size_t& serving : cell_candidates) {
        VTM_ASSERT(serving >= rsu_lo_ && serving < rsu_lo_ + rsu_count);
        serving -= rsu_lo_;
      }
      candidates_.push_back(std::move(cell_candidates));
    }
    clearing_scheduled_.assign(pool_count, false);
    return;
  }

  spot_market_config market_config;
  market_config.discipline = config.mode == market_mode::joint
                                 ? clearing_discipline::joint
                                 : clearing_discipline::sequential;
  market_config.unit_cost = config.unit_cost;
  market_config.price_cap = config.price_cap;
  market_config.min_clearable_mhz = config.min_clearable_mhz;
  market_config.pool_capacity_mhz = config.bandwidth_per_pool_mhz;
  // Copied into every pool's book below (one learned pricer serves the
  // whole chain; null selects the analytic oracle per book).
  market_config.policy = std::move(policy);
  market_config.trace = tele_.trace;

  pools_.reserve(pool_count);
  markets_.reserve(pool_count);
  pool_links_.reserve(pool_count);
  budgets_.reserve(pool_count);
  for (std::size_t p = 0; p < pool_count; ++p) {
    wireless::link_params link = config.link;
    if (config.shared_pool) {
      link.distance_m = util::meters{pool_link_distance_m(0)};
    } else {
      link = link_for(rsu_lo + p, pool_link_distance_m(rsu_lo + p));
    }
    pool_links_.push_back(link);
    budgets_.emplace_back(link);
    market_config.link = link;
    pools_.emplace_back(config.bandwidth_per_pool_mhz);
    markets_.emplace_back(market_config);
  }
  clearing_scheduled_.assign(pool_count, false);
}

std::size_t shard_engine::pool_index(std::size_t rsu) const noexcept {
  return config_.shared_pool ? 0 : rsu - rsu_lo_;
}

spot_market& shard_engine::market_at(std::size_t rsu) {
  const std::size_t pidx = pool_index(rsu);
  VTM_EXPECTS(pidx < markets_.size());
  return markets_[pidx];
}

competitive_market& shard_engine::comarket_at(std::size_t rsu) {
  const std::size_t pidx = pool_index(rsu);
  VTM_EXPECTS(pidx < comarkets_.size());
  return comarkets_[pidx];
}

std::vector<clearing_request>& shard_engine::book_of(std::size_t pidx) {
  return oligopoly() ? comarkets_[pidx].pending_requests()
                     : markets_[pidx].pending_requests();
}

void shard_engine::submit_request(std::size_t pidx,
                                  clearing_request request) {
  if (oligopoly()) {
    VTM_ASSERT(pidx < comarkets_.size());
    comarkets_[pidx].submit(std::move(request));
  } else {
    VTM_ASSERT(pidx < markets_.size());
    markets_[pidx].submit(std::move(request));
  }
}

wireless::link_params shard_engine::link_for(std::size_t rsu,
                                             double distance_m) const {
  wireless::link_params link = config_.link;
  link.distance_m = util::meters{distance_m};
  if (!config_.rsu_noise_dbm.empty())
    link.noise_power_dbm = config_.rsu_noise_dbm[rsu];
  if (!config_.rsu_tx_power_dbm.empty())
    link.tx_power_dbm = config_.rsu_tx_power_dbm[rsu];
  return link;
}

/// Migration-link distance of the pool serving global RSU `rsu`: the actual
/// gap to the destination RSU's upstream neighbour (forward traffic hands
/// over from RSU r-1 to RSU r). RSU 0 receives no forward handovers, so its
/// pool uses the downstream gap; the legacy shared pool keeps the chain-wide
/// spacing. Uniform chains return the configured spacing directly — on a
/// uniform chain every gap *is* the spacing, and the centre-difference
/// arithmetic would drift from it by ulps for non-dyadic values, breaking
/// bitwise reproduction of the pre-heterogeneity engine.
double shard_engine::pool_link_distance_m(std::size_t rsu) const {
  // Route mode: the pool prices its site's upstream gap along the traffic
  // flow through the road network.
  if (graph_) return graph_->upstream_gap_m(rsu);
  if (config_.shared_pool || chain_.count() < 2 ||
      config_.rsu_positions_m.empty())
    return chain_.spacing_m();
  return rsu > 0 ? chain_.link_distance_m(rsu - 1, rsu)
                 : chain_.link_distance_m(0, 1);
}

/// Bring a vehicle's kinematics forward to the current simulation time.
void shard_engine::sync_position(std::size_t vehicle) {
  auto& slot = vehicles_[vehicle];
  const double dt = queue_.now() - slot.position_at;
  if (dt > 0.0) {
    slot.kinematics = slot.route ? slot.route->advance(slot.kinematics, dt)
                                 : sim::advance(slot.kinematics, dt);
    slot.position_at = queue_.now();
  }
}

void shard_engine::adopt(std::size_t vehicle) {
  schedule_next_handover(vehicle);
}

void shard_engine::inject(std::size_t vehicle, double at) {
  VTM_EXPECTS(at >= queue_.now());
  queue_.schedule(at, [this, vehicle] { schedule_next_handover(vehicle); });
}

void shard_engine::schedule_next_handover(std::size_t vehicle) {
  sync_position(vehicle);
  auto& slot = vehicles_[vehicle];
  const auto next = slot.route ? slot.route->next_handover(slot.kinematics)
                               : chain_.next_handover(slot.kinematics);
  // Both decline branches leave the vehicle with no scheduled event, no
  // booked request, and no in-flight migration — nothing will ever touch
  // this twin again, so streaming runs may retire it at the next flush.
  if (!next) {  // cruising past the end of the chain/route
    slot.exited = true;
    return;
  }
  const double when = queue_.now() + next->after_s;
  if (when > config_.duration_s.value()) {
    slot.exited = true;
    return;
  }
  const std::size_t dest = rsu_shard_[next->to_rsu];
  if (dest != index_) {
    // The crossing lands in another shard: hand the vehicle over now, at
    // scheduling time, so the destination (which owns the target pool) can
    // execute the handover at the exact kinematic crossing time.
    ++counters_.cross_shard_transfers;
    if (tele_.metrics != nullptr) tele_.metrics->add(tele_.ids->boundary_posted);
    mailbox_.post(index_, dest,
                  boundary_handoff{vehicle, next->from_rsu, next->to_rsu,
                                   when});
    return;
  }
  queue_.schedule(when, [this, vehicle, from = next->from_rsu,
                         to = next->to_rsu] {
    sync_position(vehicle);
    on_handover(vehicle, from, to);
  });
}

void shard_engine::on_handover(std::size_t vehicle, std::size_t from,
                               std::size_t to) {
  ++counters_.handovers;
  if (tele_.metrics != nullptr) tele_.metrics->add(tele_.ids->handovers);
  clearing_request request;
  request.vehicle = vehicle;
  request.profile = vehicles_[vehicle].profile;
  request.from_rsu = from;
  request.to_rsu = to;
  request.submitted_s = queue_.now();
  const std::size_t pidx = pool_index(to);
  submit_request(pidx, std::move(request));
  schedule_clearing(pidx, epoch_grid_snap(queue_.now(), epoch_s_));
}

void shard_engine::schedule_clearing(std::size_t pidx, double at) {
  if (clearing_scheduled_[pidx]) return;
  clearing_scheduled_[pidx] = true;
  queue_.schedule(at, [this, pidx] { run_clearing(pidx); });
}

void shard_engine::run_clearing(std::size_t pidx) {
  clearing_scheduled_[pidx] = false;

  // Retarget deferred requests before pricing: a vehicle may have crossed
  // further boundaries while waiting, so its destination (and therefore its
  // pool — possibly in another shard) is recomputed from the *current*
  // position, and the source from where the twin actually sits. Requests
  // submitted at this very instant keep the handover's own from/to:
  // recomputing them would trust a position that can sit one ulp shy of the
  // cell midpoint and bounce the destination back into the source cell.
  auto& book = book_of(pidx);
  std::size_t keep = 0;  // FIFO-preserving compaction of kept requests
  for (std::size_t i = 0; i < book.size(); ++i) {
    auto& request = book[i];
    bool stays = true;
    if (request.submitted_s < queue_.now()) {
      sync_position(request.vehicle);
      const auto& slot = vehicles_[request.vehicle];
      request.from_rsu = slot.twin->host_rsu();
      request.to_rsu =
          slot.route ? slot.route->serving_rsu(slot.kinematics.position_m)
                     : chain_.serving_rsu(slot.kinematics.position_m);
      const std::size_t dest = rsu_shard_[request.to_rsu];
      if (dest != index_) {
        // The vehicle drifted out of this shard's RSU range while deferred:
        // the request (and the vehicle with it) re-homes at the next
        // barrier, at this clearing's grid time.
        ++counters_.cross_shard_retargets;
        if (tele_.metrics != nullptr)
          tele_.metrics->add(tele_.ids->retarget_posted);
        if (tele_.log.enabled(util::log_level::debug))
          tele_.log.debug("re-home: vehicle " +
                          std::to_string(request.vehicle) + " shard " +
                          std::to_string(index_) + " -> " +
                          std::to_string(dest));
        mailbox_.post(index_, dest,
                      retarget_handoff{std::move(request),
                                       epoch_grid_snap(queue_.now(),
                                                       epoch_s_)});
        stays = false;
      } else {
        const std::size_t target = pool_index(request.to_rsu);
        if (target != pidx) {
          submit_request(target, std::move(request));
          schedule_clearing(target, epoch_grid_snap(queue_.now(), epoch_s_));
          stays = false;
        }
      }
    }
    if (stays) {
      if (keep != i) book[keep] = std::move(request);
      ++keep;
    }
  }
  book.resize(keep);

  if (oligopoly()) {
    run_clearing_oligopoly(pidx);
    return;
  }

  // The pool tolerates epsilon overshoot at the capacity boundary, so the
  // remainder can read a hair below zero.
  const double available = std::max(0.0, pools_[pidx].available_mhz());
  // Harvest only joint-mode clearings: they price the whole book as one
  // market, which is exactly what a snapshot of (book, available)
  // describes. Sequential mode prices size-1 sub-markets over a shrinking
  // remainder, so a whole-book snapshot would train the pricer on
  // observations it never sees at deployment.
  if (config_.record_cohorts && config_.mode == market_mode::joint &&
      !book.empty() && available >= config_.min_clearable_mhz.value()) {
    // Harvest the clearing cohort as training data for the learned pricer:
    // full profiles (the oracle label needs them) + the pool state the
    // partial-information observation summarizes.
    cohort_snapshot snapshot;
    snapshot.profiles.reserve(book.size());
    for (const auto& request : book)
      snapshot.profiles.push_back(request.profile);
    snapshot.available_mhz = available;
    snapshot.capacity_mhz = config_.bandwidth_per_pool_mhz.value();
    snapshot.link = pool_links_[pidx];
    snapshot.unit_cost = config_.unit_cost;
    snapshot.price_cap = config_.price_cap;
    cohorts_.push_back(std::move(snapshot));
  }
  if (tele_.metrics != nullptr && !book.empty())
    tele_.metrics->observe(tele_.ids->cohort,
                           static_cast<double>(book.size()));
  auto outcome = markets_[pidx].clear(available);
  counters_.deferred += outcome.deferred;
  if (outcome.markets_cleared > 0) {
    ++counters_.clearings;
    if (tele_.metrics != nullptr) tele_.metrics->add(tele_.ids->clearings);
  }
  if (tele_.metrics != nullptr)
    for (const auto& grant : outcome.grants)
      tele_.metrics->observe(tele_.ids->grant_mhz, grant.bandwidth_mhz);

  for (const auto& request : outcome.priced_out) {
    // Price too high for this VMU: the twin stays behind (service
    // degrades); the handover completes without migration.
    ++counters_.priced_out;
    vehicles_[request.vehicle].twin->set_host_rsu(request.to_rsu);
    schedule_next_handover(request.vehicle);
  }
  for (const auto& grant : outcome.grants) start_migration(pidx, grant);

  if (outcome.deferred > 0) {
    if (pools_[pidx].active_grants() > 0) {
      // Capacity is in flight; the next completion re-clears this book.
      return;
    }
    // Nothing will ever release capacity (the pool itself is smaller than
    // the clearable minimum): drop the requests instead of spinning.
    for (const auto& request : markets_[pidx].abandon_pending()) {
      resolve_abandoned(request);
      schedule_next_handover(request.vehicle);
    }
  }
}

void shard_engine::resolve_abandoned(const clearing_request& request) {
  ++counters_.abandoned;
  // Same twin bookkeeping as a priced-out handover: the twin is re-homed to
  // the request's destination without a migration (service degrades). Both
  // the in-run abandon path and the final drain sweep come through here.
  vehicles_[request.vehicle].twin->set_host_rsu(request.to_rsu);
}

void shard_engine::run_clearing_oligopoly(std::size_t pidx) {
  // Each MSP's offer is the remainder of the pool *its* chain serves this
  // cell from; pools tolerate epsilon overshoot at the capacity boundary,
  // so a remainder can read a hair below zero.
  std::vector<double> available(msps_.size());
  for (std::size_t m = 0; m < msps_.size(); ++m)
    available[m] =
        std::max(0.0, msp_pools_[m][candidates_[pidx][m]].available_mhz());

  if (tele_.metrics != nullptr && comarkets_[pidx].pending() > 0)
    tele_.metrics->observe(tele_.ids->cohort,
                           static_cast<double>(comarkets_[pidx].pending()));
  auto outcome = comarkets_[pidx].clear(available);
  counters_.deferred += outcome.deferred;
  if (outcome.markets_cleared > 0) {
    ++counters_.clearings;
    if (tele_.metrics != nullptr) tele_.metrics->add(tele_.ids->clearings);
  }
  if (!outcome.converged) {
    ++counters_.unconverged_clearings;
    if (tele_.log.enabled(util::log_level::warn))
      tele_.log.warn("unconverged clearing: shard " + std::to_string(index_) +
                     " pool " + std::to_string(pidx) + ", sweeps " +
                     std::to_string(outcome.solver_sweeps) + ", residual " +
                     std::to_string(outcome.residual));
  }
  counters_.solver_sweeps += outcome.solver_sweeps;
  counters_.objective_evals += outcome.objective_evals;
  if (outcome.warm_started) ++counters_.warm_started_clearings;
  if (tele_.metrics != nullptr)
    for (const auto& grant : outcome.grants)
      tele_.metrics->observe(tele_.ids->grant_mhz, grant.bandwidth_mhz);

  for (const auto& request : outcome.priced_out) {
    ++counters_.priced_out;
    vehicles_[request.vehicle].twin->set_host_rsu(request.to_rsu);
    schedule_next_handover(request.vehicle);
  }
  for (const auto& grant : outcome.grants) start_migration(pidx, grant);

  if (outcome.deferred > 0) {
    // Deferred requests wait for capacity on any of this cell's candidate
    // pools; if none has a grant in flight, nothing will ever release.
    bool in_flight = false;
    for (std::size_t m = 0; m < msps_.size() && !in_flight; ++m)
      in_flight = msp_pools_[m][candidates_[pidx][m]].active_grants() > 0;
    if (in_flight) return;
    for (const auto& request : comarkets_[pidx].abandon_pending()) {
      resolve_abandoned(request);
      schedule_next_handover(request.vehicle);
    }
  }
}

void shard_engine::start_migration(std::size_t pidx,
                                   const clearing_grant& grant) {
  const auto handle = pools_[pidx].allocate(grant.bandwidth_mhz);
  VTM_ASSERT(handle.has_value());
  launch_migration(pidx, grant.request, grant.price, grant.bandwidth_mhz,
                   grant.vmu_utility, grant.msp_utility, grant.cohort, {},
                   {*handle});
}

void shard_engine::start_migration(std::size_t pidx,
                                   const competitive_grant& grant) {
  // One physical grant per seller slice: the sellers' subchannels are
  // orthogonal within each pool, and every slice must release back to the
  // pool it came from.
  std::vector<wireless::grant_id> grant_ids;
  grant_ids.reserve(grant.slices.size());
  for (const auto& slice : grant.slices) {
    const auto handle = msp_pools_[slice.msp][candidates_[pidx][slice.msp]]
                            .allocate(slice.bandwidth_mhz);
    VTM_ASSERT(handle.has_value());
    grant_ids.push_back(*handle);
  }
  launch_migration(pidx, grant.request, grant.price, grant.bandwidth_mhz,
                   grant.vmu_utility, grant.msp_utility, grant.cohort,
                   grant.slices, std::move(grant_ids));
}

void shard_engine::launch_migration(std::size_t pidx,
                                    const clearing_request& request,
                                    double price, double bandwidth_mhz,
                                    double vmu_utility, double msp_utility,
                                    std::size_t cohort,
                                    std::vector<seller_slice> slices,
                                    std::vector<wireless::grant_id> grant_ids) {
  auto& slot = vehicles_[request.vehicle];

  // Pre-copy migration over the granted bandwidth (normalized MB/s rate:
  // MHz × spectral efficiency, matching the paper's unit convention).
  sim::precopy_params precopy;
  precopy.dirty_rate_mb_s = config_.dirty_rate_mb_s;
  precopy.stop_copy_threshold_mb = config_.stop_copy_threshold_mb;

  // The pool budget prices the upstream-adjacent gap, which is the link a
  // forward handover actually migrates over. A request that drifted while
  // deferred can arrive from further back (from + 1 != to): its twin moves
  // over the true (from, to) distance, so the transfer rate and closed-form
  // AoTM are rebuilt over that gap (with the destination cell's channel
  // overrides). The *price* stays the posted cohort price — the market
  // clears one link per cell. The legacy shared pool keeps its
  // chain-constant link by construction.
  const wireless::link_budget* budget = &budgets_[pidx];
  std::optional<wireless::link_budget> actual;
  if (graph_) {
    // Route mode prices the destination's upstream gap; a hop whose true
    // graph distance (from's site to to's site along the network) differs
    // rebuilds over it. Same-site re-homes keep the pool budget.
    if (request.to_rsu != request.from_rsu) {
      const double gap = graph_->site_distance_m(request.from_rsu,
                                                 request.to_rsu);
      if (gap != pool_link_distance_m(request.to_rsu)) {
        VTM_ASSERT(std::isfinite(gap));
        actual.emplace(link_for(request.to_rsu, gap));
        budget = &*actual;
      }
    }
  } else if (!config_.shared_pool && request.to_rsu != request.from_rsu + 1) {
    actual.emplace(link_for(
        request.to_rsu,
        chain_.link_distance_m(request.from_rsu, request.to_rsu)));
    budget = &*actual;
  }
  const double rate_mb_s = bandwidth_mhz * budget->spectral_efficiency();
  const auto report = sim::run_precopy(*slot.twin, rate_mb_s, precopy);

  migration_record record;
  record.start_s = queue_.now();
  record.requested_s = request.submitted_s;
  record.vehicle = request.vehicle;
  record.from_rsu = request.from_rsu;
  record.to_rsu = request.to_rsu;
  record.price = price;
  record.bandwidth_mhz = bandwidth_mhz;
  record.cohort = cohort;
  record.sellers = slices.empty() ? 1 : slices.size();
  record.aotm_closed_form =
      aotm_closed_form(slot.twin->total_mb(), bandwidth_mhz, *budget);
  record.aotm_simulated = aotm_from_migration(report);
  record.downtime_s = report.downtime_s;
  record.data_sent_mb = report.total_sent_mb;
  record.vmu_utility = vmu_utility;
  record.msp_utility = msp_utility;
  record.precopy_converged = report.converged;
  counters_.max_cohort = std::max(counters_.max_cohort, cohort);

  queue_.schedule_in(report.total_time_s,
                     [this, pidx, slices = std::move(slices),
                      grant_ids = std::move(grant_ids), record] {
                       finish_migration(pidx, slices, grant_ids, record);
                     });
}

void shard_engine::finish_migration(std::size_t pidx,
                                    const std::vector<seller_slice>& slices,
                                    const std::vector<wireless::grant_id>&
                                        grant_ids,
                                    const migration_record& record) {
  if (slices.empty()) {
    pools_[pidx].release(grant_ids.front());
  } else {
    for (std::size_t s = 0; s < slices.size(); ++s) {
      msp_pools_[slices[s].msp][candidates_[pidx][slices[s].msp]].release(
          grant_ids[s]);
      // Per-seller realized accounting, accrued at completion like the
      // scalar totals. Accrues the utility rounded at clearing time —
      // recomputing (price − cost)·bandwidth here is an FMA under
      // -march=native and drifts ulps from the ledger reduction.
      counters_.msp_utility[slices[s].msp] += slices[s].utility;
      counters_.msp_sold_mhz[slices[s].msp] += slices[s].bandwidth_mhz;
    }
  }
  auto& slot = vehicles_[record.vehicle];
  slot.twin->set_host_rsu(record.to_rsu);
  slot.twin->record_migration();

  // Completion-based accounting: every completion lands one ledger entry
  // (and one record when recording), and the coordinator reduces the merged
  // ledger in global finish-time order, so totals == Σ over `migrations`
  // and sharded aggregates reproduce the serial summation order.
  completion_entry entry;
  entry.finish_s = queue_.now();
  entry.vehicle = record.vehicle;
  entry.msp_utility = record.msp_utility;
  entry.vmu_utility = record.vmu_utility;
  entry.aotm = record.aotm_simulated;
  entry.amplification =
      record.data_sent_mb / std::max(1e-9, slot.twin->total_mb());
  entry.price_bandwidth = record.price * record.bandwidth_mhz;
  entry.bandwidth = record.bandwidth_mhz;
  ledger_.push_back(entry);
  if (config_.record_migrations) {
    migration_record finished = record;
    finished.finish_s = queue_.now();
    records_.push_back(std::move(finished));
  }

  schedule_next_handover(record.vehicle);
  // A release frees capacity: re-clear any deferred requests immediately.
  if (slices.empty()) {
    if (markets_[pidx].pending() > 0) schedule_clearing(pidx, queue_.now());
    return;
  }
  // Offset chains let neighbouring cells draw on the same MSP pool, so a
  // release can unblock any book sharing one of the released candidate
  // pools (book q shares seller m's pool with this cell iff both resolve m
  // to the same slot). Scanned in cell order — deterministic.
  for (std::size_t q = 0; q < comarkets_.size(); ++q) {
    if (comarkets_[q].pending() == 0) continue;
    bool shares = false;
    for (const auto& slice : slices) {
      if (candidates_[q][slice.msp] == candidates_[pidx][slice.msp]) {
        shares = true;
        break;
      }
    }
    if (shares) schedule_clearing(q, queue_.now());
  }
}

void shard_engine::deliver(const shard_message& message,
                           [[maybe_unused]] const util::barrier_phase&
                               barrier) {
  if (const auto* handoff = std::get_if<boundary_handoff>(&message)) {
    double at = handoff->crossing_s;
    if (at < queue_.now()) {
      // The crossing happened inside the window that announced it (the
      // previous resolution landed close to the boundary): execute at the
      // barrier instead — skewed by less than one window, never dropped.
      ++counters_.late_handoffs;
      if (tele_.metrics != nullptr) tele_.metrics->add(tele_.ids->late);
      at = queue_.now();
    }
    queue_.schedule(at, [this, vehicle = handoff->vehicle,
                         from = handoff->from_rsu, to = handoff->to_rsu] {
      sync_position(vehicle);
      on_handover(vehicle, from, to);
    });
    return;
  }
  const auto& retarget = std::get<retarget_handoff>(message);
  double at = retarget.clearing_s;
  if (at < queue_.now()) {
    ++counters_.late_handoffs;
    if (tele_.metrics != nullptr) tele_.metrics->add(tele_.ids->late);
    at = queue_.now();
  }
  const std::size_t pidx = pool_index(retarget.request.to_rsu);
  submit_request(pidx, retarget.request);
  schedule_clearing(pidx, at);
}

void shard_engine::run_window(double t_end) {
  util::trace_span span(tele_.trace, "shard.window");
  span.arg("t_end", t_end);
  queue_.run_until(t_end);
}

std::size_t shard_engine::drain_round() {
  util::trace_span span(tele_.trace, "shard.drain");
  const std::size_t events =
      queue_.run_all(std::numeric_limits<std::size_t>::max());
  span.arg("events", static_cast<double>(events));
  return events;
}

void shard_engine::abandon_remaining() {
  for (auto& market : markets_)
    for (const auto& request : market.abandon_pending())
      resolve_abandoned(request);
  for (auto& market : comarkets_)
    for (const auto& request : market.abandon_pending())
      resolve_abandoned(request);
}

shard_engine::flush_data shard_engine::take_flush(
    [[maybe_unused]] const util::barrier_phase& barrier) {
  flush_data flush;
  flush.stats = counters_;  // cumulative; the coordinator diffs
  flush.ledger = std::move(ledger_);
  ledger_.clear();
  flush.records = std::move(records_);
  records_.clear();
  flush.cohorts = std::move(cohorts_);
  cohorts_.clear();
  return flush;
}

std::size_t shard_engine::book_depth(
    [[maybe_unused]] const util::barrier_phase& barrier) const {
  std::size_t depth = 0;
  for (const auto& market : markets_) depth += market.pending();
  for (const auto& market : comarkets_) depth += market.pending();
  return depth;
}

shard_engine::pool_usage shard_engine::pool_utilization(
    [[maybe_unused]] const util::barrier_phase& barrier) const {
  pool_usage usage;
  for (const auto& pool : pools_) {
    usage.allocated_mhz += pool.allocated_mhz();
    usage.capacity_mhz += pool.capacity_mhz();
  }
  for (const auto& seller_pools : msp_pools_)
    for (const auto& pool : seller_pools) {
      usage.allocated_mhz += pool.allocated_mhz();
      usage.capacity_mhz += pool.capacity_mhz();
    }
  return usage;
}

// ---- shard_coordinator ------------------------------------------------------

shard_coordinator::shard_coordinator(const fleet_config& config)
    : shard_coordinator(config, /*spawn=*/true) {}

shard_coordinator::shard_coordinator(const streaming_config& config)
    : shard_coordinator(streaming_base(config), /*spawn=*/false) {
  stream_ = config;
  streaming_ = true;
  flushed_.resize(shards_.size());
}

shard_coordinator::shard_coordinator(const fleet_config& config, bool spawn)
    : config_(normalized(config)),
      chain_(make_chain(config_)),
      gen_(config_.seed),
      mailbox_(config_.shard_count),
      pool_(config_.shard_count > 1 ? config_.shard_count - 1 : 0) {
  window_s_ = config_.window_s > util::seconds{0.0}
                  ? config_.window_s.value()
                  : auto_window_s(config_, chain_,
                                  config_.mode == market_mode::single
                                      ? 0.0
                                      : config_.clearing_epoch_s.value());

  // Contiguous balanced partition of the chain into shards.
  const std::size_t shard_count = config_.shard_count;
  rsu_shard_.resize(chain_.count());
  const std::size_t base = chain_.count() / shard_count;
  const std::size_t extra = chain_.count() % shard_count;

  if (config_.pricing == pricing_backend::learned)
    policy_ = std::make_shared<learned_policy>(config_.pricer);

  std::size_t lo = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t count = base + (s < extra ? 1 : 0);
    for (std::size_t r = lo; r < lo + count; ++r)
      rsu_shard_[r] = static_cast<std::uint32_t>(s);
    lo += count;
  }

  // Oligopoly: one (possibly offset) chain per roster MSP, and every cell's
  // per-MSP candidate pool must live in the cell's own shard — an offset
  // pushing a candidate across a shard boundary would let two shards race
  // on one pool, so it is rejected up front (reduce the offset or the shard
  // count).
  for (const auto& msp : resolved_fleet_msps(config_))
    msp_chains_.push_back(chain_.shifted(msp.chain_offset_m));
  const sim::chain_set candidate_chains(msp_chains_);
  for (std::size_t r = 0; r < chain_.count(); ++r)
    for (const std::size_t candidate :
         candidate_chains.candidates(chain_.center_m(r)))
      VTM_EXPECTS(rsu_shard_[candidate] == rsu_shard_[r]);

  init_telemetry();

  shards_.reserve(shard_count);
  lo = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t count = base + (s < extra ? 1 : 0);
    shard_telemetry tele;
    if (trace_ != nullptr) tele.trace = trace_->lane(s);
    if (metrics_ != nullptr) {
      tele.metrics = &metrics_->lane(s);
      tele.ids = &ids_;
    }
    tele.log = config_.log;
    shards_.push_back(std::make_unique<shard_engine>(
        config_, chain_, msp_chains_, s, lo, count, rsu_shard_, vehicles_,
        mailbox_, policy_, std::move(tele)));
    lo += count;
  }

  // Route mode: one mobility profile per graph route (slots point into
  // this, so it is built once and never resized again).
  if (config_.graph) {
    // The graph self-measured its shortest-path and route-enumeration
    // phases; export them here, where the run's trace lanes exist.
    if (coord_trace_ != nullptr) {
      const auto& gstats = config_.graph->stats();
      coord_trace_->instant(
          "graph.build",
          {{"floyd_warshall_us",
            static_cast<double>(gstats.floyd_warshall_ns) / 1000.0},
           {"routes_us", static_cast<double>(gstats.routes_ns) / 1000.0},
           {"routes", static_cast<double>(config_.graph->route_count())},
           {"sites", static_cast<double>(config_.graph->rsu_count())}});
    }
    if (coord_metrics_ != nullptr)
      coord_metrics_->set(ids_.graph_routes,
                          static_cast<double>(config_.graph->route_count()));
    util::trace_span span(coord_trace_, "coord.route_profiles");
    routes_.reserve(config_.graph->route_count());
    for (std::size_t r = 0; r < config_.graph->route_count(); ++r)
      routes_.push_back(config_.graph->make_route_profile(r));
    span.arg("routes", static_cast<double>(routes_.size()));
    route_mode_ = true;
  }

  // Resolve the spawn spans once (streaming arrivals draw them too).
  if (route_mode_) {
    route_span_lo_.reserve(routes_.size());
    route_span_hi_.reserve(routes_.size());
    for (std::size_t r = 0; r < routes_.size(); ++r) {
      const double length = config_.graph->route(r).length_m;
      const double span_lo = config_.spawn_min_m >= util::meters{0.0}
                                 ? config_.spawn_min_m.value()
                                 : 0.0;
      const double span_hi =
          config_.spawn_max_m >= util::meters{0.0}
              ? std::min(config_.spawn_max_m.value(), length)
              : length;
      route_span_lo_.push_back(span_lo);
      route_span_hi_.push_back(std::max(span_lo, span_hi));
    }
  } else {
    // Auto spawn span: spread the fleet over the whole chain so every RSU
    // sees load; the legacy scenario pins the span before the first
    // boundary. Uniform chains keep the original spacing arithmetic
    // verbatim (bitwise reproduction); explicit chains derive the span from
    // the actual centres.
    double auto_lo, auto_hi;
    if (config_.rsu_positions_m.empty()) {
      const double spacing = config_.rsu_spacing_m.value();
      auto_lo = 0.5 * spacing;
      auto_hi = (static_cast<double>(config_.rsu_count) - 0.5) * spacing;
    } else {
      auto_lo = chain_.center_m(0) -
                0.5 * (chain_.count() > 1 ? chain_.link_distance_m(0, 1)
                                          : chain_.spacing_m());
      auto_hi = chain_.center_m(chain_.count() - 1) -
                0.5 * (chain_.count() > 1
                           ? chain_.link_distance_m(chain_.count() - 2,
                                                    chain_.count() - 1)
                           : 0.0);
    }
    // Explicit bounds use the "< 0 means auto" sentinel, so a window may
    // legitimately start (or end) at 0 m.
    span_lo_ = config_.spawn_min_m >= util::meters{0.0}
                   ? config_.spawn_min_m.value()
                   : auto_lo;
    span_hi_ = config_.spawn_max_m >= util::meters{0.0}
                   ? config_.spawn_max_m.value()
                   : std::max(span_lo_, auto_hi);
    VTM_EXPECTS(span_hi_ >= span_lo_);
  }

  if (spawn) spawn_vehicles();
}

void shard_coordinator::init_telemetry() {
  if (!util::telemetry_compiled()) return;
  metrics_ = config_.telemetry.metrics;
  trace_ = config_.telemetry.trace;
  const std::size_t lanes = config_.shard_count + 1;  // +1: coordinator.
  if (metrics_ != nullptr) {
    ids_.handovers = metrics_->counter("fleet.handovers");
    ids_.clearings = metrics_->counter("fleet.clearings");
    ids_.boundary_posted = metrics_->counter("mailbox.boundary_posted");
    ids_.retarget_posted = metrics_->counter("mailbox.retarget_posted");
    ids_.delivered = metrics_->counter("mailbox.delivered");
    ids_.late = metrics_->counter("mailbox.late");
    ids_.arrivals = metrics_->counter("stream.arrivals");
    ids_.retired = metrics_->counter("stream.retired");
    ids_.live = metrics_->gauge("stream.live");
    ids_.slot_high_water = metrics_->gauge("stream.slot_high_water");
    ids_.deferral_depth = metrics_->gauge("stream.deferral_depth");
    ids_.pool_utilization = metrics_->gauge("stream.pool_utilization");
    ids_.graph_routes = metrics_->gauge("graph.routes");
    ids_.cohort = metrics_->histogram(
        "market.cohort", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    ids_.grant_mhz = metrics_->histogram("market.grant_mhz",
                                         {1.0, 2.0, 5.0, 10.0, 20.0, 50.0});
    metrics_->bind_lanes(lanes);
    coord_metrics_ = &metrics_->lane(config_.shard_count);
  }
  if (trace_ != nullptr) {
    trace_->ensure_lanes(lanes);
    for (std::size_t s = 0; s < config_.shard_count; ++s)
      trace_->set_lane_name(s, "shard " + std::to_string(s));
    trace_->set_lane_name(config_.shard_count, "coordinator");
    coord_trace_ = trace_->lane(config_.shard_count);
  }
}

void shard_coordinator::merge_metrics() {
  if (metrics_ != nullptr) metrics_->merge(barrier_);
}

void shard_coordinator::draw_spawn(vehicle_slot& slot) {
  double position;
  double speed;
  if (platoon_left_ == 0) {
    // Platoon leader — every vehicle when platoon_size == 1, where the
    // chain-mode draw sequence (position, speed, α, data) is bitwise the
    // legacy spawn loop.
    if (route_mode_ && routes_.size() > 1)
      lead_route_ = static_cast<std::size_t>(gen_.uniform_int(
          0, static_cast<std::int64_t>(routes_.size()) - 1));
    else
      lead_route_ = 0;
    const double lo = route_mode_ ? route_span_lo_[lead_route_] : span_lo_;
    const double hi = route_mode_ ? route_span_hi_[lead_route_] : span_hi_;
    position = gen_.uniform(lo, hi);
    speed = gen_.uniform(config_.min_speed_mps.value(),
                         config_.max_speed_mps.value());
    platoon_left_ = config_.platoon_size - 1;
    lead_pos_ = position;
    lead_speed_ = speed;
  } else {
    // Follower: same route, jittered around the leader, clamped back into
    // the spawn window and speed band.
    --platoon_left_;
    const double lo = route_mode_ ? route_span_lo_[lead_route_] : span_lo_;
    const double hi = route_mode_ ? route_span_hi_[lead_route_] : span_hi_;
    position = std::clamp(
        lead_pos_ + gen_.uniform(-config_.platoon_spread_m.value(),
                                 config_.platoon_spread_m.value()),
        lo, hi);
    speed = std::clamp(
        lead_speed_ + gen_.uniform(-config_.platoon_speed_jitter_mps.value(),
                                   config_.platoon_speed_jitter_mps.value()),
        config_.min_speed_mps.value(), config_.max_speed_mps.value());
  }
  slot.route = route_mode_ ? &routes_[lead_route_] : nullptr;
  slot.kinematics.position_m = position;
  if (route_mode_ && config_.lane_speed_delta_mps > util::mps{0.0}) {
    // Lane-change hook: multi-lane spawn edges grant a per-lane speed bonus
    // (the conservative window budgets the maximum).
    const std::size_t lanes = config_.graph->lanes_at(lead_route_, position);
    if (lanes > 1)
      speed += config_.lane_speed_delta_mps.value() *
               static_cast<double>(gen_.uniform_int(
                   0, static_cast<std::int64_t>(lanes) - 1));
  }
  slot.kinematics.speed_mps = speed;
  slot.profile.alpha = gen_.uniform(config_.min_alpha, config_.max_alpha);
  slot.profile.data_mb =
      gen_.uniform(config_.min_data_mb.value(), config_.max_data_mb.value());
}

void shard_coordinator::spawn_vehicles() {
  vehicles_.resize(config_.vehicle_count);
  owner_.resize(config_.vehicle_count);
  for (std::size_t v = 0; v < vehicles_.size(); ++v) {
    auto& slot = vehicles_[v];
    draw_spawn(slot);
    slot.id = v;
    slot.twin = std::make_unique<sim::vehicular_twin>(
        sim::vehicular_twin::with_total_mb(v, slot.profile.data_mb,
                                           config_.page_mb.value()));
    const std::size_t serving =
        slot.route ? slot.route->serving_rsu(slot.kinematics.position_m)
                   : chain_.serving_rsu(slot.kinematics.position_m);
    slot.twin->set_host_rsu(serving);
    owner_[v] = rsu_shard_[serving];
  }
}

std::size_t shard_coordinator::exchange() {
  util::trace_span span(coord_trace_, "coord.exchange");
  std::size_t delivered = 0;
  for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
    delivered += mailbox_.deliver(
        dst,
        [&](const shard_message& message) {
          // The callback runs synchronously inside `deliver`, which this
          // function already holds the barrier for; the lambda is analyzed
          // standalone, so restate the holding.
          barrier_.assert_held();
          shards_[dst]->deliver(message, barrier_);
          const std::size_t vehicle =
              std::holds_alternative<boundary_handoff>(message)
                  ? std::get<boundary_handoff>(message).vehicle
                  : std::get<retarget_handoff>(message).request.vehicle;
          owner_[vehicle] = static_cast<std::uint32_t>(dst);
        },
        barrier_);
  }
  if (coord_metrics_ != nullptr && delivered > 0)
    coord_metrics_->add(ids_.delivered, delivered);
  span.arg("delivered", static_cast<double>(delivered));
  return delivered;
}

fleet_result shard_coordinator::run() {
  for (std::size_t v = 0; v < vehicles_.size(); ++v)
    shards_[owner_[v]]->adopt(v);
  {
    // No lane has started yet, so the barrier capability holds trivially:
    // vehicles spawned next to a shard boundary re-home at t = 0.
    const util::barrier_scope at_barrier(barrier_);
    exchange();
  }

  // Window phases up to the admission horizon, then drain rounds until
  // every queue is dry and no message is in flight: no new handovers are
  // admitted past the horizon, so only completions and the re-clearings
  // they trigger remain, and running to quiescence guarantees every started
  // migration lands in the totals *and* the records.
  bool draining = false;
  double t_end = std::min(config_.duration_s.value(), window_s_);
  pool_.run_phased(
      shards_.size(),
      [&](std::size_t lane, std::size_t) {
        if (draining)
          shards_[lane]->drain_round();
        else
          shards_[lane]->run_window(t_end);
      },
      [&](std::size_t) {
        // `run_phased` runs the barrier callback with every worker idle —
        // the one place the barrier capability is legitimately acquired.
        const util::barrier_scope at_barrier(barrier_);
        const std::size_t delivered = exchange();
        merge_metrics();
        if (draining) return delivered > 0;
        if (t_end >= config_.duration_s.value()) {
          draining = true;
          return true;
        }
        t_end = std::min(config_.duration_s.value(), t_end + window_s_);
        if (config_.log.enabled(util::log_level::debug))
          config_.log.debug("window advance: t_end " +
                            std::to_string(t_end));
        return true;
      });

  // Anything still booked has no release left to wait for; the pool has
  // quiesced, so the barrier capability holds for the final sweep + merge.
  const util::barrier_scope at_barrier(barrier_);
  for (auto& shard : shards_) shard->abandon_remaining();
  util::trace_span span(coord_trace_, "coord.merge");
  fleet_result result = merge();
  merge_metrics();
  return result;
}

void shard_coordinator::inject_arrivals(double upto) {
  util::trace_span span(coord_trace_, "coord.arrivals");
  std::size_t admitted = 0;
  for (;;) {
    if (!arrival_pending_) {
      // Poisson arrivals: exponential inter-arrival gaps. The undrawn-gap
      // flag keeps the stream exact across reseeds — a drawn-but-unadmitted
      // arrival survives window barriers, and a reseed discards it.
      next_arrival_s_ += gen_.exponential(stream_.arrival_rate_per_s.value());
      arrival_pending_ = true;
    }
    if (next_arrival_s_ > upto ||
        next_arrival_s_ > stream_.horizon_s.value())
      break;
    arrival_pending_ = false;
    const double at = next_arrival_s_;

    std::size_t v;
    if (!free_slots_.empty()) {
      v = free_slots_.back();  // LIFO keeps the arena hot and bounded
      free_slots_.pop_back();
    } else {
      v = vehicles_.size();
      vehicles_.emplace_back();
      owner_.push_back(0);
    }
    auto& slot = vehicles_[v];
    draw_spawn(slot);
    slot.id = arrivals_++;
    slot.position_at = at;
    slot.exited = false;
    slot.twin = std::make_unique<sim::vehicular_twin>(
        sim::vehicular_twin::with_total_mb(slot.id, slot.profile.data_mb,
                                           config_.page_mb.value()));
    const std::size_t serving =
        slot.route ? slot.route->serving_rsu(slot.kinematics.position_m)
                   : chain_.serving_rsu(slot.kinematics.position_m);
    slot.twin->set_host_rsu(serving);
    owner_[v] = rsu_shard_[serving];
    shards_[owner_[v]]->inject(v, at);
    ++admitted;
    ++live_;
    peak_live_ = std::max(peak_live_, live_);
  }
  if (coord_metrics_ != nullptr && admitted > 0)
    coord_metrics_->add(ids_.arrivals, admitted);
  span.arg("admitted", static_cast<double>(admitted));
}

fleet_result shard_coordinator::flush_window(bool final) {
  util::trace_span span(coord_trace_, "coord.flush");
  fleet_result window;
  std::vector<shard_engine::flush_data> data;
  data.reserve(shards_.size());
  for (auto& shard : shards_) data.push_back(shard->take_flush(barrier_));

  // Counter deltas against the previous flush's cumulative snapshots.
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& now = data[s].stats;
    const auto& before = flushed_[s];
    window.handovers += now.handovers - before.handovers;
    window.deferred += now.deferred - before.deferred;
    window.priced_out += now.priced_out - before.priced_out;
    window.abandoned += now.abandoned - before.abandoned;
    window.clearings += now.clearings - before.clearings;
    window.max_cohort = std::max(window.max_cohort, now.max_cohort);
    window.cross_shard_transfers +=
        now.cross_shard_transfers - before.cross_shard_transfers;
    window.cross_shard_retargets +=
        now.cross_shard_retargets - before.cross_shard_retargets;
    window.late_handoffs += now.late_handoffs - before.late_handoffs;
    flushed_[s] = now;
    total += data[s].ledger.size();
  }

  // Reduce this window's completion ledgers in global finish-time order
  // (slot index breaks exact ties) — `merge()`'s reduction restarted per
  // window. The run-total accumulators advance inside the same loop, so the
  // streaming totals are the same ordered sum an unwindowed reduction of
  // the whole stream would produce.
  double sum_aotm = 0.0;
  double sum_amplification = 0.0;
  double sum_price_bandwidth = 0.0;
  double sum_bandwidth = 0.0;
  std::vector<std::size_t> head(shards_.size(), 0);
  if (config_.record_migrations) window.migrations.reserve(total);
  for (std::size_t n = 0; n < total; ++n) {
    std::size_t best = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (head[s] >= data[s].ledger.size()) continue;
      if (best == shards_.size()) {
        best = s;
        continue;
      }
      const auto& a = data[s].ledger[head[s]];
      const auto& b = data[best].ledger[head[best]];
      if (a.finish_s < b.finish_s ||
          (a.finish_s == b.finish_s && a.vehicle < b.vehicle))
        best = s;
    }
    const auto& entry = data[best].ledger[head[best]];
    ++window.completed;
    window.msp_total_utility += entry.msp_utility;
    window.vmu_total_utility += entry.vmu_utility;
    sum_aotm += entry.aotm;
    sum_amplification += entry.amplification;
    sum_price_bandwidth += entry.price_bandwidth;
    sum_bandwidth += entry.bandwidth;
    total_msp_utility_ += entry.msp_utility;
    total_vmu_utility_ += entry.vmu_utility;
    sum_aotm_ += entry.aotm;
    sum_amplification_ += entry.amplification;
    sum_price_bandwidth_ += entry.price_bandwidth;
    sum_bandwidth_ += entry.bandwidth;
    if (config_.record_migrations) {
      migration_record record = std::move(data[best].records[head[best]]);
      // Records carry the stable identity — the slot index is recycled.
      record.vehicle = vehicles_[record.vehicle].id;
      window.migrations.push_back(std::move(record));
    }
    ++head[best];
  }
  for (auto& shard_data : data)
    window.cohorts.insert(window.cohorts.end(),
                          std::make_move_iterator(shard_data.cohorts.begin()),
                          std::make_move_iterator(shard_data.cohorts.end()));

  if (window.completed > 0) {
    const double n = static_cast<double>(window.completed);
    window.mean_aotm = sum_aotm / n;
    window.mean_amplification = sum_amplification / n;
    if (sum_bandwidth > 0.0)
      window.mean_price = sum_price_bandwidth / sum_bandwidth;
  }

  // Retire exited twins (every live twin on the final flush): nothing can
  // reference them again — exited is only set when a vehicle has no
  // scheduled event, no booked request, and no in-flight migration — so
  // their slots recycle into the free list and memory stays bounded by the
  // live population.
  std::size_t window_retired = 0;
  for (std::size_t v = 0; v < vehicles_.size(); ++v) {
    auto& slot = vehicles_[v];
    if (!slot.twin || (!final && !slot.exited)) continue;
    vehicle_summary summary;
    summary.id = slot.id;
    summary.host_rsu = slot.twin->host_rsu();
    summary.migrations = slot.twin->migration_count();
    summary.position_m = slot.kinematics.position_m;
    summary.shard = owner_[v];
    window.vehicles.push_back(summary);
    slot.twin.reset();
    slot.route = nullptr;
    slot.exited = false;
    free_slots_.push_back(v);
    ++window_retired;
    ++retired_;
    --live_;
  }

  // Flush snapshot: live twins, slot-arena high water, deferral-book depth,
  // and aggregate pool utilization at this barrier. All values are
  // deterministic functions of (seed, config) at this flush boundary, so
  // they are metric-safe; the trace instant mirrors them for Perfetto.
  if (coord_metrics_ != nullptr || coord_trace_ != nullptr) {
    std::size_t depth = 0;
    shard_engine::pool_usage usage;
    for (const auto& shard : shards_) {
      depth += shard->book_depth(barrier_);
      const auto shard_usage = shard->pool_utilization(barrier_);
      usage.allocated_mhz += shard_usage.allocated_mhz;
      usage.capacity_mhz += shard_usage.capacity_mhz;
    }
    const double utilization = usage.capacity_mhz > 0.0
                                   ? usage.allocated_mhz / usage.capacity_mhz
                                   : 0.0;
    if (coord_metrics_ != nullptr) {
      coord_metrics_->set(ids_.live, static_cast<double>(live_));
      coord_metrics_->set(ids_.slot_high_water,
                          static_cast<double>(vehicles_.size()));
      coord_metrics_->set(ids_.deferral_depth, static_cast<double>(depth));
      coord_metrics_->set(ids_.pool_utilization, utilization);
      if (window_retired > 0)
        coord_metrics_->add(ids_.retired, window_retired);
    }
    if (coord_trace_ != nullptr)
      coord_trace_->instant(
          "stream.flush",
          {{"live", static_cast<double>(live_)},
           {"arena", static_cast<double>(vehicles_.size())},
           {"deferral_depth", static_cast<double>(depth)},
           {"pool_utilization", utilization},
           {"completed", static_cast<double>(window.completed)},
           {"retired", static_cast<double>(window_retired)}});
  }
  return window;
}

streaming_result shard_coordinator::run_stream() {
  VTM_EXPECTS(streaming_);
  const double horizon = config_.duration_s.value();  // == stream_.horizon_s
  double t_end = std::min(horizon, window_s_);
  {
    // No lane has started yet, so the barrier capability holds trivially.
    const util::barrier_scope at_barrier(barrier_);
    inject_arrivals(t_end);
    exchange();
  }

  bool draining = false;
  double next_flush = stream_.flush_period_s.value();
  std::size_t flush_index = 0;
  pool_.run_phased(
      shards_.size(),
      [&](std::size_t lane, std::size_t) {
        if (draining)
          shards_[lane]->drain_round();
        else
          shards_[lane]->run_window(t_end);
      },
      [&](std::size_t) {
        const util::barrier_scope at_barrier(barrier_);
        const std::size_t delivered = exchange();
        merge_metrics();
        if (draining) return delivered > 0;
        // Emit every flush boundary this window crossed. A flush covers
        // events up to the barrier that emitted it (window granularity);
        // conservation holds per window by the exactly-once ledger.
        while (next_flush <= t_end) {
          flushes_.push_back(flush_window(/*final=*/false));
          if (flush_index == stream_.reseed_flush) {
            // Mid-stream reseed: every pre-reseed draw fed an arrival
            // admitted at or before t_end, whose events landed in this or
            // an earlier flush — so flushes 0..reseed_flush are
            // bitwise-unaffected, and the stream restarts cleanly from the
            // admitted-up-to point.
            if (config_.log.enabled(util::log_level::info))
              config_.log.info("stream reseed at flush " +
                               std::to_string(flush_index) + " (seed " +
                               std::to_string(stream_.reseed_seed) + ")");
            gen_ = util::rng(stream_.reseed_seed);
            arrival_pending_ = false;
            next_arrival_s_ = t_end;
            platoon_left_ = 0;
          }
          ++flush_index;
          next_flush += stream_.flush_period_s.value();
        }
        if (t_end >= horizon) {
          draining = true;
          return true;
        }
        t_end = std::min(horizon, t_end + window_s_);
        if (config_.log.enabled(util::log_level::debug))
          config_.log.debug("window advance: t_end " +
                            std::to_string(t_end));
        inject_arrivals(t_end);
        return true;
      });

  // Quiesced: sweep the books, emit the final flush (retiring every
  // remaining twin), and assemble the totals.
  const util::barrier_scope at_barrier(barrier_);
  for (auto& shard : shards_) shard->abandon_remaining();
  flushes_.push_back(flush_window(/*final=*/true));
  merge_metrics();

  streaming_result result;
  result.arrivals = arrivals_;
  result.retired = retired_;
  result.peak_live = peak_live_;
  result.slot_high_water = vehicles_.size();
  result.flushes = std::move(flushes_);

  fleet_result& totals = result.totals;
  for (const auto& shard : shards_) {
    const auto& c = shard->stats();
    totals.handovers += c.handovers;
    totals.deferred += c.deferred;
    totals.priced_out += c.priced_out;
    totals.abandoned += c.abandoned;
    totals.clearings += c.clearings;
    totals.max_cohort = std::max(totals.max_cohort, c.max_cohort);
    totals.cross_shard_transfers += c.cross_shard_transfers;
    totals.cross_shard_retargets += c.cross_shard_retargets;
    totals.late_handoffs += c.late_handoffs;
  }
  totals.msp_total_utility = total_msp_utility_;
  totals.vmu_total_utility = total_vmu_utility_;
  totals.vehicles.resize(arrivals_);
  for (const auto& flush : result.flushes) {
    totals.completed += flush.completed;
    for (const auto& summary : flush.vehicles) {
      VTM_ASSERT(summary.id < arrivals_);
      totals.vehicles[summary.id] = summary;
    }
    if (config_.record_migrations)
      totals.migrations.insert(totals.migrations.end(),
                               flush.migrations.begin(),
                               flush.migrations.end());
    totals.cohorts.insert(totals.cohorts.end(), flush.cohorts.begin(),
                          flush.cohorts.end());
  }
  if (totals.completed > 0) {
    const double n = static_cast<double>(totals.completed);
    totals.mean_aotm = sum_aotm_ / n;
    totals.mean_amplification = sum_amplification_ / n;
    if (sum_bandwidth_ > 0.0)
      totals.mean_price = sum_price_bandwidth_ / sum_bandwidth_;
  }
  return result;
}

fleet_result shard_coordinator::merge() {
  fleet_result result;
  std::size_t total = 0;
  if (!msp_chains_.empty()) {
    result.msp_utilities.assign(msp_chains_.size(), 0.0);
    result.msp_sold_mhz.assign(msp_chains_.size(), 0.0);
  }
  for (const auto& shard : shards_) {
    const auto& c = shard->stats();
    result.handovers += c.handovers;
    result.deferred += c.deferred;
    result.priced_out += c.priced_out;
    result.abandoned += c.abandoned;
    result.clearings += c.clearings;
    result.max_cohort = std::max(result.max_cohort, c.max_cohort);
    result.cross_shard_transfers += c.cross_shard_transfers;
    result.cross_shard_retargets += c.cross_shard_retargets;
    result.late_handoffs += c.late_handoffs;
    result.unconverged_clearings += c.unconverged_clearings;
    result.solver_sweeps += c.solver_sweeps;
    result.objective_evals += c.objective_evals;
    result.warm_started_clearings += c.warm_started_clearings;
    for (std::size_t m = 0; m < c.msp_utility.size(); ++m) {
      result.msp_utilities[m] += c.msp_utility[m];
      result.msp_sold_mhz[m] += c.msp_sold_mhz[m];
    }
    total += shard->ledger().size();
  }

  // Reduce the completion streams in global finish-time order (vehicle id
  // breaks exact ties): one shard reproduces the serial engine's event-order
  // summation bitwise, and multi-shard aggregates are independent of thread
  // timing by construction.
  double sum_aotm = 0.0;
  double sum_amplification = 0.0;
  double sum_price_bandwidth = 0.0;
  double sum_bandwidth = 0.0;
  std::vector<std::size_t> head(shards_.size(), 0);
  if (config_.record_migrations) result.migrations.reserve(total);
  for (std::size_t n = 0; n < total; ++n) {
    std::size_t best = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (head[s] >= shards_[s]->ledger().size()) continue;
      if (best == shards_.size()) {
        best = s;
        continue;
      }
      const auto& a = shards_[s]->ledger()[head[s]];
      const auto& b = shards_[best]->ledger()[head[best]];
      if (a.finish_s < b.finish_s ||
          (a.finish_s == b.finish_s && a.vehicle < b.vehicle))
        best = s;
    }
    const auto& entry = shards_[best]->ledger()[head[best]];
    ++result.completed;
    result.msp_total_utility += entry.msp_utility;
    result.vmu_total_utility += entry.vmu_utility;
    sum_aotm += entry.aotm;
    sum_amplification += entry.amplification;
    sum_price_bandwidth += entry.price_bandwidth;
    sum_bandwidth += entry.bandwidth;
    if (config_.record_migrations)
      result.migrations.push_back(shards_[best]->records()[head[best]]);
    ++head[best];
  }

  for (const auto& shard : shards_)
    result.cohorts.insert(result.cohorts.end(), shard->cohorts().begin(),
                          shard->cohorts().end());

  result.vehicles.resize(vehicles_.size());
  for (std::size_t v = 0; v < vehicles_.size(); ++v) {
    auto& summary = result.vehicles[v];
    summary.id = vehicles_[v].id;
    summary.host_rsu = vehicles_[v].twin->host_rsu();
    summary.migrations = vehicles_[v].twin->migration_count();
    summary.position_m = vehicles_[v].kinematics.position_m;
    summary.shard = owner_[v];
  }

  if (result.completed > 0) {
    const double n = static_cast<double>(result.completed);
    result.mean_aotm = sum_aotm / n;
    result.mean_amplification = sum_amplification / n;
    if (sum_bandwidth > 0.0)
      result.mean_price = sum_price_bandwidth / sum_bandwidth;
  }
  return result;
}

}  // namespace vtm::core
