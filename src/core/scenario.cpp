#include "core/scenario.hpp"

#include <algorithm>
#include <memory>

#include "core/aotm.hpp"
#include "core/equilibrium.hpp"
#include "sim/event_queue.hpp"
#include "sim/mobility.hpp"
#include "sim/precopy.hpp"
#include "sim/vt.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "wireless/ofdma.hpp"

namespace vtm::core {

namespace {

/// Mutable per-vehicle simulation state.
struct vehicle_slot {
  sim::vehicle_state kinematics;
  vmu_profile profile;
  std::unique_ptr<sim::vehicular_twin> twin;
  double position_at = 0.0;  ///< Simulation time of `kinematics.position_m`.
  bool migrating = false;
};

}  // namespace

scenario_result run_highway_scenario(const scenario_config& config) {
  VTM_EXPECTS(config.vehicle_count >= 1);
  VTM_EXPECTS(config.duration_s > 0.0);
  VTM_EXPECTS(config.min_speed_mps > 0.0);
  VTM_EXPECTS(config.max_speed_mps >= config.min_speed_mps);
  VTM_EXPECTS(config.min_data_mb > 0.0);
  VTM_EXPECTS(config.max_data_mb >= config.min_data_mb);
  VTM_EXPECTS(config.min_alpha > 0.0);
  VTM_EXPECTS(config.max_alpha >= config.min_alpha);

  util::rng gen(config.seed);
  sim::event_queue queue;
  sim::rsu_chain chain(config.rsu_count, config.rsu_spacing_m,
                       config.coverage_radius_m);
  wireless::ofdma_pool pool(config.bandwidth_cap_mhz);

  wireless::link_params link = config.link;
  link.distance_m = config.rsu_spacing_m;  // adjacent-RSU migration link
  const wireless::link_budget budget(link);

  scenario_result result;
  std::vector<vehicle_slot> vehicles(config.vehicle_count);

  // Initialize vehicles spread before the first handover boundary.
  for (std::size_t v = 0; v < vehicles.size(); ++v) {
    auto& slot = vehicles[v];
    slot.kinematics.position_m =
        gen.uniform(0.5 * config.rsu_spacing_m, 1.4 * config.rsu_spacing_m);
    slot.kinematics.speed_mps =
        gen.uniform(config.min_speed_mps, config.max_speed_mps);
    slot.profile.alpha = gen.uniform(config.min_alpha, config.max_alpha);
    slot.profile.data_mb = gen.uniform(config.min_data_mb, config.max_data_mb);
    slot.twin = std::make_unique<sim::vehicular_twin>(
        sim::vehicular_twin::with_total_mb(v, slot.profile.data_mb,
                                           config.page_mb));
    slot.twin->set_host_rsu(chain.serving_rsu(slot.kinematics.position_m));
  }

  // Forward declaration so handover handlers can schedule successors.
  std::function<void(std::size_t)> schedule_next_handover;
  std::function<void(std::size_t, std::size_t, std::size_t)> start_migration;

  start_migration = [&](std::size_t v, std::size_t from, std::size_t to) {
    auto& slot = vehicles[v];
    ++result.handovers;

    // Price this migration market: every VMU currently needing migration is a
    // follower; for simplicity concurrent handovers at distinct instants each
    // clear their own spot market over the remaining pool capacity.
    const double available = pool.available_mhz();
    if (available < 0.5) {
      // Pool exhausted: retry shortly (bounded by ongoing releases). Stop
      // retrying past the horizon so the drain phase terminates.
      ++result.deferred;
      if (queue.now() <= config.duration_s)
        queue.schedule_in(1.0,
                          [&, v, from, to] { start_migration(v, from, to); });
      return;
    }

    market_params market_config;
    market_config.vmus = {slot.profile};
    market_config.link = link;
    market_config.bandwidth_cap_mhz = available;
    market_config.unit_cost = config.unit_cost;
    market_config.price_cap = config.price_cap;
    migration_market market(market_config);
    const equilibrium eq = solve_equilibrium(market);

    const double bandwidth = eq.demands[0];
    if (bandwidth <= 0.0) {
      // Price too high for this VMU: twin stays (service degrades); the
      // handover completes without migration. Counted but not recorded.
      slot.twin->set_host_rsu(to);
      schedule_next_handover(v);
      return;
    }
    const auto grant = pool.allocate(bandwidth);
    VTM_ASSERT(grant.has_value());
    slot.migrating = true;

    // Pre-copy migration over the granted bandwidth (normalized MB/s rate:
    // MHz × spectral efficiency, matching the paper's unit convention).
    sim::precopy_params precopy;
    precopy.dirty_rate_mb_s = config.dirty_rate_mb_s;
    precopy.stop_copy_threshold_mb = config.stop_copy_threshold_mb;
    const double rate_mb_s = bandwidth * budget.spectral_efficiency();
    const auto report = sim::run_precopy(*slot.twin, rate_mb_s, precopy);

    migration_record record;
    record.start_s = queue.now();
    record.vehicle = v;
    record.from_rsu = from;
    record.to_rsu = to;
    record.price = eq.price;
    record.bandwidth_mhz = bandwidth;
    record.aotm_closed_form =
        aotm_closed_form(slot.twin->total_mb(), bandwidth, budget);
    record.aotm_simulated = aotm_from_migration(report);
    record.downtime_s = report.downtime_s;
    record.data_sent_mb = report.total_sent_mb;
    record.vmu_utility = eq.vmu_utilities[0];
    record.msp_utility = eq.leader_utility;
    record.precopy_converged = report.converged;

    result.msp_total_utility += record.msp_utility;
    result.vmu_total_utility += record.vmu_utility;

    const auto grant_id = *grant;
    queue.schedule_in(report.total_time_s, [&, v, to, grant_id, record] {
      pool.release(grant_id);
      auto& finished = vehicles[v];
      finished.migrating = false;
      finished.twin->set_host_rsu(to);
      finished.twin->record_migration();
      result.migrations.push_back(record);
      schedule_next_handover(v);
    });
  };

  schedule_next_handover = [&](std::size_t v) {
    auto& slot = vehicles[v];
    // Bring kinematics forward to 'now' before asking for the next crossing.
    const double dt = queue.now() - slot.position_at;
    if (dt > 0.0) {
      slot.kinematics = sim::advance(slot.kinematics, dt);
      slot.position_at = queue.now();
    }
    const auto next = chain.next_handover(slot.kinematics);
    if (!next) return;  // cruising past the end of the chain
    const double when = queue.now() + next->after_s;
    if (when > config.duration_s) return;
    queue.schedule(when, [&, v, from = next->from_rsu, to = next->to_rsu] {
      auto& crossing = vehicles[v];
      const double lag = queue.now() - crossing.position_at;
      crossing.kinematics = sim::advance(crossing.kinematics, lag);
      crossing.position_at = queue.now();
      start_migration(v, from, to);
    });
  };

  for (std::size_t v = 0; v < vehicles.size(); ++v) schedule_next_handover(v);
  queue.run_until(config.duration_s);
  // Drain phase: let in-flight migrations complete (new handovers are gated
  // on duration_s, so only completions and bounded retries remain).
  queue.run_until(config.duration_s + 120.0);

  if (!result.migrations.empty()) {
    for (const auto& record : result.migrations) {
      result.mean_aotm += record.aotm_simulated;
      result.mean_amplification +=
          record.data_sent_mb /
          std::max(1e-9, vehicles[record.vehicle].twin->total_mb());
    }
    result.mean_aotm /= static_cast<double>(result.migrations.size());
    result.mean_amplification /=
        static_cast<double>(result.migrations.size());
  }
  return result;
}

}  // namespace vtm::core
