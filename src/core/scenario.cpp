#include "core/scenario.hpp"

#include <utility>

#include "core/fleet_scenario.hpp"
#include "core/fleet_shard.hpp"
#include "util/contracts.hpp"

namespace vtm::core {

// The highway scenario is the fleet engine on the legacy topology: one shared
// OFDMA pool serving the whole chain, and vehicles spawned on the stretch
// before the first handover boundary. The clearing mode passes through, so
// `market_mode::single` reproduces the original one-VMU-at-a-time market and
// `market_mode::joint` prices same-epoch handovers as one N-follower game.
scenario_result run_highway_scenario(const scenario_config& config) {
  // Check the fields this adapter itself computes with; the forwarded values
  // are validated in full by run_fleet_scenario.
  VTM_EXPECTS(config.rsu_spacing_m > util::meters{0.0});
  fleet_config fleet;
  fleet.rsu_count = config.rsu_count;
  fleet.rsu_spacing_m = config.rsu_spacing_m;
  fleet.coverage_radius_m = config.coverage_radius_m;
  fleet.vehicle_count = config.vehicle_count;
  fleet.min_speed_mps = config.min_speed_mps;
  fleet.max_speed_mps = config.max_speed_mps;
  fleet.duration_s = config.duration_s;
  fleet.spawn_min_m = 0.5 * config.rsu_spacing_m;
  fleet.spawn_max_m = 1.4 * config.rsu_spacing_m;
  fleet.min_alpha = config.min_alpha;
  fleet.max_alpha = config.max_alpha;
  fleet.min_data_mb = config.min_data_mb;
  fleet.max_data_mb = config.max_data_mb;
  fleet.bandwidth_per_pool_mhz = config.bandwidth_cap_mhz;
  fleet.shared_pool = true;
  fleet.unit_cost = config.unit_cost;
  fleet.price_cap = config.price_cap;
  fleet.link = config.link;
  fleet.mode = config.mode;
  fleet.clearing_epoch_s = config.clearing_epoch_s;
  fleet.dirty_rate_mb_s = config.dirty_rate_mb_s;
  fleet.page_mb = config.page_mb;
  fleet.stop_copy_threshold_mb = config.stop_copy_threshold_mb;
  fleet.record_migrations = true;
  fleet.seed = config.seed;

  validate_fleet_config(fleet);  // the adapter is a public run_* entry too
  fleet_result run = run_fleet_scenario(fleet);

  scenario_result result;
  result.migrations = std::move(run.migrations);
  result.handovers = run.handovers;
  result.deferred = run.deferred;
  result.priced_out = run.priced_out;
  result.abandoned = run.abandoned;
  result.completed = run.completed;
  result.msp_total_utility = run.msp_total_utility;
  result.vmu_total_utility = run.vmu_total_utility;
  result.mean_aotm = run.mean_aotm;
  result.mean_amplification = run.mean_amplification;
  return result;
}

}  // namespace vtm::core
