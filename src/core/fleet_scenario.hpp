// Fleet-scale highway scenario with joint spot-market clearing.
//
// The event-driven engine behind `run_highway_scenario`, exposed directly for
// fleet workloads (thousands of vehicles, long RSU chains). Each destination
// RSU owns its own OFDMA pool and `core::spot_market` book; handovers landing
// within one clearing epoch aggregate into a single N-follower Stackelberg
// market over that pool's remaining capacity, and migration completions
// trigger immediate re-clearing for deferred requests (DESIGN.md §8).
//
// Accounting is completion-based: utilities and records accrue when a
// migration finishes, and the run drains the event queue to empty, so totals
// always equal the sum over `migrations` and no in-flight work is lost.
//
// `run_fleet_sweep` evaluates independent seeds in parallel through
// `util::thread_pool`; each run owns its RNG, queue, and pools, so the sweep
// is bitwise identical to running the seeds serially.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/pricing_policy.hpp"
#include "core/scenario.hpp"

namespace vtm::core {

/// Fleet shape, economics, and clearing semantics.
struct fleet_config {
  // Geometry / fleet shape.
  std::size_t rsu_count = 8;
  double rsu_spacing_m = 1000.0;
  double coverage_radius_m = 600.0;
  /// Explicit (possibly non-uniform) RSU centres. When non-empty it
  /// overrides rsu_count x rsu_spacing_m, and each pool's migration link —
  /// hence its spectral efficiency, κ_n, and cleared price — uses the actual
  /// distance from its upstream neighbour instead of a global constant.
  std::vector<double> rsu_positions_m;
  std::size_t vehicle_count = 100;
  double min_speed_mps = 20.0;
  double max_speed_mps = 35.0;
  double duration_s = 120.0;     ///< Handover-admission horizon.

  /// Spawn span along the highway; <= 0 means "auto" (spread across the whole
  /// chain so every RSU sees load). The legacy scenario pins this to the
  /// stretch before the first handover boundary.
  double spawn_min_m = -1.0;
  double spawn_max_m = -1.0;

  // Economics (paper ranges; α enters ×100 per the unit calibration).
  double min_alpha = 500.0;
  double max_alpha = 2000.0;
  double min_data_mb = 100.0;
  double max_data_mb = 300.0;
  double bandwidth_per_pool_mhz = 50.0;  ///< Capacity of each OFDMA pool.
  bool shared_pool = false;  ///< true: one global pool (legacy topology).
  double unit_cost = 5.0;
  double price_cap = 50.0;
  wireless::link_params link{};  ///< d is overridden by the RSU spacing.

  // Spot-market clearing.
  market_mode mode = market_mode::joint;
  double clearing_epoch_s = 0.5;   ///< 0 clears at each handover instant.
  double min_clearable_mhz = 0.5;  ///< Defer below this pool remainder.

  /// Pricing backend for every clearing. `oracle` is the analytic
  /// `solve_equilibrium` (bitwise-identical to the pre-backend engine);
  /// `learned` posts the trained pricer's price from the partial-information
  /// cohort observation and requires `pricer` to be set.
  pricing_backend pricing = pricing_backend::oracle;
  std::shared_ptr<const learned_pricer> pricer;

  /// Capture one `cohort_snapshot` per priced clearing into
  /// `fleet_result::cohorts` (training-data harvest for the learned
  /// pricer). Joint mode only: sequential clearings price size-1
  /// sub-markets that a whole-book snapshot would misrepresent.
  bool record_cohorts = false;

  // Migration machinery.
  double dirty_rate_mb_s = 50.0;
  double page_mb = 0.25;
  double stop_copy_threshold_mb = 1.0;

  /// Keep per-migration records (turn off for throughput benches at scale;
  /// aggregates are accumulated either way).
  bool record_migrations = true;

  std::uint64_t seed = 2023;
};

/// Aggregate outcome of a fleet run.
struct fleet_result {
  std::vector<migration_record> migrations;  ///< Empty when not recording.
  std::vector<cohort_snapshot> cohorts;  ///< Filled when record_cohorts.
  std::size_t handovers = 0;    ///< Boundary crossings admitted.
  std::size_t deferred = 0;     ///< Request-clearings delayed by a full pool.
  std::size_t priced_out = 0;   ///< Handovers priced to b* = 0 (no migration).
  std::size_t abandoned = 0;    ///< Requests dropped as permanently unservable.
  std::size_t completed = 0;    ///< Migrations run to completion.
  std::size_t clearings = 0;    ///< Clearing events that priced >= 1 market.
  std::size_t max_cohort = 0;   ///< Largest cohort priced as one market.
  double msp_total_utility = 0.0;  ///< Σ over completed migrations.
  double vmu_total_utility = 0.0;
  double mean_aotm = 0.0;
  double mean_amplification = 0.0;
  double mean_price = 0.0;         ///< Demand-weighted across completions.
};

/// Run one fleet scenario to completion (deterministic given the seed).
[[nodiscard]] fleet_result run_fleet_scenario(const fleet_config& config);

/// Run `base` once per seed (overriding `base.seed`), sharded across
/// `threads` workers (0 = serial). Results are indexed like `seeds`.
[[nodiscard]] std::vector<fleet_result> run_fleet_sweep(
    const fleet_config& base, std::span<const std::uint64_t> seeds,
    std::size_t threads);

}  // namespace vtm::core
