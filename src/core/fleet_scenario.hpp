// Fleet-scale highway scenario with joint spot-market clearing.
//
// The event-driven engine behind `run_highway_scenario`, exposed directly for
// fleet workloads (thousands of vehicles, long RSU chains). Each destination
// RSU owns its own OFDMA pool and `core::spot_market` book; handovers landing
// within one clearing epoch aggregate into a single N-follower Stackelberg
// market over that pool's remaining capacity, and migration completions
// trigger immediate re-clearing for deferred requests (DESIGN.md §8).
//
// Accounting is completion-based: utilities and records accrue when a
// migration finishes, and the run drains the event queue to empty, so totals
// always equal the sum over `migrations` and no in-flight work is lost.
//
// A single run parallelizes across `shard_count` contiguous RSU shards, each
// owning its RSUs' pools, books, and its own `sim::event_queue`; shards
// advance in conservative time windows and exchange boundary handoffs at
// barriers (core/fleet_shard.hpp, DESIGN.md §10). `shard_count = 1` (the
// default) is bitwise identical to the pre-shard serial engine.
//
// `run_fleet_sweep` evaluates independent seeds in parallel through
// `util::thread_pool`; each run owns its RNG, queues, and pools, so the
// sweep is bitwise identical to running the seeds serially.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/competitive_market.hpp"
#include "core/pricing_policy.hpp"
#include "core/scenario.hpp"
#include "util/log.hpp"

namespace vtm::sim {
class road_graph;
}  // namespace vtm::sim

namespace vtm::util {
class metrics_registry;
class trace_session;
}  // namespace vtm::util

namespace vtm::core {

/// Optional observability sinks for a fleet run (DESIGN.md §16). Null
/// members disable the corresponding instrument family at the cost of one
/// predictable branch per site; attached sinks never influence results —
/// telemetry on vs off is bitwise-identical on `fleet_result`
/// (tests/telemetry_test.cpp). Sinks must outlive the run and must not be
/// shared across concurrently-executing runs (e.g. `run_fleet_sweep` seeds).
struct fleet_telemetry {
  /// Deterministic counters/gauges/histograms; the coordinator registers
  /// the fleet schema, binds one lane per shard (plus one for itself), and
  /// merges at the window barriers.
  util::metrics_registry* metrics = nullptr;
  /// Chrome-trace spans and instants, one lane per shard plus the
  /// coordinator lane.
  util::trace_session* trace = nullptr;
};

/// Fleet shape, economics, and clearing semantics. Physical fields are typed
/// quantities (util/quantity.hpp); the engine unwraps via `.value()` at the
/// point of use, so the arithmetic — and the tier-2 goldens — stay bitwise.
struct fleet_config {
  // Geometry / fleet shape.
  std::size_t rsu_count = 8;
  util::meters rsu_spacing_m{1000.0};
  util::meters coverage_radius_m{600.0};
  /// Explicit (possibly non-uniform) RSU centres. When non-empty it
  /// overrides rsu_count x rsu_spacing_m, and each pool's migration link —
  /// hence its spectral efficiency, κ_n, and cleared price — uses the actual
  /// distance from its upstream neighbour instead of a global constant.
  std::vector<util::meters> rsu_positions_m;
  std::size_t vehicle_count = 100;
  util::mps min_speed_mps{20.0};
  util::mps max_speed_mps{35.0};
  util::seconds duration_s{120.0};  ///< Handover-admission horizon.

  /// Spawn span along the highway; < 0 means "auto" (spread across the whole
  /// chain so every RSU sees load), so an explicit window may start at 0 m.
  /// When both bounds are explicit, spawn_max_m >= spawn_min_m is required.
  /// The legacy scenario pins this to the stretch before the first handover
  /// boundary.
  util::meters spawn_min_m{-1.0};
  util::meters spawn_max_m{-1.0};

  /// Road-network topology (sim/road_graph.hpp). When set it replaces the
  /// 1-D chain: the RSUs are the graph's sites, vehicles route over
  /// entry->exit paths, and pools price graph distance (`upstream_gap_m`) —
  /// the chain geometry fields above are ignored. A degenerate single-path
  /// graph (`road_graph::as_chain()`) collapses back onto the legacy chain
  /// engine bitwise. Requires per-RSU pools; oligopoly mode stays
  /// chain-only. An explicit spawn window must intersect every route
  /// (spawn_min_m < the shortest route length), else it spans zero edges on
  /// some route and is rejected.
  std::shared_ptr<const sim::road_graph> graph;

  /// Spawn-cohort correlation: vehicles arrive in platoons of
  /// `platoon_size` (1 = independent draws, the legacy sequence).
  /// Followers share their leader's route and spawn within
  /// ±platoon_spread_m / ±platoon_speed_jitter_mps of it, clamped to the
  /// spawn window and speed band.
  std::size_t platoon_size = 1;
  util::meters platoon_spread_m{50.0};
  util::mps platoon_speed_jitter_mps{0.0};
  /// Lane-change hook (graph mode): on spawn edges with more than one lane
  /// each vehicle draws a lane and gains lane x delta speed (0 disables;
  /// the conservative shard window accounts for the maximum bonus).
  util::mps lane_speed_delta_mps{0.0};

  // Economics (paper ranges; α enters ×100 per the unit calibration).
  double min_alpha = 500.0;
  double max_alpha = 2000.0;
  util::megabytes min_data_mb{100.0};
  util::megabytes max_data_mb{300.0};
  util::megahertz bandwidth_per_pool_mhz{50.0};  ///< Per-OFDMA-pool capacity.
  bool shared_pool = false;  ///< true: one global pool (legacy topology).
  double unit_cost = 5.0;
  double price_cap = 50.0;
  wireless::link_params link{};  ///< d is overridden by the RSU spacing.
  /// Per-RSU channel overrides: when non-empty, entry r replaces
  /// `link.noise_power_dbm` / `link.tx_power_dbm` for RSU r's pool (and for
  /// drifted-grant link rebuilds landing at r). Size must equal the RSU
  /// count; empty keeps the chain-wide values (bitwise-unchanged default).
  std::vector<util::dbm> rsu_noise_dbm;
  std::vector<util::dbm> rsu_tx_power_dbm;

  // Spot-market clearing.
  market_mode mode = market_mode::joint;
  util::seconds clearing_epoch_s{0.5};  ///< 0 clears at each handover.
  util::megahertz min_clearable_mhz{0.5};  ///< Defer below this remainder.

  // Oligopoly competition (market_mode::oligopoly; DESIGN.md §11).
  /// The competing sellers. Empty means one MSP inheriting the monopoly
  /// economics above (such a run is bitwise `market_mode::joint`). Each MSP
  /// owns a chain of pools shifted `chain_offset_m` from the primary chain;
  /// requires per-RSU pools (`shared_pool` unsupported).
  std::vector<fleet_msp> msps;
  double share_sharpness = 0.25;  ///< λ of the softmin seller-split rule.
  /// Learned seller seat: this MSP posts `pricer`'s competitor-aware price
  /// while the scripted rivals best-respond (`no_learned_msp` = all
  /// scripted). Requires `pricer` with `competitor_aware` set.
  std::size_t learned_msp = no_learned_msp;

  /// Pricing backend for every clearing. `oracle` is the analytic
  /// `solve_equilibrium` (bitwise-identical to the pre-backend engine);
  /// `learned` posts the trained pricer's price from the partial-information
  /// cohort observation and requires `pricer` to be set.
  pricing_backend pricing = pricing_backend::oracle;
  std::shared_ptr<const learned_pricer> pricer;

  /// Capture one `cohort_snapshot` per priced clearing into
  /// `fleet_result::cohorts` (training-data harvest for the learned
  /// pricer). Joint mode only: sequential clearings price size-1
  /// sub-markets that a whole-book snapshot would misrepresent.
  bool record_cohorts = false;

  // Migration machinery.
  util::mb_per_s dirty_rate_mb_s{50.0};
  util::megabytes page_mb{0.25};
  util::megabytes stop_copy_threshold_mb{1.0};

  /// Keep per-migration records (turn off for throughput benches at scale;
  /// aggregates are accumulated either way).
  bool record_migrations = true;

  // Sharded execution (core/fleet_shard.hpp).
  /// Contiguous RSU shards a single run is partitioned into. Each shard owns
  /// its RSUs' pools, spot-market books, and its own event queue; shards run
  /// on `util::thread_pool` workers and exchange boundary handoffs at
  /// conservative window barriers. 1 = the serial engine (bitwise identical
  /// to the pre-shard code); requires shard_count <= RSU count, and the
  /// legacy `shared_pool` topology supports only shard_count = 1.
  std::size_t shard_count = 1;
  /// Synchronization window length in seconds; <= 0 derives it from the
  /// chain's minimum boundary travel time at `max_speed_mps` (snapped to a
  /// clearing-epoch multiple so grid clearings land on barriers). Any
  /// positive value is *safe* — late boundary crossings are clamped to the
  /// next barrier and counted in `fleet_result::late_handoffs` — but windows
  /// longer than the lookahead trade fidelity for fewer barriers.
  util::seconds window_s{0.0};

  // Observability (DESIGN.md §16). Results are invariant to both: metrics
  // merge deterministically at barriers, spans only read, and the logger's
  // default-constructed state discards everything.
  fleet_telemetry telemetry;
  util::logger log;

  std::uint64_t seed = 2023;
};

/// Per-vehicle end-of-run state (always filled; indexed by vehicle id).
struct vehicle_summary {
  std::size_t id = 0;          ///< Stable vehicle identity (streaming runs
                               ///< recycle slots, so the slot index is not).
  std::size_t host_rsu = 0;    ///< RSU hosting the twin after the drain.
  std::size_t migrations = 0;  ///< Completed migrations of this twin.
  double position_m = 0.0;     ///< Position at the vehicle's last sync.
  std::size_t shard = 0;       ///< Shard owning the vehicle at the end.
};

/// Aggregate outcome of a fleet run.
struct fleet_result {
  std::vector<migration_record> migrations;  ///< Empty when not recording.
  std::vector<cohort_snapshot> cohorts;  ///< Filled when record_cohorts.
  std::size_t handovers = 0;    ///< Boundary crossings admitted.
  std::size_t deferred = 0;     ///< Request-clearings delayed by a full pool.
  std::size_t priced_out = 0;   ///< Handovers priced to b* = 0 (no migration).
  std::size_t abandoned = 0;    ///< Requests dropped as permanently unservable.
  std::size_t completed = 0;    ///< Migrations run to completion.
  std::size_t clearings = 0;    ///< Clearing events that priced >= 1 market.
  std::size_t max_cohort = 0;   ///< Largest cohort priced as one market.
  std::vector<vehicle_summary> vehicles;  ///< Final per-vehicle state.
  /// Sharding diagnostics (all zero for shard_count = 1).
  std::size_t cross_shard_transfers = 0;  ///< Vehicles handed between shards.
  std::size_t cross_shard_retargets = 0;  ///< Deferred requests re-homed.
  std::size_t late_handoffs = 0;  ///< Deliveries clamped to a later barrier;
                                  ///< 0 means the run matched the serial
                                  ///< engine's event timing exactly.
  double msp_total_utility = 0.0;  ///< Σ over completed migrations.
  double vmu_total_utility = 0.0;
  double mean_aotm = 0.0;
  double mean_amplification = 0.0;
  double mean_price = 0.0;         ///< Demand-weighted across completions.
  /// Oligopoly only (sized to the MSP roster; empty otherwise): each
  /// seller's realized profit and sold bandwidth over completed migrations.
  /// Σ msp_utilities == msp_total_utility up to summation order.
  std::vector<double> msp_utilities;
  std::vector<double> msp_sold_mhz;
  /// Oligopoly clearings whose best-response fixed point hit the sweep
  /// budget without converging (prices still valid, just not certified).
  std::size_t unconverged_clearings = 0;
  /// Oligopoly solver cost breakdown (all zero outside oligopoly mode):
  /// best-response sweeps and objective evaluations summed over clearings,
  /// and how many clearings warm-started from their book's previous prices.
  std::size_t solver_sweeps = 0;
  std::size_t objective_evals = 0;
  std::size_t warm_started_clearings = 0;
};

/// Run one fleet scenario to completion (deterministic given the seed).
[[nodiscard]] fleet_result run_fleet_scenario(const fleet_config& config);

/// Run `base` once per seed (overriding `base.seed`), sharded across
/// `threads` workers (0 = serial). Results are indexed like `seeds`.
[[nodiscard]] std::vector<fleet_result> run_fleet_sweep(
    const fleet_config& base, std::span<const std::uint64_t> seeds,
    std::size_t threads);

/// Sentinel: never reseed a streaming run.
inline constexpr std::size_t no_reseed = static_cast<std::size_t>(-1);

/// Streaming (open-system) fleet run: vehicles arrive as a Poisson process
/// over an unbounded horizon instead of all spawning at t = 0, completed
/// twins retire and their slots are recycled, and results flush in periodic
/// windows so memory stays bounded by the live population, not the arrival
/// count (DESIGN.md §14).
struct streaming_config {
  /// Geometry, economics, and sharding for the run. `vehicle_count` is
  /// ignored (population is arrival-driven) and `duration_s` is overridden
  /// by `horizon_s`. Spot modes only (oligopoly stays closed-population).
  fleet_config base;
  util::per_second arrival_rate_per_s{5.0};  ///< Poisson arrival λ.
  util::seconds horizon_s{600.0};      ///< Arrival-admission horizon.
  util::seconds flush_period_s{60.0};  ///< Window length between flushes.
  /// Mid-stream reseed check: after emitting flush `reseed_flush`, replace
  /// the RNG with a fresh `reseed_seed` stream. Flushes 0..reseed_flush are
  /// bitwise-unaffected (all pre-reseed draws land in earlier windows), and
  /// two runs with the same reseed are bitwise-identical throughout —
  /// tests/streaming_fleet_test.cpp pins both.
  std::size_t reseed_flush = no_reseed;
  std::uint64_t reseed_seed = 0;
};

/// Outcome of a streaming run. `flushes[k]` covers window k only (counters
/// are per-window deltas); `totals` aggregates the whole run and carries the
/// concatenated migration records, cohorts, and one `vehicle_summary` per
/// arrival (indexed by vehicle id).
struct streaming_result {
  std::vector<fleet_result> flushes;
  fleet_result totals;
  std::size_t arrivals = 0;   ///< Vehicles admitted over the horizon.
  std::size_t retired = 0;    ///< Twins retired (== arrivals after drain).
  std::size_t peak_live = 0;  ///< Max concurrent live twins.
  /// High-water mark of the recycled slot arena — the engine's actual
  /// memory footprint (bounded by peak_live, not arrivals).
  std::size_t slot_high_water = 0;
};

/// Run one streaming fleet scenario to quiescence (deterministic given the
/// seed). Validates via `validate_streaming_config` (core/fleet_shard.hpp).
[[nodiscard]] streaming_result run_streaming_fleet(
    const streaming_config& config);

}  // namespace vtm::core
