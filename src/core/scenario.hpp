// End-to-end vehicular-metaverse scenario (DESIGN.md experiment S1).
//
// Vehicles carrying VMUs drive along an RSU-covered highway. Each coverage
// handover triggers a VT migration: the MSP prices bandwidth at the
// Stackelberg-equilibrium price for the current set of concurrent migrations,
// the VMU purchases its best-response bandwidth from the destination link's
// OFDMA pool, and the twin is moved with the pre-copy engine. The record
// compares the closed-form AoTM (eq. 1) with the AoTM measured from the
// simulated block timeline, and accumulates both sides' utilities.
#pragma once

#include <cstdint>
#include <vector>

#include "core/market.hpp"

namespace vtm::core {

/// Scenario shape and economics.
struct scenario_config {
  // Geometry / mobility.
  std::size_t rsu_count = 4;
  double rsu_spacing_m = 1000.0;
  double coverage_radius_m = 600.0;
  std::size_t vehicle_count = 3;
  double min_speed_mps = 20.0;   ///< Speeds drawn uniformly per vehicle.
  double max_speed_mps = 35.0;
  double duration_s = 120.0;     ///< Simulated horizon.

  // Economics (paper ranges; α enters ×100 per the unit calibration).
  double min_alpha = 500.0;
  double max_alpha = 2000.0;
  double min_data_mb = 100.0;    ///< D_n ∈ [100, 300] MB.
  double max_data_mb = 300.0;
  double bandwidth_cap_mhz = 50.0;
  double unit_cost = 5.0;
  double price_cap = 50.0;
  wireless::link_params link{};  ///< d is overridden by actual RSU spacing.

  // Migration machinery.
  double dirty_rate_mb_s = 50.0;     ///< Memory dirtying while live.
  double page_mb = 0.25;
  double stop_copy_threshold_mb = 1.0;

  std::uint64_t seed = 2023;
};

/// One completed migration.
struct migration_record {
  double start_s = 0.0;          ///< Handover (market) time.
  std::size_t vehicle = 0;
  std::size_t from_rsu = 0;
  std::size_t to_rsu = 0;
  double price = 0.0;            ///< Equilibrium unit price charged.
  double bandwidth_mhz = 0.0;    ///< Purchased (granted) bandwidth.
  double aotm_closed_form = 0.0; ///< D/(b·R), eq. 1.
  double aotm_simulated = 0.0;   ///< Pre-copy first-to-last-block time.
  double downtime_s = 0.0;       ///< Stop-and-copy pause.
  double data_sent_mb = 0.0;     ///< Includes dirty-page retransmissions.
  double vmu_utility = 0.0;
  double msp_utility = 0.0;
  bool precopy_converged = true;
};

/// Aggregate outcome of a scenario run.
struct scenario_result {
  std::vector<migration_record> migrations;
  std::size_t handovers = 0;         ///< Triggered handover events.
  std::size_t deferred = 0;          ///< Migrations delayed by a full pool.
  double msp_total_utility = 0.0;
  double vmu_total_utility = 0.0;
  double mean_aotm = 0.0;
  double mean_amplification = 0.0;   ///< Sent / footprint (pre-copy overhead).
};

/// Run the scenario to completion (deterministic given the seed).
[[nodiscard]] scenario_result run_highway_scenario(
    const scenario_config& config);

}  // namespace vtm::core
