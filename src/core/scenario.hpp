// End-to-end vehicular-metaverse scenario (DESIGN.md experiment S1).
//
// Vehicles carrying VMUs drive along an RSU-covered highway. Each coverage
// handover triggers a VT migration: the MSP prices bandwidth at the
// Stackelberg-equilibrium price for the current set of concurrent migrations,
// the VMU purchases its best-response bandwidth from the destination link's
// OFDMA pool, and the twin is moved with the pre-copy engine. The record
// compares the closed-form AoTM (eq. 1) with the AoTM measured from the
// simulated block timeline, and accumulates both sides' utilities.
//
// Handovers landing within one clearing epoch are priced together as a joint
// N-follower market (DESIGN.md §8); `market_mode::single` restores the legacy
// one-VMU-at-a-time spot market for the paper's monopoly curves.
#pragma once

#include <cstdint>
#include <vector>

#include "core/market.hpp"
#include "util/quantity.hpp"

namespace vtm::core {

/// How concurrent handovers are priced.
enum class market_mode {
  joint,   ///< Epoch-aggregated N-follower Stackelberg markets (eq. 8–13).
  single,  ///< Legacy: each handover clears its own one-follower market.
  oligopoly,  ///< M competing MSPs per clearing: softmin-Bertrand price
              ///< competition with per-VMU seller splits (fleet engine only;
              ///< core/competitive_market.hpp, DESIGN.md §11).
};

/// Scenario shape and economics. Physical fields are typed quantities
/// (util/quantity.hpp): construction from a raw double is explicit, so a
/// meters-for-seconds (or dBm-for-watts) slip is a compile error.
struct scenario_config {
  // Geometry / mobility.
  std::size_t rsu_count = 4;
  util::meters rsu_spacing_m{1000.0};
  util::meters coverage_radius_m{600.0};
  std::size_t vehicle_count = 3;
  util::mps min_speed_mps{20.0};  ///< Speeds drawn uniformly per vehicle.
  util::mps max_speed_mps{35.0};
  util::seconds duration_s{120.0};  ///< Simulated horizon.

  // Economics (paper ranges; α enters ×100 per the unit calibration).
  double min_alpha = 500.0;
  double max_alpha = 2000.0;
  util::megabytes min_data_mb{100.0};  ///< D_n ∈ [100, 300] MB.
  util::megabytes max_data_mb{300.0};
  util::megahertz bandwidth_cap_mhz{50.0};
  double unit_cost = 5.0;
  double price_cap = 50.0;
  wireless::link_params link{};  ///< d is overridden by actual RSU spacing.

  // Spot-market clearing.
  market_mode mode = market_mode::joint;
  util::seconds clearing_epoch_s{0.5};  ///< Aggregation window (joint mode).

  // Migration machinery.
  util::mb_per_s dirty_rate_mb_s{50.0};  ///< Memory dirtying while live.
  util::megabytes page_mb{0.25};
  util::megabytes stop_copy_threshold_mb{1.0};

  std::uint64_t seed = 2023;
};

/// One completed migration.
struct migration_record {
  double start_s = 0.0;          ///< Clearing (market) time.
  double requested_s = 0.0;      ///< Handover time (<= start_s).
  double finish_s = 0.0;         ///< Completion time (>= start_s).
  std::size_t vehicle = 0;
  std::size_t from_rsu = 0;
  std::size_t to_rsu = 0;
  double price = 0.0;            ///< Equilibrium unit price charged (the
                                 ///< effective share-weighted price under
                                 ///< market_mode::oligopoly).
  double bandwidth_mhz = 0.0;    ///< Purchased (granted) bandwidth.
  std::size_t cohort = 1;        ///< Followers in the market that priced it.
  std::size_t sellers = 1;       ///< MSPs the bandwidth was split across.
  double aotm_closed_form = 0.0; ///< D/(b·R), eq. 1.
  double aotm_simulated = 0.0;   ///< Pre-copy first-to-last-block time.
  double downtime_s = 0.0;       ///< Stop-and-copy pause.
  double data_sent_mb = 0.0;     ///< Includes dirty-page retransmissions.
  double vmu_utility = 0.0;
  double msp_utility = 0.0;
  bool precopy_converged = true;
};

/// Aggregate outcome of a scenario run.
struct scenario_result {
  std::vector<migration_record> migrations;
  std::size_t handovers = 0;         ///< Triggered handover events.
  std::size_t deferred = 0;          ///< Request-clearings delayed by a full pool.
  std::size_t priced_out = 0;        ///< Handovers where b* = 0 (no migration).
  std::size_t abandoned = 0;         ///< Requests dropped as unservable.
  std::size_t completed = 0;         ///< Migrations run to completion.
  double msp_total_utility = 0.0;
  double vmu_total_utility = 0.0;
  double mean_aotm = 0.0;
  double mean_amplification = 0.0;   ///< Sent / footprint (pre-copy overhead).
};

/// Run the scenario to completion (deterministic given the seed).
[[nodiscard]] scenario_result run_highway_scenario(
    const scenario_config& config);

}  // namespace vtm::core
