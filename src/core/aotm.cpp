#include "core/aotm.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace vtm::core {

double aotm_closed_form(double data_mb, double bandwidth_mhz,
                        double spectral_efficiency) {
  VTM_EXPECTS(data_mb >= 0.0);
  VTM_EXPECTS(bandwidth_mhz > 0.0);
  VTM_EXPECTS(spectral_efficiency > 0.0);
  return data_mb / (bandwidth_mhz * spectral_efficiency);
}

double aotm_closed_form(double data_mb, double bandwidth_mhz,
                        const wireless::link_budget& link) {
  return aotm_closed_form(data_mb, bandwidth_mhz, link.spectral_efficiency());
}

double aotm_from_migration(const sim::migration_report& report) {
  return report.total_time_s;
}

double immersion(double alpha, double aotm) {
  VTM_EXPECTS(alpha > 0.0);
  VTM_EXPECTS(aotm > 0.0);
  return alpha * std::log(1.0 + 1.0 / aotm);
}

}  // namespace vtm::core
