// Pluggable pricing backends for the spot-market clearing engine.
//
// Every clearing of `core::spot_market` needs one number — the unit price
// posted to the cohort — and the rest of the outcome (rationed demands,
// utilities) follows from the followers' best responses through the market.
// This module abstracts where that price comes from:
//
//   - `oracle_policy`  — the analytic Stackelberg solve over the full
//     follower profiles (`solve_equilibrium`); the default, and bitwise
//     identical to the pre-backend engine.
//   - `learned_policy` — a trained `rl::actor_critic` pricing the cohort
//     from a *partial-information* observation (cohort size, remaining pool
//     MHz, α/κ summary statistics) without ever seeing individual profiles;
//     the paper's learning-based mechanism running inside the fleet engine.
//
// The observation layout (`cohort_features`) and the price action map are
// shared between training (`core::train_fleet_pricer`) and deployment
// (`learned_pricer::price`), so a checkpoint trained on harvested cohort
// snapshots plugs straight into `fleet_config::pricing`. DESIGN.md §9.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/market.hpp"
#include "rl/policy.hpp"
#include "wireless/link.hpp"

namespace vtm::core {

/// Which backend prices a fleet run's clearings.
enum class pricing_backend {
  oracle,   ///< Analytic `solve_equilibrium` over full profiles (default).
  learned,  ///< Trained policy over the partial-information observation.
};

/// Human-readable backend name.
[[nodiscard]] const char* to_string(pricing_backend backend) noexcept;

/// What a pricing policy is allowed to see about one clearing cohort:
/// aggregate statistics only, never the individual (α_n, D_n) profiles.
/// κ_n = D_n / R is the per-VMU transfer time per unit bandwidth — the AoI
/// kernel of eq. 1 — so the κ summaries are the cohort's freshness pressure.
struct cohort_observation {
  std::size_t cohort = 0;       ///< N — requests priced as one market.
  double available_mhz = 0.0;   ///< Remaining pool capacity on offer.
  double capacity_mhz = 0.0;    ///< Nominal pool capacity (normalization).
  double sum_alpha = 0.0;       ///< Σ α_n over the cohort.
  double mean_alpha = 0.0;
  double max_alpha = 0.0;
  double sum_kappa = 0.0;       ///< Σ κ_n (aggregate AoI pressure).
  double mean_kappa = 0.0;
  double max_kappa = 0.0;
  double spectral_efficiency = 0.0;  ///< R of the pool's migration link.
  double unit_cost = 0.0;       ///< C — price box floor.
  double price_cap = 0.0;       ///< p_max — price box ceiling.
  /// Oligopoly context (market_mode::oligopoly): how many rival sellers
  /// compete for this cohort and where their posted prices sit. All zero in
  /// monopoly clearings, and ignored by the monopoly feature map, so the
  /// 8-feature pricers are bitwise-unaffected by these fields.
  std::size_t competitors = 0;         ///< Rival MSPs in the clearing.
  double competitor_min_price = 0.0;   ///< Cheapest rival posted price.
  double competitor_mean_price = 0.0;  ///< Mean rival posted price.
};

/// Width of the normalized feature vector fed to the learned pricer.
inline constexpr std::size_t cohort_feature_dim = 8;

/// Width of the competitor-aware feature vector (monopoly features plus the
/// rival-count and rival-price summaries) fed to an oligopoly seller seat.
inline constexpr std::size_t competitive_feature_dim = cohort_feature_dim + 3;

/// Summarize a clearing cohort. `capacity_mhz` <= 0 falls back to
/// `available_mhz` as the normalization anchor.
[[nodiscard]] cohort_observation make_cohort_observation(
    const migration_market& market, double available_mhz,
    double capacity_mhz = 0.0);

/// Normalized O(1)-range features (layout documented in DESIGN.md §9).
[[nodiscard]] std::vector<double> cohort_features(
    const cohort_observation& obs);

/// Competitor-aware features: `cohort_features` plus the rival count and
/// rival-price summaries (DESIGN.md §11) — what a seller seat in the
/// oligopoly clearing observes about the competition.
[[nodiscard]] std::vector<double> competitive_features(
    const cohort_observation& obs);

/// The shared action→price map of the learned pricer and its training
/// environment: tanh-squash the raw action onto [C, C + 1.15·(p_max − C)],
/// then clamp to the cap. The squashing keeps a usable gradient everywhere
/// (a hard clamp plateaus the reward outside the box and strands the policy
/// mean at the cap), and the 15% headroom makes the cap itself reachable at
/// a finite action — saturating there is benign because in cap regimes the
/// cap *is* the optimum.
[[nodiscard]] double squashed_price(double raw_action, double unit_cost,
                                    double price_cap);

/// Interface every clearing backend implements: given the cohort market and
/// its partial-information summary, produce the full clearing equilibrium
/// (price plus the followers' market response at that price).
class pricing_policy {
 public:
  virtual ~pricing_policy() = default;

  /// Backend name for logs and bench output.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Price one clearing cohort.
  [[nodiscard]] virtual equilibrium price_cohort(
      const migration_market& market, const cohort_observation& obs) = 0;
};

/// The analytic Stackelberg oracle — full-information `solve_equilibrium`.
class oracle_policy final : public pricing_policy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "oracle"; }
  [[nodiscard]] equilibrium price_cohort(
      const migration_market& market, const cohort_observation& obs) override;
};

/// Architecture and price box of a learned pricer (must match training).
struct learned_pricer_config {
  std::vector<std::size_t> hidden{64, 64};  ///< Trunk sizes.
  double initial_log_std = -0.7;  ///< Only used to rebuild the net shape.
  double unit_cost = 5.0;         ///< C — floor of the price action map.
  double price_cap = 50.0;        ///< p_max — ceiling of the map.
  /// Observe the competition: the network reads the 11-feature
  /// `competitive_features` vector instead of the monopoly 8-feature one.
  /// Required for the oligopoly seller seat (`fleet_config::learned_msp`).
  bool competitor_aware = false;
};

/// Immutable trained pricing network: observation features in, price out.
/// Deterministic (mean action) and const, so one instance can be shared
/// across every pool of a fleet run and across sweep threads.
class learned_pricer {
 public:
  /// Wrap an already-trained policy network (train_fleet_pricer path).
  learned_pricer(learned_pricer_config config, rl::actor_critic policy);

  /// Rebuild the network from `config` and load a `nn::serialize` checkpoint
  /// (deployment path). Throws std::runtime_error on malformed input or an
  /// architecture mismatch.
  learned_pricer(learned_pricer_config config, const std::string& checkpoint);

  [[nodiscard]] const learned_pricer_config& config() const noexcept {
    return config_;
  }

  /// Deterministic price for one cohort, clamped to [unit_cost, price_cap].
  [[nodiscard]] double price(const cohort_observation& obs) const;

  /// The squashed_price map onto [unit_cost, price_cap] (tanh + headroom,
  /// not pricing_env's clamped affine map — see squashed_price).
  [[nodiscard]] double price_from_action(double raw_action) const;

  /// Serialize the wrapped network (nn::save_parameters text blob).
  [[nodiscard]] std::string checkpoint() const;

 private:
  learned_pricer_config config_;
  rl::actor_critic policy_;
};

/// Clearing backend that posts the learned pricer's price; the followers
/// still best-respond through the market, so capacity and participation
/// constraints hold exactly as under the oracle.
class learned_policy final : public pricing_policy {
 public:
  /// The pricer must be non-null.
  explicit learned_policy(std::shared_ptr<const learned_pricer> pricer);

  [[nodiscard]] const char* name() const noexcept override {
    return "learned";
  }
  [[nodiscard]] equilibrium price_cohort(
      const migration_market& market, const cohort_observation& obs) override;

  [[nodiscard]] const learned_pricer& pricer() const noexcept {
    return *pricer_;
  }

 private:
  std::shared_ptr<const learned_pricer> pricer_;
};

/// One clearing cohort captured from a fleet run (training data for the
/// learned pricer): the full profiles — the oracle label needs them — plus
/// the pool state the observation summarizes.
struct cohort_snapshot {
  std::vector<vmu_profile> profiles;
  double available_mhz = 0.0;
  double capacity_mhz = 0.0;
  wireless::link_params link{};
  double unit_cost = 5.0;
  double price_cap = 50.0;

  /// Rebuild the cohort's market (for oracle labels and reward evaluation).
  [[nodiscard]] market_params to_market_params() const;
};

}  // namespace vtm::core
