// Age of Twin Migration (AoTM) — the paper's freshness metric.
//
// AoTM is "the time elapsed between the last successfully received VT block
// and the generation of the first VT block in the VT migration" (§III-A):
// the end-to-end completion time of a twin's transfer. In closed form, with
// purchased bandwidth b_n and spectral efficiency R = log2(1 + SNR), the
// transmission rate is γ_n = b_n·R and the AoTM is A_n = D_n / γ_n (eq. 1).
//
// Two evaluation paths are provided and cross-validated in the tests:
//   * the closed form, in the paper's normalized units (D in MB, b in MHz);
//   * the measured first-block-to-last-block time of a simulated pre-copy
//     migration (sim/precopy.hpp), which reduces to the closed form when the
//     dirty-page rate is zero.
#pragma once

#include "sim/precopy.hpp"
#include "wireless/link.hpp"

namespace vtm::core {

/// Closed-form AoTM (eq. 1): data_mb / (bandwidth_mhz · spectral_efficiency),
/// in the paper's normalized seconds. Requires positive bandwidth and
/// efficiency, non-negative data.
[[nodiscard]] double aotm_closed_form(double data_mb, double bandwidth_mhz,
                                      double spectral_efficiency);

/// Closed-form AoTM over an explicit link budget.
[[nodiscard]] double aotm_closed_form(double data_mb, double bandwidth_mhz,
                                      const wireless::link_budget& link);

/// Measured AoTM of a completed pre-copy migration: the total time from the
/// first block's generation to the last block's reception.
[[nodiscard]] double aotm_from_migration(const sim::migration_report& report);

/// Immersion obtained by a VMU whose twin migrated with the given AoTM:
/// G = α · ln(1 + 1/A) (§III-B1). Requires alpha > 0 and aotm > 0.
[[nodiscard]] double immersion(double alpha, double aotm);

}  // namespace vtm::core
