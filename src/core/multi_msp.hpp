// Multi-MSP extension (the paper's stated future work, §VI).
//
// M MSPs post unit prices simultaneously; each VMU splits its bandwidth
// purchase across MSPs with a softmin share rule on price (logit demand with
// sharpness λ — the standard smoothing of Bertrand competition that keeps
// best responses well-defined):
//
//   w_m(p) = exp(−λ·p_m) / Σ_j exp(−λ·p_j)
//   p̄_n   = Σ_m w_m·p_m                      (effective price faced by VMU n)
//   b_n    = max(0, α_n/p̄_n − κ_n)           (paper's eq. 8 at p̄)
//   b_nm   = b_n · w_m                        (allocation to MSP m)
//
// Each MSP m maximizes (p_m − C_m)·Σ_n b_nm given the other prices; the
// price-competition equilibrium is the fixed point of best responses.
// Economics recovered in the tests: one MSP reduces to the monopoly model;
// competition pushes prices below the monopoly level toward cost as λ grows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/market.hpp"

namespace vtm::core {

/// One competing bandwidth seller.
struct msp_profile {
  double unit_cost = 5.0;          ///< C_m.
  double bandwidth_cap_mhz = 50.0; ///< Per-MSP capacity.
  double price_cap = 50.0;         ///< p_max,m.
};

/// Market with M MSPs and N VMUs.
struct multi_msp_params {
  std::vector<msp_profile> msps;  ///< The competing leaders (M >= 1).
  std::vector<vmu_profile> vmus;  ///< The buyers (N >= 1).
  wireless::link_params link{};   ///< Shared migration channel model.
  double share_sharpness = 0.25;  ///< λ — price sensitivity of the split.
};

/// Stateless evaluator of the oligopoly market.
class multi_msp_market {
 public:
  /// Validates: at least one MSP and VMU, positive α/D/caps, λ > 0,
  /// 0 < C_m <= p_max,m.
  explicit multi_msp_market(multi_msp_params params);

  [[nodiscard]] const multi_msp_params& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t msp_count() const noexcept {
    return params_.msps.size();
  }
  [[nodiscard]] std::size_t vmu_count() const noexcept {
    return params_.vmus.size();
  }
  [[nodiscard]] double spectral_efficiency() const noexcept {
    return link_.spectral_efficiency();
  }

  /// Softmin market shares at a price vector (sums to 1).
  [[nodiscard]] std::vector<double> shares(
      std::span<const double> prices) const;

  /// Effective (share-weighted) price faced by every VMU.
  [[nodiscard]] double effective_price(std::span<const double> prices) const;

  /// Total bandwidth demanded by VMU n at the effective price.
  [[nodiscard]] double vmu_demand(std::size_t n,
                                  std::span<const double> prices) const;

  /// Bandwidth sold by each MSP (after per-MSP capacity rationing).
  [[nodiscard]] std::vector<double> msp_sales(
      std::span<const double> prices) const;

  /// Per-MSP utilities (p_m − C_m)·sales_m.
  [[nodiscard]] std::vector<double> msp_utilities(
      std::span<const double> prices) const;

  /// MSP m's best-response price to the others' prices (numeric 1-D solve
  /// within [C_m, p_max,m]).
  [[nodiscard]] double best_response_price(
      std::size_t m, std::span<const double> prices) const;

 private:
  multi_msp_params params_;
  wireless::link_budget link_;
};

/// Outcome of price-competition best-response iteration.
struct multi_msp_equilibrium {
  std::vector<double> prices;         ///< One price per MSP.
  std::vector<double> sales;          ///< Bandwidth sold per MSP.
  std::vector<double> utilities;      ///< Profit per MSP.
  double effective_price = 0.0;       ///< Share-weighted price seen by VMUs.
  double total_demand = 0.0;          ///< Σ over MSPs of sales.
  double total_vmu_utility = 0.0;     ///< Σ_n U_n at the effective price.
  std::size_t iterations = 0;
  bool converged = false;
};

/// Gauss–Seidel best-response iteration from the monopoly price; converges
/// for the smoothed share rule. Requires tol > 0.
[[nodiscard]] multi_msp_equilibrium solve_price_competition(
    const multi_msp_market& market, double tol = 1e-7,
    std::size_t max_sweeps = 200);

}  // namespace vtm::core
