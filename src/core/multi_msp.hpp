// Multi-MSP extension (the paper's stated future work, §VI).
//
// M MSPs post unit prices simultaneously; each VMU splits its bandwidth
// purchase across MSPs with a softmin share rule on price (logit demand with
// sharpness λ — the standard smoothing of Bertrand competition that keeps
// best responses well-defined):
//
//   w_m(p) = exp(−λ·p_m) / Σ_j exp(−λ·p_j)
//   p̄_n   = Σ_m w_m·p_m                      (effective price faced by VMU n)
//   b_n    = max(0, α_n/p̄_n − κ_n)           (paper's eq. 8 at p̄)
//   b_nm   = b_n · w_m                        (allocation to MSP m)
//
// Each MSP m maximizes (p_m − C_m)·Σ_n b_nm given the other prices; the
// price-competition equilibrium is the fixed point of best responses.
// Economics recovered in the tests: one MSP reduces to the monopoly model;
// competition pushes prices below the monopoly level toward cost as λ grows.
//
// Fast path (DESIGN.md §12): aggregate demand depends on prices only through
// the scalar effective price, so the market precomputes per-VMU activation
// thresholds t_n = α_n/κ_n and suffix sums of (α, κ) over the
// threshold-sorted order; `total_demand(p_eff)` is then an O(log N) lookup
// and the best-response objective costs one `exp` per candidate price. The
// equilibrium solver is a dampened simultaneous best-response iteration with
// an Aitken-style contraction-ratio certificate and warm-start support.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/market.hpp"

namespace vtm::core {

/// One competing bandwidth seller.
struct msp_profile {
  double unit_cost = 5.0;          ///< C_m.
  double bandwidth_cap_mhz = 50.0; ///< Per-MSP capacity.
  double price_cap = 50.0;         ///< p_max,m.
};

/// Market with M MSPs and N VMUs.
struct multi_msp_params {
  std::vector<msp_profile> msps;  ///< The competing leaders (M >= 1).
  std::vector<vmu_profile> vmus;  ///< The buyers (N >= 1).
  wireless::link_params link{};   ///< Shared migration channel model.
  double share_sharpness = 0.25;  ///< λ — price sensitivity of the split.
};

/// Stateless evaluator of the oligopoly market.
class multi_msp_market {
 public:
  /// Validates: at least one MSP and VMU, positive α/D/caps, λ > 0,
  /// 0 < C_m <= p_max,m. Precomputes the sorted demand curve.
  explicit multi_msp_market(multi_msp_params params);

  [[nodiscard]] const multi_msp_params& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t msp_count() const noexcept {
    return params_.msps.size();
  }
  [[nodiscard]] std::size_t vmu_count() const noexcept {
    return params_.vmus.size();
  }
  [[nodiscard]] double spectral_efficiency() const noexcept {
    return link_.spectral_efficiency();
  }

  /// Softmin market shares at a price vector (sums to 1).
  [[nodiscard]] std::vector<double> shares(
      std::span<const double> prices) const;

  /// Effective (share-weighted) price faced by every VMU.
  [[nodiscard]] double effective_price(std::span<const double> prices) const;

  /// Total bandwidth demanded by VMU n at the effective price.
  [[nodiscard]] double vmu_demand(std::size_t n,
                                  std::span<const double> prices) const;

  /// Same per-VMU demand expression, with the effective price computed once
  /// by the caller — bitwise-identical to `vmu_demand` at the same p_eff.
  [[nodiscard]] double vmu_demand_at(std::size_t n, double p_eff) const;

  /// Aggregate demand curve at an effective price: O(log N) lookup into the
  /// threshold-sorted suffix sums, max(0, Σ_active α / p_eff − Σ_active κ).
  [[nodiscard]] double total_demand(double p_eff) const;

  /// O(N) reference for `total_demand`: walks the sorted VMUs from the
  /// highest activation threshold down, accumulating the identical FP
  /// additions, so the result is bitwise-equal to the suffix-sum lookup.
  [[nodiscard]] double total_demand_reference(double p_eff) const;

  /// Bandwidth sold by each MSP (after per-MSP capacity rationing).
  [[nodiscard]] std::vector<double> msp_sales(
      std::span<const double> prices) const;

  /// Per-MSP utilities (p_m − C_m)·sales_m.
  [[nodiscard]] std::vector<double> msp_utilities(
      std::span<const double> prices) const;

  /// Best response of one seller with the search cost broken out.
  struct best_response {
    double price = 0.0;            ///< Argmax over [C_m, p_max,m].
    double value = 0.0;            ///< Profit at the best response.
    std::size_t evaluations = 0;   ///< Objective calls spent.
  };

  /// MSP m's best-response price to the others' prices. Fast path: rivals'
  /// softmin weights are cached once, so each candidate price costs one
  /// `exp` plus an O(log N) demand-curve lookup, with no allocation. `tol`
  /// is the price accuracy of the inner search.
  [[nodiscard]] best_response best_response_to(
      std::size_t m, std::span<const double> prices,
      double tol = 1e-9) const;

  /// Bracket-local best response: searches only [center − halfwidth,
  /// center + halfwidth] (clamped to [C_m, p_max,m]), expanding the bracket
  /// ×4 whenever the profit derivative says the optimum lies beyond a
  /// bracket edge that is not a domain boundary, so a stale bracket can
  /// never pin the search to a wrong basin. Inside the bracket the search is
  /// a safeguarded secant on the closed-form profit derivative (DESIGN.md
  /// §12), with bisection fallback across rationing kinks. Used by the
  /// solver after the first sweep, when the previous sweep's response
  /// brackets the new one.
  [[nodiscard]] best_response best_response_local(
      std::size_t m, std::span<const double> prices, double center,
      double halfwidth, double tol) const;

  /// Convenience wrapper around `best_response_to` returning only the price.
  [[nodiscard]] double best_response_price(
      std::size_t m, std::span<const double> prices) const;

  /// Slow-path oracle: the original O(N·M)-per-evaluation objective (full
  /// softmin re-normalization, per-VMU demand loop in roster order) under
  /// the original grid + golden-section search. Bitwise-identical to the
  /// pre-fast-path `best_response_price`; property tests compare the fast
  /// path against it.
  [[nodiscard]] double best_response_price_reference(
      std::size_t m, std::span<const double> prices) const;

 private:
  /// Cached single-seller view of the softmin: rivals' total weight and
  /// price-weighted mass anchored at the cheapest rival, so one candidate
  /// price costs one `exp`. Anchoring at the rivals' minimum keeps the
  /// softmin denominator >= 1 on both branches — a candidate above the
  /// anchor underflows toward zero share, a candidate below it rescales the
  /// rivals toward zero — so sharp λ never produces 0/0 or overflow.
  struct rival_cache {
    double ref = 0.0;       ///< min_{j≠m} p_j (softmin anchor).
    double rival_w = 0.0;   ///< Σ_{j≠m} exp(−λ(p_j − ref)) — >= 1.
    double rival_wp = 0.0;  ///< Σ_{j≠m} exp(−λ(p_j − ref))·p_j.
    bool has_rivals = false;
    double lo = 0.0;        ///< C_m.
    double hi = 0.0;        ///< p_max,m.
    double cap = 0.0;       ///< Bandwidth cap of seller m.
    /// Share of seller m and the effective price at a candidate price.
    struct point {
      double share = 0.0;
      double p_eff = 0.0;
    };
    [[nodiscard]] point at(double lambda, double price) const;
  };
  [[nodiscard]] rival_cache cache_rivals(std::size_t m,
                                         std::span<const double> prices) const;

  /// Demand curve value and slope at an effective price: D = A_i/p̄ − K_i
  /// and D' = −A_i/p̄² over the active suffix i (one shared lookup). The
  /// value is bitwise `total_demand`; the slope feeds the closed-form profit
  /// derivative of the local best-response search.
  struct demand_point {
    double demand = 0.0;
    double slope = 0.0;
  };
  [[nodiscard]] demand_point demand_at(double p_eff) const;

  multi_msp_params params_;
  wireless::link_budget link_;
  // Demand curve: VMUs sorted ascending by activation threshold α_n/κ_n,
  // with suffix sums (index i = Σ over sorted positions i..N−1) built by
  // descending accumulation so the O(N) reference walk adds in the same
  // order. Sizes: N for the sorted arrays, N+1 for the suffix sums.
  std::vector<double> sorted_alpha_;
  std::vector<double> sorted_kappa_;
  std::vector<double> sorted_threshold_;
  std::vector<double> suffix_alpha_;
  std::vector<double> suffix_kappa_;
};

/// Outcome of price-competition best-response iteration.
struct multi_msp_equilibrium {
  std::vector<double> prices;         ///< One price per MSP.
  std::vector<double> sales;          ///< Bandwidth sold per MSP.
  std::vector<double> utilities;      ///< Profit per MSP.
  double effective_price = 0.0;       ///< Share-weighted price seen by VMUs.
  double total_demand = 0.0;          ///< Σ over MSPs of sales.
  double total_vmu_utility = 0.0;     ///< Σ_n U_n at the effective price.
  std::size_t iterations = 0;
  bool converged = false;
  // Convergence certificate (DESIGN.md §12).
  double residual = 0.0;           ///< Final max_m |BR_m(p) − p_m|.
  double contraction_ratio = 0.0;  ///< Last observed q = r_k / r_{k−1}.
  double error_bound = 0.0;        ///< q/(1−q)·residual; +inf if q >= 1.
  double damping = 1.0;            ///< Final relaxation factor θ.
  bool certified = false;          ///< converged && q < 1.
  bool warm_started = false;       ///< Initialized from a warm-start vector.
  std::size_t objective_evals = 0; ///< Total best-response objective calls.
};

/// Tuning knobs for `solve_price_competition`.
struct price_competition_options {
  static constexpr std::size_t no_pin = static_cast<std::size_t>(-1);

  double tol = 1e-7;
  std::size_t max_sweeps = 200;
  /// Previous clearing's prices (size M) to start from; empty = cold start
  /// at each MSP's cap midpoint (first clearing of a run stays bitwise).
  std::span<const double> warm_start{};
  /// Index of a seller whose price is held fixed at its initial value
  /// (learned pricing seat); `no_pin` iterates every seller.
  std::size_t pinned = no_pin;
  /// Initial relaxation factor θ ∈ (0, 1]; halved (down to 1/64) whenever
  /// the contraction ratio stalls near 1 (Edgeworth cycling).
  double damping = 1.0;
};

/// Dampened simultaneous best-response iteration with a contraction-ratio
/// certificate: p ← p + θ(BR(p) − p), θ bisected on stall. Converges
/// deterministically for smoothed shares, including sharp-λ/binding-cap
/// configs that cycle under pure Gauss–Seidel. Requires tol > 0.
[[nodiscard]] multi_msp_equilibrium solve_price_competition(
    const multi_msp_market& market, const price_competition_options& options);

/// Legacy entry point: cold start, no pin, full step.
[[nodiscard]] multi_msp_equilibrium solve_price_competition(
    const multi_msp_market& market, double tol = 1e-7,
    std::size_t max_sweeps = 200);

}  // namespace vtm::core
