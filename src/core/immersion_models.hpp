// Pluggable immersion metrics (the paper's stated future work, §VI: "adopt
// more effective immersive metrics in conjunction with AoTM").
//
// The paper fixes G_n = α_n·ln(1 + 1/A_n). This module abstracts the
// immersion function and provides a `generalized_market` whose follower best
// responses and leader optimum are solved numerically (no closed form
// required), so any concave-in-bandwidth metric drops in. Three models ship:
//
//   * log_immersion          — the paper's (validated against the closed form);
//   * power_immersion        — G = α·(1/A)^θ, θ ∈ (0,1): heavier reward for
//                              ultra-fresh migrations, no saturation;
//   * saturating_immersion   — G = α·(1 − exp(−θ/A)): hard saturation at α,
//                              modelling perception limits of HMD users.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/market.hpp"

namespace vtm::core {

/// Immersion as a function of the freshness metric (I.25 interface).
class immersion_model {
 public:
  virtual ~immersion_model() = default;

  /// Immersion gain for unit-profit α at freshness A (> 0). Must be
  /// increasing in 1/A and concave in bandwidth through A = D/(b·R).
  [[nodiscard]] virtual double gain(double alpha, double aotm) const = 0;

  /// Model name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The paper's metric: G = α·ln(1 + 1/A) (eq. 2).
class log_immersion final : public immersion_model {
 public:
  [[nodiscard]] double gain(double alpha, double aotm) const override;
  [[nodiscard]] const char* name() const override { return "log"; }
};

/// Power-law metric: G = α·(1/A)^θ with θ ∈ (0, 1).
class power_immersion final : public immersion_model {
 public:
  explicit power_immersion(double theta = 0.5);
  [[nodiscard]] double gain(double alpha, double aotm) const override;
  [[nodiscard]] const char* name() const override { return "power"; }

 private:
  double theta_;
};

/// Saturating metric: G = α·(1 − exp(−θ/A)).
class saturating_immersion final : public immersion_model {
 public:
  explicit saturating_immersion(double theta = 0.5);
  [[nodiscard]] double gain(double alpha, double aotm) const override;
  [[nodiscard]] const char* name() const override { return "saturating"; }

 private:
  double theta_;
};

/// The migration market generalized over an immersion model. Follower best
/// responses are numeric (golden-section on the concave utility); the leader
/// optimum is numeric over [C, p_max] with proportional rationing, mirroring
/// migration_market's rules.
class generalized_market {
 public:
  /// `model` must outlive the market. Same parameter validation as
  /// migration_market.
  generalized_market(market_params params, const immersion_model& model);

  [[nodiscard]] const market_params& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t vmu_count() const noexcept {
    return params_.vmus.size();
  }
  [[nodiscard]] double spectral_efficiency() const noexcept {
    return link_.spectral_efficiency();
  }
  [[nodiscard]] const immersion_model& model() const noexcept {
    return model_;
  }

  /// U_n(b; p) = G(α_n, A_n(b)) − p·b, zero at b = 0.
  [[nodiscard]] double vmu_utility(std::size_t n, double bandwidth_mhz,
                                   double price) const;

  /// Numeric best response in [0, B_max].
  [[nodiscard]] double best_response(std::size_t n, double price) const;

  /// Rationed demand vector at a price.
  [[nodiscard]] std::vector<double> demands(double price) const;

  /// (p − C)·Σ demands(p).
  [[nodiscard]] double leader_utility(double price) const;

  /// Numeric leader optimum: price, demands, utilities.
  struct solution {
    double price = 0.0;
    std::vector<double> demands;
    double total_demand = 0.0;
    double leader_utility = 0.0;
    double total_vmu_utility = 0.0;
  };
  [[nodiscard]] solution solve(std::size_t grid_points = 256) const;

 private:
  market_params params_;
  wireless::link_budget link_;
  const immersion_model& model_;
};

}  // namespace vtm::core
