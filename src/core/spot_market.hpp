// Epoch-based joint spot market for concurrent VT migrations.
//
// The paper's Stackelberg game is an N-follower market: the MSP's equilibrium
// price depends on *every* VMU migrating concurrently (eq. 8–13). This module
// is the clearing engine behind that semantics: handover requests accumulate
// in a pending book, and each clearing event prices the whole cohort as one
// N-follower market over the destination pool's *remaining* capacity, using
// `solve_equilibrium` (so rationing is the market's proportional rule).
//
// Two disciplines are supported:
//   - joint:      one N-follower market per clearing (the paper's game);
//   - sequential: FIFO single-follower markets over the shrinking remainder —
//                 the legacy one-VMU-at-a-time behaviour, kept as a config
//                 knob so the monopoly (fig3*) curves stay reproducible.
//
// *Where the price comes from* is pluggable (`core::pricing_policy`): the
// default analytic oracle solves the Stackelberg equilibrium over the full
// follower profiles (bitwise-identical to the pre-backend engine), while a
// learned backend prices the cohort from a partial-information observation.
// Either way the followers best-respond through the market, so the grant
// invariants (Σ b <= remainder, price in the box) hold for every backend.
//
// The engine that owns the pool decides *when* to clear (epoch boundaries,
// migration completions); this class only prices and partitions the book.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/market.hpp"
#include "core/pricing_policy.hpp"
#include "wireless/link.hpp"

namespace vtm::util {
class trace_lane;
}  // namespace vtm::util

namespace vtm::core {

/// How a clearing prices the pending cohort.
enum class clearing_discipline {
  joint,       ///< One N-follower Stackelberg market over the whole cohort.
  sequential,  ///< Legacy: FIFO single-follower markets over the remainder.
};

/// Human-readable discipline name.
[[nodiscard]] const char* to_string(clearing_discipline discipline) noexcept;

/// A VMU waiting for migration bandwidth at a destination RSU.
struct clearing_request {
  std::size_t vehicle = 0;
  vmu_profile profile{};
  std::size_t from_rsu = 0;   ///< RSU currently hosting the twin.
  std::size_t to_rsu = 0;     ///< Destination (the vehicle's serving RSU).
  double submitted_s = 0.0;   ///< Handover time (for wait accounting).
};

/// One granted migration out of a clearing.
struct clearing_grant {
  clearing_request request;
  double price = 0.0;          ///< Equilibrium unit price of its market.
  double bandwidth_mhz = 0.0;  ///< Rationed allocation b*_n.
  double vmu_utility = 0.0;    ///< U_n at the equilibrium.
  double msp_utility = 0.0;    ///< This follower's share (p − C)·b*_n of U_s.
  std::size_t cohort = 1;      ///< Followers in the market that priced it.
  equilibrium_regime regime = equilibrium_regime::interior;
};

/// Outcome of one clearing event. Granted and priced-out requests leave the
/// pending book; deferred ones stay for the next clearing.
struct clearing_outcome {
  std::vector<clearing_grant> grants;
  std::vector<clearing_request> priced_out;  ///< b* = 0: handover, no move.
  std::size_t deferred = 0;        ///< Requests left pending this clearing.
  std::size_t markets_cleared = 0; ///< Equilibria solved (joint: 0 or 1).
  double price = 0.0;              ///< Price of the last market solved.
};

/// Economics shared by every clearing of one pool.
struct spot_market_config {
  clearing_discipline discipline = clearing_discipline::joint;
  wireless::link_params link{};  ///< Source→destination RSU channel.
  double unit_cost = 5.0;        ///< C — MSP's unit transmission cost.
  double price_cap = 50.0;       ///< p_max.
  util::megahertz min_clearable_mhz{0.5};  ///< Below this, defer instead.
  /// Pricing backend; null selects the analytic oracle. Shared so one
  /// learned pricer can serve every pool of a fleet run.
  std::shared_ptr<pricing_policy> policy;
  /// Nominal pool capacity anchoring observation normalization (<= 0 falls
  /// back to the clearing's available bandwidth).
  util::megahertz pool_capacity_mhz{0.0};
  /// Telemetry lane for per-clearing spans ("market.clear" with cohort /
  /// grant-count args). Null disables; the lane never influences clearing
  /// results and must outlive the market.
  util::trace_lane* trace = nullptr;
};

/// Pending-request book + clearing logic for one bandwidth pool.
class spot_market {
 public:
  explicit spot_market(spot_market_config config);

  [[nodiscard]] const spot_market_config& config() const noexcept {
    return config_;
  }

  /// Add a request to the book (FIFO order is the tie-break everywhere).
  void submit(clearing_request request);

  /// Requests currently waiting for a clearing.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }

  /// Mutable view of the book so the owner can retarget deferred requests
  /// (e.g. the vehicle crossed another boundary while waiting).
  [[nodiscard]] std::vector<clearing_request>& pending_requests() noexcept {
    return pending_;
  }

  /// Price the book against `available_mhz` of remaining pool capacity.
  /// Granted and priced-out requests are removed; deferred ones remain.
  /// Grant bandwidths always sum to <= available_mhz.
  [[nodiscard]] clearing_outcome clear(double available_mhz);

  /// Drop every pending request (end of run, nothing can serve them).
  /// Returns the dropped requests.
  [[nodiscard]] std::vector<clearing_request> abandon_pending();

 private:
  [[nodiscard]] clearing_outcome clear_joint(double available_mhz);
  [[nodiscard]] clearing_outcome clear_sequential(double available_mhz);
  [[nodiscard]] equilibrium price_market(const migration_market& market,
                                         double available_mhz);

  spot_market_config config_;
  std::vector<clearing_request> pending_;
};

}  // namespace vtm::core
