#include "core/mechanism.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace vtm::core {

mechanism_config mechanism_config::paper() {
  mechanism_config config;
  config.env.history_length = 4;        // L
  config.env.rounds_per_episode = 100;  // K
  config.env.mode = reward_mode::paper_binary;
  config.trainer.episodes = 500;        // E
  config.trainer.rounds_per_episode = 100;
  config.trainer.update_interval = 20;  // |I|
  config.ppo.learning_rate = 1e-5;      // paper lr
  config.ppo.minibatch_size = 20;
  config.ppo.epochs = 10;               // M
  config.hidden = {64, 64};
  return config;
}

mechanism_result run_learning_mechanism(
    const market_params& params, const mechanism_config& config,
    const rl::trainer::episode_callback& on_episode) {
  VTM_EXPECTS(config.rollout.num_envs >= 1);
  migration_market market(params);

  pricing_env_config env_config = config.env;
  env_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  pricing_env probe(market, env_config);  // dims + price mapping

  util::rng net_gen(config.seed);
  rl::actor_critic_config net_config;
  net_config.obs_dim = probe.observation_dim();
  net_config.act_dim = probe.action_dim();
  net_config.hidden = config.hidden;
  net_config.initial_log_std = config.initial_log_std;
  rl::actor_critic policy(net_config, net_gen);

  util::rng ppo_gen(config.seed + 1);
  rl::ppo learner(policy, config.ppo, ppo_gen);

  rl::trainer_config trainer_config = config.trainer;
  trainer_config.rounds_per_episode = env_config.rounds_per_episode;
  trainer_config.seed = config.seed + 2;
  trainer_config.fast_rollout = config.rollout.fast_rollout;

  mechanism_result result;
  result.oracle = solve_equilibrium(market);

  if (config.rollout.num_envs == 1) {
    // Single-env path: the legacy Algorithm-1 trainer. The B=1 vectorized
    // path matches it bitwise (tests/seed_determinism_test.cpp); it is kept
    // distinct so the env is reset exactly as often as the original loop.
    pricing_env env(market, env_config);
    rl::trainer driver(env, policy, learner, trainer_config);
    result.history = driver.train(on_episode);
    result.final_eval = driver.evaluate();
  } else {
    rl::vector_env envs(make_pricing_env_factory(params, env_config),
                        config.rollout.num_envs, config.rollout.threads);
    rl::vector_trainer driver(envs, policy, learner, trainer_config);
    result.history = driver.train(on_episode);
    result.final_eval = driver.evaluate();
  }

  result.learned_utility = result.final_eval.mean_utility;
  result.learned_price =
      probe.price_from_action(result.final_eval.mean_action);
  result.learned_total_demand = market.total_demand(result.learned_price);
  result.learned_vmu_utility = market.total_vmu_utility(result.learned_price);
  return result;
}

baseline_result run_baseline(const market_params& params,
                             rl::pricing_agent& agent, std::size_t episodes,
                             std::size_t rounds, std::uint64_t seed) {
  VTM_EXPECTS(episodes >= 1);
  VTM_EXPECTS(rounds >= 1);
  migration_market market(params);
  pricing_env_config env_config;
  env_config.rounds_per_episode = rounds;
  env_config.seed = seed ^ 0xabcdef1234567890ULL;
  pricing_env env(market, env_config);

  // Baselines act in price space directly; expose the price box to them
  // through a thin adapter around the normalized environment action.
  class price_space_agent final : public rl::pricing_agent {
   public:
    price_space_agent(rl::pricing_agent& inner, const pricing_env& env)
        : inner_(inner), env_(env) {}
    double select_action(double /*low*/, double /*high*/,
                         util::rng& gen) override {
      const auto& p = env_.market().params();
      last_price_ = inner_.select_action(p.unit_cost, p.price_cap, gen);
      return env_.action_from_price(last_price_);
    }
    void feedback(double /*action*/, double payoff) override {
      inner_.feedback(last_price_, payoff);
    }
    void reset() override { inner_.reset(); }
    [[nodiscard]] std::string name() const override { return inner_.name(); }

   private:
    rl::pricing_agent& inner_;
    const pricing_env& env_;
    double last_price_ = 0.0;
  };

  price_space_agent adapter(agent, env);
  util::rng gen(seed);

  baseline_result result;
  result.name = agent.name();
  result.best_utility = -1e300;
  for (std::size_t e = 0; e < episodes; ++e) {
    agent.reset();
    const auto stats = rl::run_agent_episode(env, adapter, rounds, gen);
    result.mean_utility += stats.mean_utility;
    result.best_utility = std::max(result.best_utility, stats.best_utility);
    result.final_utility += stats.final_utility;
    // Recover price statistics from the market response at the final action.
    result.mean_price += env.price_from_action(stats.mean_action);
  }
  const auto n = static_cast<double>(episodes);
  result.mean_utility /= n;
  result.final_utility /= n;
  result.mean_price /= n;
  result.mean_total_demand = market.total_demand(result.mean_price);
  result.mean_vmu_utility = market.total_vmu_utility(result.mean_price);
  return result;
}

fleet_pricer_result train_fleet_pricer(
    const fleet_pricer_config& config,
    const rl::trainer::episode_callback& on_episode) {
  VTM_EXPECTS(!config.harvest.empty());
  VTM_EXPECTS(config.rollout.num_envs >= 1);
  VTM_EXPECTS(config.episodes >= 1);
  VTM_EXPECTS(config.rounds_per_episode >= 1);

  // Harvest clearing cohorts by replaying the scenarios under the oracle
  // backend. All harvests must share one price box — it is baked into the
  // pricer's action map.
  const double unit_cost = config.harvest.front().unit_cost;
  const double price_cap = config.harvest.front().price_cap;
  std::vector<cohort_snapshot> snapshots;
  for (fleet_config fleet : config.harvest) {
    VTM_EXPECTS(fleet.unit_cost == unit_cost &&
                fleet.price_cap == price_cap);
    VTM_EXPECTS(fleet.mode == market_mode::joint);
    fleet.pricing = pricing_backend::oracle;
    fleet.pricer = nullptr;
    fleet.record_cohorts = true;
    fleet.record_migrations = false;
    auto harvest = run_fleet_scenario(fleet);
    snapshots.insert(snapshots.end(),
                     std::make_move_iterator(harvest.cohorts.begin()),
                     std::make_move_iterator(harvest.cohorts.end()));
  }
  auto prepared = prepare_cohorts(snapshots);
  VTM_EXPECTS(!prepared.empty());
  const auto bank = std::make_shared<const std::vector<prepared_cohort>>(
      std::move(prepared));

  fleet_pricing_env_config env_config;
  env_config.rounds_per_episode = config.rounds_per_episode;
  env_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;

  util::rng net_gen(config.seed);
  rl::actor_critic_config net_config;
  net_config.obs_dim = cohort_feature_dim;
  net_config.act_dim = 1;
  net_config.hidden = config.hidden;
  net_config.initial_log_std = config.initial_log_std;
  rl::actor_critic policy(net_config, net_gen);

  util::rng ppo_gen(config.seed + 1);
  rl::ppo learner(policy, config.ppo, ppo_gen);

  rl::trainer_config trainer_config;
  trainer_config.episodes = config.episodes;
  trainer_config.rounds_per_episode = config.rounds_per_episode;
  trainer_config.update_interval = config.update_interval;
  trainer_config.seed = config.seed + 2;
  trainer_config.fast_rollout = config.rollout.fast_rollout;

  fleet_pricer_result result;
  result.cohorts = bank->size();

  rl::vector_env envs(make_fleet_pricing_env_factory(bank, env_config),
                      config.rollout.num_envs, config.rollout.threads);
  rl::vector_trainer driver(envs, policy, learner, trainer_config);
  result.history = driver.train(on_episode);

  learned_pricer_config pricer_config;
  pricer_config.hidden = config.hidden;
  pricer_config.initial_log_std = config.initial_log_std;
  pricer_config.unit_cost = unit_cost;
  pricer_config.price_cap = price_cap;
  learned_pricer pricer(pricer_config, policy);

  // Deterministic (mean-action) sweep over the whole bank: the figure of
  // merit the acceptance thresholds gate on.
  double sum_ratio = 0.0;
  double min_ratio = 1e300;
  for (const auto& cohort : *bank) {
    const nn::tensor observation({1, cohort_feature_dim}, cohort.features);
    const double price = pricer.price_from_action(
        policy.act_deterministic(observation).action.item());
    const double ratio =
        cohort.market.leader_utility(price) / cohort.oracle_utility;
    sum_ratio += ratio;
    min_ratio = std::min(min_ratio, ratio);
  }
  result.eval_mean_ratio = sum_ratio / static_cast<double>(bank->size());
  result.eval_min_ratio = min_ratio;
  result.checkpoint = pricer.checkpoint();
  result.pricer = std::make_shared<const learned_pricer>(std::move(pricer));
  return result;
}

std::vector<baseline_result> run_paper_baselines(const market_params& params,
                                                 std::size_t episodes,
                                                 std::size_t rounds,
                                                 std::uint64_t seed) {
  rl::random_scheme random_agent;
  rl::greedy_scheme greedy_agent;
  std::vector<baseline_result> results;
  results.push_back(
      run_baseline(params, random_agent, episodes, rounds, seed));
  results.push_back(
      run_baseline(params, greedy_agent, episodes, rounds, seed + 1));
  return results;
}

}  // namespace vtm::core
