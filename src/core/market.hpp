// The VT-migration bandwidth market (§III-B).
//
// One MSP (monopolist bandwidth seller) faces N VMUs whose twins must
// migrate. Given a unit price p, VMU n purchases bandwidth b_n maximizing
//   U_n(b_n) = α_n · ln(1 + 1/A_n) − p·b_n,   A_n = D_n / (b_n·R),
// whose unique interior maximizer is b*_n = α_n/p − D_n/R (eq. 8), clamped at
// zero (participation). The MSP earns U_s(p) = Σ (p − C)·b_n subject to the
// capacity Σ b_n ≤ B_max; when aggregate demand exceeds B_max, grants are
// rationed proportionally (every VMU gets the same fraction of its request).
//
// Units follow the paper's calibration (DESIGN.md §3): b in MHz, D in MB,
// R = log2(1+SNR) from the link budget, α in utility units (the paper's
// quoted α values enter ×100).
#pragma once

#include <span>
#include <vector>

#include "wireless/link.hpp"

namespace vtm::core {

/// A VMU's private type: immersion coefficient and twin size.
struct vmu_profile {
  double alpha = 500.0;   ///< α_n — unit immersion profit (paper "5" → 500).
  double data_mb = 100.0; ///< D_n — migrated twin footprint in MB.
};

/// Complete market description.
struct market_params {
  std::vector<vmu_profile> vmus;       ///< The N followers.
  wireless::link_params link{};        ///< Source→destination RSU channel.
  util::megahertz bandwidth_cap_mhz{50.0};  ///< B_max.
  double unit_cost = 5.0;              ///< C — MSP's unit transmission cost.
  double price_cap = 50.0;             ///< p_max.
};

/// Stateless market evaluator: follower best responses, rationing, utilities.
class migration_market {
 public:
  /// Validates parameters: N >= 1, positive α/D/B_max/p_max, 0 < C <= p_max.
  explicit migration_market(market_params params);

  [[nodiscard]] const market_params& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t vmu_count() const noexcept {
    return params_.vmus.size();
  }
  [[nodiscard]] const wireless::link_budget& link() const noexcept {
    return link_;
  }

  /// R = log2(1 + SNR) of the inter-RSU link.
  [[nodiscard]] double spectral_efficiency() const noexcept {
    return link_.spectral_efficiency();
  }

  /// κ_n = D_n / R — VMU n's transfer-time per unit bandwidth.
  [[nodiscard]] double kappa(std::size_t n) const;

  /// Interior best response b*_n(p) = α_n/p − κ_n clamped at 0 (eq. 8).
  /// Requires p > 0.
  [[nodiscard]] double best_response(std::size_t n, double price) const;

  /// All best responses at price p, before capacity rationing.
  [[nodiscard]] std::vector<double> unconstrained_demands(double price) const;

  /// Demands after proportional rationing to the B_max capacity.
  [[nodiscard]] std::vector<double> demands(double price) const;

  /// AoTM of VMU n when allocated `bandwidth_mhz` (> 0).
  [[nodiscard]] double aotm(std::size_t n, double bandwidth_mhz) const;

  /// U_n(b_n; p) = α_n ln(1 + b_n R / D_n) − p·b_n; zero bandwidth gives 0.
  [[nodiscard]] double vmu_utility(std::size_t n, double bandwidth_mhz,
                                   double price) const;

  /// U_s = Σ (p − C)·b_n for explicit allocations (eq. 4).
  [[nodiscard]] double leader_utility(double price,
                                      std::span<const double> demands) const;

  /// U_s at price p with market-determined (rationed) demands.
  [[nodiscard]] double leader_utility(double price) const;

  /// Σ of rationed demands at price p.
  [[nodiscard]] double total_demand(double price) const;

  /// Sum of VMU utilities at price p under rationed allocations.
  [[nodiscard]] double total_vmu_utility(double price) const;

 private:
  market_params params_;
  wireless::link_budget link_;
};

}  // namespace vtm::core
