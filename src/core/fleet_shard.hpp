// Sharded fleet engine: per-RSU-range event shards with boundary handoff.
//
// A fleet run partitions the RSU chain into `shard_count` contiguous shards.
// Each `shard_engine` owns its RSUs' OFDMA pools and `core::spot_market`
// books, and advances its *own* `sim::event_queue`; the `shard_coordinator`
// drives all shards in conservative time windows on `util::thread_pool`
// (lookahead: the minimum boundary travel time at `max_speed_mps`). Anything
// one shard does to another crosses a `sim::shard_mailbox` and is applied at
// the next window barrier:
//
//   - `boundary_handoff` — a vehicle whose next coverage handover lands in a
//     neighbouring shard's RSU; ownership of the vehicle slot moves with it.
//   - `retarget_handoff` — a deferred request whose vehicle drifted past the
//     shard's last RSU while waiting; the request (and the vehicle) re-home
//     to the pool now serving the vehicle.
//
// Fidelity contract (DESIGN.md §10): with `shard_count = 1` the engine is
// bitwise identical to the pre-shard serial engine. Multi-shard runs are
// deterministic for a fixed (seed, shard_count) and preserve every market
// invariant (exactly-once request resolution, no pool oversubscription,
// totals == Σ records); they reproduce the serial run bitwise whenever no
// delivery was clamped behind a barrier (`fleet_result::late_handoffs == 0`
// and `cross_shard_retargets == 0`) and no two migrations finish at exactly
// the same instant — the merge breaks exact finish-time ties by vehicle id,
// not the serial engine's schedule order, so degenerate configs (equal
// fixed speeds/footprints completing on the same epoch grid) can differ in
// the low ulps of the summed aggregates. With continuous parameter draws,
// cross-shard crossing times are kinematically known ahead of the lookahead
// window and per-pool books see the exact serial submission order. Clamped
// deliveries skew an event by at most one window and are counted, never
// dropped.
//
// `shard_engine` is an engine-internal component driven by the coordinator;
// it is exposed here (rather than hidden in a TU) so white-box tests and
// benches can run windows, drains, and the abandon sweep directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "core/competitive_market.hpp"
#include "core/fleet_scenario.hpp"
#include "core/spot_market.hpp"
#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "sim/mobility.hpp"
#include "sim/vt.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"
#include "wireless/ofdma.hpp"

namespace vtm::core {

/// Smallest clearing-grid time >= now (now itself when it sits on the grid
/// or the epoch is zero), so same-epoch handovers aggregate into one market.
/// The boundary snap uses a tolerance that is *relative* to now/epoch — an
/// absolute epsilon falls below one ulp once now/epoch exceeds ~2^20, and a
/// handover landing ulps past a boundary would silently defer a full epoch
/// on long-horizon runs.
[[nodiscard]] double epoch_grid_snap(double now_s, double epoch_s);

/// Validate a fleet configuration (shared by `run_fleet_scenario` and
/// `shard_coordinator`); throws util::contract_error on violations. Negative
/// and zero speeds are rejected here by design: pools price their upstream
/// RSU gap, so backward traffic would clear over the wrong link.
void validate_fleet_config(const fleet_config& config);

/// Validate a streaming configuration (arrival process, windows, and the
/// embedded base config with `duration_s` resolved to the horizon); throws
/// util::contract_error on violations. Oligopoly mode is rejected — the
/// competitive roster assumes a closed population.
void validate_streaming_config(const streaming_config& config);

/// The oligopoly seller roster a fleet run competes with: `config.msps`
/// verbatim, or — when that is empty — one MSP inheriting the monopoly
/// economics (zero offset), so `market_mode::oligopoly` without a roster is
/// bitwise the joint path. Empty for non-oligopoly modes.
[[nodiscard]] std::vector<fleet_msp> resolved_fleet_msps(
    const fleet_config& config);

/// Mutable per-vehicle simulation state. Slots live in one coordinator-owned
/// vector; exactly one shard owns (reads or writes) a slot at any time, and
/// ownership only moves at window barriers.
struct vehicle_slot {
  sim::vehicle_state kinematics;
  vmu_profile profile;
  std::unique_ptr<sim::vehicular_twin> twin;
  double position_at = 0.0;  ///< Simulation time of `kinematics.position_m`.
  /// Route the vehicle travels in graph mode (coordinator-owned; null on the
  /// legacy chain path). Positions are the route's arc coordinate.
  const sim::route_profile* route = nullptr;
  std::size_t id = 0;    ///< Stable vehicle identity (slots are recycled).
  /// The vehicle left coverage (no further handover) with no booked or
  /// in-flight work — streaming runs retire such twins at the next flush.
  bool exited = false;
};

/// A vehicle whose next coverage handover lands in another shard: the
/// destination schedules the handover at the kinematic crossing time (or the
/// barrier, if the crossing already passed — counted as late).
struct boundary_handoff {
  std::size_t vehicle = 0;
  std::size_t from_rsu = 0;
  std::size_t to_rsu = 0;
  double crossing_s = 0.0;  ///< Kinematic boundary-crossing time.
};

/// A deferred request re-homed to a pool in another shard (the vehicle
/// drifted out of the sender's RSU range while waiting).
struct retarget_handoff {
  clearing_request request;  ///< from/to already recomputed by the sender.
  double clearing_s = 0.0;   ///< Epoch-snapped clearing time at the sender.
};

using shard_message = std::variant<boundary_handoff, retarget_handoff>;

/// Resolved ids of the fleet engine's metric schema, registered once by the
/// coordinator (`shard_coordinator` ctor) and shared read-only by every
/// shard. All recorded values are deterministic quantities (counts, cohort
/// sizes, bandwidth) — never wall-clock — so merged metric values are
/// bitwise-identical across reruns (DESIGN.md §16).
struct fleet_metric_ids {
  util::metric_id handovers = 0;        ///< Counter: coverage handovers.
  util::metric_id clearings = 0;        ///< Counter: markets cleared.
  util::metric_id boundary_posted = 0;  ///< Counter: boundary handoffs sent.
  util::metric_id retarget_posted = 0;  ///< Counter: retarget handoffs sent.
  util::metric_id delivered = 0;        ///< Counter: messages delivered.
  util::metric_id late = 0;             ///< Counter: barrier-clamped msgs.
  util::metric_id arrivals = 0;         ///< Counter: streaming arrivals.
  util::metric_id retired = 0;          ///< Counter: retired twins.
  util::metric_id live = 0;             ///< Gauge: live twins at last flush.
  util::metric_id slot_high_water = 0;  ///< Gauge: slot-arena high water.
  util::metric_id deferral_depth = 0;   ///< Gauge: pending book depth.
  util::metric_id pool_utilization = 0; ///< Gauge: Σalloc / Σcap at flush.
  util::metric_id graph_routes = 0;     ///< Gauge: graph route count.
  util::metric_id cohort = 0;           ///< Histogram: clearing cohort size.
  util::metric_id grant_mhz = 0;        ///< Histogram: granted bandwidth.
};

/// Telemetry hooks threaded into one shard engine. Everything is optional:
/// null lanes make every recording call a cheap branch, and a
/// default-constructed logger discards. Sinks never influence results —
/// enforced by tests/telemetry_test.cpp's bitwise on/off comparison.
struct shard_telemetry {
  util::trace_lane* trace = nullptr;
  util::metrics_lane* metrics = nullptr;
  const fleet_metric_ids* ids = nullptr;
  util::logger log;
};

/// One shard: the fleet engine scoped to a contiguous RSU range, advancing
/// its own event queue under the coordinator's window protocol.
class shard_engine {
 public:
  /// Side counters harvested by the coordinator's merge.
  struct counters {
    std::size_t handovers = 0;
    std::size_t deferred = 0;
    std::size_t priced_out = 0;
    std::size_t abandoned = 0;
    std::size_t clearings = 0;
    std::size_t max_cohort = 0;
    std::size_t cross_shard_transfers = 0;
    std::size_t cross_shard_retargets = 0;
    std::size_t late_handoffs = 0;
    std::size_t unconverged_clearings = 0;  ///< Oligopoly fixed-point misses.
    std::size_t solver_sweeps = 0;          ///< Oligopoly BR sweeps spent.
    std::size_t objective_evals = 0;        ///< Oligopoly objective calls.
    std::size_t warm_started_clearings = 0; ///< Clearings warm-started.
    /// Per-MSP completion accounting (oligopoly mode; sized to the roster).
    /// Accrued in shard-local completion order — nondecreasing finish time —
    /// so one shard reproduces the global finish-time reduction bitwise.
    std::vector<double> msp_utility;
    std::vector<double> msp_sold_mhz;
  };

  /// One completed migration's aggregate terms, tagged for the coordinator's
  /// deterministic finish-time-ordered reduction (kept even when records are
  /// off, so sharded aggregates stay bitwise reproducible).
  struct completion_entry {
    double finish_s = 0.0;
    std::size_t vehicle = 0;
    double msp_utility = 0.0;
    double vmu_utility = 0.0;
    double aotm = 0.0;
    double amplification = 0.0;
    double price_bandwidth = 0.0;
    double bandwidth = 0.0;
  };

  /// `rsu_shard` maps every global RSU index to its owning shard and must
  /// outlive the engine, as must `chain`, `msp_chains`, `vehicles`, and
  /// `mailbox`. The engine owns pools and books for global RSUs
  /// [rsu_lo, rsu_lo + rsu_count); in oligopoly mode `msp_chains` holds one
  /// (possibly offset) chain per roster MSP (empty otherwise).
  shard_engine(const fleet_config& config, const sim::rsu_chain& chain,
               std::span<const sim::rsu_chain> msp_chains, std::size_t index,
               std::size_t rsu_lo, std::size_t rsu_count,
               std::span<const std::uint32_t> rsu_shard,
               std::vector<vehicle_slot>& vehicles,
               sim::shard_mailbox<shard_message>& mailbox,
               std::shared_ptr<pricing_policy> policy,
               shard_telemetry telemetry = {});

  /// Take ownership of a spawned vehicle and schedule its next handover
  /// (posts a boundary handoff instead when the crossing leaves the shard).
  void adopt(std::size_t vehicle);

  /// Streaming arrival: schedule the vehicle's first handover computation at
  /// its arrival time `at` (the slot's kinematics/position_at are already
  /// set to the arrival instant). Must land at/after the shard clock.
  void inject(std::size_t vehicle, double at);

  /// Apply one cross-shard message. Barrier only — enforced by the analysis:
  /// the caller must hold the run's barrier capability (every lane parked).
  /// Deliveries behind the shard clock are clamped to it and counted as late.
  void deliver(const shard_message& message,
               const util::barrier_phase& barrier) VTM_REQUIRES(barrier);

  /// Run every event with time <= t_end and advance the clock to t_end.
  void run_window(double t_end);

  /// Drain-phase round: run until the queue empties (messages delivered at
  /// the next barrier may refill it). Returns the number of events executed.
  std::size_t drain_round();

  /// Final sweep once every queue is dry and no messages remain: anything
  /// still booked has no release left to wait for. Runs the same
  /// `resolve_abandoned` bookkeeping as the in-run abandon path (twins are
  /// re-homed to their request's destination RSU), but schedules nothing —
  /// the horizon has passed.
  void abandon_remaining();

  [[nodiscard]] const sim::event_queue& queue() const noexcept {
    return queue_;
  }
  /// Book of the pool serving global RSU `rsu` (white-box tests; monopoly
  /// modes only — oligopoly books live in `comarket_at`).
  [[nodiscard]] spot_market& market_at(std::size_t rsu);
  /// Oligopoly book of the cell at global RSU `rsu` (white-box tests).
  [[nodiscard]] competitive_market& comarket_at(std::size_t rsu);

  [[nodiscard]] const counters& stats() const noexcept { return counters_; }
  [[nodiscard]] const std::vector<completion_entry>& ledger() const noexcept {
    return ledger_;
  }
  [[nodiscard]] const std::vector<migration_record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::vector<cohort_snapshot>& cohorts() const noexcept {
    return cohorts_;
  }

  /// Snapshot for one streaming flush: cumulative counters plus the ledger,
  /// records, and cohorts accrued since the previous flush (moved out, so
  /// per-window memory is released). Barrier only — reads engine state the
  /// lanes otherwise own.
  struct flush_data {
    counters stats;  ///< Cumulative; the coordinator diffs against the last.
    std::vector<completion_entry> ledger;
    std::vector<migration_record> records;
    std::vector<cohort_snapshot> cohorts;
  };
  [[nodiscard]] flush_data take_flush(const util::barrier_phase& barrier)
      VTM_REQUIRES(barrier);

  /// Requests waiting in this shard's deferral books, summed over its pools.
  /// Barrier only — reads state the lanes otherwise own.
  [[nodiscard]] std::size_t book_depth(const util::barrier_phase& barrier)
      const VTM_REQUIRES(barrier);

  /// Aggregate pool usage across this shard's pools (per-MSP pools in
  /// oligopoly mode). Barrier only.
  struct pool_usage {
    double allocated_mhz = 0.0;
    double capacity_mhz = 0.0;
  };
  [[nodiscard]] pool_usage pool_utilization(const util::barrier_phase&
                                                barrier) const
      VTM_REQUIRES(barrier);

 private:
  [[nodiscard]] std::size_t pool_index(std::size_t rsu) const noexcept;
  [[nodiscard]] double pool_link_distance_m(std::size_t rsu) const;
  /// Channel of the cell at global RSU `rsu` over `distance_m`: the chain
  /// link with the per-cell noise/power overrides applied.
  [[nodiscard]] wireless::link_params link_for(std::size_t rsu,
                                               double distance_m) const;
  [[nodiscard]] bool oligopoly() const noexcept { return !msps_.empty(); }
  /// Pending book of pool `pidx`, whichever engine owns it.
  [[nodiscard]] std::vector<clearing_request>& book_of(std::size_t pidx);
  /// Submit into pool `pidx`'s book, whichever engine owns it.
  void submit_request(std::size_t pidx, clearing_request request);
  void sync_position(std::size_t vehicle);
  void schedule_next_handover(std::size_t vehicle);
  void on_handover(std::size_t vehicle, std::size_t from, std::size_t to);
  void schedule_clearing(std::size_t pidx, double at);
  void run_clearing(std::size_t pidx);
  /// Oligopoly tail of `run_clearing`: price the compacted book through the
  /// competitive market over every MSP's remaining candidate-pool capacity.
  void run_clearing_oligopoly(std::size_t pidx);
  void start_migration(std::size_t pidx, const clearing_grant& grant);
  void start_migration(std::size_t pidx, const competitive_grant& grant);
  /// Shared tail of both start paths: pre-copy over `rate_mb_s`, record
  /// bookkeeping, and the completion schedule (release + accounting via
  /// `release`).
  void launch_migration(std::size_t pidx, const clearing_request& request,
                        double price, double bandwidth_mhz,
                        double vmu_utility, double msp_utility,
                        std::size_t cohort, std::vector<seller_slice> slices,
                        std::vector<wireless::grant_id> grant_ids);
  void finish_migration(std::size_t pidx,
                        const std::vector<seller_slice>& slices,
                        const std::vector<wireless::grant_id>& grant_ids,
                        const migration_record& record);
  /// Shared bookkeeping of both abandon paths (in-run and final sweep).
  void resolve_abandoned(const clearing_request& request);

  const fleet_config& config_;
  const sim::rsu_chain& chain_;
  /// Road network in graph mode (null on the chain path): pools price
  /// `upstream_gap_m` and drifted grants rebuild over `site_distance_m`.
  const sim::road_graph* graph_ = nullptr;
  std::size_t index_;
  std::size_t rsu_lo_;
  std::span<const std::uint32_t> rsu_shard_;
  std::vector<vehicle_slot>& vehicles_;
  sim::shard_mailbox<shard_message>& mailbox_;
  sim::event_queue queue_;
  double epoch_s_;
  std::vector<wireless::link_params> pool_links_;   ///< Per-pool channel.
  std::vector<wireless::link_budget> budgets_;      ///< Per-pool rates.
  std::vector<wireless::ofdma_pool> pools_;
  std::vector<spot_market> markets_;
  // Oligopoly state (empty in monopoly modes): the resolved roster, each
  // MSP's pools over this shard's RSU range, the per-cell books, and the
  // per-(cell, MSP) candidate pool slots resolved from the offset chains.
  std::vector<fleet_msp> msps_;
  sim::chain_set msp_chains_;
  std::vector<std::vector<wireless::ofdma_pool>> msp_pools_;
  std::vector<competitive_market> comarkets_;
  std::vector<std::vector<std::size_t>> candidates_;
  std::vector<bool> clearing_scheduled_;
  counters counters_;
  std::vector<completion_entry> ledger_;
  std::vector<migration_record> records_;
  std::vector<cohort_snapshot> cohorts_;
  shard_telemetry tele_;  ///< Null/discarding when telemetry is off.
};

/// Owns the chain, the vehicle slots, the shards, and the window protocol.
/// Single-shot: construct one per run.
class shard_coordinator {
 public:
  explicit shard_coordinator(const fleet_config& config);

  /// Streaming run: the closed-population spawn is skipped; vehicles arrive
  /// via `inject_arrivals` over the horizon and results flush per window.
  explicit shard_coordinator(const streaming_config& config);

  /// Execute the run to full quiescence and merge shard results
  /// deterministically (completion streams are reduced in global
  /// finish-time order, so aggregates are independent of thread timing).
  [[nodiscard]] fleet_result run();

  /// Execute a streaming run (streaming ctor only): windows advance as in
  /// `run()`, but arrivals inject at each barrier up to the next window end,
  /// results flush every `flush_period_s`, and completed twins retire so the
  /// slot arena stays bounded by the live population.
  [[nodiscard]] streaming_result run_stream();

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Resolved synchronization window (seconds).
  [[nodiscard]] double window_s() const noexcept { return window_s_; }
  [[nodiscard]] shard_engine& shard(std::size_t i) { return *shards_[i]; }

  /// The coordinator's own trace lane (lane index `shard_count()` of the
  /// run's `trace_session`), or null when tracing is off. Serial callers
  /// (e.g. `run_fleet_scenario`) may record whole-run spans on it.
  [[nodiscard]] util::trace_lane* coordinator_lane() noexcept {
    return coord_trace_;
  }

 private:
  shard_coordinator(const fleet_config& config, bool spawn);

  /// Resolve the telemetry sinks from `config_.telemetry`: register the
  /// metric schema, bind one metrics/trace lane per shard plus one for the
  /// coordinator, and name the trace lanes. Serial-only (ctor).
  void init_telemetry();
  /// Fold every lane's metric deltas into the registry totals (lane-index
  /// order — deterministic). Called at every window barrier and after the
  /// final sweep.
  void merge_metrics() VTM_REQUIRES(barrier_);

  void spawn_vehicles();
  /// Draw one vehicle's spawn state (route, position, speed, α, data) —
  /// the platoon leader/follower machinery. With `platoon_size = 1` on the
  /// chain the draw sequence is bitwise the legacy spawn loop.
  void draw_spawn(vehicle_slot& slot);
  /// Admit every Poisson arrival with time <= `upto` (and <= the horizon):
  /// pop or grow a slot, draw its spawn, and inject it into its owning
  /// shard. Barrier only — touches slots and shard queues across lanes.
  void inject_arrivals(double upto) VTM_REQUIRES(barrier_);
  /// Emit one flush window: diff shard counters, reduce the window's
  /// completion ledgers in finish-time order, and retire exited twins
  /// (all twins when `final`), recycling their slots.
  [[nodiscard]] fleet_result flush_window(bool final) VTM_REQUIRES(barrier_);
  /// Deliver every buffered message in (destination, sender, send order)
  /// sequence; returns the number delivered. Barrier only — the analysis
  /// requires the coordinator's barrier capability, acquired exclusively by
  /// `run()`'s barrier callback (and around the serial pre-/post-phase
  /// steps, where every lane is trivially idle).
  std::size_t exchange() VTM_REQUIRES(barrier_);
  /// Merge the shard completion streams. Reads every shard's state across
  /// lanes, so it too may only run with all lanes parked.
  [[nodiscard]] fleet_result merge() VTM_REQUIRES(barrier_);

  fleet_config config_;
  sim::rsu_chain chain_;
  /// Oligopoly rosters' (possibly offset) chains, one per MSP; empty in
  /// monopoly modes. Candidate resolution (`chain_set` semantics) must keep
  /// every cell's per-MSP pool inside the cell's own shard — validated at
  /// construction.
  std::vector<sim::rsu_chain> msp_chains_;
  /// Graph-mode route profiles, one per graph route (vehicle slots point
  /// into this); empty on the chain path.
  std::vector<sim::route_profile> routes_;
  bool route_mode_ = false;
  util::rng gen_;
  double window_s_ = 0.0;
  // Spawn-window spans: the chain span, or one [lo, hi] per route.
  double span_lo_ = 0.0;
  double span_hi_ = 0.0;
  std::vector<double> route_span_lo_;
  std::vector<double> route_span_hi_;
  // Platoon state threaded through consecutive spawn draws.
  std::size_t platoon_left_ = 0;   ///< Followers still owed to the leader.
  std::size_t lead_route_ = 0;
  double lead_pos_ = 0.0;
  double lead_speed_ = 0.0;
  // Streaming state (streaming ctor only).
  streaming_config stream_;
  bool streaming_ = false;
  std::vector<std::size_t> free_slots_;  ///< Retired slots, recycled LIFO.
  double next_arrival_s_ = 0.0;
  bool arrival_pending_ = false;  ///< `next_arrival_s_` drawn, not admitted.
  std::size_t arrivals_ = 0;
  std::size_t retired_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::vector<shard_engine::counters> flushed_;  ///< Last-flush snapshots.
  std::vector<fleet_result> flushes_;
  // Run-total FP accumulators (finish-time reduction order across flushes).
  double sum_aotm_ = 0.0;
  double sum_amplification_ = 0.0;
  double sum_price_bandwidth_ = 0.0;
  double sum_bandwidth_ = 0.0;
  double total_msp_utility_ = 0.0;
  double total_vmu_utility_ = 0.0;
  std::vector<std::uint32_t> rsu_shard_;  ///< Global RSU index -> shard.
  std::vector<vehicle_slot> vehicles_;
  std::vector<std::uint32_t> owner_;      ///< Vehicle -> owning shard.
  /// The run's barrier capability: "all shard lanes are parked". Stateless;
  /// exists so the analysis can gate `exchange`/`merge`/mailbox delivery to
  /// barrier scopes (DESIGN.md §13).
  util::barrier_phase barrier_;
  sim::shard_mailbox<shard_message> mailbox_;
  std::shared_ptr<pricing_policy> policy_;
  // Telemetry sinks resolved from `config_.telemetry` (null when off) plus
  // the registered metric schema; `coord_trace_`/`coord_metrics_` are the
  // coordinator's own lanes (index == shard count).
  util::metrics_registry* metrics_ = nullptr;
  util::trace_session* trace_ = nullptr;
  util::trace_lane* coord_trace_ = nullptr;
  util::metrics_lane* coord_metrics_ = nullptr;
  fleet_metric_ids ids_;
  std::vector<std::unique_ptr<shard_engine>> shards_;
  util::thread_pool pool_;
};

}  // namespace vtm::core
