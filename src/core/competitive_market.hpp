// Competitive spot market: M MSPs clearing one epoch cohort (§VI future work).
//
// The monopoly engine prices every clearing through one seller
// (`core::spot_market`). This module is the oligopoly counterpart behind
// `market_mode::oligopoly`: the same pending book of handover requests, but
// each clearing runs the cohort through `core::multi_msp_market` price
// competition — every MSP posts a price (dampened simultaneous best-response
// fixed point of the softmin-Bertrand game, warm-started from this book's
// previous clearing), VMUs split their purchase across
// sellers with the softmin share rule, and each MSP's sales are rationed to
// its *own* remaining pool capacity. A VMU whose rationed total rounds to
// zero defers back into the book (capacity in flight re-clears it), exactly
// like the monopoly deferral discipline, so the two engines share accounting
// semantics.
//
// One seller seat can be learned (`competitive_market_config::learned_msp`):
// that MSP posts a competitor-aware `learned_pricer` price — the observation
// extends the monopoly cohort summary with rival count and rival-price
// features (`competitive_features`) — and the scripted rivals best-respond
// to it. With M = 1 the class delegates verbatim to `core::spot_market`, so
// a single-MSP oligopoly run is bitwise identical to `market_mode::joint`.
//
// DESIGN.md §11 documents the clearing discipline, the seller-split
// semantics, and the shard interaction.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/multi_msp.hpp"
#include "core/spot_market.hpp"

namespace vtm::core {

/// "No learned seller seat" sentinel for `learned_msp`.
inline constexpr std::size_t no_learned_msp = static_cast<std::size_t>(-1);

/// One competing MSP of a fleet-scale oligopoly: its economics plus the
/// placement of its RSU chain relative to the primary (geometry-defining)
/// chain. Offsets model independently-deployed infrastructure along the same
/// highway: a shifted chain resolves its own serving RSU per location, so
/// neighbouring clearing books can contend for one of this MSP's pools.
struct fleet_msp {
  util::meters chain_offset_m{0.0};  ///< Shift of this MSP's RSU centres.
  double unit_cost = 5.0;            ///< C_m.
  double price_cap = 50.0;           ///< p_max,m.
  util::megahertz bandwidth_per_pool_mhz{50.0};  ///< Capacity of its pools.
};

/// One seller's share of a competitive grant.
struct seller_slice {
  std::size_t msp = 0;         ///< Seller index into the MSP roster.
  double bandwidth_mhz = 0.0;  ///< Bandwidth bought from this seller.
  double price = 0.0;          ///< That seller's posted unit price.
  /// Realized seller profit (price − C_m)·bandwidth, rounded exactly once at
  /// clearing time. Per-seller accounting must accrue *this* value — not
  /// recompute the product — so that Σ slice.utility reproduces the grant's
  /// `msp_utility` bitwise under any FP-contraction flags (-march=native
  /// fuses a recomputed multiply-add into an FMA, which rounds differently).
  double utility = 0.0;
};

/// One granted migration out of an oligopoly clearing. The grant totals are
/// what the migration machinery consumes (bandwidth, effective price, both
/// sides' utilities); `slices` is the per-seller split the pools and the
/// per-MSP accounting need.
struct competitive_grant {
  clearing_request request;
  double bandwidth_mhz = 0.0;  ///< Σ over slices.
  double price = 0.0;          ///< Effective unit price (payment / bandwidth).
  double vmu_utility = 0.0;    ///< α ln(1 + bR/D) − payment.
  double msp_utility = 0.0;    ///< Σ_m (p_m − C_m)·slice_m.
  std::size_t cohort = 1;      ///< Requests priced together in this clearing.
  std::vector<seller_slice> slices;  ///< Per-seller split (M = 1: one slice).
};

/// Outcome of one oligopoly clearing event. Mirrors `clearing_outcome`:
/// granted and priced-out requests leave the book, deferred ones stay.
struct competitive_outcome {
  std::vector<competitive_grant> grants;
  std::vector<clearing_request> priced_out;  ///< b* = 0 at the eff. price.
  std::size_t deferred = 0;
  std::size_t markets_cleared = 0;  ///< 0 or 1 (the cohort is one market).
  std::vector<double> prices;       ///< Posted price per participating MSP
                                    ///< (roster-indexed; 0 = sat out).
  bool converged = true;            ///< Best-response fixed point converged.
  bool certified = true;     ///< Convergence certificate valid (q < 1).
  bool warm_started = false; ///< Solve started from the previous clearing.
  std::size_t solver_sweeps = 0;    ///< Best-response sweeps spent.
  std::size_t objective_evals = 0;  ///< Objective calls across the solve(s).
  /// Final best-response residual of the (last) fixed-point solve; 0 for the
  /// M = 1 delegation, which prices analytically.
  double residual = 0.0;
};

/// Economics shared by every clearing of one destination cell's book.
struct competitive_market_config {
  std::vector<fleet_msp> msps;    ///< The roster (M >= 1).
  double share_sharpness = 0.25;  ///< λ of the softmin share rule.
  wireless::link_params link{};   ///< Demand-side migration channel.
  util::megahertz min_clearable_mhz{0.5};  ///< Below this an MSP sits out.
  /// Monopoly-path backend for the M = 1 delegation (null = oracle); unused
  /// for M >= 2, where the price vector comes from the best-response solve.
  /// The delegation's observation normalization anchors on the roster MSP's
  /// own `bandwidth_per_pool_mhz`.
  std::shared_ptr<pricing_policy> policy;
  /// Learned seller seat: MSP `learned_msp` posts `pricer`'s price from the
  /// competitor-aware observation instead of best-responding; the scripted
  /// rivals best-respond to it. Requires a competitor_aware pricer.
  std::shared_ptr<const learned_pricer> pricer;
  std::size_t learned_msp = no_learned_msp;
  /// Best-response iteration budget (passed to solve_price_competition).
  double fixed_point_tol = 1e-7;
  std::size_t max_sweeps = 200;
  /// Telemetry lane for per-clearing spans ("comarket.clear" carrying the
  /// convergence certificate: sweeps, objective evals, residual, warm start).
  /// Null disables; never influences clearing results.
  util::trace_lane* trace = nullptr;
};

/// Pending-request book + oligopoly clearing logic for one destination cell.
class competitive_market {
 public:
  explicit competitive_market(competitive_market_config config);

  [[nodiscard]] const competitive_market_config& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t msp_count() const noexcept {
    return config_.msps.size();
  }

  /// Add a request to the book (FIFO order is the tie-break everywhere).
  void submit(clearing_request request);

  [[nodiscard]] std::size_t pending() const noexcept;

  /// Mutable view of the book so the owner can retarget deferred requests.
  [[nodiscard]] std::vector<clearing_request>& pending_requests() noexcept;

  /// Price the book against each MSP's remaining pool capacity
  /// (`available_mhz[m]`, one entry per roster MSP). Granted and priced-out
  /// requests are removed; deferred ones remain. Per-seller slice sums never
  /// exceed that seller's availability.
  [[nodiscard]] competitive_outcome clear(
      std::span<const double> available_mhz);

  /// Drop every pending request (end of run). Returns the dropped requests.
  [[nodiscard]] std::vector<clearing_request> abandon_pending();

 private:
  [[nodiscard]] competitive_outcome clear_oligopoly(
      std::span<const double> available_mhz);

  competitive_market_config config_;
  /// M = 1 delegation: the monopoly book and clearing engine verbatim, so a
  /// single-MSP oligopoly is bitwise the joint path.
  std::optional<spot_market> monopoly_;
  std::vector<clearing_request> pending_;  ///< Book for M >= 2.
  /// Warm-start memory, keyed per roster MSP for this book: the price each
  /// seller posted in its most recent clearing here. A seller that sat a
  /// clearing out keeps its old memory; a seller with no memory yet is
  /// seeded from its cap midpoint. The very first clearing of a run has no
  /// memory at all and cold-starts bitwise-identically to the pre-warm-start
  /// solver.
  std::vector<double> warm_prices_;
  std::vector<bool> warm_valid_;
};

}  // namespace vtm::core
