#include "core/fleet_scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/aotm.hpp"
#include "core/spot_market.hpp"
#include "sim/event_queue.hpp"
#include "sim/mobility.hpp"
#include "sim/precopy.hpp"
#include "sim/vt.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "wireless/ofdma.hpp"

namespace vtm::core {

namespace {

/// Mutable per-vehicle simulation state.
struct vehicle_slot {
  sim::vehicle_state kinematics;
  vmu_profile profile;
  std::unique_ptr<sim::vehicular_twin> twin;
  double position_at = 0.0;  ///< Simulation time of `kinematics.position_m`.
};

/// Build the RSU chain: explicit (possibly non-uniform) centres when given,
/// the legacy uniform layout otherwise.
sim::rsu_chain make_chain(const fleet_config& config) {
  if (!config.rsu_positions_m.empty())
    return sim::rsu_chain(config.rsu_positions_m, config.coverage_radius_m);
  return sim::rsu_chain(config.rsu_count, config.rsu_spacing_m,
                        config.coverage_radius_m);
}

/// One fleet run: per-RSU pools + spot-market books over an event queue.
class fleet_engine {
 public:
  explicit fleet_engine(const fleet_config& config)
      : config_(config),
        gen_(config.seed),
        chain_(make_chain(config)),
        epoch_s_(config.mode == market_mode::joint ? config.clearing_epoch_s
                                                   : 0.0) {
    const std::size_t pool_count =
        config.shared_pool ? 1 : chain_.count();

    // Pricing backend, shared by every pool's book (one learned pricer can
    // serve the whole chain; null selects the analytic oracle).
    std::shared_ptr<pricing_policy> policy;
    if (config.pricing == pricing_backend::learned) {
      VTM_EXPECTS(config.pricer != nullptr);
      policy = std::make_shared<learned_policy>(config.pricer);
    }

    spot_market_config market_config;
    market_config.discipline = config.mode == market_mode::joint
                                   ? clearing_discipline::joint
                                   : clearing_discipline::sequential;
    market_config.unit_cost = config.unit_cost;
    market_config.price_cap = config.price_cap;
    market_config.min_clearable_mhz = config.min_clearable_mhz;
    market_config.pool_capacity_mhz = config.bandwidth_per_pool_mhz;
    market_config.policy = policy;

    pools_.reserve(pool_count);
    markets_.reserve(pool_count);
    pool_links_.reserve(pool_count);
    budgets_.reserve(pool_count);
    for (std::size_t p = 0; p < pool_count; ++p) {
      wireless::link_params link = config.link;
      link.distance_m = pool_link_distance_m(p);
      pool_links_.push_back(link);
      budgets_.emplace_back(link);
      market_config.link = link;
      pools_.emplace_back(config.bandwidth_per_pool_mhz);
      markets_.emplace_back(market_config);
    }
    clearing_scheduled_.assign(pool_count, false);

    spawn_vehicles();
  }

  fleet_result run() {
    for (std::size_t v = 0; v < vehicles_.size(); ++v)
      schedule_next_handover(v);
    queue_.run_until(config_.duration_s);
    // Drain phase: no new handovers are admitted past the horizon, so only
    // completions and the re-clearings they trigger remain. Running the queue
    // dry (rather than a fixed grace window) guarantees every started
    // migration lands in the totals *and* the records.
    queue_.run_all(std::numeric_limits<std::size_t>::max());
    // Anything still booked has no release left to wait for.
    for (auto& market : markets_)
      result_.abandoned += market.abandon_pending().size();

    if (result_.completed > 0) {
      const double n = static_cast<double>(result_.completed);
      result_.mean_aotm = sum_aotm_ / n;
      result_.mean_amplification = sum_amplification_ / n;
      if (sum_bandwidth_ > 0.0)
        result_.mean_price = sum_price_bandwidth_ / sum_bandwidth_;
    }
    return std::move(result_);
  }

 private:
  [[nodiscard]] std::size_t pool_index(std::size_t rsu) const noexcept {
    return config_.shared_pool ? 0 : rsu;
  }

  /// Migration-link distance of pool `p`: the actual gap to the destination
  /// RSU's upstream neighbour (forward traffic hands over from RSU p-1 to
  /// RSU p). RSU 0 receives no forward handovers, so its pool uses the
  /// downstream gap; the legacy shared pool keeps the chain-wide spacing.
  /// Uniform chains return the configured spacing directly — on a uniform
  /// chain every gap *is* the spacing, and the centre-difference arithmetic
  /// would drift from it by ulps for non-dyadic values, breaking bitwise
  /// reproduction of the pre-heterogeneity engine.
  [[nodiscard]] double pool_link_distance_m(std::size_t p) const {
    if (config_.shared_pool || chain_.count() < 2 ||
        config_.rsu_positions_m.empty())
      return chain_.spacing_m();
    return p > 0 ? chain_.link_distance_m(p - 1, p)
                 : chain_.link_distance_m(0, 1);
  }

  void spawn_vehicles() {
    // Auto spawn span: spread the fleet over the whole chain so every RSU
    // sees load; the legacy scenario pins the span before the first boundary.
    // Uniform chains keep the original spacing arithmetic verbatim (bitwise
    // reproduction); explicit chains derive the span from the actual centres.
    double auto_lo, auto_hi;
    if (config_.rsu_positions_m.empty()) {
      const double spacing = config_.rsu_spacing_m;
      auto_lo = 0.5 * spacing;
      auto_hi = (static_cast<double>(config_.rsu_count) - 0.5) * spacing;
    } else {
      auto_lo = chain_.center_m(0) -
                0.5 * (chain_.count() > 1 ? chain_.link_distance_m(0, 1)
                                          : chain_.spacing_m());
      auto_hi = chain_.center_m(chain_.count() - 1) -
                0.5 * (chain_.count() > 1
                           ? chain_.link_distance_m(chain_.count() - 2,
                                                    chain_.count() - 1)
                           : 0.0);
    }
    const double lo = config_.spawn_min_m > 0.0 ? config_.spawn_min_m : auto_lo;
    const double hi = config_.spawn_max_m > 0.0 ? config_.spawn_max_m
                                                : std::max(lo, auto_hi);
    VTM_EXPECTS(hi >= lo);

    vehicles_.resize(config_.vehicle_count);
    for (std::size_t v = 0; v < vehicles_.size(); ++v) {
      auto& slot = vehicles_[v];
      slot.kinematics.position_m = gen_.uniform(lo, hi);
      slot.kinematics.speed_mps =
          gen_.uniform(config_.min_speed_mps, config_.max_speed_mps);
      slot.profile.alpha = gen_.uniform(config_.min_alpha, config_.max_alpha);
      slot.profile.data_mb =
          gen_.uniform(config_.min_data_mb, config_.max_data_mb);
      slot.twin = std::make_unique<sim::vehicular_twin>(
          sim::vehicular_twin::with_total_mb(v, slot.profile.data_mb,
                                             config_.page_mb));
      slot.twin->set_host_rsu(chain_.serving_rsu(slot.kinematics.position_m));
    }
  }

  /// Bring a vehicle's kinematics forward to the current simulation time.
  void sync_position(std::size_t v) {
    auto& slot = vehicles_[v];
    const double dt = queue_.now() - slot.position_at;
    if (dt > 0.0) {
      slot.kinematics = sim::advance(slot.kinematics, dt);
      slot.position_at = queue_.now();
    }
  }

  void schedule_next_handover(std::size_t v) {
    sync_position(v);
    const auto& slot = vehicles_[v];
    const auto next = chain_.next_handover(slot.kinematics);
    if (!next) return;  // cruising past the end of the chain
    const double when = queue_.now() + next->after_s;
    if (when > config_.duration_s) return;
    queue_.schedule(when, [this, v, from = next->from_rsu,
                           to = next->to_rsu] {
      sync_position(v);
      on_handover(v, from, to);
    });
  }

  void on_handover(std::size_t v, std::size_t from, std::size_t to) {
    ++result_.handovers;
    clearing_request request;
    request.vehicle = v;
    request.profile = vehicles_[v].profile;
    request.from_rsu = from;
    request.to_rsu = to;
    request.submitted_s = queue_.now();
    const std::size_t pidx = pool_index(to);
    markets_[pidx].submit(std::move(request));
    schedule_clearing(pidx, next_epoch_boundary());
  }

  /// Smallest clearing-grid time >= now (now itself when it sits on the grid
  /// or the epoch is zero), so same-epoch handovers aggregate into one market.
  [[nodiscard]] double next_epoch_boundary() const {
    if (epoch_s_ <= 0.0) return queue_.now();
    return std::max(queue_.now(),
                    epoch_s_ * std::ceil(queue_.now() / epoch_s_ - 1e-9));
  }

  void schedule_clearing(std::size_t pidx, double at) {
    if (clearing_scheduled_[pidx]) return;
    clearing_scheduled_[pidx] = true;
    queue_.schedule(at, [this, pidx] { run_clearing(pidx); });
  }

  void run_clearing(std::size_t pidx) {
    clearing_scheduled_[pidx] = false;

    // Retarget deferred requests before pricing: a vehicle may have crossed
    // further boundaries while waiting, so its destination (and therefore its
    // pool) is recomputed from the *current* position, and the source from
    // where the twin actually sits. Requests submitted at this very instant
    // keep the handover's own from/to: recomputing them would trust a
    // position that can sit one ulp shy of the cell midpoint and bounce the
    // destination back into the source cell.
    auto& book = markets_[pidx].pending_requests();
    std::size_t keep = 0;  // FIFO-preserving compaction of kept requests
    for (std::size_t i = 0; i < book.size(); ++i) {
      auto& request = book[i];
      bool stays = true;
      if (request.submitted_s < queue_.now()) {
        sync_position(request.vehicle);
        const auto& slot = vehicles_[request.vehicle];
        request.from_rsu = slot.twin->host_rsu();
        request.to_rsu = chain_.serving_rsu(slot.kinematics.position_m);
        const std::size_t target = pool_index(request.to_rsu);
        if (target != pidx) {
          markets_[target].submit(std::move(request));
          schedule_clearing(target, next_epoch_boundary());
          stays = false;
        }
      }
      if (stays) {
        if (keep != i) book[keep] = std::move(request);
        ++keep;
      }
    }
    book.resize(keep);

    // The pool tolerates epsilon overshoot at the capacity boundary, so the
    // remainder can read a hair below zero.
    const double available = std::max(0.0, pools_[pidx].available_mhz());
    // Harvest only joint-mode clearings: they price the whole book as one
    // market, which is exactly what a snapshot of (book, available)
    // describes. Sequential mode prices size-1 sub-markets over a shrinking
    // remainder, so a whole-book snapshot would train the pricer on
    // observations it never sees at deployment.
    if (config_.record_cohorts && config_.mode == market_mode::joint &&
        !book.empty() && available >= config_.min_clearable_mhz) {
      // Harvest the clearing cohort as training data for the learned pricer:
      // full profiles (the oracle label needs them) + the pool state the
      // partial-information observation summarizes.
      cohort_snapshot snapshot;
      snapshot.profiles.reserve(book.size());
      for (const auto& request : book)
        snapshot.profiles.push_back(request.profile);
      snapshot.available_mhz = available;
      snapshot.capacity_mhz = config_.bandwidth_per_pool_mhz;
      snapshot.link = pool_links_[pidx];
      snapshot.unit_cost = config_.unit_cost;
      snapshot.price_cap = config_.price_cap;
      result_.cohorts.push_back(std::move(snapshot));
    }
    auto outcome = markets_[pidx].clear(available);
    result_.deferred += outcome.deferred;
    if (outcome.markets_cleared > 0) ++result_.clearings;

    for (const auto& request : outcome.priced_out) {
      // Price too high for this VMU: the twin stays behind (service
      // degrades); the handover completes without migration.
      ++result_.priced_out;
      vehicles_[request.vehicle].twin->set_host_rsu(request.to_rsu);
      schedule_next_handover(request.vehicle);
    }
    for (const auto& grant : outcome.grants) start_migration(pidx, grant);

    if (outcome.deferred > 0) {
      if (pools_[pidx].active_grants() > 0) {
        // Capacity is in flight; the next completion re-clears this book.
        return;
      }
      // Nothing will ever release capacity (the pool itself is smaller than
      // the clearable minimum): drop the requests instead of spinning.
      for (const auto& request : markets_[pidx].abandon_pending()) {
        ++result_.abandoned;
        vehicles_[request.vehicle].twin->set_host_rsu(request.to_rsu);
        schedule_next_handover(request.vehicle);
      }
    }
  }

  void start_migration(std::size_t pidx, const clearing_grant& grant) {
    auto& slot = vehicles_[grant.request.vehicle];
    const auto handle = pools_[pidx].allocate(grant.bandwidth_mhz);
    VTM_ASSERT(handle.has_value());

    // Pre-copy migration over the granted bandwidth (normalized MB/s rate:
    // MHz × spectral efficiency, matching the paper's unit convention).
    sim::precopy_params precopy;
    precopy.dirty_rate_mb_s = config_.dirty_rate_mb_s;
    precopy.stop_copy_threshold_mb = config_.stop_copy_threshold_mb;
    const double rate_mb_s =
        grant.bandwidth_mhz * budgets_[pidx].spectral_efficiency();
    const auto report = sim::run_precopy(*slot.twin, rate_mb_s, precopy);

    migration_record record;
    record.start_s = queue_.now();
    record.requested_s = grant.request.submitted_s;
    record.vehicle = grant.request.vehicle;
    record.from_rsu = grant.request.from_rsu;
    record.to_rsu = grant.request.to_rsu;
    record.price = grant.price;
    record.bandwidth_mhz = grant.bandwidth_mhz;
    record.cohort = grant.cohort;
    record.aotm_closed_form = aotm_closed_form(
        slot.twin->total_mb(), grant.bandwidth_mhz, budgets_[pidx]);
    record.aotm_simulated = aotm_from_migration(report);
    record.downtime_s = report.downtime_s;
    record.data_sent_mb = report.total_sent_mb;
    record.vmu_utility = grant.vmu_utility;
    record.msp_utility = grant.msp_utility;
    record.precopy_converged = report.converged;
    result_.max_cohort = std::max(result_.max_cohort, grant.cohort);

    queue_.schedule_in(report.total_time_s,
                       [this, pidx, grant_id = *handle, record] {
                         finish_migration(pidx, grant_id, record);
                       });
  }

  void finish_migration(std::size_t pidx, wireless::grant_id grant_id,
                        const migration_record& record) {
    pools_[pidx].release(grant_id);
    auto& slot = vehicles_[record.vehicle];
    slot.twin->set_host_rsu(record.to_rsu);
    slot.twin->record_migration();

    // Completion-based accounting: totals and records accrue together, so a
    // fully drained run always satisfies totals == Σ over `migrations`.
    ++result_.completed;
    result_.msp_total_utility += record.msp_utility;
    result_.vmu_total_utility += record.vmu_utility;
    sum_aotm_ += record.aotm_simulated;
    sum_amplification_ +=
        record.data_sent_mb / std::max(1e-9, slot.twin->total_mb());
    sum_price_bandwidth_ += record.price * record.bandwidth_mhz;
    sum_bandwidth_ += record.bandwidth_mhz;
    if (config_.record_migrations) result_.migrations.push_back(record);

    schedule_next_handover(record.vehicle);
    // A release frees capacity: re-clear any deferred requests immediately.
    if (markets_[pidx].pending() > 0)
      schedule_clearing(pidx, queue_.now());
  }

  const fleet_config& config_;
  util::rng gen_;
  sim::event_queue queue_;
  sim::rsu_chain chain_;
  double epoch_s_;
  std::vector<wireless::link_params> pool_links_;   ///< Per-pool channel.
  std::vector<wireless::link_budget> budgets_;      ///< Per-pool rates.
  std::vector<wireless::ofdma_pool> pools_;
  std::vector<spot_market> markets_;
  std::vector<bool> clearing_scheduled_;
  std::vector<vehicle_slot> vehicles_;
  fleet_result result_;
  double sum_aotm_ = 0.0;
  double sum_amplification_ = 0.0;
  double sum_price_bandwidth_ = 0.0;
  double sum_bandwidth_ = 0.0;
};

}  // namespace

fleet_result run_fleet_scenario(const fleet_config& config) {
  VTM_EXPECTS(config.rsu_count >= 1 || !config.rsu_positions_m.empty());
  VTM_EXPECTS(config.pricing == pricing_backend::oracle ||
              config.pricer != nullptr);
  VTM_EXPECTS(config.vehicle_count >= 1);
  VTM_EXPECTS(config.duration_s > 0.0);
  VTM_EXPECTS(config.min_speed_mps > 0.0);
  VTM_EXPECTS(config.max_speed_mps >= config.min_speed_mps);
  VTM_EXPECTS(config.min_data_mb > 0.0);
  VTM_EXPECTS(config.max_data_mb >= config.min_data_mb);
  VTM_EXPECTS(config.min_alpha > 0.0);
  VTM_EXPECTS(config.max_alpha >= config.min_alpha);
  VTM_EXPECTS(config.bandwidth_per_pool_mhz > 0.0);
  VTM_EXPECTS(config.clearing_epoch_s >= 0.0);
  VTM_EXPECTS(config.min_clearable_mhz > 0.0);

  fleet_engine engine(config);
  return engine.run();
}

std::vector<fleet_result> run_fleet_sweep(
    const fleet_config& base, std::span<const std::uint64_t> seeds,
    std::size_t threads) {
  std::vector<fleet_result> results(seeds.size());
  util::thread_pool pool(threads);
  pool.parallel_for(seeds.size(), [&](std::size_t i) {
    fleet_config config = base;
    config.seed = seeds[i];
    results[i] = run_fleet_scenario(config);
  });
  return results;
}

}  // namespace vtm::core
