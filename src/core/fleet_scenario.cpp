#include "core/fleet_scenario.hpp"

#include <cstdint>

#include "core/fleet_shard.hpp"
#include "util/thread_pool.hpp"

namespace vtm::core {

// The engine itself lives in core/fleet_shard.{hpp,cpp}: a run is a
// `shard_coordinator` owning `shard_count` shard-local engines (per-RSU
// pools and books over per-shard event queues) advanced in conservative
// time windows. `shard_count = 1` — the default, and the only topology the
// legacy shared pool supports — executes the exact pre-shard event
// sequence, so this entry point stayed bitwise stable across the refactor.

fleet_result run_fleet_scenario(const fleet_config& config) {
  validate_fleet_config(config);  // fail fast at the public entry point
  shard_coordinator coordinator(config);
  util::trace_span span(coordinator.coordinator_lane(), "fleet.run");
  span.arg("shards", static_cast<double>(coordinator.shard_count()));
  span.arg("vehicles", static_cast<double>(config.vehicle_count));
  return coordinator.run();
}

streaming_result run_streaming_fleet(const streaming_config& config) {
  validate_streaming_config(config);  // fail fast at the public entry point
  shard_coordinator coordinator(config);
  util::trace_span span(coordinator.coordinator_lane(), "fleet.stream");
  span.arg("shards", static_cast<double>(coordinator.shard_count()));
  span.arg("horizon_s", config.horizon_s.value());
  return coordinator.run_stream();
}

std::vector<fleet_result> run_fleet_sweep(
    const fleet_config& base, std::span<const std::uint64_t> seeds,
    std::size_t threads) {
  // Validate once before fanning out: a bad base config should throw here,
  // not as an exception ferried back from a worker thread per seed.
  validate_fleet_config(base);
  std::vector<fleet_result> results(seeds.size());
  util::thread_pool pool(threads);
  pool.parallel_for(seeds.size(), [&](std::size_t i) {
    fleet_config config = base;
    config.seed = seeds[i];
    results[i] = run_fleet_scenario(config);
  });
  return results;
}

}  // namespace vtm::core
