// POMDP formulation of the Stackelberg game (§IV-A).
//
// The MSP is the learning agent. At round k it observes the last L rounds of
// posted prices and VMU bandwidth demands (eq. 11), posts a price p_k, the
// VMUs best-respond through the market (Algorithm 1 line 7), and the MSP
// receives the binary reward of eq. 12: 1 when its utility matches-or-beats
// the best utility seen so far, else 0.
//
// Implementation notes (documented substitutions, DESIGN.md §5):
//  * Actions arrive in the normalized box [-1, 1] and map affinely onto
//    [C, p_max]; observations are normalized (price / p_max, demand / B_max)
//    so the network sees O(1) inputs.
//  * "Matches" uses a relative tolerance η, since a continuous stochastic
//    policy almost never reproduces U_best exactly.
//  * Before round L the history is filled with random rounds (the paper:
//    "generated randomly during the initial stage").
#pragma once

#include <cstdint>
#include <vector>

#include "core/market.hpp"
#include "rl/env.hpp"
#include "rl/vector_env.hpp"
#include "util/rng.hpp"

namespace vtm::core {

/// Reward definitions selectable for the ablation study.
enum class reward_mode {
  paper_binary,       ///< Eq. 12 with per-episode U_best (reset each episode).
  persistent_binary,  ///< Eq. 12 with U_best persisting across episodes.
  shaped,             ///< Normalized utility U_s / U_oracle (dense signal).
};

/// Name of a reward mode ("paper-binary", ...).
[[nodiscard]] const char* to_string(reward_mode mode) noexcept;

/// Environment knobs (paper defaults).
struct pricing_env_config {
  std::size_t history_length = 4;        ///< L — observed past rounds.
  std::size_t rounds_per_episode = 100;  ///< K — episode length.
  reward_mode mode = reward_mode::paper_binary;
  double reward_tolerance = 0.01;        ///< η — "matched best" tolerance.
  std::uint64_t seed = 7;                ///< Initial-history randomization.
};

/// The bandwidth-pricing POMDP over a migration market.
class pricing_env final : public rl::environment {
 public:
  /// Validates the configuration (L >= 1, K >= 1, η in [0, 1)).
  pricing_env(migration_market market, const pricing_env_config& config);

  /// Observation width: L · (1 + N).
  [[nodiscard]] std::size_t observation_dim() const override;
  /// One scalar action (the price).
  [[nodiscard]] std::size_t action_dim() const override { return 1; }
  /// Normalized action box.
  [[nodiscard]] double action_low() const override { return -1.0; }
  [[nodiscard]] double action_high() const override { return 1.0; }

  nn::tensor reset() override;
  rl::step_result step(const nn::tensor& action) override;

  /// Affine map from a raw action in [-1, 1] to a price in [C, p_max]
  /// (out-of-box actions are clamped first).
  [[nodiscard]] double price_from_action(double raw_action) const;

  /// Inverse of price_from_action (for tests and diagnostics).
  [[nodiscard]] double action_from_price(double price) const;

  /// The underlying market.
  [[nodiscard]] const migration_market& market() const noexcept {
    return market_;
  }

  /// U_best tracked by the binary reward (−inf before the first step).
  [[nodiscard]] double best_utility() const noexcept { return best_utility_; }

  /// Rounds taken in the current episode.
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  [[nodiscard]] const pricing_env_config& config() const noexcept {
    return config_;
  }

 private:
  void push_history(double price, const std::vector<double>& demands);
  [[nodiscard]] nn::tensor observation_tensor() const;
  [[nodiscard]] double reward_for(double utility);

  migration_market market_;
  pricing_env_config config_;
  util::rng gen_;
  std::vector<double> history_;  ///< L·(1+N) ring, flattened oldest-first.
  double best_utility_;
  double shaped_scale_ = 1.0;
  std::size_t round_ = 0;
};

/// Factory building pricing_env replicas over the same market for
/// rl::vector_env. Replica 0 keeps `config.seed` exactly — so a B=1
/// vector_env reproduces the plain single environment bitwise — and replica
/// i > 0 derives an independent stream via splitmix64(seed, i) so parallel
/// rollouts decorrelate their warm-up histories.
[[nodiscard]] rl::env_factory make_pricing_env_factory(
    const market_params& params, const pricing_env_config& config);

/// The seed replica i receives from make_pricing_env_factory (for tests).
[[nodiscard]] std::uint64_t pricing_env_replica_seed(std::uint64_t seed,
                                                     std::size_t index);

}  // namespace vtm::core
