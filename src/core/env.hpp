// POMDP formulation of the Stackelberg game (§IV-A).
//
// The MSP is the learning agent. At round k it observes the last L rounds of
// posted prices and VMU bandwidth demands (eq. 11), posts a price p_k, the
// VMUs best-respond through the market (Algorithm 1 line 7), and the MSP
// receives the binary reward of eq. 12: 1 when its utility matches-or-beats
// the best utility seen so far, else 0.
//
// Implementation notes (documented substitutions, DESIGN.md §5):
//  * Actions arrive in the normalized box [-1, 1] and map affinely onto
//    [C, p_max]; observations are normalized (price / p_max, demand / B_max)
//    so the network sees O(1) inputs.
//  * "Matches" uses a relative tolerance η, since a continuous stochastic
//    policy almost never reproduces U_best exactly.
//  * Before round L the history is filled with random rounds (the paper:
//    "generated randomly during the initial stage").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/market.hpp"
#include "core/pricing_policy.hpp"
#include "rl/env.hpp"
#include "rl/vector_env.hpp"
#include "util/rng.hpp"

namespace vtm::core {

/// Reward definitions selectable for the ablation study.
enum class reward_mode {
  paper_binary,       ///< Eq. 12 with per-episode U_best (reset each episode).
  persistent_binary,  ///< Eq. 12 with U_best persisting across episodes.
  shaped,             ///< Normalized utility U_s / U_oracle (dense signal).
};

/// Name of a reward mode ("paper-binary", ...).
[[nodiscard]] const char* to_string(reward_mode mode) noexcept;

/// Environment knobs (paper defaults).
struct pricing_env_config {
  std::size_t history_length = 4;        ///< L — observed past rounds.
  std::size_t rounds_per_episode = 100;  ///< K — episode length.
  reward_mode mode = reward_mode::paper_binary;
  double reward_tolerance = 0.01;        ///< η — "matched best" tolerance.
  std::uint64_t seed = 7;                ///< Initial-history randomization.
};

/// The bandwidth-pricing POMDP over a migration market.
class pricing_env final : public rl::environment {
 public:
  /// Validates the configuration (L >= 1, K >= 1, η in [0, 1)).
  pricing_env(migration_market market, const pricing_env_config& config);

  /// Observation width: L · (1 + N).
  [[nodiscard]] std::size_t observation_dim() const override;
  /// One scalar action (the price).
  [[nodiscard]] std::size_t action_dim() const override { return 1; }
  /// Normalized action box.
  [[nodiscard]] double action_low() const override { return -1.0; }
  [[nodiscard]] double action_high() const override { return 1.0; }

  nn::tensor reset() override;
  rl::step_result step(const nn::tensor& action) override;

  /// Affine map from a raw action in [-1, 1] to a price in [C, p_max]
  /// (out-of-box actions are clamped first).
  [[nodiscard]] double price_from_action(double raw_action) const;

  /// Inverse of price_from_action (for tests and diagnostics).
  [[nodiscard]] double action_from_price(double price) const;

  /// The underlying market.
  [[nodiscard]] const migration_market& market() const noexcept {
    return market_;
  }

  /// U_best tracked by the binary reward (−inf before the first step).
  [[nodiscard]] double best_utility() const noexcept { return best_utility_; }

  /// Rounds taken in the current episode.
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  [[nodiscard]] const pricing_env_config& config() const noexcept {
    return config_;
  }

 private:
  void push_history(double price, const std::vector<double>& demands);
  [[nodiscard]] nn::tensor observation_tensor() const;
  [[nodiscard]] double reward_for(double utility);

  migration_market market_;
  pricing_env_config config_;
  util::rng gen_;
  std::vector<double> history_;  ///< L·(1+N) ring, flattened oldest-first.
  double best_utility_;
  double shaped_scale_ = 1.0;
  std::size_t round_ = 0;
};

/// Factory building pricing_env replicas over the same market for
/// rl::vector_env. Replica 0 keeps `config.seed` exactly — so a B=1
/// vector_env reproduces the plain single environment bitwise — and replica
/// i > 0 derives an independent stream via splitmix64(seed, i) so parallel
/// rollouts decorrelate their warm-up histories.
[[nodiscard]] rl::env_factory make_pricing_env_factory(
    const market_params& params, const pricing_env_config& config);

/// The seed replica i receives from make_pricing_env_factory (for tests).
[[nodiscard]] std::uint64_t pricing_env_replica_seed(std::uint64_t seed,
                                                     std::size_t index);

// --- cohort-conditioned pricing environment (fleet pricer training) --------

/// One harvested clearing cohort prepared for training: its market
/// evaluator, the partial-information feature row the policy sees, and the
/// oracle label normalizing the reward.
struct prepared_cohort {
  migration_market market;        ///< Cohort market over the pool remainder.
  std::vector<double> features;   ///< cohort_features of the observation.
  double oracle_price = 0.0;      ///< solve_equilibrium price (label).
  double oracle_utility = 0.0;    ///< Oracle U_s (reward scale).
};

/// Prepare harvested snapshots for training. Degenerate cohorts whose oracle
/// utility is ~0 (nothing to sell or nobody buys) are dropped — a ratio
/// reward against them is undefined.
[[nodiscard]] std::vector<prepared_cohort> prepare_cohorts(
    std::span<const cohort_snapshot> snapshots);

/// Knobs of the cohort-conditioned environment.
struct fleet_pricing_env_config {
  std::size_t rounds_per_episode = 64;  ///< Cohorts priced per episode.
  std::uint64_t seed = 7;               ///< Cohort-draw randomization.
};

/// Contextual pricing environment over a bank of harvested cohorts: each
/// round shows the partial-information features of one cohort, the action
/// posts a price, and the reward is the MSP utility ratio U_s(p)/U_s(oracle)
/// on that cohort. Rounds are independent draws (the fleet's clearing
/// sequence is not replayed), which matches the per-clearing decision the
/// deployed `learned_policy` faces.
class fleet_pricing_env final : public rl::environment {
 public:
  /// The bank must be non-null and non-empty; shared (const) across replicas.
  fleet_pricing_env(
      std::shared_ptr<const std::vector<prepared_cohort>> cohorts,
      const fleet_pricing_env_config& config);

  [[nodiscard]] std::size_t observation_dim() const override {
    return cohort_feature_dim;
  }
  [[nodiscard]] std::size_t action_dim() const override { return 1; }
  [[nodiscard]] double action_low() const override { return -1.0; }
  [[nodiscard]] double action_high() const override { return 1.0; }

  nn::tensor reset() override;
  rl::step_result step(const nn::tensor& action) override;

  /// The squashed_price map (tanh + headroom) onto the current cohort's
  /// price box [C, p_max] — identical to learned_pricer::price_from_action,
  /// so training and deployment see the same action→price map.
  [[nodiscard]] double price_from_action(double raw_action) const;

  /// The cohort the next step() will price.
  [[nodiscard]] const prepared_cohort& current() const;

  [[nodiscard]] const fleet_pricing_env_config& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] nn::tensor observation_tensor() const;
  void draw_cohort();

  std::shared_ptr<const std::vector<prepared_cohort>> cohorts_;
  fleet_pricing_env_config config_;
  util::rng gen_;
  std::size_t current_ = 0;
  std::size_t round_ = 0;
};

/// Factory building fleet_pricing_env replicas over one shared cohort bank
/// for rl::vector_env. Replica 0 keeps `config.seed` exactly; replica i > 0
/// derives an independent stream via pricing_env_replica_seed.
[[nodiscard]] rl::env_factory make_fleet_pricing_env_factory(
    std::shared_ptr<const std::vector<prepared_cohort>> cohorts,
    const fleet_pricing_env_config& config);

}  // namespace vtm::core
