#include "core/immersion_models.hpp"

#include <algorithm>
#include <cmath>

#include "game/maximize.hpp"
#include "util/contracts.hpp"

namespace vtm::core {

double log_immersion::gain(double alpha, double aotm) const {
  VTM_EXPECTS(alpha > 0.0);
  VTM_EXPECTS(aotm > 0.0);
  return alpha * std::log(1.0 + 1.0 / aotm);
}

power_immersion::power_immersion(double theta) : theta_(theta) {
  VTM_EXPECTS(theta > 0.0 && theta < 1.0);
}

double power_immersion::gain(double alpha, double aotm) const {
  VTM_EXPECTS(alpha > 0.0);
  VTM_EXPECTS(aotm > 0.0);
  return alpha * std::pow(1.0 / aotm, theta_);
}

saturating_immersion::saturating_immersion(double theta) : theta_(theta) {
  VTM_EXPECTS(theta > 0.0);
}

double saturating_immersion::gain(double alpha, double aotm) const {
  VTM_EXPECTS(alpha > 0.0);
  VTM_EXPECTS(aotm > 0.0);
  return alpha * (1.0 - std::exp(-theta_ / aotm));
}

generalized_market::generalized_market(market_params params,
                                       const immersion_model& model)
    : params_(std::move(params)), link_(params_.link), model_(model) {
  VTM_EXPECTS(!params_.vmus.empty());
  VTM_EXPECTS(params_.bandwidth_cap_mhz.value() > 0.0);
  VTM_EXPECTS(params_.unit_cost > 0.0);
  VTM_EXPECTS(params_.price_cap >= params_.unit_cost);
  for (const auto& vmu : params_.vmus) {
    VTM_EXPECTS(vmu.alpha > 0.0);
    VTM_EXPECTS(vmu.data_mb > 0.0);
  }
}

double generalized_market::vmu_utility(std::size_t n, double bandwidth_mhz,
                                       double price) const {
  VTM_EXPECTS(n < vmu_count());
  VTM_EXPECTS(bandwidth_mhz >= 0.0);
  if (bandwidth_mhz == 0.0) return 0.0;
  const double aotm =
      params_.vmus[n].data_mb / (bandwidth_mhz * spectral_efficiency());
  return model_.gain(params_.vmus[n].alpha, aotm) - price * bandwidth_mhz;
}

double generalized_market::best_response(std::size_t n, double price) const {
  VTM_EXPECTS(price > 0.0);
  const auto result = game::golden_section_maximize(
      [&](double b) { return vmu_utility(n, b, price); }, 0.0,
      params_.bandwidth_cap_mhz.value(), 1e-9);
  return result.value > 0.0 ? result.arg : 0.0;
}

std::vector<double> generalized_market::demands(double price) const {
  std::vector<double> out(vmu_count());
  double total = 0.0;
  for (std::size_t n = 0; n < vmu_count(); ++n) {
    out[n] = best_response(n, price);
    total += out[n];
  }
  if (total > params_.bandwidth_cap_mhz.value() && total > 0.0) {
    const double scale = params_.bandwidth_cap_mhz.value() / total;
    for (double& b : out) b *= scale;
  }
  return out;
}

double generalized_market::leader_utility(double price) const {
  double total = 0.0;
  for (double b : demands(price)) total += b;
  return (price - params_.unit_cost) * total;
}

generalized_market::solution generalized_market::solve(
    std::size_t grid_points) const {
  VTM_EXPECTS(grid_points >= 2);
  const double lo = params_.unit_cost;
  const double hi = params_.price_cap;
  double best_price = lo;
  double best_value = leader_utility(lo);
  for (std::size_t i = 1; i < grid_points; ++i) {
    const double p = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(grid_points - 1);
    const double v = leader_utility(p);
    if (v > best_value) {
      best_value = v;
      best_price = p;
    }
  }
  const double cell = (hi - lo) / static_cast<double>(grid_points - 1);
  const auto refined = game::golden_section_maximize(
      [&](double p) { return leader_utility(p); },
      std::max(lo, best_price - cell), std::min(hi, best_price + cell), 1e-9);
  const double price =
      refined.value >= best_value ? refined.arg : best_price;

  solution out;
  out.price = price;
  out.demands = demands(price);
  for (double b : out.demands) out.total_demand += b;
  out.leader_utility = (price - params_.unit_cost) * out.total_demand;
  for (std::size_t n = 0; n < vmu_count(); ++n)
    out.total_vmu_utility += vmu_utility(n, out.demands[n], price);
  return out;
}

}  // namespace vtm::core
