// The learning-based incentive mechanism — the paper's headline system.
//
// Wires the migration market into the pricing POMDP, trains the MSP's PPO
// agent (Algorithm 1), evaluates the learned policy deterministically, and
// runs the paper's baseline schemes (random / greedy) plus the analytic
// Stackelberg oracle for comparison. One call produces everything a figure
// needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "core/equilibrium.hpp"
#include "core/fleet_scenario.hpp"
#include "core/market.hpp"
#include "core/pricing_policy.hpp"
#include "rl/agents.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "rl/trainer.hpp"

namespace vtm::core {

/// Batched-rollout knobs for the vectorized training path.
struct rollout_config {
  /// Parallel environment replicas B. 1 uses the single-env trainer (the
  /// seed-exact legacy path); > 1 collects lockstep B-row rollouts through
  /// rl::vector_env + rl::vector_trainer.
  std::size_t num_envs = 1;
  /// Worker threads sharding environment steps (0 = serial stepping).
  std::size_t threads = 0;
  /// Fast-math rollout sampling (rl::trainer_config::fast_rollout).
  bool fast_rollout = false;
};

/// Everything configurable about one mechanism run.
struct mechanism_config {
  pricing_env_config env{};        ///< L, K, reward mode, tolerance.
  rl::trainer_config trainer{};    ///< E, K, |I| (K mirrored from env).
  rl::ppo_config ppo{};            ///< Learning hyper-parameters.
  rollout_config rollout{};        ///< Batched-rollout engine (B, threads).
  std::vector<std::size_t> hidden{64, 64};  ///< Trunk sizes (paper: 2x64).
  double initial_log_std = -0.7;   ///< Exploration scale in action units.
  std::uint64_t seed = 42;         ///< Master seed (env/net/trainer derive).

  /// Paper-faithful hyper-parameters (§V-A): E=500, K=100, L=4, |I|=20,
  /// M=10, lr=1e-5, 2x64 network. Note: with lr=1e-5 convergence needs the
  /// full 500-episode budget; the library default (this struct's defaults
  /// with lr from rl::ppo_config) trades strict faithfulness for wall-clock.
  [[nodiscard]] static mechanism_config paper();
};

/// Summary of a non-learning baseline scheme's performance.
struct baseline_result {
  std::string name;            ///< "random" or "greedy".
  double mean_utility = 0.0;   ///< Mean per-round MSP utility (across episodes).
  double best_utility = 0.0;   ///< Best single-round utility observed.
  double final_utility = 0.0;  ///< Mean last-round utility.
  double mean_price = 0.0;     ///< Mean posted price.
  double mean_total_demand = 0.0;
  double mean_vmu_utility = 0.0;  ///< Mean per-round total VMU utility.
};

/// Full outcome of training + evaluation on one market.
struct mechanism_result {
  equilibrium oracle;                       ///< Analytic SE for reference.
  std::vector<rl::episode_stats> history;   ///< Per-episode training curve.
  rl::episode_stats final_eval;             ///< Deterministic post-training run.
  double learned_price = 0.0;               ///< Mean price of final_eval.
  double learned_utility = 0.0;             ///< Mean MSP utility of final_eval.
  double learned_total_demand = 0.0;        ///< At the learned price.
  double learned_vmu_utility = 0.0;         ///< Total VMU utility at it.
  /// Optimality ratio vs the oracle (1.0 = matched the equilibrium).
  [[nodiscard]] double optimality() const noexcept {
    return oracle.leader_utility > 0.0
               ? learned_utility / oracle.leader_utility
               : 0.0;
  }
};

/// Train the PPO-based mechanism on a market and evaluate it.
[[nodiscard]] mechanism_result run_learning_mechanism(
    const market_params& params, const mechanism_config& config = {},
    const rl::trainer::episode_callback& on_episode = {});

/// Run a baseline scheme for `episodes` episodes of `rounds` rounds each.
[[nodiscard]] baseline_result run_baseline(const market_params& params,
                                           rl::pricing_agent& agent,
                                           std::size_t episodes,
                                           std::size_t rounds,
                                           std::uint64_t seed);

/// Convenience: run both paper baselines with the given budget.
[[nodiscard]] std::vector<baseline_result> run_paper_baselines(
    const market_params& params, std::size_t episodes, std::size_t rounds,
    std::uint64_t seed);

// --- fleet pricer training (RL-priced spot markets) -------------------------

/// Everything configurable about one fleet-pricer training run. Cohorts are
/// harvested by replaying the `harvest` fleet scenarios with the oracle
/// backend and `record_cohorts` on; mixing regimes (e.g. a 100-vehicle and a
/// 5000-vehicle fleet) trains one policy covering both.
struct fleet_pricer_config {
  std::vector<fleet_config> harvest;     ///< Scenarios to harvest from.
  std::size_t episodes = 300;            ///< Training episodes.
  std::size_t rounds_per_episode = 64;   ///< Cohorts priced per episode.
  std::size_t update_interval = 16;      ///< PPO cadence (lockstep rounds).
  rl::ppo_config ppo{};                  ///< lr defaults overridden to 3e-4.
  rollout_config rollout{4, 0, false};   ///< Batched collection (B=4).
  std::vector<std::size_t> hidden{64, 64};
  double initial_log_std = -0.7;
  std::uint64_t seed = 42;

  fleet_pricer_config() {
    ppo.learning_rate = 3e-4;
    // Cohort pricing is a contextual bandit: each round's reward depends
    // only on the current cohort and price, and cohorts are independent
    // draws. γ = 0 makes the advantage r − V(s) exactly the per-cohort
    // pricing error instead of mixing in future-draw randomness.
    ppo.gamma = 0.0;
    ppo.gae_lambda = 0.0;
  }
};

/// Outcome of train_fleet_pricer.
struct fleet_pricer_result {
  /// The trained pricer, ready to plug into fleet_config::{pricing, pricer}.
  std::shared_ptr<const learned_pricer> pricer;
  std::string checkpoint;             ///< nn::serialize blob of the policy.
  std::size_t cohorts = 0;            ///< Usable cohorts after preparation.
  std::vector<rl::episode_stats> history;  ///< Training curve (ratio return).
  /// Mean deterministic U_s(p)/U_s(oracle) across the cohort bank.
  double eval_mean_ratio = 0.0;
  double eval_min_ratio = 0.0;
};

/// Train the partial-information fleet pricer on cohorts harvested from the
/// given scenarios, through the batched rl::vector_trainer. Deterministic
/// given the seeds. Requires at least one harvest scenario that produces
/// non-degenerate cohorts.
[[nodiscard]] fleet_pricer_result train_fleet_pricer(
    const fleet_pricer_config& config,
    const rl::trainer::episode_callback& on_episode = {});

}  // namespace vtm::core
