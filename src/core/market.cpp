#include "core/market.hpp"

#include <cmath>

#include "core/aotm.hpp"
#include "util/contracts.hpp"

namespace vtm::core {

migration_market::migration_market(market_params params)
    : params_(std::move(params)), link_(params_.link) {
  VTM_EXPECTS(!params_.vmus.empty());
  VTM_EXPECTS(params_.bandwidth_cap_mhz.value() > 0.0);
  VTM_EXPECTS(params_.unit_cost > 0.0);
  VTM_EXPECTS(params_.price_cap >= params_.unit_cost);
  for (const auto& vmu : params_.vmus) {
    VTM_EXPECTS(vmu.alpha > 0.0);
    VTM_EXPECTS(vmu.data_mb > 0.0);
  }
  VTM_ENSURES(link_.spectral_efficiency() > 0.0);
}

double migration_market::kappa(std::size_t n) const {
  VTM_EXPECTS(n < vmu_count());
  return params_.vmus[n].data_mb / spectral_efficiency();
}

double migration_market::best_response(std::size_t n, double price) const {
  VTM_EXPECTS(n < vmu_count());
  VTM_EXPECTS(price > 0.0);
  const double interior = params_.vmus[n].alpha / price - kappa(n);
  return interior > 0.0 ? interior : 0.0;
}

std::vector<double> migration_market::unconstrained_demands(
    double price) const {
  std::vector<double> out(vmu_count());
  for (std::size_t n = 0; n < vmu_count(); ++n)
    out[n] = best_response(n, price);
  return out;
}

std::vector<double> migration_market::demands(double price) const {
  std::vector<double> out = unconstrained_demands(price);
  double total = 0.0;
  for (double b : out) total += b;
  if (total > params_.bandwidth_cap_mhz.value() && total > 0.0) {
    const double scale = params_.bandwidth_cap_mhz.value() / total;
    for (double& b : out) b *= scale;
  }
  return out;
}

double migration_market::aotm(std::size_t n, double bandwidth_mhz) const {
  VTM_EXPECTS(n < vmu_count());
  return aotm_closed_form(params_.vmus[n].data_mb, bandwidth_mhz,
                          spectral_efficiency());
}

double migration_market::vmu_utility(std::size_t n, double bandwidth_mhz,
                                     double price) const {
  VTM_EXPECTS(n < vmu_count());
  VTM_EXPECTS(bandwidth_mhz >= 0.0);
  if (bandwidth_mhz == 0.0) return 0.0;
  const double gain =
      immersion(params_.vmus[n].alpha, aotm(n, bandwidth_mhz));
  return gain - price * bandwidth_mhz;
}

double migration_market::leader_utility(
    double price, std::span<const double> demands) const {
  VTM_EXPECTS(demands.size() == vmu_count());
  double total = 0.0;
  for (double b : demands) {
    VTM_EXPECTS(b >= 0.0);
    total += b;
  }
  return (price - params_.unit_cost) * total;
}

double migration_market::leader_utility(double price) const {
  const auto allocation = demands(price);
  return leader_utility(price, allocation);
}

double migration_market::total_demand(double price) const {
  double total = 0.0;
  for (double b : demands(price)) total += b;
  return total;
}

double migration_market::total_vmu_utility(double price) const {
  const auto allocation = demands(price);
  double total = 0.0;
  for (std::size_t n = 0; n < vmu_count(); ++n)
    total += vmu_utility(n, allocation[n], price);
  return total;
}

}  // namespace vtm::core
