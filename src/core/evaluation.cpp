#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/serialize.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace vtm::core {

namespace {

std::size_t convergence_episode(const std::vector<rl::episode_stats>& history,
                                double oracle_utility) {
  const double target = 0.95 * oracle_utility;
  std::vector<double> utilities;
  utilities.reserve(history.size());
  for (const auto& episode : history)
    utilities.push_back(episode.mean_utility);
  const auto smoothed = util::moving_average(utilities, 10);
  for (std::size_t e = 0; e < smoothed.size(); ++e)
    if (smoothed[e] >= target) return e;
  return history.size();
}

}  // namespace

robustness_report evaluate_robustness(const market_params& params,
                                      const mechanism_config& base,
                                      std::size_t n_seeds) {
  VTM_EXPECTS(n_seeds >= 1);
  robustness_report report;
  report.oracle = solve_equilibrium(migration_market(params));
  report.min_optimality = 1e300;

  util::running_stats optimality_stats;
  util::running_stats convergence_stats;
  for (std::size_t i = 0; i < n_seeds; ++i) {
    mechanism_config config = base;
    config.seed = base.seed + 1000 * (i + 1);
    const auto result = run_learning_mechanism(params, config);

    seed_outcome outcome;
    outcome.seed = config.seed;
    outcome.optimality = result.optimality();
    outcome.learned_price = result.learned_price;
    outcome.final_return = result.history.back().episode_return;
    outcome.convergence_episode =
        convergence_episode(result.history, report.oracle.leader_utility);
    report.outcomes.push_back(outcome);

    optimality_stats.push(outcome.optimality);
    convergence_stats.push(static_cast<double>(outcome.convergence_episode));
    report.min_optimality =
        std::min(report.min_optimality, outcome.optimality);
  }
  report.mean_optimality = optimality_stats.mean();
  report.std_optimality = optimality_stats.stddev();
  report.mean_convergence_episode = convergence_stats.mean();
  return report;
}

checkpointed_result train_with_checkpoint(const market_params& params,
                                          const mechanism_config& config) {
  checkpointed_result out;

  migration_market market(params);
  pricing_env_config env_config = config.env;
  env_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  pricing_env env(market, env_config);

  util::rng net_gen(config.seed);
  rl::actor_critic_config net_config;
  net_config.obs_dim = env.observation_dim();
  net_config.act_dim = env.action_dim();
  net_config.hidden = config.hidden;
  net_config.initial_log_std = config.initial_log_std;
  rl::actor_critic policy(net_config, net_gen);

  util::rng ppo_gen(config.seed + 1);
  rl::ppo learner(policy, config.ppo, ppo_gen);

  rl::trainer_config trainer_config = config.trainer;
  trainer_config.rounds_per_episode = env_config.rounds_per_episode;
  trainer_config.seed = config.seed + 2;
  rl::trainer driver(env, policy, learner, trainer_config);

  out.result.oracle = solve_equilibrium(market);
  out.result.history = driver.train();
  out.result.final_eval = driver.evaluate();
  out.result.learned_utility = out.result.final_eval.mean_utility;
  out.result.learned_price =
      env.price_from_action(out.result.final_eval.mean_action);
  out.result.learned_total_demand =
      market.total_demand(out.result.learned_price);
  out.result.learned_vmu_utility =
      market.total_vmu_utility(out.result.learned_price);

  std::ostringstream blob;
  auto parameters = policy.parameters();
  nn::save_parameters(blob, parameters);
  out.checkpoint = blob.str();
  return out;
}

double evaluate_checkpoint(const market_params& params,
                           const mechanism_config& config,
                           const std::string& checkpoint) {
  migration_market market(params);
  pricing_env_config env_config = config.env;
  env_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  pricing_env env(market, env_config);

  util::rng net_gen(config.seed);
  rl::actor_critic_config net_config;
  net_config.obs_dim = env.observation_dim();
  net_config.act_dim = env.action_dim();
  net_config.hidden = config.hidden;
  net_config.initial_log_std = config.initial_log_std;
  rl::actor_critic policy(net_config, net_gen);

  auto parameters = policy.parameters();
  std::istringstream blob(checkpoint);
  nn::load_parameters(blob, parameters);

  // One deterministic episode.
  nn::tensor observation = env.reset();
  double total_utility = 0.0;
  std::size_t rounds = 0;
  for (std::size_t k = 0; k < env_config.rounds_per_episode; ++k) {
    const auto sample = policy.act_deterministic(observation);
    const auto result = env.step(sample.action);
    total_utility += result.info.at("leader_utility");
    observation = result.observation;
    ++rounds;
    if (result.done) break;
  }
  return total_utility / static_cast<double>(rounds);
}

}  // namespace vtm::core
