#include "core/competitive_market.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/contracts.hpp"
#include "util/trace.hpp"

namespace vtm::core {

namespace {

/// Map the single-MSP roster onto the monopoly clearing engine (the M = 1
/// delegation must be bitwise the joint path, so it *is* the joint path).
spot_market_config monopoly_config(const competitive_market_config& config) {
  spot_market_config mono;
  mono.discipline = clearing_discipline::joint;
  mono.link = config.link;
  mono.unit_cost = config.msps.front().unit_cost;
  mono.price_cap = config.msps.front().price_cap;
  mono.min_clearable_mhz = config.min_clearable_mhz;
  mono.policy = config.policy;
  mono.pool_capacity_mhz = config.msps.front().bandwidth_per_pool_mhz;
  mono.trace = config.trace;
  return mono;
}

}  // namespace

competitive_market::competitive_market(competitive_market_config config)
    : config_(std::move(config)) {
  VTM_EXPECTS(!config_.msps.empty());
  VTM_EXPECTS(config_.share_sharpness > 0.0);
  VTM_EXPECTS(config_.min_clearable_mhz > util::megahertz{0.0});
  VTM_EXPECTS(config_.fixed_point_tol > 0.0);
  for (const auto& msp : config_.msps) {
    VTM_EXPECTS(std::isfinite(msp.chain_offset_m.value()));
    VTM_EXPECTS(msp.unit_cost > 0.0);
    VTM_EXPECTS(msp.price_cap >= msp.unit_cost);
    VTM_EXPECTS(msp.bandwidth_per_pool_mhz > util::megahertz{0.0});
  }
  if (config_.learned_msp != no_learned_msp) {
    VTM_EXPECTS(config_.learned_msp < config_.msps.size());
    VTM_EXPECTS(config_.pricer != nullptr);
    VTM_EXPECTS(config_.pricer->config().competitor_aware);
  }
  if (config_.msps.size() == 1) monopoly_.emplace(monopoly_config(config_));
  warm_prices_.assign(config_.msps.size(), 0.0);
  warm_valid_.assign(config_.msps.size(), false);
}

void competitive_market::submit(clearing_request request) {
  if (monopoly_) {
    monopoly_->submit(std::move(request));
    return;
  }
  VTM_EXPECTS(request.profile.alpha > 0.0);
  VTM_EXPECTS(request.profile.data_mb > 0.0);
  pending_.push_back(std::move(request));
}

std::size_t competitive_market::pending() const noexcept {
  return monopoly_ ? monopoly_->pending() : pending_.size();
}

std::vector<clearing_request>&
competitive_market::pending_requests() noexcept {
  return monopoly_ ? monopoly_->pending_requests() : pending_;
}

std::vector<clearing_request> competitive_market::abandon_pending() {
  if (monopoly_) return monopoly_->abandon_pending();
  std::vector<clearing_request> dropped = std::move(pending_);
  pending_.clear();
  return dropped;
}

competitive_outcome competitive_market::clear(
    std::span<const double> available_mhz) {
  VTM_EXPECTS(available_mhz.size() == config_.msps.size());
  for (const double mhz : available_mhz) VTM_EXPECTS(mhz >= 0.0);

  if (monopoly_) {
    clearing_outcome mono = monopoly_->clear(available_mhz.front());
    competitive_outcome outcome;
    outcome.deferred = mono.deferred;
    outcome.markets_cleared = mono.markets_cleared;
    if (mono.markets_cleared > 0) outcome.prices = {mono.price};
    outcome.priced_out = std::move(mono.priced_out);
    outcome.grants.reserve(mono.grants.size());
    for (auto& grant : mono.grants) {
      competitive_grant converted;
      converted.bandwidth_mhz = grant.bandwidth_mhz;
      converted.price = grant.price;
      converted.vmu_utility = grant.vmu_utility;
      converted.msp_utility = grant.msp_utility;
      converted.cohort = grant.cohort;
      converted.slices = {
          {0, grant.bandwidth_mhz, grant.price, grant.msp_utility}};
      converted.request = std::move(grant.request);
      outcome.grants.push_back(std::move(converted));
    }
    return outcome;
  }
  return clear_oligopoly(available_mhz);
}

competitive_outcome competitive_market::clear_oligopoly(
    std::span<const double> available_mhz) {
  competitive_outcome outcome;
  if (pending_.empty()) return outcome;
  util::trace_span span(config_.trace, "comarket.clear");
  span.arg("cohort", static_cast<double>(pending_.size()));

  // Sellers with less than the clearable minimum left sit this clearing out
  // (the monopoly engine's defer-below-minimum rule, applied per MSP).
  std::vector<std::size_t> active;  // participating -> roster index
  for (std::size_t m = 0; m < config_.msps.size(); ++m)
    if (available_mhz[m] >= config_.min_clearable_mhz.value())
      active.push_back(m);
  if (active.empty()) {
    outcome.deferred = pending_.size();
    return outcome;
  }

  // The cohort as one oligopoly market over each seller's remainder.
  multi_msp_params params;
  params.msps.reserve(active.size());
  for (const std::size_t m : active)
    params.msps.push_back({config_.msps[m].unit_cost, available_mhz[m],
                           config_.msps[m].price_cap});
  params.vmus.reserve(pending_.size());
  for (const auto& request : pending_) params.vmus.push_back(request.profile);
  params.link = config_.link;
  params.share_sharpness = config_.share_sharpness;
  const multi_msp_market market(std::move(params));

  // Warm start: seed the solve from the prices this book's sellers posted
  // in their most recent clearing (cohorts drift slowly between clearings,
  // so the previous fixed point is a few sweeps from the new one). Sellers
  // with no memory yet get their cap midpoint; when *no* active seller has
  // memory — the first clearing of a run — the solve cold-starts and is
  // bitwise-identical to the memoryless solver.
  std::vector<double> warm(active.size(), 0.0);
  bool any_warm = false;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const std::size_t m = active[i];
    if (warm_valid_[m]) {
      warm[i] = warm_prices_[m];
      any_warm = true;
    } else {
      warm[i] = 0.5 * (config_.msps[m].unit_cost + config_.msps[m].price_cap);
    }
  }
  price_competition_options solve_options;
  solve_options.tol = config_.fixed_point_tol;
  solve_options.max_sweeps = config_.max_sweeps;
  if (any_warm) solve_options.warm_start = warm;
  outcome.warm_started = any_warm;

  // Price vector: all-scripted best-response fixed point, or the learned
  // seat's posted price with the scripted rivals best-responding to it. The
  // scripted equilibrium doubles as the rival-price summary the learned
  // observation reads — the seat sees where competition *would* settle.
  std::vector<double> prices;
  const auto learned_it = config_.learned_msp == no_learned_msp
                              ? active.end()
                              : std::find(active.begin(), active.end(),
                                          config_.learned_msp);
  if (learned_it != active.end()) {
    const std::size_t seat = static_cast<std::size_t>(
        learned_it - active.begin());
    const auto scripted = solve_price_competition(market, solve_options);
    outcome.converged = scripted.converged;
    outcome.certified = scripted.certified;
    outcome.solver_sweeps += scripted.iterations;
    outcome.objective_evals += scripted.objective_evals;
    outcome.residual = scripted.residual;

    const auto& own = config_.msps[config_.learned_msp];
    market_params own_view;
    own_view.vmus = market.params().vmus;
    own_view.link = config_.link;
    own_view.bandwidth_cap_mhz =
        util::megahertz{available_mhz[config_.learned_msp]};
    own_view.unit_cost = own.unit_cost;
    own_view.price_cap = own.price_cap;
    const migration_market own_market(std::move(own_view));
    cohort_observation obs = make_cohort_observation(
        own_market, available_mhz[config_.learned_msp],
        own.bandwidth_per_pool_mhz.value());
    obs.competitors = active.size() - 1;
    if (obs.competitors > 0) {
      double min_price = std::numeric_limits<double>::infinity();
      double sum_price = 0.0;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (i == seat) continue;
        min_price = std::min(min_price, scripted.prices[i]);
        sum_price += scripted.prices[i];
      }
      obs.competitor_min_price = min_price;
      obs.competitor_mean_price =
          sum_price / static_cast<double>(obs.competitors);
    }

    prices = scripted.prices;
    prices[seat] = std::clamp(config_.pricer->price(obs), own.unit_cost,
                              own.price_cap);
    if (active.size() > 1) {
      // Rivals best-respond to the posted price: the same dampened solver
      // with the learned coordinate pinned, warm-started from the scripted
      // equilibrium (already a few sweeps from the rivals' fixed point).
      price_competition_options rival_options = solve_options;
      rival_options.warm_start = prices;
      rival_options.pinned = seat;
      const auto rivals = solve_price_competition(market, rival_options);
      prices = rivals.prices;
      outcome.converged = outcome.converged && rivals.converged;
      outcome.certified = outcome.certified && rivals.certified;
      outcome.solver_sweeps += rivals.iterations;
      outcome.objective_evals += rivals.objective_evals;
      outcome.residual = rivals.residual;
    }
  } else {
    const auto equilibrium = solve_price_competition(market, solve_options);
    prices = equilibrium.prices;
    outcome.converged = equilibrium.converged;
    outcome.certified = equilibrium.certified;
    outcome.solver_sweeps += equilibrium.iterations;
    outcome.objective_evals += equilibrium.objective_evals;
    outcome.residual = equilibrium.residual;
  }
  outcome.markets_cleared = 1;
  outcome.prices.assign(config_.msps.size(), 0.0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    outcome.prices[active[i]] = prices[i];
    warm_prices_[active[i]] = prices[i];
    warm_valid_[active[i]] = true;
  }

  // Seller split at the posted prices: softmin shares set each VMU's split,
  // and each seller's sales are rationed *proportionally* to its own
  // remainder (every buyer keeps the same fraction of its slice — the
  // monopoly market's rationing rule, per seller). The effective price is
  // computed once; `vmu_demand_at` is bitwise the per-VMU `vmu_demand`.
  const auto shares = market.shares(prices);
  const double p_eff = market.effective_price(prices);
  std::vector<double> demand(active.size(), 0.0);
  std::vector<double> interior(pending_.size(), 0.0);
  for (std::size_t n = 0; n < pending_.size(); ++n) {
    interior[n] = market.vmu_demand_at(n, p_eff);
    for (std::size_t m = 0; m < active.size(); ++m)
      demand[m] += interior[n] * shares[m];
  }
  std::vector<double> scale(active.size(), 1.0);
  std::vector<double> remaining(active.size(), 0.0);
  for (std::size_t m = 0; m < active.size(); ++m) {
    if (demand[m] > available_mhz[active[m]])
      scale[m] = available_mhz[active[m]] / demand[m];
    remaining[m] = available_mhz[active[m]];
  }

  const double rate = market.spectral_efficiency();
  const std::size_t cohort = pending_.size();
  std::vector<clearing_request> still_pending;
  for (std::size_t n = 0; n < cohort; ++n) {
    if (interior[n] <= 0.0) {
      outcome.priced_out.push_back(pending_[n]);
      continue;
    }
    // FIFO clamp against each seller's running remainder keeps the slice
    // sums <= availability exactly, whatever rounding the proportional
    // scale leaves behind. Remainders are debited only once the grant is
    // known to survive, so a fully-rationed request defers without eating
    // capacity.
    competitive_grant grant;
    grant.slices.reserve(active.size());
    std::vector<std::size_t> slice_seats;  // participating index per slice
    double payment = 0.0;
    for (std::size_t m = 0; m < active.size(); ++m) {
      const double slice =
          std::min(interior[n] * shares[m] * scale[m], remaining[m]);
      if (slice <= 0.0) continue;
      grant.bandwidth_mhz += slice;
      payment += prices[m] * slice;
      // Round the per-seller profit exactly once and accumulate the rounded
      // value: the completion-time per-MSP accounting replays these terms,
      // so the decomposition Σ slice.utility == msp_utility holds bitwise.
      const double utility =
          (prices[m] - config_.msps[active[m]].unit_cost) * slice;
      grant.msp_utility += utility;
      grant.slices.push_back({active[m], slice, prices[m], utility});
      slice_seats.push_back(m);
    }
    if (grant.bandwidth_mhz <= 1e-9) {
      // Rationing ate the whole purchase: defer, don't price out — capacity
      // in flight will re-clear this request.
      still_pending.push_back(pending_[n]);
      ++outcome.deferred;
      continue;
    }
    for (std::size_t s = 0; s < grant.slices.size(); ++s)
      remaining[slice_seats[s]] -= grant.slices[s].bandwidth_mhz;
    grant.request = pending_[n];
    grant.price = payment / grant.bandwidth_mhz;
    const auto& profile = pending_[n].profile;
    grant.vmu_utility =
        profile.alpha *
            std::log(1.0 + grant.bandwidth_mhz * rate / profile.data_mb) -
        payment;
    grant.cohort = cohort;
    outcome.grants.push_back(std::move(grant));
  }
  pending_ = std::move(still_pending);
  span.arg("sweeps", static_cast<double>(outcome.solver_sweeps));
  span.arg("objective_evals", static_cast<double>(outcome.objective_evals));
  span.arg("residual", outcome.residual);
  span.arg("warm_started", outcome.warm_started ? 1.0 : 0.0);
  span.arg("converged", outcome.converged ? 1.0 : 0.0);
  span.arg("granted", static_cast<double>(outcome.grants.size()));
  span.arg("deferred", static_cast<double>(outcome.deferred));
  return outcome;
}

}  // namespace vtm::core
