#include "core/competitive_market.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/contracts.hpp"

namespace vtm::core {

namespace {

/// Map the single-MSP roster onto the monopoly clearing engine (the M = 1
/// delegation must be bitwise the joint path, so it *is* the joint path).
spot_market_config monopoly_config(const competitive_market_config& config) {
  spot_market_config mono;
  mono.discipline = clearing_discipline::joint;
  mono.link = config.link;
  mono.unit_cost = config.msps.front().unit_cost;
  mono.price_cap = config.msps.front().price_cap;
  mono.min_clearable_mhz = config.min_clearable_mhz;
  mono.policy = config.policy;
  mono.pool_capacity_mhz = config.msps.front().bandwidth_per_pool_mhz;
  return mono;
}

}  // namespace

competitive_market::competitive_market(competitive_market_config config)
    : config_(std::move(config)) {
  VTM_EXPECTS(!config_.msps.empty());
  VTM_EXPECTS(config_.share_sharpness > 0.0);
  VTM_EXPECTS(config_.min_clearable_mhz > 0.0);
  VTM_EXPECTS(config_.fixed_point_tol > 0.0);
  for (const auto& msp : config_.msps) {
    VTM_EXPECTS(std::isfinite(msp.chain_offset_m));
    VTM_EXPECTS(msp.unit_cost > 0.0);
    VTM_EXPECTS(msp.price_cap >= msp.unit_cost);
    VTM_EXPECTS(msp.bandwidth_per_pool_mhz > 0.0);
  }
  if (config_.learned_msp != no_learned_msp) {
    VTM_EXPECTS(config_.learned_msp < config_.msps.size());
    VTM_EXPECTS(config_.pricer != nullptr);
    VTM_EXPECTS(config_.pricer->config().competitor_aware);
  }
  if (config_.msps.size() == 1) monopoly_.emplace(monopoly_config(config_));
}

void competitive_market::submit(clearing_request request) {
  if (monopoly_) {
    monopoly_->submit(std::move(request));
    return;
  }
  VTM_EXPECTS(request.profile.alpha > 0.0);
  VTM_EXPECTS(request.profile.data_mb > 0.0);
  pending_.push_back(std::move(request));
}

std::size_t competitive_market::pending() const noexcept {
  return monopoly_ ? monopoly_->pending() : pending_.size();
}

std::vector<clearing_request>&
competitive_market::pending_requests() noexcept {
  return monopoly_ ? monopoly_->pending_requests() : pending_;
}

std::vector<clearing_request> competitive_market::abandon_pending() {
  if (monopoly_) return monopoly_->abandon_pending();
  std::vector<clearing_request> dropped = std::move(pending_);
  pending_.clear();
  return dropped;
}

competitive_outcome competitive_market::clear(
    std::span<const double> available_mhz) {
  VTM_EXPECTS(available_mhz.size() == config_.msps.size());
  for (const double mhz : available_mhz) VTM_EXPECTS(mhz >= 0.0);

  if (monopoly_) {
    clearing_outcome mono = monopoly_->clear(available_mhz.front());
    competitive_outcome outcome;
    outcome.deferred = mono.deferred;
    outcome.markets_cleared = mono.markets_cleared;
    if (mono.markets_cleared > 0) outcome.prices = {mono.price};
    outcome.priced_out = std::move(mono.priced_out);
    outcome.grants.reserve(mono.grants.size());
    for (auto& grant : mono.grants) {
      competitive_grant converted;
      converted.bandwidth_mhz = grant.bandwidth_mhz;
      converted.price = grant.price;
      converted.vmu_utility = grant.vmu_utility;
      converted.msp_utility = grant.msp_utility;
      converted.cohort = grant.cohort;
      converted.slices = {{0, grant.bandwidth_mhz, grant.price}};
      converted.request = std::move(grant.request);
      outcome.grants.push_back(std::move(converted));
    }
    return outcome;
  }
  return clear_oligopoly(available_mhz);
}

competitive_outcome competitive_market::clear_oligopoly(
    std::span<const double> available_mhz) {
  competitive_outcome outcome;
  if (pending_.empty()) return outcome;

  // Sellers with less than the clearable minimum left sit this clearing out
  // (the monopoly engine's defer-below-minimum rule, applied per MSP).
  std::vector<std::size_t> active;  // participating -> roster index
  for (std::size_t m = 0; m < config_.msps.size(); ++m)
    if (available_mhz[m] >= config_.min_clearable_mhz) active.push_back(m);
  if (active.empty()) {
    outcome.deferred = pending_.size();
    return outcome;
  }

  // The cohort as one oligopoly market over each seller's remainder.
  multi_msp_params params;
  params.msps.reserve(active.size());
  for (const std::size_t m : active)
    params.msps.push_back({config_.msps[m].unit_cost, available_mhz[m],
                           config_.msps[m].price_cap});
  params.vmus.reserve(pending_.size());
  for (const auto& request : pending_) params.vmus.push_back(request.profile);
  params.link = config_.link;
  params.share_sharpness = config_.share_sharpness;
  const multi_msp_market market(std::move(params));

  // Price vector: all-scripted best-response fixed point, or the learned
  // seat's posted price with the scripted rivals best-responding to it. The
  // scripted equilibrium doubles as the rival-price summary the learned
  // observation reads — the seat sees where competition *would* settle.
  std::vector<double> prices;
  const auto learned_it = config_.learned_msp == no_learned_msp
                              ? active.end()
                              : std::find(active.begin(), active.end(),
                                          config_.learned_msp);
  if (learned_it != active.end()) {
    const std::size_t seat = static_cast<std::size_t>(
        learned_it - active.begin());
    const auto scripted = solve_price_competition(
        market, config_.fixed_point_tol, config_.max_sweeps);
    outcome.converged = scripted.converged;

    const auto& own = config_.msps[config_.learned_msp];
    market_params own_view;
    own_view.vmus = market.params().vmus;
    own_view.link = config_.link;
    own_view.bandwidth_cap_mhz = available_mhz[config_.learned_msp];
    own_view.unit_cost = own.unit_cost;
    own_view.price_cap = own.price_cap;
    const migration_market own_market(std::move(own_view));
    cohort_observation obs = make_cohort_observation(
        own_market, available_mhz[config_.learned_msp],
        own.bandwidth_per_pool_mhz);
    obs.competitors = active.size() - 1;
    if (obs.competitors > 0) {
      double min_price = std::numeric_limits<double>::infinity();
      double sum_price = 0.0;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (i == seat) continue;
        min_price = std::min(min_price, scripted.prices[i]);
        sum_price += scripted.prices[i];
      }
      obs.competitor_min_price = min_price;
      obs.competitor_mean_price =
          sum_price / static_cast<double>(obs.competitors);
    }

    prices = scripted.prices;
    prices[seat] = std::clamp(config_.pricer->price(obs), own.unit_cost,
                              own.price_cap);
    if (active.size() > 1) {
      // Rivals best-respond to the posted price (Gauss–Seidel with the
      // learned coordinate held fixed).
      bool converged = false;
      for (std::size_t sweep = 0; sweep < config_.max_sweeps; ++sweep) {
        double max_change = 0.0;
        for (std::size_t m = 0; m < active.size(); ++m) {
          if (m == seat) continue;
          const double updated = market.best_response_price(m, prices);
          max_change = std::max(max_change, std::abs(updated - prices[m]));
          prices[m] = updated;
        }
        if (max_change <= config_.fixed_point_tol) {
          converged = true;
          break;
        }
      }
      outcome.converged = outcome.converged && converged;
    }
  } else {
    const auto equilibrium = solve_price_competition(
        market, config_.fixed_point_tol, config_.max_sweeps);
    prices = equilibrium.prices;
    outcome.converged = equilibrium.converged;
  }
  outcome.markets_cleared = 1;
  outcome.prices.assign(config_.msps.size(), 0.0);
  for (std::size_t i = 0; i < active.size(); ++i)
    outcome.prices[active[i]] = prices[i];

  // Seller split at the posted prices: softmin shares set each VMU's split,
  // and each seller's sales are rationed *proportionally* to its own
  // remainder (every buyer keeps the same fraction of its slice — the
  // monopoly market's rationing rule, per seller).
  const auto shares = market.shares(prices);
  std::vector<double> demand(active.size(), 0.0);
  std::vector<double> interior(pending_.size(), 0.0);
  for (std::size_t n = 0; n < pending_.size(); ++n) {
    interior[n] = market.vmu_demand(n, prices);
    for (std::size_t m = 0; m < active.size(); ++m)
      demand[m] += interior[n] * shares[m];
  }
  std::vector<double> scale(active.size(), 1.0);
  std::vector<double> remaining(active.size(), 0.0);
  for (std::size_t m = 0; m < active.size(); ++m) {
    if (demand[m] > available_mhz[active[m]])
      scale[m] = available_mhz[active[m]] / demand[m];
    remaining[m] = available_mhz[active[m]];
  }

  const double rate = market.spectral_efficiency();
  const std::size_t cohort = pending_.size();
  std::vector<clearing_request> still_pending;
  for (std::size_t n = 0; n < cohort; ++n) {
    if (interior[n] <= 0.0) {
      outcome.priced_out.push_back(pending_[n]);
      continue;
    }
    // FIFO clamp against each seller's running remainder keeps the slice
    // sums <= availability exactly, whatever rounding the proportional
    // scale leaves behind. Remainders are debited only once the grant is
    // known to survive, so a fully-rationed request defers without eating
    // capacity.
    competitive_grant grant;
    grant.slices.reserve(active.size());
    std::vector<std::size_t> slice_seats;  // participating index per slice
    double payment = 0.0;
    for (std::size_t m = 0; m < active.size(); ++m) {
      const double slice =
          std::min(interior[n] * shares[m] * scale[m], remaining[m]);
      if (slice <= 0.0) continue;
      grant.bandwidth_mhz += slice;
      payment += prices[m] * slice;
      grant.msp_utility += (prices[m] - config_.msps[active[m]].unit_cost) *
                           slice;
      grant.slices.push_back({active[m], slice, prices[m]});
      slice_seats.push_back(m);
    }
    if (grant.bandwidth_mhz <= 1e-9) {
      // Rationing ate the whole purchase: defer, don't price out — capacity
      // in flight will re-clear this request.
      still_pending.push_back(pending_[n]);
      ++outcome.deferred;
      continue;
    }
    for (std::size_t s = 0; s < grant.slices.size(); ++s)
      remaining[slice_seats[s]] -= grant.slices[s].bandwidth_mhz;
    grant.request = pending_[n];
    grant.price = payment / grant.bandwidth_mhz;
    const auto& profile = pending_[n].profile;
    grant.vmu_utility =
        profile.alpha *
            std::log(1.0 + grant.bandwidth_mhz * rate / profile.data_mb) -
        payment;
    grant.cohort = cohort;
    outcome.grants.push_back(std::move(grant));
  }
  pending_ = std::move(still_pending);
  return outcome;
}

}  // namespace vtm::core
