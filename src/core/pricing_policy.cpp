#include "core/pricing_policy.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "nn/tensor.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace vtm::core {

const char* to_string(pricing_backend backend) noexcept {
  switch (backend) {
    case pricing_backend::oracle:
      return "oracle";
    case pricing_backend::learned:
      return "learned";
  }
  return "?";
}

cohort_observation make_cohort_observation(const migration_market& market,
                                           double available_mhz,
                                           double capacity_mhz) {
  cohort_observation obs;
  obs.cohort = market.vmu_count();
  obs.available_mhz = available_mhz;
  obs.capacity_mhz = capacity_mhz > 0.0 ? capacity_mhz : available_mhz;
  obs.spectral_efficiency = market.spectral_efficiency();
  obs.unit_cost = market.params().unit_cost;
  obs.price_cap = market.params().price_cap;
  for (std::size_t n = 0; n < market.vmu_count(); ++n) {
    const double alpha = market.params().vmus[n].alpha;
    const double kappa = market.kappa(n);
    obs.sum_alpha += alpha;
    obs.max_alpha = std::max(obs.max_alpha, alpha);
    obs.sum_kappa += kappa;
    obs.max_kappa = std::max(obs.max_kappa, kappa);
  }
  if (obs.cohort > 0) {
    const auto n = static_cast<double>(obs.cohort);
    obs.mean_alpha = obs.sum_alpha / n;
    obs.mean_kappa = obs.sum_kappa / n;
  }
  return obs;
}

std::vector<double> cohort_features(const cohort_observation& obs) {
  // Two of the features are the closed form's own sufficient statistics at
  // the aggregate level: the interior price sqrt(C·Σα/Σκ) and the
  // cap-clearing price Σα/(B + Σκ), both normalized by p_max. They summarize
  // the cohort without revealing any individual profile; the network learns
  // the active-set / rationing correction between them.
  const double cap = std::max(obs.price_cap, 1e-9);
  const double interior =
      std::sqrt(obs.unit_cost * obs.sum_alpha / std::max(obs.sum_kappa, 1e-9));
  const double clearing =
      obs.sum_alpha / std::max(obs.available_mhz + obs.sum_kappa, 1e-9);
  std::vector<double> f{
      std::log1p(static_cast<double>(obs.cohort)) / std::log1p(128.0),
      obs.available_mhz / std::max(obs.capacity_mhz, 1e-9),
      obs.capacity_mhz / 100.0,
      obs.mean_alpha / 1000.0,
      obs.mean_kappa / 10.0,
      interior / cap,
      clearing / cap,
      obs.unit_cost / cap,
  };
  VTM_ASSERT(f.size() == cohort_feature_dim);
  for (double& x : f) x = std::clamp(x, 0.0, 8.0);
  return f;
}

std::vector<double> competitive_features(const cohort_observation& obs) {
  std::vector<double> f = cohort_features(obs);
  // Rival context: how many sellers compete and how aggressively they are
  // priced relative to this seat's own box. An empty rival set (monopoly
  // clearing observed through the competitive map) reads as zeros.
  const double cap = std::max(obs.price_cap, 1e-9);
  f.push_back(std::log1p(static_cast<double>(obs.competitors)) /
              std::log1p(8.0));
  f.push_back(obs.competitor_min_price / cap);
  f.push_back(obs.competitor_mean_price / cap);
  VTM_ASSERT(f.size() == competitive_feature_dim);
  for (double& x : f) x = std::clamp(x, 0.0, 8.0);
  return f;
}

equilibrium oracle_policy::price_cohort(const migration_market& market,
                                        const cohort_observation& /*obs*/) {
  return solve_equilibrium(market);
}

double squashed_price(double raw_action, double unit_cost, double price_cap) {
  constexpr double headroom = 1.15;
  const double squashed = std::tanh(raw_action);
  const double price =
      unit_cost + 0.5 * (squashed + 1.0) * (price_cap - unit_cost) * headroom;
  return std::clamp(price, unit_cost, price_cap);
}

namespace {

/// Feature width the pricer's network must consume.
std::size_t pricer_obs_dim(const learned_pricer_config& config) {
  return config.competitor_aware ? competitive_feature_dim
                                 : cohort_feature_dim;
}

/// Rebuild the fixed-architecture pricing network (weights are then either
/// trained in place or overwritten by a checkpoint load).
rl::actor_critic make_pricer_network(const learned_pricer_config& config) {
  rl::actor_critic_config net;
  net.obs_dim = pricer_obs_dim(config);
  net.act_dim = 1;
  net.hidden = config.hidden;
  net.initial_log_std = config.initial_log_std;
  util::rng gen(0);  // placeholder weights; the checkpoint overwrites them
  return rl::actor_critic(net, gen);
}

}  // namespace

learned_pricer::learned_pricer(learned_pricer_config config,
                               rl::actor_critic policy)
    : config_(std::move(config)), policy_(std::move(policy)) {
  VTM_EXPECTS(config_.unit_cost > 0.0);
  VTM_EXPECTS(config_.price_cap >= config_.unit_cost);
  VTM_EXPECTS(policy_.config().obs_dim == pricer_obs_dim(config_));
  VTM_EXPECTS(policy_.config().act_dim == 1);
}

learned_pricer::learned_pricer(learned_pricer_config config,
                               const std::string& checkpoint)
    : learned_pricer(config, make_pricer_network(config)) {
  rl::load_checkpoint(policy_, checkpoint);
}

double learned_pricer::price_from_action(double raw_action) const {
  return squashed_price(raw_action, config_.unit_cost, config_.price_cap);
}

double learned_pricer::price(const cohort_observation& obs) const {
  const auto features = config_.competitor_aware ? competitive_features(obs)
                                                 : cohort_features(obs);
  const nn::tensor observation({1, features.size()}, features);
  const auto sample = policy_.act_deterministic(observation);
  return price_from_action(sample.action.item());
}

std::string learned_pricer::checkpoint() const {
  return rl::to_checkpoint(policy_);
}

learned_policy::learned_policy(std::shared_ptr<const learned_pricer> pricer)
    : pricer_(std::move(pricer)) {
  VTM_EXPECTS(pricer_ != nullptr);
}

equilibrium learned_policy::price_cohort(const migration_market& market,
                                         const cohort_observation& obs) {
  // The policy posts the price; the followers best-respond through the
  // market, so the outcome respects capacity and participation exactly as
  // under the oracle — only the price selection is learned.
  const auto& p = market.params();
  const double price =
      std::clamp(pricer_->price(obs), p.unit_cost, p.price_cap);
  return evaluate_at_price(market, price);
}

market_params cohort_snapshot::to_market_params() const {
  market_params params;
  params.vmus = profiles;
  params.link = link;
  params.bandwidth_cap_mhz = util::megahertz{available_mhz};
  params.unit_cost = unit_cost;
  params.price_cap = price_cap;
  return params;
}

}  // namespace vtm::core
