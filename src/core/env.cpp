#include "core/env.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/equilibrium.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace vtm::core {

const char* to_string(reward_mode mode) noexcept {
  switch (mode) {
    case reward_mode::paper_binary:
      return "paper-binary";
    case reward_mode::persistent_binary:
      return "persistent-binary";
    case reward_mode::shaped:
      return "shaped";
  }
  return "?";
}

pricing_env::pricing_env(migration_market market,
                         const pricing_env_config& config)
    : market_(std::move(market)),
      config_(config),
      gen_(config.seed),
      best_utility_(-std::numeric_limits<double>::infinity()) {
  VTM_EXPECTS(config.history_length >= 1);
  VTM_EXPECTS(config.rounds_per_episode >= 1);
  VTM_EXPECTS(config.reward_tolerance >= 0.0 && config.reward_tolerance < 1.0);
  history_.assign(observation_dim(), 0.0);
  if (config_.mode == reward_mode::shaped) {
    // Dense-reward normalization: the oracle utility sets the scale so a
    // perfect policy earns ~1 per round.
    const equilibrium oracle = solve_equilibrium(market_);
    shaped_scale_ = std::max(1.0, oracle.leader_utility);
  }
}

std::size_t pricing_env::observation_dim() const {
  return config_.history_length * (1 + market_.vmu_count());
}

double pricing_env::price_from_action(double raw_action) const {
  const double clipped = std::clamp(raw_action, action_low(), action_high());
  const auto& p = market_.params();
  return p.unit_cost +
         (clipped - action_low()) / (action_high() - action_low()) *
             (p.price_cap - p.unit_cost);
}

double pricing_env::action_from_price(double price) const {
  const auto& p = market_.params();
  VTM_EXPECTS(price >= p.unit_cost && price <= p.price_cap);
  return action_low() + (price - p.unit_cost) / (p.price_cap - p.unit_cost) *
                            (action_high() - action_low());
}

void pricing_env::push_history(double price,
                               const std::vector<double>& demands) {
  const std::size_t stride = 1 + market_.vmu_count();
  // Shift one round out, append the newest at the back (oldest-first layout).
  std::rotate(history_.begin(), history_.begin() + stride, history_.end());
  const std::size_t base = history_.size() - stride;
  history_[base] = price / market_.params().price_cap;
  for (std::size_t n = 0; n < market_.vmu_count(); ++n)
    history_[base + 1 + n] =
        demands[n] / market_.params().bandwidth_cap_mhz.value();
}

nn::tensor pricing_env::observation_tensor() const {
  return nn::tensor({1, history_.size()},
                    std::vector<double>(history_.begin(), history_.end()));
}

double pricing_env::reward_for(double utility) {
  switch (config_.mode) {
    case reward_mode::paper_binary:
    case reward_mode::persistent_binary: {
      // "1 if U_s^k >= U_best^k" with a relative tolerance band; sign-safe
      // threshold: U_best − η·max(|U_best|, 1).
      const bool first = !std::isfinite(best_utility_);
      const double slack =
          config_.reward_tolerance * std::max(std::abs(best_utility_), 1.0);
      const bool matched = first || utility >= best_utility_ - slack;
      best_utility_ = first ? utility : std::max(best_utility_, utility);
      return matched ? 1.0 : 0.0;
    }
    case reward_mode::shaped:
      best_utility_ = std::max(best_utility_, utility);
      return utility / shaped_scale_;
  }
  VTM_ASSERT(false);
}

nn::tensor pricing_env::reset() {
  round_ = 0;
  if (config_.mode != reward_mode::persistent_binary)
    best_utility_ = -std::numeric_limits<double>::infinity();
  // Random warm-up history (k < L rounds "generated randomly").
  for (std::size_t i = 0; i < config_.history_length; ++i) {
    const double price = gen_.uniform(market_.params().unit_cost,
                                      market_.params().price_cap);
    push_history(price, market_.demands(price));
  }
  return observation_tensor();
}

rl::step_result pricing_env::step(const nn::tensor& action) {
  VTM_EXPECTS(action.dims() == (nn::shape{1, 1}));
  VTM_EXPECTS(round_ < config_.rounds_per_episode);

  const double price = price_from_action(action.item());
  const std::vector<double> demands = market_.demands(price);
  const double utility = market_.leader_utility(price, demands);

  push_history(price, demands);
  ++round_;

  rl::step_result result;
  result.reward = reward_for(utility);
  result.observation = observation_tensor();
  result.done = round_ >= config_.rounds_per_episode;
  result.info["leader_utility"] = utility;
  result.info["price"] = price;

  double total = 0.0;
  double vmu_total = 0.0;
  double aotm_sum = 0.0;
  std::size_t active = 0;
  for (std::size_t n = 0; n < market_.vmu_count(); ++n) {
    total += demands[n];
    vmu_total += market_.vmu_utility(n, demands[n], price);
    if (demands[n] > 0.0) {
      aotm_sum += market_.aotm(n, demands[n]);
      ++active;
    }
  }
  result.info["total_demand"] = total;
  result.info["total_vmu_utility"] = vmu_total;
  result.info["mean_aotm"] =
      active > 0 ? aotm_sum / static_cast<double>(active) : 0.0;
  result.info["active_vmus"] = static_cast<double>(active);
  return result;
}

std::uint64_t pricing_env_replica_seed(std::uint64_t seed, std::size_t index) {
  if (index == 0) return seed;  // replica 0 is the single env, bit for bit
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * index;
  return util::splitmix64(state);
}

rl::env_factory make_pricing_env_factory(const market_params& params,
                                         const pricing_env_config& config) {
  // Fail fast on bad parameters; replicas share them but each owns its
  // market evaluator and RNG, so worker threads need no synchronization.
  (void)migration_market(params);
  return [params, config](std::size_t index) {
    pricing_env_config replica = config;
    replica.seed = pricing_env_replica_seed(config.seed, index);
    return std::make_unique<pricing_env>(migration_market(params), replica);
  };
}

// --- cohort-conditioned pricing environment --------------------------------

std::vector<prepared_cohort> prepare_cohorts(
    std::span<const cohort_snapshot> snapshots) {
  std::vector<prepared_cohort> prepared;
  prepared.reserve(snapshots.size());
  for (const auto& snapshot : snapshots) {
    if (snapshot.profiles.empty() || snapshot.available_mhz <= 0.0) continue;
    prepared_cohort cohort{migration_market(snapshot.to_market_params()),
                           {}, 0.0, 0.0};
    const equilibrium oracle = solve_equilibrium(cohort.market);
    if (oracle.leader_utility <= 1e-6) continue;  // degenerate: no trade
    cohort.features = cohort_features(make_cohort_observation(
        cohort.market, snapshot.available_mhz, snapshot.capacity_mhz));
    cohort.oracle_price = oracle.price;
    cohort.oracle_utility = oracle.leader_utility;
    prepared.push_back(std::move(cohort));
  }
  return prepared;
}

fleet_pricing_env::fleet_pricing_env(
    std::shared_ptr<const std::vector<prepared_cohort>> cohorts,
    const fleet_pricing_env_config& config)
    : cohorts_(std::move(cohorts)), config_(config), gen_(config.seed) {
  VTM_EXPECTS(cohorts_ != nullptr && !cohorts_->empty());
  VTM_EXPECTS(config.rounds_per_episode >= 1);
}

const prepared_cohort& fleet_pricing_env::current() const {
  return (*cohorts_)[current_];
}

nn::tensor fleet_pricing_env::observation_tensor() const {
  return nn::tensor({1, cohort_feature_dim}, current().features);
}

void fleet_pricing_env::draw_cohort() {
  current_ = static_cast<std::size_t>(gen_.uniform_int(
      0, static_cast<std::int64_t>(cohorts_->size()) - 1));
}

double fleet_pricing_env::price_from_action(double raw_action) const {
  // squashed_price, matching learned_pricer::price_from_action bit for bit —
  // the policy must see the same action→price map in training and deployment.
  const auto& p = current().market.params();
  return squashed_price(raw_action, p.unit_cost, p.price_cap);
}

nn::tensor fleet_pricing_env::reset() {
  round_ = 0;
  draw_cohort();
  return observation_tensor();
}

rl::step_result fleet_pricing_env::step(const nn::tensor& action) {
  VTM_EXPECTS(action.dims() == (nn::shape{1, 1}));
  VTM_EXPECTS(round_ < config_.rounds_per_episode);

  const prepared_cohort& cohort = current();
  const double raw = action.item();
  const double price = price_from_action(raw);
  const double utility = cohort.market.leader_utility(price);
  ++round_;

  rl::step_result result;
  // Ratio reward: 1.0 means the posted price matched the oracle's utility on
  // this cohort, so returns are comparable across mixed regimes (interior
  // 100-vehicle cohorts and cap-saturated 5000-vehicle ones alike). The
  // quadratic out-of-box penalty keeps the raw action where tanh still has
  // slope; it is a training regularizer only (deployment squashes the mean).
  const double ratio = utility / cohort.oracle_utility;
  const double overflow = std::max(0.0, std::abs(raw) - 1.0);
  result.reward = ratio - 0.1 * overflow * overflow;
  result.done = round_ >= config_.rounds_per_episode;
  result.info["leader_utility"] = utility;
  result.info["price"] = price;
  result.info["oracle_price"] = cohort.oracle_price;
  result.info["utility_ratio"] = ratio;
  draw_cohort();
  result.observation = observation_tensor();
  return result;
}

rl::env_factory make_fleet_pricing_env_factory(
    std::shared_ptr<const std::vector<prepared_cohort>> cohorts,
    const fleet_pricing_env_config& config) {
  VTM_EXPECTS(cohorts != nullptr && !cohorts->empty());
  return [cohorts, config](std::size_t index) {
    fleet_pricing_env_config replica = config;
    replica.seed = pricing_env_replica_seed(config.seed, index);
    return std::make_unique<fleet_pricing_env>(cohorts, replica);
  };
}

}  // namespace vtm::core
