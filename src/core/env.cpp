#include "core/env.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/equilibrium.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace vtm::core {

const char* to_string(reward_mode mode) noexcept {
  switch (mode) {
    case reward_mode::paper_binary:
      return "paper-binary";
    case reward_mode::persistent_binary:
      return "persistent-binary";
    case reward_mode::shaped:
      return "shaped";
  }
  return "?";
}

pricing_env::pricing_env(migration_market market,
                         const pricing_env_config& config)
    : market_(std::move(market)),
      config_(config),
      gen_(config.seed),
      best_utility_(-std::numeric_limits<double>::infinity()) {
  VTM_EXPECTS(config.history_length >= 1);
  VTM_EXPECTS(config.rounds_per_episode >= 1);
  VTM_EXPECTS(config.reward_tolerance >= 0.0 && config.reward_tolerance < 1.0);
  history_.assign(observation_dim(), 0.0);
  if (config_.mode == reward_mode::shaped) {
    // Dense-reward normalization: the oracle utility sets the scale so a
    // perfect policy earns ~1 per round.
    const equilibrium oracle = solve_equilibrium(market_);
    shaped_scale_ = std::max(1.0, oracle.leader_utility);
  }
}

std::size_t pricing_env::observation_dim() const {
  return config_.history_length * (1 + market_.vmu_count());
}

double pricing_env::price_from_action(double raw_action) const {
  const double clipped = std::clamp(raw_action, action_low(), action_high());
  const auto& p = market_.params();
  return p.unit_cost +
         (clipped - action_low()) / (action_high() - action_low()) *
             (p.price_cap - p.unit_cost);
}

double pricing_env::action_from_price(double price) const {
  const auto& p = market_.params();
  VTM_EXPECTS(price >= p.unit_cost && price <= p.price_cap);
  return action_low() + (price - p.unit_cost) / (p.price_cap - p.unit_cost) *
                            (action_high() - action_low());
}

void pricing_env::push_history(double price,
                               const std::vector<double>& demands) {
  const std::size_t stride = 1 + market_.vmu_count();
  // Shift one round out, append the newest at the back (oldest-first layout).
  std::rotate(history_.begin(), history_.begin() + stride, history_.end());
  const std::size_t base = history_.size() - stride;
  history_[base] = price / market_.params().price_cap;
  for (std::size_t n = 0; n < market_.vmu_count(); ++n)
    history_[base + 1 + n] =
        demands[n] / market_.params().bandwidth_cap_mhz;
}

nn::tensor pricing_env::observation_tensor() const {
  return nn::tensor({1, history_.size()},
                    std::vector<double>(history_.begin(), history_.end()));
}

double pricing_env::reward_for(double utility) {
  switch (config_.mode) {
    case reward_mode::paper_binary:
    case reward_mode::persistent_binary: {
      // "1 if U_s^k >= U_best^k" with a relative tolerance band; sign-safe
      // threshold: U_best − η·max(|U_best|, 1).
      const bool first = !std::isfinite(best_utility_);
      const double slack =
          config_.reward_tolerance * std::max(std::abs(best_utility_), 1.0);
      const bool matched = first || utility >= best_utility_ - slack;
      best_utility_ = first ? utility : std::max(best_utility_, utility);
      return matched ? 1.0 : 0.0;
    }
    case reward_mode::shaped:
      best_utility_ = std::max(best_utility_, utility);
      return utility / shaped_scale_;
  }
  VTM_ASSERT(false);
}

nn::tensor pricing_env::reset() {
  round_ = 0;
  if (config_.mode != reward_mode::persistent_binary)
    best_utility_ = -std::numeric_limits<double>::infinity();
  // Random warm-up history (k < L rounds "generated randomly").
  for (std::size_t i = 0; i < config_.history_length; ++i) {
    const double price = gen_.uniform(market_.params().unit_cost,
                                      market_.params().price_cap);
    push_history(price, market_.demands(price));
  }
  return observation_tensor();
}

rl::step_result pricing_env::step(const nn::tensor& action) {
  VTM_EXPECTS(action.dims() == (nn::shape{1, 1}));
  VTM_EXPECTS(round_ < config_.rounds_per_episode);

  const double price = price_from_action(action.item());
  const std::vector<double> demands = market_.demands(price);
  const double utility = market_.leader_utility(price, demands);

  push_history(price, demands);
  ++round_;

  rl::step_result result;
  result.reward = reward_for(utility);
  result.observation = observation_tensor();
  result.done = round_ >= config_.rounds_per_episode;
  result.info["leader_utility"] = utility;
  result.info["price"] = price;

  double total = 0.0;
  double vmu_total = 0.0;
  double aotm_sum = 0.0;
  std::size_t active = 0;
  for (std::size_t n = 0; n < market_.vmu_count(); ++n) {
    total += demands[n];
    vmu_total += market_.vmu_utility(n, demands[n], price);
    if (demands[n] > 0.0) {
      aotm_sum += market_.aotm(n, demands[n]);
      ++active;
    }
  }
  result.info["total_demand"] = total;
  result.info["total_vmu_utility"] = vmu_total;
  result.info["mean_aotm"] =
      active > 0 ? aotm_sum / static_cast<double>(active) : 0.0;
  result.info["active_vmus"] = static_cast<double>(active);
  return result;
}

std::uint64_t pricing_env_replica_seed(std::uint64_t seed, std::size_t index) {
  if (index == 0) return seed;  // replica 0 is the single env, bit for bit
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * index;
  return util::splitmix64(state);
}

rl::env_factory make_pricing_env_factory(const market_params& params,
                                         const pricing_env_config& config) {
  // Fail fast on bad parameters; replicas share them but each owns its
  // market evaluator and RNG, so worker threads need no synchronization.
  (void)migration_market(params);
  return [params, config](std::size_t index) {
    pricing_env_config replica = config;
    replica.seed = pricing_env_replica_seed(config.seed, index);
    return std::make_unique<pricing_env>(migration_market(params), replica);
  };
}

}  // namespace vtm::core
