// Adapter from the migration market to the generic vtm::game machinery.
//
// Used to cross-validate the closed-form oracle: the generic Stackelberg
// solver knows nothing about eq. (8) — each VMU best-responds by numeric
// 1-D concave maximization of its utility — so agreement between the two
// solution paths certifies both.
#pragma once

#include <memory>
#include <vector>

#include "core/market.hpp"
#include "game/stackelberg.hpp"

namespace vtm::core {

/// A VMU as a generic game follower; best response by golden-section search.
class vmu_follower final : public game::follower {
 public:
  /// `market` must outlive the follower; `index` < market.vmu_count().
  vmu_follower(const migration_market& market, std::size_t index);

  [[nodiscard]] double utility(double own, double leader_action,
                               std::span<const double> others) const override;

  [[nodiscard]] double best_response(
      double leader_action, std::span<const double> others) const override;

 private:
  const migration_market& market_;
  std::size_t index_;
};

/// Build the follower list for the generic solver.
[[nodiscard]] std::vector<std::unique_ptr<game::follower>> make_followers(
    const migration_market& market);

/// Build the leader problem (price box + leader utility with the capacity
/// rationing rule applied to the followers' requested bandwidths).
[[nodiscard]] game::leader_problem make_leader_problem(
    const migration_market& market);

}  // namespace vtm::core
