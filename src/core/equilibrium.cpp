#include "core/equilibrium.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "game/maximize.hpp"
#include "util/contracts.hpp"

namespace vtm::core {

const char* to_string(equilibrium_regime regime) noexcept {
  switch (regime) {
    case equilibrium_regime::interior:
      return "interior";
    case equilibrium_regime::capacity_bound:
      return "capacity-bound";
    case equilibrium_regime::price_capped:
      return "price-capped";
    case equilibrium_regime::cost_floor:
      return "cost-floor";
  }
  return "?";
}

namespace {

equilibrium finalize(const migration_market& market, double price,
                     equilibrium_regime regime) {
  equilibrium eq;
  eq.price = price;
  eq.regime = regime;
  eq.demands = market.demands(price);
  for (double b : eq.demands) eq.total_demand += b;
  eq.leader_utility = market.leader_utility(price, eq.demands);
  eq.vmu_utilities.reserve(market.vmu_count());
  eq.aotm.reserve(market.vmu_count());
  for (std::size_t n = 0; n < market.vmu_count(); ++n) {
    eq.vmu_utilities.push_back(
        market.vmu_utility(n, eq.demands[n], price));
    eq.total_vmu_utility += eq.vmu_utilities.back();
    eq.aotm.push_back(eq.demands[n] > 0.0
                          ? market.aotm(n, eq.demands[n])
                          : std::numeric_limits<double>::infinity());
  }
  return eq;
}

}  // namespace

equilibrium evaluate_at_price(const migration_market& market, double price) {
  const auto& p = market.params();
  VTM_EXPECTS(price >= p.unit_cost && price <= p.price_cap);

  double unconstrained = 0.0;
  for (double b : market.unconstrained_demands(price)) unconstrained += b;

  equilibrium_regime regime = equilibrium_regime::interior;
  if (unconstrained > p.bandwidth_cap_mhz.value() * (1.0 + 1e-12))
    regime = equilibrium_regime::capacity_bound;
  else if (price >= p.price_cap * (1.0 - 1e-12))
    regime = equilibrium_regime::price_capped;
  else if (price <= p.unit_cost * (1.0 + 1e-12))
    regime = equilibrium_regime::cost_floor;
  return finalize(market, price, regime);
}

equilibrium solve_equilibrium(const migration_market& market) {
  const auto& p = market.params();
  const std::size_t n_vmus = market.vmu_count();

  std::vector<bool> active(n_vmus, true);
  double price = p.unit_cost;
  equilibrium_regime regime = equilibrium_regime::cost_floor;

  // Active-set fixed point: at most one VMU drops per iteration.
  for (std::size_t iter = 0; iter <= n_vmus + 1; ++iter) {
    double sum_alpha = 0.0;
    double sum_kappa = 0.0;
    std::size_t active_count = 0;
    for (std::size_t n = 0; n < n_vmus; ++n) {
      if (!active[n]) continue;
      sum_alpha += p.vmus[n].alpha;
      sum_kappa += market.kappa(n);
      ++active_count;
    }
    if (active_count == 0) {
      price = p.unit_cost;
      regime = equilibrium_regime::cost_floor;
      break;
    }

    // Interior FOC root: p* = sqrt(C · Σα / Σκ)  (Theorem 2).
    price = std::sqrt(p.unit_cost * sum_alpha / sum_kappa);
    regime = equilibrium_regime::interior;

    // Capacity: if aggregate demand exceeds B_max, lift the price to the
    // market-clearing level Σ_{active}(α/p − κ) = B_max.
    double total = 0.0;
    for (std::size_t n = 0; n < n_vmus; ++n)
      total += market.best_response(n, price);
    if (total > p.bandwidth_cap_mhz.value() + 1e-12) {
      price = sum_alpha / (p.bandwidth_cap_mhz.value() + sum_kappa);
      regime = equilibrium_regime::capacity_bound;
    }

    // Price box.
    if (price > p.price_cap) {
      price = p.price_cap;
      regime = equilibrium_regime::price_capped;
    } else if (price < p.unit_cost) {
      price = p.unit_cost;
      regime = equilibrium_regime::cost_floor;
    }

    // Recompute the active set at the candidate price.
    std::vector<bool> next(n_vmus);
    bool changed = false;
    for (std::size_t n = 0; n < n_vmus; ++n) {
      next[n] = market.best_response(n, price) > 0.0;
      changed = changed || (next[n] != active[n]);
    }
    if (!changed) break;
    active = std::move(next);
  }

  return finalize(market, price, regime);
}

equilibrium solve_equilibrium_numeric(const migration_market& market,
                                      std::size_t grid_points) {
  VTM_EXPECTS(grid_points >= 2);
  const auto& p = market.params();
  const auto objective = [&](double price) {
    return market.leader_utility(price);
  };

  double best_price = p.unit_cost;
  double best_value = objective(best_price);
  for (std::size_t i = 1; i < grid_points; ++i) {
    const double candidate =
        p.unit_cost + (p.price_cap - p.unit_cost) * static_cast<double>(i) /
                          static_cast<double>(grid_points - 1);
    const double value = objective(candidate);
    if (value > best_value) {
      best_value = value;
      best_price = candidate;
    }
  }
  const double cell =
      (p.price_cap - p.unit_cost) / static_cast<double>(grid_points - 1);
  const auto refined = game::golden_section_maximize(
      objective, std::max(p.unit_cost, best_price - cell),
      std::min(p.price_cap, best_price + cell));
  const double price =
      refined.value >= best_value ? refined.arg : best_price;

  // Classify the regime for reporting.
  equilibrium_regime regime = equilibrium_regime::interior;
  const double eps = 1e-6 * std::max(1.0, p.price_cap);
  double unconstrained_total = 0.0;
  for (std::size_t n = 0; n < market.vmu_count(); ++n)
    unconstrained_total += market.best_response(n, price);
  if (std::abs(price - p.price_cap) < eps)
    regime = equilibrium_regime::price_capped;
  else if (std::abs(price - p.unit_cost) < eps)
    regime = equilibrium_regime::cost_floor;
  else if (unconstrained_total >= p.bandwidth_cap_mhz.value() - 1e-9)
    regime = equilibrium_regime::capacity_bound;
  return finalize(market, price, regime);
}

equilibrium_check verify_equilibrium(const migration_market& market,
                                     const equilibrium& candidate,
                                     std::size_t samples) {
  VTM_EXPECTS(samples >= 2);
  const auto& p = market.params();
  equilibrium_check check;

  // Leader deviations (followers re-respond through the market).
  for (std::size_t i = 0; i < samples; ++i) {
    const double price =
        p.unit_cost + (p.price_cap - p.unit_cost) * static_cast<double>(i) /
                          static_cast<double>(samples - 1);
    check.max_leader_gain =
        std::max(check.max_leader_gain,
                 market.leader_utility(price) - candidate.leader_utility);
  }

  // Follower deviations, valid when rationing is inactive at the candidate
  // (at the capacity-clearing price Σb = B_max exactly, so grants equal
  // requests). Under hard rationing (price-capped regime) the followers'
  // feasible set is not their full action space, so the unilateral check
  // does not apply and is skipped.
  double unconstrained_total = 0.0;
  for (std::size_t n = 0; n < market.vmu_count(); ++n)
    unconstrained_total += market.best_response(n, candidate.price);
  const bool rationed =
      unconstrained_total > p.bandwidth_cap_mhz.value() * (1.0 + 1e-9);
  if (!rationed) {
    for (std::size_t n = 0; n < market.vmu_count(); ++n) {
      const double hi =
          std::max(2.0 * candidate.demands[n], p.bandwidth_cap_mhz.value());
      for (std::size_t i = 0; i < samples; ++i) {
        const double b = hi * static_cast<double>(i) /
                         static_cast<double>(samples - 1);
        const double gain = market.vmu_utility(n, b, candidate.price) -
                            candidate.vmu_utilities[n];
        check.max_follower_gain = std::max(check.max_follower_gain, gain);
      }
    }
  }
  return check;
}

}  // namespace vtm::core
