#include "core/multi_msp.hpp"

#include <algorithm>
#include <cmath>

#include "game/maximize.hpp"
#include "util/contracts.hpp"

namespace vtm::core {

multi_msp_market::multi_msp_market(multi_msp_params params)
    : params_(std::move(params)), link_(params_.link) {
  VTM_EXPECTS(!params_.msps.empty());
  VTM_EXPECTS(!params_.vmus.empty());
  VTM_EXPECTS(params_.share_sharpness > 0.0);
  for (const auto& msp : params_.msps) {
    VTM_EXPECTS(msp.unit_cost > 0.0);
    VTM_EXPECTS(msp.bandwidth_cap_mhz > 0.0);
    VTM_EXPECTS(msp.price_cap >= msp.unit_cost);
  }
  for (const auto& vmu : params_.vmus) {
    VTM_EXPECTS(vmu.alpha > 0.0);
    VTM_EXPECTS(vmu.data_mb > 0.0);
  }
}

std::vector<double> multi_msp_market::shares(
    std::span<const double> prices) const {
  VTM_EXPECTS(prices.size() == msp_count());
  // Numerically-stable softmin: subtract the minimum price.
  const double p_min = *std::min_element(prices.begin(), prices.end());
  std::vector<double> weights(prices.size());
  double total = 0.0;
  for (std::size_t m = 0; m < prices.size(); ++m) {
    VTM_EXPECTS(prices[m] > 0.0);
    weights[m] = std::exp(-params_.share_sharpness * (prices[m] - p_min));
    total += weights[m];
  }
  for (double& w : weights) w /= total;
  return weights;
}

double multi_msp_market::effective_price(
    std::span<const double> prices) const {
  const auto w = shares(prices);
  double effective = 0.0;
  for (std::size_t m = 0; m < prices.size(); ++m)
    effective += w[m] * prices[m];
  return effective;
}

double multi_msp_market::vmu_demand(std::size_t n,
                                    std::span<const double> prices) const {
  VTM_EXPECTS(n < vmu_count());
  const double p_eff = effective_price(prices);
  const double kappa = params_.vmus[n].data_mb / spectral_efficiency();
  const double interior = params_.vmus[n].alpha / p_eff - kappa;
  return interior > 0.0 ? interior : 0.0;
}

std::vector<double> multi_msp_market::msp_sales(
    std::span<const double> prices) const {
  const auto w = shares(prices);
  double total_demand = 0.0;
  for (std::size_t n = 0; n < vmu_count(); ++n)
    total_demand += vmu_demand(n, prices);
  std::vector<double> sales(msp_count());
  for (std::size_t m = 0; m < msp_count(); ++m) {
    sales[m] =
        std::min(w[m] * total_demand, params_.msps[m].bandwidth_cap_mhz);
  }
  return sales;
}

std::vector<double> multi_msp_market::msp_utilities(
    std::span<const double> prices) const {
  const auto sales = msp_sales(prices);
  std::vector<double> utilities(msp_count());
  for (std::size_t m = 0; m < msp_count(); ++m)
    utilities[m] = (prices[m] - params_.msps[m].unit_cost) * sales[m];
  return utilities;
}

double multi_msp_market::best_response_price(
    std::size_t m, std::span<const double> prices) const {
  VTM_EXPECTS(m < msp_count());
  VTM_EXPECTS(prices.size() == msp_count());
  std::vector<double> candidate(prices.begin(), prices.end());
  const auto objective = [&](double price) {
    candidate[m] = price;
    return msp_utilities(candidate)[m];
  };
  // Softmin shares make the profit non-concave in corner cases; grid-restart
  // before the golden-section refinement, as in the generic solver.
  const double lo = params_.msps[m].unit_cost;
  const double hi = params_.msps[m].price_cap;
  constexpr std::size_t grid = 48;
  double best_price = lo;
  double best_value = objective(lo);
  for (std::size_t i = 1; i < grid; ++i) {
    const double p = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(grid - 1);
    const double v = objective(p);
    if (v > best_value) {
      best_value = v;
      best_price = p;
    }
  }
  const double cell = (hi - lo) / static_cast<double>(grid - 1);
  const auto refined = game::golden_section_maximize(
      objective, std::max(lo, best_price - cell),
      std::min(hi, best_price + cell), 1e-9);
  return refined.value >= best_value ? refined.arg : best_price;
}

multi_msp_equilibrium solve_price_competition(const multi_msp_market& market,
                                              double tol,
                                              std::size_t max_sweeps) {
  VTM_EXPECTS(tol > 0.0);
  const auto& params = market.params();

  multi_msp_equilibrium result;
  // Start from each MSP's cap midpoint (any interior point works; the
  // iteration is a contraction for smoothed shares).
  result.prices.resize(market.msp_count());
  for (std::size_t m = 0; m < market.msp_count(); ++m)
    result.prices[m] =
        0.5 * (params.msps[m].unit_cost + params.msps[m].price_cap);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_change = 0.0;
    for (std::size_t m = 0; m < market.msp_count(); ++m) {
      const double updated = market.best_response_price(m, result.prices);
      max_change = std::max(max_change, std::abs(updated - result.prices[m]));
      result.prices[m] = updated;
    }
    ++result.iterations;
    if (max_change <= tol) {
      result.converged = true;
      break;
    }
  }

  result.sales = market.msp_sales(result.prices);
  result.utilities = market.msp_utilities(result.prices);
  result.effective_price = market.effective_price(result.prices);
  for (double s : result.sales) result.total_demand += s;

  // Total VMU utility at the effective price (immersion minus payment).
  const double r = market.spectral_efficiency();
  for (std::size_t n = 0; n < market.vmu_count(); ++n) {
    const double b = market.vmu_demand(n, result.prices);
    if (b <= 0.0) continue;
    const auto& vmu = params.vmus[n];
    const double aotm = vmu.data_mb / (b * r);
    result.total_vmu_utility +=
        vmu.alpha * std::log(1.0 + 1.0 / aotm) - result.effective_price * b;
  }
  return result;
}

}  // namespace vtm::core
