#include "core/multi_msp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "game/maximize.hpp"
#include "util/contracts.hpp"

namespace vtm::core {

multi_msp_market::multi_msp_market(multi_msp_params params)
    : params_(std::move(params)), link_(params_.link) {
  VTM_EXPECTS(!params_.msps.empty());
  VTM_EXPECTS(!params_.vmus.empty());
  VTM_EXPECTS(params_.share_sharpness > 0.0);
  for (const auto& msp : params_.msps) {
    VTM_EXPECTS(msp.unit_cost > 0.0);
    VTM_EXPECTS(msp.bandwidth_cap_mhz > 0.0);
    VTM_EXPECTS(msp.price_cap >= msp.unit_cost);
  }
  for (const auto& vmu : params_.vmus) {
    VTM_EXPECTS(vmu.alpha > 0.0);
    VTM_EXPECTS(vmu.data_mb > 0.0);
  }

  // Demand curve: VMU n is active iff α_n/p_eff − κ_n > 0, i.e. iff its
  // activation threshold t_n = α_n/κ_n exceeds p_eff. Sorting by t_n makes
  // the active set a suffix of the order; suffix sums of α and κ turn the
  // aggregate demand into (Σα)/p_eff − Σκ over that suffix.
  const std::size_t n_vmus = params_.vmus.size();
  const double r = link_.spectral_efficiency();
  std::vector<std::size_t> order(n_vmus);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> kappa(n_vmus);
  std::vector<double> threshold(n_vmus);
  for (std::size_t n = 0; n < n_vmus; ++n) {
    kappa[n] = params_.vmus[n].data_mb / r;
    threshold[n] = params_.vmus[n].alpha / kappa[n];
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return threshold[a] < threshold[b];
                   });
  sorted_alpha_.resize(n_vmus);
  sorted_kappa_.resize(n_vmus);
  sorted_threshold_.resize(n_vmus);
  for (std::size_t i = 0; i < n_vmus; ++i) {
    sorted_alpha_[i] = params_.vmus[order[i]].alpha;
    sorted_kappa_[i] = kappa[order[i]];
    sorted_threshold_[i] = threshold[order[i]];
  }
  // Accumulate descending so the O(N) reference walk (highest threshold
  // first) performs the identical sequence of FP additions.
  suffix_alpha_.assign(n_vmus + 1, 0.0);
  suffix_kappa_.assign(n_vmus + 1, 0.0);
  for (std::size_t i = n_vmus; i-- > 0;) {
    suffix_alpha_[i] = sorted_alpha_[i] + suffix_alpha_[i + 1];
    suffix_kappa_[i] = sorted_kappa_[i] + suffix_kappa_[i + 1];
  }
}

std::vector<double> multi_msp_market::shares(
    std::span<const double> prices) const {
  VTM_EXPECTS(prices.size() == msp_count());
  // Numerically-stable softmin: subtract the minimum price.
  const double p_min = *std::min_element(prices.begin(), prices.end());
  std::vector<double> weights(prices.size());
  double total = 0.0;
  for (std::size_t m = 0; m < prices.size(); ++m) {
    VTM_EXPECTS(prices[m] > 0.0);
    weights[m] = std::exp(-params_.share_sharpness * (prices[m] - p_min));
    total += weights[m];
  }
  for (double& w : weights) w /= total;
  return weights;
}

double multi_msp_market::effective_price(
    std::span<const double> prices) const {
  const auto w = shares(prices);
  double effective = 0.0;
  for (std::size_t m = 0; m < prices.size(); ++m)
    effective += w[m] * prices[m];
  return effective;
}

double multi_msp_market::vmu_demand(std::size_t n,
                                    std::span<const double> prices) const {
  VTM_EXPECTS(n < vmu_count());
  const double p_eff = effective_price(prices);
  const double kappa = params_.vmus[n].data_mb / spectral_efficiency();
  const double interior = params_.vmus[n].alpha / p_eff - kappa;
  return interior > 0.0 ? interior : 0.0;
}

double multi_msp_market::vmu_demand_at(std::size_t n, double p_eff) const {
  VTM_EXPECTS(n < vmu_count());
  VTM_EXPECTS(p_eff > 0.0);
  const double kappa = params_.vmus[n].data_mb / spectral_efficiency();
  const double interior = params_.vmus[n].alpha / p_eff - kappa;
  return interior > 0.0 ? interior : 0.0;
}

double multi_msp_market::total_demand(double p_eff) const {
  VTM_EXPECTS(p_eff > 0.0);
  // First sorted position whose threshold strictly exceeds p_eff; everything
  // from there up is active.
  const auto it = std::upper_bound(sorted_threshold_.begin(),
                                   sorted_threshold_.end(), p_eff);
  const auto i =
      static_cast<std::size_t>(it - sorted_threshold_.begin());
  if (i == sorted_threshold_.size()) return 0.0;
  const double demand = suffix_alpha_[i] / p_eff - suffix_kappa_[i];
  return demand > 0.0 ? demand : 0.0;
}

double multi_msp_market::total_demand_reference(double p_eff) const {
  VTM_EXPECTS(p_eff > 0.0);
  // Walk the sorted VMUs from the highest threshold down, accumulating α and
  // κ with the same additions the suffix sums were built from.
  double alpha_sum = 0.0;
  double kappa_sum = 0.0;
  bool any_active = false;
  for (std::size_t i = sorted_threshold_.size(); i-- > 0;) {
    if (!(sorted_threshold_[i] > p_eff)) break;
    alpha_sum = sorted_alpha_[i] + alpha_sum;
    kappa_sum = sorted_kappa_[i] + kappa_sum;
    any_active = true;
  }
  if (!any_active) return 0.0;
  const double demand = alpha_sum / p_eff - kappa_sum;
  return demand > 0.0 ? demand : 0.0;
}

std::vector<double> multi_msp_market::msp_sales(
    std::span<const double> prices) const {
  const auto w = shares(prices);
  double total_demand = 0.0;
  for (std::size_t n = 0; n < vmu_count(); ++n)
    total_demand += vmu_demand(n, prices);
  std::vector<double> sales(msp_count());
  for (std::size_t m = 0; m < msp_count(); ++m) {
    sales[m] =
        std::min(w[m] * total_demand, params_.msps[m].bandwidth_cap_mhz);
  }
  return sales;
}

std::vector<double> multi_msp_market::msp_utilities(
    std::span<const double> prices) const {
  const auto sales = msp_sales(prices);
  std::vector<double> utilities(msp_count());
  for (std::size_t m = 0; m < msp_count(); ++m)
    utilities[m] = (prices[m] - params_.msps[m].unit_cost) * sales[m];
  return utilities;
}

multi_msp_market::rival_cache multi_msp_market::cache_rivals(
    std::size_t m, std::span<const double> prices) const {
  VTM_EXPECTS(m < msp_count());
  VTM_EXPECTS(prices.size() == msp_count());
  rival_cache cache;
  cache.lo = params_.msps[m].unit_cost;
  cache.hi = params_.msps[m].price_cap;
  cache.cap = params_.msps[m].bandwidth_cap_mhz;
  // Anchor at the cheapest rival: its weight is exactly 1, so the rivals'
  // mass is >= 1 and the softmin denominator can never vanish, no matter
  // how sharp λ is.
  cache.ref = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < prices.size(); ++j) {
    if (j == m) continue;
    VTM_EXPECTS(prices[j] > 0.0);
    cache.ref = std::min(cache.ref, prices[j]);
    cache.has_rivals = true;
  }
  if (!cache.has_rivals) {
    cache.ref = cache.lo;
    return cache;
  }
  const double lambda = params_.share_sharpness;
  for (std::size_t j = 0; j < prices.size(); ++j) {
    if (j == m) continue;
    const double w = std::exp(-lambda * (prices[j] - cache.ref));
    cache.rival_w += w;
    cache.rival_wp += w * prices[j];
  }
  return cache;
}

multi_msp_market::rival_cache::point multi_msp_market::rival_cache::at(
    double lambda, double price) const {
  // Alone in the market the softmin is degenerate: full share at own price.
  if (!has_rivals) return {1.0, price};
  if (price >= ref) {
    // Candidate at or above the anchor: its weight decays (underflow to 0 is
    // the correct priced-out limit, the rivals keep mass >= 1).
    const double w = std::exp(-lambda * (price - ref));
    const double denom = w + rival_w;
    return {w / denom, (w * price + rival_wp) / denom};
  }
  // Candidate undercuts every rival: re-anchor at the candidate, which
  // rescales the rivals' mass toward zero (their priced-out limit) while the
  // candidate's own weight is exactly 1.
  const double u = std::exp(-lambda * (ref - price));
  const double denom = 1.0 + u * rival_w;
  return {1.0 / denom, (price + u * rival_wp) / denom};
}

multi_msp_market::demand_point multi_msp_market::demand_at(
    double p_eff) const {
  VTM_EXPECTS(p_eff > 0.0);
  const auto it = std::upper_bound(sorted_threshold_.begin(),
                                   sorted_threshold_.end(), p_eff);
  const auto i = static_cast<std::size_t>(it - sorted_threshold_.begin());
  if (i == sorted_threshold_.size()) return {};
  const double demand = suffix_alpha_[i] / p_eff - suffix_kappa_[i];
  if (!(demand > 0.0)) return {};
  return {demand, -suffix_alpha_[i] / (p_eff * p_eff)};
}

multi_msp_market::best_response multi_msp_market::best_response_to(
    std::size_t m, std::span<const double> prices, double tol) const {
  VTM_EXPECTS(tol > 0.0);
  const rival_cache cache = cache_rivals(m, prices);
  const double lambda = params_.share_sharpness;
  // One exp + one O(log N) demand lookup per candidate; no allocation.
  const auto objective = [&](double price) {
    const auto [s, p_eff] = cache.at(lambda, price);
    const double sold = std::min(s * total_demand(p_eff), cache.cap);
    return (price - cache.lo) * sold;
  };
  // Softmin shares make the profit non-concave in corner cases; grid-restart
  // before the golden-section refinement, as in the generic solver.
  const auto found =
      game::bracketed_maximize(objective, cache.lo, cache.hi, 48, tol);
  return {found.arg, found.value, found.evaluations};
}

multi_msp_market::best_response multi_msp_market::best_response_local(
    std::size_t m, std::span<const double> prices, double center,
    double halfwidth, double tol) const {
  VTM_EXPECTS(tol > 0.0);
  const rival_cache cache = cache_rivals(m, prices);
  const double lambda = params_.share_sharpness;
  best_response out;
  // Profit and closed-form derivative at a candidate price. With
  // w = e^{−λ(p−ref)}, s = w/(w+W), p̄ = (wp + WP)/(w+W):
  //   s'  = −λ·s·(1−s)
  //   p̄'  = s·(1 − λ(p − p̄))
  //   f   = (p − C)·min(s·D(p̄), cap)
  //   f'  = s·D + (p − C)(s'·D + s·D'·p̄')        (uncapped)
  //       = cap                                   (capped: f is linear)
  // Zero demand means the profit is flat at 0; report a negative slope so
  // the search walks left toward prices that activate buyers.
  struct probe {
    double f = 0.0;
    double g = 0.0;
  };
  const auto eval = [&](double price) {
    ++out.evaluations;
    const auto [s, p_eff] = cache.at(lambda, price);
    const auto d = demand_at(p_eff);
    if (d.demand <= 0.0) return probe{0.0, -1.0};
    const double margin = price - cache.lo;
    if (s * d.demand >= cache.cap) return probe{margin * cache.cap, cache.cap};
    const double s_prime = -lambda * s * (1.0 - s);
    const double p_eff_prime = s * (1.0 - lambda * (price - p_eff));
    return probe{margin * s * d.demand,
                 s * d.demand +
                     margin * (s_prime * d.demand +
                               s * d.slope * p_eff_prime)};
  };
  double h = std::max(halfwidth, tol);
  for (;;) {
    const double a = std::max(cache.lo, center - h);
    const double b = std::min(cache.hi, center + h);
    const auto pa = eval(a);
    if (pa.g < 0.0 && a > cache.lo) {
      // Profit already falling at the left edge: the optimum is below the
      // bracket. Recenter and widen.
      center = a;
      h *= 4.0;
      continue;
    }
    const auto pb = eval(b);
    if (pb.g > 0.0 && b < cache.hi) {
      center = b;
      h *= 4.0;
      continue;
    }
    if (pa.g <= 0.0) {
      // Falling from the domain edge: boundary optimum at C_m.
      out.price = a;
      out.value = pa.f;
      return out;
    }
    if (pb.g >= 0.0) {
      out.price = b;
      out.value = pb.f;
      return out;
    }
    // g(a) > 0 > g(b): the derivative crosses zero inside. Illinois false
    // position — a stalled endpoint has its derivative halved, which forces
    // both sides to move and keeps convergence superlinear even across the
    // sign jump at a rationing kink.
    double lo_x = a, lo_g = pa.g;
    double hi_x = b, hi_g = pb.g;
    probe best = pa.f >= pb.f ? pa : pb;
    double best_x = pa.f >= pb.f ? a : b;
    int side = 0;
    while (hi_x - lo_x > tol) {
      double x = (lo_g * hi_x - hi_g * lo_x) / (lo_g - hi_g);
      if (!(x > lo_x) || !(x < hi_x)) x = 0.5 * (lo_x + hi_x);
      const auto px = eval(x);
      if (px.f >= best.f) {
        best = px;
        best_x = x;
      }
      if (px.g > 0.0) {
        lo_x = x;
        lo_g = px.g;
        if (side == -1) hi_g *= 0.5;
        side = -1;
      } else {
        hi_x = x;
        hi_g = px.g;
        if (side == 1) lo_g *= 0.5;
        side = 1;
      }
    }
    out.price = best_x;
    out.value = best.f;
    return out;
  }
}

double multi_msp_market::best_response_price(
    std::size_t m, std::span<const double> prices) const {
  return best_response_to(m, prices).price;
}

double multi_msp_market::best_response_price_reference(
    std::size_t m, std::span<const double> prices) const {
  VTM_EXPECTS(m < msp_count());
  VTM_EXPECTS(prices.size() == msp_count());
  // Original slow path, kept as the oracle: full softmin re-normalization
  // and a per-VMU demand loop in roster order per evaluation — but with the
  // scratch buffers hoisted out of the objective (one allocation per call,
  // not one per grid point) and only seller m's utility computed.
  std::vector<double> candidate(prices.begin(), prices.end());
  std::vector<double> weights(msp_count());
  const double lambda = params_.share_sharpness;
  const double r = spectral_efficiency();
  const auto objective = [&](double price) {
    candidate[m] = price;
    const double p_min =
        *std::min_element(candidate.begin(), candidate.end());
    double total = 0.0;
    for (std::size_t j = 0; j < candidate.size(); ++j) {
      weights[j] = std::exp(-lambda * (candidate[j] - p_min));
      total += weights[j];
    }
    for (double& w : weights) w /= total;
    double p_eff = 0.0;
    for (std::size_t j = 0; j < candidate.size(); ++j)
      p_eff += weights[j] * candidate[j];
    double demand = 0.0;
    for (const auto& vmu : params_.vmus) {
      const double interior = vmu.alpha / p_eff - vmu.data_mb / r;
      demand += interior > 0.0 ? interior : 0.0;
    }
    const double sold =
        std::min(weights[m] * demand, params_.msps[m].bandwidth_cap_mhz);
    return (price - params_.msps[m].unit_cost) * sold;
  };
  const double lo = params_.msps[m].unit_cost;
  const double hi = params_.msps[m].price_cap;
  constexpr std::size_t grid = 48;
  double best_price = lo;
  double best_value = objective(lo);
  for (std::size_t i = 1; i < grid; ++i) {
    const double p = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(grid - 1);
    const double v = objective(p);
    if (v > best_value) {
      best_value = v;
      best_price = p;
    }
  }
  const double cell = (hi - lo) / static_cast<double>(grid - 1);
  const auto refined = game::golden_section_maximize(
      objective, std::max(lo, best_price - cell),
      std::min(hi, best_price + cell), 1e-9);
  return refined.value >= best_value ? refined.arg : best_price;
}

multi_msp_equilibrium solve_price_competition(
    const multi_msp_market& market, const price_competition_options& options) {
  VTM_EXPECTS(options.tol > 0.0);
  VTM_EXPECTS(options.damping > 0.0 && options.damping <= 1.0);
  VTM_EXPECTS(options.warm_start.empty() ||
              options.warm_start.size() == market.msp_count());
  VTM_EXPECTS(options.pinned == price_competition_options::no_pin ||
              options.pinned < market.msp_count());
  const auto& params = market.params();
  const std::size_t msps = market.msp_count();

  multi_msp_equilibrium result;
  result.prices.resize(msps);
  if (options.warm_start.empty()) {
    // Cold start from each MSP's cap midpoint (any interior point works);
    // this is the bitwise-stable path for the first clearing of a run.
    for (std::size_t m = 0; m < msps; ++m)
      result.prices[m] =
          0.5 * (params.msps[m].unit_cost + params.msps[m].price_cap);
  } else {
    result.warm_started = true;
    for (std::size_t m = 0; m < msps; ++m)
      result.prices[m] = std::clamp(options.warm_start[m],
                                    params.msps[m].unit_cost,
                                    params.msps[m].price_cap);
  }

  // Dampened simultaneous best response: every sweep computes all BR_m at
  // the current vector, then relaxes p ← p + θ(BR(p) − p). The residual
  // max_m |BR_m − p_m| is the fixed-point defect; its ratio across sweeps is
  // the empirical contraction factor q. When q stalls near 1 for two
  // consecutive sweeps (Edgeworth cycling under sharp λ + binding caps), θ
  // is halved — a deterministic bisection on the dampening factor — until
  // the iteration contracts again. When the iteration *is* contracting, the
  // update is Anderson(1)-accelerated: with defect f_k = BR(p_k) − p_k, the
  // mixing weight γ = <f_k, f_k − f_{k−1}> / ‖f_k − f_{k−1}‖² minimizes the
  // extrapolated defect, and p ← BR(p_k) − γ(BR(p_k) − BR(p_{k−1})) damps
  // the coupled cross-seller error modes a per-component rule would miss.
  //
  // Search cost control: each sweep's best responses are solved only to a
  // forcing tolerance proportional to the current defect (precision the
  // iterate cannot use yet is not paid for), and after the first sweep —
  // or immediately, on a warm start — each seller's search is bracketed
  // around its previous response (`best_response_local`), whose expansion
  // rule restores the full-range search whenever the bracket goes stale.
  constexpr double stall_ratio = 0.95;
  constexpr double theta_min = 1.0 / 64.0;
  constexpr double inner_cap = 1e-3;
  constexpr double inner_floor = 1e-9;
  double theta = options.damping;
  double prev_residual = std::numeric_limits<double>::infinity();
  double ratio = 0.0;
  std::size_t stalled = 0;
  std::vector<double> response(msps);
  std::vector<double> prev_prices(msps, 0.0);
  std::vector<double> prev_response(msps, 0.0);
  bool have_prev = false;
  std::vector<double> center(msps, 0.0);
  std::vector<double> halfwidth(msps, 0.0);
  bool local = result.warm_started;
  if (local) {
    // The warm prices sit near the previous fixed point, where they *are*
    // the best responses — a tight initial bracket around them.
    for (std::size_t m = 0; m < msps; ++m) {
      center[m] = result.prices[m];
      halfwidth[m] = (params.msps[m].price_cap - params.msps[m].unit_cost) /
                     static_cast<double>(47);
    }
  }

  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const double inner =
        std::isinf(prev_residual)
            ? inner_cap
            : std::clamp(0.01 * prev_residual, inner_floor, inner_cap);
    double residual = 0.0;
    for (std::size_t m = 0; m < msps; ++m) {
      if (m == options.pinned) {
        response[m] = result.prices[m];
        continue;
      }
      const auto br =
          local ? market.best_response_local(m, result.prices, center[m],
                                             halfwidth[m], inner)
                : market.best_response_to(m, result.prices, inner);
      response[m] = br.price;
      result.objective_evals += br.evaluations;
      residual = std::max(residual, std::abs(br.price - result.prices[m]));
    }
    ++result.iterations;
    ratio = std::isinf(prev_residual)
                ? 0.0
                : (prev_residual > 0.0 ? residual / prev_residual : 0.0);
    result.residual = residual;
    if (residual <= options.tol) {
      // Land exactly on the best responses so the fixed point is exact up
      // to tol regardless of θ.
      result.prices = response;
      result.converged = true;
      break;
    }
    local = true;
    // Distinguish a cycle from a crawl: a non-shrinking residual only calls
    // for dampening when the defect *reverses direction* (Edgeworth
    // undercut-and-jump oscillation, ⟨f_k, f_{k−1}⟩ < 0). A monotone drift
    // at ratio ≈ 1 — e.g. best responses marching toward a corner
    // equilibrium at the price cap — must keep the full step, or halving θ
    // freezes it short of the fixed point.
    double defect_dot = 0.0;
    double num = 0.0;
    double den = 0.0;
    for (std::size_t m = 0; m < msps; ++m) {
      const double f = response[m] - result.prices[m];
      const double f_prev = prev_response[m] - prev_prices[m];
      const double df = f - f_prev;
      defect_dot += f * f_prev;
      num += f * df;
      den += df * df;
    }
    const bool cycling =
        have_prev && defect_dot < 0.0 && ratio >= stall_ratio;
    if (cycling) {
      if (++stalled >= 2 && theta > theta_min) {
        theta = std::max(theta_min, 0.5 * theta);
        stalled = 0;
      }
    } else {
      stalled = 0;
    }
    double gamma = 0.0;
    if (!cycling && have_prev && theta == options.damping && den > 1e-28)
      gamma = std::clamp(num / den, -2.0, 0.99);
    double max_step = 0.0;
    for (std::size_t m = 0; m < msps; ++m) {
      const double next =
          gamma != 0.0
              ? response[m] - gamma * (response[m] - prev_response[m])
              : result.prices[m] + theta * (response[m] - result.prices[m]);
      prev_prices[m] = result.prices[m];
      prev_response[m] = response[m];
      result.prices[m] = std::clamp(next, params.msps[m].unit_cost,
                                    params.msps[m].price_cap);
      max_step =
          std::max(max_step, std::abs(result.prices[m] - prev_prices[m]));
    }
    // Next sweep's search brackets: each best response sits near this
    // sweep's response, displaced by at most ~the largest price step (the
    // response map is 1-Lipschitz-ish in the rivals' prices); the 2× and
    // the 64·inner floor absorb the slack, and `best_response_local`'s
    // expansion rule covers the exceptions.
    for (std::size_t m = 0; m < msps; ++m) {
      center[m] = response[m];
      halfwidth[m] = 1.5 * max_step + 16.0 * inner;
    }
    have_prev = true;
    prev_residual = residual;
  }

  result.damping = theta;
  result.contraction_ratio = ratio;
  if (result.converged && ratio < 1.0) {
    result.certified = true;
    result.error_bound =
        ratio > 0.0 ? (ratio / (1.0 - ratio)) * result.residual : 0.0;
  } else {
    result.error_bound = std::numeric_limits<double>::infinity();
  }

  // Equilibrium summary: one softmin pass, then the per-VMU demand loop at
  // the effective price — the same arithmetic `msp_sales`/`msp_utilities`/
  // `effective_price` perform, without recomputing the shares per call.
  const auto w = market.shares(result.prices);
  double p_eff = 0.0;
  for (std::size_t m = 0; m < msps; ++m) p_eff += w[m] * result.prices[m];
  result.effective_price = p_eff;
  double cohort_demand = 0.0;
  for (std::size_t n = 0; n < market.vmu_count(); ++n)
    cohort_demand += market.vmu_demand_at(n, p_eff);
  result.sales.resize(msps);
  result.utilities.resize(msps);
  for (std::size_t m = 0; m < msps; ++m) {
    result.sales[m] =
        std::min(w[m] * cohort_demand, params.msps[m].bandwidth_cap_mhz);
    result.utilities[m] =
        (result.prices[m] - params.msps[m].unit_cost) * result.sales[m];
    result.total_demand += result.sales[m];
  }

  // Total VMU utility at the effective price (immersion minus payment).
  const double r = market.spectral_efficiency();
  for (std::size_t n = 0; n < market.vmu_count(); ++n) {
    const double b = market.vmu_demand_at(n, p_eff);
    if (b <= 0.0) continue;
    const auto& vmu = params.vmus[n];
    const double aotm = vmu.data_mb / (b * r);
    result.total_vmu_utility +=
        vmu.alpha * std::log(1.0 + 1.0 / aotm) - p_eff * b;
  }
  return result;
}

multi_msp_equilibrium solve_price_competition(const multi_msp_market& market,
                                              double tol,
                                              std::size_t max_sweeps) {
  price_competition_options options;
  options.tol = tol;
  options.max_sweeps = max_sweeps;
  return solve_price_competition(market, options);
}

}  // namespace vtm::core
