#include "core/game_adapter.hpp"

#include <algorithm>

#include "game/maximize.hpp"
#include "util/contracts.hpp"

namespace vtm::core {

vmu_follower::vmu_follower(const migration_market& market, std::size_t index)
    : market_(market), index_(index) {
  VTM_EXPECTS(index < market.vmu_count());
}

double vmu_follower::utility(double own, double leader_action,
                             std::span<const double> /*others*/) const {
  if (own <= 0.0) return 0.0;
  return market_.vmu_utility(index_, own, leader_action);
}

double vmu_follower::best_response(double leader_action,
                                   std::span<const double> others) const {
  VTM_EXPECTS(leader_action > 0.0);
  // Numeric search over [0, hi]; hi chosen from the interior optimum scale.
  const double hi =
      std::max(1.0, 4.0 * market_.params().vmus[index_].alpha / leader_action);
  const auto result = game::golden_section_maximize(
      [&](double b) { return utility(b, leader_action, others); }, 0.0, hi,
      1e-10);
  // Participation: never return a negative-utility positive purchase.
  return result.value > 0.0 ? result.arg : 0.0;
}

std::vector<std::unique_ptr<game::follower>> make_followers(
    const migration_market& market) {
  std::vector<std::unique_ptr<game::follower>> followers;
  followers.reserve(market.vmu_count());
  for (std::size_t n = 0; n < market.vmu_count(); ++n)
    followers.push_back(std::make_unique<vmu_follower>(market, n));
  return followers;
}

game::leader_problem make_leader_problem(const migration_market& market) {
  game::leader_problem problem;
  problem.action_lo = market.params().unit_cost;
  problem.action_hi = market.params().price_cap;
  problem.utility = [&market](double price, std::span<const double> requests) {
    // Apply the capacity rationing rule to the requested bandwidths.
    double total = 0.0;
    for (double b : requests) total += b;
    const double cap = market.params().bandwidth_cap_mhz.value();
    const double scale = total > cap && total > 0.0 ? cap / total : 1.0;
    double utility = 0.0;
    for (double b : requests)
      utility += (price - market.params().unit_cost) * b * scale;
    return utility;
  };
  return problem;
}

}  // namespace vtm::core
