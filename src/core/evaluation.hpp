// Statistical evaluation of the learning mechanism across seeds, and policy
// checkpointing for deployment without retraining.
//
// The paper reports single training runs; a downstream user needs to know the
// variance. `evaluate_robustness` trains across independent seeds and reports
// optimality statistics plus the episode at which each run first reached 95%
// of the oracle utility (its "convergence episode").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/mechanism.hpp"

namespace vtm::core {

/// Outcome of one seeded training run.
struct seed_outcome {
  std::uint64_t seed = 0;
  double optimality = 0.0;        ///< Final deterministic eval / oracle.
  double learned_price = 0.0;
  double final_return = 0.0;      ///< Episode return of the last episode.
  std::size_t convergence_episode = 0;  ///< First episode with 10-episode
                                        ///< mean utility >= 95% of oracle
                                        ///< (== episode count if never).
};

/// Aggregate statistics over the seeds.
struct robustness_report {
  equilibrium oracle;
  std::vector<seed_outcome> outcomes;
  double mean_optimality = 0.0;
  double std_optimality = 0.0;
  double min_optimality = 0.0;
  double mean_convergence_episode = 0.0;
};

/// Train `n_seeds` independent runs (base.seed + i) and aggregate.
/// Requires n_seeds >= 1.
[[nodiscard]] robustness_report evaluate_robustness(
    const market_params& params, const mechanism_config& base,
    std::size_t n_seeds);

/// Train once and additionally return the serialized policy (the
/// `policy_checkpoint` field of the result is filled).
struct checkpointed_result {
  mechanism_result result;
  std::string checkpoint;  ///< nn::save_parameters text blob.
};
[[nodiscard]] checkpointed_result train_with_checkpoint(
    const market_params& params, const mechanism_config& config);

/// Rebuild the policy from a checkpoint and evaluate it deterministically on
/// a (possibly different) market without any training. The architecture in
/// `config` must match the checkpoint's. Returns the mean MSP utility of one
/// deterministic episode.
[[nodiscard]] double evaluate_checkpoint(const market_params& params,
                                         const mechanism_config& config,
                                         const std::string& checkpoint);

}  // namespace vtm::core
