// Analytic Stackelberg-equilibrium oracle (§III-B2, Theorems 1–2).
//
// Interior case (all VMUs active, capacity slack):
//   p* = sqrt(C · Σα_n / Σκ_n),  b*_n = α_n/p* − κ_n           (Theorem 2)
// Capacity-bound case (Σ b*(p*) > B_max): since U_s(p) is concave and the
// rationed branch (p − C)·B_max grows in p, the optimum sits at the smallest
// price clearing the cap:  p = Σα / (B_max + Σκ) over the active set.
// Price box: p ∈ [C, p_max] is enforced last, and the active set (VMUs with
// α_n/p > κ_n) is recomputed to a fixed point after each candidate.
//
// A derivative-free numeric solve over the same objective cross-checks the
// closed form in the tests, and `verify_equilibrium` certifies the
// no-profitable-deviation property of Definition 1.
#pragma once

#include <vector>

#include "core/market.hpp"

namespace vtm::core {

/// How the equilibrium price was determined.
enum class equilibrium_regime {
  interior,        ///< FOC zero inside (C, p_max), capacity slack.
  capacity_bound,  ///< Price lifted until Σb = B_max.
  price_capped,    ///< p_max binds.
  cost_floor,      ///< p = C binds (degenerate, zero margin).
};

/// Human-readable regime name.
[[nodiscard]] const char* to_string(equilibrium_regime regime) noexcept;

/// Full Stackelberg equilibrium of a market.
struct equilibrium {
  double price = 0.0;                   ///< p* — MSP's optimal unit price.
  std::vector<double> demands;          ///< b*_n after rationing (if any).
  double total_demand = 0.0;            ///< Σ b*_n.
  double leader_utility = 0.0;          ///< U_s(p*).
  std::vector<double> vmu_utilities;    ///< U_n at the equilibrium.
  double total_vmu_utility = 0.0;       ///< Σ U_n.
  std::vector<double> aotm;             ///< Per-VMU AoTM at the equilibrium.
  equilibrium_regime regime = equilibrium_regime::interior;
};

/// Closed-form solve with active-set iteration (exact for this model).
[[nodiscard]] equilibrium solve_equilibrium(const migration_market& market);

/// Market response to a *posted* (not necessarily optimal) price: rationed
/// demands, both sides' utilities, and per-VMU AoTM, with the regime label
/// classifying the posted price (rationing active -> capacity_bound; at the
/// box edges -> price_capped / cost_floor). This is the follower side of
/// every pricing backend — the oracle optimizes the price first, a learned
/// policy posts it directly. Requires price in [C, p_max].
[[nodiscard]] equilibrium evaluate_at_price(const migration_market& market,
                                            double price);

/// Numeric solve (grid + golden-section over the leader objective with
/// market-determined demands); used to cross-validate the closed form.
[[nodiscard]] equilibrium solve_equilibrium_numeric(
    const migration_market& market, std::size_t grid_points = 512);

/// Certificate for Definition 1: no player improves by deviating.
struct equilibrium_check {
  double max_leader_gain = 0.0;    ///< Best leader deviation found.
  double max_follower_gain = 0.0;  ///< Best follower deviation found.
  [[nodiscard]] bool holds(double tolerance) const noexcept {
    return max_leader_gain <= tolerance && max_follower_gain <= tolerance;
  }
};

/// Probe `samples` leader prices in [C, p_max] and `samples` follower
/// bandwidths per VMU against the candidate equilibrium.
[[nodiscard]] equilibrium_check verify_equilibrium(
    const migration_market& market, const equilibrium& candidate,
    std::size_t samples = 512);

}  // namespace vtm::core
