#include "rl/trainer.hpp"

#include <algorithm>

#include "rl/buffer.hpp"
#include "util/contracts.hpp"

namespace vtm::rl {

trainer::trainer(environment& env, actor_critic& policy, ppo& learner,
                 const trainer_config& config)
    : env_(env),
      policy_(policy),
      learner_(learner),
      config_(config),
      gen_(config.seed) {
  VTM_EXPECTS(config.episodes >= 1);
  VTM_EXPECTS(config.rounds_per_episode >= 1);
  VTM_EXPECTS(config.update_interval >= 1);
  VTM_EXPECTS(env.observation_dim() == policy.config().obs_dim);
  VTM_EXPECTS(env.action_dim() == policy.config().act_dim);
}

std::vector<episode_stats> trainer::train(const episode_callback& on_episode) {
  std::vector<episode_stats> history;
  history.reserve(config_.episodes);
  for (std::size_t e = 0; e < config_.episodes; ++e) {
    history.push_back(run_episode(e));
    if (on_episode) on_episode(history.back());
  }
  return history;
}

episode_stats trainer::run_episode(std::size_t episode_index) {
  episode_stats stats;
  stats.episode = episode_index;
  stats.best_utility = -1e300;

  rollout_buffer buffer(config_.update_interval, env_.observation_dim(),
                        env_.action_dim());
  nn::tensor observation = env_.reset();

  std::size_t executed = 0;
  for (std::size_t k = 0; k < config_.rounds_per_episode; ++k) {
    ++executed;
    const auto sample = policy_.act(observation, gen_);
    const step_result result = env_.step(sample.action);

    buffer.add(observation, sample.action, result.reward, sample.value,
               sample.log_prob, result.done);

    const auto it = result.info.find("leader_utility");
    const double utility =
        it != result.info.end() ? it->second : result.reward;
    stats.episode_return += result.reward;
    stats.mean_utility += utility;
    stats.best_utility = std::max(stats.best_utility, utility);
    stats.final_utility = utility;
    stats.mean_action += sample.action(0, 0);
    stats.final_action = sample.action(0, 0);

    observation = result.observation;

    const bool buffer_due = buffer.full() ||
                            k + 1 == config_.rounds_per_episode || result.done;
    if (buffer_due && buffer.size() > 0) {
      const double bootstrap = result.done ? 0.0 : policy_.value(observation);
      buffer.compute_advantages(learner_.config().gamma,
                                learner_.config().gae_lambda, bootstrap);
      const auto update = learner_.update(buffer);
      stats.policy_entropy = update.entropy;
      stats.value_loss = update.value_loss;
      buffer.clear();
    }
    if (result.done) break;
  }

  const auto rounds = static_cast<double>(executed);
  stats.mean_utility /= rounds;
  stats.mean_action /= rounds;
  return stats;
}

episode_stats trainer::evaluate() {
  episode_stats stats;
  stats.best_utility = -1e300;
  nn::tensor observation = env_.reset();
  std::size_t rounds = 0;
  for (std::size_t k = 0; k < config_.rounds_per_episode; ++k) {
    const auto sample = policy_.act_deterministic(observation);
    const step_result result = env_.step(sample.action);
    const auto it = result.info.find("leader_utility");
    const double utility =
        it != result.info.end() ? it->second : result.reward;
    stats.episode_return += result.reward;
    stats.mean_utility += utility;
    stats.best_utility = std::max(stats.best_utility, utility);
    stats.final_utility = utility;
    stats.mean_action += sample.action(0, 0);
    stats.final_action = sample.action(0, 0);
    observation = result.observation;
    ++rounds;
    if (result.done) break;
  }
  stats.mean_utility /= static_cast<double>(rounds);
  stats.mean_action /= static_cast<double>(rounds);
  return stats;
}

}  // namespace vtm::rl
