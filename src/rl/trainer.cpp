#include "rl/trainer.hpp"

#include <algorithm>

#include "rl/buffer.hpp"
#include "util/contracts.hpp"

namespace vtm::rl {

namespace {

/// One greedy (mean-action) episode without learning — shared by both
/// trainers so the B=1 and batched mechanism paths evaluate identically.
episode_stats evaluate_episode(environment& env, const actor_critic& policy,
                               std::size_t max_rounds) {
  episode_stats stats;
  stats.best_utility = -1e300;
  nn::tensor observation = env.reset();
  std::size_t rounds = 0;
  for (std::size_t k = 0; k < max_rounds; ++k) {
    const auto sample = policy.act_deterministic(observation);
    const step_result result = env.step(sample.action);
    const auto it = result.info.find("leader_utility");
    const double utility =
        it != result.info.end() ? it->second : result.reward;
    stats.episode_return += result.reward;
    stats.mean_utility += utility;
    stats.best_utility = std::max(stats.best_utility, utility);
    stats.final_utility = utility;
    stats.mean_action += sample.action(0, 0);
    stats.final_action = sample.action(0, 0);
    observation = result.observation;
    ++rounds;
    if (result.done) break;
  }
  stats.mean_utility /= static_cast<double>(rounds);
  stats.mean_action /= static_cast<double>(rounds);
  return stats;
}

}  // namespace

trainer::trainer(environment& env, actor_critic& policy, ppo& learner,
                 const trainer_config& config)
    : env_(env),
      policy_(policy),
      learner_(learner),
      config_(config),
      gen_(config.seed) {
  VTM_EXPECTS(config.episodes >= 1);
  VTM_EXPECTS(config.rounds_per_episode >= 1);
  VTM_EXPECTS(config.update_interval >= 1);
  VTM_EXPECTS(env.observation_dim() == policy.config().obs_dim);
  VTM_EXPECTS(env.action_dim() == policy.config().act_dim);
}

std::vector<episode_stats> trainer::train(const episode_callback& on_episode) {
  std::vector<episode_stats> history;
  history.reserve(config_.episodes);
  for (std::size_t e = 0; e < config_.episodes; ++e) {
    history.push_back(run_episode(e));
    if (on_episode) on_episode(history.back());
  }
  return history;
}

episode_stats trainer::run_episode(std::size_t episode_index) {
  episode_stats stats;
  stats.episode = episode_index;
  stats.best_utility = -1e300;

  const nn::math_mode mode =
      config_.fast_rollout ? nn::math_mode::fast : nn::math_mode::exact;
  rollout_buffer buffer(config_.update_interval, env_.observation_dim(),
                        env_.action_dim());
  nn::tensor observation = env_.reset();

  std::size_t executed = 0;
  for (std::size_t k = 0; k < config_.rounds_per_episode; ++k) {
    ++executed;
    const auto sample = policy_.act(observation, gen_, mode);
    const step_result result = env_.step(sample.action);

    buffer.add(observation, sample.action, result.reward, sample.value,
               sample.log_prob, result.done);

    const auto it = result.info.find("leader_utility");
    const double utility =
        it != result.info.end() ? it->second : result.reward;
    stats.episode_return += result.reward;
    stats.mean_utility += utility;
    stats.best_utility = std::max(stats.best_utility, utility);
    stats.final_utility = utility;
    stats.mean_action += sample.action(0, 0);
    stats.final_action = sample.action(0, 0);

    observation = result.observation;

    const bool buffer_due = buffer.full() ||
                            k + 1 == config_.rounds_per_episode || result.done;
    if (buffer_due && buffer.size() > 0) {
      const double bootstrap =
          result.done ? 0.0 : policy_.values_batch(observation, mode)[0];
      buffer.compute_advantages(learner_.config().gamma,
                                learner_.config().gae_lambda, bootstrap);
      const auto update = learner_.update(buffer);
      stats.policy_entropy = update.entropy;
      stats.value_loss = update.value_loss;
      buffer.clear();
    }
    if (result.done) break;
  }

  const auto rounds = static_cast<double>(executed);
  stats.mean_utility /= rounds;
  stats.mean_action /= rounds;
  return stats;
}

vector_trainer::vector_trainer(vector_env& envs, actor_critic& policy,
                               ppo& learner, const trainer_config& config)
    : envs_(envs),
      policy_(policy),
      learner_(learner),
      config_(config),
      gen_(config.seed) {
  VTM_EXPECTS(config.episodes >= 1);
  VTM_EXPECTS(config.rounds_per_episode >= 1);
  VTM_EXPECTS(config.update_interval >= 1);
  VTM_EXPECTS(envs.observation_dim() == policy.config().obs_dim);
  VTM_EXPECTS(envs.action_dim() == policy.config().act_dim);
}

std::vector<episode_stats> vector_trainer::train(
    const trainer::episode_callback& on_episode) {
  const std::size_t batch = envs_.size();

  // Per-environment accumulators for the episode in flight.
  struct accumulator {
    double episode_return = 0.0;
    double utility_sum = 0.0;
    double best_utility = -1e300;
    double final_utility = 0.0;
    double action_sum = 0.0;
    double final_action = 0.0;
    double policy_entropy = 0.0;
    double value_loss = 0.0;
    std::size_t rounds = 0;
  };
  std::vector<accumulator> acc(batch);

  rollout_buffer buffer(config_.update_interval, envs_.observation_dim(),
                        envs_.action_dim(), batch);
  nn::tensor observations = envs_.reset();

  std::vector<episode_stats> history;
  history.reserve(config_.episodes);
  std::vector<double> bootstraps(batch, 0.0);
  std::vector<std::uint8_t> truncated(batch, 0);

  const nn::math_mode mode =
      config_.fast_rollout ? nn::math_mode::fast : nn::math_mode::exact;
  while (history.size() < config_.episodes) {
    const auto sample = policy_.act_batch(observations, gen_, mode);
    const vector_step_result result = envs_.step(sample.actions);

    buffer.add_batch(observations, sample.actions, result.rewards,
                     sample.values, sample.log_probs, result.dones);

    bool boundary = false;
    for (std::size_t e = 0; e < batch; ++e) {
      accumulator& a = acc[e];
      ++a.rounds;
      const auto it = result.infos[e].find("leader_utility");
      const double utility =
          it != result.infos[e].end() ? it->second : result.rewards[e];
      a.episode_return += result.rewards[e];
      a.utility_sum += utility;
      a.best_utility = std::max(a.best_utility, utility);
      a.final_utility = utility;
      a.action_sum += sample.actions(e, 0);
      a.final_action = sample.actions(e, 0);
      if (result.dones[e]) {
        truncated[e] = 0;
        boundary = true;
      } else if (a.rounds >= config_.rounds_per_episode) {
        truncated[e] = 1;  // horizon reached without a terminal signal
        boundary = true;
      } else {
        truncated[e] = 0;
      }
    }

    observations = result.observations;

    // Update on a full buffer or at any episode boundary — the cadence the
    // single-env trainer uses, applied to all lockstep segments at once.
    if (buffer.steps() > 0 && (buffer.full() || boundary)) {
      // One batched critic pass bootstraps every non-terminal segment;
      // auto-reset replaced done rows, but those bootstrap with 0 anyway.
      // Truncated rows still hold the pre-reset observation here.
      const std::vector<double> values =
          policy_.values_batch(observations, mode);
      for (std::size_t e = 0; e < batch; ++e)
        bootstraps[e] = result.dones[e] ? 0.0 : values[e];
      buffer.compute_advantages(learner_.config().gamma,
                                learner_.config().gae_lambda, bootstraps);
      const auto update = learner_.update(buffer);
      for (auto& a : acc) {
        a.policy_entropy = update.entropy;
        a.value_loss = update.value_loss;
      }
      buffer.clear();
    }

    // Finalize completed episodes in environment-index order.
    for (std::size_t e = 0; e < batch; ++e) {
      if (!result.dones[e] && !truncated[e]) continue;
      const accumulator& a = acc[e];
      episode_stats stats;
      stats.episode = history.size();
      stats.episode_return = a.episode_return;
      const auto rounds = static_cast<double>(a.rounds);
      stats.mean_utility = a.utility_sum / rounds;
      stats.best_utility = a.best_utility;
      stats.final_utility = a.final_utility;
      stats.mean_action = a.action_sum / rounds;
      stats.final_action = a.final_action;
      stats.policy_entropy = a.policy_entropy;
      stats.value_loss = a.value_loss;
      history.push_back(stats);
      if (on_episode) on_episode(history.back());
      acc[e] = accumulator{};
      if (truncated[e])
        observations.set_row(e, envs_.reset_env(e));
      if (history.size() == config_.episodes) return history;
    }
  }
  return history;
}

episode_stats vector_trainer::evaluate() {
  return evaluate_episode(envs_.env(0), policy_, config_.rounds_per_episode);
}

episode_stats trainer::evaluate() {
  return evaluate_episode(env_, policy_, config_.rounds_per_episode);
}

}  // namespace vtm::rl
