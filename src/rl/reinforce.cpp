#include "rl/reinforce.hpp"

#include <cmath>
#include <vector>

#include "nn/gaussian.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace vtm::rl {

reinforce::reinforce(actor_critic& policy, const reinforce_config& config,
                     util::rng& gen)
    : policy_(policy),
      config_(config),
      gen_(gen.split()),
      optimizer_(policy.parameters(), config.learning_rate) {
  VTM_EXPECTS(config.learning_rate > 0.0);
  VTM_EXPECTS(config.gamma >= 0.0 && config.gamma <= 1.0);
  VTM_EXPECTS(config.value_coef >= 0.0);
  VTM_EXPECTS(config.max_grad_norm > 0.0);
}

reinforce_episode_stats reinforce::train_episode(environment& env,
                                                 std::size_t max_rounds) {
  VTM_EXPECTS(max_rounds >= 1);
  reinforce_episode_stats stats;

  // Roll out one full episode.
  std::vector<std::vector<double>> observations;
  std::vector<double> actions;
  std::vector<double> rewards;
  nn::tensor observation = env.reset();
  for (std::size_t k = 0; k < max_rounds; ++k) {
    const auto sample = policy_.act(observation, gen_);
    const auto result = env.step(sample.action);
    observations.emplace_back(observation.flat().begin(),
                              observation.flat().end());
    actions.push_back(sample.action.item());
    rewards.push_back(result.reward);

    const auto it = result.info.find("leader_utility");
    const double utility =
        it != result.info.end() ? it->second : result.reward;
    stats.episode_return += result.reward;
    stats.mean_utility += utility;
    stats.final_utility = utility;
    observation = result.observation;
    if (result.done) break;
  }
  const std::size_t steps = rewards.size();
  stats.mean_utility /= static_cast<double>(steps);

  // Discounted returns-to-go G_t.
  std::vector<double> returns(steps);
  double acc = 0.0;
  for (std::size_t t = steps; t-- > 0;) {
    acc = rewards[t] + config_.gamma * acc;
    returns[t] = acc;
  }

  // Batch tensors.
  const std::size_t obs_dim = observations.front().size();
  nn::tensor obs_batch({steps, obs_dim});
  nn::tensor act_batch({steps, 1});
  nn::tensor ret_batch({steps, 1});
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t c = 0; c < obs_dim; ++c)
      obs_batch(t, c) = observations[t][c];
    act_batch(t, 0) = actions[t];
    ret_batch(t, 0) = returns[t];
  }

  const auto obs_var = nn::variable::constant(obs_batch);
  const auto act_var = nn::variable::constant(act_batch);
  const auto ret_var = nn::variable::constant(ret_batch);

  const auto out = policy_.forward(obs_var);

  // Advantage = G_t − V(o_t) (baseline detached), optionally standardized.
  nn::tensor advantage = ret_batch;
  if (config_.use_baseline) {
    const nn::tensor& values = out.value.value();
    for (std::size_t t = 0; t < steps; ++t)
      advantage(t, 0) -= values(t, 0);
  }
  if (config_.normalize_returns && steps > 1) {
    util::running_stats norm;
    for (std::size_t t = 0; t < steps; ++t) norm.push(advantage(t, 0));
    const double denom = norm.stddev() > 1e-8 ? norm.stddev() : 1.0;
    for (std::size_t t = 0; t < steps; ++t)
      advantage(t, 0) = (advantage(t, 0) - norm.mean()) / denom;
  }
  const auto adv_var = nn::variable::constant(advantage);

  const nn::variable log_prob =
      nn::gaussian_log_prob(out.mean, policy_.log_std(), act_var);
  const nn::variable policy_loss = -nn::mean(log_prob * adv_var);
  const nn::variable value_loss = nn::mean(nn::square(out.value - ret_var));
  nn::variable loss = policy_loss;
  if (config_.use_baseline)
    loss = loss + config_.value_coef * value_loss;

  optimizer_.zero_grad();
  nn::backward(loss);
  nn::clip_grad_norm(policy_.parameters(), config_.max_grad_norm);
  optimizer_.step();

  stats.policy_loss = policy_loss.value().item();
  stats.value_loss = value_loss.value().item();
  return stats;
}

}  // namespace vtm::rl
