// Vectorized environment: B independent episodic environments stepped as one.
//
// `vector_env` owns B `environment` instances built from a factory, exposes
// observations/actions as B x dim tensors, and auto-resets any environment
// whose episode finished — the returned observation row is the *next*
// episode's initial observation while `dones[i]` still reports the boundary
// (standard vectorized-PPO semantics). With a thread count > 0 the B step
// calls are sharded across a util::thread_pool; environments are independent
// (each owns its RNG), so results are bitwise-identical to the serial order
// regardless of the thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rl/env.hpp"
#include "util/thread_pool.hpp"

namespace vtm::rl {

/// Builds the i-th environment replica. Replicas must be behaviourally
/// identical up to their (per-index) seeds.
using env_factory = std::function<std::unique_ptr<environment>(std::size_t)>;

/// Outcome of stepping all B environments once.
struct vector_step_result {
  nn::tensor observations;          ///< B x obs_dim, post-auto-reset.
  std::vector<double> rewards;      ///< B scalar rewards.
  std::vector<std::uint8_t> dones;  ///< 1 where the episode ended this step.
  std::vector<std::unordered_map<std::string, double>> infos;  ///< Per env.
};

/// Fixed-width batch of environments with auto-reset.
class vector_env {
 public:
  /// Build `count` >= 1 environments from `factory`; `threads` workers step
  /// them in parallel (0 = serial). All replicas must agree on the
  /// observation/action box.
  vector_env(const env_factory& factory, std::size_t count,
             std::size_t threads = 0);

  /// Number of environments B.
  [[nodiscard]] std::size_t size() const noexcept { return envs_.size(); }

  [[nodiscard]] std::size_t observation_dim() const;
  [[nodiscard]] std::size_t action_dim() const;
  [[nodiscard]] double action_low() const;
  [[nodiscard]] double action_high() const;

  /// Worker threads backing step() (0 = serial).
  [[nodiscard]] std::size_t threads() const noexcept {
    return pool_ ? pool_->size() : 0;
  }

  /// Reset every environment; returns the B x obs_dim initial observations.
  [[nodiscard]] nn::tensor reset();

  /// Reset only environment i (trainer-driven truncation); returns its
  /// 1 x obs_dim initial observation.
  [[nodiscard]] nn::tensor reset_env(std::size_t i);

  /// Step all environments with a B x act_dim action batch. Environments
  /// whose episode ends are reset in place (dones[i] marks the boundary and
  /// infos[i] carries the terminal step's diagnostics).
  [[nodiscard]] vector_step_result step(const nn::tensor& actions);

  /// Direct access to the i-th environment (evaluation, diagnostics).
  [[nodiscard]] environment& env(std::size_t i);
  [[nodiscard]] const environment& env(std::size_t i) const;

 private:
  std::vector<std::unique_ptr<environment>> envs_;
  std::vector<nn::tensor> action_rows_;  ///< Per-env 1 x act_dim scratch.
  std::unique_ptr<util::thread_pool> pool_;
};

}  // namespace vtm::rl
