#include "rl/agents.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace vtm::rl {

double random_scheme::select_action(double low, double high, util::rng& gen) {
  return gen.uniform(low, high);
}

greedy_scheme::greedy_scheme(double epsilon) : epsilon_(epsilon) {
  VTM_EXPECTS(epsilon >= 0.0 && epsilon <= 1.0);
}

double greedy_scheme::select_action(double low, double high, util::rng& gen) {
  if (!best_action_ || gen.bernoulli(epsilon_))
    return gen.uniform(low, high);
  return std::clamp(*best_action_, low, high);
}

void greedy_scheme::feedback(double action, double payoff) {
  if (!best_action_ || payoff > best_payoff_) {
    best_action_ = action;
    best_payoff_ = payoff;
  }
}

void greedy_scheme::reset() {
  best_action_.reset();
  best_payoff_ = 0.0;
}

agent_episode_stats run_agent_episode(environment& env, pricing_agent& agent,
                                      std::size_t max_rounds, util::rng& gen) {
  VTM_EXPECTS(max_rounds >= 1);
  VTM_EXPECTS(env.action_dim() == 1);
  agent_episode_stats stats;
  stats.best_utility = -1e300;
  (void)env.reset();
  for (std::size_t k = 0; k < max_rounds; ++k) {
    const double action =
        agent.select_action(env.action_low(), env.action_high(), gen);
    nn::tensor action_tensor({1, 1}, {action});
    const step_result result = env.step(action_tensor);

    const auto it = result.info.find("leader_utility");
    const double payoff =
        it != result.info.end() ? it->second : result.reward;
    agent.feedback(action, payoff);

    stats.episode_return += result.reward;
    stats.mean_utility += payoff;
    stats.best_utility = std::max(stats.best_utility, payoff);
    stats.final_utility = payoff;
    stats.mean_action += action;
    stats.final_action = action;
    ++stats.rounds;
    if (result.done) break;
  }
  stats.mean_utility /= static_cast<double>(stats.rounds);
  stats.mean_action /= static_cast<double>(stats.rounds);
  return stats;
}

}  // namespace vtm::rl
