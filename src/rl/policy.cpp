#include "rl/policy.hpp"

#include <cmath>

#include "nn/gaussian.hpp"
#include "util/contracts.hpp"

namespace vtm::rl {

namespace {

std::vector<std::size_t> trunk_sizes(const actor_critic_config& config) {
  VTM_EXPECTS(config.obs_dim >= 1);
  VTM_EXPECTS(config.act_dim >= 1);
  VTM_EXPECTS(!config.hidden.empty());
  std::vector<std::size_t> sizes;
  sizes.push_back(config.obs_dim);
  sizes.insert(sizes.end(), config.hidden.begin(), config.hidden.end());
  return sizes;
}

}  // namespace

actor_critic::actor_critic(const actor_critic_config& config, util::rng& gen)
    : config_(config),
      // Trunk includes the last hidden layer as its "output" with the hidden
      // activation applied manually in forward().
      trunk_([&] {
        auto sizes = trunk_sizes(config);
        return nn::mlp(sizes, config.hidden_activation, gen,
                       /*out_gain=*/std::sqrt(2.0));
      }()),
      mean_head_(config.hidden.back(), config.act_dim, gen,
                 config.policy_head_gain),
      value_head_(config.hidden.back(), 1, gen, config.value_head_gain),
      log_std_(nn::variable::parameter(
          nn::tensor({1, config.act_dim}, config.initial_log_std))) {}

actor_critic::forward_result actor_critic::forward(
    const nn::variable& observations) const {
  // The mlp's final affine layer gets no activation from mlp::forward, so
  // apply the hidden activation here: the trunk output is a hidden feature.
  nn::variable features = nn::apply_activation(trunk_.forward(observations),
                                               config_.hidden_activation);
  return {mean_head_.forward(features), value_head_.forward(features)};
}

actor_critic::action_sample actor_critic::act(const nn::tensor& observation,
                                              util::rng& gen) const {
  VTM_EXPECTS(observation.dims() == (nn::shape{1, config_.obs_dim}));
  const auto out = forward(nn::variable::constant(observation));
  action_sample sample;
  sample.action =
      nn::gaussian_sample(out.mean.value(), log_std_.value(), gen);
  sample.log_prob = nn::gaussian_log_prob_value(out.mean.value(),
                                                log_std_.value(),
                                                sample.action)
                        .item();
  sample.value = out.value.value().item();
  return sample;
}

actor_critic::action_sample actor_critic::act_deterministic(
    const nn::tensor& observation) const {
  VTM_EXPECTS(observation.dims() == (nn::shape{1, config_.obs_dim}));
  const auto out = forward(nn::variable::constant(observation));
  action_sample sample;
  sample.action = out.mean.value();
  sample.log_prob = nn::gaussian_log_prob_value(out.mean.value(),
                                                log_std_.value(),
                                                sample.action)
                        .item();
  sample.value = out.value.value().item();
  return sample;
}

double actor_critic::value(const nn::tensor& observation) const {
  VTM_EXPECTS(observation.dims() == (nn::shape{1, config_.obs_dim}));
  return forward(nn::variable::constant(observation)).value.value().item();
}

std::vector<nn::variable> actor_critic::parameters() const {
  std::vector<nn::variable> params = trunk_.parameters();
  for (const auto& p : mean_head_.parameters()) params.push_back(p);
  for (const auto& p : value_head_.parameters()) params.push_back(p);
  params.push_back(log_std_);
  return params;
}

}  // namespace vtm::rl
